package spinwave

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestFacadeBehavioralTruthTables(t *testing.T) {
	b, err := NewBehavioral(XOR, PaperSpec(), FeCoB())
	if err != nil {
		t.Fatal(err)
	}
	tt, err := XORTruthTable(b, false)
	if err != nil {
		t.Fatal(err)
	}
	if !tt.AllCorrect() {
		t.Error("facade XOR truth table incorrect")
	}
	out := FormatTruthTable(tt)
	for _, want := range []string{"{I2,I1}", "O1 norm", "O2 logic", "{0,0}", "{1,1}"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
	if FormatTruthTable(nil) != "" {
		t.Error("nil table should format empty")
	}
}

func TestFacadeMajorityAndDerived(t *testing.T) {
	b, err := NewBehavioral(MAJ3, PaperSpec(), FeCoB())
	if err != nil {
		t.Fatal(err)
	}
	tt, err := MajorityTruthTable(b)
	if err != nil {
		t.Fatal(err)
	}
	if !tt.AllCorrect() {
		t.Error("facade majority incorrect")
	}
	if !strings.Contains(FormatTruthTable(tt), "{I3,I2,I1}") {
		t.Error("majority header wrong")
	}
	for _, d := range []DerivedGate{AND, OR, NAND, NOR} {
		dt, err := DerivedTruthTable(b, d)
		if err != nil {
			t.Fatal(err)
		}
		if !dt.AllCorrect() {
			t.Errorf("derived %v incorrect", d)
		}
	}
}

func TestFacadeLadderBackend(t *testing.T) {
	b, err := NewLadderBehavioral(PaperSpec(), FeCoB())
	if err != nil {
		t.Fatal(err)
	}
	tt, err := MajorityTruthTable(b)
	if err != nil {
		t.Fatal(err)
	}
	if !tt.AllCorrect() {
		t.Error("ladder baseline incorrect")
	}
}

func TestTableIIIRendering(t *testing.T) {
	out := TableIII().String()
	for _, want := range []string{"Table III", "triangle MAJ3 (this work)", "10.3", "6.9", "466", "0.4"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table III missing %q:\n%s", want, out)
		}
	}
	ratios := TableIIIRatios().String()
	for _, want := range []string{"25%", "43x", "40x"} {
		if !strings.Contains(ratios, want) {
			t.Errorf("ratios missing %q:\n%s", want, ratios)
		}
	}
}

func TestDispersionFacade(t *testing.T) {
	if _, err := DispersionModel(FeCoB(), 1e-9, "nonsense"); err == nil {
		t.Error("unknown mode accepted")
	}
	full, err := DispersionModel(FeCoB(), 1e-9, "full")
	if err != nil {
		t.Fatal(err)
	}
	local, err := DispersionModel(FeCoB(), 1e-9, "local")
	if err != nil {
		t.Fatal(err)
	}
	k := 1e8
	if full.Frequency(k) < local.Frequency(k) {
		t.Error("full branch below local branch")
	}
	f, err := DriveFrequency(FeCoB(), 1e-9, 55e-9)
	if err != nil {
		t.Fatal(err)
	}
	if f < 8e9 || f > 25e9 {
		t.Errorf("drive frequency %g implausible", f)
	}
}

func TestMaterialByNameFacade(t *testing.T) {
	m, err := MaterialByName("yig")
	if err != nil || m.Name != "YIG" {
		t.Errorf("MaterialByName(yig) = %v, %v", m.Name, err)
	}
	if _, err := MaterialByName("nope"); err == nil {
		t.Error("unknown material accepted")
	}
}

func TestWaveProfile(t *testing.T) {
	xs, ys, err := WaveProfile(55e-9, 1, 0, 2, 101)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 101 || len(ys) != 101 {
		t.Fatal("lengths wrong")
	}
	// Two wavelengths: endpoints at sin(0) and sin(4π) ≈ 0.
	if math.Abs(ys[0]) > 1e-9 || math.Abs(ys[100]) > 1e-9 {
		t.Errorf("endpoints = %g, %g", ys[0], ys[100])
	}
	// φ = π flips the profile (Figure 1's phase illustration).
	_, ysPi, err := WaveProfile(55e-9, 1, math.Pi, 2, 101)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ys {
		if math.Abs(ys[i]+ysPi[i]) > 1e-9 {
			t.Fatalf("phase-π profile not inverted at %d", i)
		}
	}
	if _, _, err := WaveProfile(0, 1, 0, 1, 10); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestInterfere(t *testing.T) {
	// Figure 2: equal phases → amplitude 2, opposite phases → 0.
	if a, _ := Interfere(1, 0, 1, 0); math.Abs(a-2) > 1e-12 {
		t.Errorf("constructive = %g", a)
	}
	if a, _ := Interfere(1, 0, 1, math.Pi); a > 1e-12 {
		t.Errorf("destructive = %g", a)
	}
	if a, _ := Interfere(1, 0, 0.5, math.Pi); math.Abs(a-0.5) > 1e-12 {
		t.Errorf("partial = %g", a)
	}
}

func TestMuMaxScriptFacade(t *testing.T) {
	s, err := MuMaxScript(MAJ3, PaperSpec(), FeCoB(), []bool{false, true, false})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SetGridSize", "Msat", "B_ext.SetRegion"} {
		if !strings.Contains(s, want) {
			t.Errorf("script missing %q", want)
		}
	}
	if _, err := MuMaxScript(MAJ3, PaperSpec(), FeCoB(), []bool{false}); err == nil {
		t.Error("wrong input count accepted")
	}
	if _, err := MuMaxScript(XOR, PaperSpec(), FeCoB(), []bool{true, false}); err != nil {
		t.Errorf("XOR script failed: %v", err)
	}
	if _, err := MuMaxScript(MAJ3Single, PaperSpec(), FeCoB(), []bool{true, false, true}); err != nil {
		t.Errorf("single-output script failed: %v", err)
	}
}

func TestRenderSnapshotFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("micromagnetic integration test")
	}
	m, err := NewMicromagnetic(XOR, MicromagConfig{Spec: ReducedSpec(), Mat: FeCoB()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderSnapshotPNG(&buf, m, []bool{false, false}, "mx", 2); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty PNG")
	}
	art, err := RenderSnapshotASCII(m, []bool{false, false}, "mx", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(art) == 0 {
		t.Error("empty ASCII art")
	}
	if _, err := RenderSnapshotASCII(m, []bool{false, false}, "bogus", 100); err == nil {
		t.Error("bad component accepted")
	}
}

package spinwave

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

func TestFacadeBehavioralTruthTables(t *testing.T) {
	b, err := NewBehavioral(XOR, PaperSpec(), FeCoB())
	if err != nil {
		t.Fatal(err)
	}
	tt, err := XORTruthTable(b, false)
	if err != nil {
		t.Fatal(err)
	}
	if !tt.AllCorrect() {
		t.Error("facade XOR truth table incorrect")
	}
	out := FormatTruthTable(tt)
	for _, want := range []string{"{I2,I1}", "O1 norm", "O2 logic", "{0,0}", "{1,1}"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
	if FormatTruthTable(nil) != "" {
		t.Error("nil table should format empty")
	}
}

func TestFacadeMajorityAndDerived(t *testing.T) {
	b, err := NewBehavioral(MAJ3, PaperSpec(), FeCoB())
	if err != nil {
		t.Fatal(err)
	}
	tt, err := MajorityTruthTable(b)
	if err != nil {
		t.Fatal(err)
	}
	if !tt.AllCorrect() {
		t.Error("facade majority incorrect")
	}
	if !strings.Contains(FormatTruthTable(tt), "{I3,I2,I1}") {
		t.Error("majority header wrong")
	}
	for _, d := range []DerivedGate{AND, OR, NAND, NOR} {
		dt, err := DerivedTruthTable(b, d)
		if err != nil {
			t.Fatal(err)
		}
		if !dt.AllCorrect() {
			t.Errorf("derived %v incorrect", d)
		}
	}
}

func TestFacadeLadderBackend(t *testing.T) {
	b, err := NewLadderBehavioral(PaperSpec(), FeCoB())
	if err != nil {
		t.Fatal(err)
	}
	tt, err := MajorityTruthTable(b)
	if err != nil {
		t.Fatal(err)
	}
	if !tt.AllCorrect() {
		t.Error("ladder baseline incorrect")
	}
}

func TestTableIIIRendering(t *testing.T) {
	out := TableIII().String()
	for _, want := range []string{"Table III", "triangle MAJ3 (this work)", "10.3", "6.9", "466", "0.4"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table III missing %q:\n%s", want, out)
		}
	}
	ratios := TableIIIRatios().String()
	for _, want := range []string{"25%", "43x", "40x"} {
		if !strings.Contains(ratios, want) {
			t.Errorf("ratios missing %q:\n%s", want, ratios)
		}
	}
}

func TestDispersionFacade(t *testing.T) {
	if _, err := DispersionModel(FeCoB(), 1e-9, "nonsense"); err == nil {
		t.Error("unknown mode accepted")
	}
	full, err := DispersionModel(FeCoB(), 1e-9, "full")
	if err != nil {
		t.Fatal(err)
	}
	local, err := DispersionModel(FeCoB(), 1e-9, "local")
	if err != nil {
		t.Fatal(err)
	}
	k := 1e8
	if full.Frequency(k) < local.Frequency(k) {
		t.Error("full branch below local branch")
	}
	f, err := DriveFrequency(FeCoB(), 1e-9, 55e-9)
	if err != nil {
		t.Fatal(err)
	}
	if f < 8e9 || f > 25e9 {
		t.Errorf("drive frequency %g implausible", f)
	}
}

func TestMaterialByNameFacade(t *testing.T) {
	m, err := MaterialByName("yig")
	if err != nil || m.Name != "YIG" {
		t.Errorf("MaterialByName(yig) = %v, %v", m.Name, err)
	}
	if _, err := MaterialByName("nope"); err == nil {
		t.Error("unknown material accepted")
	}
}

func TestWaveProfile(t *testing.T) {
	xs, ys, err := WaveProfile(55e-9, 1, 0, 2, 101)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 101 || len(ys) != 101 {
		t.Fatal("lengths wrong")
	}
	// Two wavelengths: endpoints at sin(0) and sin(4π) ≈ 0.
	if math.Abs(ys[0]) > 1e-9 || math.Abs(ys[100]) > 1e-9 {
		t.Errorf("endpoints = %g, %g", ys[0], ys[100])
	}
	// φ = π flips the profile (Figure 1's phase illustration).
	_, ysPi, err := WaveProfile(55e-9, 1, math.Pi, 2, 101)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ys {
		if math.Abs(ys[i]+ysPi[i]) > 1e-9 {
			t.Fatalf("phase-π profile not inverted at %d", i)
		}
	}
	if _, _, err := WaveProfile(0, 1, 0, 1, 10); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestInterfere(t *testing.T) {
	// Figure 2: equal phases → amplitude 2, opposite phases → 0.
	if a, _ := Interfere(1, 0, 1, 0); math.Abs(a-2) > 1e-12 {
		t.Errorf("constructive = %g", a)
	}
	if a, _ := Interfere(1, 0, 1, math.Pi); a > 1e-12 {
		t.Errorf("destructive = %g", a)
	}
	if a, _ := Interfere(1, 0, 0.5, math.Pi); math.Abs(a-0.5) > 1e-12 {
		t.Errorf("partial = %g", a)
	}
}

func TestMuMaxScriptFacade(t *testing.T) {
	s, err := MuMaxScript(MAJ3, PaperSpec(), FeCoB(), []bool{false, true, false})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SetGridSize", "Msat", "B_ext.SetRegion"} {
		if !strings.Contains(s, want) {
			t.Errorf("script missing %q", want)
		}
	}
	if _, err := MuMaxScript(MAJ3, PaperSpec(), FeCoB(), []bool{false}); err == nil {
		t.Error("wrong input count accepted")
	}
	if _, err := MuMaxScript(XOR, PaperSpec(), FeCoB(), []bool{true, false}); err != nil {
		t.Errorf("XOR script failed: %v", err)
	}
	if _, err := MuMaxScript(MAJ3Single, PaperSpec(), FeCoB(), []bool{true, false, true}); err != nil {
		t.Errorf("single-output script failed: %v", err)
	}
}

func TestRenderSnapshotFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("micromagnetic integration test")
	}
	m, err := NewMicromagnetic(XOR, MicromagConfig{Spec: ReducedSpec(), Mat: FeCoB()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderSnapshotPNG(&buf, m, []bool{false, false}, "mx", 2); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty PNG")
	}
	art, err := RenderSnapshotASCII(m, []bool{false, false}, "mx", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(art) == 0 {
		t.Error("empty ASCII art")
	}
	if _, err := RenderSnapshotASCII(m, []bool{false, false}, "bogus", 100); err == nil {
		t.Error("bad component accepted")
	}
}

func TestSentinelErrors(t *testing.T) {
	if _, err := MuMaxScript(GateKind(99), PaperSpec(), FeCoB(), nil); !errors.Is(err, ErrUnknownGate) {
		t.Errorf("MuMaxScript bad kind returned %v, want ErrUnknownGate", err)
	}
	if _, err := MuMaxScript(XOR, PaperSpec(), FeCoB(), []bool{true}); !errors.Is(err, ErrBadInputCount) {
		t.Errorf("MuMaxScript short inputs returned %v, want ErrBadInputCount", err)
	}
	b, err := NewBehavioral(XOR, PaperSpec(), FeCoB())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run([]bool{true}); !errors.Is(err, ErrBadInputCount) {
		t.Errorf("behavioral short inputs returned %v, want ErrBadInputCount", err)
	}
	if _, err := NewBehavioral(GateKind(99), PaperSpec(), FeCoB()); !errors.Is(err, ErrUnknownGate) {
		t.Errorf("NewBehavioral bad kind returned %v, want ErrUnknownGate", err)
	}
	if _, err := RenderSnapshotASCII(nil, nil, "bogus", 10); !errors.Is(err, ErrUnknownComponent) {
		t.Errorf("bad render component returned %v, want ErrUnknownComponent", err)
	}
}

func TestFunctionalOptionsFacade(t *testing.T) {
	// Lossless junctions must raise the normalized partial-constructive
	// levels relative to the default 0.9 loss.
	def, err := NewBehavioral(MAJ3, PaperSpec(), FeCoB())
	if err != nil {
		t.Fatal(err)
	}
	lossless, err := NewBehavioral(MAJ3, PaperSpec(), FeCoB(),
		WithJunctionLoss(1), WithAttenuationLength(0))
	if err != nil {
		t.Fatal(err)
	}
	dt, err := MajorityTruthTable(def)
	if err != nil {
		t.Fatal(err)
	}
	lt, err := MajorityTruthTable(lossless)
	if err != nil {
		t.Fatal(err)
	}
	if !dt.AllCorrect() || !lt.AllCorrect() {
		t.Fatal("majority tables incorrect")
	}
	// Options must change the fingerprint so the shared engine cache
	// cannot serve one backend's readouts for the other.
	fd, ok1 := def.Fingerprint()
	fl, ok2 := lossless.Fingerprint()
	if !ok1 || !ok2 || fd == fl {
		t.Fatalf("option change not reflected in fingerprints: %q vs %q", fd, fl)
	}
	// Micromagnetic options-form construction (no run).
	if _, err := NewMicromagnetic(XOR, WithScheme(SchemeHeun), WithWorkers(2)); err != nil {
		t.Fatal(err)
	}
	// Legacy bare-config form still validates explicit zeros.
	if _, err := NewMicromagnetic(XOR, MicromagConfig{}); err == nil {
		t.Fatal("zero legacy config accepted")
	}
}

func TestContextTruthTablesAndDefaultEngine(t *testing.T) {
	b, err := NewBehavioral(XOR, PaperSpec(), FeCoB())
	if err != nil {
		t.Fatal(err)
	}
	tt, err := XORTruthTableContext(context.Background(), b, false)
	if err != nil {
		t.Fatal(err)
	}
	if !tt.AllCorrect() {
		t.Error("context XOR truth table incorrect")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := XORTruthTableContext(ctx, b, false); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled table returned %v, want context.Canceled", err)
	}
	if _, err := RunContext(ctx, b, []bool{true, false}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled RunContext returned %v, want context.Canceled", err)
	}
	if DefaultEngine() != DefaultEngine() {
		t.Error("DefaultEngine not a singleton")
	}
	if DefaultEngine().Workers() < 1 {
		t.Error("default engine has no workers")
	}
}

func TestMicromagRunContextAborts(t *testing.T) {
	if testing.Short() {
		t.Skip("micromagnetic run")
	}
	m, err := NewMicromagnetic(XOR)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = m.RunContext(ctx, []bool{false, true})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-integration run returned %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("solver took %v to honor a 200ms deadline", elapsed)
	}
}

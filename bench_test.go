package spinwave

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see EXPERIMENTS.md for the paper-vs-measured record and
// cmd/swtables, cmd/swfig, cmd/swdisp for the printing front-ends).
//
// The micromagnetic benchmarks run the reduced-scale device (same design
// rules, CI-scale runtime); pass -full to cmd/swtables for paper-scale
// dimensions.

import (
	"context"
	"io"
	"testing"

	"spinwave/internal/core"
	"spinwave/internal/energy"
	"spinwave/internal/layout"
	"spinwave/internal/llg"
)

// BenchmarkTableI_MajorityFO2_Behavioral regenerates Table I (8 cases,
// both outputs) with the phasor backend.
func BenchmarkTableI_MajorityFO2_Behavioral(b *testing.B) {
	be, err := NewBehavioral(MAJ3, PaperSpec(), FeCoB())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tt, err := MajorityTruthTable(be)
		if err != nil {
			b.Fatal(err)
		}
		if !tt.AllCorrect() {
			b.Fatal("table I incorrect")
		}
	}
}

// BenchmarkTableI_MajorityFO2_Micromagnetic regenerates Table I with the
// full solver on the reduced device (calibration + 9 transient runs).
func BenchmarkTableI_MajorityFO2_Micromagnetic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := NewMicromagnetic(MAJ3, MicromagConfig{Spec: ReducedSpec(), Mat: FeCoB()})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.CalibrateI3(); err != nil {
			b.Fatal(err)
		}
		tt, err := MajorityTruthTable(m)
		if err != nil {
			b.Fatal(err)
		}
		if !tt.AllCorrect() {
			b.Fatal("micromagnetic table I incorrect")
		}
	}
}

// BenchmarkTableII_XORFO2_Behavioral regenerates Table II (4 cases).
func BenchmarkTableII_XORFO2_Behavioral(b *testing.B) {
	be, err := NewBehavioral(XOR, PaperSpec(), FeCoB())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tt, err := XORTruthTable(be, false)
		if err != nil {
			b.Fatal(err)
		}
		if !tt.AllCorrect() {
			b.Fatal("table II incorrect")
		}
	}
}

// BenchmarkTableII_XORFO2_Micromagnetic regenerates Table II with the
// full solver on the reduced device (5 transient runs).
func BenchmarkTableII_XORFO2_Micromagnetic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := NewMicromagnetic(XOR, MicromagConfig{Spec: ReducedSpec(), Mat: FeCoB()})
		if err != nil {
			b.Fatal(err)
		}
		tt, err := XORTruthTable(m, false)
		if err != nil {
			b.Fatal(err)
		}
		if !tt.AllCorrect() {
			b.Fatal("micromagnetic table II incorrect")
		}
	}
}

// BenchmarkXORCaseProbeOverhead measures the in-situ probe tax on the
// fused 8-worker stepper (EXPERIMENTS.md E-OBS2): one XOR case with
// probes off, at the default cadence, and at stride 1. The budget is
// ≤3% at the default cadence.
func BenchmarkXORCaseProbeOverhead(b *testing.B) {
	for _, bc := range []struct {
		name   string
		probes ProbeConfig
	}{
		{"off", ProbeConfig{}},
		{"default", ProbeConfig{Enabled: true}},
		{"stride1", ProbeConfig{Enabled: true, Stride: 1}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			m, err := NewMicromagnetic(XOR, MicromagConfig{
				Spec: ReducedSpec(), Mat: FeCoB(), Workers: 8, Probes: bc.probes,
			})
			if err != nil {
				b.Fatal(err)
			}
			in := []bool{true, false}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Run(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTableIII_Performance regenerates Table III and the derived
// §IV-D ratios.
func BenchmarkTableIII_Performance(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab := energy.ComparisonTable()
		ratios := energy.Ratios()
		if len(tab) != 8 || len(ratios) == 0 {
			b.Fatal("table III malformed")
		}
	}
}

// BenchmarkFigure1_WaveParameters regenerates the Figure 1 wave-parameter
// series (φ=0, k=1 and φ=π, k=3 profiles).
func BenchmarkFigure1_WaveParameters(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := WaveProfile(55e-9, 1, 0, 1, 256); err != nil {
			b.Fatal(err)
		}
		if _, _, err := WaveProfile(55e-9/3, 1, 3.14159265358979, 3, 256); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2_Interference regenerates the Figure 2 constructive/
// destructive interference demonstration in phasor form.
func BenchmarkFigure2_Interference(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, _ := Interfere(1, 0, 1, 0)
		d, _ := Interfere(1, 0, 1, 3.14159265358979)
		if c < 1.9 || d > 0.1 {
			b.Fatal("interference wrong")
		}
	}
}

// BenchmarkFigure3_4_GateLayouts regenerates the Figure 3 (MAJ3) and
// Figure 4 (XOR) geometries with the paper's dimensions and rasterizes
// them.
func BenchmarkFigure3_4_GateLayouts(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		maj, err := layout.BuildMAJ3(PaperSpec(), false)
		if err != nil {
			b.Fatal(err)
		}
		xor, err := layout.BuildXOR(PaperSpec())
		if err != nil {
			b.Fatal(err)
		}
		mesh, err := maj.Mesh(5e-9, 1e-9)
		if err != nil {
			b.Fatal(err)
		}
		if maj.Rasterize(mesh).Count() == 0 {
			b.Fatal("empty rasterization")
		}
		_ = xor
	}
}

// BenchmarkFigure5_Snapshots regenerates the Figure 5 panels: one
// micromagnetic snapshot per MAJ3 input pattern, rendered as PNG.
func BenchmarkFigure5_Snapshots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := NewMicromagnetic(MAJ3, MicromagConfig{Spec: ReducedSpec(), Mat: FeCoB()})
		if err != nil {
			b.Fatal(err)
		}
		for _, in := range core.EnumerateInputs(3) {
			if err := RenderSnapshotPNG(io.Discard, m, in, "mx", 1); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDerivedGates_Behavioral covers the §III-A derived (N)AND and
// (N)OR gates.
func BenchmarkDerivedGates_Behavioral(b *testing.B) {
	be, err := NewBehavioral(MAJ3, PaperSpec(), FeCoB())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, d := range []DerivedGate{AND, OR, NAND, NOR} {
			tt, err := DerivedTruthTable(be, d)
			if err != nil {
				b.Fatal(err)
			}
			if !tt.AllCorrect() {
				b.Fatalf("derived %v incorrect", d)
			}
		}
	}
}

// BenchmarkLadderBaseline evaluates the ladder-shape baseline's truth
// table (the [22,23] comparator of Table III).
func BenchmarkLadderBaseline(b *testing.B) {
	be, err := NewLadderBehavioral(PaperSpec(), FeCoB())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tt, err := MajorityTruthTable(be)
		if err != nil {
			b.Fatal(err)
		}
		if !tt.AllCorrect() {
			b.Fatal("ladder incorrect")
		}
	}
}

// BenchmarkMuMaxScriptGeneration measures the MuMax3 export path.
func BenchmarkMuMaxScriptGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MuMaxScript(MAJ3, PaperSpec(), FeCoB(), []bool{false, true, true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelWordXOR_Behavioral covers the X-7 extension: a 4-bit
// frequency-multiplexed XOR evaluated for all 256 word pairs.
func BenchmarkParallelWordXOR_Behavioral(b *testing.B) {
	g, err := NewParallelGate(XOR, PaperMicromagSpec(), FeCoB(), 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for a := uint(0); a < 16; a++ {
			for c := uint(0); c < 16; c++ {
				out, err := g.Eval(WordFromUint(a, 4), WordFromUint(c, 4))
				if err != nil {
					b.Fatal(err)
				}
				if out["O1"].Uint() != a^c {
					b.Fatalf("%04b^%04b = %04b", a, c, out["O1"].Uint())
				}
			}
		}
	}
}

// BenchmarkParallelWordXOR_Micromagnetic runs the 2-bit two-carrier XOR
// in the full solver (reference + one case).
func BenchmarkParallelWordXOR_Micromagnetic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := NewParallelMicromagXOR(ReducedSpec(), FeCoB(), 2)
		if err != nil {
			b.Fatal(err)
		}
		words, _, err := p.Run(WordFromUint(0b01, 2), WordFromUint(0b11, 2))
		if err != nil {
			b.Fatal(err)
		}
		if words["O1"].Uint() != 0b10 {
			b.Fatalf("parallel XOR = %02b", words["O1"].Uint())
		}
	}
}

// BenchmarkXORTableMicromag_Serial is the baseline for the engine
// comparison below: Table II on the reduced device, one case at a time
// through the serial core path.
func BenchmarkXORTableMicromag_Serial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := NewMicromagnetic(XOR, MicromagConfig{Spec: ReducedSpec(), Mat: FeCoB()})
		if err != nil {
			b.Fatal(err)
		}
		tt, err := core.XORTruthTable(m, false)
		if err != nil {
			b.Fatal(err)
		}
		if !tt.AllCorrect() {
			b.Fatal("serial micromagnetic table II incorrect")
		}
	}
}

// BenchmarkXORTableMicromag_Engine8 runs the same table through a fresh
// 8-worker engine each iteration (cold cache), so the measured speedup
// over the serial baseline is pure case-level parallelism. The four
// cases are independent transients; on a multicore host this
// approaches a 4x wall-clock reduction (one core per case), while on a
// single-core host it matches the serial baseline.
func BenchmarkXORTableMicromag_Engine8(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		m, err := NewMicromagnetic(XOR, MicromagConfig{Spec: ReducedSpec(), Mat: FeCoB()})
		if err != nil {
			b.Fatal(err)
		}
		eng := NewEngine(WithEngineWorkers(8))
		tt, err := eng.XORTable(ctx, m, false)
		if err != nil {
			b.Fatal(err)
		}
		if !tt.AllCorrect() {
			b.Fatal("engine micromagnetic table II incorrect")
		}
	}
}

// BenchmarkXORTableMicromag_EngineWarm reuses one engine across
// iterations: after the first table every case is an LRU hit, so this
// measures the serving-layer steady state for repeated identical
// requests.
func BenchmarkXORTableMicromag_EngineWarm(b *testing.B) {
	ctx := context.Background()
	m, err := NewMicromagnetic(XOR, MicromagConfig{Spec: ReducedSpec(), Mat: FeCoB()})
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine(WithEngineWorkers(8))
	if _, err := eng.XORTable(ctx, m, false); err != nil {
		b.Fatal(err) // prime the cache outside the timed loop
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt, err := eng.XORTable(ctx, m, false)
		if err != nil {
			b.Fatal(err)
		}
		if !tt.AllCorrect() {
			b.Fatal("warm engine table II incorrect")
		}
	}
}

// BenchmarkAblation_SchemeRK4vsHeun compares the integrator cost on one
// XOR case (design-choice ablation: RK4 default vs Heun).
func BenchmarkAblation_SchemeRK4vsHeun(b *testing.B) {
	for _, scheme := range []struct {
		name string
		s    llg.Scheme
	}{{"rk4", SchemeRK4}, {"heun", SchemeHeun}} {
		b.Run(scheme.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := MicromagConfig{Spec: ReducedSpec(), Mat: FeCoB()}
				cfg.Scheme = scheme.s
				m, err := NewMicromagnetic(XOR, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.Run([]bool{false, false}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

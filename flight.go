package spinwave

import (
	"context"
	"io"
	"log/slog"

	"spinwave/internal/journal"
	"spinwave/internal/obs"
	"spinwave/internal/probe"
)

// Flight-recorder re-exports (DESIGN.md §11): the in-situ probe layer,
// the structured run journal, and the Chrome-trace span exporter. See
// internal/probe and internal/journal for full documentation.
type (
	// ProbeConfig selects what a probed run samples and how often; pass
	// it to WithProbes.
	ProbeConfig = probe.Config
	// ProbeRecorder holds a probed run's ring-buffered time-series.
	ProbeRecorder = probe.Recorder
	// ProbeSeries is one probe's exported magnetization window.
	ProbeSeries = probe.Series
	// ProbeSnapshot is the JSON-ready export of a probed run.
	ProbeSnapshot = probe.Snapshot
	// JournalEvent is one structured run-journal record.
	JournalEvent = journal.Event
	// JournalSink receives journal events (file writer, ring, hub).
	JournalSink = journal.Sink
	// ChromeTraceSink collects spans for chrome://tracing export
	// (swsim -trace-out).
	ChromeTraceSink = obs.ChromeTraceSink
	// TeeSpanSink fans spans out to several sinks (metrics + trace).
	TeeSpanSink = obs.TeeSink
)

// AttachJournalSink adds a sink to the process-wide run journal and
// returns a detach function. With no sinks attached, journaling is a
// single atomic load per lifecycle point.
func AttachJournalSink(s JournalSink) (detach func()) {
	return journal.Default().Attach(s)
}

// NewJournalWriter builds a sink rendering events as JSON Lines to w —
// the file sink behind the CLIs' -journal flag.
func NewJournalWriter(w io.Writer) JournalSink { return journal.NewWriterSink(w) }

// NewRunID returns a fresh process-unique run identifier for
// correlating journal events, span labels and probe registrations.
func NewRunID() string { return journal.NewRunID() }

// WithRunID returns a context carrying the run ID; backends evaluated
// under it journal and publish probes under that ID instead of minting
// their own.
func WithRunID(ctx context.Context, id string) context.Context {
	return journal.WithRunID(ctx, id)
}

// RunIDFrom returns the run ID carried by ctx, or "".
func RunIDFrom(ctx context.Context) string { return journal.RunID(ctx) }

// ProbesFor returns the probe recorder published by a probed run (see
// WithProbes), or false if the run is unknown or was not probed.
func ProbesFor(runID string) (*ProbeRecorder, bool) { return probe.Default().Get(runID) }

// ProbedRuns returns the run IDs with retained probe recorders, oldest
// first.
func ProbedRuns() []string { return probe.Default().Runs() }

// NewLogger returns a text slog.Logger at the given level whose records
// are stamped with the run ID carried by the logging context — the
// shared handler behind the CLIs' -log-level flag.
func NewLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	return journal.NewLogger(w, level)
}

// ParseLogLevel maps -log-level flag values (debug, info, warn, error)
// to slog levels.
func ParseLogLevel(s string) (slog.Level, error) { return journal.ParseLevel(s) }

package spinwave

import (
	"io"

	"spinwave/internal/obs"
)

// Observability re-exports: the process-wide metric registry that the
// engine, the LLG solver, the sweep harness and swserve all record
// into, plus the span-tracing hooks. See internal/obs for full
// documentation.
type (
	// MetricsSnapshot is a point-in-time copy of every registered
	// metric; Summary renders it as the -stats timing table.
	MetricsSnapshot = obs.Snapshot
	// MetricsHistogram is one histogram's snapshot state.
	MetricsHistogram = obs.HistogramSnapshot
	// SpanSink receives finished trace spans.
	SpanSink = obs.SpanSink
	// SpanLabel is one key/value span or metric label.
	SpanLabel = obs.Label
)

// SnapshotMetrics copies the current state of every metric in the
// default registry — cache traffic, LLG step totals, evaluation
// latencies. CLIs print SnapshotMetrics().Summary() under -stats.
func SnapshotMetrics() MetricsSnapshot { return obs.Default().Snapshot() }

// WriteMetrics writes the default registry in Prometheus text
// exposition format (what swserve serves at /metrics).
func WriteMetrics(w io.Writer) error { return obs.Default().WritePrometheus(w) }

// SetSpanSink installs the destination for finished trace spans and
// returns the previous sink; nil disables tracing. While no sink is
// installed spans cost nothing on the hot path.
func SetSpanSink(s SpanSink) SpanSink { return obs.SetSpanSink(s) }

// EnableSpanMetrics routes span durations into the default registry as
// spinwave_span_seconds histograms, so per-stage timings (setup,
// transient, lock-in) appear in /metrics and SnapshotMetrics.
func EnableSpanMetrics() { obs.SetSpanSink(&obs.HistogramSink{Registry: obs.Default()}) }

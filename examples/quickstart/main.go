// Quickstart: evaluate the paper's two headline gates with the fast
// behavioral backend and print the Table I/II/III reproductions.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"spinwave"
)

func main() {
	log.SetFlags(0)

	// The paper's device: λ = 55 nm, w = 50 nm, Fe60Co20B20.
	spec := spinwave.PaperSpec()
	mat := spinwave.FeCoB()

	// Table II: fan-out-of-2 XOR by threshold detection.
	xor, err := spinwave.NewBehavioral(spinwave.XOR, spec, mat)
	if err != nil {
		log.Fatal(err)
	}
	xorTT, err := spinwave.XORTruthTable(xor, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(spinwave.FormatTruthTable(xorTT))
	fmt.Println()

	// Table I: fan-out-of-2 3-input Majority by phase detection.
	maj, err := spinwave.NewBehavioral(spinwave.MAJ3, spec, mat)
	if err != nil {
		log.Fatal(err)
	}
	majTT, err := spinwave.MajorityTruthTable(maj)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(spinwave.FormatTruthTable(majTT))
	fmt.Printf("fan-out of 2 achieved: worst |O1-O2| = %.4f\n\n", majTT.FanOutMatched())

	// §III-A: the same structure computes AND/OR/NAND/NOR by pinning I3.
	for _, d := range []spinwave.DerivedGate{spinwave.AND, spinwave.NOR} {
		tt, err := spinwave.DerivedTruthTable(maj, d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(spinwave.FormatTruthTable(tt))
		fmt.Println()
	}

	// Table III: energy/delay comparison with the ladder SW gates and CMOS.
	fmt.Print(spinwave.TableIII().String())
	fmt.Println()
	fmt.Print(spinwave.TableIIIRatios().String())
}

// Dispersion example: explore the forward-volume spin-wave dispersion
// that fixes every design number of the gate — the k ↔ f mapping, the
// drive frequency for the paper's λ = 55 nm, and how far a wave survives
// against Gilbert damping (which bounds the trunk length d2).
//
//	go run ./examples/dispersion
package main

import (
	"fmt"
	"log"
	"math"

	"spinwave"
)

func main() {
	log.SetFlags(0)
	mat := spinwave.FeCoB()
	const thickness = 1e-9

	full, err := spinwave.DispersionModel(mat, thickness, "full")
	if err != nil {
		log.Fatal(err)
	}
	local, err := spinwave.DispersionModel(mat, thickness, "local")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("forward-volume spin waves in 1 nm Fe60Co20B20 (perpendicular anisotropy):")
	fmt.Printf("  k=0 gap: %.2f GHz (full) / %.2f GHz (solver branch)\n\n",
		full.Frequency(0)/1e9, local.Frequency(0)/1e9)

	fmt.Println("  k(rad/µm)   λ(nm)    f_full(GHz)  f_solver(GHz)  vg(m/s)")
	for _, kUm := range []float64{25, 50, 80, 114.2, 150} {
		k := kUm * 1e6
		fmt.Printf("  %8.1f  %7.1f  %10.2f  %12.2f  %8.0f\n",
			kUm, 2*3.14159265/k*1e9, full.Frequency(k)/1e9, local.Frequency(k)/1e9, local.GroupVelocity(k))
	}

	// The paper quotes "k = 50 rad/µm → 10 GHz"; in the full branch that
	// frequency is reached near k ≈ 80 rad/µm instead. What matters for
	// the gate design is driving at the frequency whose wavelength is
	// exactly 55 nm in the simulator in use:
	f, err := spinwave.DriveFrequency(mat, thickness, 55e-9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndesign point: λ = 55 nm needs f = %.2f GHz in this repo's solver\n", f/1e9)

	k := 2 * 3.14159265 / 55e-9
	att := local.AttenuationLength(k)
	fmt.Printf("attenuation length at the design point: %.2f µm\n", att*1e6)
	fmt.Printf("longest gate path (d2 = 880 nm) keeps %.0f%% of the amplitude\n",
		100*math.Exp(-880e-9/att))
}

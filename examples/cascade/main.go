// Cascade example: the energy argument behind fan-out.
//
// "If the spin wave logic gate output is taken as input for multiple
// following logic gates in a circuit, then the logic gate must be
// replicated multiple times which gives significant energy overhead."
// (paper, introduction)
//
// This example wires one MAJ3 gate into TWO next-stage XOR gates three
// ways and compares the transducer energy:
//
//  1. triangle FO2 gate → both consumers directly (this work),
//  2. replicated single-output gates (the naive FO1 approach),
//  3. single-output gate + directional coupler + repeaters ([36],[37]),
//
// and then extends the triangle gate beyond FO2 (fan-out of 4) with a
// coupler/repeater tree, the §III-A extension.
//
//	go run ./examples/cascade
package main

import (
	"fmt"
	"log"

	"spinwave"
)

func main() {
	log.SetFlags(0)

	builds := []struct {
		name  string
		build func() (*spinwave.Netlist, error)
	}{
		{"triangle FO2 (this work)", buildFO2},
		{"replicated single-output gates", buildReplicated},
		{"single-output + coupler + repeaters", buildRepeaters},
	}
	fmt.Println("one MAJ3 driving two XOR consumers:")
	var base float64
	for i, b := range builds {
		n, err := b.build()
		if err != nil {
			log.Fatal(err)
		}
		if err := n.CheckFanOut(2); err != nil {
			log.Fatal(err)
		}
		if err := verify(n); err != nil {
			log.Fatal(err)
		}
		e := n.Energy() / 1e-18
		if i == 0 {
			base = e
		}
		d, err := n.CriticalDelay()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-36s %5.1f aJ (%.2fx)  delay %.2f ns\n", b.name, e, e/base, d/1e-9)
	}

	// Fan-out of 4: split each triangle output with a 1x2 coupler and
	// regenerate with repeaters (§III-A: "the gate fan-out capabilities
	// can be extended beyond 2 by using directional couplers [36] ...
	// and repeaters [37]").
	n := spinwave.NewNetlist("fo4", "a", "b", "c")
	must(n.Add(spinwave.MAJ3Gate(), ns("a", "b", "c"), ns("m1", "m2")))
	must(n.Add(spinwave.SplitterComponent(2), ns("m1"), ns("s1", "s2")))
	must(n.Add(spinwave.SplitterComponent(2), ns("m2"), ns("s3", "s4")))
	for i := 1; i <= 4; i++ {
		must(n.Add(spinwave.RepeaterComponent(), ns(fmt.Sprintf("s%d", i)), ns(fmt.Sprintf("f%d", i))))
	}
	n.MarkOutput("f1", "f2", "f3", "f4")
	if err := n.CheckFanOut(1); err != nil {
		log.Fatal(err)
	}
	out, err := n.Evaluate(map[spinwave.Net]bool{"a": true, "b": false, "c": true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfan-out of 4 extension: MAJ(1,0,1) fanned to %v %v %v %v, energy %.1f aJ\n",
		b01(out["f1"]), b01(out["f2"]), b01(out["f3"]), b01(out["f4"]), n.Energy()/1e-18)
}

// buildFO2: MAJ3's two outputs feed the two XOR gates directly.
func buildFO2() (*spinwave.Netlist, error) {
	n := spinwave.NewNetlist("fo2", "a", "b", "c", "x", "y")
	if err := n.Add(spinwave.MAJ3Gate(), ns("a", "b", "c"), ns("m1", "m2")); err != nil {
		return nil, err
	}
	if err := n.Add(spinwave.XORGate(), ns("m1", "x"), ns("o1", "")); err != nil {
		return nil, err
	}
	if err := n.Add(spinwave.XORGate(), ns("m2", "y"), ns("o2", "")); err != nil {
		return nil, err
	}
	n.MarkOutput("o1", "o2")
	return n, nil
}

// buildReplicated: the FO1 fallback — compute the majority twice.
func buildReplicated() (*spinwave.Netlist, error) {
	n := spinwave.NewNetlist("replicated", "a", "b", "c", "x", "y")
	// Each primary input now needs two transducers upstream (fan-out 2
	// on the inputs), and the MAJ energy is paid twice.
	if err := n.Add(spinwave.MAJ3SingleGate(), ns("a", "b", "c"), ns("m1")); err != nil {
		return nil, err
	}
	if err := n.Add(spinwave.MAJ3SingleGate(), ns("a", "b", "c"), ns("m2")); err != nil {
		return nil, err
	}
	if err := n.Add(spinwave.XORGate(), ns("m1", "x"), ns("o1", "")); err != nil {
		return nil, err
	}
	if err := n.Add(spinwave.XORGate(), ns("m2", "y"), ns("o2", "")); err != nil {
		return nil, err
	}
	n.MarkOutput("o1", "o2")
	return n, nil
}

// buildRepeaters: single-output MAJ + coupler + two repeaters.
func buildRepeaters() (*spinwave.Netlist, error) {
	n := spinwave.NewNetlist("repeaters", "a", "b", "c", "x", "y")
	if err := n.Add(spinwave.MAJ3SingleGate(), ns("a", "b", "c"), ns("raw")); err != nil {
		return nil, err
	}
	if err := n.Add(spinwave.SplitterComponent(2), ns("raw"), ns("s1", "s2")); err != nil {
		return nil, err
	}
	if err := n.Add(spinwave.RepeaterComponent(), ns("s1"), ns("m1")); err != nil {
		return nil, err
	}
	if err := n.Add(spinwave.RepeaterComponent(), ns("s2"), ns("m2")); err != nil {
		return nil, err
	}
	if err := n.Add(spinwave.XORGate(), ns("m1", "x"), ns("o1", "")); err != nil {
		return nil, err
	}
	if err := n.Add(spinwave.XORGate(), ns("m2", "y"), ns("o2", "")); err != nil {
		return nil, err
	}
	n.MarkOutput("o1", "o2")
	return n, nil
}

// verify exhaustively checks o1 = MAJ(a,b,c)⊕x and o2 = MAJ(a,b,c)⊕y.
func verify(n *spinwave.Netlist) error {
	for c := 0; c < 32; c++ {
		in := map[spinwave.Net]bool{
			"a": c&1 != 0, "b": c&2 != 0, "c": c&4 != 0, "x": c&8 != 0, "y": c&16 != 0,
		}
		out, err := n.Evaluate(in)
		if err != nil {
			return err
		}
		maj := (in["a"] && in["b"]) || (in["a"] && in["c"]) || (in["b"] && in["c"])
		if out["o1"] != (maj != in["x"]) || out["o2"] != (maj != in["y"]) {
			return fmt.Errorf("%s wrong at case %d", n.Name, c)
		}
	}
	return nil
}

func ns(names ...string) []spinwave.Net {
	out := make([]spinwave.Net, len(names))
	for i, n := range names {
		out[i] = spinwave.Net(n)
	}
	return out
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func b01(v bool) int {
	if v {
		return 1
	}
	return 0
}

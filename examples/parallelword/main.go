// Parallel-word example: the n-bit data-parallel extension (the authors'
// companion paper, ref [9]). Several logic operations ride through ONE
// physical triangle gate simultaneously, each bit on its own spin-wave
// carrier frequency, and are recovered independently by per-frequency
// lock-in detection.
//
//	go run ./examples/parallelword          (micromagnetic part ~30 s)
package main

import (
	"fmt"
	"log"

	"spinwave"
)

func main() {
	log.SetFlags(0)

	// Behavioral 4-bit XOR: one structure, four simultaneous XORs.
	g, err := spinwave.NewParallelGate(spinwave.XOR, spinwave.PaperMicromagSpec(), spinwave.FeCoB(), 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("4-bit frequency-parallel XOR (behavioral):")
	fmt.Println("  channel plan:")
	for _, ch := range g.Channels {
		fmt.Printf("    bit %d: λ = %5.1f nm, f = %5.2f GHz\n", ch.Bit, ch.Lambda*1e9, ch.Freq/1e9)
	}
	a, b := uint(0b1010), uint(0b0110)
	out, err := g.Eval(spinwave.WordFromUint(a, 4), spinwave.WordFromUint(b, 4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %04b XOR %04b = %04b at O1, %04b at O2 (want %04b)\n\n",
		a, b, out["O1"].Uint(), out["O2"].Uint(), a^b)

	// 2-bit MAJ: the Majority gate's channel ladder is fixed by the
	// geometry (path difference Δ must be an integer number of channel
	// wavelengths).
	mg, err := spinwave.NewParallelGate(spinwave.MAJ3, spinwave.PaperMicromagSpec(), spinwave.FeCoB(), 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("2-bit frequency-parallel MAJ3 (behavioral):")
	for _, ch := range mg.Channels {
		fmt.Printf("    bit %d: λ = %5.1f nm, f = %5.2f GHz\n", ch.Bit, ch.Lambda*1e9, ch.Freq/1e9)
	}
	x, y, z := uint(0b01), uint(0b11), uint(0b00)
	mout, err := mg.Eval(spinwave.WordFromUint(x, 2), spinwave.WordFromUint(y, 2), spinwave.WordFromUint(z, 2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  MAJ(%02b, %02b, %02b) = %02b (want %02b)\n\n", x, y, z, mout["O1"].Uint(), 0b01)

	// Micromagnetic 2-bit XOR: two carriers in one LLG simulation.
	fmt.Println("2-bit parallel XOR in the full LLG solver (reduced device):")
	p, err := spinwave.NewParallelMicromagXOR(spinwave.ReducedSpec(), spinwave.FeCoB(), 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, ch := range p.Channels {
		fmt.Printf("    bit %d: λ = %5.1f nm, f = %5.2f GHz\n", ch.Bit, ch.Lambda*1e9, ch.Freq/1e9)
	}
	wa, wb := uint(0b01), uint(0b11)
	words, norm, err := p.Run(spinwave.WordFromUint(wa, 2), spinwave.WordFromUint(wb, 2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %02b XOR %02b = %02b at O1 (want %02b); normalized channel amplitudes %v\n",
		wa, wb, words["O1"].Uint(), wa^wb, fmtAmps(norm["O1"]))
}

func fmtAmps(a []float64) []string {
	out := make([]string, len(a))
	for i, v := range a {
		out[i] = fmt.Sprintf("%.3f", v)
	}
	return out
}

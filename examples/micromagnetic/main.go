// Micromagnetic example: run the full LLG simulation of the reduced-size
// triangle XOR gate, print the Table II reproduction and draw the wave
// pattern of the constructive and destructive cases — the in-terminal
// version of the paper's Figure 5 panels.
//
//	go run ./examples/micromagnetic        (~15 s on a laptop core)
package main

import (
	"fmt"
	"log"

	"spinwave"
)

func main() {
	log.SetFlags(0)

	m, err := spinwave.NewMicromagnetic(spinwave.XOR, spinwave.MicromagConfig{
		Spec: spinwave.ReducedSpec(),
		Mat:  spinwave.FeCoB(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drive frequency: %.2f GHz (λ = 55 nm via the solver-matched dispersion)\n", m.Freq/1e9)
	fmt.Printf("time step: %.3g ps, simulated time per case: %.2f ns\n\n", m.Dt()*1e12, m.Duration()*1e9)

	tt, err := spinwave.XORTruthTable(m, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(spinwave.FormatTruthTable(tt))
	fmt.Printf("\nfan-out of 2: worst |O1-O2| = %.4f, all cases correct: %v\n\n",
		tt.FanOutMatched(), tt.AllCorrect())

	fmt.Println("wave pattern, inputs {0,0} (constructive — strong wave at both outputs):")
	art, err := spinwave.RenderSnapshotASCII(m, []bool{false, false}, "mx", 110)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(art)

	fmt.Println("\nwave pattern, inputs {0,1} (destructive — the merged wave vanishes):")
	art, err = spinwave.RenderSnapshotASCII(m, []bool{true, false}, "mx", 110)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(art)
}

// Full adder example: the paper motivates multi-output gates with larger
// circuits — the full-adder carry is a 3-input majority (§II-B), and a
// ripple-carry adder consumes every carry exactly twice, which the FO2
// triangle gate provides structurally.
//
// This example builds the adder in all three styles (triangle FO2,
// ladder FO2, single-output + repeaters), verifies 8-bit addition, and
// compares energy and critical delay.
//
//	go run ./examples/fulladder
package main

import (
	"fmt"
	"log"

	"spinwave"
)

func main() {
	log.SetFlags(0)

	// Verify one full adder exhaustively.
	fa, err := spinwave.FullAdder(spinwave.TriangleFO2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("1-bit full adder (sum = XOR·XOR, carry = MAJ3):")
	for c := 0; c < 8; c++ {
		a, b, cin := c&1 != 0, c&2 != 0, c&4 != 0
		out, err := fa.Evaluate(map[spinwave.Net]bool{"a": a, "b": b, "cin": cin})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  a=%v b=%v cin=%v -> sum=%v cout=%v\n", b01(a), b01(b), b01(cin), b01(out["sum"]), b01(out["cout"]))
	}
	fmt.Printf("full adder energy: %.1f aJ, delay: %.2f ns\n\n", fa.Energy()/1e-18, mustDelay(fa)/1e-9)

	// 16-bit ripple adder: verify one addition and compare styles.
	rca, err := spinwave.RippleCarryAdder(16, spinwave.TriangleFO2)
	if err != nil {
		log.Fatal(err)
	}
	if err := rca.CheckFanOut(2); err != nil {
		log.Fatal(err)
	}
	a, b := 40195, 23456
	sum, err := add16(rca, a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("16-bit ripple-carry adder: %d + %d = %d (want %d)\n\n", a, b, sum, a+b)

	rows, err := spinwave.CompareAdders(16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("16-bit adder comparison:")
	for _, r := range rows {
		fmt.Printf("  %-18s gates=%3d energy=%7.1f aJ delay=%5.2f ns\n",
			r.Style.String(), r.Gates, r.EnergyAJ, r.DelayNS)
	}
	fmt.Println("\nThe triangle FO2 adder needs no replication and no repeaters:")
	fmt.Println("every carry's two consumers are fed by the gate's two outputs.")
}

func b01(v bool) int {
	if v {
		return 1
	}
	return 0
}

func mustDelay(n *spinwave.Netlist) float64 {
	d, err := n.CriticalDelay()
	if err != nil {
		log.Fatal(err)
	}
	return d
}

func add16(n *spinwave.Netlist, a, b int) (int, error) {
	assign := map[spinwave.Net]bool{"cin": false}
	for i := 0; i < 16; i++ {
		assign[spinwave.Net(fmt.Sprintf("a%d", i))] = a&(1<<i) != 0
		assign[spinwave.Net(fmt.Sprintf("b%d", i))] = b&(1<<i) != 0
	}
	out, err := n.Evaluate(assign)
	if err != nil {
		return 0, err
	}
	sum := 0
	for i := 0; i < 16; i++ {
		if out[spinwave.Net(fmt.Sprintf("sum%d", i))] {
			sum |= 1 << i
		}
	}
	if out["c16"] {
		sum |= 1 << 16
	}
	return sum, nil
}

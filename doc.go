// Package spinwave is a from-scratch Go reproduction of
//
//	A. Mahmoud, F. Vanderveken, F. Ciubotaru, C. Adelmann, S. Cotofana,
//	S. Hamdioui: "Fan-out of 2 Triangle Shape Spin Wave Logic Gates",
//	DATE 2021, pp. 948–953. DOI 10.23919/DATE51398.2021.9474089
//
// It provides:
//
//   - a pure-Go 2-D micromagnetic solver for perpendicular-anisotropy
//     thin films (LLG with exchange, uniaxial anisotropy, thin-film
//     demagnetization, antenna excitation, absorbing boundaries and an
//     optional stochastic thermal field), validated against the
//     Kalinikos–Slavin forward-volume dispersion;
//   - the paper's triangle-shape fan-out-of-2 Majority and X(N)OR gates
//     as parameterized layouts, evaluated either by full micromagnetic
//     simulation or by a fast behavioral phasor network;
//   - the ladder-shape baseline of refs [22,23], the derived
//     (N)AND/(N)OR gates, and a gate-level circuit layer (full adder,
//     ripple-carry adder) with energy/delay/fan-out accounting;
//   - the paper's §IV-D performance model (ME transducers, CMOS
//     references) regenerating Table III and its derived claims;
//   - harnesses that regenerate every table and figure of the paper's
//     evaluation (see EXPERIMENTS.md), MuMax3 script generation for
//     cross-validation, OVF 2.0 snapshot I/O, and field rendering;
//   - a concurrent evaluation engine (bounded worker pool, LRU result
//     cache with request coalescing, context cancellation plumbed into
//     the integrator loop) and an HTTP JSON service (cmd/swserve);
//   - a dependency-free observability layer (Prometheus-format
//     counters/gauges/histograms, zero-cost span tracing) instrumented
//     through the engine, solver and serving layers;
//   - a fused, tiled LLG stepping core: each Runge–Kutta stage is one
//     pass over row bands executed by a persistent worker pool, with
//     zero per-step allocations and trajectories that are bit-for-bit
//     identical for every worker count (see DESIGN.md §10 and
//     MicromagConfig.Workers);
//   - a flight recorder and judging tier: a structured JSONL run
//     journal with Chrome-trace export, a streaming numerical health
//     monitor (alerts, per-run verdicts), and a rolling-window SLO
//     tracker in the server (DESIGN.md §§11–12);
//   - tiered serving: an in-memory LRU, a disk-backed result store,
//     and an admitted linear-superposition surrogate in front of the
//     full solver, each answer labelled with the tier that produced it
//     (DESIGN.md §13);
//   - a distributed evaluation fleet: a durable one-file-per-job
//     queue, a coordinator with leased claims and idempotent result
//     ingestion, and worker processes (cmd/swworker) that survive
//     SIGKILL through lease expiry and requeue (DESIGN.md §14);
//   - checkpoint/resume for long transients (CheckpointConfig,
//     WithCheckpoint): periodic OVF-plus-manifest snapshots with
//     atomic commit and digest-verified, bit-exact resume, a durable
//     run-artifact store behind the server, and fleet segmentation
//     that resumes an interrupted segment on a peer (DESIGN.md §15).
//
// This package is the public facade: it re-exports the types and
// constructors a downstream user needs, while the implementation lives
// in internal/ packages (one per subsystem; see ARCHITECTURE.md for
// the package map and DESIGN.md for the physics and design decisions).
//
// # Quick start
//
//	b, err := spinwave.NewBehavioral(spinwave.XOR, spinwave.PaperSpec(), spinwave.FeCoB())
//	if err != nil { ... }
//	tt, err := spinwave.XORTruthTable(b, false)
//	fmt.Print(spinwave.FormatTruthTable(tt))
//
// For the full physics, swap NewBehavioral for NewMicromagnetic (slower;
// use ReducedSpec for laptop-scale runs, PaperMicromagSpec for the
// paper's dimensions).
package spinwave

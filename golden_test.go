package spinwave

import (
	"math"
	"testing"
)

// TestPaperTables is the golden regression suite for the paper's
// evaluation tables: it pins every input combination of Table I (MAJ3
// fan-out-of-2, phase detection) and Table II (XOR fan-out-of-2,
// normalized output magnetization) to tolerance bands derived from the
// paper's values and this repo's documented deviations (EXPERIMENTS.md
// E-T1/E-T2). If a refactor shifts a readout regime — a unanimous row
// away from 1, a destructive row above threshold, a phase off 0/π, or
// O1 diverging from O2 — this fails and names the row.
//
// The behavioral backend runs always; the micromagnetic backend (the
// real experiment, minutes of solver time) is skipped under -short like
// the other integration tests.
func TestPaperTables(t *testing.T) {
	t.Run("TableI/behavioral", func(t *testing.T) {
		b, err := NewBehavioral(MAJ3, PaperSpec(), FeCoB())
		if err != nil {
			t.Fatal(err)
		}
		tt, err := MajorityTruthTable(b)
		if err != nil {
			t.Fatal(err)
		}
		checkTableI(t, tt, 0.01)
	})
	t.Run("TableII/behavioral", func(t *testing.T) {
		b, err := NewBehavioral(XOR, PaperSpec(), FeCoB())
		if err != nil {
			t.Fatal(err)
		}
		tt, err := XORTruthTable(b, false)
		if err != nil {
			t.Fatal(err)
		}
		checkTableII(t, tt, 0.01)
	})
	t.Run("TableI/micromag", func(t *testing.T) {
		if testing.Short() {
			t.Skip("micromagnetic table: minutes of solver time")
		}
		m, err := NewMicromagnetic(MAJ3)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.CalibrateI3(); err != nil {
			t.Fatal(err)
		}
		tt, err := MajorityTruthTable(m)
		if err != nil {
			t.Fatal(err)
		}
		checkTableI(t, tt, 0.02)
	})
	t.Run("TableII/micromag", func(t *testing.T) {
		if testing.Short() {
			t.Skip("micromagnetic table: minutes of solver time")
		}
		m, err := NewMicromagnetic(XOR)
		if err != nil {
			t.Fatal(err)
		}
		tt, err := XORTruthTable(m, false)
		if err != nil {
			t.Fatal(err)
		}
		checkTableII(t, tt, 0.02)
	})
}

// checkTableI pins the 8 MAJ3 rows. Bands (EXPERIMENTS.md E-T1):
//
//   - unanimous rows ({0,0,0}, {1,1,1}) normalize to 1 within 10%;
//   - every mixed row sits well below 1 — [0.02, 0.5] covers the
//     paper's 0.083–0.164, the behavioral 0.33 and our measured
//     0.129–0.44 while still failing if a row drifts toward either a
//     unanimous (≈1) or fully-destructive (≈0) regime;
//   - the output phase is the logic value: within 0.2 rad of the
//     reference phase for majority-0 rows, of reference+π for
//     majority-1 rows (paper: exactly 0/π; measured: within 0.03);
//   - fan-out of 2: O1 and O2 agree within fanoutTol on every row.
func checkTableI(t *testing.T, tt *TruthTable, fanoutTol float64) {
	t.Helper()
	if len(tt.Cases) != 8 {
		t.Fatalf("Table I has %d cases, want 8", len(tt.Cases))
	}
	if !tt.AllCorrect() {
		t.Error("Table I decodes incorrectly")
	}
	if m := tt.FanOutMatched(); m > fanoutTol {
		t.Errorf("fan-out mismatch |O1-O2| = %.4f, want <= %.4f", m, fanoutTol)
	}
	refPhase := tt.Cases[0].Outputs[0].Phase
	for _, c := range tt.Cases {
		ones := 0
		for _, in := range c.Inputs {
			if in {
				ones++
			}
		}
		unanimous := ones == 0 || ones == len(c.Inputs)
		wantLogic := ones*2 > len(c.Inputs)
		for _, o := range c.Outputs {
			if unanimous {
				if d := math.Abs(o.Normalized - 1); d > 0.1 {
					t.Errorf("case %v %s: unanimous row normalized %.3f, want 1±0.1",
						c.Inputs, o.Name, o.Normalized)
				}
			} else if o.Normalized < 0.02 || o.Normalized > 0.5 {
				t.Errorf("case %v %s: mixed row normalized %.3f, want [0.02, 0.5]",
					c.Inputs, o.Name, o.Normalized)
			}
			want := refPhase
			if wantLogic {
				want += math.Pi
			}
			if d := math.Abs(wrapPhase(o.Phase - want)); d > 0.2 {
				t.Errorf("case %v %s: phase %.3f rad is %.3f from expected %s boundary",
					c.Inputs, o.Name, o.Phase, d, map[bool]string{false: "0", true: "π"}[wantLogic])
			}
			if o.Logic != wantLogic {
				t.Errorf("case %v %s: decoded %v, want %v", c.Inputs, o.Name, o.Logic, wantLogic)
			}
		}
	}
}

// checkTableII pins the 4 XOR rows. Bands (EXPERIMENTS.md E-T2): equal
// inputs interfere constructively to 1 within 10% (paper 0.99–1);
// unequal inputs interfere destructively below 0.1 (paper ≈0, measured
// 0.002) — comfortably under the 0.5 decision threshold either way.
func checkTableII(t *testing.T, tt *TruthTable, fanoutTol float64) {
	t.Helper()
	if len(tt.Cases) != 4 {
		t.Fatalf("Table II has %d cases, want 4", len(tt.Cases))
	}
	if !tt.AllCorrect() {
		t.Error("Table II decodes incorrectly")
	}
	if m := tt.FanOutMatched(); m > fanoutTol {
		t.Errorf("fan-out mismatch |O1-O2| = %.4f, want <= %.4f", m, fanoutTol)
	}
	for _, c := range tt.Cases {
		destructive := c.Inputs[0] != c.Inputs[1]
		for _, o := range c.Outputs {
			if destructive {
				if o.Normalized > 0.1 {
					t.Errorf("case %v %s: destructive row normalized %.3f, want <= 0.1",
						c.Inputs, o.Name, o.Normalized)
				}
			} else if d := math.Abs(o.Normalized - 1); d > 0.1 {
				t.Errorf("case %v %s: constructive row normalized %.3f, want 1±0.1",
					c.Inputs, o.Name, o.Normalized)
			}
			if o.Logic != destructive {
				t.Errorf("case %v %s: decoded %v, want %v", c.Inputs, o.Name, o.Logic, destructive)
			}
		}
	}
}

// wrapPhase maps an angle to (-π, π].
func wrapPhase(p float64) float64 {
	for p > math.Pi {
		p -= 2 * math.Pi
	}
	for p <= -math.Pi {
		p += 2 * math.Pi
	}
	return p
}

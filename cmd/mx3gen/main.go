// Command mx3gen writes ready-to-run MuMax3 scripts for every experiment
// of the reproduction, so the in-Go solver can be cross-validated against
// the simulator the paper used.
//
//	mx3gen -out mx3            # all MAJ3 and XOR cases, paper dimensions
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"spinwave"
	"spinwave/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mx3gen: ")
	out := flag.String("out", "mx3", "output directory")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	spec := spinwave.PaperSpec()
	mat := spinwave.FeCoB()
	count := 0
	for _, kind := range []spinwave.GateKind{spinwave.MAJ3, spinwave.XOR, spinwave.MAJ5} {
		for ci, in := range core.EnumerateInputs(kind.NumInputs()) {
			script, err := spinwave.MuMaxScript(kind, spec, mat, in)
			if err != nil {
				log.Fatal(err)
			}
			name := fmt.Sprintf("%s_case%d.mx3", kind, ci)
			path := filepath.Join(*out, name)
			if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
				log.Fatal(err)
			}
			count++
		}
	}
	readme := `MuMax3 cross-validation scripts
===============================

One script per gate input case, paper dimensions (λ=55 nm, w=50 nm,
d1..d4 = 330/880/220/55 nm, Fe60Co20B20). Run with:

    mumax3 maj3-fo2_case0.mx3

and compare the table output (m.regionN columns are the O1/O2 probes)
against this repo's 'swtables -backend micromag -full'.
`
	if err := os.WriteFile(filepath.Join(*out, "README.txt"), []byte(readme), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d scripts to %s\n", count, *out)
}

// Command swfig regenerates the paper's figures.
//
//	swfig -figure 1 [-out dir]     Figure 1: spin-wave parameter profiles
//	swfig -figure 2                Figure 2: interference demonstration
//	swfig -figure 3 [-out dir]     Figure 3: MAJ3 gate geometry (PNG + stats)
//	swfig -figure 4 [-out dir]     Figure 4: XOR gate geometry
//	swfig -figure 5 -out dir       Figure 5: micromagnetic snapshots (a-h)
//
// Figure 5 runs the micromagnetic solver once per input pattern on the
// reduced-scale device (-full for paper dimensions; slow) and writes a
// PNG and an OVF 2.0 snapshot per panel, plus ASCII previews with -ascii.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"spinwave"
	"spinwave/internal/core"
	"spinwave/internal/layout"
	"spinwave/internal/material"
	"spinwave/internal/ovf"
	"spinwave/internal/render"
	"spinwave/internal/report"
	"spinwave/internal/vec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swfig: ")
	figure := flag.Int("figure", 5, "which figure to regenerate: 1, 2, 3, 4 or 5")
	out := flag.String("out", "figures", "output directory for PNG/OVF files")
	full := flag.Bool("full", false, "use the paper's full dimensions (slow)")
	ascii := flag.Bool("ascii", false, "also print ASCII previews to stdout")
	flag.Parse()

	switch *figure {
	case 1:
		figure1()
	case 2:
		figure2()
	case 3, 4:
		figureGeometry(*figure, *out)
	case 5:
		figure5(*out, *full, *ascii)
	default:
		log.Fatalf("unknown figure %d", *figure)
	}
}

// figure1 prints the two wave profiles of Figure 1: (a) φ=0, k=1 and
// (b) φ=π, k=3 (three times the wave number → one third the wavelength).
func figure1() {
	lambda := 55e-9
	profiles := []struct {
		label string
		lam   float64
		phase float64
		waves float64
	}{
		{"a) phi=0, k=1", lambda, 0, 2},
		{"b) phi=pi, k=3", lambda / 3, math.Pi, 6},
	}
	for _, p := range profiles {
		xs, ys, err := spinwave.WaveProfile(p.lam, 1, p.phase, p.waves, 64)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (λ = %.1f nm)\n", p.label, p.lam*1e9)
		fmt.Print(sparkline(xs, ys))
		fmt.Println()
	}
}

// sparkline renders a wave profile as rows of a tiny ASCII plot.
func sparkline(xs, ys []float64) string {
	const rows = 9
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = make([]byte, len(ys))
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for c, y := range ys {
		r := int(math.Round((1 - (y+1)/2) * float64(rows-1)))
		grid[r][c] = '*'
	}
	outStr := ""
	for _, row := range grid {
		outStr += string(row) + "\n"
	}
	return outStr
}

// figure2 demonstrates constructive and destructive interference.
func figure2() {
	t := report.NewTable("Figure 2b: two-wave interference (equal amplitude and frequency)",
		"wave 1 phase", "wave 2 phase", "result amplitude", "interference")
	cases := []struct {
		p1, p2 float64
	}{{0, 0}, {math.Pi, math.Pi}, {0, math.Pi}, {math.Pi, 0}}
	for _, c := range cases {
		amp, _ := spinwave.Interfere(1, c.p1, 1, c.p2)
		kind := "constructive"
		if amp < 0.5 {
			kind = "destructive"
		}
		t.AddRow(fmt.Sprintf("%.2f", c.p1), fmt.Sprintf("%.2f", c.p2), fmt.Sprintf("%.2f", amp), kind)
	}
	fmt.Print(t.String())
}

// figureGeometry renders the Figure 3/4 gate geometry as a PNG mask and
// prints the dimension table.
func figureGeometry(fig int, outDir string) {
	spec := layout.PaperSpec()
	var l *layout.Layout
	var err error
	if fig == 3 {
		l, err = layout.BuildMAJ3(spec, false)
	} else {
		l, err = layout.BuildXOR(spec)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(l.String())
	t := report.NewTable("dimensions", "name", "value (nm)", "in λ")
	t.AddRow("λ", fmt.Sprintf("%.0f", spec.Lambda*1e9), "1")
	t.AddRow("w", fmt.Sprintf("%.0f", spec.Width*1e9), fmt.Sprintf("%.2f", spec.Width/spec.Lambda))
	t.AddRow("d1", fmt.Sprintf("%.0f", spec.D1()*1e9), fmt.Sprintf("%d", spec.D1N))
	if fig == 3 {
		t.AddRow("d2", fmt.Sprintf("%.0f", spec.D2()*1e9), fmt.Sprintf("%d", spec.D2N))
		t.AddRow("d3", fmt.Sprintf("%.0f", spec.D3()*1e9), fmt.Sprintf("%d", spec.D3N))
		t.AddRow("d4", fmt.Sprintf("%.0f", spec.D4()*1e9), fmt.Sprintf("%d", spec.D4N))
	} else {
		t.AddRow("d2 (stub)", fmt.Sprintf("%.0f", spec.XORStub*1e9), fmt.Sprintf("%.2f", spec.XORStub/spec.Lambda))
	}
	fmt.Print(t.String())

	mesh, err := l.Mesh(5e-9, 1e-9)
	if err != nil {
		log.Fatal(err)
	}
	region := l.Rasterize(mesh)
	// Render the mask: material cells at +1 along z.
	m := vec.NewField(mesh.NCells())
	for i, on := range region {
		if on {
			m[i] = vec.UnitZ
		}
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(outDir, fmt.Sprintf("figure%d_geometry.png", fig))
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := render.WritePNG(f, mesh, region, m, render.MZ, render.Options{PixelSize: 2}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d material cells)\n", path, region.Count())
}

// figure5 regenerates the eight Figure 5 panels.
func figure5(outDir string, full, ascii bool) {
	spec := spinwave.ReducedSpec()
	if full {
		spec = spinwave.PaperMicromagSpec()
	}
	m, err := spinwave.NewMicromagnetic(spinwave.MAJ3, spinwave.MicromagConfig{
		Spec: spec, Mat: material.FeCoB(),
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.CalibrateI3(); err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	panels := "abcdefgh"
	for ci, in := range core.EnumerateInputs(3) {
		field, mesh, region, err := m.Snapshot(in)
		if err != nil {
			log.Fatal(err)
		}
		base := filepath.Join(outDir, fmt.Sprintf("figure5%c_%s", panels[ci], report.Bits(in)))
		png, err := os.Create(base + ".png")
		if err != nil {
			log.Fatal(err)
		}
		if err := render.WritePNG(png, mesh, region, field, render.MX, render.Options{PixelSize: 2}); err != nil {
			log.Fatal(err)
		}
		png.Close()
		ovfFile, err := os.Create(base + ".ovf")
		if err != nil {
			log.Fatal(err)
		}
		if err := ovf.Write(ovfFile, mesh, field, fmt.Sprintf("MAJ3 FO2 %s", report.Bits(in))); err != nil {
			log.Fatal(err)
		}
		ovfFile.Close()
		fmt.Printf("panel %c: inputs %s -> %s.png/.ovf\n", panels[ci], report.Bits(in), base)
		if ascii {
			art, err := render.ASCII(mesh, region, field, render.MX, 110)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(art)
		}
	}
}

// Command swtables regenerates the paper's tables.
//
//	swtables -table 1              Table I  (MAJ3 FO2 normalized output)
//	swtables -table 2              Table II (XOR FO2 normalized output)
//	swtables -table 3              Table III (performance comparison)
//	swtables -table derived        §III-A derived (N)AND/(N)OR gates
//	swtables -table ratios         §IV-D derived comparison ratios
//	swtables -table all            everything
//
// Tables I/II default to the fast behavioral backend; -backend micromag
// runs the full solver (reduced-scale device by default, -full for the
// paper's dimensions — slow).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"spinwave"
)

// eng fans the truth-table cases of every printed table over a worker
// pool; sized by -workers.
var eng *spinwave.Engine

var ctx = context.Background()

func main() {
	log.SetFlags(0)
	log.SetPrefix("swtables: ")
	os.Exit(run())
}

// run holds the real main body so deferred cleanup (journal sink,
// stats summary) executes before the process exits with the code it
// returns.
func run() int {
	table := flag.String("table", "all", "which table: 1, 2, 3, derived, ratios, all")
	backend := flag.String("backend", "behavioral", "backend for tables 1/2: behavioral or micromag")
	full := flag.Bool("full", false, "use the paper's full dimensions for micromagnetic runs (slow)")
	workers := flag.Int("workers", 0, "evaluation worker-pool size (0 = NumCPU)")
	stats := flag.Bool("stats", false, "print a timing/metrics summary to stderr when done")
	flag.Parse()

	var opts []spinwave.EngineOption
	if *workers > 0 {
		opts = append(opts, spinwave.WithEngineWorkers(*workers))
	}
	eng = spinwave.NewEngine(opts...)
	if *stats {
		spinwave.EnableSpanMetrics()
		defer func() { fmt.Fprint(os.Stderr, "\n"+spinwave.SnapshotMetrics().Summary()) }()
	}
	defer setupFlight()()

	switch *table {
	case "1":
		printTableI(*backend, *full)
	case "2":
		printTableII(*backend, *full)
	case "3":
		printTableIII()
	case "derived":
		printDerived()
	case "maj5":
		printMAJ5(*backend, *full)
	case "ratios":
		printRatios()
	case "all":
		printTableI(*backend, *full)
		fmt.Println()
		printTableII(*backend, *full)
		fmt.Println()
		printTableIII()
		fmt.Println()
		printRatios()
		fmt.Println()
		printDerived()
	default:
		log.Fatalf("unknown table %q", *table)
	}
	return healthExit()
}

func newBackend(kind spinwave.GateKind, backend string, full bool) spinwave.Backend {
	switch backend {
	case "behavioral":
		b, err := spinwave.NewBehavioral(kind, spinwave.PaperSpec(), spinwave.FeCoB())
		if err != nil {
			log.Fatal(err)
		}
		return b
	case "micromag", "micromagnetic":
		spec := spinwave.ReducedSpec()
		if full {
			spec = spinwave.PaperMicromagSpec()
		}
		cfg := spinwave.MicromagConfig{Spec: spec, Mat: spinwave.FeCoB()}
		if *flagProbe {
			cfg.Probes = spinwave.ProbeConfig{Enabled: true}
		}
		if *flagHealth {
			// No AbortOnCritical here: tables should still print so a
			// partially-broken sweep remains inspectable; the process exit
			// code carries the verdict instead.
			cfg.Health = spinwave.HealthConfig{Enabled: true}
		}
		m, err := spinwave.NewMicromagnetic(kind, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if kind != spinwave.XOR {
			fmt.Fprintln(os.Stderr, "calibrating I3 path ...")
			trim, err := m.CalibrateI3()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "I3 phase trim: %.3f rad\n", trim)
		}
		return m
	default:
		log.Fatalf("unknown backend %q", backend)
		return nil
	}
}

func printTableI(backend string, full bool) {
	b := newBackend(spinwave.MAJ3, backend, full)
	tt, err := eng.MajorityTable(ctx, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table I: fan-in of 3 fan-out of 2 Majority gate normalized output magnetization")
	fmt.Print(spinwave.FormatTruthTable(tt))
	fmt.Printf("fan-out mismatch |O1-O2|: %.4f, all cases correct: %v\n", tt.FanOutMatched(), tt.AllCorrect())
}

func printTableII(backend string, full bool) {
	b := newBackend(spinwave.XOR, backend, full)
	tt, err := eng.XORTable(ctx, b, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table II: fan-in of 2 fan-out of 2 XOR gate normalized output magnetization")
	fmt.Print(spinwave.FormatTruthTable(tt))
	fmt.Printf("fan-out mismatch |O1-O2|: %.4f, all cases correct: %v\n", tt.FanOutMatched(), tt.AllCorrect())

	xnor, err := eng.XORTable(ctx, b, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nXNOR (flipped threshold, §III-B):")
	fmt.Print(spinwave.FormatTruthTable(xnor))
}

func printTableIII() {
	fmt.Print(spinwave.TableIII().String())
}

func printRatios() {
	fmt.Print(spinwave.TableIIIRatios().String())
}

func printMAJ5(backend string, full bool) {
	b := newBackend(spinwave.MAJ5, backend, full)
	tt, err := eng.MajorityTable(ctx, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Fan-in of 5 fan-out of 2 Majority gate (§III-A extension)")
	fmt.Print(spinwave.FormatTruthTable(tt))
	fmt.Printf("fan-out mismatch |O1-O2|: %.4f, all cases correct: %v\n", tt.FanOutMatched(), tt.AllCorrect())
}

func printDerived() {
	b, err := spinwave.NewBehavioral(spinwave.MAJ3, spinwave.PaperSpec(), spinwave.FeCoB())
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range []spinwave.DerivedGate{spinwave.AND, spinwave.OR, spinwave.NAND, spinwave.NOR} {
		tt, err := eng.DerivedTable(ctx, b, d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(spinwave.FormatTruthTable(tt))
		fmt.Println()
	}
}

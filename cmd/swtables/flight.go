package main

import (
	"flag"
	"log"
	"log/slog"
	"os"

	"spinwave"
)

// Flight-recorder flags (DESIGN.md §11): in-situ probes, the JSONL run
// journal, and slog verbosity.
var (
	flagProbe    = flag.Bool("probe", false, "record in-situ probe time-series for micromag runs")
	flagJournal  = flag.String("journal", "", "write the structured run journal (JSON lines) to this file")
	flagLogLevel = flag.String("log-level", "info", "slog level: debug, info, warn, error")
	flagHealth   = flag.Bool("health", false, "monitor numerical health invariants on micromag runs (DESIGN.md §12); exit non-zero on a violated run")
)

// setupFlight wires the flight-recorder flags after flag.Parse; the
// returned cleanup detaches and closes the journal sink.
func setupFlight() (cleanup func()) {
	cleanup = func() {}
	lvl, err := spinwave.ParseLogLevel(*flagLogLevel)
	if err != nil {
		log.Fatal(err)
	}
	slog.SetDefault(spinwave.NewLogger(os.Stderr, lvl))

	if *flagJournal != "" {
		f, err := os.Create(*flagJournal)
		if err != nil {
			log.Fatal(err)
		}
		detach := spinwave.AttachJournalSink(spinwave.NewJournalWriter(f))
		cleanup = func() {
			detach()
			if err := f.Close(); err != nil {
				log.Printf("journal close: %v", err)
			}
		}
	}
	return cleanup
}

// healthExit summarizes the health verdicts of every monitored run and
// returns the process exit code: 1 when any run was violated, else 0 —
// the -health flag's contract.
func healthExit() int {
	if !*flagHealth {
		return 0
	}
	runs := spinwave.MonitoredRuns()
	violated, degraded := 0, 0
	for _, id := range runs {
		rep, ok := spinwave.HealthFor(id)
		if !ok {
			continue
		}
		switch rep.Verdict {
		case spinwave.VerdictViolated.String():
			violated++
			slog.Error("run violated health invariants", "run", id, "alerts", len(rep.Alerts))
		case spinwave.VerdictDegraded.String():
			degraded++
			slog.Warn("run degraded", "run", id, "alerts", len(rep.Alerts))
		}
	}
	slog.Info("health summary", "runs", len(runs), "violated", violated, "degraded", degraded)
	if violated > 0 {
		return 1
	}
	return 0
}

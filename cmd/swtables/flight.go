package main

import (
	"flag"
	"log"
	"log/slog"
	"os"

	"spinwave"
)

// Flight-recorder flags (DESIGN.md §11): in-situ probes, the JSONL run
// journal, and slog verbosity.
var (
	flagProbe    = flag.Bool("probe", false, "record in-situ probe time-series for micromag runs")
	flagJournal  = flag.String("journal", "", "write the structured run journal (JSON lines) to this file")
	flagLogLevel = flag.String("log-level", "info", "slog level: debug, info, warn, error")
)

// setupFlight wires the flight-recorder flags after flag.Parse; the
// returned cleanup detaches and closes the journal sink.
func setupFlight() (cleanup func()) {
	cleanup = func() {}
	lvl, err := spinwave.ParseLogLevel(*flagLogLevel)
	if err != nil {
		log.Fatal(err)
	}
	slog.SetDefault(spinwave.NewLogger(os.Stderr, lvl))

	if *flagJournal != "" {
		f, err := os.Create(*flagJournal)
		if err != nil {
			log.Fatal(err)
		}
		detach := spinwave.AttachJournalSink(spinwave.NewJournalWriter(f))
		cleanup = func() {
			detach()
			if err := f.Close(); err != nil {
				log.Printf("journal close: %v", err)
			}
		}
	}
	return cleanup
}

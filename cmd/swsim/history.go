package main

import (
	"flag"
	"log"
	"log/slog"
	"time"

	"spinwave"
	"spinwave/internal/runhistory"
)

// flagHistory points at the durable run-history catalog (DESIGN.md
// §17); every offline swsim gate run is indexed there as a "sim"
// record, so campaign post-mortems see local runs next to the fleet's.
var flagHistory = flag.String("history", "", "index this run into the run-history catalog at this directory (swserve -history / swhistory read the same catalog)")

// indexSimRun appends the completed run to the catalog, best effort: a
// catalog failure is logged, never a run failure.
func indexSimRun(gate, inputs string, cases int, wall time.Duration) {
	if *flagHistory == "" {
		return
	}
	cat, err := runhistory.Open(*flagHistory)
	if err != nil {
		log.Printf("history: %v", err)
		return
	}
	rec := runhistory.Record{
		ID:      spinwave.NewRunID(),
		Kind:    "sim",
		Gate:    gate,
		Backend: "micromag",
		Inputs:  inputs,
		Cases:   cases,
		WallNS:  wall.Nanoseconds(),
		Verdict: worstVerdict(),
	}
	if _, err := cat.Append(rec); err != nil {
		log.Printf("history: %v", err)
		return
	}
	slog.Info("run indexed", "catalog", cat.Path(), "id", rec.ID, "kind", rec.Kind)
}

// worstVerdict aggregates the health verdicts of the monitored runs
// (empty when -health was off): the record carries the worst outcome,
// which is what a post-mortem filters for.
func worstVerdict() string {
	if !*flagHealth {
		return ""
	}
	worst := spinwave.VerdictHealthy.String()
	seen := false
	for _, id := range spinwave.MonitoredRuns() {
		rep, ok := spinwave.HealthFor(id)
		if !ok {
			continue
		}
		seen = true
		switch rep.Verdict {
		case spinwave.VerdictViolated.String():
			return rep.Verdict
		case spinwave.VerdictDegraded.String():
			worst = rep.Verdict
		}
	}
	if !seen {
		return ""
	}
	return worst
}

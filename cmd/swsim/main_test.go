package main

import (
	"testing"

	"spinwave"
)

func TestParseGate(t *testing.T) {
	cases := map[string]spinwave.GateKind{
		"xor":        spinwave.XOR,
		"maj3":       spinwave.MAJ3,
		"maj":        spinwave.MAJ3,
		"maj3single": spinwave.MAJ3Single,
	}
	for name, want := range cases {
		got, err := parseGate(name)
		if err != nil || got != want {
			t.Errorf("parseGate(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseGate("nope"); err == nil {
		t.Error("unknown gate accepted")
	}
}

func TestParseInputs(t *testing.T) {
	in, err := parseInputs(spinwave.MAJ3, "011")
	if err != nil {
		t.Fatal(err)
	}
	if in[0] || !in[1] || !in[2] {
		t.Errorf("parseInputs = %v", in)
	}
	if _, err := parseInputs(spinwave.MAJ3, "01"); err == nil {
		t.Error("wrong length accepted")
	}
	if _, err := parseInputs(spinwave.XOR, "0x"); err == nil {
		t.Error("non-binary accepted")
	}
}

func TestOrDefault(t *testing.T) {
	if got := orDefault("", spinwave.XOR); got != "00" {
		t.Errorf("XOR default = %q", got)
	}
	if got := orDefault("", spinwave.MAJ3); got != "000" {
		t.Errorf("MAJ default = %q", got)
	}
	if got := orDefault("11", spinwave.XOR); got != "11" {
		t.Errorf("explicit = %q", got)
	}
}

package main

import (
	"flag"
	"log"
	"log/slog"
	"os"

	"spinwave"
)

// Flight-recorder flags (DESIGN.md §11): in-situ probes, the JSONL run
// journal, slog verbosity, and the Chrome trace export.
var (
	flagProbe    = flag.Bool("probe", false, "record in-situ probe time-series at the detector cells")
	flagJournal  = flag.String("journal", "", "write the structured run journal (JSON lines) to this file")
	flagLogLevel = flag.String("log-level", "info", "slog level: debug, info, warn, error")
	flagTraceOut = flag.String("trace-out", "", "write a Chrome trace (chrome://tracing JSON) to this file")
	flagHealth   = flag.Bool("health", false, "monitor numerical health invariants (DESIGN.md §12); exit non-zero on a violated run")
	flagDtScale  = flag.Float64("dt-scale", 1, "multiply the stability-bounded time step (>1 destabilizes the integrator on purpose)")
)

// setupFlight wires the flight-recorder flags after flag.Parse; the
// returned cleanup flushes and detaches the sinks and must run before
// process exit. stats reports whether -stats already installed the
// histogram span sink, so the trace sink tees instead of replacing it.
func setupFlight(stats bool) (cleanup func()) {
	var cleanups []func()
	cleanup = func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	lvl, err := spinwave.ParseLogLevel(*flagLogLevel)
	if err != nil {
		log.Fatal(err)
	}
	slog.SetDefault(spinwave.NewLogger(os.Stderr, lvl))

	if *flagJournal != "" {
		f, err := os.Create(*flagJournal)
		if err != nil {
			log.Fatal(err)
		}
		detach := spinwave.AttachJournalSink(spinwave.NewJournalWriter(f))
		cleanups = append(cleanups, func() {
			detach()
			if err := f.Close(); err != nil {
				log.Printf("journal close: %v", err)
			}
		})
	}
	if *flagTraceOut != "" {
		trace := &spinwave.ChromeTraceSink{}
		if stats {
			// -stats installed the histogram sink; keep both.
			prev := spinwave.SetSpanSink(nil)
			spinwave.SetSpanSink(spinwave.TeeSpanSink{prev, trace})
		} else {
			spinwave.SetSpanSink(trace)
		}
		cleanups = append(cleanups, func() {
			f, err := os.Create(*flagTraceOut)
			if err != nil {
				log.Printf("trace-out: %v", err)
				return
			}
			if err := trace.Export(f); err == nil {
				err = f.Close()
			}
			if err != nil {
				log.Printf("trace-out: %v", err)
				return
			}
			slog.Info("wrote chrome trace", "file", *flagTraceOut, "spans", trace.Len(), "dropped", trace.Dropped())
		})
	}
	return cleanup
}

// healthExit summarizes the health verdicts of every monitored run and
// returns the process exit code: 1 when any run was violated, else 0 —
// the -health flag's contract, relied on by `make health-smoke`.
func healthExit() int {
	if !*flagHealth {
		return 0
	}
	runs := spinwave.MonitoredRuns()
	violated, degraded := 0, 0
	for _, id := range runs {
		rep, ok := spinwave.HealthFor(id)
		if !ok {
			continue
		}
		switch rep.Verdict {
		case spinwave.VerdictViolated.String():
			violated++
			slog.Error("run violated health invariants", "run", id, "alerts", len(rep.Alerts))
		case spinwave.VerdictDegraded.String():
			degraded++
			slog.Warn("run degraded", "run", id, "alerts", len(rep.Alerts))
		}
	}
	slog.Info("health summary", "runs", len(runs), "violated", violated, "degraded", degraded)
	if violated > 0 {
		return 1
	}
	return 0
}

// reportProbes logs where the probe data of the finished runs went.
func reportProbes() {
	if !*flagProbe {
		return
	}
	runs := spinwave.ProbedRuns()
	if len(runs) == 0 {
		return
	}
	last := runs[len(runs)-1]
	if rec, ok := spinwave.ProbesFor(last); ok {
		slog.Info("probe time-series recorded", "runs", len(runs), "last_run", last,
			"samples", rec.Samples(), "probes", rec.Names())
	}
}

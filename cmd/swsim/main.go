// Command swsim runs individual spin-wave gate simulations and the
// §IV-D robustness sweeps.
//
//	swsim -gate xor -inputs 10                    one micromagnetic case
//	swsim -gate maj3 -inputs 011 -ascii           case + wave-pattern art
//	swsim -sweep width                            width variability sweep
//	swsim -sweep roughness                        edge roughness sweep
//	swsim -sweep thermal                          temperature sweep
//	swsim -demo interference                      Figure 2 demo
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"spinwave"
	"spinwave/internal/core"
	"spinwave/internal/detect"
	"spinwave/internal/grid"
	"spinwave/internal/layout"
	"spinwave/internal/material"
	"spinwave/internal/report"
	"spinwave/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swsim: ")
	os.Exit(run())
}

// run holds the real main body so deferred cleanup (journal sinks,
// trace export, stats summaries) executes before the process exits with
// the code it returns — os.Exit directly in a body with defers would
// skip them.
func run() int {
	gate := flag.String("gate", "xor", "gate: xor, maj3, maj3single")
	inputs := flag.String("inputs", "", "input bits, I1 first (e.g. 10 or 011); empty = full truth table")
	full := flag.Bool("full", false, "use the paper's full dimensions (slow)")
	temp := flag.Float64("temp", 0, "temperature in kelvin (adds thermal field)")
	seed := flag.Int64("seed", 1, "thermal/roughness seed")
	rough := flag.Float64("rough", 0, "edge roughness probability in [0,1]")
	asciiArt := flag.Bool("ascii", false, "print the wave pattern after the run")
	sweepKind := flag.String("sweep", "", "run a sweep instead: width, roughness, thermal")
	demo := flag.String("demo", "", "run a demo: interference")
	stats := flag.Bool("stats", false, "print a timing/metrics summary to stderr when done")
	workers := flag.Int("workers", 0, "LLG stepping workers per transient (0/1 = serial; trajectories are bit-identical)")
	surrogateMode := flag.Bool("surrogate", false, "build the linear-superposition surrogate from the configured backend, run the admission gate, and print its truth table (exit 1 on rejection)")
	ckDir := flag.String("checkpoint", "", "checkpoint directory: periodically snapshot the transient (OVF + manifest pairs) for exact resume")
	ckEvery := flag.Int("checkpoint-every", 0, "checkpoint cadence in committed solver steps (0 = default 2000)")
	resume := flag.Bool("resume", false, "resume from the newest valid checkpoint in -checkpoint instead of starting at t = 0")
	readoutJSON := flag.String("readout-json", "", "write the single-case readouts as full-precision JSON to this file (the stdout table rounds)")
	flag.Parse()

	if *stats {
		spinwave.EnableSpanMetrics()
		defer func() { fmt.Fprint(os.Stderr, "\n"+spinwave.SnapshotMetrics().Summary()) }()
	}
	defer setupFlight(*stats)()

	if *demo == "interference" {
		demoInterference()
		return 0
	}
	if *sweepKind != "" {
		runSweep(*sweepKind, *seed)
		return healthExit()
	}

	kind, err := parseGate(*gate)
	if err != nil {
		log.Fatal(err)
	}
	spec := spinwave.ReducedSpec()
	if *full {
		spec = spinwave.PaperMicromagSpec()
	}
	cfg := spinwave.MicromagConfig{
		Spec:        spec,
		Mat:         material.FeCoB(),
		Temperature: *temp,
		Seed:        *seed,
		Workers:     *workers,
	}
	if *rough > 0 {
		cfg.RegionMutator = sweep.EdgeRoughness(*rough, *seed)
	}
	if *flagProbe {
		cfg.Probes = spinwave.ProbeConfig{Enabled: true}
	}
	if *flagHealth {
		// Abort on the first critical alert: a blown-up transient will
		// never produce a usable readout, so fail fast instead of stepping
		// NaNs to the end of the run.
		cfg.Health = spinwave.HealthConfig{Enabled: true, AbortOnCritical: true}
	}
	cfg.DtScale = *flagDtScale
	if *ckDir != "" {
		cfg.Checkpoint = spinwave.CheckpointConfig{
			Dir: *ckDir, EverySteps: *ckEvery, Resume: *resume,
		}
	}
	m, err := spinwave.NewMicromagnetic(kind, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gate %s: drive %.2f GHz, time step %.3g ps, %.2f ns per case\n",
		kind, m.Freq/1e9, m.Dt()*1e12, m.Duration()*1e9)
	if kind != spinwave.XOR {
		trim, err := m.CalibrateI3()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("I3 phase trim: %.3f rad\n", trim)
	}

	if *surrogateMode {
		return runSurrogate(m)
	}
	caseStart := time.Now()
	if *inputs == "" {
		runTruthTable(kind, m)
		indexSimRun(*gate, "", 1<<kind.NumInputs(), time.Since(caseStart))
	} else {
		runSingleCase(kind, m, *inputs, *temp > 0, *readoutJSON)
		indexSimRun(*gate, *inputs, 1, time.Since(caseStart))
	}
	reportProbes()
	if *asciiArt {
		in, err := parseInputs(kind, orDefault(*inputs, kind))
		if err != nil {
			log.Fatal(err)
		}
		art, err := spinwave.RenderSnapshotASCII(m, in, "mx", 120)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(art)
	}
	return healthExit()
}

func orDefault(inputs string, kind spinwave.GateKind) string {
	if inputs != "" {
		return inputs
	}
	if kind == spinwave.XOR {
		return "00"
	}
	return "000"
}

func parseGate(name string) (spinwave.GateKind, error) {
	switch name {
	case "xor":
		return spinwave.XOR, nil
	case "maj3", "maj":
		return spinwave.MAJ3, nil
	case "maj3single":
		return spinwave.MAJ3Single, nil
	default:
		return 0, fmt.Errorf("%w: %q", spinwave.ErrUnknownGate, name)
	}
}

func parseInputs(kind spinwave.GateKind, s string) ([]bool, error) {
	if len(s) != kind.NumInputs() {
		return nil, fmt.Errorf("gate %s needs %d input bits, got %q", kind, kind.NumInputs(), s)
	}
	in := make([]bool, len(s))
	for i, c := range s {
		switch c {
		case '0':
		case '1':
			in[i] = true
		default:
			return nil, fmt.Errorf("input bits must be 0/1, got %q", s)
		}
	}
	return in, nil
}

// runSurrogate builds the linear-superposition surrogate from the
// micromagnetic backend (one unit transient per input port), runs it
// through the engine's admission gate — the verdict lands in the
// journal as a surrogate.admission event — and prints the surrogate's
// superposed truth table. Exits non-zero when the gate rejects the
// model, so CI smoke jobs fail loudly on a surrogate that drifted out
// of the golden bands.
func runSurrogate(m *spinwave.Micromagnetic) int {
	model, err := spinwave.BuildSurrogate(context.Background(), m)
	if err != nil {
		log.Print(err)
		return 1
	}
	fmt.Printf("surrogate: %d port transients in %.1f s\n", model.Ports(), model.BuildSeconds())
	eng := spinwave.NewEngine()
	if err := eng.AdmitSurrogate(model); err != nil {
		log.Print(err)
		return 1
	}
	fmt.Printf("surrogate admitted (base fingerprint %s)\n", model.BaseFingerprint())
	tt, err := model.Table()
	if err != nil {
		log.Print(err)
		return 1
	}
	fmt.Print(spinwave.FormatTruthTable(tt))
	fmt.Printf("fan-out mismatch |O1-O2|: %.4f, all correct: %v\n", tt.FanOutMatched(), tt.AllCorrect())
	return healthExit()
}

func runTruthTable(kind spinwave.GateKind, m *spinwave.Micromagnetic) {
	var tt *spinwave.TruthTable
	var err error
	if kind == spinwave.XOR {
		tt, err = spinwave.XORTruthTable(m, false)
	} else {
		tt, err = spinwave.MajorityTruthTable(m)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(spinwave.FormatTruthTable(tt))
	fmt.Printf("fan-out mismatch |O1-O2|: %.4f, all correct: %v\n", tt.FanOutMatched(), tt.AllCorrect())
}

func runSingleCase(kind spinwave.GateKind, m *spinwave.Micromagnetic, bits string, thermal bool, jsonOut string) {
	in, err := parseInputs(kind, bits)
	if err != nil {
		log.Fatal(err)
	}
	var out map[string]detect.Readout
	if thermal {
		out, err = sweep.CoherentReadout(m, in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("(coherent background-subtracted thermal readout)")
	} else {
		out, err = m.Run(in)
		if err != nil {
			log.Fatal(err)
		}
	}
	if jsonOut != "" {
		// Full-precision readouts for bit-exact comparison: Go's JSON
		// encoder emits shortest-round-trip float64, so the golden and
		// the resumed run must match byte for byte.
		if err := writeReadoutJSON(jsonOut, out); err != nil {
			log.Fatal(err)
		}
	}
	t := report.NewTable(fmt.Sprintf("%s inputs %s", kind, report.Bits(in)),
		"output", "amplitude", "phase (rad)")
	for _, name := range []string{"O1", "O2"} {
		if r, ok := out[name]; ok {
			t.AddRow(name, fmt.Sprintf("%.4g", r.Amplitude), fmt.Sprintf("%.3f", r.Phase))
		}
	}
	fmt.Print(t.String())
}

// writeReadoutJSON commits the readout map as indented JSON. Map keys
// marshal sorted, so two runs with identical readouts produce identical
// bytes.
func writeReadoutJSON(path string, out map[string]detect.Readout) error {
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func demoInterference() {
	fmt.Println("Two-wave interference (Figure 2):")
	for _, c := range []struct{ p1, p2 float64 }{{0, 0}, {0, math.Pi}} {
		amp, phase := spinwave.Interfere(1, c.p1, 1, c.p2)
		fmt.Printf("  phases (%.2f, %.2f) -> amplitude %.2f, phase %.2f\n", c.p1, c.p2, amp, phase)
	}
}

func runSweep(kind string, seed int64) {
	spec := spinwave.ReducedSpec()
	mat := material.FeCoB()
	switch kind {
	case "width":
		res, err := sweep.Width(spec, []float64{0.8, 0.9, 1.0, 1.1}, func(s layout.Spec) (*core.TruthTable, error) {
			m, err := core.NewMicromagnetic(core.XOR, core.MicromagConfig{Spec: s, Mat: mat})
			if err != nil {
				return nil, err
			}
			return core.XORTruthTable(m, false)
		})
		if err != nil {
			log.Fatal(err)
		}
		printSweep("XOR width variability (scale on 24.75 nm)", "width scale", res)
	case "roughness":
		res, err := sweep.Roughness([]float64{0, 0.1, 0.2}, seed, func(mut func(grid.Mesh, grid.Region) grid.Region) (*core.TruthTable, error) {
			m, err := core.NewMicromagnetic(core.XOR, core.MicromagConfig{Spec: spec, Mat: mat, RegionMutator: mut})
			if err != nil {
				return nil, err
			}
			return core.XORTruthTable(m, false)
		})
		if err != nil {
			log.Fatal(err)
		}
		printSweep("XOR edge roughness", "flip probability", res)
	case "dimension":
		// §III-A sensitivity: trunk-length (d2) error in fractions of λ.
		m, err := core.NewMicromagnetic(core.MAJ3, core.MicromagConfig{Spec: spec, Mat: mat})
		if err != nil {
			log.Fatal(err)
		}
		base, err := m.CalibrateI3()
		if err != nil {
			log.Fatal(err)
		}
		res, err := sweep.DimensionError([]float64{0, 0.05, 0.1, 0.15, 0.2}, func(phaseError float64) (*core.TruthTable, error) {
			mm, err := core.NewMicromagnetic(core.MAJ3, core.MicromagConfig{
				Spec: spec, Mat: mat, I3PhaseTrim: base + phaseError,
			})
			if err != nil {
				return nil, err
			}
			return core.MajorityTruthTable(mm)
		})
		if err != nil {
			log.Fatal(err)
		}
		printSweep("MAJ3 trunk-length error sensitivity", "error (λ)", res)
	case "thermal":
		res, err := sweep.Thermal([]float64{0, 100, 300}, func(T float64) (*core.TruthTable, error) {
			m, err := core.NewMicromagnetic(core.XOR, core.MicromagConfig{
				Spec: spec, Mat: mat, Temperature: T, Seed: seed,
				DriveField: 20e-3, MeasurePeriods: 12,
			})
			if err != nil {
				return nil, err
			}
			return thermalTruthTable(m)
		})
		if err != nil {
			log.Fatal(err)
		}
		printSweep("XOR thermal sweep (coherent readout)", "T (K)", res)
	default:
		log.Fatalf("unknown sweep %q", kind)
	}
}

// thermalTruthTable evaluates the XOR truth table using the coherent
// background-subtracted readout suitable for noisy runs.
func thermalTruthTable(m *core.Micromagnetic) (*core.TruthTable, error) {
	ref, err := sweep.CoherentReadout(m, []bool{false, false})
	if err != nil {
		return nil, err
	}
	tt := &core.TruthTable{Gate: "xor-fo2", Backend: "micromagnetic+coherent", Detection: "threshold"}
	for _, in := range core.EnumerateInputs(2) {
		res, err := sweep.CoherentReadout(m, in)
		if err != nil {
			return nil, err
		}
		want := in[0] != in[1]
		cr := core.CaseResult{Inputs: in, Expected: want, Correct: true}
		for _, name := range []string{"O1", "O2"} {
			r := res[name]
			norm := 0.0
			if ref[name].Amplitude > 0 {
				norm = r.Amplitude / ref[name].Amplitude
			}
			logic := norm <= 0.5
			cr.Outputs = append(cr.Outputs, core.OutputResult{
				Name: name, Amplitude: r.Amplitude, Normalized: norm, Phase: r.Phase, Logic: logic,
			})
			if logic != want {
				cr.Correct = false
			}
		}
		tt.Cases = append(tt.Cases, cr)
	}
	return tt, nil
}

func printSweep(title, param string, res []sweep.Result) {
	t := report.NewTable(title, param, "correct", "fan-out mismatch", "margin")
	for _, r := range res {
		t.AddRow(fmt.Sprintf("%g", r.Param), fmt.Sprintf("%v", r.Correct),
			fmt.Sprintf("%.4f", r.FanOutMismatch), fmt.Sprintf("%.3f", r.Margin))
	}
	fmt.Print(t.String())
}

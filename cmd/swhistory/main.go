// Command swhistory queries the run-history catalog (DESIGN.md §17)
// from the command line — the offline post-mortem view of what swserve
// and swsim indexed.
//
//	swhistory -catalog /var/lib/spinwave/history
//	swhistory -catalog dir -gate xor -tier micromag -limit 20
//	swhistory -catalog dir -trace tr-abc123 -json
//
// Filters compose (AND); -json prints the matching records as a JSON
// array for scripting, the default is an aligned table newest first.
// The catalog is read in place: a directory that has never been
// indexed into is an error, not an empty table, so a typo'd -catalog
// path fails loudly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"spinwave/internal/report"
	"spinwave/internal/runhistory"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swhistory: ")
	os.Exit(run())
}

func run() int {
	catalogDir := flag.String("catalog", "", "run-history catalog directory (the swserve -history / swsim -history directory)")
	gate := flag.String("gate", "", "filter: gate (xor, maj3, ...)")
	verdict := flag.String("verdict", "", "filter: health verdict (healthy, degraded, violated)")
	trace := flag.String("trace", "", "filter: fleet trace ID")
	tier := flag.String("tier", "", "filter: serving tier (cache, disk, surrogate, micromag, behavioral, mixed)")
	kind := flag.String("kind", "", "filter: record kind (eval, table, fleet, sim)")
	since := flag.String("since", "", "filter: RFC3339 timestamp or Unix seconds; keep records indexed at or after")
	limit := flag.Int("limit", 0, "cap the result count, newest first (0 = all)")
	jsonOut := flag.Bool("json", false, "print the matching records as a JSON array")
	flag.Parse()

	if *catalogDir == "" {
		log.Print("need -catalog (the swserve -history directory)")
		flag.Usage()
		return 2
	}
	// Refuse to invent an empty catalog: a query against a directory
	// nothing ever indexed into is almost certainly a typo'd path.
	if _, err := os.Stat(filepath.Join(*catalogDir, runhistory.CatalogFile)); err != nil {
		log.Printf("no catalog at %s: %v", *catalogDir, err)
		return 1
	}
	cat, err := runhistory.Open(*catalogDir)
	if err != nil {
		log.Print(err)
		return 1
	}

	f := runhistory.Filter{
		Gate: *gate, Verdict: *verdict, Trace: *trace,
		Tier: *tier, Kind: *kind, Limit: *limit,
	}
	if f.SinceNS, err = parseSince(*since); err != nil {
		log.Print(err)
		return 2
	}
	recs, err := cat.Query(f)
	if err != nil {
		log.Print(err)
		return 1
	}

	if *jsonOut {
		if recs == nil {
			recs = []runhistory.Record{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(recs); err != nil {
			log.Print(err)
			return 1
		}
		return 0
	}
	printTable(recs, cat.Len())
	return 0
}

// parseSince accepts an RFC3339 timestamp or integer Unix seconds.
func parseSince(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	if sec, err := strconv.ParseInt(s, 10, 64); err == nil {
		return sec * int64(time.Second), nil
	}
	t, err := time.Parse(time.RFC3339, s)
	if err != nil {
		return 0, fmt.Errorf("bad -since %q (want RFC3339 or Unix seconds)", s)
	}
	return t.UnixNano(), nil
}

// printTable renders the records as an aligned table, newest first.
func printTable(recs []runhistory.Record, total int) {
	t := report.NewTable(fmt.Sprintf("%d of %d records", len(recs), total),
		"indexed", "kind", "id", "gate", "inputs", "tier", "verdict", "cases", "wall", "files")
	for _, r := range recs {
		files := ""
		if n := len(r.Files); n > 0 {
			var bytes int64
			for _, f := range r.Files {
				bytes += f.Size
			}
			files = fmt.Sprintf("%d (%s)", n, sizeLabel(bytes))
		}
		wall := ""
		if r.WallNS > 0 {
			wall = time.Duration(r.WallNS).Round(time.Millisecond).String()
		}
		t.AddRow(
			time.Unix(0, r.IndexedNS).Format("2006-01-02T15:04:05"),
			r.Kind, r.ID, r.Gate, r.Inputs, r.Tier, r.Verdict,
			strconv.Itoa(r.Cases), wall, files,
		)
	}
	fmt.Print(t.String())
}

// sizeLabel renders a byte count human-readably.
func sizeLabel(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

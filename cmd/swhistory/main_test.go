package main

import (
	"flag"
	"os"
	"testing"

	"spinwave/internal/runhistory"
)

// resetFlags re-arms the flag package for a fresh run() invocation.
func resetFlags(t *testing.T, args ...string) {
	t.Helper()
	oldArgs := os.Args
	t.Cleanup(func() { os.Args = oldArgs })
	flag.CommandLine = flag.NewFlagSet(os.Args[0], flag.ContinueOnError)
	os.Args = append([]string{"swhistory"}, args...)
}

func TestRunRefusesMissingCatalog(t *testing.T) {
	resetFlags(t, "-catalog", t.TempDir())
	if code := run(); code != 1 {
		t.Fatalf("missing catalog exit = %d, want 1", code)
	}
}

func TestRunQueriesCatalog(t *testing.T) {
	dir := t.TempDir()
	cat, err := runhistory.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Append(
		runhistory.Record{ID: "r1", Kind: "eval", Gate: "xor", Tier: "behavioral"},
		runhistory.Record{ID: "r2", Kind: "fleet", Gate: "maj3", Trace: "tr-1"},
	); err != nil {
		t.Fatal(err)
	}

	resetFlags(t, "-catalog", dir, "-gate", "xor", "-json")
	if code := run(); code != 0 {
		t.Fatalf("query exit = %d, want 0", code)
	}
	resetFlags(t, "-catalog", dir)
	if code := run(); code != 0 {
		t.Fatalf("table exit = %d, want 0", code)
	}
	resetFlags(t, "-catalog", dir, "-since", "garbage")
	if code := run(); code != 2 {
		t.Fatalf("bad since exit = %d, want 2", code)
	}
}

// Command swbench benchmarks the LLG stepping cores and emits
// BENCH_pr5.json: wall-clock timings of the reference (term-by-term)
// stepper versus the fused tiled core at 1/2/4/8 workers on the paper's
// XOR and MAJ3 micromagnetic truth tables, plus a bit-identity check of
// the single-worker and 8-worker magnetization trajectories.
//
//	swbench                      full benchmark, writes BENCH_pr5.json
//	swbench -quick               CI smoke variant: XOR only, one case
//	swbench -out bench.json      choose the output path
//	swbench -compare BENCH_pr3.json   regression-gate vs a baseline
//
// The process exits non-zero if the parallel stepper's trajectory
// diverges from serial by even one bit, or — with -compare — if the
// fused-8 throughput regressed more than 15% against the baseline
// file. The comparison is machine-independent: each run's fused-8
// steps/s is normalized by the same run's reference-stepper steps/s,
// and the two *ratios* are compared, so a slower CI host does not
// trip the gate but a slowdown of the fused core relative to its own
// baseline does.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"spinwave"
)

// modeResult is one (stepper, workers) timing row.
type modeResult struct {
	// Name is "reference" for the term-by-term baseline or "fused" for
	// the tiled core.
	Name string `json:"name"`
	// Workers is the stepping worker count (1 = serial fused).
	Workers int `json:"workers"`
	// Seconds is the total wall-clock time for all cases.
	Seconds float64 `json:"seconds"`
	// StepsPerSec is integrator throughput across the whole table.
	StepsPerSec float64 `json:"steps_per_sec"`
	// Speedup is Seconds of the reference mode divided by this mode's.
	Speedup float64 `json:"speedup_vs_reference"`
}

// gateResult aggregates one gate's benchmark.
type gateResult struct {
	Gate  string `json:"gate"`
	Cases int    `json:"cases"`
	// Cells is the number of material cells in the rasterized gate.
	Cells int `json:"cells"`
	// StepsPerCase is the fixed-step count of one transient.
	StepsPerCase int          `json:"steps_per_case"`
	Modes        []modeResult `json:"modes"`
	// TrajectoriesBitIdentical reports whether the final magnetization
	// of a 1-worker and an 8-worker run matched exactly, cell by cell.
	TrajectoriesBitIdentical bool `json:"trajectories_bit_identical"`
}

// benchReport is the BENCH_pr3.json document.
type benchReport struct {
	Tool       string       `json:"tool"`
	Quick      bool         `json:"quick"`
	GoMaxProcs int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	Gates      []gateResult `json:"gates"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("swbench: ")
	out := flag.String("out", "BENCH_pr5.json", "output JSON path")
	quick := flag.Bool("quick", false, "CI smoke mode: XOR only, a single case per mode")
	compare := flag.String("compare", "", "baseline BENCH json to regression-gate against (15% on normalized fused-8 throughput)")
	flag.Parse()

	report := benchReport{
		Tool:       "swbench",
		Quick:      *quick,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	gates := []spinwave.GateKind{spinwave.XOR}
	if !*quick {
		gates = append(gates, spinwave.MAJ3)
	}
	ok := true
	for _, kind := range gates {
		g, err := benchGate(kind, *quick)
		if err != nil {
			log.Fatal(err)
		}
		if !g.TrajectoriesBitIdentical {
			ok = false
		}
		report.Gates = append(report.Gates, *g)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
	if !ok {
		log.Fatal("FAIL: parallel trajectory diverged from serial")
	}
	if *compare != "" {
		if err := compareBaseline(report, *compare); err != nil {
			log.Fatal(err)
		}
	}
}

// regressionTolerance is the allowed fractional drop of the normalized
// fused-8 throughput against the -compare baseline.
const regressionTolerance = 0.15

// compareBaseline gates the report against a baseline BENCH file. For
// every gate present in both, the fused-8 steps/s normalized by the
// same run's reference steps/s must not fall more than
// regressionTolerance below the baseline's ratio.
func compareBaseline(report benchReport, path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("compare baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("compare baseline %s: %w", path, err)
	}
	compared := 0
	for _, g := range report.Gates {
		var bg *gateResult
		for i := range base.Gates {
			if base.Gates[i].Gate == g.Gate {
				bg = &base.Gates[i]
			}
		}
		if bg == nil {
			continue
		}
		cur, okCur := normalizedFused8(g)
		ref, okRef := normalizedFused8(*bg)
		if !okCur || !okRef {
			continue
		}
		compared++
		log.Printf("%s: normalized fused-8 throughput %.2fx reference (baseline %.2fx)", g.Gate, cur, ref)
		if cur < ref*(1-regressionTolerance) {
			return fmt.Errorf("FAIL: %s fused-8 normalized throughput %.2fx regressed more than %.0f%% below baseline %.2fx (%s)",
				g.Gate, cur, regressionTolerance*100, ref, path)
		}
	}
	if compared == 0 {
		return fmt.Errorf("compare baseline %s: no comparable gates (need reference and fused-8 modes in both)", path)
	}
	log.Printf("compare: %d gate(s) within %.0f%% of %s", compared, regressionTolerance*100, path)
	return nil
}

// normalizedFused8 is a gate's fused-8 steps/s divided by the same
// run's reference-stepper steps/s — the machine-independent throughput
// figure the -compare gate tracks.
func normalizedFused8(g gateResult) (float64, bool) {
	var ref, fused8 float64
	for _, m := range g.Modes {
		switch {
		case m.Name == "reference" && m.Workers == 1:
			ref = m.StepsPerSec
		case m.Name == "fused" && m.Workers == 8:
			fused8 = m.StepsPerSec
		}
	}
	if ref <= 0 || fused8 <= 0 {
		return 0, false
	}
	return fused8 / ref, true
}

// newBackend builds a micromagnetic backend for the benchmark.
func newBackend(kind spinwave.GateKind, workers int, reference bool) (*spinwave.Micromagnetic, error) {
	return spinwave.NewMicromagnetic(kind, spinwave.MicromagConfig{
		Spec:                spinwave.ReducedSpec(),
		Mat:                 spinwave.FeCoB(),
		Workers:             workers,
		UseReferenceStepper: reference,
	})
}

// benchCases returns the input combinations timed per mode: the full
// truth table, or a single asymmetric case in quick mode.
func benchCases(kind spinwave.GateKind, quick bool) [][]bool {
	n := kind.NumInputs()
	if quick {
		in := make([]bool, n)
		in[0] = true
		return [][]bool{in}
	}
	cases := make([][]bool, 0, 1<<n)
	for v := 0; v < 1<<n; v++ {
		in := make([]bool, n)
		for i := 0; i < n; i++ {
			in[i] = v&(1<<(n-1-i)) != 0
		}
		cases = append(cases, in)
	}
	return cases
}

func benchGate(kind spinwave.GateKind, quick bool) (*gateResult, error) {
	cases := benchCases(kind, quick)
	probe, err := newBackend(kind, 1, false)
	if err != nil {
		return nil, err
	}
	g := &gateResult{
		Gate:         kind.String(),
		Cases:        len(cases),
		Cells:        probe.Region.Count(),
		StepsPerCase: int(probe.Duration() / probe.Dt()),
	}
	log.Printf("%s: %d cases, %d cells, %d steps/case", g.Gate, g.Cases, g.Cells, g.StepsPerCase)

	type mode struct {
		name      string
		workers   int
		reference bool
	}
	modes := []mode{
		{"reference", 1, true},
		{"fused", 1, false},
		{"fused", 2, false},
		{"fused", 4, false},
		{"fused", 8, false},
	}
	if quick {
		modes = []mode{{"reference", 1, true}, {"fused", 1, false}, {"fused", 8, false}}
	}
	var refSeconds float64
	for _, md := range modes {
		m, err := newBackend(kind, md.workers, md.reference)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for _, in := range cases {
			if _, err := m.Run(in); err != nil {
				return nil, fmt.Errorf("%s %s w=%d: %w", g.Gate, md.name, md.workers, err)
			}
		}
		secs := time.Since(start).Seconds()
		if md.reference {
			refSeconds = secs
		}
		r := modeResult{
			Name:        md.name,
			Workers:     md.workers,
			Seconds:     secs,
			StepsPerSec: float64(g.StepsPerCase*len(cases)) / secs,
		}
		if refSeconds > 0 {
			r.Speedup = refSeconds / secs
		}
		g.Modes = append(g.Modes, r)
		log.Printf("%s: %-9s workers=%d  %8.2fs  %.0f steps/s  speedup %.2fx",
			g.Gate, md.name, md.workers, secs, r.StepsPerSec, r.Speedup)
	}

	// Divergence gate: the final magnetization of a full transient must
	// be bit-identical between 1 and 8 stepping workers.
	identical, err := trajectoriesIdentical(kind, cases[0])
	if err != nil {
		return nil, err
	}
	g.TrajectoriesBitIdentical = identical
	if identical {
		log.Printf("%s: 1-worker vs 8-worker trajectories bit-identical", g.Gate)
	} else {
		log.Printf("%s: DIVERGENCE between 1-worker and 8-worker trajectories", g.Gate)
	}
	return g, nil
}

// trajectoriesIdentical runs one full transient at 1 and 8 workers and
// compares every cell of the final magnetization exactly.
func trajectoriesIdentical(kind spinwave.GateKind, inputs []bool) (bool, error) {
	m1, err := newBackend(kind, 1, false)
	if err != nil {
		return false, err
	}
	f1, _, _, err := m1.Snapshot(inputs)
	if err != nil {
		return false, err
	}
	m8, err := newBackend(kind, 8, false)
	if err != nil {
		return false, err
	}
	f8, _, _, err := m8.Snapshot(inputs)
	if err != nil {
		return false, err
	}
	if len(f1) != len(f8) {
		return false, fmt.Errorf("snapshot sizes differ: %d vs %d", len(f1), len(f8))
	}
	for c := range f1 {
		if f1[c] != f8[c] {
			return false, nil
		}
	}
	return true, nil
}

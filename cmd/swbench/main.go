// Command swbench benchmarks the LLG stepping cores and emits
// BENCH_pr6.json: wall-clock timings of the reference (term-by-term)
// stepper versus the fused tiled core at 1/2/4/8 workers on the paper's
// XOR and MAJ3 micromagnetic truth tables, a bit-identity check of the
// single-worker and 8-worker magnetization trajectories, and — per gate
// — the warm linear-superposition surrogate: build cost (one unit
// transient per port), admission verdict against the golden bands, and
// warm per-case evaluation time versus the fused single-worker solver.
//
//	swbench                      full benchmark, writes BENCH_pr6.json
//	swbench -quick               CI smoke variant: XOR only, one case
//	swbench -out bench.json      choose the output path
//	swbench -surrogate=false     skip the surrogate build/timing section
//	swbench -compare BENCH_pr6.json   regression-gate vs a baseline
//
// The process exits non-zero if the parallel stepper's trajectory
// diverges from serial by even one bit, or — with -compare — if the
// fused-8 throughput regressed more than 15% against the baseline
// file, if a benchmarked surrogate failed admission, or if the warm
// surrogate is less than 50x faster per case than the fused
// single-worker solver. Every gated figure is machine-independent:
// fused-8 steps/s is normalized by the same run's reference-stepper
// steps/s and the surrogate speedup is the ratio of two per-case times
// from the same run, so a slower CI host does not trip the gates but a
// real slowdown relative to the run's own exact solver does.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"spinwave"
)

// modeResult is one (stepper, workers) timing row.
type modeResult struct {
	// Name is "reference" for the term-by-term baseline or "fused" for
	// the tiled core.
	Name string `json:"name"`
	// Workers is the stepping worker count (1 = serial fused).
	Workers int `json:"workers"`
	// Seconds is the total wall-clock time for all cases.
	Seconds float64 `json:"seconds"`
	// StepsPerSec is integrator throughput across the whole table.
	StepsPerSec float64 `json:"steps_per_sec"`
	// Speedup is Seconds of the reference mode divided by this mode's.
	Speedup float64 `json:"speedup_vs_reference"`
}

// surrogateResult is the warm linear-superposition surrogate section of
// one gate's benchmark: how much the per-port build cost, whether the
// superposed truth table passed the golden-band admission gate, and how
// the warm per-case evaluation time compares to the fused single-worker
// solver from the same run.
type surrogateResult struct {
	// BuildSeconds is the one-off cost of the per-port unit transients.
	BuildSeconds float64 `json:"build_seconds"`
	// Admitted reports whether Verify accepted every truth-table row
	// against the Tables I/II golden bands.
	Admitted bool `json:"admitted"`
	// Evals is the number of warm evaluations timed.
	Evals int `json:"evals"`
	// SecondsPerCase is the warm surrogate's per-case evaluation time.
	SecondsPerCase float64 `json:"seconds_per_case"`
	// MicromagSecondsPerCase is the fused single-worker solver's
	// per-case time from the same run — the denominator-free half of the
	// normalized speedup ratio.
	MicromagSecondsPerCase float64 `json:"micromag_seconds_per_case"`
	// Speedup is MicromagSecondsPerCase / SecondsPerCase.
	Speedup float64 `json:"speedup_vs_fused1"`
}

// gateResult aggregates one gate's benchmark.
type gateResult struct {
	Gate  string `json:"gate"`
	Cases int    `json:"cases"`
	// Cells is the number of material cells in the rasterized gate.
	Cells int `json:"cells"`
	// StepsPerCase is the fixed-step count of one transient.
	StepsPerCase int          `json:"steps_per_case"`
	Modes        []modeResult `json:"modes"`
	// TrajectoriesBitIdentical reports whether the final magnetization
	// of a 1-worker and an 8-worker run matched exactly, cell by cell.
	TrajectoriesBitIdentical bool `json:"trajectories_bit_identical"`
	// Surrogate is the warm-surrogate comparison; nil with -surrogate=false.
	Surrogate *surrogateResult `json:"surrogate,omitempty"`
}

// benchReport is the BENCH_pr3.json document.
type benchReport struct {
	Tool       string       `json:"tool"`
	Quick      bool         `json:"quick"`
	GoMaxProcs int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	Gates      []gateResult `json:"gates"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("swbench: ")
	out := flag.String("out", "BENCH_pr6.json", "output JSON path")
	quick := flag.Bool("quick", false, "CI smoke mode: XOR only, a single case per mode")
	surrogateOn := flag.Bool("surrogate", true, "also build and time the warm linear-superposition surrogate per gate")
	compare := flag.String("compare", "", "baseline BENCH json to regression-gate against (15% on normalized fused-8 throughput; 50x floor on warm-surrogate speedup)")
	flag.Parse()

	report := benchReport{
		Tool:       "swbench",
		Quick:      *quick,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	gates := []spinwave.GateKind{spinwave.XOR}
	if !*quick {
		gates = append(gates, spinwave.MAJ3)
	}
	ok := true
	for _, kind := range gates {
		g, err := benchGate(kind, *quick, *surrogateOn)
		if err != nil {
			log.Fatal(err)
		}
		if !g.TrajectoriesBitIdentical {
			ok = false
		}
		report.Gates = append(report.Gates, *g)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
	if !ok {
		log.Fatal("FAIL: parallel trajectory diverged from serial")
	}
	if *compare != "" {
		if err := compareBaseline(report, *compare); err != nil {
			log.Fatal(err)
		}
	}
}

// regressionTolerance is the allowed fractional drop of the normalized
// fused-8 throughput against the -compare baseline.
const regressionTolerance = 0.15

// minSurrogateSpeedup is the -compare floor on the warm surrogate's
// per-case speedup over the fused single-worker solver. The ratio is
// taken within one run, so the floor is machine-independent; 50x is
// orders of magnitude below the measured speedup and exists to catch a
// surrogate that silently started re-running the solver.
const minSurrogateSpeedup = 50.0

// surrogateRegressionFactor is the allowed drop of the warm-surrogate
// speedup against the -compare baseline's. Sub-microsecond evaluations
// jitter far more than solver throughput run to run, so the relative
// gate is an order of magnitude rather than regressionTolerance — it
// still catches a superposition loop that grew real per-case work while
// staying above the absolute 50x floor.
const surrogateRegressionFactor = 10.0

// compareBaseline gates the report against a baseline BENCH file. For
// every gate present in both, the fused-8 steps/s normalized by the
// same run's reference steps/s must not fall more than
// regressionTolerance below the baseline's ratio. Gates that carry a
// warm-surrogate section are additionally gated on admission and on the
// minSurrogateSpeedup floor (plus an order-of-magnitude guard against
// the baseline's surrogate speedup when the baseline has one; older
// baselines without surrogate data skip only that relative check).
func compareBaseline(report benchReport, path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("compare baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("compare baseline %s: %w", path, err)
	}
	compared := 0
	for _, g := range report.Gates {
		var bg *gateResult
		for i := range base.Gates {
			if base.Gates[i].Gate == g.Gate {
				bg = &base.Gates[i]
			}
		}
		if sr := g.Surrogate; sr != nil {
			compared++
			log.Printf("%s: warm surrogate %.2g us/case, %.0fx fused-1 micromag (build %.1fs, admitted=%v)",
				g.Gate, sr.SecondsPerCase*1e6, sr.Speedup, sr.BuildSeconds, sr.Admitted)
			if !sr.Admitted {
				return fmt.Errorf("FAIL: %s surrogate failed golden-band admission", g.Gate)
			}
			if sr.Speedup < minSurrogateSpeedup {
				return fmt.Errorf("FAIL: %s warm-surrogate speedup %.1fx is below the %.0fx floor over fused-1 micromag",
					g.Gate, sr.Speedup, minSurrogateSpeedup)
			}
			if bg != nil && bg.Surrogate != nil && sr.Speedup < bg.Surrogate.Speedup/surrogateRegressionFactor {
				return fmt.Errorf("FAIL: %s warm-surrogate speedup %.0fx fell more than %.0fx below baseline %.0fx (%s)",
					g.Gate, sr.Speedup, surrogateRegressionFactor, bg.Surrogate.Speedup, path)
			}
		}
		if bg == nil {
			continue
		}
		cur, okCur := normalizedFused8(g)
		ref, okRef := normalizedFused8(*bg)
		if !okCur || !okRef {
			continue
		}
		compared++
		log.Printf("%s: normalized fused-8 throughput %.2fx reference (baseline %.2fx)", g.Gate, cur, ref)
		if cur < ref*(1-regressionTolerance) {
			return fmt.Errorf("FAIL: %s fused-8 normalized throughput %.2fx regressed more than %.0f%% below baseline %.2fx (%s)",
				g.Gate, cur, regressionTolerance*100, ref, path)
		}
	}
	if compared == 0 {
		return fmt.Errorf("compare baseline %s: no comparable figures (need reference and fused-8 modes in both, or a surrogate section)", path)
	}
	log.Printf("compare: %d figure(s) passed the gates against %s", compared, path)
	return nil
}

// normalizedFused8 is a gate's fused-8 steps/s divided by the same
// run's reference-stepper steps/s — the machine-independent throughput
// figure the -compare gate tracks.
func normalizedFused8(g gateResult) (float64, bool) {
	var ref, fused8 float64
	for _, m := range g.Modes {
		switch {
		case m.Name == "reference" && m.Workers == 1:
			ref = m.StepsPerSec
		case m.Name == "fused" && m.Workers == 8:
			fused8 = m.StepsPerSec
		}
	}
	if ref <= 0 || fused8 <= 0 {
		return 0, false
	}
	return fused8 / ref, true
}

// newBackend builds a micromagnetic backend for the benchmark.
func newBackend(kind spinwave.GateKind, workers int, reference bool) (*spinwave.Micromagnetic, error) {
	return spinwave.NewMicromagnetic(kind, spinwave.MicromagConfig{
		Spec:                spinwave.ReducedSpec(),
		Mat:                 spinwave.FeCoB(),
		Workers:             workers,
		UseReferenceStepper: reference,
	})
}

// benchCases returns the input combinations timed per mode: the full
// truth table, or a single asymmetric case in quick mode.
func benchCases(kind spinwave.GateKind, quick bool) [][]bool {
	n := kind.NumInputs()
	if quick {
		in := make([]bool, n)
		in[0] = true
		return [][]bool{in}
	}
	cases := make([][]bool, 0, 1<<n)
	for v := 0; v < 1<<n; v++ {
		in := make([]bool, n)
		for i := 0; i < n; i++ {
			in[i] = v&(1<<(n-1-i)) != 0
		}
		cases = append(cases, in)
	}
	return cases
}

func benchGate(kind spinwave.GateKind, quick, surrogateOn bool) (*gateResult, error) {
	cases := benchCases(kind, quick)
	probe, err := newBackend(kind, 1, false)
	if err != nil {
		return nil, err
	}
	g := &gateResult{
		Gate:         kind.String(),
		Cases:        len(cases),
		Cells:        probe.Region.Count(),
		StepsPerCase: int(probe.Duration() / probe.Dt()),
	}
	log.Printf("%s: %d cases, %d cells, %d steps/case", g.Gate, g.Cases, g.Cells, g.StepsPerCase)

	type mode struct {
		name      string
		workers   int
		reference bool
	}
	modes := []mode{
		{"reference", 1, true},
		{"fused", 1, false},
		{"fused", 2, false},
		{"fused", 4, false},
		{"fused", 8, false},
	}
	if quick {
		modes = []mode{{"reference", 1, true}, {"fused", 1, false}, {"fused", 8, false}}
	}
	var refSeconds, fused1Seconds float64
	for _, md := range modes {
		m, err := newBackend(kind, md.workers, md.reference)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for _, in := range cases {
			if _, err := m.Run(in); err != nil {
				return nil, fmt.Errorf("%s %s w=%d: %w", g.Gate, md.name, md.workers, err)
			}
		}
		secs := time.Since(start).Seconds()
		if md.reference {
			refSeconds = secs
		}
		if md.name == "fused" && md.workers == 1 {
			fused1Seconds = secs
		}
		r := modeResult{
			Name:        md.name,
			Workers:     md.workers,
			Seconds:     secs,
			StepsPerSec: float64(g.StepsPerCase*len(cases)) / secs,
		}
		if refSeconds > 0 {
			r.Speedup = refSeconds / secs
		}
		g.Modes = append(g.Modes, r)
		log.Printf("%s: %-9s workers=%d  %8.2fs  %.0f steps/s  speedup %.2fx",
			g.Gate, md.name, md.workers, secs, r.StepsPerSec, r.Speedup)
	}

	// Divergence gate: the final magnetization of a full transient must
	// be bit-identical between 1 and 8 stepping workers.
	identical, err := trajectoriesIdentical(kind, cases[0])
	if err != nil {
		return nil, err
	}
	g.TrajectoriesBitIdentical = identical
	if identical {
		log.Printf("%s: 1-worker vs 8-worker trajectories bit-identical", g.Gate)
	} else {
		log.Printf("%s: DIVERGENCE between 1-worker and 8-worker trajectories", g.Gate)
	}

	if surrogateOn {
		sr, err := benchSurrogate(kind, fused1Seconds/float64(len(cases)))
		if err != nil {
			return nil, fmt.Errorf("%s surrogate: %w", g.Gate, err)
		}
		g.Surrogate = sr
		log.Printf("%s: surrogate built in %.1fs, admitted=%v, warm eval %.2g us/case — %.0fx fused-1",
			g.Gate, sr.BuildSeconds, sr.Admitted, sr.SecondsPerCase*1e6, sr.Speedup)
	}
	return g, nil
}

// surrogateTimingFloor is the minimum wall-clock spent timing warm
// surrogate evaluations, so the per-case figure averages over many
// thousands of O(microsecond) calls instead of one noisy sample.
const surrogateTimingFloor = 200 * time.Millisecond

// benchSurrogate builds the linear-superposition surrogate from a fused
// single-worker micromagnetic backend (one unit transient per port),
// records its golden-band admission verdict, and times warm evaluations
// over the gate's full truth table. fused1PerCase is the exact solver's
// per-case time from the same run; the reported speedup is the ratio of
// the two per-case times, so it is machine-independent.
func benchSurrogate(kind spinwave.GateKind, fused1PerCase float64) (*surrogateResult, error) {
	m, err := newBackend(kind, 1, false)
	if err != nil {
		return nil, err
	}
	// Majority structures need the I3 phase trim before any table can
	// pass the golden bands — the same calibration every exact-table
	// consumer (swsim, swtables, the golden tests) performs.
	if kind != spinwave.XOR {
		if _, err := m.CalibrateI3(); err != nil {
			return nil, err
		}
	}
	model, err := spinwave.BuildSurrogate(context.Background(), m)
	if err != nil {
		return nil, err
	}
	sr := &surrogateResult{
		BuildSeconds:           model.BuildSeconds(),
		Admitted:               model.Verify() == nil,
		MicromagSecondsPerCase: fused1PerCase,
	}
	// Warm timing always sweeps the full truth table (quick mode trims
	// the solver modes, not this microsecond-scale loop).
	cases := benchCases(kind, false)
	start := time.Now()
	for time.Since(start) < surrogateTimingFloor {
		for _, in := range cases {
			if _, err := model.Eval(in); err != nil {
				return nil, err
			}
			sr.Evals++
		}
	}
	elapsed := time.Since(start).Seconds()
	if sr.Evals > 0 {
		sr.SecondsPerCase = elapsed / float64(sr.Evals)
	}
	if sr.SecondsPerCase > 0 && fused1PerCase > 0 {
		sr.Speedup = fused1PerCase / sr.SecondsPerCase
	}
	return sr, nil
}

// trajectoriesIdentical runs one full transient at 1 and 8 workers and
// compares every cell of the final magnetization exactly.
func trajectoriesIdentical(kind spinwave.GateKind, inputs []bool) (bool, error) {
	m1, err := newBackend(kind, 1, false)
	if err != nil {
		return false, err
	}
	f1, _, _, err := m1.Snapshot(inputs)
	if err != nil {
		return false, err
	}
	m8, err := newBackend(kind, 8, false)
	if err != nil {
		return false, err
	}
	f8, _, _, err := m8.Snapshot(inputs)
	if err != nil {
		return false, err
	}
	if len(f1) != len(f8) {
		return false, fmt.Errorf("snapshot sizes differ: %d vs %d", len(f1), len(f8))
	}
	for c := range f1 {
		if f1[c] != f8[c] {
			return false, nil
		}
	}
	return true, nil
}

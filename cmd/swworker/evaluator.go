package main

import (
	"context"
	"fmt"
	"strings"

	"spinwave"
	"spinwave/internal/fleet"
)

// newEvaluator adapts the tiered engine to the fleet.Evaluator
// interface: each job's spec is resolved to a backend + serving mode
// with the same vocabulary as the swserve /v1 API, and every case runs
// through the engine so the node's cache/disk/surrogate tiers answer
// before its solver does. Transient segment jobs (spec.Transient set)
// instead take the checkpointed path in transient.go, against the
// coordinator's artifact store.
func newEvaluator(eng *spinwave.Engine, coordinator string) fleet.Evaluator {
	return fleet.EvaluatorFunc(func(ctx context.Context, spec fleet.JobSpec, cases [][]bool) (string, []fleet.CaseOutcome, error) {
		if spec.Transient != nil {
			return runTransientSegment(ctx, coordinator, spec, cases)
		}
		b, mode, err := buildBackend(spec)
		if err != nil {
			return "", nil, err
		}
		out := make([]fleet.CaseOutcome, len(cases))
		var fp string
		for i, c := range cases {
			res, err := eng.EvalTiered(ctx, b, c, mode)
			if err != nil {
				return "", nil, err
			}
			out[i] = fleet.CaseOutcome{Inputs: c, Outputs: res.Readouts, Source: string(res.Source)}
			fp = res.Fingerprint
		}
		return fp, out, nil
	})
}

// buildBackend resolves a job spec to a spinwave backend and engine
// serving mode. The vocabulary matches the swserve API: gate
// (xor/maj3/maj3single/maj5), backend (behavioral/micromag), spec
// (paper/paper-micromag/reduced), material (fecob/yig/permalloy), mode
// (direct/auto/surrogate, empty = direct).
func buildBackend(spec fleet.JobSpec) (spinwave.Backend, spinwave.EvalMode, error) {
	kind, err := parseGate(spec.Gate)
	if err != nil {
		return nil, "", err
	}

	var mode spinwave.EvalMode
	switch strings.ToLower(spec.Mode) {
	case "", "direct":
		mode = spinwave.EvalModeDirect
	case "auto":
		mode = spinwave.EvalModeAuto
	case "surrogate":
		mode = spinwave.EvalModeSurrogateOnly
	default:
		return nil, "", fmt.Errorf("swworker: unknown mode %q (want direct, auto or surrogate)", spec.Mode)
	}

	mat := spinwave.FeCoB()
	if spec.Material != "" {
		if mat, err = spinwave.MaterialByName(spec.Material); err != nil {
			return nil, "", fmt.Errorf("swworker: material %q: %w", spec.Material, err)
		}
	}

	switch strings.ToLower(spec.Backend) {
	case "", "behavioral":
		s, err := parseSpec(spec.Spec, spinwave.PaperSpec())
		if err != nil {
			return nil, "", err
		}
		b, err := spinwave.NewBehavioral(kind, s, mat)
		return b, mode, err
	case "micromag", "micromagnetic":
		s, err := parseSpec(spec.Spec, spinwave.ReducedSpec())
		if err != nil {
			return nil, "", err
		}
		b, err := spinwave.NewMicromagnetic(kind,
			spinwave.WithSpec(s), spinwave.WithMaterial(mat))
		return b, mode, err
	default:
		return nil, "", fmt.Errorf("swworker: unknown backend %q (want behavioral or micromag)", spec.Backend)
	}
}

// parseGate resolves a gate name with the swserve API vocabulary.
func parseGate(name string) (spinwave.GateKind, error) {
	switch strings.ToLower(name) {
	case "maj3", "majority":
		return spinwave.MAJ3, nil
	case "maj3single", "maj3-single":
		return spinwave.MAJ3Single, nil
	case "xor":
		return spinwave.XOR, nil
	case "maj5":
		return spinwave.MAJ5, nil
	default:
		return 0, fmt.Errorf("swworker: unknown gate %q", name)
	}
}

func parseSpec(name string, fallback spinwave.Spec) (spinwave.Spec, error) {
	switch strings.ToLower(name) {
	case "":
		return fallback, nil
	case "paper":
		return spinwave.PaperSpec(), nil
	case "paper-micromag":
		return spinwave.PaperMicromagSpec(), nil
	case "reduced":
		return spinwave.ReducedSpec(), nil
	default:
		return spinwave.Spec{}, fmt.Errorf("swworker: unknown spec %q (want paper, paper-micromag or reduced)", name)
	}
}

package main

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"spinwave"
	"spinwave/internal/obs"
	"spinwave/internal/obsplane"
)

// Worker-side observability surface (-metrics-addr): a second listener
// serving /metrics (the obs default registry in Prometheus text
// format), /debug/vars (engine and shipper stats), and /debug/pprof/*.
// Default off — a fleet of workers should not open scrape ports unless
// the operator asks — and deliberately exempt from shutdown: the server
// keeps answering until the process exits, so the final counters of a
// SIGTERMed worker (the flush it is landing right now) stay observable,
// the same contract as swserve's drain-exempt /metrics.

// startMetricsServer listens on addr and serves the worker metrics
// surface until the process ends. It returns the actual bound address
// (so -metrics-addr :0 is loggable and the smoke harness can parse it).
func startMetricsServer(addr string, eng *spinwave.Engine, shipper *obsplane.Shipper) (string, error) {
	publishWorkerVars(eng, shipper)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.Default().WritePrometheus(w) //nolint:errcheck
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go (&http.Server{Handler: mux}).Serve(ln) //nolint:errcheck
	return ln.Addr().String(), nil
}

// publishWorkerVars registers the engine (and, when shipping, the
// journal shipper) with expvar. Once-guarded: tests may start several
// metrics servers in one process.
var publishWorkerOnce sync.Once

func publishWorkerVars(eng *spinwave.Engine, shipper *obsplane.Shipper) {
	publishWorkerOnce.Do(func() {
		expvar.Publish("spinwave_engine", expvar.Func(func() any { return eng.Stats() }))
		if shipper != nil {
			expvar.Publish("spinwave_journal_shipper", expvar.Func(func() any { return shipper.Stats() }))
		}
	})
}

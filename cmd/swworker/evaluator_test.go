package main

import (
	"context"
	"strings"
	"testing"

	"spinwave"
	"spinwave/internal/fleet"
	"spinwave/internal/obsplane"
)

func TestBuildBackendVocabulary(t *testing.T) {
	good := []fleet.JobSpec{
		{Gate: "xor"},
		{Gate: "XOR", Backend: "behavioral", Spec: "paper", Material: "fecob", Mode: "direct"},
		{Gate: "maj3", Mode: "auto"},
		{Gate: "majority"},
		{Gate: "maj3single"},
		{Gate: "maj3-single"},
		{Gate: "maj5", Spec: "paper"},
		{Gate: "xor", Backend: "micromag", Spec: "reduced"},
		{Gate: "xor", Backend: "micromagnetic", Spec: "paper-micromag"},
	}
	for _, spec := range good {
		if _, _, err := buildBackend(spec); err != nil {
			t.Errorf("buildBackend(%+v) = %v, want ok", spec, err)
		}
	}

	bad := []struct {
		spec fleet.JobSpec
		want string
	}{
		{fleet.JobSpec{Gate: "nand"}, "unknown gate"},
		{fleet.JobSpec{Gate: ""}, "unknown gate"},
		{fleet.JobSpec{Gate: "xor", Mode: "psychic"}, "unknown mode"},
		{fleet.JobSpec{Gate: "xor", Backend: "quantum"}, "unknown backend"},
		{fleet.JobSpec{Gate: "xor", Spec: "imaginary"}, "unknown spec"},
		{fleet.JobSpec{Gate: "xor", Material: "unobtainium"}, "material"},
	}
	for _, tc := range bad {
		_, _, err := buildBackend(tc.spec)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("buildBackend(%+v) = %v, want error containing %q", tc.spec, err, tc.want)
		}
	}
}

func TestBuildBackendModes(t *testing.T) {
	for spec, want := range map[string]spinwave.EvalMode{
		"":          spinwave.EvalModeDirect,
		"direct":    spinwave.EvalModeDirect,
		"auto":      spinwave.EvalModeAuto,
		"surrogate": spinwave.EvalModeSurrogateOnly,
	} {
		_, mode, err := buildBackend(fleet.JobSpec{Gate: "xor", Mode: spec})
		if err != nil {
			t.Fatalf("mode %q: %v", spec, err)
		}
		if mode != want {
			t.Errorf("mode %q resolved to %q, want %q", spec, mode, want)
		}
	}
}

func TestEvaluatorEvaluatesCases(t *testing.T) {
	eng := spinwave.NewEngine(spinwave.WithEngineWorkers(2))
	ev := newEvaluator(eng, "http://127.0.0.1:0")

	cases := [][]bool{{false, false}, {true, false}}
	fp, results, err := ev.Evaluate(context.Background(), fleet.JobSpec{Gate: "xor"}, cases)
	if err != nil {
		t.Fatal(err)
	}
	if fp == "" {
		t.Error("empty fingerprint")
	}
	if len(results) != len(cases) {
		t.Fatalf("%d results for %d cases", len(results), len(cases))
	}
	for i, r := range results {
		if len(r.Outputs) == 0 {
			t.Errorf("case %d has no readouts", i)
		}
		if r.Source == "" {
			t.Errorf("case %d has no source tier", i)
		}
		for b, in := range r.Inputs {
			if in != cases[i][b] {
				t.Errorf("case %d echoes inputs %v, want %v", i, r.Inputs, cases[i])
			}
		}
	}

	// Same spec, bad gate: the evaluator surfaces the resolution error.
	if _, _, err := ev.Evaluate(context.Background(), fleet.JobSpec{Gate: "bogus"}, cases); err == nil {
		t.Error("bogus gate evaluated without error")
	}
}

func TestNodeHealthShape(t *testing.T) {
	eng := spinwave.NewEngine(spinwave.WithEngineWorkers(1))
	h := nodeHealth(eng, nil)
	if h["engine"] == nil {
		t.Error("node health missing engine stats")
	}
	if pid, ok := h["pid"].(int); !ok || pid <= 0 {
		t.Errorf("node health pid = %v", h["pid"])
	}
	if h["time"] == "" {
		t.Error("node health missing timestamp")
	}
	if _, ok := h["journal_shipper"]; ok {
		t.Error("shipperless worker reports journal_shipper health")
	}

	ship := obsplane.NewShipper(obsplane.ShipperConfig{BaseURL: "http://127.0.0.1:1", Node: "w1"})
	h = nodeHealth(eng, ship)
	stats, ok := h["journal_shipper"].(map[string]int64)
	if !ok {
		t.Fatalf("journal_shipper health = %#v", h["journal_shipper"])
	}
	for _, key := range []string{"shipped", "pending", "dropped", "flush_attempts", "flush_failures"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("shipper health missing %q: %v", key, stats)
		}
	}
}

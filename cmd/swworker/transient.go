package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"spinwave"
	"spinwave/internal/fleet"
	"spinwave/internal/obsplane"
)

// Transient segments (DESIGN.md §15): a job whose spec carries a
// Transient block is one bounded slice of a long micromagnetic run. The
// worker bypasses the tiered engine — partial trajectories must never
// land in a cache — and instead:
//
//  1. downloads the run's newest checkpoint pair from the coordinator's
//     artifact store into a scratch directory,
//  2. runs the micromagnetic backend with Resume set and StopAtStep at
//     the segment boundary, uploading every committed snapshot back to
//     the store, and
//  3. posts either a checkpoint partial (intermediate segment, no
//     readouts) or the real readouts (final segment).
//
// Resume is exact: the restored solver continues the identical
// trajectory, so a segment re-run after a crash — even on another
// worker — lands on the same readouts an uninterrupted run produces.
// When no checkpoint exists yet (segment 0, or every upload was lost)
// the run starts from t = 0 and still pauses at the same absolute step,
// so correctness never depends on a checkpoint being found.

// runTransientSegment evaluates one segment job.
func runTransientSegment(ctx context.Context, coordinator string, spec fleet.JobSpec, cases [][]bool) (string, []fleet.CaseOutcome, error) {
	ts := spec.Transient
	if len(cases) != 1 {
		return "", nil, fmt.Errorf("swworker: transient segment carries %d cases, want exactly 1", len(cases))
	}
	inputs := cases[0]

	dir, err := os.MkdirTemp("", "swworker-ck-*")
	if err != nil {
		return "", nil, fmt.Errorf("swworker: checkpoint scratch dir: %w", err)
	}
	defer os.RemoveAll(dir)

	art := &artifactClient{base: strings.TrimRight(coordinator, "/"),
		hc: &http.Client{Timeout: 60 * time.Second}}
	if err := art.downloadCheckpoints(ctx, ts.Run, dir); err != nil {
		return "", nil, fmt.Errorf("swworker: fetch checkpoints for run %s: %w", ts.Run, err)
	}

	// The step budget comes from the backend's own duration and step
	// size, so every segment of the run — on any worker — derives the
	// same absolute boundaries.
	probe, err := buildTransientBackend(spec)
	if err != nil {
		return "", nil, err
	}
	total := int(probe.Duration() / probe.Dt())
	stopAt := 0
	final := ts.Segment >= ts.Segments-1
	if !final {
		stopAt = total * (ts.Segment + 1) / ts.Segments
	}

	// Snapshot uploads run on the stepping goroutine; a failed upload is
	// remembered and fails the job afterwards, so the lease requeues the
	// segment instead of silently leaving the store stale.
	var uploadErr error
	m, err := buildTransientBackend(spec,
		// Probes ride every transient segment (≤3% budget, E-OBS2): each
		// segment uploads its slice of the run's probe time-series beside
		// its checkpoints, so at completion the artifact store holds the
		// full probe history of the run.
		spinwave.WithProbes(spinwave.ProbeConfig{Enabled: true}),
		spinwave.WithCheckpoint(spinwave.CheckpointConfig{
			Dir:        dir,
			EverySteps: ts.EverySteps,
			Resume:     true,
			StopAtStep: stopAt,
			// The fleet trace rides the evaluation context (the worker wraps it
			// at claim), so every manifest this segment writes names the trace
			// a post-mortem will query.
			Trace: obsplane.Trace(ctx),
			OnSnapshot: func(d string, snap spinwave.CheckpointSnapshot) {
				if err := art.uploadSnapshot(ctx, ts.Run, d, snap); err != nil && uploadErr == nil {
					uploadErr = err
				}
			},
		}))
	if err != nil {
		return "", nil, err
	}

	// The recorder publishes under the run ID the solver sees; pin it to
	// the durable transient run ID so the probe CSV below and the
	// /v1/runs surfaces key by the same name the artifacts do.
	res, runErr := m.RunContext(spinwave.WithRunID(ctx, ts.Run), inputs)
	fp, _ := m.Fingerprint()
	switch {
	case errors.Is(runErr, spinwave.ErrRunPaused):
		if uploadErr != nil {
			return "", nil, fmt.Errorf("swworker: checkpoint upload: %w", uploadErr)
		}
		if err := uploadProbeCSV(ctx, art, ts, dir); err != nil {
			return "", nil, err
		}
		return fp, []fleet.CaseOutcome{{Inputs: inputs, Source: fleet.SourceCheckpoint}}, nil
	case runErr != nil:
		return "", nil, runErr
	}
	if uploadErr != nil {
		return "", nil, fmt.Errorf("swworker: checkpoint upload: %w", uploadErr)
	}
	if err := uploadProbeCSV(ctx, art, ts, dir); err != nil {
		return "", nil, err
	}
	return fp, []fleet.CaseOutcome{{Inputs: inputs, Outputs: res, Source: string(spinwave.EvalSourceMicromag)}}, nil
}

// uploadProbeCSV lands this segment's probe time-series in the run's
// artifact store as probes-s<segment>.csv. Each segment contributes its
// own slice (the recorder starts fresh per segment), so a completed
// run's store holds the full probe history next to its checkpoints —
// the ROADMAP's post-mortem story. A failed upload fails the job like a
// failed checkpoint upload: the lease requeues the segment rather than
// completing a run whose telemetry silently went missing.
func uploadProbeCSV(ctx context.Context, art *artifactClient, ts *fleet.TransientSpec, scratch string) error {
	rec, ok := spinwave.ProbesFor(ts.Run)
	if !ok {
		return nil // probes unavailable: nothing to publish
	}
	name := fmt.Sprintf("probes-s%02d.csv", ts.Segment)
	path := filepath.Join(scratch, name)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("swworker: probe csv: %w", err)
	}
	snap := rec.Snapshot(ts.Run)
	if err := snap.WriteCSV(f); err != nil {
		f.Close()
		return fmt.Errorf("swworker: probe csv: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("swworker: probe csv: %w", err)
	}
	if err := art.put(ctx, ts.Run, name, path); err != nil {
		return fmt.Errorf("swworker: probe csv upload: %w", err)
	}
	return nil
}

// buildTransientBackend resolves a transient job spec to the
// micromagnetic backend — the only backend with a transient to
// checkpoint.
func buildTransientBackend(spec fleet.JobSpec, extra ...spinwave.MicromagOption) (*spinwave.Micromagnetic, error) {
	switch strings.ToLower(spec.Backend) {
	case "micromag", "micromagnetic":
	default:
		return nil, fmt.Errorf("swworker: transient segments need backend micromag, got %q", spec.Backend)
	}
	kind, err := parseGate(spec.Gate)
	if err != nil {
		return nil, err
	}
	s, err := parseSpec(spec.Spec, spinwave.ReducedSpec())
	if err != nil {
		return nil, err
	}
	mat := spinwave.FeCoB()
	if spec.Material != "" {
		if mat, err = spinwave.MaterialByName(spec.Material); err != nil {
			return nil, fmt.Errorf("swworker: material %q: %w", spec.Material, err)
		}
	}
	opts := []spinwave.MicromagOption{spinwave.WithSpec(s), spinwave.WithMaterial(mat)}
	if spec.DtScale > 0 {
		opts = append(opts, spinwave.WithDtScale(spec.DtScale))
	}
	opts = append(opts, extra...)
	return spinwave.NewMicromagnetic(kind, opts...)
}

// artifactClient talks to the coordinator's run-artifact store
// (swserve -artifacts): GET to fetch checkpoints, PUT to land them.
type artifactClient struct {
	base string
	hc   *http.Client
}

// downloadCheckpoints mirrors the run's checkpoint pairs (ck-*.json,
// ck-*.ovf) into dir. A run with no artifacts yet is not an error —
// segment 0 starts from t = 0. Validation happens locally: the resume
// path digests and parses what it loads and quarantines corruption.
func (a *artifactClient) downloadCheckpoints(ctx context.Context, run, dir string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/runs/%s/artifacts", a.base, run), nil)
	if err != nil {
		return err
	}
	resp, err := a.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("artifact list: %s", httpError(resp))
	}
	var list struct {
		Artifacts []struct {
			Name string `json:"name"`
		} `json:"artifacts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return fmt.Errorf("artifact list: %w", err)
	}
	for _, f := range list.Artifacts {
		if !strings.HasPrefix(f.Name, "ck-") ||
			!(strings.HasSuffix(f.Name, ".json") || strings.HasSuffix(f.Name, ".ovf")) {
			continue
		}
		if err := a.download(ctx, run, f.Name, filepath.Join(dir, f.Name)); err != nil {
			return fmt.Errorf("artifact %s: %w", f.Name, err)
		}
	}
	return nil
}

func (a *artifactClient) download(ctx context.Context, run, name, dest string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/runs/%s/artifacts/%s", a.base, run, name), nil)
	if err != nil {
		return err
	}
	resp, err := a.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("download: %s", httpError(resp))
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, resp.Body); err != nil {
		f.Close()
		os.Remove(dest)
		return err
	}
	return f.Close()
}

// uploadSnapshot lands one committed snapshot pair, OVF first and
// manifest second — the same commit order the disk writer uses, so a
// peer listing the store never sees a manifest without its field.
func (a *artifactClient) uploadSnapshot(ctx context.Context, run, dir string, snap spinwave.CheckpointSnapshot) error {
	if err := a.put(ctx, run, snap.Manifest.MagFile, filepath.Join(dir, snap.Manifest.MagFile)); err != nil {
		return err
	}
	return a.put(ctx, run, snap.ManifestFile, filepath.Join(dir, snap.ManifestFile))
}

func (a *artifactClient) put(ctx context.Context, run, name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		fmt.Sprintf("%s/v1/runs/%s/artifacts/%s", a.base, run, name), f)
	if err != nil {
		return err
	}
	req.ContentLength = fi.Size()
	resp, err := a.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("put %s: %s", name, httpError(resp))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// httpError summarizes a non-200 response: status line plus a bounded
// body prefix (the v1 error envelope is small JSON).
func httpError(resp *http.Response) string {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Sprintf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
}

// Command swworker is the fleet worker: it registers with a
// coordinator (swserve started with -fleet-queue), polls for jobs,
// evaluates their cases through its own tiered engine — so the memory
// cache, disk store, and admitted surrogates apply per node — and posts
// results plus node health back over HTTP.
//
//	swworker -coordinator http://127.0.0.1:8080 -workers 8 -store /var/lib/spinwave
//
// The worker is stateless beyond its engine tiers: kill it at any
// moment and the coordinator's lease expiry requeues whatever it held;
// restart it and it re-registers under a fresh (or the -id pinned) name.
//
// Observability (DESIGN.md §16): the worker batch-forwards its journal
// events to the coordinator's durable fleet journal (disable with
// -ship-journal=false), stamping each with its node name and the
// claimed job's trace ID — so a killed worker's flight-recorder tail
// survives at the coordinator. -metrics-addr opens a second listener
// with /metrics, /debug/vars and /debug/pprof for direct scrapes.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"spinwave"
	"spinwave/internal/fleet"
	"spinwave/internal/obsplane"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swworker: ")
	coordinator := flag.String("coordinator", "http://127.0.0.1:8080", "coordinator base URL (swserve with -fleet-queue)")
	id := flag.String("id", "", "worker ID to register under (empty = coordinator-assigned)")
	workers := flag.Int("workers", 0, "engine worker-pool size (0 = NumCPU)")
	cacheSize := flag.Int("cache", 4096, "engine LRU capacity in cached case readouts (0 disables)")
	storeDir := flag.String("store", "", "disk-backed result store directory (per-node tier; empty disables)")
	poll := flag.Duration("poll", 0, "idle re-poll interval (0 = coordinator-suggested)")
	caseDelay := flag.Duration("case-delay", 0, "artificial per-case delay (test/smoke aid: makes mid-job kills reliable)")
	journalFile := flag.String("journal", "", "write the structured run journal (JSON lines) to this file")
	shipJournal := flag.Bool("ship-journal", true, "batch-forward journal events to the coordinator's durable fleet journal")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (empty disables)")
	flag.Parse()

	if *journalFile != "" {
		f, err := os.Create(*journalFile)
		if err != nil {
			log.Fatal(err)
		}
		detach := spinwave.AttachJournalSink(spinwave.NewJournalWriter(f))
		defer func() {
			detach()
			f.Close()
		}()
	}

	var opts []spinwave.EngineOption
	if *workers > 0 {
		opts = append(opts, spinwave.WithEngineWorkers(*workers))
	}
	opts = append(opts, spinwave.WithEngineCacheSize(*cacheSize))
	if *storeDir != "" {
		store, err := spinwave.OpenDiskStore(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, spinwave.WithEngineDiskStore(store))
	}
	eng := spinwave.NewEngine(opts...)

	var shipper *obsplane.Shipper
	if *shipJournal {
		shipper = obsplane.NewShipper(obsplane.ShipperConfig{
			BaseURL: strings.TrimRight(*coordinator, "/"),
			Node:    *id, // empty until registration assigns one; Flush holds
		})
		defer spinwave.AttachJournalSink(shipper)()
	}

	w := &fleet.Worker{
		BaseURL:   *coordinator,
		Eval:      newEvaluator(eng, *coordinator),
		ID:        *id,
		Poll:      *poll,
		CaseDelay: *caseDelay,
		Health:    func() map[string]any { return nodeHealth(eng, shipper) },
	}
	if shipper != nil {
		// Each claim retargets the shipper: events emitted while serving
		// the job carry its trace (and the registered node name — the
		// coordinator may have assigned one at registration).
		w.OnClaim = func(j *fleet.Job) {
			shipper.SetNode(w.ID)
			shipper.SetTrace(j.Trace)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *metricsAddr != "" {
		actual, err := startMetricsServer(*metricsAddr, eng, shipper)
		if err != nil {
			log.Fatal(err)
		}
		// The log line names the actual port so -metrics-addr :0 is usable
		// by the smoke harness.
		log.Printf("metrics on http://%s/metrics", actual)
	}

	shipDone := make(chan struct{})
	if shipper != nil {
		go func() {
			defer close(shipDone)
			shipper.Run(ctx)
		}()
	} else {
		close(shipDone)
	}

	log.Printf("worker starting, coordinator %s", *coordinator)
	err := w.Run(ctx)
	stop() // end the shipper loop too, triggering its final flush
	<-shipDone
	if shipper != nil {
		log.Printf("journal shipper: %v", shipper.Stats())
	}
	log.Printf("worker %s stopping after %d jobs: %v", w.ID, w.JobsDone(), err)
	if ctx.Err() == nil && err != nil {
		os.Exit(1)
	}
}

// nodeHealth is the per-node health snapshot attached to heartbeats:
// the engine tier statistics (cache/disk/surrogate hits, evaluations,
// coalesced calls) plus the journal shipper's delivery counters. The
// coordinator forwards it to /v1/fleet/workers and deep healthz, and
// federates the numeric engine leaves into its own /metrics as
// spinwave_fleet_node_engine{node,stat} gauges.
func nodeHealth(eng *spinwave.Engine, shipper *obsplane.Shipper) map[string]any {
	h := map[string]any{
		"engine": eng.Stats(),
		"pid":    os.Getpid(),
		"time":   time.Now().UTC().Format(time.RFC3339),
	}
	if shipper != nil {
		h["journal_shipper"] = shipper.Stats()
	}
	return h
}

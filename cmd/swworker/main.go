// Command swworker is the fleet worker: it registers with a
// coordinator (swserve started with -fleet-queue), polls for jobs,
// evaluates their cases through its own tiered engine — so the memory
// cache, disk store, and admitted surrogates apply per node — and posts
// results plus node health back over HTTP.
//
//	swworker -coordinator http://127.0.0.1:8080 -workers 8 -store /var/lib/spinwave
//
// The worker is stateless beyond its engine tiers: kill it at any
// moment and the coordinator's lease expiry requeues whatever it held;
// restart it and it re-registers under a fresh (or the -id pinned) name.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spinwave"
	"spinwave/internal/fleet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swworker: ")
	coordinator := flag.String("coordinator", "http://127.0.0.1:8080", "coordinator base URL (swserve with -fleet-queue)")
	id := flag.String("id", "", "worker ID to register under (empty = coordinator-assigned)")
	workers := flag.Int("workers", 0, "engine worker-pool size (0 = NumCPU)")
	cacheSize := flag.Int("cache", 4096, "engine LRU capacity in cached case readouts (0 disables)")
	storeDir := flag.String("store", "", "disk-backed result store directory (per-node tier; empty disables)")
	poll := flag.Duration("poll", 0, "idle re-poll interval (0 = coordinator-suggested)")
	caseDelay := flag.Duration("case-delay", 0, "artificial per-case delay (test/smoke aid: makes mid-job kills reliable)")
	journalFile := flag.String("journal", "", "write the structured run journal (JSON lines) to this file")
	flag.Parse()

	if *journalFile != "" {
		f, err := os.Create(*journalFile)
		if err != nil {
			log.Fatal(err)
		}
		detach := spinwave.AttachJournalSink(spinwave.NewJournalWriter(f))
		defer func() {
			detach()
			f.Close()
		}()
	}

	var opts []spinwave.EngineOption
	if *workers > 0 {
		opts = append(opts, spinwave.WithEngineWorkers(*workers))
	}
	opts = append(opts, spinwave.WithEngineCacheSize(*cacheSize))
	if *storeDir != "" {
		store, err := spinwave.OpenDiskStore(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, spinwave.WithEngineDiskStore(store))
	}
	eng := spinwave.NewEngine(opts...)

	w := &fleet.Worker{
		BaseURL:   *coordinator,
		Eval:      newEvaluator(eng, *coordinator),
		ID:        *id,
		Poll:      *poll,
		CaseDelay: *caseDelay,
		Health:    func() map[string]any { return nodeHealth(eng) },
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("worker starting, coordinator %s", *coordinator)
	err := w.Run(ctx)
	log.Printf("worker %s stopping after %d jobs: %v", w.ID, w.JobsDone(), err)
	if ctx.Err() == nil && err != nil {
		os.Exit(1)
	}
}

// nodeHealth is the per-node health snapshot attached to heartbeats:
// the engine tier statistics (cache/disk/surrogate hits, evaluations,
// coalesced calls) the coordinator forwards to /v1/fleet/workers and
// deep healthz.
func nodeHealth(eng *spinwave.Engine) map[string]any {
	return map[string]any{
		"engine": eng.Stats(),
		"pid":    os.Getpid(),
		"time":   time.Now().UTC().Format(time.RFC3339),
	}
}

package main

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"strings"

	"spinwave/internal/checkpoint"
)

// Run-artifact surface (-artifacts): a durable store of per-run files —
// checkpoint manifest/OVF pairs, probe CSVs, journal tails, health
// verdicts — addressed by run ID (DESIGN.md §15).
//
//	GET /v1/runs/{id}/artifacts          list a run's artifacts
//	GET /v1/runs/{id}/artifacts/{name}   download one artifact
//	PUT /v1/runs/{id}/artifacts/{name}   upload one artifact (workers)
//
// Uploads stay open while draining, like fleet result posts: a worker
// about to be drained must still land its last checkpoint, or the next
// segment restarts instead of resuming. Downloads and listings follow
// the normal read-only rules. Failures use the v1 error envelope.

// maxArtifactBytes bounds one uploaded artifact (a reduced-mesh OVF
// snapshot is a few MB; 64 MB leaves room for paper-scale meshes).
const maxArtifactBytes = 64 << 20

// initArtifacts opens (creating if needed) the artifact store at dir.
func (s *server) initArtifacts(dir string) error {
	a, err := checkpoint.OpenArtifactStore(dir)
	if err != nil {
		return err
	}
	s.artifacts = a
	return nil
}

// artifactsEnabled reports whether the artifact surface is mounted.
func (s *server) artifactsEnabled() bool { return s.artifacts != nil }

// artifactRoutes mounts the artifact endpoints on mux.
func (s *server) artifactRoutes(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/runs/{id}/artifacts", s.withMetrics("/v1/runs/artifacts", s.handleArtifactList))
	mux.HandleFunc("GET /v1/runs/{id}/artifacts/{name}", s.withMetrics("/v1/runs/artifacts/name", s.handleArtifactGet))
	mux.HandleFunc("PUT /v1/runs/{id}/artifacts/{name}", s.withMetrics("/v1/runs/artifacts/put", s.handleArtifactPut))
}

func (s *server) handleArtifactList(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	run := r.PathValue("id")
	infos, err := s.artifacts.List(run)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			s.failAs(w, http.StatusNotFound, codeNotFound, false, err.Error())
		} else {
			s.fail(w, err)
		}
		return
	}
	if infos == nil {
		infos = []checkpoint.ArtifactInfo{}
	}
	s.reply(w, map[string]any{"run": run, "artifacts": infos})
}

// artifactContentType picks the response type from the artifact name.
func artifactContentType(name string) string {
	switch {
	case strings.HasSuffix(name, ".json"):
		return "application/json"
	case strings.HasSuffix(name, ".jsonl"):
		return "application/x-ndjson"
	case strings.HasSuffix(name, ".csv"):
		return "text/csv"
	case strings.HasSuffix(name, ".ovf"):
		// OVF 2.0 text format; served as plain text for curl-ability.
		return "text/plain; charset=utf-8"
	default:
		return "application/octet-stream"
	}
}

func (s *server) handleArtifactGet(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	run, name := r.PathValue("id"), r.PathValue("name")
	rc, size, err := s.artifacts.Open(run, name)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			s.failAs(w, http.StatusNotFound, codeNotFound, false,
				fmt.Sprintf("run %q has no artifact %q", run, name))
		} else {
			s.fail(w, err)
		}
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", artifactContentType(name))
	w.Header().Set("Content-Length", fmt.Sprintf("%d", size))
	if _, err := io.Copy(w, rc); err != nil {
		s.errors.Add(1)
	}
}

// handleArtifactPut stays open while draining (see the package comment).
func (s *server) handleArtifactPut(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	run, name := r.PathValue("id"), r.PathValue("name")
	if !checkpoint.ValidArtifactName(run) || !checkpoint.ValidArtifactName(name) {
		s.badRequest(w, fmt.Errorf("bad artifact path %q/%q: want plain file names of [a-zA-Z0-9._-], not starting with '.'", run, name))
		return
	}
	n, err := s.artifacts.Put(run, name, http.MaxBytesReader(w, r.Body, maxArtifactBytes))
	if err != nil {
		s.fail(w, err)
		return
	}
	s.reply(w, map[string]any{"run": run, "name": name, "size": n})
}

// artifactHealth is the deep-healthz artifacts section: the store root
// must still accept atomic writes, or workers cannot land checkpoints
// and transient segments restart instead of resuming.
func (s *server) artifactHealth() (section map[string]any, healthy bool) {
	section = map[string]any{"root": s.artifacts.Root()}
	runs, err := s.artifacts.Runs()
	if err == nil {
		section["runs"] = len(runs)
	}
	healthy = true
	if err := s.artifacts.WritableProbe(); err != nil {
		section["error"] = err.Error()
		healthy = false
	}
	return section, healthy
}

package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestHealthzShallowFields pins the extended liveness response: the
// original {"status","workers"} shape must survive (additive fields
// only) and the new build-info/uptime/drain fields must be present.
func TestHealthzShallowFields(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var got map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got["status"] != "ok" {
		t.Errorf("status %v, want ok", got["status"])
	}
	for _, key := range []string{"workers", "go_version", "vcs_revision", "uptime_seconds", "draining"} {
		if _, ok := got[key]; !ok {
			t.Errorf("healthz response missing %q: %v", key, got)
		}
	}
	if draining, _ := got["draining"].(bool); draining {
		t.Error("fresh server reports draining=true")
	}
	// The shallow probe must not have run the canary.
	if _, ok := got["canary"]; ok {
		t.Error("shallow healthz ran the deep canary")
	}
}

// TestHealthzDeep exercises the readiness probe: behavioral canary
// through the real engine path, eval-pool ping, and journal sink count
// (ring + hub attached by the server).
func TestHealthzDeep(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/healthz?deep=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deep healthz status %d: %s", resp.StatusCode, body)
	}
	var got struct {
		Status string `json:"status"`
		Canary struct {
			OK        bool    `json:"ok"`
			ElapsedMS float64 `json:"elapsed_ms"`
		} `json:"canary"`
		Pool struct {
			WaitMS float64 `json:"wait_ms"`
		} `json:"pool"`
		JournalSinks int `json:"journal_sinks"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Status != "ok" || !got.Canary.OK {
		t.Errorf("deep healthz unhealthy: %s", body)
	}
	if got.JournalSinks < 2 {
		t.Errorf("journal_sinks = %d, want >= 2 (ring + hub)", got.JournalSinks)
	}
}

// TestSLOEndpointAndGauges drives a few requests and checks they appear
// in the /v1/slo rolling window and that the burn-rate gauges are
// exported in /metrics.
func TestSLOEndpointAndGauges(t *testing.T) {
	_, ts := newTestServer(t)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/v1/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/slo status %d", resp.StatusCode)
	}
	var rep sloReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.WindowSeconds <= 0 || rep.ObjectivePct <= 0 {
		t.Errorf("slo report missing window/objective: %+v", rep)
	}
	var hz *sloEndpoint
	for i := range rep.Endpoints {
		if rep.Endpoints[i].Path == "/v1/healthz" {
			hz = &rep.Endpoints[i]
		}
	}
	if hz == nil {
		t.Fatalf("/v1/healthz not tracked: %+v", rep.Endpoints)
	}
	if hz.Requests < 3 {
		t.Errorf("healthz requests = %d, want >= 3", hz.Requests)
	}
	if hz.ErrorBurnRate != 0 {
		t.Errorf("healthz error burn rate = %g on all-200 traffic, want 0", hz.ErrorBurnRate)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mbody, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{"swserve_slo_error_burn_rate", "swserve_slo_slow_burn_rate"} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestSLOTrackerBurnRates unit-tests the window math: with a 99%%
// objective, a 1%% error rate burns the budget at exactly rate 1.
func TestSLOTrackerBurnRates(t *testing.T) {
	tr := newSLOTracker(time.Minute, 99, time.Second)
	for i := 0; i < 99; i++ {
		tr.record("/x", http.StatusOK, time.Millisecond)
	}
	tr.record("/x", http.StatusInternalServerError, 2*time.Second)
	ep := tr.endpoint("/x")
	if ep.Requests != 100 || ep.Errors != 1 || ep.Slow != 1 {
		t.Fatalf("counts: %+v", ep)
	}
	if ep.ErrorBurnRate < 0.99 || ep.ErrorBurnRate > 1.01 {
		t.Errorf("error burn rate = %g, want ~1.0", ep.ErrorBurnRate)
	}
	if ep.SlowBurnRate < 0.99 || ep.SlowBurnRate > 1.01 {
		t.Errorf("slow burn rate = %g, want ~1.0", ep.SlowBurnRate)
	}
	// 4xx responses do not burn the availability budget.
	tr.record("/y", http.StatusBadRequest, time.Millisecond)
	if ep := tr.endpoint("/y"); ep.Errors != 0 {
		t.Errorf("client error counted against availability: %+v", ep)
	}
}

// TestRunEventsDrainingEvent pins the drain path for in-flight NDJSON
// tails: when the server starts draining, the open stream receives a
// final server_draining line before close instead of just going quiet
// (companion to the shutdown-scrape regression test in obs_test.go).
func TestRunEventsDrainingEvent(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.heartbeat = 20 * time.Millisecond

	resp, err := http.Get(ts.URL + "/v1/runs/rdrain/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	srv.draining.Store(true)

	type line struct {
		Event string `json:"event"`
		Run   string `json:"run"`
	}
	var lines []line
	done := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var l line
			if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
				done <- err
				return
			}
			lines = append(lines, l)
		}
		done <- sc.Err()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("tail did not terminate after drain started")
	}
	if len(lines) == 0 {
		t.Fatal("stream closed without any line")
	}
	last := lines[len(lines)-1]
	if last.Event != "server_draining" || last.Run != "rdrain" {
		t.Errorf("final line %+v, want server_draining for rdrain", last)
	}
}

package main

import (
	"context"
	"fmt"
	"net/http"
	"runtime/debug"
	"sync"
	"time"

	"spinwave"
	"spinwave/internal/journal"
)

// Health endpoints (DESIGN.md §12).
//
// GET /v1/healthz is the shallow liveness probe: always cheap, never
// touches the engine. Its response keeps the original {"status","workers"}
// shape and adds build info (Go version, VCS revision), uptime and the
// drain state — additive fields only, so existing probes keep parsing.
//
// GET /v1/healthz?deep=1 is the readiness probe: it additionally runs a
// cached behavioral canary evaluation (an XOR truth table through the
// real engine path — cache, singleflight, worker pool — verifying the
// service still computes correct gates end to end), pings the eval pool
// for queue saturation, and reports the journal sink count. A failing
// canary or a wedged pool answers 503 so load balancers stop routing.

// canaryTTL bounds how often the deep check actually re-evaluates; in
// between, the cached canary outcome is served. The behavioral canary
// is microseconds of compute, but a probe storm should still not
// multiply it.
const canaryTTL = 30 * time.Second

// canaryTimeout caps one canary evaluation.
const canaryTimeout = 10 * time.Second

// canaryState is the cached outcome of the last behavioral canary.
type canaryState struct {
	mu      sync.Mutex
	checked time.Time
	ok      bool
	err     string
	elapsed time.Duration
}

// buildVersion extracts the Go toolchain version and VCS revision from
// the binary's embedded build info.
func buildVersion() (goVersion, revision string) {
	goVersion, revision = "unknown", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	goVersion = bi.GoVersion
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			revision = s.Value
			if len(revision) > 12 {
				revision = revision[:12]
			}
		}
	}
	return
}

// handleHealthz answers the liveness (shallow) or readiness (?deep=1)
// probe.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	goVersion, revision := buildVersion()
	resp := map[string]any{
		"status":         "ok",
		"workers":        s.eng.Workers(),
		"go_version":     goVersion,
		"vcs_revision":   revision,
		"uptime_seconds": time.Since(s.started).Seconds(),
		"draining":       s.draining.Load(),
	}
	if r.URL.Query().Get("deep") == "" {
		s.reply(w, resp)
		return
	}

	healthy := true

	// Engine pool: acquire-and-release one eval slot. A wedged or
	// saturated pool surfaces as a timeout here instead of a silent
	// route-to-black-hole.
	pingCtx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	wait, perr := s.eng.Ping(pingCtx)
	cancel()
	pool := map[string]any{"wait_ms": float64(wait.Nanoseconds()) / 1e6}
	if perr != nil {
		pool["error"] = perr.Error()
		healthy = false
	}
	resp["pool"] = pool

	// Behavioral canary: the full engine path must still produce a
	// correct XOR truth table.
	ok, cerr, elapsed := s.canaryCheck(r.Context())
	canary := map[string]any{"ok": ok, "elapsed_ms": float64(elapsed.Nanoseconds()) / 1e6}
	if cerr != "" {
		canary["error"] = cerr
	}
	resp["canary"] = canary
	if !ok {
		healthy = false
	}

	// Journal plumbing: the server attaches a ring and a hub at startup,
	// so fewer than two sinks means the flight-recorder endpoints are
	// blind.
	resp["journal_sinks"] = journal.Default().Sinks()

	// Fleet coordinator state: queue counts, worker liveness, and the
	// queue-directory durability probe. An unwritable queue means no
	// outcome can be recorded, so the instance is not ready.
	if s.fleetEnabled() {
		section, ok := s.fleetHealth()
		resp["fleet"] = section
		if !ok {
			healthy = false
		}
	}

	// Artifact store durability: an unwritable store means workers
	// cannot land checkpoints, so transient segments would restart
	// instead of resuming.
	if s.artifactsEnabled() {
		section, ok := s.artifactHealth()
		resp["artifacts"] = section
		if !ok {
			healthy = false
		}
	}

	// Run-history catalog and retention engine: an unwritable catalog
	// means completed work silently stops being indexed, so the
	// instance is not ready. The section also reports the retention
	// engine's last sweep (DESIGN.md §17).
	if s.historyEnabled() {
		section, ok := s.historyHealth()
		resp["history"] = section
		if !ok {
			healthy = false
		}
	}

	// Surrogate admission state: a rejected, failed or stale startup
	// surrogate means "surrogate"-mode traffic the operator configured
	// would 503, so the instance is not ready.
	if entries := s.surrogateSnapshot(); len(entries) > 0 {
		ok := s.surrogateHealthy()
		resp["surrogate"] = map[string]any{"ok": ok, "models": entries}
		if !ok {
			healthy = false
		}
	}

	if !healthy {
		resp["status"] = "unhealthy"
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	s.reply(w, resp)
}

// canaryCheck returns the cached canary outcome, re-evaluating when the
// TTL has lapsed.
func (s *server) canaryCheck(ctx context.Context) (ok bool, errMsg string, elapsed time.Duration) {
	s.canary.mu.Lock()
	defer s.canary.mu.Unlock()
	if time.Since(s.canary.checked) < canaryTTL {
		return s.canary.ok, s.canary.err, s.canary.elapsed
	}
	start := time.Now()
	ok, errMsg = s.runCanary(ctx)
	s.canary.checked = time.Now()
	s.canary.ok = ok
	s.canary.err = errMsg
	s.canary.elapsed = time.Since(start)
	return s.canary.ok, s.canary.err, s.canary.elapsed
}

// runCanary evaluates the behavioral XOR truth table through the engine
// and verifies every case decodes correctly.
func (s *server) runCanary(ctx context.Context) (bool, string) {
	b, err := spinwave.NewBehavioral(spinwave.XOR, spinwave.PaperSpec(), spinwave.FeCoB())
	if err != nil {
		return false, fmt.Sprintf("canary backend: %v", err)
	}
	cctx, cancel := context.WithTimeout(ctx, canaryTimeout)
	defer cancel()
	tt, err := s.eng.XORTable(cctx, b, false)
	if err != nil {
		return false, fmt.Sprintf("canary eval: %v", err)
	}
	if !tt.AllCorrect() {
		return false, "canary XOR truth table decoded incorrectly"
	}
	return true, ""
}

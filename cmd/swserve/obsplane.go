package main

import (
	"fmt"
	"net/http"
	"time"

	"spinwave/internal/journal"
	"spinwave/internal/obsplane"
)

// Fleet observability plane (DESIGN.md §16): swserve is the collection
// point of the fleet-wide flight recorder. Workers batch-forward their
// journal events to POST /v1/fleet/journal; the coordinator mirrors its
// own trace-stamped events into the same durable store; and the merged
// multi-node timeline is served back as an NDJSON tail
// (GET /v1/fleet/jobs/{id}/events) and an assembled Chrome trace
// (GET /v1/fleet/jobs/{id}/trace). The {id} is a fleet request ID or a
// raw trace ID — the request map is in-memory, so post-mortems on a
// restarted coordinator can still query by the trace ID recorded in
// status responses and checkpoint manifests.
//
// Drain rules mirror the fleet's asymmetry: journal ingestion and the
// trace endpoints stay open while draining (a dying worker's final
// flush and an operator's post-mortem both must land), while new live
// tails are refused the same way /v1/runs/{id}/events refuses them.

// initFleetJournal opens the durable fleet journal at dir and attaches
// the coordinator mirror sink: every journal event this process emits
// that carries a "trace" field (the fleet.* family after the
// correlation fix) is appended to the store under the coordinator's
// node name, so claims, requeues and request lifecycle interleave with
// the workers' shipped events in one timeline.
func (s *server) initFleetJournal(dir string) error {
	st, err := obsplane.OpenStore(dir)
	if err != nil {
		return err
	}
	s.fjournal = st
	s.detachMirror = journal.Default().Attach(coordinatorMirror{store: st})
	return nil
}

// fleetJournalEnabled reports whether the fleet journal store is
// mounted.
func (s *server) fleetJournalEnabled() bool { return s.fjournal != nil }

// coordinatorMirror is the journal sink that files the coordinator's
// own trace-stamped events into the fleet journal. It runs under the
// journal's delivery mutex, which is safe only because Store.Append
// never emits journal events itself (a sink that re-entered Emit would
// deadlock). Events without a valid trace field are not fleet-scoped
// and are skipped; append errors are dropped — the mirror is a best
// effort copy, never backpressure on delivery.
type coordinatorMirror struct{ store *obsplane.Store }

func (m coordinatorMirror) Emit(e journal.Event) {
	trace, _ := e.Fields["trace"].(string)
	if !obsplane.ValidID(trace) {
		return
	}
	m.store.Append(trace, obsplane.CoordinatorNode, []journal.Event{e}) //nolint:errcheck
}

// fleetJournalRoutes mounts the observability-plane endpoints; only
// called when the fleet journal is enabled.
func (s *server) fleetJournalRoutes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/fleet/journal", s.withMetrics("/v1/fleet/journal", s.handleFleetJournalShip))
	mux.HandleFunc("GET /v1/fleet/jobs/{id}/events", s.withMetrics("/v1/fleet/jobs/events", s.handleFleetJobEvents))
	mux.HandleFunc("GET /v1/fleet/jobs/{id}/trace", s.withMetrics("/v1/fleet/jobs/trace", s.handleFleetJobTrace))
}

// handleFleetJournalShip ingests one worker's journal batch. It stays
// open while draining for the same reason result posts do: the batch in
// flight is the flight-recorder tail of compute that already happened,
// and refusing it at shutdown loses exactly the history a post-mortem
// needs. Ingestion is idempotent per (node, seq), so a worker retrying
// a batch whose ack was lost is answered with duplicates, not double
// entries.
func (s *server) handleFleetJournalShip(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req obsplane.ShipRequest
	if !s.decode(w, r, &req) {
		return
	}
	if !obsplane.ValidID(req.Node) {
		s.badRequest(w, fmt.Errorf("bad node id %q", req.Node))
		return
	}
	// Group the batch by trace, preserving each event's position within
	// its trace — a worker's batch is in emission order, and per-trace
	// subsequences of an ordered stream stay ordered.
	var ack obsplane.ShipResponse
	perTrace := make(map[string][]journal.Event)
	var traces []string
	for _, se := range req.Events {
		if se.Trace == "" || !obsplane.ValidID(se.Trace) {
			ack.Untraced++
			continue
		}
		if _, ok := perTrace[se.Trace]; !ok {
			traces = append(traces, se.Trace)
		}
		perTrace[se.Trace] = append(perTrace[se.Trace], se.Event)
	}
	for _, trace := range traces {
		events := perTrace[trace]
		accepted, err := s.fjournal.Append(trace, req.Node, events)
		if err != nil {
			s.fail(w, err)
			return
		}
		ack.Accepted += accepted
		ack.Duplicates += len(events) - accepted
		// The receipt is emitted after Append returns (never from inside
		// the store) and carries the trace, so the coordinator mirror
		// files it into the same timeline it acknowledges.
		if jd := journal.Default(); jd.Enabled() {
			jd.Emit("", "fleet.journal_shipped",
				journal.F("node", req.Node),
				journal.F("trace", trace),
				journal.F("events", accepted),
				journal.F("duplicates", len(events)-accepted))
		}
	}
	s.reply(w, ack)
}

// resolveTrace maps a request ID (the usual handle clients hold) to its
// fleet trace ID, falling through to treating id as a raw trace ID —
// the post-mortem path on a coordinator whose in-memory request map
// restarted since the job ran.
func (s *server) resolveTrace(id string) string {
	if s.fleetEnabled() {
		if st, err := s.fleet.Status(id); err == nil && st.Trace != "" {
			return st.Trace
		}
	}
	return id
}

// fleetTerminalEvent reports whether e ends a fleet request's timeline:
// the coordinator's request-complete (or failure) lifecycle event, or
// the synthetic store-removal event the retention engine injects so a
// live tail of a reclaimed trace ends cleanly instead of erroring.
func fleetTerminalEvent(e obsplane.ShippedEvent) bool {
	if e.Name == obsplane.RemovedEventName {
		return true
	}
	if e.Name != "fleet.request" {
		return false
	}
	status, _ := e.Fields["status"].(string)
	return status == "complete" || status == "failed"
}

// handleFleetJobEvents is the fleet analogue of /v1/runs/{id}/events:
// the merged multi-node journal as an NDJSON stream — stored history
// first (deterministic (node, seq) merge order), then live events as
// workers ship them, with heartbeats, until the request completes or
// the client goes away. ?follow=false returns the stored snapshot and
// closes — the post-mortem mode, which also stays available while
// draining.
func (s *server) handleFleetJobEvents(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	trace := s.resolveTrace(r.PathValue("id"))
	if !obsplane.ValidID(trace) {
		s.badRequest(w, fmt.Errorf("bad job or trace id %q", trace))
		return
	}
	follow := true
	switch r.URL.Query().Get("follow") {
	case "0", "false", "no":
		follow = false
	}
	if follow && s.refuseDraining(w) {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.failAs(w, http.StatusInternalServerError, codeInternal, false, "streaming unsupported")
		return
	}

	// Subscribe before reading the file so no shipped batch falls between
	// snapshot and live delivery; the per-node seq guard drops the
	// overlap.
	var live <-chan obsplane.ShippedEvent
	if follow {
		events, _, cancel := s.fjournal.Subscribe(trace, 256)
		defer cancel()
		live = events
	}
	stored, err := s.fjournal.Events(trace)
	if err != nil {
		s.fail(w, err)
		return
	}
	if len(stored) == 0 && !follow {
		s.failAs(w, http.StatusNotFound, codeNotFound, false,
			fmt.Sprintf("no fleet journal for %q", trace))
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set(obsplane.TraceHeader, trace)
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	// write emits one merged-journal line, de-duplicating by per-node
	// sequence number; it reports whether the tail should continue.
	lastSeq := make(map[string]uint64)
	write := func(se obsplane.ShippedEvent) bool {
		if se.Seq <= lastSeq[se.Node] {
			return true
		}
		lastSeq[se.Node] = se.Seq
		if _, err := w.Write(append(se.MarshalJSONL(), '\n')); err != nil {
			return false
		}
		fl.Flush()
		return !fleetTerminalEvent(se)
	}
	for _, se := range stored {
		if !write(se) {
			return
		}
	}
	if !follow {
		return
	}
	hb := time.NewTicker(s.heartbeat)
	defer hb.Stop()
	done := r.Context().Done()
	for {
		select {
		case <-done:
			return
		case <-hb.C:
			if s.draining.Load() {
				fmt.Fprintf(w, "{\"event\":\"server_draining\",\"time_ns\":%d,\"trace\":%q}\n", //nolint:errcheck
					time.Now().UnixNano(), trace)
				fl.Flush()
				return
			}
			if _, err := fmt.Fprintf(w, "{\"event\":\"heartbeat\",\"time_ns\":%d,\"trace\":%q}\n",
				time.Now().UnixNano(), trace); err != nil {
				return
			}
			fl.Flush()
		case se, open := <-live:
			if !open || !write(se) {
				return
			}
		}
	}
}

// handleFleetJobTrace assembles the merged multi-node journal into a
// Chrome-trace JSON timeline (chrome://tracing, Perfetto): one thread
// row per node, job-ownership spans between claim and completion or
// requeue, instants for every other event. Deliberately exempt from the
// drain refusal — the assembled trace of a dying instance is exactly
// what the operator wants next.
func (s *server) handleFleetJobTrace(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	trace := s.resolveTrace(r.PathValue("id"))
	if !obsplane.ValidID(trace) {
		s.badRequest(w, fmt.Errorf("bad job or trace id %q", trace))
		return
	}
	events, err := s.fjournal.Events(trace)
	if err != nil {
		s.fail(w, err)
		return
	}
	if len(events) == 0 {
		s.failAs(w, http.StatusNotFound, codeNotFound, false,
			fmt.Sprintf("no fleet journal for %q", trace))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(obsplane.TraceHeader, trace)
	if err := obsplane.WriteChromeTrace(w, trace, events); err != nil {
		s.errors.Add(1)
	}
}

// fleetJournalHealth is the deep-healthz fleet_journal section: shipped
// volume, live tails, and the durability probe — an unwritable journal
// directory means shipped history is being dropped, which degrades the
// instance the same way an unwritable queue does.
func (s *server) fleetJournalHealth() (section map[string]any, healthy bool) {
	section = map[string]any{
		"dir":         s.fjournal.Dir(),
		"shipped":     s.fjournal.Shipped(),
		"subscribers": s.fjournal.Subscribers(),
	}
	healthy = true
	if err := s.fjournal.WritableProbe(); err != nil {
		section["error"] = err.Error()
		healthy = false
	}
	return section, healthy
}

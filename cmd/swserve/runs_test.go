package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"spinwave"
	"spinwave/internal/probe"
	"spinwave/internal/vec"
)

// TestRunEventsTail drives the NDJSON tail end to end: an eval's run ID
// comes back in the response, tailing it replays the journaled
// lifecycle in strictly increasing sequence order, and the stream
// terminates by itself after the run's terminal event.
func TestRunEventsTail(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/eval", map[string]any{
		"gate": "xor", "inputs": []bool{true, true},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eval status %d: %s", resp.StatusCode, body)
	}
	var er evalResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Results) != 1 || er.Results[0].Run == "" {
		t.Fatalf("eval response missing run ID: %s", body)
	}
	runID := er.Results[0].Run

	tr, err := http.Get(ts.URL + "/v1/runs/" + runID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("tail status %d", tr.StatusCode)
	}
	if ct := tr.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("tail content-type %q", ct)
	}
	// The run is complete, so the replay must terminate the stream on
	// its own (no cancel needed) — read to EOF with a deadline guard.
	type line struct {
		Seq   uint64 `json:"seq"`
		Run   string `json:"run"`
		Event string `json:"event"`
	}
	var lines []line
	done := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(tr.Body)
		for sc.Scan() {
			var l line
			if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
				done <- err
				return
			}
			lines = append(lines, l)
		}
		done <- sc.Err()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("tail did not terminate after run completion")
	}
	if len(lines) < 2 {
		t.Fatalf("tail delivered %d events, want at least start+done", len(lines))
	}
	var last uint64
	for _, l := range lines {
		if l.Seq <= last {
			t.Fatalf("sequence not strictly increasing: %d after %d", l.Seq, last)
		}
		last = l.Seq
		if l.Run != runID {
			t.Errorf("event %q for run %q leaked into tail of %q", l.Event, l.Run, runID)
		}
	}
	var sawStart bool
	for _, l := range lines {
		if l.Event == "engine.eval.start" {
			sawStart = true
		}
	}
	if !sawStart {
		t.Error("tail missing engine.eval.start")
	}
	if lines[len(lines)-1].Event != "engine.eval.done" {
		t.Errorf("last event %q, want engine.eval.done", lines[len(lines)-1].Event)
	}
}

// TestRunEventsHeartbeat tails a run with no events: the stream must
// carry periodic heartbeat lines and shut down when the client goes
// away.
func TestRunEventsHeartbeat(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.heartbeat = 20 * time.Millisecond

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/runs/ridle/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no heartbeat before stream end: %v", sc.Err())
	}
	var hb struct {
		Event  string `json:"event"`
		TimeNS int64  `json:"time_ns"`
		Run    string `json:"run"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hb); err != nil {
		t.Fatalf("heartbeat is not JSON: %q", sc.Text())
	}
	if hb.Event != "heartbeat" || hb.TimeNS == 0 || hb.Run != "ridle" {
		t.Errorf("unexpected heartbeat %+v", hb)
	}
	cancel()
	// After cancel the server side must unwind; draining the body ends.
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
}

// TestRunProbesEndpoint publishes a hand-fed recorder and fetches it
// back as JSON and CSV.
func TestRunProbesEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	rec, err := probe.NewRecorder(probe.Config{Enabled: true, Stride: 1, EnergyEvery: -1, Capacity: 16},
		nil, []probe.Point{{Name: "out", Cells: []int{0}}})
	if err != nil {
		t.Fatal(err)
	}
	m := vec.Field{vec.UnitZ}
	for step := 0; step < 5; step++ {
		m[0].X = 0.1 * float64(step)
		rec.ObserveStep(step, float64(step)*1e-12, m)
	}
	runID := spinwave.NewRunID()
	probe.Default().Put(runID, rec)

	// /v1/runs lists it.
	resp, err := http.Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), runID) {
		t.Fatalf("/v1/runs status %d body %s (want %s listed)", resp.StatusCode, body, runID)
	}

	// JSON snapshot.
	resp, err = http.Get(ts.URL + "/v1/runs/" + runID + "/probes")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probes status %d: %s", resp.StatusCode, body)
	}
	var snap spinwave.ProbeSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("probes body is not a snapshot: %v", err)
	}
	if snap.Run != runID || len(snap.Series) != 1 || len(snap.Series[0].Time) != 5 {
		t.Errorf("snapshot run=%q series=%d", snap.Run, len(snap.Series))
	}

	// CSV export.
	resp, err = http.Get(ts.URL + "/v1/runs/" + runID + "/probes?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/csv" {
		t.Errorf("csv content-type %q", ct)
	}
	rows := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(rows) != 6 || !strings.HasPrefix(rows[0], "t,out.mx") {
		t.Errorf("csv rows=%d header=%q", len(rows), rows[0])
	}

	// Unknown run → 404.
	resp, err = http.Get(ts.URL + "/v1/runs/rnope/probes")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown run status %d, want 404", resp.StatusCode)
	}
}

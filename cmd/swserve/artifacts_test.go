package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spinwave"
	"spinwave/internal/checkpoint"
)

// newArtifactServer is newTestServer plus a mounted artifact store over
// a temp directory.
func newArtifactServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	srv := newServer(spinwave.NewEngine(spinwave.WithEngineWorkers(2)), 30*time.Second)
	t.Cleanup(srv.close)
	if err := srv.initArtifacts(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return srv, ts
}

func putArtifact(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func TestArtifactRoundTripOverHTTP(t *testing.T) {
	_, ts := newArtifactServer(t)

	// Listing a run with no artifacts yet answers an empty list, not an
	// error: workers poll before the first checkpoint lands.
	resp, err := http.Get(ts.URL + "/v1/runs/r-nowhere/artifacts")
	if err != nil {
		t.Fatal(err)
	}
	var empty struct {
		Artifacts []checkpoint.ArtifactInfo `json:"artifacts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&empty); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || empty.Artifacts == nil || len(empty.Artifacts) != 0 {
		t.Fatalf("fresh run list: status %d, artifacts %v", resp.StatusCode, empty.Artifacts)
	}

	// Upload two artifacts, list them, download one back.
	const manifest = `{"version":1,"step":42}`
	resp, body := putArtifact(t, ts.URL+"/v1/runs/r-abc/artifacts/ck-000000000042.json", manifest)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("put status %d: %s", resp.StatusCode, body)
	}
	if resp, body = putArtifact(t, ts.URL+"/v1/runs/r-abc/artifacts/probes.csv", "t,mx\n"); resp.StatusCode != http.StatusOK {
		t.Fatalf("put csv status %d: %s", resp.StatusCode, body)
	}

	resp, err = http.Get(ts.URL + "/v1/runs/r-abc/artifacts")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Run       string                    `json:"run"`
		Artifacts []checkpoint.ArtifactInfo `json:"artifacts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if list.Run != "r-abc" || len(list.Artifacts) != 2 {
		t.Fatalf("list = %+v", list)
	}
	if list.Artifacts[0].Name != "ck-000000000042.json" || list.Artifacts[0].Size != int64(len(manifest)) {
		t.Fatalf("listed artifact = %+v", list.Artifacts[0])
	}

	resp, err = http.Get(ts.URL + "/v1/runs/r-abc/artifacts/ck-000000000042.json")
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	got.ReadFrom(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("manifest served as %q", ct)
	}
	if got.String() != manifest {
		t.Fatalf("downloaded %q, uploaded %q", got.String(), manifest)
	}

	// Re-uploading overwrites atomically (workers retry PUTs).
	if resp, body = putArtifact(t, ts.URL+"/v1/runs/r-abc/artifacts/probes.csv", "t,mx\n0,1\n"); resp.StatusCode != http.StatusOK {
		t.Fatalf("re-put status %d: %s", resp.StatusCode, body)
	}
}

func TestArtifactBadNamesRejected(t *testing.T) {
	_, ts := newArtifactServer(t)
	// A traversal-shaped name never reaches the filesystem: the router
	// does not match the extra path segments, and dotted names fail
	// validation.
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/v1/runs/r-abc/artifacts/.hidden", http.StatusBadRequest},
		{"/v1/runs/..%2F..%2Fetc/artifacts/passwd", http.StatusBadRequest},
		// The mux decodes %2F, so the name validator sees "a/b".
		{"/v1/runs/r-abc/artifacts/a%2Fb", http.StatusBadRequest},
	} {
		resp, body := putArtifact(t, ts.URL+tc.path, "x")
		if resp.StatusCode != tc.want {
			t.Errorf("PUT %s status %d, want %d (%s)", tc.path, resp.StatusCode, tc.want, body)
		}
	}
	// Downloading a missing artifact answers the envelope 404.
	resp, err := http.Get(ts.URL + "/v1/runs/r-abc/artifacts/nope.json")
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || env.Error.Code != codeNotFound {
		t.Fatalf("missing artifact: status %d, code %q", resp.StatusCode, env.Error.Code)
	}
}

func TestArtifactPutStaysOpenWhileDraining(t *testing.T) {
	srv, ts := newArtifactServer(t)
	srv.draining.Store(true)
	resp, body := putArtifact(t, ts.URL+"/v1/runs/r-drain/artifacts/ck-000000000001.json", "{}")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining put status %d: %s (a draining server must still accept checkpoints)", resp.StatusCode, body)
	}
}

func TestFleetTransientSubmitValidation(t *testing.T) {
	srv, ts := newFleetServer(t)
	// Without the artifact store every segmented submission is refused.
	resp, body := postJSON(t, ts.URL+"/v1/fleet/jobs", map[string]any{
		"gate": "xor", "backend": "micromag", "spec": "reduced",
		"cases": [][]bool{{true, false}}, "segments": 3,
	})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "artifact") {
		t.Fatalf("segmented submit without -artifacts: %d %s", resp.StatusCode, body)
	}

	if err := srv.initArtifacts(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	bad := []map[string]any{
		{"gate": "xor", "backend": "micromag", "table": true, "segments": 2},
		{"gate": "xor", "backend": "micromag", "cases": [][]bool{{true, false}, {false, true}}, "segments": 2},
		{"gate": "xor", "cases": [][]bool{{true, false}}, "segments": 2}, // behavioral default
	}
	for i, req := range bad {
		if resp, body := postJSON(t, ts.URL+"/v1/fleet/jobs", req); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad transient %d accepted: %d %s", i, resp.StatusCode, body)
		}
	}

	resp, body = postJSON(t, ts.URL+"/v1/fleet/jobs", map[string]any{
		"gate": "xor", "backend": "micromag", "spec": "reduced",
		"cases": [][]bool{{true, false}}, "segments": 3, "every_steps": 200, "dt_scale": 0.5,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("valid transient submit: %d %s", resp.StatusCode, body)
	}
	var st fleetStatusResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Run == "" || st.CasesTotal != 1 || len(st.Jobs) != 1 {
		t.Fatalf("transient status = %s", body)
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestRequestValidation covers the decode/validation error paths: every
// malformed request must come back as the JSON error envelope with the
// right status and stable code, never a 500 or a hang.
func TestRequestValidation(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.maxBatch = 4

	bigBatch := make([][]bool, 5)
	for i := range bigBatch {
		bigBatch[i] = []bool{i%2 == 0, true}
	}

	for _, tc := range []struct {
		name    string
		path    string
		body    string
		code    int
		errCode string
		errLike string
	}{
		{"malformed json", "/v1/eval", `{"gate": "xor",`, http.StatusBadRequest, codeBadRequest, "bad request body"},
		{"wrong type", "/v1/eval", `{"gate": 7}`, http.StatusBadRequest, codeBadRequest, "bad request body"},
		{"unknown field", "/v1/eval", `{"gate": "xor", "bogus": 1}`, http.StatusBadRequest, codeBadRequest, "bad request body"},
		{"empty eval", "/v1/eval", `{"gate": "xor"}`, http.StatusBadRequest, codeBadRequest, "need inputs or cases"},
		{"oversized batch", "/v1/eval", mustJSON(t, map[string]any{"gate": "xor", "cases": bigBatch}),
			http.StatusBadRequest, codeBadRequest, "exceeds the limit of 4"},
		{"negative timeout", "/v1/eval", `{"gate": "xor", "inputs": [true, false], "timeout_ms": -5}`,
			http.StatusBadRequest, codeBadRequest, "timeout_ms"},
		{"absurd timeout", "/v1/table", `{"gate": "xor", "timeout_ms": 999999999999}`,
			http.StatusBadRequest, codeBadRequest, "timeout_ms"},
		{"zero timeout runs", "/v1/table", `{"gate": "xor", "timeout_ms": 0}`, http.StatusOK, "", ""},
		{"tiny timeout expires", "/v1/table", `{"gate": "xor", "backend": "micromag", "timeout_ms": 1}`,
			http.StatusGatewayTimeout, codeDeadline, ""},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.code {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.code, body)
			}
			if resp.StatusCode == http.StatusOK {
				return
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("error content-type %q, want application/json", ct)
			}
			e := decodeEnvelope(t, body)
			if e.Code != tc.errCode {
				t.Errorf("error code %q, want %q (%s)", e.Code, tc.errCode, body)
			}
			if tc.errLike != "" && !strings.Contains(e.Message, tc.errLike) {
				t.Errorf("error %q does not mention %q", e.Message, tc.errLike)
			}
		})
	}
}

// decodeEnvelope parses the unified error envelope, failing the test on
// any shape deviation (missing error object, empty code or message).
func decodeEnvelope(t *testing.T, body []byte) apiError {
	t.Helper()
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("error body is not the envelope: %s", body)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope missing code or message: %s", body)
	}
	return env.Error
}

// newHTTPTestServer serves srv.routes() on a fresh listener, picking up
// any server field changes made after newTestServer.
func newHTTPTestServer(t *testing.T, srv *server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return ts
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMetricsEndpoint exercises /metrics end to end: after an eval, the
// exposition must carry the engine cache counters, the HTTP histograms
// and the LLG totals in Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	// Same case twice: one miss then one hit.
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/eval", map[string]any{
			"gate": "xor", "inputs": []bool{true, false},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("eval status %d: %s", resp.StatusCode, body)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content-type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	for _, want := range []string{
		"# TYPE spinwave_engine_requests_total counter",
		"spinwave_engine_cache_hits_total",
		"spinwave_engine_cache_misses_total",
		"spinwave_engine_in_flight",
		`spinwave_engine_evals_total{result="ok"}`,
		"spinwave_engine_eval_seconds_bucket",
		"spinwave_llg_steps_total",
		`swserve_http_requests_total{path="/v1/eval",status="200"}`,
		`swserve_http_request_seconds_bucket{path="/v1/eval",le="+Inf"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestDrainGating is the shutdown-scrape regression test: read-only
// observability endpoints (/metrics, /debug/vars) must keep answering
// 200 while the server drains, or the final counter values of a
// terminating process are lost to the scraper. Only new long-lived
// event tails are refused with 503 + Retry-After.
func TestDrainGating(t *testing.T) {
	srv, ts := newTestServer(t)
	for _, path := range []string{"/metrics", "/debug/vars"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s pre-drain status %d", path, resp.StatusCode)
		}
	}
	srv.draining.Store(true)
	for _, path := range []string{"/metrics", "/debug/vars"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s during drain: status %d, want 200 (shutdown scrape must succeed)", path, resp.StatusCode)
		}
	}
	// New event tails ARE refused: they would outlive the drain window.
	resp, err := http.Get(ts.URL + "/v1/runs/rwhatever/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("events tail during drain: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("events tail drain refusal missing Retry-After")
	}
	// Work endpoints keep serving during the drain — only new streams are
	// gated; http.Server.Shutdown owns the work drain itself.
	resp2, body := postJSON(t, ts.URL+"/v1/table", map[string]any{"gate": "xor"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("table during drain: status %d: %s", resp2.StatusCode, body)
	}
}

// TestPprofGating: the profile endpoints exist only with -pprof.
func TestPprofGating(t *testing.T) {
	srv, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof served without -pprof: status %d", resp.StatusCode)
	}

	srv.pprofOn = true
	ts2 := newHTTPTestServer(t, srv)
	resp, err = http.Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index with -pprof: status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "goroutine") {
		t.Error("pprof index does not list profiles")
	}
}

package main

import (
	"net/http"

	"spinwave"
)

// GET /v1/spec: a machine-readable description of the v1 API — the
// endpoints, the vocabulary of every enum-like request field (gates,
// modes, backends, specs, materials, error codes, sources) and the
// server's build identity. Clients and tooling discover the contract
// here instead of hard-coding it.

// endpointSpec describes one route.
type endpointSpec struct {
	Method      string `json:"method"`
	Path        string `json:"path"`
	Description string `json:"description"`
}

// specResponse is the GET /v1/spec body.
type specResponse struct {
	Service     string `json:"service"`
	GoVersion   string `json:"go_version"`
	VCSRevision string `json:"vcs_revision"`

	Endpoints []endpointSpec `json:"endpoints"`

	Gates      []string `json:"gates"`
	Modes      []string `json:"modes"`
	Backends   []string `json:"backends"`
	Specs      []string `json:"specs"`
	Materials  []string `json:"materials"`
	Derived    []string `json:"derived"`
	Sources    []string `json:"sources"`
	ErrorCodes []string `json:"error_codes"`

	MaxBatch         int   `json:"max_batch"`
	DefaultTimeoutMS int64 `json:"default_timeout_ms"`
	MaxTimeoutMS     int64 `json:"max_timeout_ms"`
}

// handleSpec serves the API description. Read-only and cheap, so (like
// /metrics) it stays available while draining.
func (s *server) handleSpec(w http.ResponseWriter, r *http.Request) {
	goVersion, revision := buildVersion()
	endpoints := []endpointSpec{
		{"POST", "/v1/eval", "evaluate one input case or a batch of cases"},
		{"POST", "/v1/table", "evaluate a full truth table (paper Tables I/II)"},
		{"GET", "/v1/spec", "this API description"},
		{"GET", "/v1/healthz", "liveness probe; ?deep=1 adds canary, pool, fleet and surrogate state"},
		{"GET", "/v1/slo", "rolling-window SLO state with burn rates"},
		{"GET", "/v1/runs", "run IDs with retained probe data"},
		{"GET", "/v1/runs/{id}/events", "NDJSON live tail of the run journal"},
		{"GET", "/v1/runs/{id}/probes", "probe time-series (JSON, ?format=csv)"},
		{"GET", "/metrics", "Prometheus text exposition"},
		{"GET", "/debug/vars", "expvar counters"},
	}
	if s.artifactsEnabled() {
		endpoints = append(endpoints,
			endpointSpec{"GET", "/v1/runs/{id}/artifacts", "list a run's durable artifacts"},
			endpointSpec{"GET", "/v1/runs/{id}/artifacts/{name}", "download one artifact"},
			endpointSpec{"PUT", "/v1/runs/{id}/artifacts/{name}", "worker: upload one artifact (checkpoints)"},
		)
	}
	if s.historyEnabled() {
		endpoints = append(endpoints,
			endpointSpec{"GET", "/v1/history", "run-history catalog query (?gate=&verdict=&trace=&tier=&kind=&since=&limit=)"},
		)
	}
	if s.fleetEnabled() {
		endpoints = append(endpoints,
			endpointSpec{"POST", "/v1/fleet/jobs", "submit cases or a truth table to the worker fleet"},
			endpointSpec{"GET", "/v1/fleet/jobs/{id}", "fleet request status (merged results, decoded table)"},
			endpointSpec{"GET", "/v1/fleet/workers", "registered workers with liveness and node health"},
			endpointSpec{"POST", "/v1/fleet/register", "worker: register with the coordinator"},
			endpointSpec{"POST", "/v1/fleet/claim", "worker: claim the next job (204 when idle)"},
			endpointSpec{"POST", "/v1/fleet/heartbeat", "worker: extend a job lease, report node health"},
			endpointSpec{"POST", "/v1/fleet/results", "worker: post a job's results (idempotent)"},
		)
	}
	s.reply(w, specResponse{
		Service:     "swserve",
		GoVersion:   goVersion,
		VCSRevision: revision,
		Endpoints:   endpoints,
		Gates: []string{"maj3", "maj3single", "xor", "maj5"},
		Modes: []string{"auto", "surrogate", "micromag", "behavioral"},
		// The materials list mirrors spinwave.MaterialByName's presets.
		Backends:  []string{"behavioral", "micromag"},
		Specs:     []string{"paper", "paper-micromag", "reduced"},
		Materials: []string{"fecob", "yig", "permalloy"},
		Derived:   []string{"and", "or", "nand", "nor"},
		Sources: []string{
			string(spinwave.EvalSourceCache), string(spinwave.EvalSourceDisk),
			string(spinwave.EvalSourceSurrogate), string(spinwave.EvalSourceMicromag),
			string(spinwave.EvalSourceBehavioral), "mixed",
		},
		ErrorCodes: []string{
			codeBadRequest, codeUnknownGate, codeMethodNotAllowed, codeNotFound,
			codeDraining, codeDeadline, codeCancelled, codeSurrogateUnavailable,
			codeHealthAbort, codeStaleClaim, codeInternal,
		},
		MaxBatch:         s.maxBatch,
		DefaultTimeoutMS: s.defaultTimeout.Milliseconds(),
		MaxTimeoutMS:     maxTimeoutMS,
	})
}

package main

import (
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"spinwave"
	"spinwave/internal/fleet"
	"spinwave/internal/runhistory"
)

// Run-history surface (-history): the durable catalog indexing every
// completed eval case, truth table and fleet request the server serves
// (DESIGN.md §17), queryable at
//
//	GET /v1/history?gate=&verdict=&trace=&tier=&kind=&since=&limit=
//
// and the retention engine (-retain-* flags) sweeping the observability
// data those records point at. Indexing is best effort: a catalog write
// failure is logged and counted (spinwave_history_errors_total), never
// a served-request failure. The deep health check probes the catalog
// directory for writability — an instance that cannot remember what it
// served is not ready.

// initHistory opens (creating if needed) the run-history catalog at dir.
func (s *server) initHistory(dir string) error {
	c, err := runhistory.Open(dir)
	if err != nil {
		return err
	}
	s.history = c
	return nil
}

// historyEnabled reports whether the run-history catalog is mounted.
func (s *server) historyEnabled() bool { return s.history != nil }

// historyRoutes mounts the history endpoint; only called when the
// catalog is enabled.
func (s *server) historyRoutes(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/history", s.withMetrics("/v1/history", s.handleHistory))
}

// defaultHistoryLimit caps an unbounded /v1/history response; clients
// page further back with since= or raise limit= explicitly.
const defaultHistoryLimit = 100

// parseSince accepts an RFC3339 timestamp or integer Unix seconds and
// returns Unix nanoseconds.
func parseSince(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	if sec, err := strconv.ParseInt(s, 10, 64); err == nil {
		return sec * int64(time.Second), nil
	}
	t, err := time.Parse(time.RFC3339, s)
	if err != nil {
		return 0, fmt.Errorf("bad since %q (want RFC3339 or Unix seconds)", s)
	}
	return t.UnixNano(), nil
}

// handleHistory answers the catalog query: newest-first records under
// the requested filters. Deliberately exempt from the drain refusal —
// like the trace endpoints, the post-mortem view of a dying instance is
// exactly what the operator wants next.
func (s *server) handleHistory(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	q := r.URL.Query()
	f := runhistory.Filter{
		Gate:    q.Get("gate"),
		Verdict: q.Get("verdict"),
		Trace:   q.Get("trace"),
		Tier:    q.Get("tier"),
		Kind:    q.Get("kind"),
		Limit:   defaultHistoryLimit,
	}
	since, err := parseSince(q.Get("since"))
	if err != nil {
		s.badRequest(w, err)
		return
	}
	f.SinceNS = since
	if lim := q.Get("limit"); lim != "" {
		n, err := strconv.Atoi(lim)
		if err != nil || n < 0 {
			s.badRequest(w, fmt.Errorf("bad limit %q", lim))
			return
		}
		f.Limit = n
	}
	recs, err := s.history.Query(f)
	if err != nil {
		s.fail(w, err)
		return
	}
	if recs == nil {
		recs = []runhistory.Record{}
	}
	s.reply(w, map[string]any{
		"records": recs,
		"count":   len(recs),
		"total":   s.history.Len(),
	})
}

// indexRecords appends records to the catalog, best effort: errors are
// logged (and counted by the catalog), never propagated into the
// serving path.
func (s *server) indexRecords(recs ...runhistory.Record) {
	if !s.historyEnabled() || len(recs) == 0 {
		return
	}
	if _, err := s.history.Append(recs...); err != nil {
		log.Printf("history: %v", err)
	}
}

// gateName maps a gate kind back onto the request vocabulary ("xor",
// "maj3", ...), so history records filter under the same names clients
// submit with — the fleet path indexes the submitted spec's gate, and
// the local paths must agree.
func gateName(k spinwave.GateKind) string {
	switch k {
	case spinwave.MAJ3:
		return "maj3"
	case spinwave.MAJ3Single:
		return "maj3single"
	case spinwave.XOR:
		return "xor"
	case spinwave.MAJ5:
		return "maj5"
	default:
		return k.String()
	}
}

// indexEval catalogs one served /v1/eval response, one record per case
// keyed by the case's run ID.
func (s *server) indexEval(gate string, resp evalResponse, cases [][]bool, fps []string, wall time.Duration) {
	if !s.historyEnabled() {
		return
	}
	recs := make([]runhistory.Record, 0, len(cases))
	for i, c := range cases {
		rec := runhistory.Record{
			ID:          resp.Results[i].Run,
			Kind:        "eval",
			Gate:        gate,
			Backend:     resp.Backend,
			Fingerprint: fps[i],
			Inputs:      runhistory.InputsLabel(c),
			Tier:        resp.Results[i].Source,
			Cases:       1,
			WallNS:      wall.Nanoseconds(),
		}
		// The health monitor (when attached) published a verdict under the
		// same run ID the engine evaluated with.
		if rep, ok := spinwave.HealthFor(rec.ID); ok {
			rec.Verdict = rep.Verdict
			rec.Steps = rep.Steps
		}
		recs = append(recs, rec)
	}
	s.indexRecords(recs...)
}

// indexTable catalogs one served /v1/table response under a fresh run
// ID (tables have no per-case run handle on the wire).
func (s *server) indexTable(gate, backend, fingerprint, tier string, cases int, wall time.Duration) {
	if !s.historyEnabled() {
		return
	}
	s.indexRecords(runhistory.Record{
		ID:          spinwave.NewRunID(),
		Kind:        "table",
		Gate:        gate,
		Backend:     backend,
		Fingerprint: fingerprint,
		Tier:        tier,
		Cases:       cases,
		WallNS:      wall.Nanoseconds(),
	})
}

// indexFleetRequest catalogs one completed fleet request — the
// coordinator's OnComplete hook. The record points at the files the
// request left behind: its fleet-journal trace and, for transients, the
// run's artifacts (checkpoints, probe CSVs) — the bytes the retention
// engine will eventually reclaim.
func (s *server) indexFleetRequest(cr fleet.CompletedRequest) {
	if !s.historyEnabled() {
		return
	}
	rec := runhistory.Record{
		ID:          cr.ID,
		Kind:        "fleet",
		Trace:       cr.Trace,
		Gate:        cr.Gate,
		Backend:     cr.Backend,
		Fingerprint: cr.Fingerprint,
		Cases:       cr.Cases,
		WallNS:      cr.CompletedNS - cr.SubmittedNS,
		Tier:        cr.Tier,
	}
	if cr.Run != "" {
		if rep, ok := spinwave.HealthFor(cr.Run); ok {
			rec.Verdict = rep.Verdict
			rec.Steps = rep.Steps
		}
	}
	if s.fleetJournalEnabled() && cr.Trace != "" {
		if fi, err := os.Stat(filepath.Join(s.fjournal.Dir(), cr.Trace+".jsonl")); err == nil {
			rec.Files = append(rec.Files, runhistory.FileRef{
				Class: runhistory.ClassTrace,
				Path:  cr.Trace + ".jsonl",
				Size:  fi.Size(),
			})
		}
	}
	if s.artifactsEnabled() && cr.Run != "" {
		if infos, err := s.artifacts.List(cr.Run); err == nil {
			for _, info := range infos {
				rec.Files = append(rec.Files, runhistory.FileRef{
					Class: artifactClass(info.Name),
					Path:  cr.Run + "/" + info.Name,
					Size:  info.Size,
				})
			}
		}
	}
	s.indexRecords(rec)
}

// artifactClass maps an artifact file name onto its retention class.
func artifactClass(name string) runhistory.Class {
	switch {
	case len(name) > 3 && name[:3] == "ck-":
		return runhistory.ClassCheckpoint
	case filepath.Ext(name) == ".csv":
		return runhistory.ClassProbeCSV
	default:
		return runhistory.ClassArtifact
	}
}

// initRetention constructs the GC over whatever stores are mounted and
// wires the coordinator's in-flight protection. Returns nil when the
// policy would never delete anything.
func (s *server) initRetention(p runhistory.Policy) *runhistory.GC {
	if !p.Active() {
		return nil
	}
	gc := &runhistory.GC{Policy: p, Catalog: s.history}
	if s.fleetJournalEnabled() {
		gc.Traces = s.fjournal
	}
	if s.artifactsEnabled() {
		gc.ArtifactRoot = s.artifacts.Root()
	}
	if s.fleetEnabled() {
		// Active requests' traces and runs must never be reclaimed from
		// under the workers still writing them.
		gc.Protected = func() (map[string]bool, map[string]bool) {
			return s.fleet.ActiveTraces(), s.fleet.ActiveRuns()
		}
	}
	s.gc = gc
	return gc
}

// historyHealth is the deep-healthz history section: catalog size,
// writability (an unwritable catalog makes the instance unready — it
// serves but cannot remember), and the retention engine's last sweep.
func (s *server) historyHealth() (section map[string]any, healthy bool) {
	section = map[string]any{
		"dir":        s.history.Dir(),
		"records":    s.history.Len(),
		"duplicates": s.history.Duplicates(),
	}
	healthy = true
	if err := s.history.WritableProbe(); err != nil {
		section["error"] = err.Error()
		healthy = false
	}
	if s.gc != nil {
		last, at, err, sweeps := s.gc.LastSweep()
		ret := map[string]any{"sweeps": sweeps, "dry_run": s.gc.Policy.DryRun}
		if sweeps > 0 {
			ret["last_at"] = at.Format(time.RFC3339)
			ret["deleted"] = last.Deleted()
			ret["bytes_reclaimed"] = last.BytesReclaimed()
		}
		if err != nil {
			ret["error"] = err.Error()
		}
		section["retention"] = ret
	}
	return section, healthy
}

package main

import (
	"errors"
	"fmt"
	"net/http"

	"spinwave"
	"spinwave/internal/core"
	"spinwave/internal/detect"
	"spinwave/internal/fleet"
	"spinwave/internal/obsplane"
)

// Fleet surface (-fleet-queue): swserve doubles as the fleet
// coordinator. Clients submit work at POST /v1/fleet/jobs and poll
// GET /v1/fleet/jobs/{id}; workers (cmd/swworker) talk to the
// worker-facing endpoints (register/claim/heartbeat/results). All of
// them answer failures with the v1 error envelope. The drain rules are
// asymmetric on purpose: submission, registration and claims refuse
// while draining (no new work enters a dying coordinator), but
// heartbeats and result posts stay open so in-flight compute is not
// lost at shutdown.

// initFleet opens the durable queue at dir and mounts the coordinator
// on the server. shard is the default cases-per-job split applied to
// submissions that do not pick their own.
func (s *server) initFleet(dir string, shard int, opts ...fleet.QueueOption) error {
	q, err := fleet.OpenQueue(dir, opts...)
	if err != nil {
		return err
	}
	s.fleet = fleet.NewCoordinator(q)
	s.fleetShard = shard
	return nil
}

// fleetEnabled reports whether the fleet surface is mounted; handlers
// answer 404 otherwise (the routes only exist when enabled, but tests
// may call handlers directly).
func (s *server) fleetEnabled() bool { return s.fleet != nil }

// fleetRoutes mounts the fleet endpoints on mux.
func (s *server) fleetRoutes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/fleet/jobs", s.withMetrics("/v1/fleet/jobs", s.handleFleetSubmit))
	mux.HandleFunc("GET /v1/fleet/jobs/{id}", s.withMetrics("/v1/fleet/jobs/id", s.handleFleetStatus))
	mux.HandleFunc("GET /v1/fleet/workers", s.withMetrics("/v1/fleet/workers", s.handleFleetWorkers))
	mux.HandleFunc("POST /v1/fleet/register", s.withMetrics("/v1/fleet/register", s.handleFleetRegister))
	mux.HandleFunc("POST /v1/fleet/claim", s.withMetrics("/v1/fleet/claim", s.handleFleetClaim))
	mux.HandleFunc("POST /v1/fleet/heartbeat", s.withMetrics("/v1/fleet/heartbeat", s.handleFleetHeartbeat))
	mux.HandleFunc("POST /v1/fleet/results", s.withMetrics("/v1/fleet/results", s.handleFleetResults))
}

// fleetJobsRequest is the client-facing submission body: the usual
// backend selection plus either explicit cases or table=true (the
// gate's full truth table). Shard picks cases-per-job; 0 takes the
// server's -fleet-shard default.
type fleetJobsRequest struct {
	backendRequest
	Cases    [][]bool `json:"cases,omitempty"`
	Table    bool     `json:"table,omitempty"`
	Inverted bool     `json:"inverted,omitempty"` // XNOR decoding for XOR tables
	Shard    int      `json:"shard,omitempty"`
	// Segments > 0 submits the single case as a checkpointed transient
	// split into that many resumable segments (DESIGN.md §15): each
	// segment is one chained fleet job bounded by a checkpoint, so a
	// killed worker's segment resumes on a peer. Requires the micromag
	// backend, exactly one case, and the server's -artifacts store.
	Segments int `json:"segments,omitempty"`
	// EverySteps is the transient's checkpoint cadence in solver steps
	// (0 = the checkpoint default).
	EverySteps int `json:"every_steps,omitempty"`
	// DtScale multiplies the micromag time step (0 = 1). The fleet smoke
	// uses values < 1 to stretch a transient's wall-clock.
	DtScale float64 `json:"dt_scale,omitempty"`
}

// fleetStatusResponse is the request status plus, for completed table
// requests, the decoded truth table (same shape as POST /v1/table).
type fleetStatusResponse struct {
	*fleet.RequestStatus
	Table *spinwave.TruthTable `json:"table,omitempty"`
}

// fleetNotFound answers the envelope 404 for unknown fleet IDs.
func (s *server) fleetNotFound(w http.ResponseWriter, err error) {
	s.failAs(w, http.StatusNotFound, codeNotFound, false, err.Error())
}

func (s *server) handleFleetSubmit(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.refuseDraining(w) {
		return
	}
	var req fleetJobsRequest
	if !s.decode(w, r, &req) {
		return
	}
	engMode, _, breq, err := resolveMode(req.backendRequest)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	kind, err := parseGate(breq.Gate)
	if err != nil {
		s.fail(w, err)
		return
	}
	// Validate the rest of the vocabulary eagerly, so a typo fails the
	// submission instead of burning worker attempts.
	if _, err := parseSpec(breq.Spec, spinwave.PaperSpec()); err != nil {
		s.fail(w, err)
		return
	}
	if breq.Material != "" {
		if _, err := spinwave.MaterialByName(breq.Material); err != nil {
			s.fail(w, fmt.Errorf("%w: material %q", spinwave.ErrUnknownComponent, breq.Material))
			return
		}
	}
	cases := req.Cases
	if req.Table {
		if len(cases) > 0 {
			s.badRequest(w, fmt.Errorf("table and cases are mutually exclusive"))
			return
		}
		cases = core.EnumerateInputs(kind.NumInputs())
	}
	if len(cases) == 0 {
		s.badRequest(w, fmt.Errorf("need cases or table=true"))
		return
	}
	for i, c := range cases {
		if len(c) != kind.NumInputs() {
			s.badRequest(w, fmt.Errorf("case %d has %d inputs, %s needs %d", i, len(c), kind, kind.NumInputs()))
			return
		}
	}
	shard := req.Shard
	if shard <= 0 {
		shard = s.fleetShard
	}
	spec := fleet.JobSpec{
		Gate:     breq.Gate,
		Backend:  breq.Backend,
		Spec:     breq.Spec,
		Material: breq.Material,
		Mode:     string(engMode),
		Table:    req.Table,
		Inverted: req.Inverted,
		DtScale:  req.DtScale,
	}
	var st *fleet.RequestStatus
	if req.Segments > 0 {
		switch {
		case req.Table || len(cases) != 1:
			s.badRequest(w, fmt.Errorf("a segmented transient takes exactly one case (got table=%t, %d cases)", req.Table, len(cases)))
			return
		case breq.Backend != "micromag" && breq.Backend != "micromagnetic":
			s.badRequest(w, fmt.Errorf("a segmented transient needs the micromag backend, got %q", breq.Backend))
			return
		case !s.artifactsEnabled():
			s.badRequest(w, fmt.Errorf("segmented transients need the run-artifact store (-artifacts)"))
			return
		}
		st, err = s.fleet.SubmitTransient(spec, cases[0], req.Segments, req.EverySteps)
	} else {
		st, err = s.fleet.Submit(spec, cases, shard)
	}
	if err != nil {
		s.badRequest(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	s.reply(w, fleetStatusResponse{RequestStatus: st})
}

func (s *server) handleFleetStatus(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	st, err := s.fleet.Status(r.PathValue("id"))
	if err != nil {
		s.fleetNotFound(w, err)
		return
	}
	resp := fleetStatusResponse{RequestStatus: st}
	if st.State == fleet.RequestComplete && st.Spec.Table {
		if tt, err := assembleFleetTable(st); err == nil {
			resp.Table = tt
		} else {
			s.fail(w, fmt.Errorf("assembling fleet table for %s: %w", st.ID, err))
			return
		}
	}
	s.reply(w, resp)
}

func (s *server) handleFleetWorkers(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.reply(w, map[string]any{
		"workers":  s.fleet.Workers(),
		"snapshot": s.fleet.Snapshot(),
	})
}

func (s *server) handleFleetRegister(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.refuseDraining(w) {
		return
	}
	var req fleet.RegisterRequest
	if !s.decode(w, r, &req) {
		return
	}
	id, err := s.fleet.Register(req.Worker, req.Host, req.PID)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	lease := s.fleet.Queue().Lease()
	s.reply(w, fleet.RegisterResponse{
		Worker:      id,
		LeaseMS:     lease.Milliseconds(),
		PollMS:      (lease / 10).Milliseconds(),
		HeartbeatMS: (lease / 3).Milliseconds(),
	})
}

func (s *server) handleFleetClaim(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.refuseDraining(w) {
		return
	}
	var req fleet.ClaimRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Worker == "" {
		s.badRequest(w, fmt.Errorf("claim needs a worker id"))
		return
	}
	job, err := s.fleet.Claim(req.Worker)
	if err != nil {
		s.fail(w, err)
		return
	}
	if job == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	// Answer with the claimed job's trace in the header too, so even a
	// client that never decodes the body can pick up the correlation key.
	if job.Trace != "" {
		w.Header().Set(obsplane.TraceHeader, job.Trace)
	}
	s.reply(w, job)
}

// handleFleetHeartbeat stays open while draining: a worker mid-job must
// keep its lease alive so the result it is about to post lands.
func (s *server) handleFleetHeartbeat(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req fleet.HeartbeatRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := s.fleet.Heartbeat(req.Worker, req.Job, req.Health); err != nil {
		switch {
		case errors.Is(err, fleet.ErrStaleClaim):
			s.failAs(w, http.StatusConflict, codeStaleClaim, false, err.Error())
		case errors.Is(err, fleet.ErrNoSuchJob):
			s.fleetNotFound(w, err)
		default:
			s.fail(w, err)
		}
		return
	}
	s.reply(w, map[string]string{"status": "ok"})
}

// handleFleetResults stays open while draining: refusing a computed
// result at shutdown is the one loss leases cannot repair.
func (s *server) handleFleetResults(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req fleet.ResultRequest
	if !s.decode(w, r, &req) {
		return
	}
	applied, err := s.fleet.IngestResult(req.Worker, req.Job, req.Fingerprint, req.Results, req.Error)
	if err != nil {
		if errors.Is(err, fleet.ErrNoSuchJob) {
			s.fleetNotFound(w, err)
		} else {
			s.badRequest(w, err)
		}
		return
	}
	status := fleet.JobDone
	if j, ok := s.fleet.Queue().Get(req.Job); ok {
		status = j.Status
	}
	s.reply(w, fleet.ResultResponse{Applied: applied, Status: status})
}

// assembleFleetTable decodes a completed table request's merged case
// outcomes into the paper's truth table (Table I for majority gates,
// Table II for XOR/XNOR), exactly as POST /v1/table would have. The
// coordinator's results arrive in submission order — EnumerateInputs
// order — so row 0 is the all-zeros normalization reference.
func assembleFleetTable(st *fleet.RequestStatus) (*spinwave.TruthTable, error) {
	kind, err := parseGate(st.Spec.Gate)
	if err != nil {
		return nil, err
	}
	readouts := make([]map[string]detect.Readout, len(st.Results))
	for i, out := range st.Results {
		readouts[i] = out.Outputs
	}
	if len(readouts) == 0 {
		return nil, fmt.Errorf("no merged results")
	}
	backendName := st.Spec.Backend
	if backendName == "" {
		backendName = "behavioral"
	}
	if kind == spinwave.XOR {
		return core.AssembleXORTable(backendName, st.Spec.Inverted, readouts[0], readouts)
	}
	return core.AssembleMajorityTable(kind, backendName, readouts[0], readouts)
}

// fleetHealth is the deep-healthz fleet section: queue stats, worker
// counts, and the durability probe (the queue directory must still
// accept atomic writes). An unwritable queue marks the instance
// unhealthy — it can hand out work but cannot record any outcome.
func (s *server) fleetHealth() (section map[string]any, healthy bool) {
	snap := s.fleet.Snapshot()
	section = map[string]any{
		"queue":             snap.Queue,
		"workers":           snap.Workers,
		"workers_lost":      snap.WorkersLost,
		"requests":          snap.Requests,
		"requests_complete": snap.RequestsComplete,
		"duplicate_results": snap.DuplicateResults,
	}
	if len(snap.Nodes) > 0 {
		// The federated per-node view (liveness + lifecycle counts) that
		// the heartbeat health snapshots keep fresh.
		section["nodes"] = snap.Nodes
	}
	healthy = true
	if err := s.fleet.Queue().WritableProbe(); err != nil {
		section["error"] = err.Error()
		healthy = false
	}
	if s.fleetJournalEnabled() {
		js, ok := s.fleetJournalHealth()
		section["journal"] = js
		if !ok {
			healthy = false
		}
	}
	return section, healthy
}

// Command swserve serves the spin-wave gate simulator over HTTP.
//
//	swserve -addr :8080 -workers 8 -cache 4096
//
// Endpoints:
//
//	POST /v1/eval     evaluate one input case or a batch of cases
//	POST /v1/table    evaluate a full truth table (paper Tables I/II)
//	GET  /v1/spec     machine-readable API description (endpoints,
//	                  gates, modes, error codes, build info)
//	GET  /v1/healthz  liveness probe (build info, uptime, drain state;
//	                  ?deep=1 adds a behavioral canary eval + pool ping
//	                  and the surrogate admission state)
//	GET  /v1/slo      rolling-window SLO state with burn rates
//	GET  /v1/history  run-history catalog query: completed evals, tables
//	                  and fleet requests with file pointers (-history)
//	GET  /v1/runs                 run IDs with retained probe data
//	GET  /v1/runs/{id}/events     NDJSON live tail of the run journal
//	GET  /v1/runs/{id}/probes     probe time-series (JSON, ?format=csv)
//	POST /v1/fleet/journal            worker journal-batch ingestion
//	GET  /v1/fleet/jobs/{id}/events   merged multi-node NDJSON journal
//	                                  tail (?follow=false for snapshot)
//	GET  /v1/fleet/jobs/{id}/trace    assembled Chrome-trace timeline
//	GET  /metrics     Prometheus text exposition (engine, solver, HTTP)
//	GET  /debug/vars  expvar metrics (engine + server counters)
//	GET  /debug/pprof/*  runtime profiles (only with -pprof)
//
// /v1/eval and /v1/table are POST-only (anything else answers 405 with
// an Allow header) and accept a "mode" field selecting the serving
// tiers: "behavioral" or "micromag" pin the exact solver, "auto" serves
// the cheapest tier that can answer (memory cache, disk store, admitted
// superposition surrogate, full recompute), "surrogate" serves
// exclusively from an admitted surrogate model. Responses carry the
// tier that answered ("source") and the backend fingerprint. Failures
// on every /v1 endpoint use one envelope:
// {"error":{"code","message","retryable"}}.
//
// All evaluations run through one shared concurrent engine, so repeated
// requests for the same (gate, spec, material, inputs) are served from
// its result store (LRU, plus the -store disk tier) and identical
// in-flight requests are coalesced. Each request gets a deadline (the
// smaller of -timeout and the request's own timeout_ms);
// SIGINT/SIGTERM drains in-flight requests before exiting.
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"spinwave"
	"spinwave/internal/checkpoint"
	"spinwave/internal/core"
	"spinwave/internal/fleet"
	"spinwave/internal/journal"
	"spinwave/internal/obsplane"
	"spinwave/internal/runhistory"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swserve: ")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "engine worker-pool size (0 = NumCPU)")
	flag.IntVar(&stepWorkers, "step-workers", 0, "LLG stepping workers per micromag transient (0/1 = serial; trajectories are bit-identical)")
	cacheSize := flag.Int("cache", 4096, "engine LRU capacity in cached case readouts (0 disables)")
	timeout := flag.Duration("timeout", 120*time.Second, "server-side per-request deadline")
	maxBatch := flag.Int("max-batch", defaultMaxBatch, "maximum cases per /v1/eval request")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	flag.BoolVar(&probeOn, "probe", false, "record in-situ probe time-series for micromag runs (served at /v1/runs/{id}/probes)")
	flag.BoolVar(&healthOn, "health", false, "attach the numerical health monitor to micromag runs (alerts + verdicts, DESIGN.md §12)")
	sloWindow := flag.Duration("slo-window", defaultSLOWindow, "rolling SLO window")
	sloObjective := flag.Float64("slo-objective", defaultSLOObjective, "SLO good-fraction objective in percent (availability and latency)")
	sloLatency := flag.Duration("slo-latency", defaultSLOLatency, "SLO latency threshold (responses slower than this burn the latency budget)")
	storeDir := flag.String("store", "", "disk-backed result store directory (persists expensive readouts across restarts; empty disables)")
	surrogateGates := flag.String("surrogate", "", "comma-separated gates to build superposition surrogates for at startup (e.g. xor,maj3)")
	surrogateBackend := flag.String("surrogate-backend", "micromag", "backend the startup surrogates are built from (micromag or behavioral)")
	fleetQueue := flag.String("fleet-queue", "", "durable fleet job-queue directory; enables the coordinator and the /v1/fleet endpoints")
	fleetLease := flag.Duration("fleet-lease", fleet.DefaultLease, "fleet claim lease; a worker silent this long loses its job to a peer")
	fleetShard := flag.Int("fleet-shard", 4, "default cases per fleet job (submissions may pick their own shard)")
	fleetJournal := flag.String("fleet-journal", "", "durable fleet journal directory for shipped worker journals and the coordinator mirror (default <fleet-queue>/fleet-journal when the fleet is enabled)")
	artifactsDir := flag.String("artifacts", "", "durable run-artifact store directory (checkpoints, probe CSVs, journals; serves /v1/runs/{id}/artifacts)")
	journalFile := flag.String("journal", "", "append journal events as JSONL to this file (fleet.*, alert, run lifecycle)")
	historyDir := flag.String("history", "", "durable run-history catalog directory; indexes every served eval, table and fleet request and serves GET /v1/history")
	retainAge := flag.Duration("retain-age", 0, "retention: expire fleet-journal traces, probe CSVs and run-artifact directories older than this (0 = no age cap)")
	retainTraces := flag.Int("retain-traces", 0, "retention: keep at most this many fleet-journal traces, newest first (0 = no count cap)")
	retainCheckpoints := flag.Int("retain-checkpoints", 0, "retention: keep at most this many checkpoint pairs per run beyond the newest (0 = no cap; the newest pair always survives)")
	retainRuns := flag.Int("retain-runs", 0, "retention: keep at most this many run-artifact directories, newest first (0 = no count cap)")
	retainBytes := flag.Int64("retain-bytes", 0, "retention: cap the run-artifact store at this many cumulative bytes, newest runs first (0 = no byte cap)")
	retainHistory := flag.Int("retain-history", 0, "retention: compact the history catalog down to this many records (0 = never compact)")
	retainEvery := flag.Duration("retain-every", time.Minute, "retention: sweep cadence of the periodic GC")
	retainDryRun := flag.Bool("retain-dry-run", false, "retention: journal and report what a sweep would delete without deleting anything")
	flag.Parse()

	var opts []spinwave.EngineOption
	if *workers > 0 {
		opts = append(opts, spinwave.WithEngineWorkers(*workers))
	}
	opts = append(opts, spinwave.WithEngineCacheSize(*cacheSize))
	if *storeDir != "" {
		store, err := spinwave.OpenDiskStore(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, spinwave.WithEngineDiskStore(store))
	}
	srv := newServer(spinwave.NewEngine(opts...), *timeout)
	defer srv.close()
	srv.maxBatch = *maxBatch
	srv.pprofOn = *pprofOn
	srv.slo = newSLOTracker(*sloWindow, *sloObjective, *sloLatency)
	srv.publishVars()
	if *journalFile != "" {
		// Attach before anything emits, so fleet/alert events from queue
		// recovery land in the file too.
		f, err := os.OpenFile(*journalFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		defer journal.Default().Attach(journal.NewWriterSink(f))()
	}
	if *surrogateGates != "" {
		// Build and gate the surrogates before accepting traffic, so a
		// "surrogate"-mode request never races the admission verdict.
		if err := srv.initSurrogates(context.Background(), *surrogateGates, *surrogateBackend); err != nil {
			log.Printf("surrogate: %v (serving exact tiers only; deep health degraded)", err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *artifactsDir != "" {
		if err := srv.initArtifacts(*artifactsDir); err != nil {
			log.Fatal(err)
		}
	}
	if *fleetQueue != "" {
		// The fleet journal opens (and its coordinator mirror attaches)
		// before the queue, so trace-stamped events from queue recovery —
		// requeues, quarantine alerts — land in the durable fleet journal
		// too.
		jdir := *fleetJournal
		if jdir == "" {
			jdir = filepath.Join(*fleetQueue, "fleet-journal")
		}
		if err := srv.initFleetJournal(jdir); err != nil {
			log.Fatal(err)
		}
		if err := srv.initFleet(*fleetQueue, *fleetShard, fleet.WithLease(*fleetLease)); err != nil {
			log.Fatal(err)
		}
		// Background lease sweeper: recovery must not depend on a worker
		// happening to poll.
		go srv.fleet.Run(ctx, 0)
	}
	if *historyDir != "" {
		if err := srv.initHistory(*historyDir); err != nil {
			log.Fatal(err)
		}
		if srv.fleetEnabled() {
			// Index every completed fleet request into the catalog. Set
			// before the listener opens, so no completion can slip by.
			srv.fleet.OnComplete = srv.indexFleetRequest
		}
	}
	policy := runhistory.Policy{
		Traces:            runhistory.ClassPolicy{MaxAge: *retainAge, MaxCount: *retainTraces},
		Checkpoints:       runhistory.ClassPolicy{MaxCount: *retainCheckpoints},
		ProbeCSV:          runhistory.ClassPolicy{MaxAge: *retainAge},
		Artifacts:         runhistory.ClassPolicy{MaxAge: *retainAge, MaxCount: *retainRuns, MaxBytes: *retainBytes},
		HistoryMaxRecords: *retainHistory,
		DryRun:            *retainDryRun,
	}
	if gc := srv.initRetention(policy); gc != nil {
		// Periodic GC: reclaim expired observability data on a cadence,
		// never racing active fleet requests (the coordinator's in-flight
		// sets are protected).
		go gc.Run(ctx, *retainEvery)
	}

	httpSrv := &http.Server{Handler: srv.routes()}

	// Listen explicitly (rather than ListenAndServe) so -addr :0 works
	// and the log line names the actual port — the fleet smoke harness
	// parses it.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	log.Printf("listening on %s (%d workers)", ln.Addr(), srv.eng.Workers())

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down, draining in-flight requests ...")
	srv.draining.Store(true)
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
}

// defaultMaxBatch bounds /v1/eval batches: enough for every input
// combination of the largest gate (MAJ5, 32 cases) several times over,
// small enough that one request cannot monopolize the task pool.
const defaultMaxBatch = 256

// maxTimeoutMS rejects nonsense client deadlines (greater than an hour);
// the effective deadline is still capped by the server's -timeout flag.
const maxTimeoutMS = int64(time.Hour / time.Millisecond)

// server holds the shared engine and request counters.
type server struct {
	eng            *spinwave.Engine
	defaultTimeout time.Duration
	maxBatch       int
	pprofOn        bool
	draining       atomic.Bool

	// Flight-recorder plumbing (runs.go): recent-event replay ring, live
	// streaming hub, NDJSON heartbeat cadence, and the journal detach
	// hook released by close().
	ring          *journal.RingSink
	hub           *journal.Hub
	heartbeat     time.Duration
	detachJournal func()

	// SLO tracker (slo.go), deep-health canary cache (health.go), and
	// surrogate admission ledger (surrogate.go).
	slo       *sloTracker
	canary    canaryState
	started   time.Time
	surrogate surrogateLedger

	// Fleet coordinator (fleet.go); nil unless -fleet-queue is set.
	fleet      *fleet.Coordinator
	fleetShard int

	// Fleet journal store and its coordinator mirror detach hook
	// (obsplane.go); nil unless the fleet journal is enabled.
	fjournal     *obsplane.Store
	detachMirror func()

	// Run-artifact store (artifacts.go); nil unless -artifacts is set.
	artifacts *checkpoint.ArtifactStore

	// Run-history catalog and retention engine (history.go); nil unless
	// -history / the -retain-* flags are set.
	history *runhistory.Catalog
	gc      *runhistory.GC

	requests  atomic.Int64
	errors    atomic.Int64
	evalCases atomic.Int64
	tables    atomic.Int64
}

func newServer(eng *spinwave.Engine, defaultTimeout time.Duration) *server {
	initHTTPMetrics()
	s := &server{eng: eng, defaultTimeout: defaultTimeout, maxBatch: defaultMaxBatch,
		heartbeat: 5 * time.Second,
		slo:       newSLOTracker(defaultSLOWindow, defaultSLOObjective, defaultSLOLatency),
		started:   time.Now()}
	s.detachJournal = s.attachJournal()
	return s
}

// close detaches the server's journal sinks; deferred in main and in
// test cleanup so sinks do not accumulate on the process journal.
func (s *server) close() {
	if s.detachMirror != nil {
		s.detachMirror()
		s.detachMirror = nil
	}
	if s.detachJournal != nil {
		s.detachJournal()
		s.detachJournal = nil
	}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/eval", s.withMetrics("/v1/eval", s.handleEval))
	mux.HandleFunc("/v1/table", s.withMetrics("/v1/table", s.handleTable))
	mux.HandleFunc("GET /v1/spec", s.withMetrics("/v1/spec", s.handleSpec))
	mux.HandleFunc("/v1/healthz", s.withMetrics("/v1/healthz", s.handleHealthz))
	mux.HandleFunc("GET /v1/slo", s.withMetrics("/v1/slo", s.handleSLO))
	mux.HandleFunc("/metrics", s.withMetrics("/metrics", s.handleMetrics))
	mux.HandleFunc("/debug/vars", s.withMetrics("/debug/vars", s.handleVars))
	mux.HandleFunc("GET /v1/runs", s.withMetrics("/v1/runs", s.handleRuns))
	mux.HandleFunc("GET /v1/runs/{id}/events", s.withMetrics("/v1/runs/events", s.handleRunEvents))
	mux.HandleFunc("GET /v1/runs/{id}/probes", s.withMetrics("/v1/runs/probes", s.handleRunProbes))
	if s.fleetEnabled() {
		s.fleetRoutes(mux)
	}
	if s.fleetJournalEnabled() {
		s.fleetJournalRoutes(mux)
	}
	if s.artifactsEnabled() {
		s.artifactRoutes(mux)
	}
	if s.historyEnabled() {
		s.historyRoutes(mux)
	}
	if s.pprofOn {
		registerPprof(mux)
	}
	return mux
}

// handleVars serves expvar. Like /metrics it is deliberately exempt
// from the drain 503: read-only observability must stay scrapeable
// while in-flight work finishes, so the final counter values of a
// dying process are not lost (the shutdown-scrape regression test pins
// this).
func (s *server) handleVars(w http.ResponseWriter, r *http.Request) {
	expvar.Handler().ServeHTTP(w, r)
}

// publishVars registers the engine and server counters with expvar. Safe
// to call once per process; tests share the same registry, so the
// publication is process-global.
var publishOnce sync.Once

func (s *server) publishVars() {
	publishOnce.Do(func() {
		expvar.Publish("spinwave_engine", expvar.Func(func() any { return s.eng.Stats() }))
		expvar.Publish("spinwave_server", expvar.Func(func() any {
			return map[string]int64{
				"requests":   s.requests.Load(),
				"errors":     s.errors.Load(),
				"eval_cases": s.evalCases.Load(),
				"tables":     s.tables.Load(),
			}
		}))
	})
}

// backendRequest is the backend and serving-mode selection common to
// eval and table requests. Omitted fields default to the paper's
// configuration.
type backendRequest struct {
	Gate string `json:"gate"` // maj3, maj3single, xor, maj5
	// Mode selects the serving tiers: "behavioral" or "micromag" pin
	// the exact solver; "auto" answers from the cheapest tier (cache,
	// disk, admitted surrogate, recompute); "surrogate" serves only
	// from an admitted surrogate model. Empty keeps the legacy
	// contract: the backend field picks the solver, exact tiers only.
	Mode     string `json:"mode,omitempty"`
	Backend  string `json:"backend,omitempty"`  // behavioral (default) or micromag
	Spec     string `json:"spec,omitempty"`     // paper (default), reduced, paper-micromag
	Material string `json:"material,omitempty"` // fecob (default), yig, permalloy
	// TimeoutMS caps this request's evaluation time; the effective
	// deadline is min(TimeoutMS, the server's -timeout flag).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

type evalRequest struct {
	backendRequest
	Inputs []bool   `json:"inputs,omitempty"` // single case ...
	Cases  [][]bool `json:"cases,omitempty"`  // ... or a batch
}

type caseResponse struct {
	Inputs  []bool                      `json:"inputs"`
	Outputs map[string]spinwave.Readout `json:"outputs"`
	// Source is the result-store tier that answered this case: cache,
	// disk, surrogate, micromag or behavioral.
	Source string `json:"source,omitempty"`
	// Run is the journal/probe run ID assigned to this case — the ID to
	// tail at /v1/runs/{id}/events or fetch at /v1/runs/{id}/probes.
	Run string `json:"run,omitempty"`
}

type evalResponse struct {
	Gate    string `json:"gate"`
	Backend string `json:"backend"`
	// Mode echoes the effective serving mode of the request.
	Mode string `json:"mode"`
	// Fingerprint is the canonical model fingerprint the results are
	// keyed under (empty for unfingerprintable backends).
	Fingerprint string         `json:"fingerprint,omitempty"`
	Results     []caseResponse `json:"results"`
}

type tableRequest struct {
	backendRequest
	Derived  string `json:"derived,omitempty"`  // and, or, nand, nor (MAJ3 backends)
	Inverted bool   `json:"inverted,omitempty"` // XNOR decoding for XOR tables
}

// tableResponse is the truth table inline (unchanged wire shape) plus
// the serving-mode metadata of the redesigned contract.
type tableResponse struct {
	*spinwave.TruthTable
	Mode string `json:"mode"`
	// Source is the aggregate tier of the table's rows ("mixed" when
	// cases were answered by different tiers).
	Source      string `json:"source,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
}

func (s *server) handleEval(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req evalRequest
	if !s.decode(w, r, &req) {
		return
	}
	cases := req.Cases
	if len(req.Inputs) > 0 {
		cases = append([][]bool{req.Inputs}, cases...)
	}
	if len(cases) == 0 {
		s.badRequest(w, fmt.Errorf("need inputs or cases"))
		return
	}
	if len(cases) > s.maxBatch {
		s.badRequest(w, fmt.Errorf("batch of %d cases exceeds the limit of %d", len(cases), s.maxBatch))
		return
	}
	if !s.validTimeout(w, req.TimeoutMS) {
		return
	}
	engMode, modeLabel, breq, err := resolveMode(req.backendRequest)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	b, err := buildBackend(breq)
	if err != nil {
		s.fail(w, err)
		return
	}
	ctx, cancel := s.deadline(r.Context(), req.TimeoutMS)
	defer cancel()
	resp := evalResponse{Gate: b.Kind().String(), Backend: b.Name(), Mode: modeLabel,
		Results: make([]caseResponse, len(cases))}
	fps := make([]string, len(cases))
	evalStart := time.Now()
	err = s.eng.Map(ctx, len(cases), func(ctx context.Context, i int) error {
		// Mint the run ID here (rather than letting the engine do it) so
		// the response can tell the client which ID to tail or fetch
		// probes for.
		runID := spinwave.NewRunID()
		res, err := s.eng.EvalTiered(spinwave.WithRunID(ctx, runID), b, cases[i], engMode)
		if err != nil {
			return err
		}
		resp.Results[i] = caseResponse{Inputs: cases[i], Outputs: res.Readouts,
			Source: string(res.Source), Run: runID}
		fps[i] = res.Fingerprint
		return nil
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	resp.Fingerprint = fps[0]
	s.evalCases.Add(int64(len(cases)))
	s.indexEval(gateName(b.Kind()), resp, cases, fps, time.Since(evalStart))
	s.reply(w, resp)
}

func (s *server) handleTable(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req tableRequest
	if !s.decode(w, r, &req) {
		return
	}
	if !s.validTimeout(w, req.TimeoutMS) {
		return
	}
	engMode, modeLabel, breq, err := resolveMode(req.backendRequest)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	b, err := buildBackend(breq)
	if err != nil {
		s.fail(w, err)
		return
	}
	ctx, cancel := s.deadline(r.Context(), req.TimeoutMS)
	defer cancel()
	tableStart := time.Now()
	var tt *spinwave.TruthTable
	var src spinwave.EvalSource
	switch {
	case req.Derived != "":
		d, derr := parseDerived(req.Derived)
		if derr != nil {
			s.fail(w, derr)
			return
		}
		if b.Kind() == spinwave.XOR {
			s.badRequest(w, fmt.Errorf("derived gates need a MAJ3-family backend, not xor"))
			return
		}
		tt, src, err = s.eng.DerivedTableTiered(ctx, b, d, engMode)
	case b.Kind() == spinwave.XOR:
		tt, src, err = s.eng.XORTableTiered(ctx, b, req.Inverted, engMode)
	default:
		tt, src, err = s.eng.MajorityTableTiered(ctx, b, engMode)
	}
	if err != nil {
		s.fail(w, err)
		return
	}
	s.tables.Add(1)
	s.indexTable(gateName(b.Kind()), b.Name(), backendFingerprint(b), string(src),
		len(tt.Cases), time.Since(tableStart))
	s.reply(w, tableResponse{TruthTable: tt, Mode: modeLabel,
		Source: string(src), Fingerprint: backendFingerprint(b)})
}

func (s *server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.failAs(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, false,
			fmt.Sprintf("%s requires POST, got %s", r.URL.Path, r.Method))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.badRequest(w, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// validTimeout rejects out-of-range timeout_ms values with a 400;
// reports whether the request may proceed.
func (s *server) validTimeout(w http.ResponseWriter, timeoutMS int64) bool {
	if timeoutMS < 0 || timeoutMS > maxTimeoutMS {
		s.badRequest(w,
			fmt.Errorf("timeout_ms %d out of range [0, %d]", timeoutMS, maxTimeoutMS))
		return false
	}
	return true
}

// deadline derives the request context: the server default, tightened by
// the request's own timeout_ms when given.
func (s *server) deadline(ctx context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.defaultTimeout
	if timeoutMS > 0 {
		if rd := time.Duration(timeoutMS) * time.Millisecond; rd < d {
			d = rd
		}
	}
	return context.WithTimeout(ctx, d)
}

func (s *server) reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.errors.Add(1)
	}
}

// resolveMode validates the requested serving mode against the legacy
// backend field and returns the engine mode, the mode label echoed in
// responses, and the backend request with the implied solver filled in.
func resolveMode(req backendRequest) (spinwave.EvalMode, string, backendRequest, error) {
	mode := strings.ToLower(req.Mode)
	be := strings.ToLower(req.Backend)
	conflict := func() error {
		return fmt.Errorf("mode %q conflicts with backend %q", req.Mode, req.Backend)
	}
	switch mode {
	case "":
		// Legacy contract: the backend field picks the solver; exact
		// tiers only. The echoed mode names the effective solver.
		label := "behavioral"
		if be == "micromag" || be == "micromagnetic" {
			label = "micromag"
		}
		return spinwave.EvalModeDirect, label, req, nil
	case "behavioral":
		if be != "" && be != "behavioral" {
			return "", "", req, conflict()
		}
		req.Backend = "behavioral"
		return spinwave.EvalModeDirect, "behavioral", req, nil
	case "micromag", "micromagnetic":
		if be != "" && be != "micromag" && be != "micromagnetic" {
			return "", "", req, conflict()
		}
		req.Backend = "micromag"
		return spinwave.EvalModeDirect, "micromag", req, nil
	case "auto", "surrogate":
		// The backend field picks the base model identity (default
		// micromag — the solver the surrogate tier exists to replace);
		// the tiers decide who actually answers.
		if be == "" {
			req.Backend = "micromag"
		}
		if mode == "auto" {
			return spinwave.EvalModeAuto, "auto", req, nil
		}
		return spinwave.EvalModeSurrogateOnly, "surrogate", req, nil
	default:
		return "", "", req, fmt.Errorf("unknown mode %q (want auto, surrogate, micromag or behavioral)", req.Mode)
	}
}

// backendFingerprint returns the backend's canonical fingerprint, empty
// when it has none.
func backendFingerprint(b spinwave.Backend) string {
	if fper, ok := b.(core.Fingerprinter); ok {
		if fp, ok := fper.Fingerprint(); ok {
			return fp
		}
	}
	return ""
}

// stepWorkers is the per-transient LLG stepping worker count applied to
// every micromagnetic backend the server builds (-step-workers flag).
// It composes with the engine pool: table rows parallelize across engine
// workers while each row's LLG bands parallelize across step workers.
var stepWorkers int

// probeOn enables in-situ probe recording on every micromagnetic
// backend the server builds (-probe flag); recorded runs are served at
// /v1/runs/{id}/probes.
var probeOn bool

// healthOn attaches the numerical health monitor to every micromagnetic
// backend the server builds (-health flag); verdicts and alerts flow
// into the journal (tailable at /v1/runs/{id}/events) and /metrics.
var healthOn bool

func buildBackend(req backendRequest) (spinwave.Backend, error) {
	kind, err := parseGate(req.Gate)
	if err != nil {
		return nil, err
	}
	mat := spinwave.FeCoB()
	if req.Material != "" {
		if mat, err = spinwave.MaterialByName(req.Material); err != nil {
			return nil, fmt.Errorf("%w: material %q", spinwave.ErrUnknownComponent, req.Material)
		}
	}
	switch strings.ToLower(req.Backend) {
	case "", "behavioral":
		spec, err := parseSpec(req.Spec, spinwave.PaperSpec())
		if err != nil {
			return nil, err
		}
		return spinwave.NewBehavioral(kind, spec, mat)
	case "micromag", "micromagnetic":
		spec, err := parseSpec(req.Spec, spinwave.ReducedSpec())
		if err != nil {
			return nil, err
		}
		mopts := []spinwave.MicromagOption{spinwave.WithSpec(spec), spinwave.WithMaterial(mat),
			spinwave.WithWorkers(stepWorkers)}
		if probeOn {
			mopts = append(mopts, spinwave.WithProbes(spinwave.ProbeConfig{Enabled: true}))
		}
		if healthOn {
			mopts = append(mopts, spinwave.WithHealth(spinwave.HealthConfig{Enabled: true}))
		}
		return spinwave.NewMicromagnetic(kind, mopts...)
	default:
		return nil, fmt.Errorf("%w: backend %q (want behavioral or micromag)", spinwave.ErrUnknownComponent, req.Backend)
	}
}

func parseGate(name string) (spinwave.GateKind, error) {
	switch strings.ToLower(name) {
	case "", "maj3", "majority":
		return spinwave.MAJ3, nil
	case "maj3single", "maj3-single":
		return spinwave.MAJ3Single, nil
	case "xor":
		return spinwave.XOR, nil
	case "maj5":
		return spinwave.MAJ5, nil
	default:
		return 0, fmt.Errorf("%w: gate %q", spinwave.ErrUnknownGate, name)
	}
}

func parseSpec(name string, fallback spinwave.Spec) (spinwave.Spec, error) {
	switch strings.ToLower(name) {
	case "":
		return fallback, nil
	case "paper":
		return spinwave.PaperSpec(), nil
	case "paper-micromag":
		return spinwave.PaperMicromagSpec(), nil
	case "reduced":
		return spinwave.ReducedSpec(), nil
	default:
		return spinwave.Spec{}, fmt.Errorf("%w: spec %q (want paper, paper-micromag or reduced)", spinwave.ErrUnknownComponent, name)
	}
}

func parseDerived(name string) (spinwave.DerivedGate, error) {
	switch strings.ToLower(name) {
	case "and":
		return spinwave.AND, nil
	case "or":
		return spinwave.OR, nil
	case "nand":
		return spinwave.NAND, nil
	case "nor":
		return spinwave.NOR, nil
	default:
		return 0, fmt.Errorf("%w: derived gate %q (want and, or, nand, nor)", spinwave.ErrUnknownGate, name)
	}
}

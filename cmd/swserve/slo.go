package main

import (
	"net/http"
	"sort"
	"sync"
	"time"

	"spinwave/internal/fleet"
	"spinwave/internal/obs"
)

// SLO tracking (DESIGN.md §12): every request that passes through the
// metrics middleware is also scored against two service-level
// objectives — availability (share of requests answered without a 5xx)
// and latency (share of requests answered under a threshold) — over a
// rolling window of per-second buckets. The headline signal is the
// burn rate: observed bad fraction ÷ allowed bad fraction, so 1.0 means
// the error budget is being consumed exactly at the sustainable rate,
// and anything much above it means the budget will be exhausted early.
// Burn rates are exported as gauges in /metrics
// (swserve_slo_error_burn_rate / swserve_slo_slow_burn_rate by path)
// and the full per-endpoint breakdown is served at GET /v1/slo.

// sloDefaults for the -slo-* flags.
const (
	defaultSLOWindow    = 5 * time.Minute
	defaultSLOObjective = 99.0 // percent, both availability and latency
	defaultSLOLatency   = 5 * time.Second
)

// sloBucket is one second of per-endpoint traffic.
type sloBucket struct {
	epoch int64 // Unix second this bucket currently represents
	total int64
	errs  int64 // responses with status >= 500
	slow  int64 // responses slower than the latency threshold
}

// sloSeries is the rolling window for one endpoint.
type sloSeries struct {
	buckets []sloBucket
}

// sloTracker scores requests against the availability and latency
// objectives over a rolling window. All methods are safe for concurrent
// use; record is O(1).
type sloTracker struct {
	window    time.Duration
	objective float64 // good-fraction objective in [0, 1), e.g. 0.99
	latency   time.Duration

	mu     sync.Mutex
	series map[string]*sloSeries
}

// newSLOTracker builds a tracker; zero arguments select the defaults.
func newSLOTracker(window time.Duration, objectivePct float64, latency time.Duration) *sloTracker {
	if window < time.Second {
		window = defaultSLOWindow
	}
	if objectivePct <= 0 || objectivePct >= 100 {
		objectivePct = defaultSLOObjective
	}
	if latency <= 0 {
		latency = defaultSLOLatency
	}
	return &sloTracker{
		window:    window,
		objective: objectivePct / 100,
		latency:   latency,
		series:    make(map[string]*sloSeries),
	}
}

// record scores one finished request.
func (t *sloTracker) record(path string, status int, elapsed time.Duration) {
	now := time.Now().Unix()
	t.mu.Lock()
	sr := t.series[path]
	if sr == nil {
		sr = &sloSeries{buckets: make([]sloBucket, int(t.window/time.Second))}
		t.series[path] = sr
		t.registerGauges(path)
	}
	b := &sr.buckets[now%int64(len(sr.buckets))]
	if b.epoch != now {
		*b = sloBucket{epoch: now}
	}
	b.total++
	if status >= http.StatusInternalServerError {
		b.errs++
	}
	if elapsed > t.latency {
		b.slow++
	}
	t.mu.Unlock()
}

// registerGauges exposes the endpoint's burn rates in the obs registry.
// Called under t.mu on first sight of a path; cardinality is bounded by
// the mux's route set (the path label is the route pattern).
func (t *sloTracker) registerGauges(path string) {
	r := obs.Default()
	r.Describe("swserve_slo_error_burn_rate", "availability error-budget burn rate by endpoint (1.0 = consuming the budget at the sustainable rate)")
	r.Describe("swserve_slo_slow_burn_rate", "latency error-budget burn rate by endpoint")
	r.GaugeFunc("swserve_slo_error_burn_rate", func() float64 {
		return t.endpoint(path).ErrorBurnRate
	}, obs.L("path", path))
	r.GaugeFunc("swserve_slo_slow_burn_rate", func() float64 {
		return t.endpoint(path).SlowBurnRate
	}, obs.L("path", path))
}

// sloEndpoint is the JSON-ready SLO state of one endpoint.
type sloEndpoint struct {
	Path          string  `json:"path"`
	Requests      int64   `json:"requests"`
	Errors        int64   `json:"errors"`
	Slow          int64   `json:"slow"`
	ErrorRate     float64 `json:"error_rate"`
	SlowRate      float64 `json:"slow_rate"`
	ErrorBurnRate float64 `json:"error_burn_rate"`
	SlowBurnRate  float64 `json:"slow_burn_rate"`
}

// sloReport is the GET /v1/slo response body.
type sloReport struct {
	WindowSeconds    int           `json:"window_seconds"`
	ObjectivePct     float64       `json:"objective_pct"`
	LatencyThreshold string        `json:"latency_threshold"`
	Endpoints        []sloEndpoint `json:"endpoints"`
}

// endpoint sums one path's live buckets into its SLO state.
func (t *sloTracker) endpoint(path string) sloEndpoint {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.endpointLocked(path)
}

func (t *sloTracker) endpointLocked(path string) sloEndpoint {
	ep := sloEndpoint{Path: path}
	sr := t.series[path]
	if sr == nil {
		return ep
	}
	oldest := time.Now().Unix() - int64(len(sr.buckets)) + 1
	for i := range sr.buckets {
		b := &sr.buckets[i]
		if b.epoch < oldest {
			continue // stale bucket from a previous window revolution
		}
		ep.Requests += b.total
		ep.Errors += b.errs
		ep.Slow += b.slow
	}
	if ep.Requests == 0 {
		return ep
	}
	ep.ErrorRate = float64(ep.Errors) / float64(ep.Requests)
	ep.SlowRate = float64(ep.Slow) / float64(ep.Requests)
	allowed := 1 - t.objective // the error budget as a fraction
	ep.ErrorBurnRate = ep.ErrorRate / allowed
	ep.SlowBurnRate = ep.SlowRate / allowed
	return ep
}

// report renders every tracked endpoint, sorted by path.
func (t *sloTracker) report() sloReport {
	t.mu.Lock()
	paths := make([]string, 0, len(t.series))
	for p := range t.series {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	eps := make([]sloEndpoint, 0, len(paths))
	for _, p := range paths {
		eps = append(eps, t.endpointLocked(p))
	}
	t.mu.Unlock()
	return sloReport{
		WindowSeconds:    int(t.window / time.Second),
		ObjectivePct:     t.objective * 100,
		LatencyThreshold: t.latency.String(),
		Endpoints:        eps,
	}
}

// sloResponse is the GET /v1/slo body: the rolling-window report plus
// the surrogate admission ledger (a degraded surrogate is an SLO
// concern — configured "surrogate"-mode traffic would burn the
// availability budget with 503s).
type sloResponse struct {
	sloReport
	Surrogate []surrogateEntry `json:"surrogate,omitempty"`
	// Fleet is the coordinator snapshot (queue depth, lost workers,
	// duplicate results) — the fleet's own budget signals — present only
	// when the fleet surface is enabled.
	Fleet *fleet.Snapshot `json:"fleet,omitempty"`
}

// handleSLO serves the rolling-window SLO state. Like /metrics it stays
// readable while draining: burn rates are exactly what an operator
// wants to see from a terminating instance.
func (s *server) handleSLO(w http.ResponseWriter, r *http.Request) {
	resp := sloResponse{sloReport: s.slo.report(), Surrogate: s.surrogateSnapshot()}
	if s.fleetEnabled() {
		snap := s.fleet.Snapshot()
		resp.Fleet = &snap
	}
	s.reply(w, resp)
}

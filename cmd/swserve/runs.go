package main

import (
	"fmt"
	"net/http"
	"time"

	"spinwave"
	"spinwave/internal/journal"
)

// Run-inspection endpoints (DESIGN.md §11):
//
//	GET /v1/runs                  run IDs with retained probe data
//	GET /v1/runs/{id}/events      NDJSON live tail of the run journal
//	GET /v1/runs/{id}/probes      probe time-series as JSON or CSV
//
// The journal tail replays the recent history from an in-memory ring,
// then switches to live hub delivery (subscribing before the replay and
// de-duplicating by sequence number, so no event is lost or repeated at
// the seam). Heartbeat lines keep idle connections alive; delivery is
// backpressure-safe — a slow client's events are dropped from its own
// bounded buffer, never stalling the solver.

// eventRing bounds the journal replay history swserve retains.
const eventRing = 4096

// attachJournal installs the server's ring and hub on the process
// journal, returning a detach function for clean shutdown.
func (s *server) attachJournal() (detach func()) {
	s.ring = journal.NewRingSink(eventRing)
	s.hub = journal.NewHub()
	d1 := spinwave.AttachJournalSink(s.ring)
	d2 := spinwave.AttachJournalSink(s.hub)
	return func() { d2(); d1() }
}

// handleRuns lists the run IDs with retained probe recorders.
func (s *server) handleRuns(w http.ResponseWriter, r *http.Request) {
	s.reply(w, map[string]any{"runs": spinwave.ProbedRuns()})
}

// terminalEvent reports whether e is the last journal event a run emits
// — the engine's eval completion (which follows the backend's own
// run.complete / run.error), or the backend's terminal events for runs
// that bypass the engine.
func terminalEvent(e journal.Event) bool {
	return e.Name == "engine.eval.done"
}

// handleRunEvents is the NDJSON live tail: replayed history, then live
// events, with heartbeats, until the run completes or the client goes
// away. New tails are refused while draining (the stream would be cut
// by shutdown anyway), and live tails terminate at the next heartbeat
// tick once draining starts, so open streams never hold Shutdown
// hostage.
func (s *server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	id := r.PathValue("id")
	if id == "" {
		s.badRequest(w, fmt.Errorf("missing run id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.failAs(w, http.StatusInternalServerError, codeInternal, false, "streaming unsupported")
		return
	}
	// Subscribe before replaying so no event falls between ring and hub;
	// the seq guard below drops the overlap.
	events, _, cancel := s.hub.Subscribe(id, 256)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	var last uint64
	// write emits one event line; it reports whether the tail should
	// continue (false on client error or a terminal run event).
	write := func(e journal.Event) bool {
		if e.Seq <= last {
			return true
		}
		last = e.Seq
		if _, err := w.Write(append(e.MarshalJSONL(), '\n')); err != nil {
			return false
		}
		fl.Flush()
		return !terminalEvent(e)
	}
	for _, e := range s.ring.EventsFor(id) {
		if !write(e) {
			return
		}
	}
	hb := time.NewTicker(s.heartbeat)
	defer hb.Stop()
	done := r.Context().Done()
	for {
		select {
		case <-done:
			return
		case <-hb.C:
			if s.draining.Load() {
				// Tell the client the stream is ending because the server is
				// shutting down, not because the run completed — a tail that
				// just goes quiet is indistinguishable from a dead run.
				fmt.Fprintf(w, "{\"event\":\"server_draining\",\"time_ns\":%d,\"run\":%q}\n", //nolint:errcheck
					time.Now().UnixNano(), id)
				fl.Flush()
				return
			}
			if _, err := fmt.Fprintf(w, "{\"event\":\"heartbeat\",\"time_ns\":%d,\"run\":%q}\n",
				time.Now().UnixNano(), id); err != nil {
				return
			}
			fl.Flush()
		case e, open := <-events:
			if !open || !write(e) {
				return
			}
		}
	}
}

// handleRunProbes serves a probed run's time-series. JSON by default;
// `?format=csv` (or an Accept: text/csv header) selects CSV rows of
// t, mx/my/mz per probe.
func (s *server) handleRunProbes(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := spinwave.ProbesFor(id)
	if !ok {
		s.failAs(w, http.StatusNotFound, codeNotFound, false,
			fmt.Sprintf("no probe data for run %q (probes enabled with -probe?)", id))
		return
	}
	snap := rec.Snapshot(id)
	if r.URL.Query().Get("format") == "csv" || r.Header.Get("Accept") == "text/csv" {
		w.Header().Set("Content-Type", "text/csv")
		if err := snap.WriteCSV(w); err != nil {
			s.errors.Add(1)
		}
		return
	}
	s.reply(w, snap)
}

package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spinwave"
	"spinwave/internal/fleet"
	"spinwave/internal/journal"
	"spinwave/internal/obsplane"
)

// newObsFleetServer is newFleetServer plus the fleet journal store and
// its coordinator mirror.
func newObsFleetServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	srv := newServer(spinwave.NewEngine(spinwave.WithEngineWorkers(4)), 30*time.Second)
	t.Cleanup(srv.close)
	dir := t.TempDir()
	if err := srv.initFleetJournal(filepath.Join(dir, "fleet-journal")); err != nil {
		t.Fatal(err)
	}
	if err := srv.initFleet(filepath.Join(dir, "queue"), 4); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return srv, ts
}

// fleetTrace fetches a request's status and returns its trace ID.
func fleetTrace(t *testing.T, ts *httptest.Server, reqID string) string {
	t.Helper()
	resp, raw := getJSON(t, ts.URL+"/v1/fleet/jobs/"+reqID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d %s", resp.StatusCode, raw)
	}
	var st fleetStatusResponse
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Trace == "" {
		t.Fatalf("request %s has no trace: %s", reqID, raw)
	}
	return st.Trace
}

// shipBatch posts one journal batch and returns the acknowledgement.
func shipBatch(t *testing.T, ts *httptest.Server, req obsplane.ShipRequest) obsplane.ShipResponse {
	t.Helper()
	resp, raw := postJSON(t, ts.URL+"/v1/fleet/journal", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ship: %d %s", resp.StatusCode, raw)
	}
	var ack obsplane.ShipResponse
	if err := json.Unmarshal(raw, &ack); err != nil {
		t.Fatal(err)
	}
	return ack
}

// victimEvents fabricates the journal tail of a worker that died
// mid-job: the events its shipper flushed before the kill.
func victimEvents(trace string, seqs ...uint64) []obsplane.ShippedEvent {
	out := make([]obsplane.ShippedEvent, 0, len(seqs))
	for _, seq := range seqs {
		out = append(out, obsplane.ShippedEvent{
			Trace: trace,
			Event: journal.Event{
				Seq: seq, TimeNS: time.Now().UnixNano(), Run: "r1",
				Name:   "engine.eval.start",
				Fields: map[string]any{"step": seq},
			},
		})
	}
	return out
}

// TestFleetJournalPostMortem is the acceptance scenario end to end at
// the HTTP surface: a victim worker's shipped journal tail survives at
// the coordinator after the worker is gone, a peer completes the
// request, and both the merged NDJSON journal and the assembled Chrome
// trace answer for the job — with the dead node's events present and
// the trace ID spanning multiple nodes.
func TestFleetJournalPostMortem(t *testing.T) {
	srv, ts := newObsFleetServer(t)
	reqID := submitFleet(t, ts, map[string]any{"gate": "xor", "table": true, "shard": 4})
	trace := fleetTrace(t, ts, reqID)

	// The victim's shipper forwarded three events before the kill; its
	// result post never arrives.
	ack := shipBatch(t, ts, obsplane.ShipRequest{Node: "victim", Events: victimEvents(trace, 1, 2, 3)})
	if ack.Accepted != 3 || ack.Duplicates != 0 {
		t.Fatalf("first ship ack = %+v", ack)
	}
	// A retried batch whose ack was lost re-ships overlapping sequence
	// numbers; ingestion is idempotent.
	ack = shipBatch(t, ts, obsplane.ShipRequest{Node: "victim", Events: victimEvents(trace, 2, 3, 4)})
	if ack.Accepted != 1 || ack.Duplicates != 2 {
		t.Fatalf("re-ship ack = %+v", ack)
	}
	// Untraced events are counted, not stored.
	ack = shipBatch(t, ts, obsplane.ShipRequest{Node: "victim",
		Events: []obsplane.ShippedEvent{{Event: journal.Event{Seq: 9, Name: "orphan"}}}})
	if ack.Accepted != 0 || ack.Untraced != 1 {
		t.Fatalf("untraced ack = %+v", ack)
	}

	// A live peer completes the request; the coordinator's own claim and
	// lifecycle events reach the store through the mirror sink.
	startFleetWorker(t, srv, ts, &fleet.Worker{ID: "peer"})
	waitFleetComplete(t, ts, reqID, 15*time.Second)

	// Post-mortem snapshot: the merged multi-node journal, by request ID.
	events := fetchFleetJournal(t, ts, reqID, trace)
	nodes := map[string]bool{}
	lastSeq := map[string]uint64{}
	for _, se := range events {
		if se.Trace != trace {
			t.Fatalf("event on foreign trace: %+v", se)
		}
		if se.Seq <= lastSeq[se.Node] {
			t.Fatalf("per-node seq not monotonic at %+v", se)
		}
		lastSeq[se.Node] = se.Seq
		nodes[se.Node] = true
	}
	if !nodes["victim"] {
		t.Fatalf("dead worker's journal missing from merged tail: %v", nodes)
	}
	if !nodes[obsplane.CoordinatorNode] {
		t.Fatalf("coordinator mirror missing from merged tail: %v", nodes)
	}

	// The same snapshot answers by raw trace ID — the handle that
	// survives a coordinator restart (status map is in-memory).
	if got := fetchFleetJournal(t, ts, trace, trace); len(got) != len(events) {
		t.Fatalf("query by trace ID returned %d events, by request ID %d", len(got), len(events))
	}

	// Assembled Chrome trace: one JSON document naming both nodes.
	resp, raw := getJSON(t, ts.URL+"/v1/fleet/jobs/"+reqID+"/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d %s", resp.StatusCode, raw)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &chrome); err != nil {
		t.Fatalf("chrome trace is not JSON: %v\n%s", err, raw)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("empty chrome trace")
	}
	body := string(raw)
	for _, want := range []string{"victim", obsplane.CoordinatorNode, trace} {
		if !strings.Contains(body, want) {
			t.Errorf("chrome trace missing %q", want)
		}
	}

	// Deep health reports the journal beside the queue.
	resp, raw = getJSON(t, ts.URL+"/v1/healthz?deep=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deep healthz: %d %s", resp.StatusCode, raw)
	}
	var health struct {
		Fleet struct {
			Journal map[string]any `json:"journal"`
		} `json:"fleet"`
	}
	if err := json.Unmarshal(raw, &health); err != nil {
		t.Fatal(err)
	}
	if health.Fleet.Journal == nil {
		t.Fatalf("deep healthz has no fleet.journal section: %s", raw)
	}
	if shipped, _ := health.Fleet.Journal["shipped"].(float64); shipped < 4 {
		t.Fatalf("journal health shipped = %v, want >= 4", health.Fleet.Journal["shipped"])
	}
}

// fetchFleetJournal downloads the ?follow=false NDJSON snapshot and
// parses its lines.
func fetchFleetJournal(t *testing.T, ts *httptest.Server, id, wantTrace string) []obsplane.ShippedEvent {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/fleet/jobs/" + id + "/events?follow=false")
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events snapshot: %d %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get(obsplane.TraceHeader); got != wantTrace {
		t.Fatalf("snapshot %s header = %q, want %q", obsplane.TraceHeader, got, wantTrace)
	}
	var out []obsplane.ShippedEvent
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if line == "" {
			continue
		}
		var se obsplane.ShippedEvent
		if err := json.Unmarshal([]byte(line), &se); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		out = append(out, se)
	}
	if len(out) == 0 {
		t.Fatal("empty journal snapshot")
	}
	return out
}

// TestFleetJournalLiveTail pins the tail seam: a subscriber sees events
// shipped after it connected, and the stream terminates at the
// request-complete lifecycle event.
func TestFleetJournalLiveTail(t *testing.T) {
	_, ts := newObsFleetServer(t)
	reqID := submitFleet(t, ts, map[string]any{"gate": "xor", "cases": [][]bool{{true, false}}})
	trace := fleetTrace(t, ts, reqID)

	resp, err := http.Get(ts.URL + "/v1/fleet/jobs/" + reqID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tail: %d", resp.StatusCode)
	}
	lines := make(chan string, 64)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()

	// Ship one live event, then the terminal lifecycle event.
	shipBatch(t, ts, obsplane.ShipRequest{Node: "w1", Events: victimEvents(trace, 1)})
	shipBatch(t, ts, obsplane.ShipRequest{Node: "w1", Events: []obsplane.ShippedEvent{{
		Trace: trace,
		Event: journal.Event{Seq: 2, TimeNS: time.Now().UnixNano(), Name: "fleet.request",
			Fields: map[string]any{"status": "complete"}},
	}}})

	var sawLive, sawTerminal bool
	deadline := time.After(10 * time.Second)
	for !sawTerminal {
		select {
		case line, open := <-lines:
			if !open {
				if !sawTerminal {
					t.Fatal("tail closed before the terminal event")
				}
				break
			}
			if strings.Contains(line, "engine.eval.start") {
				sawLive = true
			}
			if strings.Contains(line, "fleet.request") && strings.Contains(line, "complete") {
				sawTerminal = true
			}
		case <-deadline:
			t.Fatalf("tail timed out (live=%t terminal=%t)", sawLive, sawTerminal)
		}
	}
	if !sawLive {
		t.Fatal("live-shipped event never reached the tail")
	}
	// The terminal event ends the stream.
	select {
	case _, open := <-lines:
		if open {
			// One more buffered line is possible only if it raced the
			// terminal write; the channel must close right after.
			if _, open := <-lines; open {
				t.Fatal("stream kept flowing past the terminal event")
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not close after the terminal event")
	}
}

// TestFleetClaimAnswersTraceHeader: the claim response carries the
// claimed job's trace in X-Spinwave-Trace.
func TestFleetClaimAnswersTraceHeader(t *testing.T) {
	_, ts := newObsFleetServer(t)
	reqID := submitFleet(t, ts, map[string]any{"gate": "xor", "cases": [][]bool{{true, false}}})
	trace := fleetTrace(t, ts, reqID)

	resp, raw := postJSON(t, ts.URL+"/v1/fleet/claim", map[string]any{"worker": "manual"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("claim: %d %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get(obsplane.TraceHeader); got != trace {
		t.Fatalf("claim %s header = %q, want %q", obsplane.TraceHeader, got, trace)
	}
}

// TestFleetJournalUnknownTrace: the snapshot and trace endpoints answer
// the 404 envelope for traces the store has never seen.
func TestFleetJournalUnknownTrace(t *testing.T) {
	_, ts := newObsFleetServer(t)
	for _, path := range []string{
		"/v1/fleet/jobs/t0123456789abcdef/events?follow=false",
		"/v1/fleet/jobs/t0123456789abcdef/trace",
	} {
		resp, raw := getJSON(t, ts.URL+path)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: %d %s", path, resp.StatusCode, raw)
		}
		if e := decodeEnvelope(t, raw); e.Code != codeNotFound {
			t.Fatalf("%s code = %s", path, e.Code)
		}
	}
}

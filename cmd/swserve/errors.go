package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"spinwave"
)

// Unified error envelope. Every /v1 endpoint answers failures with
//
//	{"error": {"code": "...", "message": "...", "retryable": bool}}
//
// so clients branch on the stable machine-readable code (and the
// retryable hint), never on message text. The mapping from the library's
// sentinel errors to codes lives in classify — one place, used by every
// handler.

// Stable error codes of the v1 API.
const (
	codeBadRequest           = "bad_request"
	codeUnknownGate          = "unknown_gate"
	codeMethodNotAllowed     = "method_not_allowed"
	codeNotFound             = "not_found"
	codeDraining             = "draining"
	codeDeadline             = "deadline"
	codeCancelled            = "cancelled"
	codeSurrogateUnavailable = "surrogate_unavailable"
	codeHealthAbort          = "health_abort"
	codeStaleClaim           = "stale_claim"
	codeInternal             = "internal"
)

// apiError is the envelope payload.
type apiError struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
}

// errorEnvelope is the failure response body of every /v1 endpoint.
type errorEnvelope struct {
	Error apiError `json:"error"`
}

// classify maps an evaluation or request error onto the envelope code,
// HTTP status and retryable hint via the package sentinels.
func classify(err error) (status int, code string, retryable bool) {
	switch {
	case errors.Is(err, spinwave.ErrUnknownGate):
		return http.StatusBadRequest, codeUnknownGate, false
	case errors.Is(err, spinwave.ErrBadInputCount),
		errors.Is(err, spinwave.ErrUnknownComponent):
		return http.StatusBadRequest, codeBadRequest, false
	case errors.Is(err, spinwave.ErrSurrogateUnavailable):
		// Retryable: a model may be admitted (or re-admitted) later.
		return http.StatusServiceUnavailable, codeSurrogateUnavailable, true
	case errors.Is(err, spinwave.ErrHealthAbort):
		return http.StatusInternalServerError, codeHealthAbort, false
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, codeDeadline, true
	case errors.Is(err, context.Canceled):
		return 499, codeCancelled, false // client closed request
	default:
		return http.StatusInternalServerError, codeInternal, false
	}
}

// fail answers with the envelope, deriving status/code/retryable from
// the error's sentinel chain.
func (s *server) fail(w http.ResponseWriter, err error) {
	status, code, retryable := classify(err)
	s.failAs(w, status, code, retryable, err.Error())
}

// badRequest answers a 400 with code bad_request.
func (s *server) badRequest(w http.ResponseWriter, err error) {
	s.failAs(w, http.StatusBadRequest, codeBadRequest, false, err.Error())
}

// failAs writes the envelope verbatim; use fail/badRequest unless the
// status or code cannot be derived from an error value.
func (s *server) failAs(w http.ResponseWriter, status int, code string, retryable bool, message string) {
	s.errors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorEnvelope{Error: apiError{ //nolint:errcheck
		Code: code, Message: message, Retryable: retryable,
	}})
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"spinwave"
)

func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	srv := newServer(spinwave.NewEngine(spinwave.WithEngineWorkers(4)), 30*time.Second)
	t.Cleanup(srv.close)
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestEvalSingleAndBatch(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/eval", map[string]any{
		"gate":   "xor",
		"inputs": []bool{true, false},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eval status %d: %s", resp.StatusCode, body)
	}
	var single evalResponse
	if err := json.Unmarshal(body, &single); err != nil {
		t.Fatal(err)
	}
	if len(single.Results) != 1 || len(single.Results[0].Outputs) == 0 {
		t.Fatalf("unexpected single-eval response: %s", body)
	}

	resp, body = postJSON(t, ts.URL+"/v1/eval", map[string]any{
		"gate":  "xor",
		"cases": [][]bool{{false, false}, {false, true}, {true, false}, {true, true}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var batch evalResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 4 {
		t.Fatalf("batch returned %d results, want 4", len(batch.Results))
	}
	for i, r := range batch.Results {
		if len(r.Outputs) == 0 {
			t.Fatalf("batch case %d has no outputs", i)
		}
	}
}

func TestTableMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/table", map[string]any{"gate": "xor"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("table status %d: %s", resp.StatusCode, body)
	}
	var got spinwave.TruthTable
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	b, err := spinwave.NewBehavioral(spinwave.XOR, spinwave.PaperSpec(), spinwave.FeCoB())
	if err != nil {
		t.Fatal(err)
	}
	want, err := spinwave.XORTruthTable(b, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cases) != len(want.Cases) {
		t.Fatalf("served table has %d cases, library %d", len(got.Cases), len(want.Cases))
	}
	for i := range got.Cases {
		g, w := got.Cases[i], want.Cases[i]
		if g.Correct != w.Correct || g.Expected != w.Expected {
			t.Fatalf("case %d: served %+v, library %+v", i, g, w)
		}
		for j := range g.Outputs {
			if diff := g.Outputs[j].Normalized - w.Outputs[j].Normalized; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("case %d output %d: served %.15f, library %.15f",
					i, j, g.Outputs[j].Normalized, w.Outputs[j].Normalized)
			}
		}
	}
	if !got.AllCorrect() {
		t.Fatal("served XOR table has incorrect cases")
	}
}

func TestRepeatedRequestsHitCache(t *testing.T) {
	srv, ts := newTestServer(t)
	req := map[string]any{"gate": "maj3"}
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/table", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d status %d: %s", i, resp.StatusCode, body)
		}
	}
	stats := srv.eng.Stats()
	if stats.CacheHits == 0 {
		t.Fatalf("no cache hits after repeated identical tables: %+v", stats)
	}
	// Three identical MAJ3 tables = 24 case evals; only the first 8 miss.
	if stats.Evals > 8 {
		t.Fatalf("repeated tables re-ran evaluations: %d evals, want <= 8", stats.Evals)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		name string
		req  map[string]any
		code int
	}{
		{"unknown gate", map[string]any{"gate": "nonsense"}, http.StatusBadRequest},
		{"bad input count", map[string]any{"gate": "xor", "inputs": []bool{true}}, http.StatusBadRequest},
		{"unknown backend", map[string]any{"gate": "xor", "backend": "quantum"}, http.StatusBadRequest},
		{"unknown field", map[string]any{"gate": "xor", "bogus": 1}, http.StatusBadRequest},
	} {
		url := ts.URL + "/v1/table"
		if _, hasInputs := tc.req["inputs"]; hasInputs {
			url = ts.URL + "/v1/eval"
		}
		resp, body := postJSON(t, url, tc.req)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.code, body)
		}
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	srv := newServer(spinwave.NewEngine(), 30*time.Second)
	httpSrv := httptest.NewServer(srv.routes())
	done := make(chan error, 1)
	go func() {
		resp, err := http.Post(httpSrv.URL+"/v1/table", "application/json",
			bytes.NewReader([]byte(`{"gate":"maj3"}`)))
		if err != nil {
			done <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			done <- fmt.Errorf("status %d", resp.StatusCode)
			return
		}
		done <- nil
	}()
	// Let the request start, then close the listener; the in-flight
	// request must still complete successfully.
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Config.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("in-flight request failed across shutdown: %v", err)
	}
}

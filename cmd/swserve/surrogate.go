package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"sync"

	"spinwave"
	"spinwave/internal/obs"
)

// Surrogate serving state. At startup (-surrogate xor,maj3) the server
// builds one superposition surrogate per listed gate from the
// -surrogate-backend solver, runs each through the engine's admission
// gate, and records the verdicts in this ledger. The ledger is what
// GET /v1/healthz?deep=1 and GET /v1/slo expose: any rejected, failed
// or stale (dropped from the engine after admission) entry degrades
// deep health, because "surrogate"-mode traffic the operator expects to
// serve would 503.

// Surrogate admission states recorded in the ledger.
const (
	surrogateAdmitted = "admitted"
	surrogateRejected = "rejected"
	surrogateError    = "error"
	surrogateStale    = "stale"
)

// surrogateEntry is one gate's surrogate admission outcome.
type surrogateEntry struct {
	Gate        string  `json:"gate"`
	Backend     string  `json:"backend"`
	Fingerprint string  `json:"fingerprint,omitempty"`
	State       string  `json:"state"` // admitted, rejected, error, stale
	Error       string  `json:"error,omitempty"`
	BuildSecs   float64 `json:"build_seconds,omitempty"`
}

// surrogateLedger tracks the admission outcome of every startup
// surrogate; safe for concurrent use.
type surrogateLedger struct {
	mu      sync.Mutex
	entries []surrogateEntry
}

var surrogateGaugesOnce sync.Once

// initSurrogates builds and admission-gates one surrogate per gate in
// the comma-separated list, from the named backend. Every verdict is
// recorded in the ledger (and journaled by the engine); the returned
// error summarizes any gate whose surrogate is not serving.
func (s *server) initSurrogates(ctx context.Context, gateList, backendName string) error {
	s.registerSurrogateGauges()
	var failed []string
	for _, name := range strings.Split(gateList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		entry := s.buildSurrogate(ctx, name, backendName)
		s.surrogate.mu.Lock()
		s.surrogate.entries = append(s.surrogate.entries, entry)
		s.surrogate.mu.Unlock()
		if entry.State == surrogateAdmitted {
			log.Printf("surrogate %s (%s): admitted in %.1fs", entry.Gate, entry.Backend, entry.BuildSecs)
		} else {
			log.Printf("surrogate %s (%s): %s: %s", entry.Gate, entry.Backend, entry.State, entry.Error)
			failed = append(failed, name)
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("surrogate admission failed for %s", strings.Join(failed, ", "))
	}
	return nil
}

// buildSurrogate measures, assembles and admission-gates one gate's
// surrogate, returning the ledger entry either way.
func (s *server) buildSurrogate(ctx context.Context, gateName, backendName string) surrogateEntry {
	entry := surrogateEntry{Gate: gateName, Backend: backendName}
	b, err := buildBackend(backendRequest{Gate: gateName, Backend: backendName})
	if err != nil {
		entry.State = surrogateError
		entry.Error = err.Error()
		return entry
	}
	src, ok := b.(spinwave.SurrogateSource)
	if !ok {
		entry.State = surrogateError
		entry.Error = fmt.Sprintf("backend %s cannot run single-port transients", b.Name())
		return entry
	}
	model, err := spinwave.BuildSurrogate(ctx, src)
	if err != nil {
		entry.State = surrogateError
		entry.Error = err.Error()
		return entry
	}
	entry.Fingerprint = model.BaseFingerprint()
	entry.BuildSecs = model.BuildSeconds()
	if err := s.eng.AdmitSurrogate(model); err != nil {
		entry.State = surrogateRejected
		entry.Error = err.Error()
		return entry
	}
	entry.State = surrogateAdmitted
	return entry
}

// surrogateSnapshot returns the ledger with staleness re-checked
// against the engine: an entry admitted at startup whose model has
// since been dropped reads as stale.
func (s *server) surrogateSnapshot() []surrogateEntry {
	s.surrogate.mu.Lock()
	defer s.surrogate.mu.Unlock()
	out := make([]surrogateEntry, len(s.surrogate.entries))
	for i, e := range s.surrogate.entries {
		if e.State == surrogateAdmitted {
			if _, ok := s.eng.SurrogateFor(e.Fingerprint); !ok {
				e.State = surrogateStale
				e.Error = "admitted model no longer registered with the engine"
			}
		}
		out[i] = e
	}
	return out
}

// surrogateHealthy reports whether every ledger entry is serving; an
// empty ledger (no -surrogate flag) is healthy.
func (s *server) surrogateHealthy() bool {
	for _, e := range s.surrogateSnapshot() {
		if e.State != surrogateAdmitted {
			return false
		}
	}
	return true
}

// registerSurrogateGauges exposes the ledger in /metrics alongside the
// SLO burn rates: counts of serving and degraded surrogate models.
func (s *server) registerSurrogateGauges() {
	surrogateGaugesOnce.Do(func() {
		r := obs.Default()
		r.Describe("swserve_surrogate_models", "startup surrogate models by serving state")
		count := func(healthy bool) float64 {
			n := 0.0
			for _, e := range s.surrogateSnapshot() {
				if (e.State == surrogateAdmitted) == healthy {
					n++
				}
			}
			return n
		}
		r.GaugeFunc("swserve_surrogate_models", func() float64 { return count(true) },
			obs.L("state", "serving"))
		r.GaugeFunc("swserve_surrogate_models", func() float64 { return count(false) },
			obs.L("state", "degraded"))
	})
}

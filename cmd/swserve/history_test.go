package main

import (
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"spinwave/internal/fleet"
	"spinwave/internal/journal"
	"spinwave/internal/obsplane"
	"spinwave/internal/runhistory"
)

// historyPage is the GET /v1/history response shape the tests decode.
type historyPage struct {
	Records []runhistory.Record `json:"records"`
	Count   int                 `json:"count"`
	Total   int                 `json:"total"`
}

func getHistory(t *testing.T, url string) historyPage {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var page historyPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	return page
}

// TestHistoryIndexesServedWork: served evals and tables land in the
// catalog and come back through /v1/history with working filters.
func TestHistoryIndexesServedWork(t *testing.T) {
	srv, _ := newTestServer(t)
	if err := srv.initHistory(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	ts := newHTTPTestServer(t, srv)

	resp, body := postJSON(t, ts.URL+"/v1/eval", map[string]any{
		"gate": "xor", "cases": [][]bool{{true, false}, {false, false}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eval status %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/table", map[string]any{"gate": "maj3"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("table status %d: %s", resp.StatusCode, body)
	}

	page := getHistory(t, ts.URL+"/v1/history")
	if page.Count != 3 || page.Total != 3 {
		t.Fatalf("history count=%d total=%d, want 3/3", page.Count, page.Total)
	}
	kinds := map[string]int{}
	for _, r := range page.Records {
		kinds[r.Kind]++
		if r.ID == "" || r.IndexedNS == 0 {
			t.Fatalf("record missing id or indexed_ns: %+v", r)
		}
	}
	if kinds["eval"] != 2 || kinds["table"] != 1 {
		t.Fatalf("kinds = %v, want 2 eval + 1 table", kinds)
	}

	// Filters: by gate, by kind, and the bit label of the eval case.
	if p := getHistory(t, ts.URL+"/v1/history?gate=xor"); p.Count != 2 {
		t.Fatalf("gate=xor count = %d, want 2", p.Count)
	}
	if p := getHistory(t, ts.URL+"/v1/history?kind=table"); p.Count != 1 || p.Records[0].Gate != "maj3" {
		t.Fatalf("kind=table page = %+v", p)
	}
	if p := getHistory(t, ts.URL+"/v1/history?gate=nope"); p.Count != 0 {
		t.Fatalf("gate=nope count = %d, want 0", p.Count)
	}
	if p := getHistory(t, ts.URL+"/v1/history?limit=1"); p.Count != 1 || p.Total != 3 {
		t.Fatalf("limit=1 page count=%d total=%d", p.Count, p.Total)
	}

	// Bad query values answer the envelope 400.
	for _, q := range []string{"?limit=x", "?since=yesterday"} {
		resp, err := http.Get(ts.URL + "/v1/history" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /v1/history%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestHistoryFleetRecordFiles: a completed fleet request's record points
// at its trace file and classified run artifacts.
func TestHistoryFleetRecordFiles(t *testing.T) {
	srv, _ := newTestServer(t)
	if err := srv.initHistory(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if err := srv.initFleetJournal(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if err := srv.initArtifacts(t.TempDir()); err != nil {
		t.Fatal(err)
	}

	trace, run := "tr-hist-1", "run-hist-1"
	if _, err := srv.fjournal.Append(trace, "w1", []journal.Event{
		{Seq: 1, Name: "fleet.job", TimeNS: time.Now().UnixNano()},
	}); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string]string{
		"ck-000042.json": `{"step":42}`,
		"ck-000042.ovf":  "OVF",
		"probes-s00.csv": "t,mz\n0,1\n",
		"verdict.txt":    "ok",
	} {
		if _, err := srv.artifacts.Put(run, name, strings.NewReader(data)); err != nil {
			t.Fatal(err)
		}
	}

	srv.indexFleetRequest(fleet.CompletedRequest{
		ID: "req-1", Trace: trace, Run: run, Gate: "xor", Backend: "micromag",
		Fingerprint: "fp", Cases: 1, SubmittedNS: 100, CompletedNS: 250, Tier: "micromag",
	})

	recs, err := srv.history.Query(runhistory.Filter{Kind: "fleet"})
	if err != nil || len(recs) != 1 {
		t.Fatalf("fleet records = %d (%v), want 1", len(recs), err)
	}
	rec := recs[0]
	if rec.ID != "req-1" || rec.Trace != trace || rec.WallNS != 150 || rec.Tier != "micromag" {
		t.Fatalf("record = %+v", rec)
	}
	classes := map[runhistory.Class]int{}
	for _, f := range rec.Files {
		if f.Size <= 0 {
			t.Fatalf("file ref without size: %+v", f)
		}
		classes[f.Class]++
	}
	// One trace ref, two checkpoint refs (manifest + OVF), one probe
	// CSV, one plain artifact.
	want := map[runhistory.Class]int{
		runhistory.ClassTrace: 1, runhistory.ClassCheckpoint: 2,
		runhistory.ClassProbeCSV: 1, runhistory.ClassArtifact: 1,
	}
	for c, n := range want {
		if classes[c] != n {
			t.Fatalf("classes = %v, want %v", classes, want)
		}
	}
}

// TestHistoryHealthSection: deep health reports the catalog, and an
// unwritable catalog directory flips the instance to 503.
func TestHistoryHealthSection(t *testing.T) {
	srv, _ := newTestServer(t)
	dir := t.TempDir()
	if err := srv.initHistory(dir); err != nil {
		t.Fatal(err)
	}
	srv.initRetention(runhistory.Policy{HistoryMaxRecords: 10})
	ts := newHTTPTestServer(t, srv)

	resp, err := http.Get(ts.URL + "/v1/healthz?deep=1")
	if err != nil {
		t.Fatal(err)
	}
	var deep map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&deep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy deep status %d: %v", resp.StatusCode, deep)
	}
	section, ok := deep["history"].(map[string]any)
	if !ok {
		t.Fatalf("deep health missing history section: %v", deep)
	}
	if _, ok := section["retention"]; !ok {
		t.Fatalf("history section missing retention: %v", section)
	}

	// Catalog directory gone: the writability probe fails and the
	// instance stops being ready.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/v1/healthz?deep=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unwritable catalog: status %d, want 503", resp.StatusCode)
	}
}

// TestFleetTerminalEventRemoved: the synthetic retention.removed event
// terminates a fleet tail like a request-complete event does.
func TestFleetTerminalEventRemoved(t *testing.T) {
	if !fleetTerminalEvent(obsplane.ShippedEvent{Event: journal.Event{Name: obsplane.RemovedEventName}}) {
		t.Fatal("retention.removed not terminal")
	}
	if fleetTerminalEvent(obsplane.ShippedEvent{Event: journal.Event{Name: "fleet.job"}}) {
		t.Fatal("fleet.job wrongly terminal")
	}
}

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spinwave"
	"spinwave/internal/fleet"
	"spinwave/internal/fleet/faults"
	"spinwave/internal/journal"
)

// newFleetServer is newTestServer plus a mounted fleet coordinator over
// a temp queue directory.
func newFleetServer(t *testing.T, opts ...fleet.QueueOption) (*server, *httptest.Server) {
	t.Helper()
	srv := newServer(spinwave.NewEngine(spinwave.WithEngineWorkers(4)), 30*time.Second)
	t.Cleanup(srv.close)
	if err := srv.initFleet(t.TempDir(), 4, opts...); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return srv, ts
}

// testEvaluator evaluates fleet jobs through the server's engine with
// the same backend vocabulary as cmd/swworker.
func testEvaluator(eng *spinwave.Engine) fleet.Evaluator {
	return fleet.EvaluatorFunc(func(ctx context.Context, spec fleet.JobSpec, cases [][]bool) (string, []fleet.CaseOutcome, error) {
		var mode spinwave.EvalMode
		switch strings.ToLower(spec.Mode) {
		case "", "direct":
			mode = spinwave.EvalModeDirect
		case "auto":
			mode = spinwave.EvalModeAuto
		case "surrogate":
			mode = spinwave.EvalModeSurrogateOnly
		default:
			return "", nil, fmt.Errorf("unknown mode %q", spec.Mode)
		}
		b, err := buildBackend(backendRequest{
			Gate: spec.Gate, Backend: spec.Backend, Spec: spec.Spec, Material: spec.Material,
		})
		if err != nil {
			return "", nil, err
		}
		out := make([]fleet.CaseOutcome, len(cases))
		var fp string
		for i, c := range cases {
			res, err := eng.EvalTiered(ctx, b, c, mode)
			if err != nil {
				return "", nil, err
			}
			out[i] = fleet.CaseOutcome{Inputs: c, Outputs: res.Readouts, Source: string(res.Source)}
			fp = res.Fingerprint
		}
		return fp, out, nil
	})
}

// startFleetWorker runs an in-process fleet worker against the test
// server until the test ends (or stop is called).
func startFleetWorker(t *testing.T, srv *server, ts *httptest.Server, w *fleet.Worker) (stop func()) {
	t.Helper()
	w.BaseURL = ts.URL
	if w.Eval == nil {
		w.Eval = testEvaluator(srv.eng)
	}
	if w.Poll <= 0 {
		w.Poll = 5 * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx) //nolint:errcheck
	}()
	stop = func() { cancel(); <-done }
	t.Cleanup(stop)
	return stop
}

// submitFleet posts a fleet submission and returns the request ID.
func submitFleet(t *testing.T, ts *httptest.Server, body map[string]any) string {
	t.Helper()
	resp, raw := postJSON(t, ts.URL+"/v1/fleet/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, raw)
	}
	var st fleetStatusResponse
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatalf("submission has no request ID: %s", raw)
	}
	return st.ID
}

// waitFleetComplete polls the request until it completes (fatal on
// failed or timeout) and returns the final status response.
func waitFleetComplete(t *testing.T, ts *httptest.Server, reqID string, timeout time.Duration) fleetStatusResponse {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, raw := getJSON(t, ts.URL+"/v1/fleet/jobs/"+reqID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, raw)
		}
		var st fleetStatusResponse
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case fleet.RequestComplete:
			return st
		case fleet.RequestFailed:
			t.Fatalf("request failed: %s", raw)
		}
		if time.Now().After(deadline) {
			t.Fatalf("request %s not complete after %v: %s", reqID, timeout, raw)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp, readAll(t, resp)
}

// TestFleetE2ETables is the end-to-end integration test of the issue:
// a coordinator and three in-process workers evaluate the full XOR and
// MAJ3 truth tables over HTTP; the merged, fleet-assembled tables must
// land in the same golden bands as TestPaperTables (Tables I/II).
func TestFleetE2ETables(t *testing.T) {
	srv, ts := newFleetServer(t)
	for i := 0; i < 3; i++ {
		startFleetWorker(t, srv, ts, &fleet.Worker{ID: fmt.Sprintf("e2e-w%d", i)})
	}

	// XOR sharded one case per job, MAJ3 two per job: both fan out
	// across the worker pool.
	xorID := submitFleet(t, ts, map[string]any{"gate": "xor", "table": true, "shard": 1})
	majID := submitFleet(t, ts, map[string]any{"gate": "maj3", "table": true, "shard": 2})

	xorSt := waitFleetComplete(t, ts, xorID, 15*time.Second)
	majSt := waitFleetComplete(t, ts, majID, 15*time.Second)

	if xorSt.Table == nil || majSt.Table == nil {
		t.Fatal("completed table request without a decoded table")
	}
	checkFleetTableII(t, xorSt.Table)
	checkFleetTableI(t, majSt.Table)

	// All three workers registered and are visible.
	resp, raw := postJSON(t, ts.URL+"/v1/fleet/jobs", map[string]any{"gate": "xor", "cases": [][]bool{{true, false}}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("follow-up submit: %d %s", resp.StatusCode, raw)
	}
	wresp, err := http.Get(ts.URL + "/v1/fleet/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	var workers struct {
		Workers  []fleet.WorkerStatus `json:"workers"`
		Snapshot fleet.Snapshot       `json:"snapshot"`
	}
	if err := json.NewDecoder(wresp.Body).Decode(&workers); err != nil {
		t.Fatal(err)
	}
	if len(workers.Workers) != 3 {
		t.Fatalf("workers listed = %d, want 3", len(workers.Workers))
	}
	if workers.Snapshot.DuplicateResults != 0 {
		t.Fatalf("clean e2e run counted %d duplicate results", workers.Snapshot.DuplicateResults)
	}
}

// TestFleetWorkerKilledMidJob is the headline failure injection: a
// worker dies after claiming a job (its result post never arrives), the
// frozen heartbeat lets the lease expire, the job requeues, and a peer
// completes the request — zero case results lost, zero double-applied.
func TestFleetWorkerKilledMidJob(t *testing.T) {
	clock := faults.NewClock(time.Now())
	srv, ts := newFleetServer(t, fleet.WithClock(clock), fleet.WithLease(10*time.Second))

	ring := journal.NewRingSink(256)
	detach := journal.Default().Attach(ring)
	defer detach()

	reqID := submitFleet(t, ts, map[string]any{"gate": "xor", "table": true, "shard": 4})

	// Worker 1 kills itself the moment it claims the job — the claim is
	// registered on the coordinator, but no result (and no further
	// heartbeat) ever arrives, exactly like a SIGKILL mid-evaluation.
	// OnClaim cancels the worker's own run context (it must not wait for
	// Run to return — OnClaim is called from inside it).
	w1ctx, w1cancel := context.WithCancel(context.Background())
	w1 := &fleet.Worker{
		ID: "victim", BaseURL: ts.URL, Poll: 5 * time.Millisecond,
		Eval:    testEvaluator(srv.eng),
		OnClaim: func(*fleet.Job) { w1cancel() },
	}
	w1done := make(chan struct{})
	go func() { defer close(w1done); w1.Run(w1ctx) }() //nolint:errcheck
	t.Cleanup(func() { w1cancel(); <-w1done })

	waitFor(t, 5*time.Second, func() bool {
		return srv.fleet.Queue().Stats().Claimed == 1
	}, "worker 1 never claimed the job")

	// The clock is frozen, so nothing expires until we say so: the job
	// stays claimed by the dead worker.
	if requeued := srv.fleet.Queue().Sweep(); len(requeued) != 0 {
		t.Fatalf("lease expired early: %v", requeued)
	}
	clock.Advance(11 * time.Second)
	requeued := srv.fleet.Queue().Sweep()
	if len(requeued) != 1 {
		t.Fatalf("Sweep requeued %v, want exactly the killed worker's job", requeued)
	}

	// The peer picks it up and completes the request.
	startFleetWorker(t, srv, ts, &fleet.Worker{ID: "peer"})
	st := waitFleetComplete(t, ts, reqID, 15*time.Second)

	if st.CasesDone != st.CasesTotal || len(st.Results) != st.CasesTotal {
		t.Fatalf("cases lost: %d/%d done, %d results", st.CasesDone, st.CasesTotal, len(st.Results))
	}
	if len(st.Jobs) != 1 || st.Jobs[0].Attempts != 2 || st.Jobs[0].Worker != "peer" {
		t.Fatalf("job after requeue = %+v", st.Jobs)
	}
	if st.Table == nil {
		t.Fatal("no decoded table after peer completion")
	}
	checkFleetTableII(t, st.Table)
	if dup := srv.fleet.Snapshot().DuplicateResults; dup != 0 {
		t.Fatalf("%d case results double-applied", dup)
	}

	// The recovery is journaled: a fleet.claim for each attempt and a
	// fleet.requeue for the expiry.
	var claims, requeues int
	for _, e := range ring.Events() {
		switch e.Name {
		case "fleet.claim":
			claims++
		case "fleet.requeue":
			requeues++
			if e.Fields["worker"] != "victim" || e.Fields["reason"] != "lease_expired" {
				t.Fatalf("requeue event fields = %+v", e.Fields)
			}
		}
	}
	if claims != 2 || requeues != 1 {
		t.Fatalf("journal saw %d claims and %d requeues, want 2 and 1", claims, requeues)
	}
}

// TestFleetDuplicateResultPost proves idempotent ingestion at the HTTP
// surface: the same result posted twice applies once.
func TestFleetDuplicateResultPost(t *testing.T) {
	srv, ts := newFleetServer(t)
	reqID := submitFleet(t, ts, map[string]any{"gate": "xor", "table": true, "shard": 4})

	// Claim and evaluate by hand.
	resp, raw := postJSON(t, ts.URL+"/v1/fleet/register", map[string]any{"worker": "manual"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d %s", resp.StatusCode, raw)
	}
	resp, raw = postJSON(t, ts.URL+"/v1/fleet/claim", map[string]any{"worker": "manual"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("claim: %d %s", resp.StatusCode, raw)
	}
	var job fleet.Job
	if err := json.Unmarshal(raw, &job); err != nil {
		t.Fatal(err)
	}
	fp, results, err := testEvaluator(srv.eng).Evaluate(context.Background(), job.Spec, job.Cases)
	if err != nil {
		t.Fatal(err)
	}
	post := fleet.ResultRequest{Worker: "manual", Job: job.ID, Fingerprint: fp, Results: results}

	var first, second fleet.ResultResponse
	resp, raw = postJSON(t, ts.URL+"/v1/fleet/results", post)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first post: %d %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &first); err != nil {
		t.Fatal(err)
	}
	resp, raw = postJSON(t, ts.URL+"/v1/fleet/results", post)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate post: %d %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &second); err != nil {
		t.Fatal(err)
	}
	if !first.Applied || second.Applied {
		t.Fatalf("applied flags = %v, %v; want true, false", first.Applied, second.Applied)
	}
	if second.Status != fleet.JobDone {
		t.Fatalf("status after duplicate = %s", second.Status)
	}

	st := waitFleetComplete(t, ts, reqID, 5*time.Second)
	if len(st.Results) != st.CasesTotal {
		t.Fatalf("duplicate produced %d results for %d cases", len(st.Results), st.CasesTotal)
	}
	if dup := srv.fleet.Snapshot().DuplicateResults; dup == 0 {
		t.Fatal("duplicate post not counted")
	}
}

// TestFleetDroppedResultResponseDeduped injects the retry-storm fault:
// the transport delivers the worker's first result post but drops the
// response, so the worker retries — and the retry must be deduplicated,
// not double-applied.
func TestFleetDroppedResultResponseDeduped(t *testing.T) {
	srv, ts := newFleetServer(t)
	tr := &faults.Transport{}
	rule := tr.Add(&faults.Rule{PathContains: "/v1/fleet/results", Count: 1, Drop: true})
	startFleetWorker(t, srv, ts, &fleet.Worker{
		ID:     "flaky-net",
		Client: &http.Client{Transport: tr},
	})

	reqID := submitFleet(t, ts, map[string]any{"gate": "xor", "table": true, "shard": 4})
	st := waitFleetComplete(t, ts, reqID, 15*time.Second)

	if rule.Fired() != 1 {
		t.Fatalf("drop rule fired %d times, want 1", rule.Fired())
	}
	if len(st.Results) != st.CasesTotal {
		t.Fatalf("%d results for %d cases", len(st.Results), st.CasesTotal)
	}
	if dup := srv.fleet.Snapshot().DuplicateResults; dup == 0 {
		t.Fatal("retried post after a dropped response was not counted as a duplicate")
	}
	if st.Table == nil {
		t.Fatal("no decoded table")
	}
	checkFleetTableII(t, st.Table)
}

// TestFleetEnvelopeAndValidation pins the error surface: unknown
// request IDs answer the 404 envelope, bad submissions the 400 family,
// and a foreign heartbeat the stale-claim 409.
func TestFleetEnvelopeAndValidation(t *testing.T) {
	_, ts := newFleetServer(t)

	resp, err := http.Get(ts.URL + "/v1/fleet/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown request: %d %s", resp.StatusCode, raw)
	}
	if e := decodeEnvelope(t, raw); e.Code != codeNotFound {
		t.Fatalf("code = %s, want %s", e.Code, codeNotFound)
	}

	resp2, raw2 := postJSON(t, ts.URL+"/v1/fleet/jobs", map[string]any{"gate": "frob", "table": true})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad gate: %d %s", resp2.StatusCode, raw2)
	}
	if e := decodeEnvelope(t, raw2); e.Code != codeUnknownGate {
		t.Fatalf("code = %s, want %s", e.Code, codeUnknownGate)
	}

	resp2, raw2 = postJSON(t, ts.URL+"/v1/fleet/jobs", map[string]any{"gate": "xor"})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty submission: %d %s", resp2.StatusCode, raw2)
	}

	// A heartbeat for a job the worker does not hold answers 409.
	reqID := submitFleet(t, ts, map[string]any{"gate": "xor", "cases": [][]bool{{true, false}}})
	_ = reqID
	resp2, raw2 = postJSON(t, ts.URL+"/v1/fleet/claim", map[string]any{"worker": "a"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("claim: %d %s", resp2.StatusCode, raw2)
	}
	var job fleet.Job
	if err := json.Unmarshal(raw2, &job); err != nil {
		t.Fatal(err)
	}
	resp2, raw2 = postJSON(t, ts.URL+"/v1/fleet/heartbeat", map[string]any{"worker": "b", "job": job.ID})
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("foreign heartbeat: %d %s", resp2.StatusCode, raw2)
	}
	if e := decodeEnvelope(t, raw2); e.Code != codeStaleClaim {
		t.Fatalf("code = %s, want %s", e.Code, codeStaleClaim)
	}
}

// TestFleetHealthAndSLOSurface verifies the fleet sections appear in
// deep healthz and /v1/slo when the coordinator is mounted.
func TestFleetHealthAndSLOSurface(t *testing.T) {
	_, ts := newFleetServer(t)
	submitFleet(t, ts, map[string]any{"gate": "xor", "cases": [][]bool{{true, false}}})

	resp, err := http.Get(ts.URL + "/v1/healthz?deep=1")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	fleetSec, ok := health["fleet"].(map[string]any)
	if !ok {
		t.Fatalf("deep healthz has no fleet section: %v", health)
	}
	if _, ok := fleetSec["queue"]; !ok {
		t.Fatalf("fleet health section missing queue stats: %v", fleetSec)
	}

	resp, err = http.Get(ts.URL + "/v1/slo")
	if err != nil {
		t.Fatal(err)
	}
	var slo struct {
		Fleet *fleet.Snapshot `json:"fleet"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&slo); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if slo.Fleet == nil || slo.Fleet.Queue.Pending != 1 {
		t.Fatalf("slo fleet snapshot = %+v", slo.Fleet)
	}
}

// waitFor polls cond until true or the timeout fails the test.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf []byte
	b := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(b)
		buf = append(buf, b[:n]...)
		if err != nil {
			return buf
		}
	}
}

// checkFleetTableI mirrors the TestPaperTables Table I golden bands
// (golden_test.go) for the fleet-assembled majority table.
func checkFleetTableI(t *testing.T, tt *spinwave.TruthTable) {
	t.Helper()
	if len(tt.Cases) != 8 {
		t.Fatalf("Table I has %d cases, want 8", len(tt.Cases))
	}
	if !tt.AllCorrect() {
		t.Error("fleet Table I decodes incorrectly")
	}
	if m := tt.FanOutMatched(); m > 0.01 {
		t.Errorf("fan-out mismatch |O1-O2| = %.4f, want <= 0.01", m)
	}
	refPhase := tt.Cases[0].Outputs[0].Phase
	for _, c := range tt.Cases {
		ones := 0
		for _, in := range c.Inputs {
			if in {
				ones++
			}
		}
		unanimous := ones == 0 || ones == len(c.Inputs)
		wantLogic := ones*2 > len(c.Inputs)
		for _, o := range c.Outputs {
			if unanimous {
				if d := math.Abs(o.Normalized - 1); d > 0.1 {
					t.Errorf("case %v %s: unanimous row normalized %.3f, want 1±0.1", c.Inputs, o.Name, o.Normalized)
				}
			} else if o.Normalized < 0.02 || o.Normalized > 0.5 {
				t.Errorf("case %v %s: mixed row normalized %.3f, want [0.02, 0.5]", c.Inputs, o.Name, o.Normalized)
			}
			want := refPhase
			if wantLogic {
				want += math.Pi
			}
			if d := math.Abs(wrapTestPhase(o.Phase - want)); d > 0.2 {
				t.Errorf("case %v %s: phase %.3f rad is %.3f from the expected boundary", c.Inputs, o.Name, o.Phase, d)
			}
			if o.Logic != wantLogic {
				t.Errorf("case %v %s: decoded %v, want %v", c.Inputs, o.Name, o.Logic, wantLogic)
			}
		}
	}
}

// checkFleetTableII mirrors the TestPaperTables Table II golden bands
// for the fleet-assembled XOR table.
func checkFleetTableII(t *testing.T, tt *spinwave.TruthTable) {
	t.Helper()
	if len(tt.Cases) != 4 {
		t.Fatalf("Table II has %d cases, want 4", len(tt.Cases))
	}
	if !tt.AllCorrect() {
		t.Error("fleet Table II decodes incorrectly")
	}
	if m := tt.FanOutMatched(); m > 0.01 {
		t.Errorf("fan-out mismatch |O1-O2| = %.4f, want <= 0.01", m)
	}
	for _, c := range tt.Cases {
		destructive := c.Inputs[0] != c.Inputs[1]
		for _, o := range c.Outputs {
			if destructive {
				if o.Normalized > 0.1 {
					t.Errorf("case %v %s: destructive row normalized %.3f, want <= 0.1", c.Inputs, o.Name, o.Normalized)
				}
			} else if d := math.Abs(o.Normalized - 1); d > 0.1 {
				t.Errorf("case %v %s: constructive row normalized %.3f, want 1±0.1", c.Inputs, o.Name, o.Normalized)
			}
			if o.Logic != destructive {
				t.Errorf("case %v %s: decoded %v, want %v", c.Inputs, o.Name, o.Logic, destructive)
			}
		}
	}
}

// wrapTestPhase maps an angle to (-π, π].
func wrapTestPhase(p float64) float64 {
	for p > math.Pi {
		p -= 2 * math.Pi
	}
	for p <= -math.Pi {
		p += 2 * math.Pi
	}
	return p
}

package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"spinwave"
)

// admitBehavioralSurrogate builds a surrogate from the behavioral
// backend the server's default request resolution produces for gate and
// admits it into the server's engine, so surrogate/auto-mode requests
// naming {gate, backend: behavioral} match its base fingerprint.
func admitBehavioralSurrogate(t *testing.T, srv *server, gate string) *spinwave.SurrogateModel {
	t.Helper()
	b, err := buildBackend(backendRequest{Gate: gate, Backend: "behavioral"})
	if err != nil {
		t.Fatal(err)
	}
	src, ok := b.(spinwave.SurrogateSource)
	if !ok {
		t.Fatalf("behavioral backend is not a SurrogateSource")
	}
	model, err := spinwave.BuildSurrogate(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.eng.AdmitSurrogate(model); err != nil {
		t.Fatal(err)
	}
	return model
}

// TestMethodNotAllowed: the work endpoints are POST-only; anything else
// answers 405 with an Allow header and the error envelope.
func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/v1/eval", "/v1/table"} {
		for _, method := range []string{http.MethodGet, http.MethodPut, http.MethodDelete} {
			req, err := http.NewRequest(method, ts.URL+path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Fatalf("%s %s: status %d, want 405", method, path, resp.StatusCode)
			}
			if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
				t.Errorf("%s %s: Allow header %q, want POST", method, path, allow)
			}
			if e := decodeEnvelope(t, body); e.Code != codeMethodNotAllowed {
				t.Errorf("%s %s: error code %q, want %q", method, path, e.Code, codeMethodNotAllowed)
			}
		}
	}
}

// TestSpecEndpoint: GET /v1/spec must describe the whole surface —
// endpoints, gates, serving modes, result sources and error codes.
func TestSpecEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/spec")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spec status %d", resp.StatusCode)
	}
	var spec specResponse
	if err := json.NewDecoder(resp.Body).Decode(&spec); err != nil {
		t.Fatal(err)
	}
	if spec.Service == "" || len(spec.Endpoints) == 0 {
		t.Fatalf("spec missing service or endpoints: %+v", spec)
	}
	paths := make(map[string]bool)
	for _, ep := range spec.Endpoints {
		paths[ep.Method+" "+ep.Path] = true
	}
	for _, want := range []string{"POST /v1/eval", "POST /v1/table", "GET /v1/spec", "GET /v1/healthz"} {
		if !paths[want] {
			t.Errorf("spec endpoints missing %q", want)
		}
	}
	has := func(list []string, want string) bool {
		for _, v := range list {
			if v == want {
				return true
			}
		}
		return false
	}
	for _, mode := range []string{"auto", "surrogate", "micromag", "behavioral"} {
		if !has(spec.Modes, mode) {
			t.Errorf("spec modes missing %q", mode)
		}
	}
	for _, src := range []string{"cache", "disk", "surrogate", "micromag", "behavioral", "mixed"} {
		if !has(spec.Sources, src) {
			t.Errorf("spec sources missing %q", src)
		}
	}
	for _, code := range []string{codeBadRequest, codeUnknownGate, codeDraining, codeDeadline, codeSurrogateUnavailable} {
		if !has(spec.ErrorCodes, code) {
			t.Errorf("spec error codes missing %q", code)
		}
	}
	// POST spec is not a thing.
	resp2, err := http.Post(ts.URL+"/v1/spec", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/spec status %d, want 405", resp2.StatusCode)
	}
}

// TestErrorCodes pins the stable code for each failure class the
// redesigned contract promises.
func TestErrorCodes(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		name      string
		path      string
		body      map[string]any
		status    int
		code      string
		retryable bool
	}{
		{"unknown gate", "/v1/eval",
			map[string]any{"gate": "frobnicator", "inputs": []bool{true, false}},
			http.StatusBadRequest, codeUnknownGate, false},
		{"unknown mode", "/v1/eval",
			map[string]any{"gate": "xor", "mode": "warp", "inputs": []bool{true, false}},
			http.StatusBadRequest, codeBadRequest, false},
		{"mode conflicts with backend", "/v1/eval",
			map[string]any{"gate": "xor", "mode": "behavioral", "backend": "micromag", "inputs": []bool{true, false}},
			http.StatusBadRequest, codeBadRequest, false},
		{"surrogate unavailable", "/v1/eval",
			map[string]any{"gate": "xor", "mode": "surrogate", "backend": "behavioral", "inputs": []bool{true, false}},
			http.StatusServiceUnavailable, codeSurrogateUnavailable, true},
		{"surrogate unavailable table", "/v1/table",
			map[string]any{"gate": "xor", "mode": "surrogate", "backend": "behavioral"},
			http.StatusServiceUnavailable, codeSurrogateUnavailable, true},
		{"unknown material", "/v1/table",
			map[string]any{"gate": "xor", "material": "unobtainium"},
			http.StatusBadRequest, codeBadRequest, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+tc.path, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
			e := decodeEnvelope(t, body)
			if e.Code != tc.code {
				t.Errorf("code %q, want %q (%s)", e.Code, tc.code, body)
			}
			if e.Retryable != tc.retryable {
				t.Errorf("retryable %v, want %v", e.Retryable, tc.retryable)
			}
		})
	}
}

// TestEvalModeAndSource: responses must carry the effective mode, the
// per-case tier that answered, and the model fingerprint — across the
// legacy (no-mode) contract, an admitted surrogate, and auto tiering.
func TestEvalModeAndSource(t *testing.T) {
	srv, ts := newTestServer(t)

	// Legacy contract: no mode, behavioral compute then cache.
	resp, body := postJSON(t, ts.URL+"/v1/eval", map[string]any{
		"gate": "xor", "inputs": []bool{true, false}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy eval status %d: %s", resp.StatusCode, body)
	}
	var er evalResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Mode != "behavioral" || er.Fingerprint == "" {
		t.Fatalf("legacy eval mode %q fingerprint %q", er.Mode, er.Fingerprint)
	}
	if src := er.Results[0].Source; src != string(spinwave.EvalSourceBehavioral) {
		t.Fatalf("first eval source %q, want behavioral", src)
	}
	resp, body = postJSON(t, ts.URL+"/v1/eval", map[string]any{
		"gate": "xor", "inputs": []bool{true, false}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat eval status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if src := er.Results[0].Source; src != string(spinwave.EvalSourceCache) {
		t.Fatalf("repeat eval source %q, want cache", src)
	}

	// Admitted surrogate: surrogate mode serves superposition and reports
	// the base fingerprint it is keyed under.
	model := admitBehavioralSurrogate(t, srv, "xor")
	resp, body = postJSON(t, ts.URL+"/v1/eval", map[string]any{
		"gate": "xor", "mode": "surrogate", "backend": "behavioral",
		"cases": [][]bool{{true, true}, {true, false}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("surrogate eval status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Mode != "surrogate" {
		t.Fatalf("surrogate eval mode %q", er.Mode)
	}
	if er.Fingerprint != model.BaseFingerprint() {
		t.Fatalf("surrogate eval fingerprint %q, want %q", er.Fingerprint, model.BaseFingerprint())
	}
	for i, c := range er.Results {
		if c.Source != string(spinwave.EvalSourceSurrogate) {
			t.Fatalf("surrogate case %d source %q", i, c.Source)
		}
	}

	// Auto: a cold case is answered by the surrogate, a previously
	// computed exact case by the cache.
	resp, body = postJSON(t, ts.URL+"/v1/eval", map[string]any{
		"gate": "xor", "mode": "auto", "backend": "behavioral",
		"cases": [][]bool{{false, true}, {true, false}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("auto eval status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Mode != "auto" {
		t.Fatalf("auto eval mode %q", er.Mode)
	}
	if src := er.Results[0].Source; src != string(spinwave.EvalSourceSurrogate) {
		t.Fatalf("auto cold case source %q, want surrogate", src)
	}
	if src := er.Results[1].Source; src != string(spinwave.EvalSourceCache) {
		t.Fatalf("auto warm case source %q, want cache (exact results outrank the surrogate)", src)
	}
}

// TestTableModeAndSource: /v1/table carries the same serving metadata,
// and a surrogate-mode table still decodes the paper's truth table.
func TestTableModeAndSource(t *testing.T) {
	srv, ts := newTestServer(t)
	admitBehavioralSurrogate(t, srv, "maj3")
	resp, body := postJSON(t, ts.URL+"/v1/table", map[string]any{
		"gate": "maj3", "mode": "surrogate", "backend": "behavioral"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("surrogate table status %d: %s", resp.StatusCode, body)
	}
	var tr struct {
		spinwave.TruthTable
		Mode        string `json:"mode"`
		Source      string `json:"source"`
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Mode != "surrogate" || tr.Source != string(spinwave.EvalSourceSurrogate) {
		t.Fatalf("table mode %q source %q, want surrogate/surrogate", tr.Mode, tr.Source)
	}
	if tr.Fingerprint == "" {
		t.Error("surrogate table missing fingerprint")
	}
	if len(tr.Cases) != 8 {
		t.Fatalf("maj3 table has %d cases, want 8", len(tr.Cases))
	}
	if !tr.AllCorrect() {
		t.Fatalf("surrogate maj3 table decodes incorrectly: %s", body)
	}
}

// TestDeepHealthSurrogateState: a non-admitted ledger entry must flip
// the readiness probe to 503 and surface in /v1/slo, while an admitted
// one keeps the instance ready.
func TestDeepHealthSurrogateState(t *testing.T) {
	srv, ts := newTestServer(t)
	model := admitBehavioralSurrogate(t, srv, "xor")
	srv.surrogate.entries = []surrogateEntry{{
		Gate: "xor", Backend: "behavioral",
		Fingerprint: model.BaseFingerprint(), State: surrogateAdmitted,
	}}
	resp, err := http.Get(ts.URL + "/v1/healthz?deep=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deep health with admitted surrogate: status %d: %s", resp.StatusCode, body)
	}
	var deep map[string]any
	if err := json.Unmarshal(body, &deep); err != nil {
		t.Fatal(err)
	}
	sur, ok := deep["surrogate"].(map[string]any)
	if !ok || sur["ok"] != true {
		t.Fatalf("deep health surrogate section %v, want ok=true", deep["surrogate"])
	}

	// Dropping the model makes the admitted entry stale → not ready.
	srv.eng.DropSurrogate(model.BaseFingerprint())
	resp, err = http.Get(ts.URL + "/v1/healthz?deep=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deep health with stale surrogate: status %d, want 503: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &deep); err != nil {
		t.Fatal(err)
	}
	sur, ok = deep["surrogate"].(map[string]any)
	if !ok || sur["ok"] != false {
		t.Fatalf("stale deep health surrogate section %v, want ok=false", deep["surrogate"])
	}

	// The SLO report exposes the same ledger.
	resp, err = http.Get(ts.URL + "/v1/slo")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var slo struct {
		Surrogate []surrogateEntry `json:"surrogate"`
	}
	if err := json.Unmarshal(body, &slo); err != nil {
		t.Fatal(err)
	}
	if len(slo.Surrogate) != 1 || slo.Surrogate[0].State != surrogateStale {
		t.Fatalf("slo surrogate ledger %+v, want one stale entry", slo.Surrogate)
	}
}

// TestInitSurrogatesBehavioral exercises the startup path end to end
// with the (fast) behavioral source: the ledger records an admitted
// entry and surrogate-mode traffic is immediately servable.
func TestInitSurrogatesBehavioral(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.initSurrogates(context.Background(), "xor, maj3", "behavioral"); err != nil {
		t.Fatal(err)
	}
	entries := srv.surrogateSnapshot()
	if len(entries) != 2 {
		t.Fatalf("ledger has %d entries, want 2", len(entries))
	}
	for _, e := range entries {
		if e.State != surrogateAdmitted || e.Fingerprint == "" {
			t.Fatalf("ledger entry %+v, want admitted with fingerprint", e)
		}
	}
	if !srv.surrogateHealthy() {
		t.Fatal("surrogateHealthy() = false with all entries admitted")
	}
	resp, body := postJSON(t, ts.URL+"/v1/eval", map[string]any{
		"gate": "maj3", "mode": "surrogate", "backend": "behavioral",
		"inputs": []bool{true, true, false}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("surrogate eval after init: status %d: %s", resp.StatusCode, body)
	}
}

package main

import (
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"spinwave/internal/obs"
)

// HTTP-layer metrics in the obs default registry: per-endpoint request
// counts by status class and latency histograms. Registered lazily by
// the first server so tests constructing several servers share one set.
var (
	httpMetricsOnce sync.Once
	httpReqSeconds  func(path string) *obs.Histogram
	httpReqTotal    func(path string, status int) *obs.Counter
)

func initHTTPMetrics() {
	httpMetricsOnce.Do(func() {
		r := obs.Default()
		r.Describe("swserve_http_requests_total", "HTTP requests by endpoint and status code")
		r.Describe("swserve_http_request_seconds", "HTTP request latency by endpoint")
		httpReqSeconds = func(path string) *obs.Histogram {
			return r.Histogram("swserve_http_request_seconds", nil, obs.L("path", path))
		}
		httpReqTotal = func(path string, status int) *obs.Counter {
			return r.Counter("swserve_http_requests_total",
				obs.L("path", path), obs.L("status", strconv.Itoa(status)))
		}
	})
}

// statusWriter captures the response status for metric labels.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so streaming handlers (the
// NDJSON run tail) keep working behind the metrics wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withMetrics wraps a handler with per-endpoint latency and status
// accounting, and scores the request against the SLO tracker. The
// route pattern (not the raw URL) is the path label, so cardinality
// stays bounded to the mux's route set.
func (s *server) withMetrics(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)
		httpReqSeconds(path).Observe(elapsed.Seconds())
		httpReqTotal(path, sw.status).Inc()
		s.slo.record(path, sw.status, elapsed)
	}
}

// handleMetrics serves the default registry in Prometheus text format.
// Deliberately NOT gated on the drain state: a scrape during shutdown
// must still succeed, or the final counter increments of a terminating
// process (requests it is draining right now) are never observed. Only
// mutating or long-lived endpoints refuse while draining.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.Default().WritePrometheus(w) //nolint:errcheck
}

// refuseDraining answers a 503 draining envelope with a Retry-After
// when the server is draining after SIGTERM; reports whether it did.
func (s *server) refuseDraining(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	w.Header().Set("Retry-After", "5")
	s.failAs(w, http.StatusServiceUnavailable, codeDraining, true, "server is draining")
	return true
}

// registerPprof mounts the net/http/pprof handlers on mux under
// /debug/pprof/ — explicitly, so profiling is opt-in via -pprof rather
// than a side effect of importing the package.
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

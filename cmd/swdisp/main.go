// Command swdisp prints the forward-volume spin-wave dispersion used to
// design the gates: f(k), group velocity and attenuation length, for the
// full Kalinikos–Slavin branch and the solver-matched local branch.
//
//	swdisp -material fecob -kmax 150 -n 16
//	swdisp -lambda 55        # design point report for λ = 55 nm
package main

import (
	"flag"
	"fmt"
	"log"

	"spinwave/internal/dispersion"
	"spinwave/internal/material"
	"spinwave/internal/measure"
	"spinwave/internal/report"
	"spinwave/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swdisp: ")
	matName := flag.String("material", "fecob", "material preset: fecob, yig, permalloy")
	kmax := flag.Float64("kmax", 150, "maximum wave number in rad/µm")
	n := flag.Int("n", 16, "number of curve samples")
	thickness := flag.Float64("thickness", 1, "film thickness in nm")
	lambda := flag.Float64("lambda", 55, "design wavelength in nm for the design-point report")
	doMeasure := flag.Bool("measure", false, "also measure the dispersion micromagnetically (driven strip)")
	flag.Parse()

	mat, err := material.ByName(*matName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(mat.String())
	fmt.Printf("anisotropy field Hk = %.4g A/m, exchange length = %.2f nm, perpendicular: %v\n\n",
		mat.AnisotropyField(), mat.ExchangeLength()*1e9, mat.IsPerpendicular())

	for _, mode := range []dispersion.Mode{dispersion.Full, dispersion.LocalDemag} {
		model, err := dispersion.New(mat, units.NM(*thickness), mode)
		if err != nil {
			log.Fatal(err)
		}
		t := report.NewTable(fmt.Sprintf("FVSW dispersion (%s branch)", mode),
			"k (rad/µm)", "λ (nm)", "f (GHz)", "vg (m/s)", "L_att (µm)")
		for _, p := range model.Curve(1e6, units.RadPerUM(*kmax), *n) {
			t.AddRow(
				fmt.Sprintf("%.1f", p.K*1e-6),
				fmt.Sprintf("%.1f", p.Lambda*1e9),
				fmt.Sprintf("%.2f", units.ToGHz(p.F)),
				fmt.Sprintf("%.0f", p.Vg),
				fmt.Sprintf("%.2f", p.AttnLength*1e6),
			)
		}
		fmt.Print(t.String())
		fmt.Println()
	}

	// Design point: the paper designs at λ = 55 nm; our solver drives at
	// the LocalDemag frequency for that wavelength.
	model, err := dispersion.New(mat, units.NM(*thickness), dispersion.LocalDemag)
	if err != nil {
		log.Fatal(err)
	}
	lam := units.NM(*lambda)
	k := units.WaveNumber(lam)
	fmt.Printf("design point λ = %.0f nm: k = %.1f rad/µm, f = %.2f GHz, vg = %.0f m/s, L_att = %.2f µm\n",
		*lambda, k*1e-6, units.ToGHz(model.Frequency(k)), model.GroupVelocity(k), model.AttenuationLength(k)*1e6)
	fmt.Printf("(the paper quotes k = 50 rad/µm -> 10 GHz for its MuMax3 setup; see EXPERIMENTS.md E-F1 notes)\n")

	if *doMeasure {
		fmt.Println("\nmeasuring the realized dispersion in the LLG solver (driven strip)...")
		freqs := []float64{
			model.FrequencyForWavelength(units.NM(90)),
			model.FrequencyForWavelength(units.NM(70)),
			model.FrequencyForWavelength(units.NM(55)),
			model.FrequencyForWavelength(units.NM(45)),
		}
		pts, err := measure.Dispersion(measure.StripConfig{Mat: mat}, freqs)
		if err != nil {
			log.Fatal(err)
		}
		t := report.NewTable("measured vs analytic (local branch)",
			"f (GHz)", "k measured (rad/µm)", "k analytic", "error", "L_att (µm)")
		for _, p := range pts {
			t.AddRow(
				fmt.Sprintf("%.2f", units.ToGHz(p.Freq)),
				fmt.Sprintf("%.1f", p.K*1e-6),
				fmt.Sprintf("%.1f", p.AnalyticK*1e-6),
				fmt.Sprintf("%.1f%%", 100*p.RelError),
				fmt.Sprintf("%.2f", p.AttnLength*1e6),
			)
		}
		fmt.Print(t.String())
	}
}

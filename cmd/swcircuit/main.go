// Command swcircuit demonstrates the circuit-level payoff of fan-out-of-2
// gates: it builds ripple-carry adders from (a) this work's triangle FO2
// gates, (b) the ladder FO2 baseline and (c) single-output gates with
// couplers and repeaters, verifies their logic, and compares energy and
// critical delay.
//
//	swcircuit -bits 8
package main

import (
	"flag"
	"fmt"
	"log"

	"spinwave/internal/circuit"
	"spinwave/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swcircuit: ")
	bits := flag.Int("bits", 8, "adder width in bits")
	flag.Parse()

	// Verify the full adder logic on all styles first.
	for _, style := range []circuit.AdderStyle{circuit.TriangleFO2, circuit.LadderFO2, circuit.SingleWithRepeaters} {
		fa, err := circuit.FullAdder(style)
		if err != nil {
			log.Fatal(err)
		}
		for c := 0; c < 8; c++ {
			a, b, cin := c&1 != 0, c&2 != 0, c&4 != 0
			out, err := fa.Evaluate(map[circuit.Net]bool{"a": a, "b": b, "cin": cin})
			if err != nil {
				log.Fatal(err)
			}
			wantSum := (a != b) != cin
			wantCarry := (a && b) || (a && cin) || (b && cin)
			if out["sum"] != wantSum || out["cout"] != wantCarry {
				log.Fatalf("%v full adder wrong at %v", style, c)
			}
		}
	}
	fmt.Printf("full adder verified for all 3 styles (sum = XOR·XOR, carry = MAJ3)\n\n")

	rows, err := circuit.CompareAdders(*bits)
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable(fmt.Sprintf("%d-bit ripple-carry adder comparison", *bits),
		"style", "gates", "energy (aJ)", "critical delay (ns)", "vs triangle")
	base := rows[0].EnergyAJ
	for _, r := range rows {
		t.AddRow(r.Style.String(),
			fmt.Sprintf("%d", r.Gates),
			fmt.Sprintf("%.1f", r.EnergyAJ),
			fmt.Sprintf("%.2f", r.DelayNS),
			fmt.Sprintf("%.2fx", r.EnergyAJ/base))
	}
	fmt.Print(t.String())
	fmt.Println("\nThe triangle FO2 gates provide the two carry copies structurally;")
	fmt.Println("the baselines pay for them with an extra transducer (ladder) or")
	fmt.Println("with couplers + repeaters (single-output gates).")
}

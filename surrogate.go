package spinwave

import (
	"context"

	"spinwave/internal/core"
	"spinwave/internal/surrogate"
)

// Surrogate re-exports: the linear-superposition surrogate model runs
// one solver transient per input port (that port at logic 0, the others
// muted), stores the per-detector unit phasors, and answers arbitrary
// input cases as the phase-signed sum of the stored responses —
// micromagnetic-grade truth tables at microsecond latency. A model is
// only served after its full truth table passes the paper's golden
// tolerance bands (Engine.AdmitSurrogate). See internal/surrogate.
type (
	// SurrogateModel is an immutable superposition surrogate for one
	// (backend fingerprint, gate kind); it implements Backend.
	SurrogateModel = surrogate.Model
	// SurrogatePortResponse is one input port's unit response: detector
	// name to complex amplitude when only that port drives at logic 0.
	SurrogatePortResponse = surrogate.PortResponse
	// SurrogateSource is a backend that can excite one input port in
	// isolation — the build primitive (both built-in backends qualify).
	SurrogateSource = surrogate.UnitRunner
)

// BuildSurrogate measures one unit transient per input port of src and
// assembles the surrogate model. src must be canonically fingerprintable
// (the model is keyed by that identity). The per-port transients are the
// entire build cost; every later evaluation is a phasor sum.
func BuildSurrogate(ctx context.Context, src SurrogateSource) (*SurrogateModel, error) {
	return surrogate.Build(ctx, src)
}

// NewSurrogateFromPorts assembles a surrogate from pre-measured unit
// responses (one per input of kind, in InputNames order), for replaying
// persisted or externally measured port responses.
func NewSurrogateFromPorts(kind GateKind, baseFingerprint, sourceBackend string, ports []SurrogatePortResponse) (*SurrogateModel, error) {
	return surrogate.FromPorts(kind, baseFingerprint, sourceBackend, ports)
}

// statically assert the surrogate model plugs into the evaluation
// engine's admission gate and backend plumbing.
var (
	_ Backend            = (*SurrogateModel)(nil)
	_ core.Fingerprinter = (*SurrogateModel)(nil)
)

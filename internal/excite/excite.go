// Package excite models spin-wave transducers as localized time-dependent
// magnetic field sources (microstrip antennas / magnetoelectric cells in
// field-equivalent form, paper §II-B stage 1: "SW creation").
//
// An Antenna applies an in-plane RF field B(t) = B0·sin(2πft + φ)·env(t)
// over a small set of cells. Logic values are encoded in the phase, as the
// paper prescribes: phase 0 for logic 0 and phase π for logic 1.
package excite

import (
	"fmt"
	"math"

	"spinwave/internal/vec"
)

// Envelope shapes the drive amplitude over time. It must return a factor
// in [0, 1].
type Envelope func(t float64) float64

// ConstantEnvelope drives at full amplitude for all t ≥ 0.
func ConstantEnvelope() Envelope {
	return func(t float64) float64 {
		if t < 0 {
			return 0
		}
		return 1
	}
}

// RampEnvelope rises smoothly (smoothstep) from 0 to 1 over rise seconds
// and stays at 1 afterwards. A soft turn-on avoids exciting a broadband
// transient that would pollute the lock-in readout.
func RampEnvelope(rise float64) Envelope {
	return func(t float64) float64 {
		if t <= 0 {
			return 0
		}
		if t >= rise {
			return 1
		}
		u := t / rise
		return u * u * (3 - 2*u)
	}
}

// PulseEnvelope rises over rise seconds, holds at 1 until width, then
// falls symmetrically; zero after width+rise. It models the paper's
// 100 ps excitation pulses (§IV-D assumption (vi)).
func PulseEnvelope(rise, width float64) Envelope {
	return func(t float64) float64 {
		switch {
		case t <= 0 || t >= width+rise:
			return 0
		case t < rise:
			u := t / rise
			return u * u * (3 - 2*u)
		case t <= width:
			return 1
		default:
			u := (width + rise - t) / rise
			return u * u * (3 - 2*u)
		}
	}
}

// Antenna is a localized RF field source implementing mag.Source.
type Antenna struct {
	Name  string
	Cells []int      // flat cell indices covered by the antenna
	Dir   vec.Vector // unit field direction (in-plane for FVSW excitation)
	B0    float64    // field amplitude, T
	Freq  float64    // drive frequency, Hz
	Phase float64    // drive phase, rad (0 = logic 0, π = logic 1)
	Env   Envelope   // amplitude envelope; nil means constant
}

// NewAntenna validates and constructs an antenna.
func NewAntenna(name string, cells []int, dir vec.Vector, b0, freq, phase float64) (*Antenna, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("excite: antenna %q covers no cells", name)
	}
	if dir.Norm() == 0 {
		return nil, fmt.Errorf("excite: antenna %q has zero field direction", name)
	}
	if b0 < 0 {
		return nil, fmt.Errorf("excite: antenna %q amplitude %g must be non-negative", name, b0)
	}
	if freq <= 0 {
		return nil, fmt.Errorf("excite: antenna %q frequency %g must be positive", name, freq)
	}
	return &Antenna{
		Name:  name,
		Cells: cells,
		Dir:   dir.Normalized(),
		B0:    b0,
		Freq:  freq,
		Phase: phase,
	}, nil
}

// AddTo implements mag.Source.
func (a *Antenna) AddTo(t float64, B vec.Field) {
	env := 1.0
	if a.Env != nil {
		env = a.Env(t)
	}
	if env == 0 || a.B0 == 0 {
		return
	}
	amp := a.B0 * env * math.Sin(2*math.Pi*a.Freq*t+a.Phase)
	for _, c := range a.Cells {
		B[c] = B[c].MAdd(amp, a.Dir)
	}
}

// SourceCells implements mag.SparseSource: the antenna only ever writes
// its fixed cell footprint, so the parallel stepper can treat it as a
// sparse overlay instead of sweeping the whole mesh.
func (a *Antenna) SourceCells() []int { return a.Cells }

// SetLogic sets the antenna phase from a logic level: 0 ⇒ phase 0,
// 1 ⇒ phase π (paper §III-A step (i)).
func (a *Antenna) SetLogic(level bool) {
	if level {
		a.Phase = math.Pi
	} else {
		a.Phase = 0
	}
}

// Logic returns the logic level encoded by the antenna phase, true when
// the phase is closer to π than to 0 (mod 2π).
func (a *Antenna) Logic() bool {
	p := math.Mod(a.Phase, 2*math.Pi)
	if p < 0 {
		p += 2 * math.Pi
	}
	return p > math.Pi/2 && p < 3*math.Pi/2
}

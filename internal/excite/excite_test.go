package excite

import (
	"math"
	"testing"

	"spinwave/internal/vec"
)

func TestNewAntennaValidation(t *testing.T) {
	if _, err := NewAntenna("a", nil, vec.UnitX, 1e-3, 1e9, 0); err == nil {
		t.Error("empty cell list accepted")
	}
	if _, err := NewAntenna("a", []int{0}, vec.Zero, 1e-3, 1e9, 0); err == nil {
		t.Error("zero direction accepted")
	}
	if _, err := NewAntenna("a", []int{0}, vec.UnitX, -1, 1e9, 0); err == nil {
		t.Error("negative amplitude accepted")
	}
	if _, err := NewAntenna("a", []int{0}, vec.UnitX, 1e-3, 0, 0); err == nil {
		t.Error("zero frequency accepted")
	}
	a, err := NewAntenna("a", []int{0}, vec.V(2, 0, 0), 1e-3, 1e9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Dir != vec.UnitX {
		t.Errorf("direction not normalized: %v", a.Dir)
	}
}

func TestAntennaField(t *testing.T) {
	a, _ := NewAntenna("a", []int{1}, vec.UnitX, 2e-3, 1e9, 0)
	B := vec.NewField(3)
	// Quarter period: sin(π/2) = 1 → full amplitude at the covered cell.
	a.AddTo(0.25e-9, B)
	if math.Abs(B[1].X-2e-3) > 1e-12 {
		t.Errorf("B[1].X = %g, want 2e-3", B[1].X)
	}
	if B[0] != vec.Zero || B[2] != vec.Zero {
		t.Error("antenna leaked outside its cells")
	}
}

func TestAntennaPhaseEncoding(t *testing.T) {
	a0, _ := NewAntenna("a0", []int{0}, vec.UnitX, 1e-3, 1e9, 0)
	a1, _ := NewAntenna("a1", []int{0}, vec.UnitX, 1e-3, 1e9, 0)
	a1.SetLogic(true)
	// Logic-1 drive is exactly inverted relative to logic-0 drive.
	for _, tt := range []float64{0.1e-9, 0.3e-9, 0.77e-9} {
		b0 := vec.NewField(1)
		b1 := vec.NewField(1)
		a0.AddTo(tt, b0)
		a1.AddTo(tt, b1)
		if math.Abs(b0[0].X+b1[0].X) > 1e-15 {
			t.Errorf("t=%g: fields not antiphase: %g vs %g", tt, b0[0].X, b1[0].X)
		}
	}
	if a0.Logic() || !a1.Logic() {
		t.Error("Logic() readback wrong")
	}
	a1.SetLogic(false)
	if a1.Phase != 0 || a1.Logic() {
		t.Error("SetLogic(false) wrong")
	}
}

func TestConstantEnvelope(t *testing.T) {
	e := ConstantEnvelope()
	if e(-1) != 0 || e(0) != 1 || e(1e9) != 1 {
		t.Error("constant envelope wrong")
	}
}

func TestRampEnvelope(t *testing.T) {
	e := RampEnvelope(1e-9)
	if e(0) != 0 {
		t.Errorf("ramp(0) = %g", e(0))
	}
	if got := e(0.5e-9); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("ramp(mid) = %g, want 0.5", got)
	}
	if e(2e-9) != 1 {
		t.Errorf("ramp(after) = %g", e(2e-9))
	}
	// Monotone non-decreasing.
	prev := -1.0
	for x := 0.0; x <= 1.5e-9; x += 0.05e-9 {
		v := e(x)
		if v < prev {
			t.Fatalf("ramp not monotone at %g", x)
		}
		prev = v
	}
}

func TestPulseEnvelope(t *testing.T) {
	rise, width := 20e-12, 100e-12
	e := PulseEnvelope(rise, width)
	if e(0) != 0 {
		t.Errorf("pulse(0) = %g", e(0))
	}
	if e(50e-12) != 1 {
		t.Errorf("pulse(plateau) = %g", e(50e-12))
	}
	if e(width+rise) != 0 || e(1) != 0 {
		t.Error("pulse did not return to zero")
	}
	// Smooth rise and fall midpoints.
	if got := e(10e-12); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("pulse rise mid = %g", got)
	}
	if got := e(width + rise/2); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("pulse fall mid = %g", got)
	}
}

func TestAntennaWithEnvelopeZeroBeforeStart(t *testing.T) {
	a, _ := NewAntenna("a", []int{0}, vec.UnitX, 1e-3, 1e9, 0)
	a.Env = RampEnvelope(1e-9)
	B := vec.NewField(1)
	a.AddTo(0, B)
	if B[0] != vec.Zero {
		t.Errorf("field before ramp start: %v", B[0])
	}
}

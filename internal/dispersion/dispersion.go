// Package dispersion implements the forward-volume spin-wave (FVSW)
// dispersion relation used to design the gates: the Kalinikos–Slavin
// lowest-mode expression for a perpendicular-magnetized film (the paper's
// configuration), plus the simplified "local demag" branch that exactly
// matches the finite-difference solver in internal/mag, which treats the
// thin-film demagnetizing field as a local −Ms·mz·ẑ term.
//
// Both branches share the exchange-stiffened FMR frequency
//
//	ω0(k) = γ·µ0·(Hi + (2·Aex/(µ0·Ms))·k²),  Hi = Hk − Ms + Hext
//
// and the full branch adds the dipolar correction
//
//	ω(k)² = ω0(k)·(ω0(k) + ωM·F(kd)),  F(x) = 1 − (1 − e^(−x))/x
//
// with ωM = γ·µ0·Ms and d the film thickness.
package dispersion

import (
	"fmt"
	"math"

	"spinwave/internal/material"
	"spinwave/internal/units"
)

// Mode selects the dispersion branch.
type Mode int

const (
	// Full is the Kalinikos–Slavin lowest FVSW mode with the dipolar
	// thickness correction. Use it for physical design numbers.
	Full Mode = iota
	// LocalDemag drops the dipolar k-dependence, matching the dispersion
	// of the internal/mag solver (local thin-film demag approximation).
	// Use it to choose drive frequencies for in-repo simulations so the
	// simulated wavelength equals the design wavelength.
	LocalDemag
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Full:
		return "full"
	case LocalDemag:
		return "local-demag"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Model evaluates the FVSW dispersion for one material/film configuration.
type Model struct {
	Mat       material.Params
	Thickness float64 // film thickness d in meters
	Hext      float64 // external out-of-plane field in A/m (may be 0)
	Mode      Mode
}

// New constructs a model, validating the configuration.
func New(mat material.Params, thickness float64, mode Mode) (Model, error) {
	if err := mat.Validate(); err != nil {
		return Model{}, err
	}
	if thickness <= 0 {
		return Model{}, fmt.Errorf("dispersion: thickness %g must be positive", thickness)
	}
	return Model{Mat: mat, Thickness: thickness, Mode: mode}, nil
}

// InternalField returns Hi = Hk − Ms + Hext in A/m, the static internal
// field seen by the out-of-plane magnetization.
func (m Model) InternalField() float64 {
	return m.Mat.AnisotropyField() - m.Mat.Ms + m.Hext
}

// omega0 returns the exchange-stiffened FMR frequency at wave number k.
func (m Model) omega0(k float64) float64 {
	g := m.Mat.GammaOrDefault()
	hex := 2 * m.Mat.Aex / (units.Mu0 * m.Mat.Ms) * k * k
	return g * units.Mu0 * (m.InternalField() + hex)
}

// dipoleF returns F(kd) = 1 − (1 − e^(−kd))/(kd), with the analytic k→0
// limit F → kd/2.
func dipoleF(kd float64) float64 {
	if kd < 1e-9 {
		return kd / 2
	}
	return 1 - (1-math.Exp(-kd))/kd
}

// Omega returns the angular frequency ω(k) in rad/s at wave number k
// (rad/m). Results are only meaningful for Hi > 0 (stable perpendicular
// state); for Hi ≤ 0 at small k the returned value is NaN, signaling an
// unstable configuration.
func (m Model) Omega(k float64) float64 {
	w0 := m.omega0(k)
	if m.Mode == LocalDemag {
		return w0
	}
	wM := m.Mat.GammaOrDefault() * units.Mu0 * m.Mat.Ms
	arg := w0 * (w0 + wM*dipoleF(k*m.Thickness))
	return math.Sqrt(arg)
}

// Frequency returns f(k) = ω(k)/2π in Hz.
func (m Model) Frequency(k float64) float64 { return m.Omega(k) / (2 * math.Pi) }

// GroupVelocity returns vg = dω/dk in m/s by central difference.
func (m Model) GroupVelocity(k float64) float64 {
	h := math.Max(k*1e-4, 1.0)
	return (m.Omega(k+h) - m.Omega(k-h)) / (2 * h)
}

// SolveK finds the wave number k (rad/m) whose frequency equals f (Hz) by
// bisection on [0, kMax]. It returns an error when f is below the k=0 gap
// or above the band edge at kMax.
func (m Model) SolveK(f, kMax float64) (float64, error) {
	if kMax <= 0 {
		return 0, fmt.Errorf("dispersion: kMax %g must be positive", kMax)
	}
	fLo, fHi := m.Frequency(0), m.Frequency(kMax)
	if math.IsNaN(fLo) || math.IsNaN(fHi) {
		return 0, fmt.Errorf("dispersion: unstable configuration (internal field %g A/m)", m.InternalField())
	}
	if f < fLo {
		return 0, fmt.Errorf("dispersion: f = %.4g GHz below band gap %.4g GHz", units.ToGHz(f), units.ToGHz(fLo))
	}
	if f > fHi {
		return 0, fmt.Errorf("dispersion: f = %.4g GHz above %.4g GHz at kMax", units.ToGHz(f), units.ToGHz(fHi))
	}
	lo, hi := 0.0, kMax
	for i := 0; i < 200 && hi-lo > 1e-9*kMax; i++ {
		mid := (lo + hi) / 2
		if m.Frequency(mid) < f {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// FrequencyForWavelength returns the drive frequency that produces a spin
// wave of wavelength λ in this model.
func (m Model) FrequencyForWavelength(lambda float64) float64 {
	return m.Frequency(units.WaveNumber(lambda))
}

// Lifetime returns the amplitude relaxation time τ = 1/(α·Γω) where
// Γω = ∂ω/∂ω0 · ω reduces to α·(ω0 + ωM·F/2) for the full branch and α·ω
// for the local branch.
func (m Model) Lifetime(k float64) float64 {
	a := m.Mat.Alpha
	if a == 0 {
		return math.Inf(1)
	}
	if m.Mode == LocalDemag {
		return 1 / (a * m.Omega(k))
	}
	wM := m.Mat.GammaOrDefault() * units.Mu0 * m.Mat.Ms
	rate := a * (m.omega0(k) + wM*dipoleF(k*m.Thickness)/2)
	return 1 / rate
}

// AttenuationLength returns the 1/e amplitude decay length vg·τ in meters.
func (m Model) AttenuationLength(k float64) float64 {
	return m.GroupVelocity(k) * m.Lifetime(k)
}

// Point is one sample of the dispersion curve.
type Point struct {
	K          float64 // rad/m
	Lambda     float64 // m
	F          float64 // Hz
	Vg         float64 // m/s
	AttnLength float64 // m
}

// Curve samples the dispersion uniformly in k over [kMin, kMax] with n
// points, for plotting or table output.
func (m Model) Curve(kMin, kMax float64, n int) []Point {
	if n < 2 {
		n = 2
	}
	pts := make([]Point, n)
	for i := range pts {
		k := kMin + (kMax-kMin)*float64(i)/float64(n-1)
		pts[i] = Point{
			K:          k,
			Lambda:     units.Wavelength(math.Max(k, 1e-12)),
			F:          m.Frequency(k),
			Vg:         m.GroupVelocity(k),
			AttnLength: m.AttenuationLength(k),
		}
	}
	return pts
}

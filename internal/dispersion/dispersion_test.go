package dispersion

import (
	"math"
	"testing"
	"testing/quick"

	"spinwave/internal/material"
	"spinwave/internal/units"
)

func paperModel(mode Mode) Model {
	m, err := New(material.FeCoB(), units.NM(1), mode)
	if err != nil {
		panic(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(material.Params{}, units.NM(1), Full); err == nil {
		t.Error("invalid material accepted")
	}
	if _, err := New(material.FeCoB(), 0, Full); err == nil {
		t.Error("zero thickness accepted")
	}
}

func TestGapFrequency(t *testing.T) {
	m := paperModel(Full)
	// k=0 gap: f0 = γµ0(Hk−Ms)/2π ≈ 3.65 GHz for the paper's FeCoB.
	f0 := m.Frequency(0)
	if math.Abs(units.ToGHz(f0)-3.65) > 0.15 {
		t.Errorf("gap = %.3f GHz, want ≈3.65", units.ToGHz(f0))
	}
	// Local branch has the same k=0 limit (dipole term vanishes).
	if got := paperModel(LocalDemag).Frequency(0); math.Abs(got-f0) > 1e-3*f0 {
		t.Errorf("local gap %.4g != full gap %.4g", got, f0)
	}
}

func TestMonotoneIncreasing(t *testing.T) {
	for _, mode := range []Mode{Full, LocalDemag} {
		m := paperModel(mode)
		prev := m.Frequency(0)
		for k := 1e6; k <= 3e8; k *= 1.3 {
			f := m.Frequency(k)
			if f <= prev {
				t.Errorf("mode %v: f(k) not increasing at k=%g", mode, k)
			}
			prev = f
		}
	}
}

func TestPaperDesignPoint(t *testing.T) {
	// The paper designs for λ = 55 nm. In our solver-matched branch this
	// corresponds to a definite drive frequency; assert it is in the
	// 10–20 GHz range the paper's setup targets and that SolveK inverts it.
	m := paperModel(LocalDemag)
	lambda := units.NM(55)
	f := m.FrequencyForWavelength(lambda)
	if g := units.ToGHz(f); g < 8 || g > 25 {
		t.Errorf("f(λ=55nm) = %.2f GHz, outside plausible design window", g)
	}
	k, err := m.SolveK(f, units.WaveNumber(units.NM(10)))
	if err != nil {
		t.Fatal(err)
	}
	if gotLambda := units.Wavelength(k); math.Abs(gotLambda-lambda) > 0.01*lambda {
		t.Errorf("SolveK round trip λ = %.3g, want 55 nm", gotLambda)
	}
}

func TestSolveKErrors(t *testing.T) {
	m := paperModel(Full)
	if _, err := m.SolveK(units.GHz(1), 1e9); err == nil {
		t.Error("frequency below gap accepted")
	}
	if _, err := m.SolveK(units.GHz(1e6), 1e9); err == nil {
		t.Error("frequency above band edge accepted")
	}
	if _, err := m.SolveK(units.GHz(10), 0); err == nil {
		t.Error("zero kMax accepted")
	}
}

// Property: SolveK inverts Frequency across the band for both branches.
func TestSolveKInvertsFrequency(t *testing.T) {
	kMax := units.WaveNumber(units.NM(12))
	for _, mode := range []Mode{Full, LocalDemag} {
		m := paperModel(mode)
		f := func(u float64) bool {
			k := (0.01 + 0.98*frac(u)) * kMax
			freq := m.Frequency(k)
			got, err := m.SolveK(freq, kMax)
			if err != nil {
				return false
			}
			return math.Abs(got-k) < 1e-4*kMax
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("mode %v: %v", mode, err)
		}
	}
}

func frac(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	return math.Abs(x - math.Trunc(x))
}

func TestGroupVelocityPositiveAndReasonable(t *testing.T) {
	m := paperModel(LocalDemag)
	k := units.WaveNumber(units.NM(55))
	vg := m.GroupVelocity(k)
	// Exchange wave at λ=55 nm in FeCoB: a few hundred m/s to a few km/s.
	if vg < 100 || vg > 20e3 {
		t.Errorf("vg = %g m/s, outside plausible range", vg)
	}
}

func TestLifetimeAndAttenuation(t *testing.T) {
	m := paperModel(LocalDemag)
	k := units.WaveNumber(units.NM(55))
	tau := m.Lifetime(k)
	if tau <= 0 || tau > 1e-6 {
		t.Errorf("τ = %g s implausible", tau)
	}
	lAtt := m.AttenuationLength(k)
	// The gate's longest path (d2 = 880 nm) must be well within one
	// attenuation length, otherwise the paper's gate could not work.
	if lAtt < units.NM(880) {
		t.Errorf("attenuation length %g m shorter than longest gate arm", lAtt)
	}
	// Zero damping → infinite lifetime.
	mat := material.FeCoB()
	mat.Alpha = 0
	m2, _ := New(mat, units.NM(1), LocalDemag)
	if !math.IsInf(m2.Lifetime(k), 1) {
		t.Error("zero-damping lifetime not infinite")
	}
}

func TestFullAboveLocal(t *testing.T) {
	// The dipolar term only adds stiffness: f_full(k) ≥ f_local(k).
	full, local := paperModel(Full), paperModel(LocalDemag)
	for k := 0.0; k <= 2e8; k += 2e7 {
		if full.Frequency(k)+1e-3 < local.Frequency(k) {
			t.Errorf("f_full < f_local at k=%g", k)
		}
	}
}

func TestCurve(t *testing.T) {
	m := paperModel(Full)
	pts := m.Curve(0, 2e8, 21)
	if len(pts) != 21 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].K != 0 || math.Abs(pts[20].K-2e8) > 1 {
		t.Errorf("endpoints wrong: %g..%g", pts[0].K, pts[20].K)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].F <= pts[i-1].F {
			t.Errorf("curve not monotone at %d", i)
		}
	}
	// n < 2 clamps.
	if got := m.Curve(0, 1e8, 1); len(got) != 2 {
		t.Errorf("clamped curve len = %d", len(got))
	}
}

func TestModeString(t *testing.T) {
	if Full.String() != "full" || LocalDemag.String() != "local-demag" {
		t.Error("mode names wrong")
	}
	if Mode(99).String() == "" {
		t.Error("unknown mode name empty")
	}
}

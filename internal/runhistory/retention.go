package runhistory

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"spinwave/internal/journal"
)

// quarantineSuffix marks files set aside by the durable stores after a
// corruption alert. Retention never deletes them, and never deletes a
// directory containing one — an operator put them there to be looked
// at.
const quarantineSuffix = ".quarantined"

// ClassPolicy caps one retention class. Zero-valued fields disable
// their cap; a fully zero policy disables the class entirely.
type ClassPolicy struct {
	// MaxAge expires items whose newest write is older than this.
	MaxAge time.Duration
	// MaxCount keeps at most this many items, newest first.
	MaxCount int
	// MaxBytes keeps the newest items whose cumulative size fits.
	MaxBytes int64
}

// Active reports whether any cap is set.
func (p ClassPolicy) Active() bool {
	return p.MaxAge > 0 || p.MaxCount > 0 || p.MaxBytes > 0
}

// Policy is the full retention configuration one GC sweeps under.
type Policy struct {
	// Traces caps the per-trace fleet-journal files (ClassTrace).
	Traces ClassPolicy
	// Checkpoints caps checkpoint pairs per run (ClassCheckpoint). The
	// newest pair of a run always survives — it is the resume point.
	Checkpoints ClassPolicy
	// ProbeCSV caps probe time-series CSVs per run (ClassProbeCSV).
	ProbeCSV ClassPolicy
	// Artifacts caps whole run-artifact directories (ClassArtifact).
	Artifacts ClassPolicy
	// HistoryMaxRecords compacts the catalog down to this many records
	// (0 = never compact). The catalog is compacted, never deleted.
	HistoryMaxRecords int
	// DryRun journals and reports what a sweep would delete without
	// deleting anything.
	DryRun bool
}

// Active reports whether the policy would ever delete or compact.
func (p Policy) Active() bool {
	return p.Traces.Active() || p.Checkpoints.Active() ||
		p.ProbeCSV.Active() || p.Artifacts.Active() || p.HistoryMaxRecords > 0
}

// TraceStore is the obsplane store surface the sweeper uses: traces
// are removed through the store (never by unlinking behind its back)
// so live tails end with a clean terminal event.
type TraceStore interface {
	// Dir returns the directory holding the per-trace journal files.
	Dir() string
	// Remove deletes one trace and returns the bytes freed.
	Remove(trace string) (int64, error)
}

// GC is the policy-driven retention sweeper. Configure the public
// fields before the first Sweep; a nil/empty data source skips its
// classes.
type GC struct {
	// Policy is the retention configuration applied by each sweep.
	Policy Policy
	// Traces is the fleet-journal store to sweep (nil skips ClassTrace).
	Traces TraceStore
	// ArtifactRoot is the run-artifact store root to sweep ("" skips
	// the checkpoint, probe-csv and artifact classes).
	ArtifactRoot string
	// Catalog, when set, is compacted under HistoryMaxRecords.
	Catalog *Catalog
	// Protected, when set, is called once per sweep and returns the
	// fleet traces and runs that must not be touched — the coordinator
	// wires it to its in-flight request set so retention never races an
	// active request.
	Protected func() (traces map[string]bool, runs map[string]bool)

	mu      sync.Mutex
	last    SweepResult
	lastAt  time.Time
	lastErr error
	sweeps  int64
}

// ClassResult is one class's share of a sweep.
type ClassResult struct {
	// Examined is how many items the class listing produced.
	Examined int `json:"examined"`
	// Deleted is how many items were deleted (or, in dry-run, would
	// have been).
	Deleted int `json:"deleted"`
	// BytesReclaimed is the bytes freed (or, in dry-run, reclaimable).
	BytesReclaimed int64 `json:"bytes_reclaimed"`
	// SkippedQuarantined counts expired items left in place because
	// quarantined data was present.
	SkippedQuarantined int `json:"skipped_quarantined,omitempty"`
	// SkippedProtected counts expired items left in place because the
	// Protected hook claimed them (active fleet requests).
	SkippedProtected int `json:"skipped_protected,omitempty"`
}

// SweepResult summarizes one GC sweep.
type SweepResult struct {
	// Classes maps each swept class to its outcome.
	Classes map[Class]ClassResult `json:"classes"`
	// DryRun records whether the sweep deleted or only reported.
	DryRun bool `json:"dry_run,omitempty"`
	// DurationNS is the sweep's wall-clock cost.
	DurationNS int64 `json:"duration_ns"`
}

// Deleted sums deletions across classes.
func (r SweepResult) Deleted() int {
	n := 0
	for _, c := range r.Classes {
		n += c.Deleted
	}
	return n
}

// BytesReclaimed sums reclaimed bytes across classes.
func (r SweepResult) BytesReclaimed() int64 {
	var n int64
	for _, c := range r.Classes {
		n += c.BytesReclaimed
	}
	return n
}

// item is one retention candidate within a class.
type item struct {
	id     string // class-scoped identity (trace, run, run/file)
	size   int64
	mod    time.Time
	remove func() (int64, error) // deletes the item, returns bytes freed
}

// doomed is an item the policy expired, with the cap that expired it.
type doomed struct {
	item
	reason string // "age", "count" or "bytes"
}

// expire applies a ClassPolicy to a candidate set: newest first, an
// item survives unless it is over age, past the count cap, or past the
// cumulative byte cap.
func expire(items []item, p ClassPolicy, now time.Time) []doomed {
	sort.SliceStable(items, func(i, j int) bool { return items[i].mod.After(items[j].mod) })
	var out []doomed
	kept := 0
	var keptBytes int64
	for _, it := range items {
		switch {
		case p.MaxAge > 0 && now.Sub(it.mod) > p.MaxAge:
			out = append(out, doomed{item: it, reason: "age"})
		case p.MaxCount > 0 && kept >= p.MaxCount:
			out = append(out, doomed{item: it, reason: "count"})
		case p.MaxBytes > 0 && keptBytes+it.size > p.MaxBytes:
			out = append(out, doomed{item: it, reason: "bytes"})
		default:
			kept++
			keptBytes += it.size
		}
	}
	return out
}

// Sweep applies the policy once. Per-item failures are collected and
// joined into the returned error while the sweep continues — one
// unremovable file must not shield everything behind it.
func (g *GC) Sweep(now time.Time) (SweepResult, error) {
	initMetrics()
	start := time.Now()
	res := SweepResult{Classes: make(map[Class]ClassResult), DryRun: g.Policy.DryRun}
	var errs []error

	var protTraces, protRuns map[string]bool
	if g.Protected != nil {
		protTraces, protRuns = g.Protected()
	}

	if g.Traces != nil && g.Policy.Traces.Active() {
		cr, err := g.sweepTraces(now, protTraces)
		res.Classes[ClassTrace] = cr
		if err != nil {
			errs = append(errs, err)
		}
	}
	if g.ArtifactRoot != "" {
		if g.Policy.Checkpoints.Active() {
			cr, err := g.sweepRunFiles(ClassCheckpoint, g.Policy.Checkpoints, now, protRuns)
			res.Classes[ClassCheckpoint] = cr
			if err != nil {
				errs = append(errs, err)
			}
		}
		if g.Policy.ProbeCSV.Active() {
			cr, err := g.sweepRunFiles(ClassProbeCSV, g.Policy.ProbeCSV, now, protRuns)
			res.Classes[ClassProbeCSV] = cr
			if err != nil {
				errs = append(errs, err)
			}
		}
		if g.Policy.Artifacts.Active() {
			cr, err := g.sweepRunDirs(now, protRuns)
			res.Classes[ClassArtifact] = cr
			if err != nil {
				errs = append(errs, err)
			}
		}
	}
	if g.Catalog != nil && g.Policy.HistoryMaxRecords > 0 {
		cr, err := g.compactCatalog()
		res.Classes[ClassHistory] = cr
		if err != nil {
			errs = append(errs, err)
		}
	}

	res.DurationNS = time.Since(start).Nanoseconds()
	err := errors.Join(errs...)
	mSweeps.Inc()
	if err != nil {
		mSweepErrs.Inc()
	}
	g.mu.Lock()
	g.last, g.lastAt, g.lastErr = res, time.Now(), err
	g.sweeps++
	g.mu.Unlock()
	return res, err
}

// LastSweep returns the most recent sweep's result, completion time,
// error, and the total sweep count — the deep-healthz view.
func (g *GC) LastSweep() (res SweepResult, at time.Time, err error, sweeps int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.last, g.lastAt, g.lastErr, g.sweeps
}

// Run sweeps on a ticker until ctx is cancelled — the periodic GC
// goroutine swserve starts. Sweep errors are journaled, not fatal.
func (g *GC) Run(ctx context.Context, every time.Duration) {
	if every <= 0 {
		every = time.Minute
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if _, err := g.Sweep(time.Now()); err != nil {
				if jd := journal.Default(); jd.Enabled() {
					jd.Emit("", "retention.error", journal.F("error", err.Error()))
				}
			}
		}
	}
}

// reap deletes (or dry-runs) one class's doomed items, journaling every
// deletion as a retention.gc event with the bytes reclaimed. The event
// deliberately carries the item identity in an "id" field, never a
// "trace" field — the coordinator mirror files any trace-stamped
// journal event back into the trace's store file, which would resurrect
// the file this sweep just deleted.
func (g *GC) reap(class Class, victims []doomed, cr *ClassResult) error {
	jd := journal.Default()
	var errs []error
	for _, d := range victims {
		bytes := d.size
		if !g.Policy.DryRun {
			freed, err := d.remove()
			if err != nil {
				errs = append(errs, fmt.Errorf("%s %s: %w", class, d.id, err))
				continue
			}
			if freed > 0 {
				bytes = freed
			}
			mDeleted(class).Inc()
			mReclaimed(class).Add(bytes)
		}
		cr.Deleted++
		cr.BytesReclaimed += bytes
		if jd.Enabled() {
			jd.Emit("", "retention.gc",
				journal.F("class", string(class)),
				journal.F("id", d.id),
				journal.F("bytes", bytes),
				journal.F("reason", d.reason),
				journal.F("dry_run", g.Policy.DryRun))
		}
	}
	return errors.Join(errs...)
}

// sweepTraces applies the trace policy to the fleet-journal store.
func (g *GC) sweepTraces(now time.Time, protected map[string]bool) (ClassResult, error) {
	var cr ClassResult
	dir := g.Traces.Dir()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return cr, fmt.Errorf("runhistory: list traces: %w", err)
	}
	var items []item
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || strings.HasPrefix(name, ".") {
			continue
		}
		if strings.HasSuffix(name, quarantineSuffix) {
			cr.SkippedQuarantined++
			mSkippedQ.Inc()
			continue
		}
		if !strings.HasSuffix(name, ".jsonl") {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		trace := strings.TrimSuffix(name, ".jsonl")
		items = append(items, item{
			id:   trace,
			size: fi.Size(),
			mod:  fi.ModTime(),
			remove: func() (int64, error) {
				return g.Traces.Remove(trace)
			},
		})
	}
	cr.Examined = len(items)
	victims := expire(items, g.Policy.Traces, now)
	victims = dropProtected(victims, protected, &cr)
	err = g.reap(ClassTrace, victims, &cr)
	return cr, err
}

// dropProtected filters out victims whose id (or leading run segment,
// for "run/file" ids) is protected by the coordinator.
func dropProtected(victims []doomed, protected map[string]bool, cr *ClassResult) []doomed {
	if len(protected) == 0 {
		return victims
	}
	out := victims[:0]
	for _, d := range victims {
		id := d.id
		if i := strings.IndexByte(id, '/'); i > 0 {
			id = id[:i]
		}
		if protected[id] {
			cr.SkippedProtected++
			continue
		}
		out = append(out, d)
	}
	return out
}

// runDirs lists the run directories under the artifact root.
func (g *GC) runDirs() ([]os.DirEntry, error) {
	entries, err := os.ReadDir(g.ArtifactRoot)
	if err != nil {
		return nil, fmt.Errorf("runhistory: list artifact root: %w", err)
	}
	dirs := entries[:0]
	for _, e := range entries {
		if e.IsDir() && !strings.HasPrefix(e.Name(), ".") {
			dirs = append(dirs, e)
		}
	}
	return dirs, nil
}

// sweepRunFiles applies a per-run file policy: checkpoint pairs
// (ClassCheckpoint, always keeping each run's newest pair — it is the
// resume point) or probe CSVs (ClassProbeCSV). The policy's count and
// byte caps are per run, which is the operator-meaningful unit ("keep
// the last N checkpoints of every run").
func (g *GC) sweepRunFiles(class Class, p ClassPolicy, now time.Time, protected map[string]bool) (ClassResult, error) {
	var cr ClassResult
	dirs, err := g.runDirs()
	if err != nil {
		return cr, err
	}
	var errs []error
	for _, d := range dirs {
		run := d.Name()
		dir := filepath.Join(g.ArtifactRoot, run)
		var items []item
		switch class {
		case ClassCheckpoint:
			items = checkpointPairs(dir, run, &cr)
			// The newest pair is the resume point: exempt it from the
			// policy entirely so no cap can orphan a resumable run.
			if len(items) > 0 {
				sort.SliceStable(items, func(i, j int) bool { return items[i].mod.After(items[j].mod) })
				items = items[1:]
			}
		case ClassProbeCSV:
			items = runFiles(dir, run, ".csv", &cr)
		}
		cr.Examined += len(items)
		victims := expire(items, p, now)
		victims = dropProtected(victims, protected, &cr)
		if err := g.reap(class, victims, &cr); err != nil {
			errs = append(errs, err)
		}
	}
	return cr, errors.Join(errs...)
}

// runFiles lists one run directory's files with the given suffix as
// retention items (id "run/name"), counting quarantined siblings.
func runFiles(dir, run, suffix string, cr *ClassResult) []item {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var items []item
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || strings.HasPrefix(name, ".") {
			continue
		}
		if strings.HasSuffix(name, quarantineSuffix) {
			cr.SkippedQuarantined++
			mSkippedQ.Inc()
			continue
		}
		if !strings.HasSuffix(name, suffix) {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		path := filepath.Join(dir, name)
		items = append(items, item{
			id:   run + "/" + name,
			size: fi.Size(),
			mod:  fi.ModTime(),
			remove: func() (int64, error) {
				size := fi.Size()
				if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
					return 0, err
				}
				return size, nil
			},
		})
	}
	return items
}

// checkpointPairs groups one run's ck-*.json manifests with their OVF
// payloads into paired retention items (id "run/stem"). The manifest is
// deleted before the payload — the inverse of the save commit order —
// so a reader never observes a manifest whose payload is gone.
func checkpointPairs(dir, run string, cr *ClassResult) []item {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var items []item
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || strings.HasPrefix(name, ".") {
			continue
		}
		if strings.HasSuffix(name, quarantineSuffix) {
			cr.SkippedQuarantined++
			mSkippedQ.Inc()
			continue
		}
		if !strings.HasPrefix(name, "ck-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		stem := strings.TrimSuffix(name, ".json")
		manifest := filepath.Join(dir, name)
		payload := filepath.Join(dir, stem+".ovf")
		size := fi.Size()
		mod := fi.ModTime()
		if pfi, err := os.Stat(payload); err == nil {
			size += pfi.Size()
			if pfi.ModTime().After(mod) {
				mod = pfi.ModTime()
			}
		}
		items = append(items, item{
			id:   run + "/" + stem,
			size: size,
			mod:  mod,
			remove: func() (int64, error) {
				if err := os.Remove(manifest); err != nil && !os.IsNotExist(err) {
					return 0, err
				}
				if err := os.Remove(payload); err != nil && !os.IsNotExist(err) {
					return 0, err
				}
				return size, nil
			},
		})
	}
	return items
}

// sweepRunDirs applies the artifact policy to whole run directories. A
// directory holding any quarantined file is never deleted — quarantine
// means "an operator should look at this", and retention must not be
// the thing that makes it vanish.
func (g *GC) sweepRunDirs(now time.Time, protected map[string]bool) (ClassResult, error) {
	var cr ClassResult
	dirs, err := g.runDirs()
	if err != nil {
		return cr, err
	}
	var items []item
	for _, d := range dirs {
		run := d.Name()
		dir := filepath.Join(g.ArtifactRoot, run)
		size, mod, quarantined := dirStats(dir)
		if quarantined {
			cr.SkippedQuarantined++
			mSkippedQ.Inc()
			continue
		}
		items = append(items, item{
			id:   run,
			size: size,
			mod:  mod,
			remove: func() (int64, error) {
				if err := os.RemoveAll(dir); err != nil {
					return 0, err
				}
				return size, nil
			},
		})
	}
	cr.Examined = len(items)
	victims := expire(items, g.Policy.Artifacts, now)
	victims = dropProtected(victims, protected, &cr)
	err = g.reap(ClassArtifact, victims, &cr)
	return cr, err
}

// dirStats walks one run directory: total bytes, newest content mtime
// (so a run still being written to never looks expired), and whether
// any quarantined file is present.
func dirStats(dir string) (size int64, mod time.Time, quarantined bool) {
	if fi, err := os.Stat(dir); err == nil {
		mod = fi.ModTime()
	}
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if strings.HasSuffix(d.Name(), quarantineSuffix) {
			quarantined = true
		}
		if fi, err := d.Info(); err == nil {
			size += fi.Size()
			if fi.ModTime().After(mod) {
				mod = fi.ModTime()
			}
		}
		return nil
	})
	return size, mod, quarantined
}

// compactCatalog shrinks the catalog to the record cap, journaling the
// compaction as a retention.gc event on the history class.
func (g *GC) compactCatalog() (ClassResult, error) {
	var cr ClassResult
	cr.Examined = g.Catalog.Len()
	if g.Policy.DryRun {
		if over := cr.Examined - g.Policy.HistoryMaxRecords; over > 0 {
			cr.Deleted = over
			if jd := journal.Default(); jd.Enabled() {
				jd.Emit("", "retention.gc",
					journal.F("class", string(ClassHistory)),
					journal.F("id", CatalogFile),
					journal.F("bytes", int64(0)),
					journal.F("reason", "count"),
					journal.F("dry_run", true))
			}
		}
		return cr, nil
	}
	removed, bytes, err := g.Catalog.Compact(g.Policy.HistoryMaxRecords)
	if err != nil {
		return cr, err
	}
	if removed > 0 {
		cr.Deleted = removed
		cr.BytesReclaimed = bytes
		mDeleted(ClassHistory).Add(int64(removed))
		mReclaimed(ClassHistory).Add(bytes)
		if jd := journal.Default(); jd.Enabled() {
			jd.Emit("", "retention.gc",
				journal.F("class", string(ClassHistory)),
				journal.F("id", CatalogFile),
				journal.F("bytes", bytes),
				journal.F("reason", "count"),
				journal.F("dry_run", false))
		}
	}
	return cr, nil
}

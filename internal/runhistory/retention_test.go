package runhistory

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"spinwave/internal/journal"
	"spinwave/internal/obsplane"
)

// mkfile writes size bytes at path with the given age before now.
func mkfile(t *testing.T, path string, size int, age time.Duration) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, make([]byte, size), 0o644); err != nil {
		t.Fatal(err)
	}
	mod := time.Now().Add(-age)
	if err := os.Chtimes(path, mod, mod); err != nil {
		t.Fatal(err)
	}
}

// seedTrace appends one event to a trace and back-dates its file.
func seedTrace(t *testing.T, st *obsplane.Store, trace string, age time.Duration) {
	t.Helper()
	_, err := st.Append(trace, "w1", []journal.Event{{Seq: 1, TimeNS: 100, Name: "fleet.claim"}})
	if err != nil {
		t.Fatal(err)
	}
	mod := time.Now().Add(-age)
	if err := os.Chtimes(filepath.Join(st.Dir(), trace+".jsonl"), mod, mod); err != nil {
		t.Fatal(err)
	}
}

func gcEvents(ring *journal.RingSink) []journal.Event {
	var out []journal.Event
	for _, e := range ring.Events() {
		if e.Name == "retention.gc" {
			out = append(out, e)
		}
	}
	return out
}

func TestSweepTracesCountCap(t *testing.T) {
	st, err := obsplane.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	seedTrace(t, st, "t1", 3*time.Hour)
	seedTrace(t, st, "t2", 2*time.Hour)
	seedTrace(t, st, "t3", time.Hour)
	ring := journal.NewRingSink(32)
	defer journal.Default().Attach(ring)()

	g := &GC{Policy: Policy{Traces: ClassPolicy{MaxCount: 1}}, Traces: st}
	res, err := g.Sweep(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	cr := res.Classes[ClassTrace]
	if cr.Examined != 3 || cr.Deleted != 2 || cr.BytesReclaimed <= 0 {
		t.Fatalf("trace sweep = %+v", cr)
	}
	traces, _ := st.Traces()
	if len(traces) != 1 || traces[0] != "t3" {
		t.Fatalf("surviving traces = %v, want [t3]", traces)
	}

	evs := gcEvents(ring)
	if len(evs) != 2 {
		t.Fatalf("retention.gc events = %d, want 2", len(evs))
	}
	for _, e := range evs {
		if e.Fields["class"] != string(ClassTrace) || e.Fields["reason"] != "count" {
			t.Fatalf("bad gc event: %+v", e.Fields)
		}
		if b, ok := e.Fields["bytes"].(int64); !ok || b <= 0 {
			t.Fatalf("gc event bytes = %v", e.Fields["bytes"])
		}
		// A trace field here would make the coordinator mirror re-file
		// the event into the store, resurrecting the deleted trace.
		if _, has := e.Fields["trace"]; has {
			t.Fatal("retention.gc must not carry a trace field")
		}
	}
}

func TestSweepTracesAgeAndProtection(t *testing.T) {
	st, err := obsplane.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	seedTrace(t, st, "t1", 3*time.Hour) // expired
	seedTrace(t, st, "t2", 3*time.Hour) // expired but protected (active request)
	seedTrace(t, st, "t3", time.Minute) // fresh

	g := &GC{
		Policy: Policy{Traces: ClassPolicy{MaxAge: time.Hour}},
		Traces: st,
		Protected: func() (map[string]bool, map[string]bool) {
			return map[string]bool{"t2": true}, nil
		},
	}
	res, err := g.Sweep(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	cr := res.Classes[ClassTrace]
	if cr.Deleted != 1 || cr.SkippedProtected != 1 {
		t.Fatalf("trace sweep = %+v", cr)
	}
	traces, _ := st.Traces()
	if len(traces) != 2 {
		t.Fatalf("surviving traces = %v, want t2+t3", traces)
	}
}

func TestSweepQuarantinedNeverDeleted(t *testing.T) {
	dir := t.TempDir()
	st, err := obsplane.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mkfile(t, filepath.Join(dir, "t9.jsonl.quarantined"), 64, 100*time.Hour)
	seedTrace(t, st, "t1", 100*time.Hour)

	g := &GC{Policy: Policy{Traces: ClassPolicy{MaxAge: time.Hour}}, Traces: st}
	res, err := g.Sweep(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	cr := res.Classes[ClassTrace]
	if cr.SkippedQuarantined != 1 || cr.Deleted != 1 {
		t.Fatalf("trace sweep = %+v", cr)
	}
	if _, err := os.Stat(filepath.Join(dir, "t9.jsonl.quarantined")); err != nil {
		t.Fatal("quarantined file was deleted by retention")
	}
}

func TestSweepCheckpointsKeepNewestPair(t *testing.T) {
	root := t.TempDir()
	run := filepath.Join(root, "r1")
	for i, age := range []time.Duration{3 * time.Hour, 2 * time.Hour, time.Hour} {
		stem := filepath.Join(run, "ck-"+string(rune('1'+i)))
		mkfile(t, stem+".json", 100, age)
		mkfile(t, stem+".ovf", 1000, age)
	}
	g := &GC{
		Policy:       Policy{Checkpoints: ClassPolicy{MaxAge: time.Minute}},
		ArtifactRoot: root,
	}
	res, err := g.Sweep(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	cr := res.Classes[ClassCheckpoint]
	// Every pair is over-age, but the newest (ck-3) is the resume point
	// and must survive any policy.
	if cr.Deleted != 2 {
		t.Fatalf("checkpoint sweep = %+v, want 2 deleted", cr)
	}
	if cr.BytesReclaimed != 2200 {
		t.Fatalf("reclaimed %d bytes, want 2200 (two json+ovf pairs)", cr.BytesReclaimed)
	}
	for _, stem := range []string{"ck-1", "ck-2"} {
		if _, err := os.Stat(filepath.Join(run, stem+".json")); err == nil {
			t.Fatalf("%s.json survived", stem)
		}
		if _, err := os.Stat(filepath.Join(run, stem+".ovf")); err == nil {
			t.Fatalf("%s.ovf survived", stem)
		}
	}
	if _, err := os.Stat(filepath.Join(run, "ck-3.ovf")); err != nil {
		t.Fatal("newest pair deleted — resume point lost")
	}
}

func TestSweepProbeCSVAge(t *testing.T) {
	root := t.TempDir()
	mkfile(t, filepath.Join(root, "r1", "probes.csv"), 500, 2*time.Hour)
	mkfile(t, filepath.Join(root, "r2", "probes.csv"), 500, time.Minute)
	g := &GC{
		Policy:       Policy{ProbeCSV: ClassPolicy{MaxAge: time.Hour}},
		ArtifactRoot: root,
	}
	res, err := g.Sweep(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	cr := res.Classes[ClassProbeCSV]
	if cr.Deleted != 1 || cr.BytesReclaimed != 500 {
		t.Fatalf("probe sweep = %+v", cr)
	}
	if _, err := os.Stat(filepath.Join(root, "r2", "probes.csv")); err != nil {
		t.Fatal("fresh probe CSV deleted")
	}
}

func TestSweepArtifactDirsByteCap(t *testing.T) {
	root := t.TempDir()
	mkfile(t, filepath.Join(root, "r-old", "ck-1.ovf"), 4000, 2*time.Hour)
	mkfile(t, filepath.Join(root, "r-new", "ck-1.ovf"), 4000, time.Minute)
	g := &GC{
		Policy:       Policy{Artifacts: ClassPolicy{MaxBytes: 5000}},
		ArtifactRoot: root,
	}
	res, err := g.Sweep(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	cr := res.Classes[ClassArtifact]
	if cr.Deleted != 1 || cr.BytesReclaimed != 4000 {
		t.Fatalf("artifact sweep = %+v", cr)
	}
	if _, err := os.Stat(filepath.Join(root, "r-old")); err == nil {
		t.Fatal("oldest run dir survived the byte cap")
	}
	if _, err := os.Stat(filepath.Join(root, "r-new", "ck-1.ovf")); err != nil {
		t.Fatal("newest run dir deleted")
	}
}

func TestSweepArtifactDirQuarantineBlocksRemoval(t *testing.T) {
	root := t.TempDir()
	mkfile(t, filepath.Join(root, "r1", "ck-1.ovf"), 100, 10*time.Hour)
	mkfile(t, filepath.Join(root, "r1", "ck-0.json.quarantined"), 10, 10*time.Hour)
	g := &GC{
		Policy:       Policy{Artifacts: ClassPolicy{MaxAge: time.Hour}},
		ArtifactRoot: root,
	}
	res, err := g.Sweep(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	cr := res.Classes[ClassArtifact]
	if cr.Deleted != 0 || cr.SkippedQuarantined != 1 {
		t.Fatalf("artifact sweep = %+v", cr)
	}
	if _, err := os.Stat(filepath.Join(root, "r1")); err != nil {
		t.Fatal("run dir with quarantined data was deleted")
	}
}

func TestSweepDryRun(t *testing.T) {
	st, err := obsplane.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	seedTrace(t, st, "t1", 3*time.Hour)
	ring := journal.NewRingSink(16)
	defer journal.Default().Attach(ring)()

	g := &GC{
		Policy: Policy{Traces: ClassPolicy{MaxAge: time.Hour}, DryRun: true},
		Traces: st,
	}
	res, err := g.Sweep(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if !res.DryRun || res.Deleted() != 1 || res.BytesReclaimed() <= 0 {
		t.Fatalf("dry-run result = %+v", res)
	}
	if traces, _ := st.Traces(); len(traces) != 1 {
		t.Fatal("dry run deleted a trace")
	}
	evs := gcEvents(ring)
	if len(evs) != 1 || evs[0].Fields["dry_run"] != true {
		t.Fatalf("dry-run gc events = %+v", evs)
	}
}

func TestSweepCompactsCatalog(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		c.Append(Record{ID: "r" + string(rune('0'+i)), Kind: "eval", IndexedNS: int64(i + 1)})
	}
	ring := journal.NewRingSink(16)
	defer journal.Default().Attach(ring)()

	g := &GC{Policy: Policy{HistoryMaxRecords: 2}, Catalog: c}
	res, err := g.Sweep(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	cr := res.Classes[ClassHistory]
	if cr.Deleted != 4 || cr.BytesReclaimed <= 0 {
		t.Fatalf("catalog compaction = %+v", cr)
	}
	if c.Len() != 2 {
		t.Fatalf("catalog Len = %d after compaction, want 2", c.Len())
	}
	if evs := gcEvents(ring); len(evs) != 1 || evs[0].Fields["class"] != string(ClassHistory) {
		t.Fatalf("compaction gc events = %+v", evs)
	}
}

func TestSweepRunPeriodic(t *testing.T) {
	st, err := obsplane.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	seedTrace(t, st, "t1", 3*time.Hour)
	g := &GC{Policy: Policy{Traces: ClassPolicy{MaxAge: time.Hour}}, Traces: st}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	done := make(chan struct{})
	go func() { g.Run(ctx, 10*time.Millisecond); close(done) }()

	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, at, _, n := g.LastSweep(); n > 0 && !at.IsZero() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic sweeper never swept")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if traces, _ := st.Traces(); len(traces) != 0 {
		t.Fatal("periodic sweep did not delete the expired trace")
	}
	cancel()
	<-done
}

// Package runhistory is the durable run-history index and the
// retention/compaction engine behind it (DESIGN.md §17).
//
// The catalog indexes every completed run and fleet request into one
// compact JSONL record: run/request ID, fleet trace, gate, backend
// fingerprint, inputs label, source tier, health verdict, wall-clock
// and step counts, and pointers (with sizes) to the files the run left
// behind — fleet-journal traces, checkpoints, run artifacts, probe
// CSVs. Appends are single buffered writes to an append-only file, so
// a crash tears at most the final line, which reads tolerate; records
// are idempotent per ID, so a retried indexing call never duplicates.
//
// The retention engine sweeps the observability data those records
// point at under per-class age/count/byte policies, deleting (or, for
// the catalog itself, compacting in the DiskStore atomic-rename idiom)
// expired data. Every deletion is journaled as a `retention.gc` event
// with the bytes reclaimed; dry-run mode journals without deleting;
// quarantined files (".quarantined" suffix) are never silently dropped
// — they block deletion and are counted for the operator. The paired
// `history.indexed` event records every catalog append, so the journal
// itself tells the story of what was remembered and what was let go.
package runhistory

// Record is one catalog line: the post-mortem summary of a completed
// run or fleet request, written at the moment it completes.
type Record struct {
	// ID is the run or request ID the record indexes. Appends are
	// idempotent per ID.
	ID string `json:"id"`
	// Kind classifies the record: "eval" (one served case), "table"
	// (one served truth table), "fleet" (one completed fleet request),
	// or "sim" (one offline swsim run).
	Kind string `json:"kind"`
	// Trace is the fleet trace ID correlating the record with the
	// observability plane (empty for untraced local runs).
	Trace string `json:"trace,omitempty"`
	// Gate names the logic gate evaluated (xor, maj3, ...).
	Gate string `json:"gate,omitempty"`
	// Backend names the solver (behavioral, micromag).
	Backend string `json:"backend,omitempty"`
	// Fingerprint is the canonical backend fingerprint the results were
	// keyed under (empty for unfingerprintable backends).
	Fingerprint string `json:"fingerprint,omitempty"`
	// Inputs is the "10"-style bit label of the evaluated case (empty
	// for tables and multi-case requests).
	Inputs string `json:"inputs,omitempty"`
	// Tier is the result-store tier that answered: cache, disk,
	// surrogate, micromag, behavioral — or "mixed" for requests whose
	// cases were answered by different tiers.
	Tier string `json:"tier,omitempty"`
	// Verdict is the run's health verdict (healthy/degraded/violated)
	// when the health monitor ran; empty when unknown.
	Verdict string `json:"verdict,omitempty"`
	// Cases is how many input cases the run covered.
	Cases int `json:"cases,omitempty"`
	// Steps is the solver step count, when known (micromag transients).
	Steps int64 `json:"steps,omitempty"`
	// WallNS is the wall-clock cost in nanoseconds, when known.
	WallNS int64 `json:"wall_ns,omitempty"`
	// IndexedNS is the Unix-nanosecond time the record was appended.
	IndexedNS int64 `json:"indexed_ns"`
	// Files points at the observability data the run left behind, with
	// sizes — the bytes the retention engine will eventually reclaim.
	Files []FileRef `json:"files,omitempty"`
}

// FileRef is one pointer from a record to a file the run left behind.
type FileRef struct {
	// Class is the retention class the file belongs to.
	Class Class `json:"class"`
	// Path is the file path (relative to its store root when stored).
	Path string `json:"path"`
	// Size is the file size in bytes at indexing time.
	Size int64 `json:"size"`
}

// Class names one retention class: a family of on-disk observability
// data swept under its own policy.
type Class string

// Retention classes.
const (
	// ClassTrace is the per-trace fleet-journal files of the
	// observability plane (obsplane.Store).
	ClassTrace Class = "fleet-journal"
	// ClassCheckpoint is the checkpoint pairs (ck-*.json + ck-*.ovf)
	// under run-artifact directories.
	ClassCheckpoint Class = "checkpoint"
	// ClassProbeCSV is the probe time-series CSVs under run-artifact
	// directories.
	ClassProbeCSV Class = "probe-csv"
	// ClassArtifact is whole run-artifact directories (everything a run
	// uploaded).
	ClassArtifact Class = "artifact"
	// ClassHistory is the catalog itself, compacted (not deleted) when
	// it exceeds its record cap.
	ClassHistory Class = "history"
)

// InputsLabel renders an input case as the "10"-style bit label used in
// records and result keys.
func InputsLabel(inputs []bool) string {
	bits := make([]byte, len(inputs))
	for i, v := range inputs {
		if v {
			bits[i] = '1'
		} else {
			bits[i] = '0'
		}
	}
	return string(bits)
}

package runhistory

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spinwave/internal/journal"
)

func TestCatalogAppendQuery(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{ID: "r1", Kind: "eval", Gate: "xor", Tier: "micromag", Verdict: "healthy", IndexedNS: 100},
		{ID: "r2", Kind: "eval", Gate: "maj3", Tier: "surrogate", IndexedNS: 200},
		{ID: "q1", Kind: "fleet", Gate: "xor", Trace: "t1", Tier: "mixed", IndexedNS: 300},
	}
	if n, err := c.Append(recs...); err != nil || n != 3 {
		t.Fatalf("Append = %d, %v; want 3, nil", n, err)
	}
	all, err := c.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || all[0].ID != "q1" || all[2].ID != "r1" {
		t.Fatalf("Records not newest-first: %+v", all)
	}

	for _, tc := range []struct {
		f    Filter
		want []string
	}{
		{Filter{Gate: "xor"}, []string{"q1", "r1"}},
		{Filter{Kind: "fleet"}, []string{"q1"}},
		{Filter{Trace: "t1"}, []string{"q1"}},
		{Filter{Tier: "surrogate"}, []string{"r2"}},
		{Filter{Verdict: "healthy"}, []string{"r1"}},
		{Filter{SinceNS: 200}, []string{"q1", "r2"}},
		{Filter{Gate: "xor", Limit: 1}, []string{"q1"}},
		{Filter{Gate: "nand"}, nil},
	} {
		got, err := c.Query(tc.f)
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]string, len(got))
		for i, r := range got {
			ids[i] = r.ID
		}
		if strings.Join(ids, ",") != strings.Join(tc.want, ",") {
			t.Errorf("Query(%+v) = %v, want %v", tc.f, ids, tc.want)
		}
	}
}

func TestCatalogDedupAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := c.Append(Record{ID: "r1", Kind: "eval"}); n != 1 {
		t.Fatalf("first append = %d, want 1", n)
	}
	if n, _ := c.Append(Record{ID: "r1", Kind: "eval"}); n != 0 {
		t.Fatalf("duplicate append = %d, want 0", n)
	}
	if c.Duplicates() != 1 {
		t.Fatalf("Duplicates = %d, want 1", c.Duplicates())
	}
	// A reopened catalog rebuilds the dedup set from disk.
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := c2.Append(Record{ID: "r1", Kind: "eval"}); n != 0 {
		t.Fatal("reopen forgot an indexed ID")
	}
	if c2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c2.Len())
	}
}

func TestCatalogTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Append(Record{ID: "r1", Kind: "eval"}, Record{ID: "r2", Kind: "eval"})
	// Simulate a crash mid-append: a torn, unparseable final line.
	f, err := os.OpenFile(c.Path(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"id":"r3","ki`)
	f.Close()

	c2, err := Open(dir)
	if err != nil {
		t.Fatalf("torn tail failed the open: %v", err)
	}
	recs, err := c2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records across a torn tail, want 2", len(recs))
	}
	// The torn ID was never committed, so indexing it again must work.
	if n, _ := c2.Append(Record{ID: "r3", Kind: "eval"}); n != 1 {
		t.Fatal("torn record could not be re-indexed")
	}
}

func TestCatalogCompact(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.Append(Record{ID: "r" + string(rune('0'+i)), Kind: "eval", IndexedNS: int64(i + 1)})
	}
	before, _ := os.Stat(c.Path())
	removed, bytes, err := c.Compact(3)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 7 {
		t.Fatalf("removed = %d, want 7", removed)
	}
	after, _ := os.Stat(c.Path())
	if bytes <= 0 || after.Size() >= before.Size() {
		t.Fatalf("compact reclaimed %d bytes (file %d → %d)", bytes, before.Size(), after.Size())
	}
	recs, _ := c.Records()
	if len(recs) != 3 || recs[0].ID != "r9" || recs[2].ID != "r7" {
		t.Fatalf("compact kept wrong records: %+v", recs)
	}
	// Compacted-away IDs may be re-indexed; kept IDs stay deduped.
	if n, _ := c.Append(Record{ID: "r0", Kind: "eval"}); n != 1 {
		t.Fatal("compacted-away ID still deduped")
	}
	if n, _ := c.Append(Record{ID: "r9", Kind: "eval"}); n != 0 {
		t.Fatal("kept ID lost from dedup set")
	}
	// Under the cap: no-op.
	if removed, _, _ := c.Compact(100); removed != 0 {
		t.Fatalf("no-op compact removed %d", removed)
	}
	// No temp litter.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".") {
			t.Fatalf("compact left temp file %s", e.Name())
		}
	}
}

func TestCatalogWritableProbe(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WritableProbe(); err != nil {
		t.Fatalf("probe on writable dir: %v", err)
	}
	// A vanished catalog directory must fail the probe — this is the
	// deep-healthz 503 trigger.
	os.RemoveAll(dir)
	if err := c.WritableProbe(); err == nil {
		t.Fatal("probe passed on a missing directory")
	}
}

func TestCatalogJournalsHistoryIndexed(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ring := journal.NewRingSink(16)
	defer journal.Default().Attach(ring)()
	c.Append(Record{ID: "q1", Kind: "fleet", Trace: "t1", Gate: "xor", Cases: 4,
		Files: []FileRef{{Class: ClassTrace, Path: "t1.jsonl", Size: 512}}})

	var found bool
	for _, e := range ring.Events() {
		if e.Name != "history.indexed" {
			continue
		}
		found = true
		if e.Fields["id"] != "q1" || e.Fields["kind"] != "fleet" {
			t.Fatalf("history.indexed missing id/kind: %+v", e.Fields)
		}
		if e.Fields["trace"] != "t1" {
			t.Fatalf("history.indexed missing trace stamp: %+v", e.Fields)
		}
	}
	if !found {
		t.Fatal("no history.indexed event emitted")
	}
}

func TestInputsLabel(t *testing.T) {
	if got := InputsLabel([]bool{true, false}); got != "10" {
		t.Fatalf("InputsLabel = %q, want 10", got)
	}
	if got := InputsLabel(nil); got != "" {
		t.Fatalf("InputsLabel(nil) = %q, want empty", got)
	}
}

func TestCatalogAppendRollbackOnDiskError(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Replace the catalog path with a directory so the append fails at
	// the disk layer.
	if err := os.Mkdir(filepath.Join(dir, CatalogFile), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append(Record{ID: "r1", Kind: "eval"}); err == nil {
		t.Fatal("append into a directory succeeded")
	}
	// The failed ID must not be poisoned in the dedup set.
	os.RemoveAll(filepath.Join(dir, CatalogFile))
	if n, err := c.Append(Record{ID: "r1", Kind: "eval"}); err != nil || n != 1 {
		t.Fatalf("retry after disk error = %d, %v; want 1, nil", n, err)
	}
}

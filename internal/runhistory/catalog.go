package runhistory

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"spinwave/internal/journal"
)

// CatalogFile is the name of the JSONL catalog inside its directory.
const CatalogFile = "catalog.jsonl"

// Catalog is the durable run-history index: an append-only JSONL file
// of Records, idempotent per record ID, tolerant of a torn final line
// after a crash. All methods are safe for concurrent use.
type Catalog struct {
	dir  string
	path string

	mu   sync.Mutex
	seen map[string]bool
	dups int64
}

// Open opens (creating if needed) the catalog in dir and scans any
// existing file to rebuild the per-ID dedup set. A torn final line —
// the signature of a crash mid-append — is skipped, never an error.
func Open(dir string) (*Catalog, error) {
	if dir == "" {
		return nil, fmt.Errorf("runhistory: empty catalog dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runhistory: open catalog: %w", err)
	}
	initMetrics()
	c := &Catalog{
		dir:  dir,
		path: filepath.Join(dir, CatalogFile),
		seen: make(map[string]bool),
	}
	recs, err := c.load()
	if err != nil {
		return nil, err
	}
	for _, r := range recs {
		c.seen[r.ID] = true
	}
	return c, nil
}

// Dir returns the catalog directory.
func (c *Catalog) Dir() string { return c.dir }

// Path returns the catalog file path.
func (c *Catalog) Path() string { return c.path }

// Len returns the number of distinct records indexed.
func (c *Catalog) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.seen)
}

// Duplicates returns how many appends were dropped as duplicate IDs.
func (c *Catalog) Duplicates() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dups
}

// Append indexes the given records, dropping any whose ID was already
// indexed (counted, not an error), stamping IndexedNS when unset, and
// writing all accepted records in one buffered O_APPEND write so a
// crash tears at most the final line. Each accepted record is
// journaled as a history.indexed event. Returns how many records were
// accepted.
func (c *Catalog) Append(recs ...Record) (int, error) {
	now := time.Now().UnixNano()
	var buf bytes.Buffer
	accepted := make([]Record, 0, len(recs))

	c.mu.Lock()
	for _, r := range recs {
		if r.ID == "" || r.Kind == "" {
			c.mu.Unlock()
			return 0, fmt.Errorf("runhistory: record needs id and kind")
		}
		if c.seen[r.ID] {
			c.dups++
			mDuplicates.Inc()
			continue
		}
		if r.IndexedNS == 0 {
			r.IndexedNS = now
		}
		line, err := json.Marshal(r)
		if err != nil {
			c.mu.Unlock()
			return 0, fmt.Errorf("runhistory: marshal record: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
		c.seen[r.ID] = true
		accepted = append(accepted, r)
	}
	if len(accepted) == 0 {
		c.mu.Unlock()
		return 0, nil
	}
	err := c.appendLocked(buf.Bytes())
	if err != nil {
		// Roll the dedup set back so a retry after a transient disk
		// error is not silently swallowed as a duplicate.
		for _, r := range accepted {
			delete(c.seen, r.ID)
		}
	}
	c.mu.Unlock()
	if err != nil {
		mErrors.Inc()
		return 0, err
	}

	for _, r := range accepted {
		mIndexed(r.Kind).Inc()
	}
	if jd := journal.Default(); jd.Enabled() {
		for _, r := range accepted {
			fields := []journal.Field{
				journal.F("id", r.ID),
				journal.F("kind", r.Kind),
			}
			if r.Trace != "" {
				fields = append(fields, journal.F("trace", r.Trace))
			}
			if r.Gate != "" {
				fields = append(fields, journal.F("gate", r.Gate))
			}
			if r.Tier != "" {
				fields = append(fields, journal.F("tier", r.Tier))
			}
			if r.Cases > 0 {
				fields = append(fields, journal.F("cases", r.Cases))
			}
			if n := len(r.Files); n > 0 {
				fields = append(fields, journal.F("files", n))
			}
			jd.Emit("", "history.indexed", fields...)
		}
	}
	return len(accepted), nil
}

func (c *Catalog) appendLocked(data []byte) error {
	f, err := os.OpenFile(c.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("runhistory: append: %w", err)
	}
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("runhistory: append: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("runhistory: append: %w", cerr)
	}
	return nil
}

// load reads every parseable record from the catalog file. Unparseable
// lines (a torn tail, a partial write) are skipped.
func (c *Catalog) load() ([]Record, error) {
	f, err := os.Open(c.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("runhistory: read catalog: %w", err)
	}
	defer f.Close()
	var recs []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil || r.ID == "" {
			continue
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("runhistory: read catalog: %w", err)
	}
	return recs, nil
}

// Records returns every indexed record, newest first by IndexedNS.
func (c *Catalog) Records() ([]Record, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	recs, err := c.load()
	if err != nil {
		return nil, err
	}
	sort.SliceStable(recs, func(i, j int) bool {
		return recs[i].IndexedNS > recs[j].IndexedNS
	})
	return recs, nil
}

// Filter selects records in a Query. Zero-valued fields match
// everything.
type Filter struct {
	// Gate matches Record.Gate exactly.
	Gate string
	// Verdict matches Record.Verdict exactly.
	Verdict string
	// Trace matches Record.Trace exactly.
	Trace string
	// Tier matches Record.Tier exactly.
	Tier string
	// Kind matches Record.Kind exactly.
	Kind string
	// SinceNS keeps records indexed at or after this Unix-nanosecond
	// time.
	SinceNS int64
	// Limit caps the result count (0 = unlimited), applied after the
	// newest-first sort.
	Limit int
}

func (f Filter) matches(r Record) bool {
	if f.Gate != "" && r.Gate != f.Gate {
		return false
	}
	if f.Verdict != "" && r.Verdict != f.Verdict {
		return false
	}
	if f.Trace != "" && r.Trace != f.Trace {
		return false
	}
	if f.Tier != "" && r.Tier != f.Tier {
		return false
	}
	if f.Kind != "" && r.Kind != f.Kind {
		return false
	}
	if f.SinceNS > 0 && r.IndexedNS < f.SinceNS {
		return false
	}
	return true
}

// Query returns the records matching f, newest first.
func (c *Catalog) Query(f Filter) ([]Record, error) {
	recs, err := c.Records()
	if err != nil {
		return nil, err
	}
	out := recs[:0]
	for _, r := range recs {
		if f.matches(r) {
			out = append(out, r)
		}
	}
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[:f.Limit]
	}
	return out, nil
}

// Compact rewrites the catalog keeping only the newest maxRecords
// records (by IndexedNS), using a same-directory temp file committed by
// atomic rename so readers never observe a partial catalog. Returns how
// many records were dropped and how many bytes the file shrank by. A
// maxRecords of zero or a catalog already within the cap is a no-op.
func (c *Catalog) Compact(maxRecords int) (removed int, bytes int64, err error) {
	if maxRecords <= 0 {
		return 0, 0, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	recs, err := c.load()
	if err != nil {
		return 0, 0, err
	}
	if len(recs) <= maxRecords {
		return 0, 0, nil
	}
	var before int64
	if fi, err := os.Stat(c.path); err == nil {
		before = fi.Size()
	}
	sort.SliceStable(recs, func(i, j int) bool {
		return recs[i].IndexedNS > recs[j].IndexedNS
	})
	keep := recs[:maxRecords]
	removed = len(recs) - maxRecords

	tmp, err := os.CreateTemp(c.dir, ".compact-*.tmp")
	if err != nil {
		return 0, 0, fmt.Errorf("runhistory: compact: %w", err)
	}
	tmpName := tmp.Name()
	w := bufio.NewWriter(tmp)
	// Rewrite oldest-first so the on-disk order stays append order.
	for i := len(keep) - 1; i >= 0; i-- {
		line, merr := json.Marshal(keep[i])
		if merr != nil {
			tmp.Close()
			os.Remove(tmpName)
			return 0, 0, fmt.Errorf("runhistory: compact: %w", merr)
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return 0, 0, fmt.Errorf("runhistory: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return 0, 0, fmt.Errorf("runhistory: compact: %w", err)
	}
	if err := os.Rename(tmpName, c.path); err != nil {
		os.Remove(tmpName)
		return 0, 0, fmt.Errorf("runhistory: compact: %w", err)
	}

	c.seen = make(map[string]bool, len(keep))
	for _, r := range keep {
		c.seen[r.ID] = true
	}
	var after int64
	if fi, err := os.Stat(c.path); err == nil {
		after = fi.Size()
	}
	if bytes = before - after; bytes < 0 {
		bytes = 0
	}
	return removed, bytes, nil
}

// WritableProbe verifies the catalog directory accepts writes — the
// deep-healthz check backing the "catalog unwritable → 503" rule. It
// creates and removes a probe file without touching the catalog.
func (c *Catalog) WritableProbe() error {
	f, err := os.CreateTemp(c.dir, ".probe-*.tmp")
	if err != nil {
		return fmt.Errorf("runhistory: catalog not writable: %w", err)
	}
	name := f.Name()
	_, werr := f.WriteString("probe")
	cerr := f.Close()
	os.Remove(name)
	if werr != nil {
		return fmt.Errorf("runhistory: catalog not writable: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("runhistory: catalog not writable: %w", cerr)
	}
	return nil
}

package runhistory

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// BenchmarkCatalogAppend measures the per-record indexing cost on the
// serving path (one durable JSONL append + the in-memory index).
func BenchmarkCatalogAppend(b *testing.B) {
	cat, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	rec := Record{
		Kind: "eval", Gate: "xor", Backend: "behavioral",
		Inputs: "10", Tier: "micromag", Verdict: "healthy", Cases: 1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.ID = fmt.Sprintf("r%08d", i)
		if _, err := cat.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSteadyState measures one GC sweep over an artifact
// store with nothing to reclaim — the cost every idle cadence pays.
func BenchmarkSweepSteadyState(b *testing.B) {
	root := b.TempDir()
	for r := 0; r < 20; r++ {
		dir := filepath.Join(root, fmt.Sprintf("run-%02d", r))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			b.Fatal(err)
		}
		for f := 0; f < 5; f++ {
			name := filepath.Join(dir, fmt.Sprintf("ck-%06d.json", f))
			if err := os.WriteFile(name, []byte(`{"step":1}`), 0o644); err != nil {
				b.Fatal(err)
			}
		}
	}
	gc := &GC{
		Policy: Policy{
			Checkpoints: ClassPolicy{MaxCount: 10},
			Artifacts:   ClassPolicy{MaxCount: 100},
		},
		ArtifactRoot: root,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gc.Sweep(time.Now()); err != nil {
			b.Fatal(err)
		}
	}
}

package runhistory

import (
	"sync"

	"spinwave/internal/obs"
)

// Process-wide history/retention metrics in the obs default registry,
// registered lazily on first catalog or sweeper use so an importing
// program that never indexes exports nothing.
var (
	metricsOnce sync.Once

	mDuplicates *obs.Counter
	mErrors     *obs.Counter
	mSweeps     *obs.Counter
	mSweepErrs  *obs.Counter
	mSkippedQ   *obs.Counter
)

func initMetrics() {
	metricsOnce.Do(func() {
		r := obs.Default()
		r.Describe("spinwave_history_indexed_total", "catalog records accepted, by record kind")
		r.Describe("spinwave_history_duplicates_total", "catalog appends dropped as duplicate IDs")
		mDuplicates = r.Counter("spinwave_history_duplicates_total")
		r.Describe("spinwave_history_errors_total", "catalog appends that failed at the disk layer")
		mErrors = r.Counter("spinwave_history_errors_total")
		r.Describe("spinwave_retention_sweeps_total", "retention GC sweeps completed")
		mSweeps = r.Counter("spinwave_retention_sweeps_total")
		r.Describe("spinwave_retention_sweep_errors_total", "retention GC sweeps that hit at least one error")
		mSweepErrs = r.Counter("spinwave_retention_sweep_errors_total")
		r.Describe("spinwave_retention_deleted_total", "files/directories deleted by retention, by class")
		r.Describe("spinwave_retention_bytes_reclaimed_total", "bytes reclaimed by retention, by class")
		r.Describe("spinwave_retention_skipped_quarantined_total", "retention candidates skipped because quarantined data was present")
		mSkippedQ = r.Counter("spinwave_retention_skipped_quarantined_total")
	})
}

func mIndexed(kind string) *obs.Counter {
	initMetrics()
	return obs.Default().Counter("spinwave_history_indexed_total", obs.L("kind", kind))
}

func mDeleted(class Class) *obs.Counter {
	initMetrics()
	return obs.Default().Counter("spinwave_retention_deleted_total", obs.L("class", string(class)))
}

func mReclaimed(class Class) *obs.Counter {
	initMetrics()
	return obs.Default().Counter("spinwave_retention_bytes_reclaimed_total", obs.L("class", string(class)))
}

// Package grid defines the finite-difference simulation mesh and cell
// region bookkeeping used by the micromagnetic solver.
//
// The solver works on a 2-D mesh of Nx×Ny cells in the film plane; the film
// thickness Dz is carried as a scalar because the paper's waveguide is a
// 1 nm film with uniform magnetization across the thickness. Cells are
// addressed either by (i, j) pair (i along x, j along y) or by flat index
// j*Nx + i, the layout used by all field arrays.
package grid

import (
	"fmt"

	"spinwave/internal/vec"
)

// Mesh describes the discretization of the simulation window.
type Mesh struct {
	Nx, Ny int     // cell counts along x and y
	Dx, Dy float64 // cell edge lengths in meters
	Dz     float64 // film thickness in meters
}

// NewMesh validates the parameters and returns a mesh value.
func NewMesh(nx, ny int, dx, dy, dz float64) (Mesh, error) {
	if nx <= 0 || ny <= 0 {
		return Mesh{}, fmt.Errorf("grid: mesh size %dx%d must be positive", nx, ny)
	}
	if dx <= 0 || dy <= 0 || dz <= 0 {
		return Mesh{}, fmt.Errorf("grid: cell size (%g, %g, %g) must be positive", dx, dy, dz)
	}
	return Mesh{Nx: nx, Ny: ny, Dx: dx, Dy: dy, Dz: dz}, nil
}

// MustMesh is like NewMesh but panics on invalid parameters. It is intended
// for tests and for configurations built from compile-time constants.
func MustMesh(nx, ny int, dx, dy, dz float64) Mesh {
	m, err := NewMesh(nx, ny, dx, dy, dz)
	if err != nil {
		panic(err)
	}
	return m
}

// NCells returns the total number of cells Nx·Ny.
func (m Mesh) NCells() int { return m.Nx * m.Ny }

// Idx returns the flat index of cell (i, j). It panics if the coordinates
// are out of range, which in the solver indicates a programming error
// rather than a recoverable condition.
func (m Mesh) Idx(i, j int) int {
	if i < 0 || i >= m.Nx || j < 0 || j >= m.Ny {
		panic(fmt.Sprintf("grid: cell (%d,%d) outside %dx%d mesh", i, j, m.Nx, m.Ny))
	}
	return j*m.Nx + i
}

// Coord returns the (i, j) coordinates of flat index idx.
func (m Mesh) Coord(idx int) (i, j int) {
	return idx % m.Nx, idx / m.Nx
}

// CellCenter returns the physical position of the center of cell (i, j),
// with the mesh origin at the corner of cell (0, 0).
func (m Mesh) CellCenter(i, j int) (x, y float64) {
	return (float64(i) + 0.5) * m.Dx, (float64(j) + 0.5) * m.Dy
}

// CellAt returns the cell containing physical point (x, y) and whether the
// point lies inside the mesh bounds.
func (m Mesh) CellAt(x, y float64) (i, j int, ok bool) {
	i = int(x / m.Dx)
	j = int(y / m.Dy)
	if x < 0 || y < 0 || i >= m.Nx || j >= m.Ny {
		return 0, 0, false
	}
	return i, j, true
}

// SizeX and SizeY return the physical extents of the mesh.
func (m Mesh) SizeX() float64 { return float64(m.Nx) * m.Dx }

// SizeY returns the physical extent of the mesh along y.
func (m Mesh) SizeY() float64 { return float64(m.Ny) * m.Dy }

// CellVolume returns Dx·Dy·Dz in m³.
func (m Mesh) CellVolume() float64 { return m.Dx * m.Dy * m.Dz }

// String describes the mesh compactly.
func (m Mesh) String() string {
	return fmt.Sprintf("mesh %dx%d cells, cell %.3gx%.3gx%.3g m", m.Nx, m.Ny, m.Dx, m.Dy, m.Dz)
}

// Region is a boolean mask over mesh cells: true marks cells that contain
// magnetic material (or, for probe/antenna regions, cells that belong to
// the region). Its length always equals Mesh.NCells().
type Region []bool

// NewRegion allocates an empty (all-false) region for the mesh.
func NewRegion(m Mesh) Region { return make(Region, m.NCells()) }

// FullRegion allocates a region with every cell set.
func FullRegion(m Mesh) Region {
	r := NewRegion(m)
	for i := range r {
		r[i] = true
	}
	return r
}

// Count returns the number of set cells.
func (r Region) Count() int {
	n := 0
	for _, b := range r {
		if b {
			n++
		}
	}
	return n
}

// Indices returns the flat indices of all set cells in ascending order.
func (r Region) Indices() []int {
	idx := make([]int, 0, r.Count())
	for i, b := range r {
		if b {
			idx = append(idx, i)
		}
	}
	return idx
}

// Union sets r to r ∪ o in place and returns r.
func (r Region) Union(o Region) Region {
	checkLen(r, o)
	for i := range r {
		r[i] = r[i] || o[i]
	}
	return r
}

// Intersect sets r to r ∩ o in place and returns r.
func (r Region) Intersect(o Region) Region {
	checkLen(r, o)
	for i := range r {
		r[i] = r[i] && o[i]
	}
	return r
}

// Subtract clears from r every cell set in o, in place, and returns r.
func (r Region) Subtract(o Region) Region {
	checkLen(r, o)
	for i := range r {
		r[i] = r[i] && !o[i]
	}
	return r
}

// Clone returns an independent copy of r.
func (r Region) Clone() Region {
	c := make(Region, len(r))
	copy(c, r)
	return c
}

func checkLen(a, b Region) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("grid: region length mismatch %d != %d", len(a), len(b)))
	}
}

// Bounds returns the inclusive bounding box (i0, j0)–(i1, j1) of the set
// cells. ok is false when the region is empty.
func (r Region) Bounds(m Mesh) (i0, j0, i1, j1 int, ok bool) {
	i0, j0 = m.Nx, m.Ny
	i1, j1 = -1, -1
	for idx, b := range r {
		if !b {
			continue
		}
		i, j := m.Coord(idx)
		if i < i0 {
			i0 = i
		}
		if j < j0 {
			j0 = j
		}
		if i > i1 {
			i1 = i
		}
		if j > j1 {
			j1 = j
		}
	}
	return i0, j0, i1, j1, i1 >= 0
}

// AverageOver returns the mean of field f over the set cells of r.
func (r Region) AverageOver(f vec.Field) vec.Vector {
	if len(r) != len(f) {
		panic(fmt.Sprintf("grid: region/field length mismatch %d != %d", len(r), len(f)))
	}
	var sum vec.Vector
	n := 0
	for i, b := range r {
		if b {
			sum = sum.Add(f[i])
			n++
		}
	}
	if n == 0 {
		return vec.Zero
	}
	return sum.Scale(1 / float64(n))
}

// RectRegion returns the region of cells whose centers lie inside the
// axis-aligned rectangle [x0,x1]×[y0,y1] (meters).
func RectRegion(m Mesh, x0, y0, x1, y1 float64) Region {
	r := NewRegion(m)
	for j := 0; j < m.Ny; j++ {
		for i := 0; i < m.Nx; i++ {
			x, y := m.CellCenter(i, j)
			if x >= x0 && x <= x1 && y >= y0 && y <= y1 {
				r[m.Idx(i, j)] = true
			}
		}
	}
	return r
}

// EdgeBand returns the region of set cells of mask lying within width
// meters of the mesh boundary. It is used to build absorbing boundary
// layers.
func EdgeBand(m Mesh, mask Region, width float64) Region {
	r := NewRegion(m)
	for j := 0; j < m.Ny; j++ {
		for i := 0; i < m.Nx; i++ {
			idx := m.Idx(i, j)
			if !mask[idx] {
				continue
			}
			x, y := m.CellCenter(i, j)
			if x < width || y < width || m.SizeX()-x < width || m.SizeY()-y < width {
				r[idx] = true
			}
		}
	}
	return r
}

package grid

// Neighbor-presence mask bits for RunSet.Masks: bit set means the
// neighbor cell exists (inside the mesh and inside the region), so a
// 5-point stencil can test one byte instead of four region lookups.
const (
	// MaskLeft marks a region neighbor at (i-1, j).
	MaskLeft uint8 = 1 << iota
	// MaskRight marks a region neighbor at (i+1, j).
	MaskRight
	// MaskDown marks a region neighbor at (i, j-1).
	MaskDown
	// MaskUp marks a region neighbor at (i, j+1).
	MaskUp
)

// Run is a maximal horizontal span of region cells, stored as half-open
// flat indices [Start, End) within one row.
type Run struct {
	Start, End int32
}

// Len returns the number of cells in the run.
func (r Run) Len() int { return int(r.End - r.Start) }

// RunSet is the precomputed iteration geometry of a region: the active
// cells of every row compressed into runs, plus a per-cell neighbor
// mask for the exchange stencil. The hot solver loops iterate runs
// instead of testing region[c] for every mesh cell, which both skips
// vacuum cells entirely and removes the per-neighbor region loads from
// the stencil inner loop.
//
// A RunSet is a snapshot: it must be rebuilt if the region changes.
// All methods are read-only and safe for concurrent use.
type RunSet struct {
	mesh   Mesh
	rowOff []int32 // len Ny+1; runs of row j are runs[rowOff[j]:rowOff[j+1]]
	runs   []Run
	masks  []uint8 // len NCells
	active int
}

// NewRunSet precomputes the run/mask geometry for region on mesh. It
// panics if the region length does not match the mesh (the same
// contract as the field helpers).
func NewRunSet(m Mesh, region Region) *RunSet {
	if len(region) != m.NCells() {
		panic("grid: region length does not match mesh")
	}
	rs := &RunSet{
		mesh:   m,
		rowOff: make([]int32, m.Ny+1),
		masks:  make([]uint8, m.NCells()),
	}
	nx, ny := m.Nx, m.Ny
	for j := 0; j < ny; j++ {
		rs.rowOff[j] = int32(len(rs.runs))
		row := j * nx
		for i := 0; i < nx; {
			if !region[row+i] {
				i++
				continue
			}
			start := i
			for i < nx && region[row+i] {
				c := row + i
				var mask uint8
				if i > 0 && region[c-1] {
					mask |= MaskLeft
				}
				if i < nx-1 && region[c+1] {
					mask |= MaskRight
				}
				if j > 0 && region[c-nx] {
					mask |= MaskDown
				}
				if j < ny-1 && region[c+nx] {
					mask |= MaskUp
				}
				rs.masks[c] = mask
				i++
			}
			rs.runs = append(rs.runs, Run{Start: int32(row + start), End: int32(row + i)})
			rs.active += i - start
		}
	}
	rs.rowOff[ny] = int32(len(rs.runs))
	return rs
}

// Mesh returns the mesh the run set was built for.
func (rs *RunSet) Mesh() Mesh { return rs.mesh }

// RowRuns returns the runs covering rows [j0, j1), suitable for one
// band's kernel invocation.
func (rs *RunSet) RowRuns(j0, j1 int) []Run {
	return rs.runs[rs.rowOff[j0]:rs.rowOff[j1]]
}

// Runs returns the runs of every row in ascending order.
func (rs *RunSet) Runs() []Run { return rs.runs }

// Masks returns the per-cell neighbor-presence masks, indexed by flat
// cell index; bits are MaskLeft/MaskRight/MaskDown/MaskUp.
func (rs *RunSet) Masks() []uint8 { return rs.masks }

// ActiveCells returns the total number of region cells.
func (rs *RunSet) ActiveCells() int { return rs.active }

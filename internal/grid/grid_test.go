package grid

import (
	"math"
	"testing"
	"testing/quick"

	"spinwave/internal/vec"
)

func TestNewMeshValidation(t *testing.T) {
	cases := []struct {
		nx, ny     int
		dx, dy, dz float64
		ok         bool
	}{
		{10, 20, 1e-9, 1e-9, 1e-9, true},
		{0, 20, 1e-9, 1e-9, 1e-9, false},
		{10, -1, 1e-9, 1e-9, 1e-9, false},
		{10, 20, 0, 1e-9, 1e-9, false},
		{10, 20, 1e-9, -1e-9, 1e-9, false},
		{10, 20, 1e-9, 1e-9, 0, false},
	}
	for _, c := range cases {
		_, err := NewMesh(c.nx, c.ny, c.dx, c.dy, c.dz)
		if (err == nil) != c.ok {
			t.Errorf("NewMesh(%d,%d,%g,%g,%g) err=%v, want ok=%v", c.nx, c.ny, c.dx, c.dy, c.dz, err, c.ok)
		}
	}
}

func TestMustMeshPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustMesh with invalid args did not panic")
		}
	}()
	MustMesh(0, 0, 0, 0, 0)
}

func TestIdxCoordRoundTrip(t *testing.T) {
	m := MustMesh(7, 5, 1e-9, 1e-9, 1e-9)
	for j := 0; j < m.Ny; j++ {
		for i := 0; i < m.Nx; i++ {
			idx := m.Idx(i, j)
			gi, gj := m.Coord(idx)
			if gi != i || gj != j {
				t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d)", i, j, idx, gi, gj)
			}
		}
	}
}

func TestIdxPanicsOutOfRange(t *testing.T) {
	m := MustMesh(3, 3, 1e-9, 1e-9, 1e-9)
	defer func() {
		if recover() == nil {
			t.Error("Idx out of range did not panic")
		}
	}()
	m.Idx(3, 0)
}

func TestCellCenterAndCellAt(t *testing.T) {
	m := MustMesh(10, 10, 2e-9, 3e-9, 1e-9)
	x, y := m.CellCenter(0, 0)
	if x != 1e-9 || y != 1.5e-9 {
		t.Errorf("CellCenter(0,0) = (%g,%g)", x, y)
	}
	i, j, ok := m.CellAt(x, y)
	if !ok || i != 0 || j != 0 {
		t.Errorf("CellAt(center of 0,0) = (%d,%d,%v)", i, j, ok)
	}
	if _, _, ok := m.CellAt(-1e-9, 0); ok {
		t.Error("CellAt negative x reported ok")
	}
	if _, _, ok := m.CellAt(m.SizeX()+1e-12, 0); ok {
		t.Error("CellAt beyond x reported ok")
	}
}

func TestCellAtCenterRoundTrip(t *testing.T) {
	m := MustMesh(13, 9, 1.5e-9, 2.5e-9, 1e-9)
	f := func(ii, jj uint8) bool {
		i := int(ii) % m.Nx
		j := int(jj) % m.Ny
		x, y := m.CellCenter(i, j)
		gi, gj, ok := m.CellAt(x, y)
		return ok && gi == i && gj == j
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMeshDerived(t *testing.T) {
	m := MustMesh(100, 50, 5e-9, 5e-9, 1e-9)
	if got := m.NCells(); got != 5000 {
		t.Errorf("NCells = %d", got)
	}
	if got := m.SizeX(); math.Abs(got-500e-9) > 1e-18 {
		t.Errorf("SizeX = %g", got)
	}
	if got := m.SizeY(); math.Abs(got-250e-9) > 1e-18 {
		t.Errorf("SizeY = %g", got)
	}
	if got := m.CellVolume(); math.Abs(got-25e-27) > 1e-36 {
		t.Errorf("CellVolume = %g", got)
	}
}

func TestRegionSetOps(t *testing.T) {
	m := MustMesh(4, 1, 1e-9, 1e-9, 1e-9)
	a := Region{true, true, false, false}
	b := Region{false, true, true, false}

	u := a.Clone().Union(b)
	if got := u.Count(); got != 3 {
		t.Errorf("union count = %d", got)
	}
	in := a.Clone().Intersect(b)
	if got := in.Indices(); len(got) != 1 || got[0] != 1 {
		t.Errorf("intersect indices = %v", got)
	}
	d := a.Clone().Subtract(b)
	if got := d.Indices(); len(got) != 1 || got[0] != 0 {
		t.Errorf("subtract indices = %v", got)
	}
	_ = m
}

func TestRegionOpsPanicOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Union with mismatched lengths did not panic")
		}
	}()
	Region{true}.Union(Region{true, false})
}

// Property: for random regions, |A∪B| + |A∩B| == |A| + |B|.
func TestInclusionExclusion(t *testing.T) {
	f := func(abits, bbits uint16) bool {
		a := make(Region, 16)
		b := make(Region, 16)
		for i := 0; i < 16; i++ {
			a[i] = abits&(1<<i) != 0
			b[i] = bbits&(1<<i) != 0
		}
		u := a.Clone().Union(b).Count()
		n := a.Clone().Intersect(b).Count()
		return u+n == a.Count()+b.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFullRegionAndBounds(t *testing.T) {
	m := MustMesh(6, 4, 1e-9, 1e-9, 1e-9)
	full := FullRegion(m)
	if got := full.Count(); got != 24 {
		t.Errorf("FullRegion count = %d", got)
	}
	i0, j0, i1, j1, ok := full.Bounds(m)
	if !ok || i0 != 0 || j0 != 0 || i1 != 5 || j1 != 3 {
		t.Errorf("Bounds = (%d,%d,%d,%d,%v)", i0, j0, i1, j1, ok)
	}
	empty := NewRegion(m)
	if _, _, _, _, ok := empty.Bounds(m); ok {
		t.Error("empty region reported bounds")
	}
}

func TestRectRegion(t *testing.T) {
	m := MustMesh(10, 10, 1e-9, 1e-9, 1e-9)
	// Rectangle covering cells i in [2,4], j in [3,5] by center position.
	r := RectRegion(m, 2e-9, 3e-9, 5e-9, 6e-9)
	if got := r.Count(); got != 9 {
		t.Errorf("RectRegion count = %d, want 9", got)
	}
	for _, idx := range r.Indices() {
		i, j := m.Coord(idx)
		if i < 2 || i > 4 || j < 3 || j > 5 {
			t.Errorf("unexpected cell (%d,%d) in rect region", i, j)
		}
	}
}

func TestAverageOver(t *testing.T) {
	f := vec.Field{vec.V(1, 0, 0), vec.V(3, 0, 0)}
	r := Region{true, true}
	if got := r.AverageOver(f); got.X != 2 {
		t.Errorf("AverageOver = %v", got)
	}
	empty := Region{false, false}
	if got := empty.AverageOver(f); got != vec.Zero {
		t.Errorf("AverageOver empty = %v", got)
	}
}

func TestEdgeBand(t *testing.T) {
	m := MustMesh(10, 10, 1e-9, 1e-9, 1e-9)
	mask := FullRegion(m)
	band := EdgeBand(m, mask, 2e-9)
	// Interior cells i,j in [2,7] have centers >= 2.5e-9 from every edge.
	for _, idx := range band.Indices() {
		i, j := m.Coord(idx)
		if i >= 2 && i <= 7 && j >= 2 && j <= 7 {
			t.Errorf("interior cell (%d,%d) in edge band", i, j)
		}
	}
	if band.Count() == 0 {
		t.Error("edge band empty")
	}
	// A band request on an empty mask yields an empty band.
	if got := EdgeBand(m, NewRegion(m), 2e-9).Count(); got != 0 {
		t.Errorf("EdgeBand on empty mask count = %d", got)
	}
}

package checkpoint

import (
	"math"
	"testing"
)

// FuzzManifest drives the strict manifest parser with arbitrary bytes —
// the integrator-state sidecar is hand-editable and network-transported
// (fleet workers download it), so it gets the same fuzzing discipline as
// the OVF parser and the fleet job files. The parser must never panic,
// and anything it accepts must satisfy the resume invariants.
func FuzzManifest(f *testing.F) {
	f.Add([]byte(`{"version":1,"step":240,"sim_time_s":3e-12,"dt_s":1.25e-14,` +
		`"mag_file":"ck-000000000240.ovf",` +
		`"mag_sha256":"0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef",` +
		`"probes":[{"name":"O1","times":[1e-12],"mx":[0.1],"my":[0.2],"mz":[0.3]}]}`))
	f.Add([]byte(`{"version":1,"step":-1,"sim_time_s":0,"dt_s":0,"mag_file":"../x","mag_sha256":"zz"}`))
	f.Add([]byte(`{"version":1,"step":1,"sim_time_s":1e308,"dt_s":1e-300,` +
		`"mag_file":"a.ovf","mag_sha256":"0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"}{}`))
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`{"version":1,"unknown_field":true}`))
	f.Add([]byte(`go test fuzz corpus`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseManifest(data)
		if err != nil {
			return
		}
		if m.Version != manifestVersion || m.Step < 0 || !(m.Dt > 0) {
			t.Fatalf("accepted manifest violates invariants: %+v", m)
		}
		if math.IsNaN(m.SimTime) || math.IsInf(m.SimTime, 0) {
			t.Fatalf("accepted non-finite sim time: %+v", m)
		}
		if !validName(m.MagFile) {
			t.Fatalf("accepted unsafe mag file %q", m.MagFile)
		}
		for _, p := range m.Probes {
			if len(p.MX) != len(p.Times) || len(p.MY) != len(p.Times) || len(p.MZ) != len(p.Times) {
				t.Fatalf("accepted lopsided probe state: %+v", p)
			}
		}
	})
}

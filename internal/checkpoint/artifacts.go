package checkpoint

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ArtifactStore is the durable run-artifact store: one directory per run
// ID under a root, each holding named artifacts — checkpoint pairs,
// probe CSVs, journal tails, health verdicts. Files are committed with
// the same atomic-rename idiom as checkpoints and the fleet queue, so
// readers (swserve's GET /v1/runs/{id}/artifacts) never observe a torn
// artifact. An ArtifactStore is safe for concurrent use; concurrent Puts
// of the same name last-write-win atomically.
type ArtifactStore struct {
	root string
}

// ArtifactInfo describes one stored artifact.
type ArtifactInfo struct {
	// Name is the artifact file name.
	Name string `json:"name"`
	// Size is the artifact size in bytes.
	Size int64 `json:"size"`
	// ModifiedUnixNS is the last-modification time in Unix nanoseconds.
	ModifiedUnixNS int64 `json:"modified_unix_ns"`
}

// OpenArtifactStore opens (creating if needed) the store rooted at dir.
func OpenArtifactStore(dir string) (*ArtifactStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: artifact store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: artifact store: %w", err)
	}
	return &ArtifactStore{root: dir}, nil
}

// Root returns the store's root directory.
func (a *ArtifactStore) Root() string { return a.root }

// ValidArtifactName reports whether s is acceptable as a run ID or
// artifact name: a plain file name with no path separators and no
// leading dot. Both swserve's handlers and the store itself enforce it,
// so a crafted URL can never escape the store root.
func ValidArtifactName(s string) bool { return validName(s) }

// Put stores one artifact under run/name, replacing any previous
// content atomically, and returns the byte count written.
func (a *ArtifactStore) Put(run, name string, r io.Reader) (int64, error) {
	if !validName(run) || !validName(name) {
		return 0, fmt.Errorf("checkpoint: bad artifact path %q/%q", run, name)
	}
	dir := filepath.Join(a.root, run)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("checkpoint: artifact store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".put-*.tmp")
	if err != nil {
		return 0, fmt.Errorf("checkpoint: artifact store: %w", err)
	}
	n, err := io.Copy(tmp, r)
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("checkpoint: artifact write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("checkpoint: artifact close: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("checkpoint: artifact rename: %w", err)
	}
	return n, nil
}

// PutFile stores the file at path as run/name.
func (a *ArtifactStore) PutFile(run, name, path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: artifact source: %w", err)
	}
	defer f.Close()
	return a.Put(run, name, f)
}

// Open returns a reader over run/name plus its size. A missing artifact
// reports os.ErrNotExist (callers map it to the 404 envelope).
func (a *ArtifactStore) Open(run, name string) (io.ReadCloser, int64, error) {
	if !validName(run) || !validName(name) {
		return nil, 0, fmt.Errorf("checkpoint: bad artifact path %q/%q: %w", run, name, os.ErrNotExist)
	}
	f, err := os.Open(filepath.Join(a.root, run, name))
	if err != nil {
		return nil, 0, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, fi.Size(), nil
}

// List returns the run's artifacts sorted by name. A run with no
// directory yet lists empty (the run may simply not have uploaded
// anything), not an error; an invalid run ID reports os.ErrNotExist.
func (a *ArtifactStore) List(run string) ([]ArtifactInfo, error) {
	if !validName(run) {
		return nil, fmt.Errorf("checkpoint: bad run ID %q: %w", run, os.ErrNotExist)
	}
	entries, err := os.ReadDir(filepath.Join(a.root, run))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: artifact list: %w", err)
	}
	var out []ArtifactInfo
	for _, e := range entries {
		name := e.Name()
		if !validName(name) || strings.HasSuffix(name, ".tmp") || e.IsDir() {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		out = append(out, ArtifactInfo{Name: name, Size: fi.Size(), ModifiedUnixNS: fi.ModTime().UnixNano()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Runs lists the run IDs that have at least one artifact, sorted.
func (a *ArtifactStore) Runs() ([]string, error) {
	entries, err := os.ReadDir(a.root)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: artifact store: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && validName(e.Name()) {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// WritableProbe verifies the store root still accepts writes — surfaced
// by swserve's deep health check, like the fleet queue's probe.
func (a *ArtifactStore) WritableProbe() error {
	tmp, err := os.CreateTemp(a.root, ".probe-*.tmp")
	if err != nil {
		return fmt.Errorf("checkpoint: artifact store not writable: %w", err)
	}
	name := tmp.Name()
	tmp.Close()
	return os.Remove(name)
}

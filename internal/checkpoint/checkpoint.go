// Package checkpoint persists solver state mid-run and restores it
// exactly (DESIGN.md §15): periodic snapshots of the magnetization in
// OVF 2.0 text format (written bit-exactly via ovf.WriteExact) paired
// with a JSON sidecar manifest carrying the integrator state — simulation
// time, step size, committed step count — plus the probe sample series,
// the journal sequence, and the backend fingerprint that guards a resume
// against configuration drift.
//
// Every file is committed with the DiskStore atomic-rename idiom (temp
// file + os.Rename), OVF first and manifest second, so the manifest is
// the commit record: a crash between the two writes leaves an
// unreferenced OVF file, never a manifest pointing at a torn field. On
// load, corrupt or truncated files are quarantined — renamed aside with
// a ".quarantined" suffix and reported with a journal alert, mirroring
// the fleet queue's corruption handling — and the loader falls back to
// the next-newest snapshot instead of crashing the resume.
//
// The same package hosts the run-artifact store (artifacts.go): a
// directory tree addressed by run ID holding checkpoints, probe CSVs,
// journals and verdicts, served by swserve under /v1/runs/{id}/artifacts.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"spinwave/internal/grid"
	"spinwave/internal/journal"
	"spinwave/internal/ovf"
	"spinwave/internal/vec"
)

// manifestVersion is the manifest schema version this package writes and
// accepts. Bump it when the schema changes incompatibly; old manifests
// are then quarantined rather than misread.
const manifestVersion = 1

// ErrPaused reports that a run stopped on purpose at its configured
// segment boundary (Config.StopAtStep) after committing a checkpoint.
// Callers distinguish it from real failures with errors.Is: a paused
// run's partial state is durable and a later run resumes it; nothing
// went wrong.
var ErrPaused = errors.New("checkpoint: run paused at segment boundary")

// Config enables periodic checkpointing for one micromagnetic run
// (core.MicromagConfig.Checkpoint). Checkpointing observes the
// trajectory without altering it, so the whole struct is excluded from
// the backend fingerprint — a checkpointed run and a plain run share
// cache entries.
type Config struct {
	// Dir is the checkpoint directory; empty disables checkpointing.
	Dir string
	// EverySteps is the snapshot cadence in committed solver steps
	// (default 2000).
	EverySteps int
	// Resume loads the newest valid checkpoint in Dir before stepping
	// and continues from it instead of starting at t = 0.
	Resume bool
	// StopAtStep, when in (0, total steps), pauses the run after
	// committing the checkpoint at that absolute step: the run returns
	// ErrPaused and a later run with Resume set continues it. This is
	// how fleet segments bound their share of a long transient.
	StopAtStep int
	// Keep bounds how many snapshots stay on disk (default 2; older
	// pairs are pruned after each save).
	Keep int
	// OnSnapshot, when non-nil, observes every committed snapshot — the
	// fleet worker's upload hook. It runs on the stepping goroutine, so
	// it should hand work off rather than block the solver for long.
	OnSnapshot func(dir string, snap Snapshot)
	// Trace is the fleet trace ID stamped into each manifest (empty
	// outside fleet runs), correlating the checkpoint with the fleet
	// journal events of the job that wrote it.
	Trace string
}

// Enabled reports whether the config names a checkpoint directory.
func (c Config) Enabled() bool { return c.Dir != "" }

// WithDefaults fills zero fields with the documented defaults.
func (c Config) WithDefaults() Config {
	if c.EverySteps <= 0 {
		c.EverySteps = 2000
	}
	if c.Keep <= 0 {
		c.Keep = 2
	}
	return c
}

// Manifest is the JSON sidecar committed next to each OVF snapshot. It
// carries everything a resume needs beyond the magnetization itself.
type Manifest struct {
	// Version is the manifest schema version (manifestVersion).
	Version int `json:"version"`
	// Run is the run ID of the interrupted run (informational — a
	// resumed run mints its own ID and journals the one it continued).
	Run string `json:"run,omitempty"`
	// Gate names the simulated gate (informational).
	Gate string `json:"gate,omitempty"`
	// Fingerprint is the backend's canonical fingerprint at save time.
	// Resume refuses a checkpoint whose fingerprint differs from the
	// resuming backend's — bit-identical resume is only meaningful for
	// an identical configuration.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Inputs is the paper-style "10" case label of the run.
	Inputs string `json:"inputs,omitempty"`
	// Step is the committed solver step count at the snapshot.
	Step int `json:"step"`
	// TotalSteps is the fixed-step total of the full run (0 when not
	// applicable), letting tools report progress.
	TotalSteps int `json:"total_steps,omitempty"`
	// SimTime is the solver's simulation time in seconds. JSON encodes
	// float64 with shortest-round-trip formatting, so the value survives
	// the disk round trip bit-identically.
	SimTime float64 `json:"sim_time_s"`
	// Dt is the solver step size at the snapshot, in seconds.
	Dt float64 `json:"dt_s"`
	// Scheme names the integrator ("rk4", "heun").
	Scheme string `json:"scheme,omitempty"`
	// JournalSeq is the process journal's sequence number at save time,
	// correlating the checkpoint with the interrupted run's journal tail.
	JournalSeq uint64 `json:"journal_seq,omitempty"`
	// Trace is the fleet trace ID of the job that wrote the snapshot —
	// the key joining this checkpoint to the merged fleet journal
	// (/v1/fleet/jobs/{trace}/events). Empty outside fleet runs.
	Trace string `json:"trace,omitempty"`
	// MagFile is the sidecar OVF file name (same directory).
	MagFile string `json:"mag_file"`
	// MagSHA256 is the hex SHA-256 of the OVF file's bytes — the
	// truncation/corruption guard the loader verifies before trusting
	// the field.
	MagSHA256 string `json:"mag_sha256"`
	// Probes carries the detector probes' accumulated sample series, so
	// the resumed run's final lock-in window sees exactly the trace an
	// uninterrupted run would have.
	Probes []ProbeState `json:"probes,omitempty"`
	// SavedUnixNS is the wall-clock save time in Unix nanoseconds.
	SavedUnixNS int64 `json:"saved_unix_ns,omitempty"`
}

// ProbeState is one detector probe's recorded sample series.
type ProbeState struct {
	// Name is the probe (output port) name, e.g. "O1".
	Name string `json:"name"`
	// Times holds the sample time stamps in seconds.
	Times []float64 `json:"times"`
	// MX, MY, MZ hold the averaged magnetization components per sample.
	MX []float64 `json:"mx"`
	MY []float64 `json:"my"`
	MZ []float64 `json:"mz"`
}

// validate rejects manifests no resume should trust.
func (m *Manifest) validate() error {
	if m.Version != manifestVersion {
		return fmt.Errorf("checkpoint: manifest version %d, want %d", m.Version, manifestVersion)
	}
	if m.Step < 0 {
		return fmt.Errorf("checkpoint: negative step count %d", m.Step)
	}
	if !(m.Dt > 0) || math.IsInf(m.Dt, 0) {
		return fmt.Errorf("checkpoint: bad step size %g", m.Dt)
	}
	if math.IsNaN(m.SimTime) || math.IsInf(m.SimTime, 0) || m.SimTime < 0 {
		return fmt.Errorf("checkpoint: bad simulation time %g", m.SimTime)
	}
	if !validName(m.MagFile) {
		return fmt.Errorf("checkpoint: bad magnetization file name %q", m.MagFile)
	}
	if len(m.MagSHA256) != sha256.Size*2 {
		return fmt.Errorf("checkpoint: bad digest length %d", len(m.MagSHA256))
	}
	if _, err := hex.DecodeString(m.MagSHA256); err != nil {
		return fmt.Errorf("checkpoint: bad digest: %w", err)
	}
	for _, p := range m.Probes {
		n := len(p.Times)
		if len(p.MX) != n || len(p.MY) != n || len(p.MZ) != n {
			return fmt.Errorf("checkpoint: probe %q has mismatched sample lengths", p.Name)
		}
	}
	return nil
}

// ParseManifest decodes and validates one manifest document. Unknown
// fields and trailing garbage are rejected — a manifest is a resume
// instruction, and a field this version does not understand could change
// its meaning (same strictness as fleet.ParseJobFile).
func ParseManifest(data []byte) (*Manifest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("checkpoint: manifest: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("checkpoint: manifest: trailing data")
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Snapshot is the receipt of one committed Save: the manifest as written
// plus the file names it was committed under (relative to the checkpoint
// directory).
type Snapshot struct {
	// Manifest is the manifest as committed (digest and version filled).
	Manifest Manifest
	// ManifestFile is the manifest's file name.
	ManifestFile string
}

// stem names a snapshot pair by step count, zero-padded so lexical and
// numeric order agree.
func stem(step int) string { return fmt.Sprintf("ck-%012d", step) }

// Save commits one snapshot: the magnetization OVF first, then the
// manifest referencing it, each by atomic rename. The caller fills the
// identity and integrator fields of man; Save fills Version, MagFile,
// MagSHA256, JournalSeq and SavedUnixNS. Older snapshots beyond keep
// (≥ 1) are pruned after the commit.
func Save(dir string, man Manifest, mesh grid.Mesh, m vec.Field, keep int) (Snapshot, error) {
	if dir == "" {
		return Snapshot{}, fmt.Errorf("checkpoint: save needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Snapshot{}, fmt.Errorf("checkpoint: %w", err)
	}
	var buf bytes.Buffer
	if err := ovf.WriteExact(&buf, mesh, m, fmt.Sprintf("checkpoint step %d", man.Step)); err != nil {
		return Snapshot{}, fmt.Errorf("checkpoint: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	man.Version = manifestVersion
	man.MagFile = stem(man.Step) + ".ovf"
	man.MagSHA256 = hex.EncodeToString(sum[:])
	man.JournalSeq = journal.Default().Seq()
	man.SavedUnixNS = time.Now().UnixNano()
	if err := man.validate(); err != nil {
		return Snapshot{}, err
	}
	mb, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		return Snapshot{}, fmt.Errorf("checkpoint: manifest marshal: %w", err)
	}
	if err := writeAtomic(dir, man.MagFile, buf.Bytes()); err != nil {
		return Snapshot{}, err
	}
	name := stem(man.Step) + ".json"
	if err := writeAtomic(dir, name, mb); err != nil {
		return Snapshot{}, err
	}
	if keep < 1 {
		keep = 1
	}
	prune(dir, keep)
	return Snapshot{Manifest: man, ManifestFile: name}, nil
}

// writeAtomic commits data under dir/name via temp file + rename.
func writeAtomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, ".ck-*.tmp")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	return nil
}

// prune deletes all but the newest keep snapshot pairs (by step number
// in the file name). Best-effort: removal errors are ignored — an extra
// old snapshot is harmless, a failed save is not.
func prune(dir string, keep int) {
	steps := manifestSteps(dir)
	if len(steps) <= keep {
		return
	}
	for _, step := range steps[:len(steps)-keep] {
		os.Remove(filepath.Join(dir, stem(step)+".json"))
		os.Remove(filepath.Join(dir, stem(step)+".ovf"))
	}
}

// manifestSteps lists the step numbers of the manifest files in dir,
// ascending. Quarantined and temp files are ignored.
func manifestSteps(dir string) []int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var steps []int
	for _, e := range entries {
		name := e.Name()
		var step int
		if _, err := fmt.Sscanf(name, "ck-%d.json", &step); err != nil || name != stem(step)+".json" {
			continue
		}
		steps = append(steps, step)
	}
	sort.Ints(steps)
	return steps
}

// validName accepts plain file names: no path separators, no leading
// dot, only letters, digits, '.', '-', '_', at most 128 bytes. Shared
// by manifests and the artifact store.
func validName(s string) bool {
	if s == "" || len(s) > 128 || s[0] == '.' {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

package checkpoint

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spinwave/internal/grid"
	"spinwave/internal/journal"
	"spinwave/internal/vec"
)

func testMeshField() (grid.Mesh, vec.Field) {
	mesh := grid.MustMesh(6, 4, 5e-9, 5e-9, 1e-9)
	m := vec.NewField(mesh.NCells())
	for i := range m {
		m[i] = vec.V(math.Sin(float64(i)*0.31), math.Cos(float64(i)*0.77), 1.0/3.0)
	}
	return mesh, m
}

func testManifest(step int) Manifest {
	return Manifest{
		Run: "rdeadbeef00000000", Gate: "xor", Fingerprint: "fp-abc", Inputs: "10",
		Step: step, TotalSteps: 1000, SimTime: float64(step) * 1.25e-14, Dt: 1.25e-14,
		Scheme: "rk4",
		Probes: []ProbeState{{
			Name:  "O1",
			Times: []float64{1e-12, 2e-12}, MX: []float64{0.1, 0.2},
			MY: []float64{0.3, 0.4}, MZ: []float64{0.5, 0.6},
		}},
	}
}

// captureSink records journal events for assertions.
type captureSink struct{ events []journal.Event }

func (c *captureSink) Emit(e journal.Event) { c.events = append(c.events, e) }

func TestSaveLatestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	mesh, m := testMeshField()
	snap, err := Save(dir, testManifest(240), mesh, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if snap.ManifestFile != "ck-000000000240.json" {
		t.Errorf("manifest file = %q", snap.ManifestFile)
	}
	if snap.Manifest.MagFile != "ck-000000000240.ovf" || len(snap.Manifest.MagSHA256) != 64 {
		t.Errorf("manifest = %+v", snap.Manifest)
	}

	st, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st == nil {
		t.Fatal("no checkpoint loaded")
	}
	if st.Manifest.Step != 240 || st.Manifest.Dt != 1.25e-14 || st.Manifest.SimTime != 240*1.25e-14 {
		t.Errorf("manifest = %+v", st.Manifest)
	}
	if st.Manifest.Fingerprint != "fp-abc" || st.Manifest.Inputs != "10" {
		t.Errorf("identity fields = %+v", st.Manifest)
	}
	for i := range m {
		if st.M[i] != m[i] {
			t.Fatalf("cell %d not bit-identical: %v != %v", i, st.M[i], m[i])
		}
	}
	p := st.Manifest.Probes[0]
	if p.Name != "O1" || p.Times[1] != 2e-12 || p.MX[0] != 0.1 {
		t.Errorf("probe state = %+v", p)
	}
}

func TestLatestEmptyOrMissingDir(t *testing.T) {
	st, err := Latest(filepath.Join(t.TempDir(), "nope"))
	if err != nil || st != nil {
		t.Fatalf("missing dir: st=%v err=%v, want nil,nil", st, err)
	}
	st, err = Latest(t.TempDir())
	if err != nil || st != nil {
		t.Fatalf("empty dir: st=%v err=%v, want nil,nil", st, err)
	}
	if _, err := Latest(""); err == nil {
		t.Error("empty dir name accepted")
	}
}

// TestLatestQuarantinesCorruptAndFallsBack is the durability pin: a
// truncated OVF, a mangled manifest, and a manifest whose digest no
// longer matches must each be renamed aside with a journaled alert
// while resume proceeds from the newest intact snapshot.
func TestLatestQuarantinesCorruptAndFallsBack(t *testing.T) {
	dir := t.TempDir()
	mesh, m := testMeshField()
	if _, err := Save(dir, testManifest(100), mesh, m, 10); err != nil {
		t.Fatal(err)
	}
	m2 := vec.NewField(len(m))
	m2.Copy(m)
	m2[0] = vec.V(0.9, 0.1, 0.2)
	if _, err := Save(dir, testManifest(200), mesh, m2, 10); err != nil {
		t.Fatal(err)
	}
	// Truncate the newest snapshot's OVF mid-file.
	ovfPath := filepath.Join(dir, "ck-000000000200.ovf")
	data, err := os.ReadFile(ovfPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ovfPath, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	sink := &captureSink{}
	detach := journal.Default().Attach(sink)
	st, err := Latest(dir)
	detach()
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || st.Manifest.Step != 100 {
		t.Fatalf("expected fallback to step 100, got %+v", st)
	}
	if st.M[0] != m[0] {
		t.Errorf("fallback field wrong: %v != %v", st.M[0], m[0])
	}
	if _, err := os.Stat(filepath.Join(dir, "ck-000000000200.json.quarantined")); err != nil {
		t.Error("corrupt manifest not quarantined")
	}
	if _, err := os.Stat(filepath.Join(dir, "ck-000000000200.ovf.quarantined")); err != nil {
		t.Error("corrupt OVF not quarantined")
	}
	found := false
	for _, e := range sink.events {
		if e.Name == "alert" && e.Fields["rule"] == "checkpoint.quarantine" {
			found = true
		}
	}
	if !found {
		t.Error("no checkpoint.quarantine alert journaled")
	}
}

func TestLatestQuarantinesBadManifest(t *testing.T) {
	dir := t.TempDir()
	mesh, m := testMeshField()
	if _, err := Save(dir, testManifest(50), mesh, m, 10); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ck-000000000099.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Latest(dir)
	if err != nil || st == nil || st.Manifest.Step != 50 {
		t.Fatalf("st=%+v err=%v, want step-50 fallback", st, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "ck-000000000099.json.quarantined")); err != nil {
		t.Error("bad manifest not quarantined")
	}
}

func TestSavePrunes(t *testing.T) {
	dir := t.TempDir()
	mesh, m := testMeshField()
	for _, step := range []int{10, 20, 30} {
		if _, err := Save(dir, testManifest(step), mesh, m, 2); err != nil {
			t.Fatal(err)
		}
	}
	if steps := manifestSteps(dir); len(steps) != 2 || steps[0] != 20 || steps[1] != 30 {
		t.Errorf("steps after prune = %v, want [20 30]", steps)
	}
	if _, err := os.Stat(filepath.Join(dir, "ck-000000000010.ovf")); !os.IsNotExist(err) {
		t.Error("pruned snapshot's OVF still on disk")
	}
}

func TestParseManifestRejects(t *testing.T) {
	mesh, m := testMeshField()
	dir := t.TempDir()
	snap, err := Save(dir, testManifest(1), mesh, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(filepath.Join(dir, snap.ManifestFile))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseManifest(good); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}

	cases := map[string]string{
		"unknown field":   strings.Replace(string(good), `"version"`, `"surprise": 1, "version"`, 1),
		"trailing data":   string(good) + "{}",
		"bad version":     strings.Replace(string(good), `"version": 1`, `"version": 99`, 1),
		"escaping path":   strings.Replace(string(good), `"mag_file": "ck-000000000001.ovf"`, `"mag_file": "../../etc/passwd"`, 1),
		"short digest":    strings.Replace(string(good), snap.Manifest.MagSHA256, "abcd", 1),
		"negative step":   strings.Replace(string(good), `"step": 1`, `"step": -4`, 1),
		"not json":        "]][[",
		"zero dt":         strings.Replace(string(good), `"dt_s": 1.25e-14`, `"dt_s": 0`, 1),
		"lopsided probes": strings.Replace(string(good), `"mx": [`, `"mx": [7,`, 1),
	}
	for name, doc := range cases {
		if _, err := ParseManifest([]byte(doc)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Dir: "x"}.WithDefaults()
	if !c.Enabled() || c.EverySteps != 2000 || c.Keep != 2 {
		t.Errorf("defaults = %+v", c)
	}
	if (Config{}).Enabled() {
		t.Error("empty config enabled")
	}
}

package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"spinwave/internal/grid"
	"spinwave/internal/journal"
	"spinwave/internal/obs"
	"spinwave/internal/ovf"
	"spinwave/internal/vec"
)

// State is one loaded checkpoint: the validated manifest plus the
// magnetization field parsed from its OVF sidecar.
type State struct {
	// Manifest is the parsed and validated sidecar manifest.
	Manifest Manifest
	// Mesh is the mesh the OVF file declares.
	Mesh grid.Mesh
	// M is the magnetization field, bit-identical to the saved state.
	M vec.Field
}

// Process-wide checkpoint metrics, registered lazily on first use so an
// importing program that never checkpoints exports nothing.
var (
	metricsOnce  sync.Once
	mQuarantined *obs.Counter
)

func initMetrics() {
	metricsOnce.Do(func() {
		r := obs.Default()
		r.Describe("spinwave_checkpoint_quarantined_total", "defective checkpoint files quarantined at load")
		mQuarantined = r.Counter("spinwave_checkpoint_quarantined_total")
	})
}

// readOVF parses the snapshot's OVF bytes.
func readOVF(data []byte) (*ovf.File, error) {
	f, err := ovf.Read(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return f, nil
}

// Latest loads the newest valid checkpoint in dir. Corrupt, truncated
// or inconsistent files are quarantined (renamed with a ".quarantined"
// suffix plus a journaled checkpoint.quarantine alert — the fleet
// queue's corruption discipline) and the next-newest snapshot is tried
// instead; resume never crashes on a bad file. A missing directory or
// no surviving snapshot returns (nil, nil): start from t = 0.
func Latest(dir string) (*State, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: load needs a directory")
	}
	steps := manifestSteps(dir)
	for i := len(steps) - 1; i >= 0; i-- {
		path := filepath.Join(dir, stem(steps[i])+".json")
		st, err := load(dir, path)
		if err != nil {
			quarantine(path, err)
			continue
		}
		return st, nil
	}
	return nil, nil
}

// load reads and fully verifies one manifest + OVF pair. Any defect is
// an error; the caller decides to quarantine.
func load(dir, manifestPath string) (*State, error) {
	data, err := os.ReadFile(manifestPath)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	man, err := ParseManifest(data)
	if err != nil {
		return nil, err
	}
	magPath := filepath.Join(dir, man.MagFile)
	mag, err := os.ReadFile(magPath)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	sum := sha256.Sum256(mag)
	if hex.EncodeToString(sum[:]) != man.MagSHA256 {
		return nil, fmt.Errorf("checkpoint: %s does not match its manifest digest (truncated or corrupt)", man.MagFile)
	}
	f, err := readOVF(mag)
	if err != nil {
		return nil, err
	}
	return &State{Manifest: *man, Mesh: f.Mesh, M: f.M}, nil
}

// quarantine renames a bad checkpoint file (and its OVF sidecar, when
// the manifest still names one) aside and journals an alert; loading
// carries on with older snapshots. The renamed files keep their bytes
// for post-mortems and are ignored by every future scan.
func quarantine(manifestPath string, cause error) {
	dst := manifestPath + ".quarantined"
	if err := os.Rename(manifestPath, dst); err != nil {
		dst = manifestPath
	}
	// The OVF sidecar shares the stem; move it too so a later save at
	// the same step cannot pair a fresh manifest with stale field bytes.
	ovfPath := manifestPath[:len(manifestPath)-len(".json")] + ".ovf"
	if _, err := os.Stat(ovfPath); err == nil {
		os.Rename(ovfPath, ovfPath+".quarantined")
	}
	initMetrics()
	mQuarantined.Inc()
	if j := journal.Default(); j.Enabled() {
		j.Emit("", "alert",
			journal.F("rule", "checkpoint.quarantine"),
			journal.F("severity", "warn"),
			journal.F("file", dst),
			journal.F("error", cause.Error()))
	}
}

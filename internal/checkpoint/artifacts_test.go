package checkpoint

import (
	"errors"
	"io"
	"io/fs"
	"strings"
	"testing"
)

func TestArtifactStoreRoundTrip(t *testing.T) {
	a, err := OpenArtifactStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if n, err := a.Put("r01", "probe.csv", strings.NewReader("t,mx\n1,2\n")); err != nil || n != 9 {
		t.Fatalf("put: n=%d err=%v", n, err)
	}
	if _, err := a.Put("r01", "ck-1.ovf", strings.NewReader("ovf")); err != nil {
		t.Fatal(err)
	}
	rc, size, err := a.Open("r01", "probe.csv")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(rc)
	rc.Close()
	if size != 9 || string(body) != "t,mx\n1,2\n" {
		t.Errorf("open: size=%d body=%q", size, body)
	}

	infos, err := a.List("r01")
	if err != nil || len(infos) != 2 {
		t.Fatalf("list: %v %v", infos, err)
	}
	if infos[0].Name != "ck-1.ovf" || infos[1].Name != "probe.csv" || infos[1].Size != 9 {
		t.Errorf("list = %+v", infos)
	}
	runs, err := a.Runs()
	if err != nil || len(runs) != 1 || runs[0] != "r01" {
		t.Errorf("runs = %v, %v", runs, err)
	}
	// Overwrite is atomic last-write-wins.
	if _, err := a.Put("r01", "probe.csv", strings.NewReader("new")); err != nil {
		t.Fatal(err)
	}
	rc, size, _ = a.Open("r01", "probe.csv")
	body, _ = io.ReadAll(rc)
	rc.Close()
	if size != 3 || string(body) != "new" {
		t.Errorf("overwrite: size=%d body=%q", size, body)
	}
	if err := a.WritableProbe(); err != nil {
		t.Errorf("writable probe: %v", err)
	}
}

func TestArtifactStoreRejectsTraversal(t *testing.T) {
	a, err := OpenArtifactStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "..", "../x", "a/b", ".hidden", strings.Repeat("x", 200)} {
		if _, err := a.Put(bad, "f", strings.NewReader("x")); err == nil {
			t.Errorf("run %q accepted", bad)
		}
		if _, err := a.Put("run", bad, strings.NewReader("x")); err == nil {
			t.Errorf("name %q accepted", bad)
		}
		if _, _, err := a.Open(bad, "f"); !errors.Is(err, fs.ErrNotExist) {
			t.Errorf("open run %q: err=%v, want not-exist", bad, err)
		}
	}
	if _, err := a.List("valid-but-absent"); err != nil {
		t.Errorf("absent run should list empty, got %v", err)
	}
	if _, _, err := a.Open("run", "absent"); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("absent artifact: %v", err)
	}
}

// Package report formats experiment results as aligned text tables and
// records paper-vs-measured comparisons for EXPERIMENTS.md.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return ""
	}
	return b.String()
}

// Comparison is one paper-vs-measured record.
type Comparison struct {
	Experiment string // e.g. "Table I, case {0,1,1}, O1"
	Metric     string
	Paper      string
	Measured   string
	Note       string
}

// ComparisonSet collects paper-vs-measured records for one experiment.
type ComparisonSet struct {
	Name  string
	Items []Comparison
}

// Add appends a record.
func (c *ComparisonSet) Add(experiment, metric, paper, measured, note string) {
	c.Items = append(c.Items, Comparison{
		Experiment: experiment, Metric: metric, Paper: paper, Measured: measured, Note: note,
	})
}

// Render writes the set as a text table.
func (c *ComparisonSet) Render(w io.Writer) error {
	t := NewTable(c.Name, "experiment", "metric", "paper", "measured", "note")
	for _, it := range c.Items {
		t.AddRow(it.Experiment, it.Metric, it.Paper, it.Measured, it.Note)
	}
	return t.Render(w)
}

// Bool01 renders a logic level the way the paper's tables do.
func Bool01(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// Bits renders an input combination like "{0,1,1}" in I3 I2 I1 display
// order (most significant input first), matching the paper's Table I.
func Bits(inputs []bool) string {
	var b strings.Builder
	b.WriteString("{")
	for i := len(inputs) - 1; i >= 0; i-- {
		b.WriteString(Bool01(inputs[i]))
		if i > 0 {
			b.WriteString(",")
		}
	}
	b.WriteString("}")
	return b.String()
}

package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("Title", "a", "longheader", "c")
	tab.AddRow("1", "2", "3")
	tab.AddRow("wide-cell", "x") // short row padded
	out := tab.String()
	if !strings.Contains(out, "Title") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Header and separator aligned to the same width.
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("header/separator misaligned:\n%s", out)
	}
	if !strings.Contains(lines[3], "1") || !strings.Contains(lines[4], "wide-cell") {
		t.Errorf("rows wrong:\n%s", out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tab := NewTable("", "x")
	tab.AddRow("v")
	out := tab.String()
	if strings.HasPrefix(out, "\n") {
		t.Error("leading blank line for empty title")
	}
	if !strings.Contains(out, "v") {
		t.Error("row missing")
	}
}

func TestComparisonSet(t *testing.T) {
	var c ComparisonSet
	c.Name = "Table I"
	c.Add("case {0,0,0}", "O1 normalized", "1", "1.000", "")
	c.Add("case {0,1,1}", "O1 normalized", "0.164", "0.129", "reduced device")
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table I", "0.164", "0.129", "reduced device"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestBool01AndBits(t *testing.T) {
	if Bool01(true) != "1" || Bool01(false) != "0" {
		t.Error("Bool01 wrong")
	}
	// Inputs are [I1, I2, I3]; display order is {I3,I2,I1}.
	if got := Bits([]bool{true, false, false}); got != "{0,0,1}" {
		t.Errorf("Bits = %s, want {0,0,1}", got)
	}
	if got := Bits([]bool{false, true, true}); got != "{1,1,0}" {
		t.Errorf("Bits = %s, want {1,1,0}", got)
	}
	if got := Bits([]bool{true, false}); got != "{0,1}" {
		t.Errorf("Bits = %s, want {0,1}", got)
	}
}

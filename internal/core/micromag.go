package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"spinwave/internal/checkpoint"
	"spinwave/internal/detect"
	"spinwave/internal/dispersion"
	"spinwave/internal/dsp"
	"spinwave/internal/excite"
	"spinwave/internal/grid"
	"spinwave/internal/health"
	"spinwave/internal/journal"
	"spinwave/internal/layout"
	"spinwave/internal/llg"
	"spinwave/internal/material"
	"spinwave/internal/obs"
	"spinwave/internal/probe"
	"spinwave/internal/thermal"
	"spinwave/internal/units"
	"spinwave/internal/vec"
)

// MicromagConfig tunes the micromagnetic backend.
type MicromagConfig struct {
	Spec layout.Spec
	Mat  material.Params

	// CellSize is the square cell edge (default λ/11, i.e. 5 nm for the
	// paper's λ = 55 nm).
	CellSize float64
	// DriveField is the antenna RF amplitude in Tesla (default 2 mT,
	// linear regime).
	DriveField float64
	// RampPeriods is the smooth turn-on length in drive periods
	// (default 3).
	RampPeriods float64
	// MeasurePeriods is the lock-in window in drive periods (default 4).
	MeasurePeriods int
	// SettleFactor multiplies the longest-path travel time to decide how
	// long to wait before measuring (default 1.6).
	SettleFactor float64
	// SampleEvery records probe samples every N solver steps (default 4).
	SampleEvery int
	// MaxAlpha is the absorber peak damping (default 0.5).
	MaxAlpha float64
	// Scheme selects the integrator (default RK4).
	Scheme llg.Scheme
	// Workers > 1 runs the LLG stepping kernels on a persistent pool of
	// that many goroutines, banded over mesh rows (useful on multi-core
	// machines; trajectories are bit-identical for any worker count).
	Workers int
	// UseReferenceStepper forces the original term-by-term LLG stepper
	// instead of the fused tiled core. It exists for benchmarking and
	// debugging; the two agree to floating-point round-off.
	UseReferenceStepper bool
	// Temperature enables the stochastic thermal field when > 0 (kelvin).
	Temperature float64
	// Seed seeds the thermal field.
	Seed int64
	// RegionMutator, when non-nil, post-processes the rasterized material
	// region (edge roughness, width erosion, defects) before simulation —
	// the hook used by the §IV-D variability experiments.
	RegionMutator func(grid.Mesh, grid.Region) grid.Region
	// I3PhaseTrim is added to the I3 drive phase to compensate the
	// junction-region phase accumulated along the body path relative to
	// the trunk path. In a fabricated device this is a sub-λ trim of the
	// d2 trunk length (a phase trim τ is the exact equivalent of a length
	// trim −τ/k); the paper's design rule "dimensions must be chosen
	// accurately" (§III-A) refers to exactly this adjustment. Use
	// CalibrateI3 to measure it.
	I3PhaseTrim float64
	// Probes configures the in-situ flight recorder (DESIGN.md §11):
	// when Enabled, each run attaches a probe.Recorder over the output
	// detector cells and publishes it in probe.Default() under the run
	// ID. Probes observe the trajectory without altering it, so this
	// field is excluded from Fingerprint (like Workers).
	Probes probe.Config
	// Health configures the numerical health monitor (DESIGN.md §12):
	// when Enabled, each run attaches a health.Monitor over the material
	// region, emits alert/health.verdict journal events, and publishes
	// its report in health.Default() under the run ID. Monitoring
	// observes the trajectory without altering it — unless
	// Health.AbortOnCritical stops a run early, in which case the run
	// fails with an error and the engine never caches it — so this field
	// is excluded from Fingerprint (like Probes and Workers).
	Health health.Config
	// DtScale multiplies the stability-bounded time step (default 1).
	// Values > 1 push the integrator past its stability bound — the knob
	// the health-smoke CI target uses to destabilize a run on purpose —
	// and values < 1 trade speed for accuracy. Unlike the observation
	// fields it changes the trajectory, so it is part of Fingerprint.
	DtScale float64
	// Checkpoint configures periodic solver snapshots and exact resume
	// (DESIGN.md §15): when Enabled, each logic-case run commits the
	// magnetization plus integrator and probe state to Checkpoint.Dir at
	// the configured cadence, and Resume continues from the newest valid
	// snapshot with a bit-identical trajectory. Calibration runs (RunSingle,
	// RunBackground, CalibrateI3) never checkpoint — they are short and
	// their probes differ from the logic case's. Checkpointing observes
	// the trajectory without altering it, so this field is excluded from
	// Fingerprint (like Probes and Health): a checkpointed run and a plain
	// run share cache entries.
	Checkpoint checkpoint.Config
}

// withDefaults fills zero fields with the documented defaults.
func (c MicromagConfig) withDefaults() MicromagConfig {
	if c.CellSize == 0 {
		c.CellSize = c.Spec.Lambda / 11
	}
	if c.DriveField == 0 {
		c.DriveField = 2e-3
	}
	if c.RampPeriods == 0 {
		c.RampPeriods = 3
	}
	if c.MeasurePeriods == 0 {
		c.MeasurePeriods = 4
	}
	if c.SettleFactor == 0 {
		c.SettleFactor = 1.6
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 4
	}
	if c.MaxAlpha == 0 {
		c.MaxAlpha = 0.5
	}
	if c.DtScale == 0 {
		c.DtScale = 1
	}
	return c
}

// Micromagnetic is the full-simulation backend: each Run builds a fresh
// LLG solver on the rasterized gate, drives the input antennas with
// phase-encoded RF fields, waits for steady state, and lock-in detects
// the outputs.
type Micromagnetic struct {
	kind GateKind
	cfg  MicromagConfig

	L      *layout.Layout
	Mesh   grid.Mesh
	Region grid.Region

	// Freq is the drive frequency chosen from the solver-matched
	// dispersion so the simulated wavelength equals Spec.Lambda.
	Freq float64
	// Vg is the group velocity at the design wave number.
	Vg float64

	dt       float64
	duration float64
}

// NewMicromagnetic prepares the backend (mesh, region, timing). It does
// not run anything yet.
//
// The options are applied in order onto a default config (ReducedSpec
// geometry, FeCoB material): either a bare MicromagConfig (the legacy
// form, which replaces the whole config) or functional options such as
// WithSpec, WithScheme, and WithWorkers. With no options at all the
// backend simulates the reduced-scale device in Fe60Co20B20.
func NewMicromagnetic(kind GateKind, opts ...MicromagOption) (*Micromagnetic, error) {
	// Defaults are seeded before the options run, so a legacy bare
	// MicromagConfig replaces them wholesale — an explicitly zero spec or
	// material still fails validation exactly as it always did.
	cfg := MicromagConfig{Spec: layout.ReducedSpec(), Mat: material.FeCoB()}
	for _, o := range opts {
		o.applyMicromag(&cfg)
	}
	cfg = cfg.withDefaults()
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Mat.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Mat.IsPerpendicular() {
		return nil, fmt.Errorf("core: material %s is not perpendicular (forward-volume configuration impossible without bias)", cfg.Mat.Name)
	}
	l, err := buildLayout(kind, cfg.Spec)
	if err != nil {
		return nil, err
	}
	// Snap the mirror axis onto a cell-center row so the rasterized top
	// and bottom halves are exact mirror images (O1 ≡ O2 by construction).
	l.AlignAxisToCells(cfg.CellSize)
	mesh, err := l.Mesh(cfg.CellSize, units.NM(1))
	if err != nil {
		return nil, err
	}
	region := l.Rasterize(mesh)
	if cfg.RegionMutator != nil {
		region = cfg.RegionMutator(mesh, region)
	}
	if region.Count() == 0 {
		return nil, fmt.Errorf("core: gate rasterized to zero cells")
	}

	model, err := dispersion.New(cfg.Mat, mesh.Dz, dispersion.LocalDemag)
	if err != nil {
		return nil, err
	}
	k := units.WaveNumber(cfg.Spec.Lambda)
	freq := model.Frequency(k)
	vg := model.GroupVelocity(k)

	dt := cfg.DtScale * llg.StableDt(mesh, cfg.Mat)
	period := 1 / freq
	// Longest signal path: generous estimate from the layout bounds.
	b := l.Bounds()
	travel := (b.Width() + b.Height()) / vg
	duration := cfg.RampPeriods*period + cfg.SettleFactor*travel + float64(cfg.MeasurePeriods+1)*period

	return &Micromagnetic{
		kind:     kind,
		cfg:      cfg,
		L:        l,
		Mesh:     mesh,
		Region:   region,
		Freq:     freq,
		Vg:       vg,
		dt:       dt,
		duration: duration,
	}, nil
}

// Name implements Backend.
func (m *Micromagnetic) Name() string { return "micromagnetic" }

// Kind implements Backend.
func (m *Micromagnetic) Kind() GateKind { return m.kind }

// Duration returns the per-case simulated time in seconds.
func (m *Micromagnetic) Duration() float64 { return m.duration }

// Dt returns the solver time step.
func (m *Micromagnetic) Dt() float64 { return m.dt }

// nodeCells returns the material cells within radius of the node position.
func (m *Micromagnetic) nodeCells(n layout.Node, radius float64) []int {
	var cells []int
	for j := 0; j < m.Mesh.Ny; j++ {
		for i := 0; i < m.Mesh.Nx; i++ {
			idx := m.Mesh.Idx(i, j)
			if !m.Region[idx] {
				continue
			}
			x, y := m.Mesh.CellCenter(i, j)
			if math.Hypot(x-n.Pos.X, y-n.Pos.Y) <= radius {
				cells = append(cells, idx)
			}
		}
	}
	return cells
}

// newSolver builds a fresh solver with absorbers and the input antennas
// configured for the given input levels. Inputs whose name appears in
// mute are left out entirely (used by calibration runs).
func (m *Micromagnetic) newSolver(inputs []bool, mute map[string]bool) (*llg.Solver, map[string]*detect.Probe, error) {
	names := m.kind.InputNames()
	if err := checkInputs(m.kind, inputs); err != nil {
		return nil, nil, err
	}
	s, err := llg.New(m.Mesh, m.Region, m.cfg.Mat, m.dt)
	if err != nil {
		return nil, nil, err
	}
	s.Scheme = m.cfg.Scheme
	s.UseReference = m.cfg.UseReferenceStepper
	s.SetWorkers(m.cfg.Workers)

	// Matched terminations at the layout's absorbing ends.
	ramp := m.cfg.Spec.Tail
	if ramp <= 0 {
		ramp = 3 * m.cfg.Spec.Lambda
	}
	for _, ti := range m.L.Terminations() {
		n := m.L.Nodes[ti]
		s.AddAbsorberTowards(n.Pos.X, n.Pos.Y, ramp, m.cfg.MaxAlpha)
	}

	// Input antennas: a disc of radius w/2 at each input node end.
	rAnt := math.Max(m.cfg.Spec.Width/2, 1.5*m.Mesh.Dx)
	for i, name := range names {
		if mute[name] {
			continue
		}
		ni, err := m.L.NodeByName(name)
		if err != nil {
			return nil, nil, err
		}
		cells := m.nodeCells(m.L.Nodes[ni], rAnt)
		if len(cells) == 0 {
			return nil, nil, fmt.Errorf("core: antenna %s has no cells", name)
		}
		ant, err := excite.NewAntenna(name, cells, vec.UnitX, m.cfg.DriveField, m.Freq, 0)
		if err != nil {
			return nil, nil, err
		}
		ant.SetLogic(inputs[i])
		if name == "I3" {
			ant.Phase += m.cfg.I3PhaseTrim
		}
		ant.Env = excite.RampEnvelope(m.cfg.RampPeriods / m.Freq)
		s.Eval.Sources = append(s.Eval.Sources, ant)
	}

	// Thermal field, if requested.
	if m.cfg.Temperature > 0 {
		th, err := thermal.New(m.Mesh, m.Region, m.cfg.Mat, m.cfg.Temperature, m.dt, m.cfg.Seed)
		if err != nil {
			return nil, nil, err
		}
		s.Eval.Sources = append(s.Eval.Sources, th)
	}

	// Output probes.
	probes := make(map[string]*detect.Probe)
	for _, oi := range m.L.Outputs() {
		n := m.L.Nodes[oi]
		cells := m.nodeCells(n, rAnt)
		if len(cells) == 0 {
			return nil, nil, fmt.Errorf("core: probe %s has no cells", n.Name)
		}
		p, err := detect.NewProbe(n.Name, cells)
		if err != nil {
			return nil, nil, err
		}
		probes[n.Name] = p
	}
	return s, probes, nil
}

// Run implements Backend: a full transient simulation per case.
func (m *Micromagnetic) Run(inputs []bool) (map[string]detect.Readout, error) {
	return m.run(context.Background(), inputs, nil)
}

// RunContext implements ContextBackend: the context is polled before
// every integrator step, so cancellation aborts a multi-nanosecond
// transient within one step instead of after the full run.
func (m *Micromagnetic) RunContext(ctx context.Context, inputs []bool) (map[string]detect.Readout, error) {
	return m.run(ctx, inputs, nil)
}

// Fingerprint implements Fingerprinter: a canonical hash of the gate
// kind and the full micromagnetic config. A backend with a RegionMutator
// hook has no canonical identity and reports ok = false (uncacheable).
// The stepping worker count is excluded — trajectories are bit-identical
// for any value; the reference-stepper flag is included because the
// fused and reference cores differ at floating-point round-off.
func (m *Micromagnetic) Fingerprint() (string, bool) {
	if m.cfg.RegionMutator != nil {
		return "", false
	}
	c := m.cfg
	return hashKey(fmt.Sprintf("micromag/v1|%d|%+v|%+v|cell=%g|drive=%g|ramp=%g|meas=%d|settle=%g|sample=%d|alpha=%g|scheme=%d|T=%g|seed=%d|trim=%g|ref=%t|dts=%g",
		int(m.kind), c.Spec, c.Mat, c.CellSize, c.DriveField, c.RampPeriods,
		c.MeasurePeriods, c.SettleFactor, c.SampleEvery, c.MaxAlpha,
		int(c.Scheme), c.Temperature, c.Seed, c.I3PhaseTrim,
		c.UseReferenceStepper, c.DtScale)), true
}

// RunSingle excites only the named input at logic 0 and measures the
// outputs; the other transducers are absent. Used for path calibration,
// transmission diagnostics and building the superposition surrogate.
func (m *Micromagnetic) RunSingle(name string) (map[string]detect.Readout, error) {
	return m.RunSingleContext(context.Background(), name)
}

// RunSingleContext is RunSingle with cancellation: the context is polled
// before every integrator step, so an expired context aborts the
// transient within one step.
func (m *Micromagnetic) RunSingleContext(ctx context.Context, name string) (map[string]detect.Readout, error) {
	names := m.kind.InputNames()
	mute := make(map[string]bool, len(names))
	found := false
	for _, n := range names {
		if n == name {
			found = true
		} else {
			mute[n] = true
		}
	}
	if !found {
		return nil, fmt.Errorf("core: %w: %s has no input %q", ErrUnknownComponent, m.kind, name)
	}
	return m.run(ctx, make([]bool, len(names)), mute)
}

// RunBackground simulates with every antenna muted — only the thermal
// field (if configured) drives the system. With a fixed seed the noise
// realization is identical between runs, so subtracting the background
// lock-in output from a driven run's output coherently removes the
// thermal contribution (see sweep.CoherentReadout).
func (m *Micromagnetic) RunBackground() (map[string]detect.Readout, error) {
	names := m.kind.InputNames()
	mute := make(map[string]bool, len(names))
	for _, n := range names {
		mute[n] = true
	}
	return m.run(context.Background(), make([]bool, len(names)), mute)
}

// CalibrateI3 measures the phase offset between the I1 body path and the
// I3 trunk path at O1 and sets I3PhaseTrim so the two arrive in phase —
// the simulation-domain equivalent of the paper's "dimensions must be
// chosen accurately" trim of d2. It returns the applied trim in radians.
// Only meaningful for Majority structures.
func (m *Micromagnetic) CalibrateI3() (float64, error) {
	if m.kind == XOR {
		return 0, fmt.Errorf("core: %s has no I3 to calibrate", m.kind)
	}
	prev := m.cfg.I3PhaseTrim
	m.cfg.I3PhaseTrim = 0
	r1, err := m.RunSingle("I1")
	if err != nil {
		m.cfg.I3PhaseTrim = prev
		return 0, err
	}
	r3, err := m.RunSingle("I3")
	if err != nil {
		m.cfg.I3PhaseTrim = prev
		return 0, err
	}
	trim := dsp.PhaseDiff(r1["O1"].Phase, r3["O1"].Phase)
	m.cfg.I3PhaseTrim = trim
	return trim, nil
}

// inputString renders a logic-input vector as the paper's "10"-style
// case label for journal events.
func inputString(inputs []bool) string {
	b := make([]byte, len(inputs))
	for i, v := range inputs {
		if v {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// newRecorder builds the flight recorder over the run's detector cells.
// The ring capacity defaults to the whole run at the configured stride
// (bounded), so the full measurement window is retained; Freq defaults
// to the drive frequency so snapshots include live lock-in estimates.
func (m *Micromagnetic) newRecorder(s *llg.Solver, probes map[string]*detect.Probe) (*probe.Recorder, error) {
	pc := m.cfg.Probes.WithDefaults()
	if pc.Freq == 0 {
		pc.Freq = m.Freq
	}
	if m.cfg.Probes.Capacity == 0 {
		need := int(m.duration/m.dt)/pc.Stride + 2
		if need > 1<<20 {
			need = 1 << 20
		}
		pc.Capacity = need
	}
	names := make([]string, 0, len(probes))
	for name := range probes {
		names = append(names, name)
	}
	sort.Strings(names)
	points := make([]probe.Point, 0, len(names))
	for _, name := range names {
		points = append(points, probe.Point{Name: name, Cells: probes[name].Cells})
	}
	return probe.NewRecorder(pc, s.Eval, points)
}

func (m *Micromagnetic) run(ctx context.Context, inputs []bool, mute map[string]bool) (map[string]detect.Readout, error) {
	// One run ID correlates this run's journal events, span labels and
	// log lines; the engine propagates its eval ID down via the context.
	runID := journal.RunID(ctx)
	if runID == "" {
		runID = journal.NewRunID()
	}
	j := journal.Default()
	gateL, runL := obs.L("gate", m.kind.String()), obs.L("run", runID)
	if j.Enabled() {
		fields := []journal.Field{
			journal.F("gate", m.kind.String()),
			journal.F("inputs", inputString(inputs)),
			journal.F("duration_s", m.duration),
			journal.F("dt_s", m.dt),
			journal.F("freq_hz", m.Freq),
			journal.F("workers", m.cfg.Workers),
			journal.F("probes", m.cfg.Probes.Enabled),
		}
		if fp, ok := m.Fingerprint(); ok {
			fields = append(fields, journal.F("fingerprint", fp))
		}
		j.Emit(runID, "run.start", fields...)
	}
	fail := func(err error) (map[string]detect.Readout, error) {
		j.Emit(runID, "run.error", journal.F("error", err.Error()))
		return nil, err
	}

	setup := obs.StartSpan("micromag.setup", gateL, runL)
	s, probes, err := m.newSolver(inputs, mute)
	setup.End()
	if err != nil {
		return fail(err)
	}
	defer s.Close() // release the stepping pool, if any
	s.RunID = runID

	// The probe recorder and the health monitor share the solver's one
	// observer slot through a tee; with a single member the tee is skipped
	// so the common single-observer path stays direct.
	var observers llg.TeeObserver
	if m.cfg.Probes.Enabled {
		rec, err := m.newRecorder(s, probes)
		if err != nil {
			return fail(err)
		}
		observers = append(observers, rec)
		probe.Default().Put(runID, rec)
	}
	var mon *health.Monitor
	if m.cfg.Health.Enabled {
		mon = health.NewMonitor(m.cfg.Health, m.Region, runID,
			health.WithEvaluator(s.Eval),
			health.WithDriven(len(s.Eval.Sources) > 0))
		observers = append(observers, mon)
		defer mon.Finish()
	}
	switch len(observers) {
	case 0:
	case 1:
		s.SetObserver(observers[0])
	default:
		s.SetObserver(observers)
	}

	// Checkpointing applies only to full logic-case runs: calibration runs
	// (mute != nil) are short and drive a different source set, so a
	// snapshot of one would be meaningless to resume a logic case from.
	total := int(m.duration / m.dt)
	startStep := 0
	ck := m.cfg.Checkpoint.WithDefaults()
	ckActive := mute == nil && ck.Enabled()
	var ckFP string
	if ckActive {
		ckFP, _ = m.Fingerprint()
		if ck.Resume {
			st, err := checkpoint.Latest(ck.Dir)
			if err != nil {
				return fail(err)
			}
			if st != nil {
				if err := m.restoreFrom(s, probes, st, ckFP, inputs); err != nil {
					return fail(err)
				}
				startStep = st.Manifest.Step
				j.Emit(runID, "checkpoint.resume",
					journal.F("dir", ck.Dir),
					journal.F("step", startStep),
					journal.F("sim_time_s", s.Time),
					journal.F("from_run", st.Manifest.Run))
			}
		}
	}

	every := m.cfg.SampleEvery
	abortPoll := mon != nil && mon.Config().AbortOnCritical
	var paused bool
	var ckErr error
	transient := obs.StartSpan("micromag.transient", gateL, runL)
	// The callback sees the absolute step (startStep + step within this
	// segment), so the probe-sampling and snapshot cadences land on the
	// same steps whether or not the run was ever interrupted.
	err = s.RunSteps(ctx, total-startStep, func(step int) bool {
		abs := startStep + step
		if abs%every == 0 {
			for _, p := range probes {
				p.Sample(s.Time, s.M)
			}
		}
		if ckActive {
			stop := ck.StopAtStep > 0 && abs >= ck.StopAtStep && abs < total
			if stop || abs%ck.EverySteps == 0 {
				if ckErr = m.saveCheckpoint(ck, s, probes, runID, ckFP, abs, total, inputs); ckErr != nil {
					return false
				}
			}
			if stop {
				paused = true
				return false
			}
		}
		return !(abortPoll && mon.Tripped())
	})
	transient.End()
	if ckErr != nil {
		return fail(ckErr)
	}
	if err != nil {
		return fail(fmt.Errorf("core: %s evaluation aborted: %w", m.kind, err))
	}
	if mon != nil {
		if herr := mon.Err(); herr != nil {
			return fail(fmt.Errorf("core: %s evaluation aborted: %w", m.kind, herr))
		}
	}
	if err := s.CheckFinite(); err != nil {
		return fail(err)
	}
	if paused {
		// A pause is not a failure: the checkpoint just committed is the
		// run's durable result so far, and a later run with Resume set
		// picks up exactly here. Skip the lock-in — the measurement window
		// may not even have started yet.
		j.Emit(runID, "run.paused",
			journal.F("step", s.Steps()),
			journal.F("total_steps", total),
			journal.F("sim_time_s", s.Time))
		return nil, checkpoint.ErrPaused
	}
	j.Emit(runID, "run.settled",
		journal.F("steps", s.Steps()),
		journal.F("sim_time_s", s.Time))

	lockin := obs.StartSpan("micromag.lockin", gateL, runL)
	defer lockin.End()
	j.Emit(runID, "run.lockin",
		journal.F("freq_hz", m.Freq),
		journal.F("periods", m.cfg.MeasurePeriods))
	out := make(map[string]detect.Readout, len(probes))
	for name, p := range probes {
		r, err := p.LockIn(m.Freq, m.cfg.MeasurePeriods)
		if err != nil {
			return fail(err)
		}
		out[name] = r
	}
	if j.Enabled() {
		names := make([]string, 0, len(out))
		for name := range out {
			names = append(names, name)
		}
		sort.Strings(names)
		fields := make([]journal.Field, 0, 2*len(names))
		for _, name := range names {
			fields = append(fields,
				journal.F(name+".amplitude", out[name].Amplitude),
				journal.F(name+".phase", out[name].Phase))
		}
		j.Emit(runID, "run.complete", fields...)
	}
	return out, nil
}

// Snapshot runs the case and returns the final magnetization field along
// with the mesh and material region — the raw material for the Figure 5
// panels.
func (m *Micromagnetic) Snapshot(inputs []bool) (vec.Field, grid.Mesh, grid.Region, error) {
	s, _, err := m.newSolver(inputs, nil)
	if err != nil {
		return nil, grid.Mesh{}, nil, err
	}
	defer s.Close()
	s.Run(m.duration, nil)
	if err := s.CheckFinite(); err != nil {
		return nil, grid.Mesh{}, nil, err
	}
	return s.M, m.Mesh, m.Region, nil
}

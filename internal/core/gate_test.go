package core

import (
	"math"
	"testing"

	"spinwave/internal/detect"
	"spinwave/internal/layout"
	"spinwave/internal/material"
)

func behavioral(t *testing.T, kind GateKind) *Behavioral {
	t.Helper()
	b, err := NewBehavioral(kind, layout.PaperSpec(), material.FeCoB())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestGateKindHelpers(t *testing.T) {
	if MAJ3.NumInputs() != 3 || XOR.NumInputs() != 2 || MAJ3Single.NumInputs() != 3 {
		t.Error("NumInputs wrong")
	}
	if len(MAJ3.InputNames()) != 3 || MAJ3.InputNames()[2] != "I3" {
		t.Error("InputNames wrong")
	}
	if MAJ3.String() != "maj3-fo2" || XOR.String() != "xor-fo2" || MAJ3Single.String() != "maj3-single" {
		t.Error("String wrong")
	}
	if GateKind(9).String() == "" {
		t.Error("unknown kind name empty")
	}
}

func TestEnumerateInputsOrder(t *testing.T) {
	ins := EnumerateInputs(3)
	if len(ins) != 8 {
		t.Fatalf("len = %d", len(ins))
	}
	// Case 1 must be {I1=1, I2=0, I3=0} (paper row {I3 I2 I1} = 001).
	if !ins[1][0] || ins[1][1] || ins[1][2] {
		t.Errorf("case 1 = %v", ins[1])
	}
	// Case 6 = {I3 I2 I1} = 110 → I1=0, I2=1, I3=1.
	if ins[6][0] || !ins[6][1] || !ins[6][2] {
		t.Errorf("case 6 = %v", ins[6])
	}
}

func TestMajorityExpected(t *testing.T) {
	cases := map[[3]bool]bool{
		{false, false, false}: false,
		{true, false, false}:  false,
		{true, true, false}:   true,
		{true, true, true}:    true,
		{false, true, true}:   true,
	}
	for in, want := range cases {
		if got := MajorityExpected(in[:]); got != want {
			t.Errorf("MAJ%v = %v", in, got)
		}
	}
}

func TestBehavioralMajorityTruthTable(t *testing.T) {
	tt, err := MajorityTruthTable(behavioral(t, MAJ3))
	if err != nil {
		t.Fatal(err)
	}
	if len(tt.Cases) != 8 {
		t.Fatalf("cases = %d", len(tt.Cases))
	}
	if !tt.AllCorrect() {
		for _, c := range tt.Cases {
			if !c.Correct {
				t.Errorf("case %v wrong: %+v", c.Inputs, c.Outputs)
			}
		}
	}
	// Fan-out equivalence: O1 and O2 identical to numerical precision.
	if d := tt.FanOutMatched(); d > 1e-9 {
		t.Errorf("fan-out mismatch %g", d)
	}
	// Table I shape: unanimous rows ≈ 1, mixed rows well below.
	for _, c := range tt.Cases {
		unanimous := c.Inputs[0] == c.Inputs[1] && c.Inputs[1] == c.Inputs[2]
		for _, o := range c.Outputs {
			if unanimous && math.Abs(o.Normalized-1) > 1e-9 {
				t.Errorf("unanimous case %v: normalized %g", c.Inputs, o.Normalized)
			}
			if !unanimous && o.Normalized > 0.5 {
				t.Errorf("mixed case %v: normalized %g not < 0.5", c.Inputs, o.Normalized)
			}
		}
	}
	if tt.Detection != "phase" {
		t.Errorf("detection = %s", tt.Detection)
	}
}

func TestBehavioralMajoritySingleOutput(t *testing.T) {
	tt, err := MajorityTruthTable(behavioral(t, MAJ3Single))
	if err != nil {
		t.Fatal(err)
	}
	if !tt.AllCorrect() {
		t.Error("single-output majority truth table incorrect")
	}
	for _, c := range tt.Cases {
		if len(c.Outputs) != 1 {
			t.Fatalf("single-output gate has %d outputs", len(c.Outputs))
		}
	}
	if tt.FanOutMatched() != 0 {
		t.Error("FanOutMatched should be 0 for single output")
	}
}

func TestBehavioralXORTruthTable(t *testing.T) {
	tt, err := XORTruthTable(behavioral(t, XOR), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(tt.Cases) != 4 {
		t.Fatalf("cases = %d", len(tt.Cases))
	}
	if !tt.AllCorrect() {
		for _, c := range tt.Cases {
			t.Logf("case %v: %+v", c.Inputs, c.Outputs)
		}
		t.Error("XOR truth table incorrect")
	}
	if d := tt.FanOutMatched(); d > 1e-9 {
		t.Errorf("fan-out mismatch %g", d)
	}
	// Table II shape: equal inputs ≈ 1, unequal ≈ 0.
	for _, c := range tt.Cases {
		for _, o := range c.Outputs {
			if c.Inputs[0] == c.Inputs[1] && math.Abs(o.Normalized-1) > 1e-9 {
				t.Errorf("equal case %v normalized %g", c.Inputs, o.Normalized)
			}
			if c.Inputs[0] != c.Inputs[1] && o.Normalized > 0.05 {
				t.Errorf("unequal case %v normalized %g", c.Inputs, o.Normalized)
			}
		}
	}
}

func TestBehavioralXNOR(t *testing.T) {
	tt, err := XORTruthTable(behavioral(t, XOR), true)
	if err != nil {
		t.Fatal(err)
	}
	if tt.Gate != "xnor-fo2" {
		t.Errorf("gate = %s", tt.Gate)
	}
	if !tt.AllCorrect() {
		t.Error("XNOR truth table incorrect")
	}
}

func TestTruthTableKindMismatch(t *testing.T) {
	if _, err := MajorityTruthTable(behavioral(t, XOR)); err == nil {
		t.Error("majority table on XOR backend accepted")
	}
	if _, err := XORTruthTable(behavioral(t, MAJ3), false); err == nil {
		t.Error("XOR table on MAJ backend accepted")
	}
	if _, err := DerivedTruthTable(behavioral(t, XOR), AND); err == nil {
		t.Error("derived table on XOR backend accepted")
	}
}

func TestDerivedGates(t *testing.T) {
	b := behavioral(t, MAJ3)
	for _, d := range []DerivedGate{AND, OR, NAND, NOR} {
		tt, err := DerivedTruthTable(b, d)
		if err != nil {
			t.Fatal(err)
		}
		if !tt.AllCorrect() {
			for _, c := range tt.Cases {
				if !c.Correct {
					t.Errorf("%s case %v: %+v", d, c.Inputs, c.Outputs)
				}
			}
		}
	}
}

func TestDerivedGateExpected(t *testing.T) {
	if AND.Expected(true, true) != true || AND.Expected(true, false) != false {
		t.Error("AND wrong")
	}
	if OR.Expected(false, false) != false || OR.Expected(true, false) != true {
		t.Error("OR wrong")
	}
	if NAND.Expected(true, true) != false || NOR.Expected(false, false) != true {
		t.Error("NAND/NOR wrong")
	}
	names := map[DerivedGate]string{AND: "and", OR: "or", NAND: "nand", NOR: "nor"}
	for d, want := range names {
		if d.String() != want {
			t.Errorf("%v name = %s", d, d.String())
		}
	}
	if DerivedGate(9).String() == "" {
		t.Error("unknown derived gate name empty")
	}
	if _, _, err := DerivedGate(9).control(); err == nil {
		t.Error("unknown derived gate control accepted")
	}
}

func TestBehavioralRunValidation(t *testing.T) {
	b := behavioral(t, MAJ3)
	if _, err := b.Run([]bool{true}); err == nil {
		t.Error("wrong input count accepted")
	}
	if b.Name() != "behavioral" || b.Kind() != MAJ3 {
		t.Error("backend identity wrong")
	}
}

func TestNewBehavioralInvalidSpec(t *testing.T) {
	bad := layout.PaperSpec()
	bad.Lambda = 0
	if _, err := NewBehavioral(MAJ3, bad, material.FeCoB()); err != nil {
		return
	}
	t.Error("invalid spec accepted")
}

type fakeBackend struct {
	kind GateKind
	amp  float64
}

func (f *fakeBackend) Name() string   { return "fake" }
func (f *fakeBackend) Kind() GateKind { return f.kind }
func (f *fakeBackend) Run(in []bool) (map[string]detect.Readout, error) {
	return map[string]detect.Readout{"O1": {Probe: "O1", Amplitude: f.amp}}, nil
}

func TestReferenceCaseZeroAmplitudeRejected(t *testing.T) {
	f := &fakeBackend{kind: MAJ3, amp: 0}
	if _, err := MajorityTruthTable(f); err == nil {
		t.Error("zero reference amplitude accepted")
	}
}

func TestSortedOutputsFallback(t *testing.T) {
	res := map[string]detect.Readout{"Z": {}, "A": {}}
	got := sortedOutputs(res)
	if len(got) != 2 || got[0] != "A" || got[1] != "Z" {
		t.Errorf("fallback order = %v", got)
	}
	res2 := map[string]detect.Readout{"O2": {}, "O1": {}}
	got2 := sortedOutputs(res2)
	if got2[0] != "O1" || got2[1] != "O2" {
		t.Errorf("ordered outputs = %v", got2)
	}
}

package core

// §III-A output inversion: "if the desired output has to give logic
// inversion then d4 must be (n+1/2)λ". These tests verify the rule both
// behaviorally (exact half-turn phasor rotation) and in the full solver
// (detected phase flips by ≈π relative to the nλ build).

import (
	"math"
	"testing"

	"spinwave/internal/dsp"
	"spinwave/internal/layout"
	"spinwave/internal/material"
)

func TestHalfWaveOutputSpec(t *testing.T) {
	s := layout.PaperSpec()
	base := s.D4()
	s.OutputHalfWave = true
	if got := s.D4() - base; math.Abs(got-s.Lambda/2) > 1e-15 {
		t.Errorf("half-wave stub extension = %g, want λ/2", got)
	}
}

func TestBehavioralHalfWaveInvertsPhase(t *testing.T) {
	normal, err := NewBehavioral(MAJ3, layout.PaperSpec(), material.FeCoB())
	if err != nil {
		t.Fatal(err)
	}
	invSpec := layout.PaperSpec()
	invSpec.OutputHalfWave = true
	inverted, err := NewBehavioral(MAJ3, invSpec, material.FeCoB())
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range [][]bool{{false, false, false}, {true, true, false}} {
		a, err := normal.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := inverted.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range []string{"O1", "O2"} {
			d := math.Abs(dsp.PhaseDiff(b[o].Phase, a[o].Phase))
			if math.Abs(d-math.Pi) > 1e-9 {
				t.Errorf("case %v %s: phase shift %g, want π", in, o, d)
			}
			// The extra λ/2 of guide adds only its attenuation (≈0.8%).
			if math.Abs(a[o].Amplitude-b[o].Amplitude) > 0.02*a[o].Amplitude {
				t.Errorf("case %v %s: amplitude changed %g -> %g", in, o, a[o].Amplitude, b[o].Amplitude)
			}
		}
	}
}

// TestBehavioralHalfWaveGivesNMAJ: with inverted outputs, phase detection
// against the structure's own all-zeros case yields MAJ again (the
// reference flips too) — so the inverting detector must compare against
// the NON-inverting structure's reference, exactly like a downstream gate
// calibrated for the normal polarity would. Decoding the inverted
// structure with the normal reference yields NOT-MAJ for every case.
func TestBehavioralHalfWaveGivesNMAJ(t *testing.T) {
	normal, err := NewBehavioral(MAJ3, layout.PaperSpec(), material.FeCoB())
	if err != nil {
		t.Fatal(err)
	}
	invSpec := layout.PaperSpec()
	invSpec.OutputHalfWave = true
	inverted, err := NewBehavioral(MAJ3, invSpec, material.FeCoB())
	if err != nil {
		t.Fatal(err)
	}
	refOut, err := normal.Run([]bool{false, false, false})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range EnumerateInputs(3) {
		res, err := inverted.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		want := !MajorityExpected(in)
		for _, o := range []string{"O1", "O2"} {
			d := math.Abs(dsp.PhaseDiff(res[o].Phase, refOut[o].Phase))
			got := d > math.Pi/2
			if got != want {
				t.Errorf("NMAJ%v at %s = %v, want %v", in, o, got, want)
			}
		}
	}
}

func TestMicromagneticHalfWaveInvertsPhase(t *testing.T) {
	if testing.Short() {
		t.Skip("micromagnetic integration test")
	}
	normal, err := NewMicromagnetic(MAJ3, MicromagConfig{Spec: layout.ReducedSpec(), Mat: material.FeCoB()})
	if err != nil {
		t.Fatal(err)
	}
	invSpec := layout.ReducedSpec()
	invSpec.OutputHalfWave = true
	inverted, err := NewMicromagnetic(MAJ3, MicromagConfig{Spec: invSpec, Mat: material.FeCoB()})
	if err != nil {
		t.Fatal(err)
	}
	a, err := normal.Run([]bool{false, false, false})
	if err != nil {
		t.Fatal(err)
	}
	b, err := inverted.Run([]bool{false, false, false})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []string{"O1", "O2"} {
		d := math.Abs(dsp.PhaseDiff(b[o].Phase, a[o].Phase))
		// Rasterization quantizes the λ/2 extension; allow ±0.6 rad.
		if math.Abs(d-math.Pi) > 0.6 {
			t.Errorf("%s: inverted-output phase shift %.2f rad, want ≈π", o, d)
		}
	}
}

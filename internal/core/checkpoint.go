package core

import (
	"fmt"
	"sort"

	"spinwave/internal/checkpoint"
	"spinwave/internal/detect"
	"spinwave/internal/journal"
	"spinwave/internal/llg"
)

// restoreFrom applies one loaded checkpoint to a freshly built solver:
// identity guards first (a resume is only bit-identical for the exact
// same configuration and logic case), then the magnetization, integrator
// counters and probe sample series.
func (m *Micromagnetic) restoreFrom(s *llg.Solver, probes map[string]*detect.Probe, st *checkpoint.State, fp string, inputs []bool) error {
	man := st.Manifest
	if man.Fingerprint != "" && fp != "" && man.Fingerprint != fp {
		return fmt.Errorf("core: checkpoint was written by a different configuration (fingerprint %s, this backend %s)", man.Fingerprint, fp)
	}
	if man.Inputs != "" && man.Inputs != inputString(inputs) {
		return fmt.Errorf("core: checkpoint is for inputs %q, this run drives %q", man.Inputs, inputString(inputs))
	}
	if st.Mesh.NCells() != m.Mesh.NCells() {
		return fmt.Errorf("core: checkpoint mesh has %d cells, this backend %d", st.Mesh.NCells(), m.Mesh.NCells())
	}
	if err := s.Restore(st.M, man.SimTime, man.Step, man.Dt); err != nil {
		return err
	}
	for _, ps := range man.Probes {
		p, ok := probes[ps.Name]
		if !ok {
			return fmt.Errorf("core: checkpoint probe %q has no detector in this run", ps.Name)
		}
		if err := p.Restore(ps.Times, ps.MX, ps.MY, ps.MZ); err != nil {
			return err
		}
	}
	return nil
}

// saveCheckpoint commits one snapshot at absolute step abs and journals
// it. Runs on the stepping goroutine between solver steps, so the solver
// state it captures is exactly the committed state at abs.
func (m *Micromagnetic) saveCheckpoint(ck checkpoint.Config, s *llg.Solver, probes map[string]*detect.Probe, runID, fp string, abs, total int, inputs []bool) error {
	man := checkpoint.Manifest{
		Run:         runID,
		Gate:        m.kind.String(),
		Fingerprint: fp,
		Inputs:      inputString(inputs),
		Step:        abs,
		TotalSteps:  total,
		SimTime:     s.Time,
		Dt:          s.Dt,
		Scheme:      s.Scheme.String(),
		Trace:       ck.Trace,
		Probes:      probeStates(probes),
	}
	snap, err := checkpoint.Save(ck.Dir, man, m.Mesh, s.M, ck.Keep)
	if err != nil {
		return fmt.Errorf("core: checkpoint save: %w", err)
	}
	journal.Default().Emit(runID, "checkpoint.save",
		journal.F("dir", ck.Dir),
		journal.F("file", snap.ManifestFile),
		journal.F("step", abs),
		journal.F("total_steps", total),
		journal.F("sim_time_s", s.Time))
	if ck.OnSnapshot != nil {
		ck.OnSnapshot(ck.Dir, snap)
	}
	return nil
}

// probeStates captures every detector probe's sample series, sorted by
// name so manifests are deterministic.
func probeStates(probes map[string]*detect.Probe) []checkpoint.ProbeState {
	names := make([]string, 0, len(probes))
	for name := range probes {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]checkpoint.ProbeState, 0, len(names))
	for _, name := range names {
		p := probes[name]
		out = append(out, checkpoint.ProbeState{
			Name:  name,
			Times: append([]float64(nil), p.Times()...),
			MX:    append([]float64(nil), p.MX()...),
			MY:    append([]float64(nil), p.MY()...),
			MZ:    append([]float64(nil), p.MZ()...),
		})
	}
	return out
}

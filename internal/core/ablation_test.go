package core

// Ablation experiments for the design choices DESIGN.md calls out: the
// single-mode waveguide width and the interference body are what make the
// XOR's destructive case actually destructive. Running the same gate
// with the paper's 50 nm width — which in the solver's exchange-only
// dispersion supports a second (antisymmetric) width mode — must degrade
// the contrast, which is why PaperMicromagSpec/ReducedSpec narrow the
// guide to 0.45·λ (DESIGN.md §2).

import (
	"testing"

	"spinwave/internal/layout"
	"spinwave/internal/material"
)

// destructiveRatio runs the XOR {0,0} and {1,0} cases and returns
// destructive/constructive at O1.
func destructiveRatio(t *testing.T, spec layout.Spec) float64 {
	t.Helper()
	m, err := NewMicromagnetic(XOR, MicromagConfig{Spec: spec, Mat: material.FeCoB()})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := m.Run([]bool{false, false})
	if err != nil {
		t.Fatal(err)
	}
	diff, err := m.Run([]bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	return diff["O1"].Amplitude / ref["O1"].Amplitude
}

func TestAblationSingleModeWidth(t *testing.T) {
	if testing.Short() {
		t.Skip("micromagnetic integration test")
	}
	single := destructiveRatio(t, layout.ReducedSpec())

	multi := layout.ReducedSpec()
	multi.Width = layout.PaperSpec().Width // 50 nm: multimode in this solver
	multiRatio := destructiveRatio(t, multi)

	t.Logf("destructive/constructive: single-mode %.3f, multimode %.3f", single, multiRatio)
	if single > 0.15 {
		t.Errorf("single-mode contrast degraded: ratio %.3f", single)
	}
	if multiRatio < 2*single {
		t.Errorf("ablation did not show the effect: multimode %.3f vs single-mode %.3f",
			multiRatio, single)
	}
}

func TestMergeAngleRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("micromagnetic integration test")
	}
	// The merge half-angle is a free design parameter: the XOR must keep
	// its interference contrast from a shallow 20° merge up to a 45°
	// textbook Y-junction (the mode filtering comes from the single-mode
	// body, not from the angle).
	for _, deg := range []float64{20, 45} {
		spec := layout.ReducedSpec()
		spec.MergeDeg = deg
		ratio := destructiveRatio(t, spec)
		t.Logf("merge %v°: destructive/constructive = %.3f", deg, ratio)
		if ratio > 0.2 {
			t.Errorf("merge %v°: XOR contrast lost (ratio %.3f)", deg, ratio)
		}
	}
}

// TestAblationMAJBalance measures the body-path vs trunk-path amplitude
// balance that the Majority gate's 2-vs-1 cases depend on: the combined
// I1+I2 (body) wave must dominate the single I3 (trunk) wave at the
// outputs. This is the quantity the junction design controls (it failed
// at 4.3x the other way in an early 45°/no-body reconstruction).
func TestAblationMAJBalance(t *testing.T) {
	if testing.Short() {
		t.Skip("micromagnetic integration test")
	}
	m, err := NewMicromagnetic(MAJ3, MicromagConfig{Spec: layout.ReducedSpec(), Mat: material.FeCoB()})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := m.RunSingle("I1")
	if err != nil {
		t.Fatal(err)
	}
	r3, err := m.RunSingle("I3")
	if err != nil {
		t.Fatal(err)
	}
	// Two coherent data inputs deliver 2·a(I1); majority needs
	// 2·a(I1) > a(I3) with margin.
	balance := 2 * r1["O1"].Amplitude / r3["O1"].Amplitude
	t.Logf("body/trunk balance 2·a(I1)/a(I3) = %.2f", balance)
	if balance < 1.2 {
		t.Errorf("body wave too weak for robust majority: balance %.2f", balance)
	}
}

package core

import (
	"fmt"
	"math"

	"spinwave/internal/detect"
	"spinwave/internal/dispersion"
	"spinwave/internal/layout"
	"spinwave/internal/material"
	"spinwave/internal/phasor"
	"spinwave/internal/units"
)

// buildLayout constructs the layout for a gate kind.
func buildLayout(kind GateKind, spec layout.Spec) (*layout.Layout, error) {
	switch kind {
	case MAJ3:
		return layout.BuildMAJ3(spec, false)
	case MAJ3Single:
		return layout.BuildMAJ3(spec, true)
	case XOR:
		return layout.BuildXOR(spec)
	case MAJ5:
		return layout.BuildMAJ5(spec)
	default:
		return nil, fmt.Errorf("core: unknown gate kind %d", int(kind))
	}
}

// Behavioral is the fast phasor-network backend.
type Behavioral struct {
	kind GateKind
	L    *layout.Layout
	Net  *phasor.Network
}

// NewBehavioral builds a behavioral backend for the gate. The wave number
// comes from the spec wavelength, the attenuation length from the
// material's LocalDemag dispersion at that wavelength; junction
// scattering loss defaults to 0.9 amplitude transmission per junction.
func NewBehavioral(kind GateKind, spec layout.Spec, mat material.Params) (*Behavioral, error) {
	l, err := buildLayout(kind, spec)
	if err != nil {
		return nil, err
	}
	model, err := dispersion.New(mat, units.NM(1), dispersion.LocalDemag)
	if err != nil {
		return nil, err
	}
	k := units.WaveNumber(spec.Lambda)
	net, err := phasor.New(l, k, model.AttenuationLength(k))
	if err != nil {
		return nil, err
	}
	net.JunctionLoss = 0.9
	return &Behavioral{kind: kind, L: l, Net: net}, nil
}

// Name implements Backend.
func (b *Behavioral) Name() string { return "behavioral" }

// Kind implements Backend.
func (b *Behavioral) Kind() GateKind { return b.kind }

// Run implements Backend.
func (b *Behavioral) Run(inputs []bool) (map[string]detect.Readout, error) {
	names := b.kind.InputNames()
	if len(inputs) != len(names) {
		return nil, fmt.Errorf("core: %s needs %d inputs, got %d", b.kind, len(names), len(inputs))
	}
	drives := make(map[string]complex128, len(names))
	for i, n := range names {
		drives[n] = phasor.Drive(inputs[i])
	}
	out, err := b.Net.Evaluate(drives)
	if err != nil {
		return nil, err
	}
	res := make(map[string]detect.Readout, len(out))
	for name, v := range out {
		res[name] = detect.Readout{
			Probe:     name,
			Amplitude: cabs(v),
			Phase:     cphase(v),
		}
	}
	return res, nil
}

func cabs(v complex128) float64 { return math.Hypot(real(v), imag(v)) }

func cphase(v complex128) float64 { return math.Atan2(imag(v), real(v)) }

package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"

	"spinwave/internal/detect"
	"spinwave/internal/dispersion"
	"spinwave/internal/layout"
	"spinwave/internal/material"
	"spinwave/internal/phasor"
	"spinwave/internal/units"
)

// Sentinel errors, re-exported from layout (the bottom of the dependency
// graph) so every layer wraps the same values.
var (
	// ErrUnknownGate reports an unrecognized gate kind.
	ErrUnknownGate = layout.ErrUnknownGate
	// ErrBadInputCount reports an input slice of the wrong length.
	ErrBadInputCount = layout.ErrBadInputCount
	// ErrUnknownComponent reports a lookup of something that doesn't exist.
	ErrUnknownComponent = layout.ErrUnknownComponent
)

// buildLayout constructs the layout for a gate kind.
func buildLayout(kind GateKind, spec layout.Spec) (*layout.Layout, error) {
	switch kind {
	case MAJ3:
		return layout.BuildMAJ3(spec, false)
	case MAJ3Single:
		return layout.BuildMAJ3(spec, true)
	case XOR:
		return layout.BuildXOR(spec)
	case MAJ5:
		return layout.BuildMAJ5(spec)
	default:
		return nil, fmt.Errorf("core: %w: gate kind %d", ErrUnknownGate, int(kind))
	}
}

// checkInputs validates the input count for a gate kind.
func checkInputs(kind GateKind, inputs []bool) error {
	if want := kind.NumInputs(); len(inputs) != want {
		return fmt.Errorf("core: %w: %s needs %d inputs, got %d", ErrBadInputCount, kind, want, len(inputs))
	}
	return nil
}

// ContextBackend is implemented by backends with native context support:
// RunContext behaves like Run but honors cancellation and deadlines
// while the evaluation is in progress.
type ContextBackend interface {
	Backend
	RunContext(ctx context.Context, inputs []bool) (map[string]detect.Readout, error)
}

// RunContext evaluates one case on any Backend with context support: a
// ContextBackend runs natively (the micromagnetic backend aborts within
// one integrator step of cancellation); for plain backends this is the
// default adapter — the context is checked once up front and the
// evaluation then runs to completion.
func RunContext(ctx context.Context, b Backend, inputs []bool) (map[string]detect.Readout, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cb, ok := b.(ContextBackend); ok {
		return cb.RunContext(ctx, inputs)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b.Run(inputs)
}

// Fingerprinter is implemented by backends whose evaluation is a pure
// function of an enumerable configuration. Fingerprint returns a
// canonical identity string covering everything the readout depends on
// (gate kind, geometry, material, solver settings); ok is false when the
// backend cannot be canonically described (e.g. a region-mutator hook is
// installed) and results must not be cached.
type Fingerprinter interface {
	Fingerprint() (key string, ok bool)
}

// hashKey reduces a canonical description to a stable hex digest.
func hashKey(canonical string) string {
	sum := sha256.Sum256([]byte(canonical))
	return hex.EncodeToString(sum[:16])
}

// Behavioral is the fast phasor-network backend.
type Behavioral struct {
	kind GateKind
	L    *layout.Layout
	Net  *phasor.Network

	spec layout.Spec
	mat  material.Params
}

// NewBehavioral builds a behavioral backend for the gate. The wave number
// comes from the spec wavelength, the attenuation length from the
// material's LocalDemag dispersion at that wavelength; junction
// scattering loss defaults to 0.9 amplitude transmission per junction.
// Options (WithJunctionLoss, WithAttenuationLength) override the
// defaults.
func NewBehavioral(kind GateKind, spec layout.Spec, mat material.Params, opts ...BehavioralOption) (*Behavioral, error) {
	cfg := behavioralConfig{junctionLoss: 0.9}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.junctionLoss <= 0 || cfg.junctionLoss > 1 {
		return nil, fmt.Errorf("core: junction loss %g outside (0, 1]", cfg.junctionLoss)
	}
	l, err := buildLayout(kind, spec)
	if err != nil {
		return nil, err
	}
	attLen := cfg.attLength
	if attLen == 0 {
		model, err := dispersion.New(mat, units.NM(1), dispersion.LocalDemag)
		if err != nil {
			return nil, err
		}
		attLen = model.AttenuationLength(units.WaveNumber(spec.Lambda))
	}
	k := units.WaveNumber(spec.Lambda)
	net, err := phasor.New(l, k, attLen)
	if err != nil {
		return nil, err
	}
	net.JunctionLoss = cfg.junctionLoss
	return &Behavioral{kind: kind, L: l, Net: net, spec: spec, mat: mat}, nil
}

// Name implements Backend.
func (b *Behavioral) Name() string { return "behavioral" }

// Kind implements Backend.
func (b *Behavioral) Kind() GateKind { return b.kind }

// Run implements Backend.
func (b *Behavioral) Run(inputs []bool) (map[string]detect.Readout, error) {
	return b.RunContext(context.Background(), inputs)
}

// RunContext implements ContextBackend. The phasor evaluation is
// microseconds long, so the context is only checked up front.
func (b *Behavioral) RunContext(ctx context.Context, inputs []bool) (map[string]detect.Readout, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	names := b.kind.InputNames()
	if err := checkInputs(b.kind, inputs); err != nil {
		return nil, err
	}
	drives := make(map[string]complex128, len(names))
	for i, n := range names {
		drives[n] = phasor.Drive(inputs[i])
	}
	out, err := b.Net.Evaluate(drives)
	if err != nil {
		return nil, err
	}
	res := make(map[string]detect.Readout, len(out))
	for name, v := range out {
		res[name] = detect.Readout{
			Probe:     name,
			Amplitude: cabs(v),
			Phase:     cphase(v),
		}
	}
	return res, nil
}

// RunSingle drives only the named input at logic 0 and measures the
// outputs; the other transducers are switched off (zero drive). This is
// the behavioral counterpart of Micromagnetic.RunSingle — the unit
// response the linear-superposition surrogate is built from.
func (b *Behavioral) RunSingle(name string) (map[string]detect.Readout, error) {
	return b.RunSingleContext(context.Background(), name)
}

// RunSingleContext is RunSingle with context support (checked up front;
// the phasor evaluation is microseconds long).
func (b *Behavioral) RunSingleContext(ctx context.Context, name string) (map[string]detect.Readout, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	found := false
	for _, n := range b.kind.InputNames() {
		if n == name {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("core: %w: %s has no input %q", ErrUnknownComponent, b.kind, name)
	}
	out, err := b.Net.Evaluate(map[string]complex128{name: phasor.Drive(false)})
	if err != nil {
		return nil, err
	}
	res := make(map[string]detect.Readout, len(out))
	for n, v := range out {
		res[n] = detect.Readout{Probe: n, Amplitude: cabs(v), Phase: cphase(v)}
	}
	return res, nil
}

// Fingerprint implements Fingerprinter: a canonical hash of the gate
// kind, geometry, material, and phasor-network tuning.
func (b *Behavioral) Fingerprint() (string, bool) {
	return hashKey(fmt.Sprintf("behavioral/v1|%d|%+v|%+v|loss=%g|att=%g",
		int(b.kind), b.spec, b.mat, b.Net.JunctionLoss, b.Net.AttLength)), true
}

func cabs(v complex128) float64 { return math.Hypot(real(v), imag(v)) }

func cphase(v complex128) float64 { return math.Atan2(imag(v), real(v)) }

// Package core implements the paper's primary contribution: fan-out-of-2
// triangle-shape spin-wave logic gates. It exposes
//
//   - gate definitions (3-input Majority with phase detection, 2-input
//     X(N)OR with threshold detection, and the derived (N)AND/(N)OR gates
//     obtained by pinning I3, §III-A),
//   - two interchangeable evaluation backends — the fast behavioral
//     phasor model and the full micromagnetic simulation — behind the
//     Backend interface, and
//   - truth-table runners that reproduce the paper's Table I and Table II
//     (normalized output magnetization per input combination).
package core

import (
	"context"
	"fmt"
	"math"

	"spinwave/internal/detect"
)

// GateKind identifies a triangle-gate structure.
type GateKind int

const (
	// MAJ3 is the fan-out-of-2 3-input Majority gate (Figure 3).
	MAJ3 GateKind = iota
	// MAJ3Single is the simplified single-output Majority variant
	// (§III-A: one side removed).
	MAJ3Single
	// XOR is the fan-out-of-2 2-input XOR gate (Figure 4).
	XOR
	// MAJ5 is the fan-in-of-5 Majority extension (§III-A: extra data
	// inputs above I1 and below I2).
	MAJ5
)

// String names the gate kind.
func (g GateKind) String() string {
	switch g {
	case MAJ3:
		return "maj3-fo2"
	case MAJ3Single:
		return "maj3-single"
	case XOR:
		return "xor-fo2"
	case MAJ5:
		return "maj5-fo2"
	default:
		return fmt.Sprintf("GateKind(%d)", int(g))
	}
}

// NumInputs returns the number of data inputs of the gate.
func (g GateKind) NumInputs() int {
	switch g {
	case XOR:
		return 2
	case MAJ5:
		return 5
	default:
		return 3
	}
}

// InputNames returns the transducer names in I1..In order.
func (g GateKind) InputNames() []string {
	switch g {
	case XOR:
		return []string{"I1", "I2"}
	case MAJ5:
		return []string{"I1", "I2", "I3", "I4", "I5"}
	default:
		return []string{"I1", "I2", "I3"}
	}
}

// Backend evaluates the raw wave readout of a gate structure for one
// input combination. Implementations: Behavioral (phasor model) and
// Micromagnetic (LLG simulation).
type Backend interface {
	// Name identifies the backend for reports.
	Name() string
	// Kind returns the gate structure the backend was built for.
	Kind() GateKind
	// Run excites the inputs with the phase-encoded levels (inputs[i]
	// drives I<i+1>) and returns the steady-state readout at every
	// output, keyed by output name ("O1", "O2").
	Run(inputs []bool) (map[string]detect.Readout, error)
}

// OutputResult is the decoded state of one gate output for one case.
type OutputResult struct {
	Name       string
	Amplitude  float64 // raw detected amplitude
	Normalized float64 // amplitude / reference-case amplitude
	Phase      float64 // detected phase, rad
	Logic      bool
}

// CaseResult is the outcome of one input combination.
type CaseResult struct {
	Inputs  []bool
	Outputs []OutputResult
	// Expected is the ideal Boolean value for this case.
	Expected bool
	// Correct reports whether every output decoded to Expected.
	Correct bool
}

// TruthTable is a full enumeration of a gate's input space.
type TruthTable struct {
	Gate      string
	Backend   string
	Detection string // "phase" or "threshold"
	Cases     []CaseResult
}

// AllCorrect reports whether every case decoded correctly.
func (t *TruthTable) AllCorrect() bool {
	for _, c := range t.Cases {
		if !c.Correct {
			return false
		}
	}
	return true
}

// FanOutMatched reports the largest |O1 − O2| normalized-amplitude
// mismatch across cases, the paper's fan-out-equivalence figure of merit
// (Table I shows ≤ 0.001 difference). Gates with one output return 0.
func (t *TruthTable) FanOutMatched() float64 {
	worst := 0.0
	for _, c := range t.Cases {
		if len(c.Outputs) < 2 {
			continue
		}
		d := math.Abs(c.Outputs[0].Normalized - c.Outputs[1].Normalized)
		if d > worst {
			worst = d
		}
	}
	return worst
}

// MajorityExpected returns the ideal MAJ3 output.
func MajorityExpected(in []bool) bool {
	n := 0
	for _, b := range in {
		if b {
			n++
		}
	}
	return n*2 > len(in)
}

// XORExpected returns the ideal XOR output of two inputs.
func XORExpected(in []bool) bool { return in[0] != in[1] }

// EnumerateInputs yields all 2^n input combinations in the paper's table
// order: the case index counts up with I1 as the least-significant bit,
// so rows read {I3 I2 I1} = 000, 001, 010, ... as in Table I.
func EnumerateInputs(n int) [][]bool {
	out := make([][]bool, 1<<n)
	for c := range out {
		in := make([]bool, n)
		for b := 0; b < n; b++ {
			in[b] = c&(1<<b) != 0
		}
		out[c] = in
	}
	return out
}

// checkReference validates an all-zeros reference readout, used for
// amplitude normalization and as the logic-0 phase reference.
func checkReference(ref map[string]detect.Readout) error {
	if len(ref) == 0 {
		return fmt.Errorf("core: reference case has no outputs")
	}
	for name, r := range ref {
		if r.Amplitude <= 0 {
			return fmt.Errorf("core: reference case has zero amplitude at %s", name)
		}
	}
	return nil
}

// runCases evaluates every input combination of the gate serially and
// returns the raw readouts in EnumerateInputs order. The concurrent
// equivalent lives in internal/engine.
func runCases(ctx context.Context, b Backend, inputs [][]bool) ([]map[string]detect.Readout, error) {
	outs := make([]map[string]detect.Readout, len(inputs))
	for i, in := range inputs {
		res, err := RunContext(ctx, b, in)
		if err != nil {
			return nil, fmt.Errorf("core: case %v: %w", in, err)
		}
		outs[i] = res
	}
	return outs, nil
}

// AssembleMajorityTable decodes a Table-I truth table from raw readouts:
// ref is the all-zeros reference (amplitude normalization and logic-0
// phase), cases holds one readout per EnumerateInputs(kind.NumInputs())
// combination, in order. The readouts may have been produced serially or
// concurrently — assembly is deterministic either way.
func AssembleMajorityTable(kind GateKind, backendName string, ref map[string]detect.Readout, cases []map[string]detect.Readout) (*TruthTable, error) {
	if kind == XOR {
		return nil, fmt.Errorf("core: majority truth table needs a MAJ3 backend, got %s", kind)
	}
	if err := checkReference(ref); err != nil {
		return nil, err
	}
	ins := EnumerateInputs(kind.NumInputs())
	if len(cases) != len(ins) {
		return nil, fmt.Errorf("core: majority table needs %d case readouts, got %d", len(ins), len(cases))
	}
	tt := &TruthTable{Gate: kind.String(), Backend: backendName, Detection: "phase"}
	for ci, in := range ins {
		res := cases[ci]
		cr := CaseResult{Inputs: in, Expected: MajorityExpected(in), Correct: true}
		for _, name := range sortedOutputs(res) {
			r := res[name]
			det := detect.PhaseDetector{RefPhase: ref[name].Phase}
			logic := det.Detect(r)
			cr.Outputs = append(cr.Outputs, OutputResult{
				Name:       name,
				Amplitude:  r.Amplitude,
				Normalized: r.Amplitude / ref[name].Amplitude,
				Phase:      r.Phase,
				Logic:      logic,
			})
			if logic != cr.Expected {
				cr.Correct = false
			}
		}
		tt.Cases = append(tt.Cases, cr)
	}
	return tt, nil
}

// MajorityTruthTable reproduces Table I: it runs all 8 input cases of a
// MAJ3 backend, normalizes output amplitudes to the {0,0,0} case, and
// decodes each output by phase detection against the {0,0,0} phase.
func MajorityTruthTable(b Backend) (*TruthTable, error) {
	return MajorityTruthTableContext(context.Background(), b)
}

// MajorityTruthTableContext is MajorityTruthTable with cancellation: a
// cancelled or expired context aborts the table mid-evaluation (within
// one integrator step on the micromagnetic backend).
func MajorityTruthTableContext(ctx context.Context, b Backend) (*TruthTable, error) {
	if b.Kind() == XOR {
		return nil, fmt.Errorf("core: majority truth table needs a MAJ3 backend, got %s", b.Kind())
	}
	outs, err := runCases(ctx, b, EnumerateInputs(b.Kind().NumInputs()))
	if err != nil {
		return nil, err
	}
	// The all-zeros case is row 0 of the enumeration; it doubles as the
	// normalization/phase reference.
	return AssembleMajorityTable(b.Kind(), b.Name(), outs[0], outs)
}

// AssembleXORTable decodes a Table-II truth table from raw readouts: ref
// is the all-zeros reference amplitude, cases holds one readout per
// EnumerateInputs(2) combination, in order. Setting inverted decodes the
// XNOR gate (§III-B).
func AssembleXORTable(backendName string, inverted bool, ref map[string]detect.Readout, cases []map[string]detect.Readout) (*TruthTable, error) {
	if err := checkReference(ref); err != nil {
		return nil, err
	}
	ins := EnumerateInputs(2)
	if len(cases) != len(ins) {
		return nil, fmt.Errorf("core: XOR table needs %d case readouts, got %d", len(ins), len(cases))
	}
	gate := "xor-fo2"
	if inverted {
		gate = "xnor-fo2"
	}
	tt := &TruthTable{Gate: gate, Backend: backendName, Detection: "threshold"}
	for ci, in := range ins {
		res := cases[ci]
		want := XORExpected(in)
		if inverted {
			want = !want
		}
		cr := CaseResult{Inputs: in, Expected: want, Correct: true}
		for _, name := range sortedOutputs(res) {
			r := res[name]
			det := detect.ThresholdDetector{Threshold: 0.5, RefAmp: ref[name].Amplitude, Inverted: inverted}
			logic := det.Detect(r)
			cr.Outputs = append(cr.Outputs, OutputResult{
				Name:       name,
				Amplitude:  r.Amplitude,
				Normalized: r.Amplitude / ref[name].Amplitude,
				Phase:      r.Phase,
				Logic:      logic,
			})
			if logic != want {
				cr.Correct = false
			}
		}
		tt.Cases = append(tt.Cases, cr)
	}
	return tt, nil
}

// XORTruthTable reproduces Table II: all 4 input cases of the XOR
// backend, normalized to the {0,0} case and decoded by threshold
// detection with the paper's threshold of 0.5. Setting inverted yields
// the XNOR gate (§III-B).
func XORTruthTable(b Backend, inverted bool) (*TruthTable, error) {
	return XORTruthTableContext(context.Background(), b, inverted)
}

// XORTruthTableContext is XORTruthTable with cancellation.
func XORTruthTableContext(ctx context.Context, b Backend, inverted bool) (*TruthTable, error) {
	if b.Kind() != XOR {
		return nil, fmt.Errorf("core: XOR truth table needs an XOR backend, got %s", b.Kind())
	}
	outs, err := runCases(ctx, b, EnumerateInputs(2))
	if err != nil {
		return nil, err
	}
	return AssembleXORTable(b.Name(), inverted, outs[0], outs)
}

// DerivedGate selects a 2-input gate implemented on the MAJ3 structure by
// pinning I3 (§III-A) and, for the inverting variants, placing the output
// detector at (n+1/2)λ — equivalently flipping the phase reference.
type DerivedGate int

const (
	// AND pins I3 = 0.
	AND DerivedGate = iota
	// OR pins I3 = 1.
	OR
	// NAND pins I3 = 0 with inverted detection.
	NAND
	// NOR pins I3 = 1 with inverted detection.
	NOR
)

// String names the derived gate.
func (d DerivedGate) String() string {
	switch d {
	case AND:
		return "and"
	case OR:
		return "or"
	case NAND:
		return "nand"
	case NOR:
		return "nor"
	default:
		return fmt.Sprintf("DerivedGate(%d)", int(d))
	}
}

// control returns the pinned I3 level and whether detection is inverted.
func (d DerivedGate) control() (i3 bool, inverted bool, err error) {
	switch d {
	case AND:
		return false, false, nil
	case OR:
		return true, false, nil
	case NAND:
		return false, true, nil
	case NOR:
		return true, true, nil
	default:
		return false, false, fmt.Errorf("core: unknown derived gate %d", int(d))
	}
}

// Expected returns the ideal output of the derived gate.
func (d DerivedGate) Expected(a, b bool) bool {
	switch d {
	case AND:
		return a && b
	case OR:
		return a || b
	case NAND:
		return !(a && b)
	default: // NOR
		return !(a || b)
	}
}

// DerivedCaseInputs returns the 3-input drive pattern for each 2-input
// case of the derived gate, in EnumerateInputs(2) order: I1 and I2 carry
// data, I3 is pinned to the gate's control level (§III-A).
func (d DerivedGate) DerivedCaseInputs() ([][]bool, error) {
	i3, _, err := d.control()
	if err != nil {
		return nil, err
	}
	ins := EnumerateInputs(2)
	out := make([][]bool, len(ins))
	for i, in := range ins {
		out[i] = []bool{in[0], in[1], i3}
	}
	return out, nil
}

// AssembleDerivedTable decodes a §III-A derived-gate truth table from raw
// readouts: ref is the all-zeros reference of the underlying MAJ3
// structure, cases holds one readout per DerivedCaseInputs row, in order.
func AssembleDerivedTable(backendName string, d DerivedGate, ref map[string]detect.Readout, cases []map[string]detect.Readout) (*TruthTable, error) {
	_, inverted, err := d.control()
	if err != nil {
		return nil, err
	}
	if err := checkReference(ref); err != nil {
		return nil, err
	}
	ins := EnumerateInputs(2)
	if len(cases) != len(ins) {
		return nil, fmt.Errorf("core: derived table needs %d case readouts, got %d", len(ins), len(cases))
	}
	tt := &TruthTable{Gate: d.String() + "-on-maj3", Backend: backendName, Detection: "phase"}
	for ci, in := range ins {
		res := cases[ci]
		want := d.Expected(in[0], in[1])
		cr := CaseResult{Inputs: in, Expected: want, Correct: true}
		for _, name := range sortedOutputs(res) {
			r := res[name]
			refPhase := ref[name].Phase
			if inverted {
				refPhase += math.Pi // detector at (n+1/2)λ flips the reference
			}
			det := detect.PhaseDetector{RefPhase: refPhase}
			logic := det.Detect(r)
			cr.Outputs = append(cr.Outputs, OutputResult{
				Name:       name,
				Amplitude:  r.Amplitude,
				Normalized: r.Amplitude / ref[name].Amplitude,
				Phase:      r.Phase,
				Logic:      logic,
			})
			if logic != want {
				cr.Correct = false
			}
		}
		tt.Cases = append(tt.Cases, cr)
	}
	return tt, nil
}

// DerivedTruthTable evaluates a 2-input derived gate on a MAJ3 backend:
// I1 and I2 carry data, I3 is the control input (§III-A).
func DerivedTruthTable(b Backend, d DerivedGate) (*TruthTable, error) {
	return DerivedTruthTableContext(context.Background(), b, d)
}

// DerivedTruthTableContext is DerivedTruthTable with cancellation.
func DerivedTruthTableContext(ctx context.Context, b Backend, d DerivedGate) (*TruthTable, error) {
	if b.Kind() == XOR {
		return nil, fmt.Errorf("core: derived gates need a MAJ3 backend")
	}
	drives, err := d.DerivedCaseInputs()
	if err != nil {
		return nil, err
	}
	zeros := make([]bool, b.Kind().NumInputs())
	ref, err := RunContext(ctx, b, zeros)
	if err != nil {
		return nil, fmt.Errorf("core: reference case failed: %w", err)
	}
	outs, err := runCases(ctx, b, drives)
	if err != nil {
		return nil, err
	}
	return AssembleDerivedTable(b.Name(), d, ref, outs)
}

// sortedOutputs returns the output names in O1, O2, ... order.
func sortedOutputs(res map[string]detect.Readout) []string {
	names := make([]string, 0, len(res))
	for i := 1; i <= len(res)+2; i++ {
		name := fmt.Sprintf("O%d", i)
		if _, ok := res[name]; ok {
			names = append(names, name)
		}
	}
	if len(names) != len(res) {
		// Fallback: unknown naming scheme; collect all.
		names = names[:0]
		for name := range res {
			names = append(names, name)
		}
		for i := 1; i < len(names); i++ {
			for j := i; j > 0 && names[j] < names[j-1]; j-- {
				names[j], names[j-1] = names[j-1], names[j]
			}
		}
	}
	return names
}

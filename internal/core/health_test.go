package core

import (
	"strings"
	"testing"

	"spinwave/internal/health"
	"spinwave/internal/journal"
	"spinwave/internal/layout"
	"spinwave/internal/material"
	"spinwave/internal/obs"
)

// TestHealthDestabilizedRunE2E is the acceptance end-to-end: a dt
// scaled far past the stability bound destabilizes the fused
// integrator, and the streaming monitor must (1) fire a critical
// saturation alert into the journal, (2) record a violated
// health.verdict, (3) abort the run with a non-nil error — the signal
// the swsim/swtables -health flag turns into a non-zero exit — and
// (4) increment the critical alert counter in the metrics registry.
// The run aborts within one sweep cadence of the blow-up, so the test
// is fast enough to run un-short.
func TestHealthDestabilizedRunE2E(t *testing.T) {
	ring := journal.NewRingSink(128)
	defer journal.Default().Attach(ring)()
	critBefore := obs.Default().Counter("spinwave_health_alerts_total",
		obs.L("rule", health.RuleSaturation), obs.L("severity", "critical")).Value()

	m, err := NewMicromagnetic(XOR, MicromagConfig{
		Spec:    layout.ReducedSpec(),
		Mat:     material.FeCoB(),
		DtScale: 20,
		Health:  health.Config{Enabled: true, AbortOnCritical: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run([]bool{true, false})
	if err == nil {
		t.Fatal("destabilized run completed without a health abort")
	}
	if !strings.Contains(err.Error(), "aborted") || !strings.Contains(err.Error(), health.RuleSaturation) {
		t.Fatalf("abort error %q does not name the critical saturation alert", err)
	}

	// Journal: a critical alert followed by the violated verdict.
	var runID string
	var sawCritical, sawViolated bool
	for _, e := range ring.Events() {
		switch e.Name {
		case "alert":
			if e.Fields["severity"] == "critical" {
				sawCritical = true
				runID = e.Run
			}
		case "health.verdict":
			if e.Fields["verdict"] == "violated" {
				sawViolated = true
			}
		}
	}
	if !sawCritical || !sawViolated {
		t.Errorf("journal critical=%v violated=%v, want both (events: %+v)",
			sawCritical, sawViolated, ring.Events())
	}

	// Registry: the published report carries the violated verdict — the
	// exact signal healthExit() in the CLIs maps to a non-zero exit.
	rep, ok := health.Default().Get(runID)
	if !ok || rep.Verdict != health.Violated.String() {
		t.Errorf("health report for %s = %+v ok=%v, want violated", runID, rep, ok)
	}

	// Metrics: the critical counter moved.
	critAfter := obs.Default().Counter("spinwave_health_alerts_total",
		obs.L("rule", health.RuleSaturation), obs.L("severity", "critical")).Value()
	if critAfter <= critBefore {
		t.Errorf("critical alert counter %d -> %d, want an increment", critBefore, critAfter)
	}
}

// TestHealthyRunVerdict checks a sane run under full monitoring
// finishes healthy with zero alerts and an intact readout.
func TestHealthyRunVerdict(t *testing.T) {
	if testing.Short() {
		t.Skip("micromagnetic integration test")
	}
	ring := journal.NewRingSink(128)
	defer journal.Default().Attach(ring)()
	m, err := NewMicromagnetic(XOR, MicromagConfig{
		Spec:   layout.ReducedSpec(),
		Mat:    material.FeCoB(),
		Health: health.Config{Enabled: true, AbortOnCritical: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Run([]bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no readout")
	}
	for _, e := range ring.Events() {
		if e.Name == "alert" {
			t.Errorf("healthy run fired alert %+v", e.Fields)
		}
		if e.Name == "health.verdict" && e.Fields["verdict"] != "healthy" {
			t.Errorf("verdict %v, want healthy", e.Fields["verdict"])
		}
	}
}

// TestWorkerInvarianceWithMonitor pins that attaching the health
// monitor keeps the worker-count bit-identity guarantee: the monitor
// observes the committed field, never touches it.
func TestWorkerInvarianceWithMonitor(t *testing.T) {
	if testing.Short() {
		t.Skip("micromagnetic integration test")
	}
	run := func(workers int) []float64 {
		m, err := NewMicromagnetic(XOR, MicromagConfig{
			Spec:    layout.ReducedSpec(),
			Mat:     material.FeCoB(),
			Workers: workers,
			Health:  health.Config{Enabled: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		field, _, _, err := m.Snapshot([]bool{true, false})
		if err != nil {
			t.Fatal(err)
		}
		flat := make([]float64, 0, 3*len(field))
		for _, v := range field {
			flat = append(flat, v.X, v.Y, v.Z)
		}
		return flat
	}
	serial := run(1)
	parallel := run(4)
	if len(serial) != len(parallel) {
		t.Fatal("snapshot sizes differ")
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("monitored trajectories diverge at component %d: %g vs %g",
				i, serial[i], parallel[i])
		}
	}
}

// TestHealthExcludedFromFingerprint pins the cache-key contract:
// enabling monitoring must not split the engine cache (observation
// only), while DtScale — which changes the trajectory — must.
func TestHealthExcludedFromFingerprint(t *testing.T) {
	base := MicromagConfig{Spec: layout.ReducedSpec(), Mat: material.FeCoB()}
	mk := func(cfg MicromagConfig) string {
		m, err := NewMicromagnetic(XOR, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fp, ok := m.Fingerprint()
		if !ok {
			t.Fatal("no fingerprint")
		}
		return fp
	}
	plain := mk(base)
	withHealth := base
	withHealth.Health = health.Config{Enabled: true, AbortOnCritical: true}
	if mk(withHealth) != plain {
		t.Error("enabling health monitoring changed the fingerprint")
	}
	scaled := base
	scaled.DtScale = 0.5
	if mk(scaled) == plain {
		t.Error("DtScale not reflected in the fingerprint")
	}
}

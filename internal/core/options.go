package core

import (
	"spinwave/internal/checkpoint"
	"spinwave/internal/grid"
	"spinwave/internal/health"
	"spinwave/internal/layout"
	"spinwave/internal/llg"
	"spinwave/internal/material"
	"spinwave/internal/probe"
)

// BehavioralOption customizes NewBehavioral beyond the positional
// gate/spec/material arguments.
type BehavioralOption func(*behavioralConfig)

type behavioralConfig struct {
	junctionLoss float64
	attLength    float64 // 0 = derive from the material dispersion
}

// WithJunctionLoss sets the amplitude transmission factor applied at each
// junction node, in (0, 1]. The default 0.9 models the scattering loss of
// an abrupt Y-junction.
func WithJunctionLoss(f float64) BehavioralOption {
	return func(c *behavioralConfig) { c.junctionLoss = f }
}

// WithAttenuationLength overrides the 1/e amplitude attenuation length
// (meters) instead of deriving it from the material's dispersion. Zero or
// +Inf disables attenuation.
func WithAttenuationLength(l float64) BehavioralOption {
	return func(c *behavioralConfig) { c.attLength = l }
}

// MicromagOption customizes NewMicromagnetic. Options are applied in
// order onto a default config (ReducedSpec geometry, FeCoB material).
//
// MicromagConfig itself implements MicromagOption by replacing the whole
// config, so the pre-options call sites
//
//	NewMicromagnetic(kind, MicromagConfig{Spec: ..., Mat: ...})
//
// keep compiling and behaving exactly as before. That form is the
// deprecated path; new code should pass WithSpec/WithMaterial/... options.
type MicromagOption interface {
	applyMicromag(*MicromagConfig)
}

// applyMicromag implements MicromagOption: a bare config replaces the
// accumulated one wholesale (legacy constructor semantics).
func (c MicromagConfig) applyMicromag(dst *MicromagConfig) { *dst = c }

// micromagOptionFunc adapts a mutation function to MicromagOption.
type micromagOptionFunc func(*MicromagConfig)

func (f micromagOptionFunc) applyMicromag(c *MicromagConfig) { f(c) }

// WithSpec sets the gate geometry (default layout.ReducedSpec).
func WithSpec(s layout.Spec) MicromagOption {
	return micromagOptionFunc(func(c *MicromagConfig) { c.Spec = s })
}

// WithMaterial sets the film material (default material.FeCoB).
func WithMaterial(m material.Params) MicromagOption {
	return micromagOptionFunc(func(c *MicromagConfig) { c.Mat = m })
}

// WithScheme selects the LLG integrator (default RK4).
func WithScheme(s llg.Scheme) MicromagOption {
	return micromagOptionFunc(func(c *MicromagConfig) { c.Scheme = s })
}

// WithWorkers runs each transient's LLG stepping kernels on a persistent
// pool of n goroutines, banded over mesh rows. Trajectories are
// bit-identical for any worker count (see DESIGN.md §10).
func WithWorkers(n int) MicromagOption {
	return micromagOptionFunc(func(c *MicromagConfig) { c.Workers = n })
}

// WithReferenceStepper forces the original term-by-term LLG stepper
// instead of the fused tiled core — the benchmarking baseline.
func WithReferenceStepper(on bool) MicromagOption {
	return micromagOptionFunc(func(c *MicromagConfig) { c.UseReferenceStepper = on })
}

// WithCellSize sets the square cell edge in meters (default λ/11).
func WithCellSize(d float64) MicromagOption {
	return micromagOptionFunc(func(c *MicromagConfig) { c.CellSize = d })
}

// WithDriveField sets the antenna RF amplitude in Tesla (default 2 mT).
func WithDriveField(b float64) MicromagOption {
	return micromagOptionFunc(func(c *MicromagConfig) { c.DriveField = b })
}

// WithTemperature enables the stochastic thermal field at T kelvin with
// the given noise seed.
func WithTemperature(t float64, seed int64) MicromagOption {
	return micromagOptionFunc(func(c *MicromagConfig) { c.Temperature = t; c.Seed = seed })
}

// WithRegionMutator post-processes the rasterized material region (edge
// roughness, erosion, defects) before simulation — the §IV-D variability
// hook. A backend with a mutator is not cacheable by the engine (the
// function has no canonical identity).
func WithRegionMutator(f func(grid.Mesh, grid.Region) grid.Region) MicromagOption {
	return micromagOptionFunc(func(c *MicromagConfig) { c.RegionMutator = f })
}

// WithI3PhaseTrim sets the I3 drive-phase trim in radians (see
// MicromagConfig.I3PhaseTrim and CalibrateI3).
func WithI3PhaseTrim(rad float64) MicromagOption {
	return micromagOptionFunc(func(c *MicromagConfig) { c.I3PhaseTrim = rad })
}

// WithMeasurePeriods sets the lock-in window length in drive periods.
func WithMeasurePeriods(n int) MicromagOption {
	return micromagOptionFunc(func(c *MicromagConfig) { c.MeasurePeriods = n })
}

// WithProbes configures the in-situ flight recorder (DESIGN.md §11).
// Pass probe.Config{Enabled: true} for the default cadences; each run
// then publishes its recorder in probe.Default() under the run ID.
// Probing never alters the trajectory and does not affect the backend's
// cache fingerprint.
func WithProbes(pc probe.Config) MicromagOption {
	return micromagOptionFunc(func(c *MicromagConfig) { c.Probes = pc })
}

// WithHealth configures the numerical health monitor (DESIGN.md §12).
// Pass health.Config{Enabled: true} for the default rules and
// thresholds; each run then emits alert/health.verdict journal events
// and publishes its report in health.Default() under the run ID. Unless
// the abort policy stops a run, monitoring never alters the trajectory
// and does not affect the backend's cache fingerprint.
func WithHealth(hc health.Config) MicromagOption {
	return micromagOptionFunc(func(c *MicromagConfig) { c.Health = hc })
}

// WithCheckpoint enables periodic checkpointing and exact resume for
// every logic-case run (DESIGN.md §15). Pass checkpoint.Config with at
// least Dir set; Resume continues from the newest valid snapshot in Dir
// with a bit-identical trajectory, and StopAtStep pauses a run at a
// segment boundary with checkpoint.ErrPaused. Checkpointing never alters
// the trajectory and does not affect the backend's cache fingerprint.
func WithCheckpoint(cc checkpoint.Config) MicromagOption {
	return micromagOptionFunc(func(c *MicromagConfig) { c.Checkpoint = cc })
}

// WithDtScale multiplies the stability-bounded LLG time step (default
// 1). Values > 1 deliberately destabilize the integrator — the
// health-smoke knob; values < 1 trade speed for accuracy. DtScale
// changes the trajectory, so it is part of the cache fingerprint.
func WithDtScale(s float64) MicromagOption {
	return micromagOptionFunc(func(c *MicromagConfig) { c.DtScale = s })
}

package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"spinwave/internal/checkpoint"
	"spinwave/internal/detect"
	"spinwave/internal/layout"
	"spinwave/internal/material"
)

func checkpointedXOR(t *testing.T, cc checkpoint.Config) *Micromagnetic {
	t.Helper()
	m, err := NewMicromagnetic(XOR, MicromagConfig{
		Spec:       layout.ReducedSpec(),
		Mat:        material.FeCoB(),
		Checkpoint: cc,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCheckpointResumeBitIdentical is the PR's golden pin: a run paused
// at a segment boundary and resumed from its checkpoint must report
// exactly — bit for bit — the readouts of the uninterrupted run.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	inputs := []bool{true, false} // the paper's "10" XOR case
	golden, err := checkpointedXOR(t, checkpoint.Config{}).Run(inputs)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	base := checkpointedXOR(t, checkpoint.Config{})
	total := int(base.Duration() / base.Dt())
	stopAt := total / 3

	// Segment 1: run to the boundary, expect a clean pause.
	seg := checkpointedXOR(t, checkpoint.Config{Dir: dir, EverySteps: 500, StopAtStep: stopAt})
	out, err := seg.Run(inputs)
	if !errors.Is(err, checkpoint.ErrPaused) {
		t.Fatalf("segment run: out=%v err=%v, want ErrPaused", out, err)
	}
	st, err := checkpoint.Latest(dir)
	if err != nil || st == nil {
		t.Fatalf("no checkpoint after pause: %v", err)
	}
	if st.Manifest.Step != stopAt {
		t.Errorf("paused at step %d, want %d", st.Manifest.Step, stopAt)
	}

	// Segment 2: a fresh backend resumes and finishes the transient.
	res := checkpointedXOR(t, checkpoint.Config{Dir: dir, EverySteps: 500, Resume: true})
	resumed, err := res.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"O1", "O2"} {
		g, r := golden[name], resumed[name]
		if g != (detect.Readout{}) && r != g {
			t.Errorf("%s: resumed readout %+v != golden %+v", name, r, g)
		}
		if g == (detect.Readout{}) {
			t.Errorf("%s: golden readout missing", name)
		}
	}
}

// TestCheckpointResumeGuards pins the identity checks: a checkpoint from
// a different configuration or logic case must be refused, not silently
// resumed into a wrong trajectory.
func TestCheckpointResumeGuards(t *testing.T) {
	dir := t.TempDir()
	base := checkpointedXOR(t, checkpoint.Config{})
	total := int(base.Duration() / base.Dt())
	seg := checkpointedXOR(t, checkpoint.Config{Dir: dir, StopAtStep: total / 4})
	if _, err := seg.Run([]bool{true, false}); !errors.Is(err, checkpoint.ErrPaused) {
		t.Fatalf("segment run: %v", err)
	}

	// Different trajectory (DtScale) — fingerprint mismatch.
	drifted, err := NewMicromagnetic(XOR, MicromagConfig{
		Spec: layout.ReducedSpec(), Mat: material.FeCoB(), DtScale: 0.5,
		Checkpoint: checkpoint.Config{Dir: dir, Resume: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := drifted.Run([]bool{true, false}); err == nil {
		t.Error("fingerprint mismatch accepted on resume")
	}

	// Same configuration, different logic case.
	other := checkpointedXOR(t, checkpoint.Config{Dir: dir, Resume: true})
	if _, err := other.Run([]bool{false, true}); err == nil {
		t.Error("inputs mismatch accepted on resume")
	}
}

// TestCheckpointSkipsCalibrationRuns pins that RunSingle/RunBackground
// never write snapshots even with checkpointing configured — a muted-run
// snapshot would be meaningless to resume a logic case from.
func TestCheckpointSkipsCalibrationRuns(t *testing.T) {
	dir := t.TempDir()
	m := checkpointedXOR(t, checkpoint.Config{Dir: dir, EverySteps: 100})
	if _, err := m.RunSingle("I1"); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Errorf("calibration run wrote %d checkpoint files", len(entries))
	}
	if _, err := os.Stat(filepath.Join(dir, "ck-000000000000.json")); !os.IsNotExist(err) {
		t.Error("unexpected snapshot at step 0")
	}
}

// TestCheckpointExcludedFromFingerprint guards the cache contract: a
// checkpointed backend and a plain one share fingerprints, like Probes
// and Health.
func TestCheckpointExcludedFromFingerprint(t *testing.T) {
	plain := checkpointedXOR(t, checkpoint.Config{})
	ckpt := checkpointedXOR(t, checkpoint.Config{Dir: t.TempDir(), EverySteps: 7, Resume: true})
	fp1, ok1 := plain.Fingerprint()
	fp2, ok2 := ckpt.Fingerprint()
	if !ok1 || !ok2 || fp1 != fp2 {
		t.Errorf("fingerprints differ: %q (%t) vs %q (%t)", fp1, ok1, fp2, ok2)
	}
}

package core

import (
	"testing"

	"spinwave/internal/detect"
	"spinwave/internal/layout"
	"spinwave/internal/material"
)

func TestMAJ5KindHelpers(t *testing.T) {
	if MAJ5.NumInputs() != 5 {
		t.Errorf("NumInputs = %d", MAJ5.NumInputs())
	}
	names := MAJ5.InputNames()
	if len(names) != 5 || names[4] != "I5" {
		t.Errorf("InputNames = %v", names)
	}
	if MAJ5.String() != "maj5-fo2" {
		t.Errorf("String = %s", MAJ5.String())
	}
}

// TestBehavioralMAJ5TruthTable: the §III-A fan-in extension computes a
// 5-input majority with fan-out of 2 — all 32 cases by phase detection.
func TestBehavioralMAJ5TruthTable(t *testing.T) {
	b, err := NewBehavioral(MAJ5, layout.PaperSpec(), material.FeCoB())
	if err != nil {
		t.Fatal(err)
	}
	tt, err := MajorityTruthTable(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(tt.Cases) != 32 {
		t.Fatalf("cases = %d, want 32", len(tt.Cases))
	}
	if !tt.AllCorrect() {
		for _, c := range tt.Cases {
			if !c.Correct {
				t.Errorf("case %v: %+v", c.Inputs, c.Outputs)
			}
		}
	}
	if d := tt.FanOutMatched(); d > 1e-9 {
		t.Errorf("fan-out mismatch %g", d)
	}
}

func TestMAJ5LayoutPaths(t *testing.T) {
	l, err := layout.BuildMAJ5(layout.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(l.Inputs()); got != 5 {
		t.Fatalf("inputs = %d", got)
	}
	for _, in := range []string{"I4", "I5"} {
		n, err := l.PathLengthInLambda(in, "X")
		if err != nil {
			t.Fatal(err)
		}
		if n != float64(layout.PaperSpec().D1N) {
			t.Errorf("%s arm = %gλ", in, n)
		}
	}
	// Steep merge angles are rejected.
	s := layout.PaperSpec()
	s.MergeDeg = 40
	if _, err := layout.BuildMAJ5(s); err == nil {
		t.Error("MAJ5 with 40° half-angle accepted (2θ > 60°)")
	}
}

// TestMicromagneticMAJ5Cases runs a representative subset of MAJ5 cases
// in the full solver: unanimity and one 3-2 split per polarity.
func TestMicromagneticMAJ5Cases(t *testing.T) {
	if testing.Short() {
		t.Skip("micromagnetic integration test")
	}
	m, err := NewMicromagnetic(MAJ5, MicromagConfig{
		Spec: layout.ReducedSpec(),
		Mat:  material.FeCoB(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CalibrateI3(); err != nil {
		t.Fatal(err)
	}
	ref, err := m.Run(make([]bool, 5))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		in   []bool
		want bool
	}{
		{[]bool{true, true, true, true, true}, true},
		// 3-2 splits with the data arms disagreeing.
		{[]bool{true, true, true, false, false}, true},
		{[]bool{false, false, false, true, true}, false},
	}
	for _, c := range cases {
		out, err := m.Run(c.in)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"O1", "O2"} {
			det := detect.PhaseDetector{RefPhase: ref[name].Phase}
			if got := det.Detect(out[name]); got != c.want {
				t.Errorf("MAJ5%v at %s = %v, want %v (Δφ from ref %.2f)",
					c.in, name, got, c.want, out[name].Phase-ref[name].Phase)
			}
		}
	}
}

package core

import (
	"math"
	"testing"

	"spinwave/internal/layout"
	"spinwave/internal/material"
)

func reducedMicromag(t *testing.T, kind GateKind) *Micromagnetic {
	t.Helper()
	m, err := NewMicromagnetic(kind, MicromagConfig{
		Spec: layout.ReducedSpec(),
		Mat:  material.FeCoB(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMicromagneticValidation(t *testing.T) {
	if _, err := NewMicromagnetic(MAJ3, MicromagConfig{Spec: layout.Spec{}, Mat: material.FeCoB()}); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := NewMicromagnetic(MAJ3, MicromagConfig{Spec: layout.ReducedSpec(), Mat: material.Params{}}); err == nil {
		t.Error("invalid material accepted")
	}
	// Permalloy has no PMA: forward-volume configuration impossible.
	if _, err := NewMicromagnetic(MAJ3, MicromagConfig{Spec: layout.ReducedSpec(), Mat: material.Permalloy()}); err == nil {
		t.Error("in-plane material accepted")
	}
}

func TestMicromagneticSetup(t *testing.T) {
	m := reducedMicromag(t, MAJ3)
	if m.Name() != "micromagnetic" || m.Kind() != MAJ3 {
		t.Error("identity wrong")
	}
	if m.Region.Count() == 0 {
		t.Error("empty region")
	}
	// Drive frequency must be in the design window and the duration must
	// cover ramp + travel + measurement.
	if g := m.Freq / 1e9; g < 8 || g > 25 {
		t.Errorf("drive frequency %g GHz implausible", g)
	}
	if m.Duration() < 0.5e-9 || m.Duration() > 20e-9 {
		t.Errorf("duration %g s implausible", m.Duration())
	}
	if m.Dt() <= 0 || m.Dt() > 1e-12 {
		t.Errorf("dt %g implausible", m.Dt())
	}
}

func TestMicromagneticRunValidation(t *testing.T) {
	m := reducedMicromag(t, XOR)
	if _, err := m.Run([]bool{true}); err == nil {
		t.Error("wrong input count accepted")
	}
	if _, err := m.RunSingle("I9"); err == nil {
		t.Error("unknown single input accepted")
	}
	if _, err := m.CalibrateI3(); err == nil {
		t.Error("XOR I3 calibration accepted")
	}
}

// TestMicromagneticXORTruthTable reproduces Table II on the reduced
// device: equal inputs ≈ 1 normalized magnetization, unequal ≈ 0, with
// O1 ≈ O2 (fan-out of 2).
func TestMicromagneticXORTruthTable(t *testing.T) {
	if testing.Short() {
		t.Skip("micromagnetic integration test")
	}
	m := reducedMicromag(t, XOR)
	tt, err := XORTruthTable(m, false)
	if err != nil {
		t.Fatal(err)
	}
	if !tt.AllCorrect() {
		for _, c := range tt.Cases {
			t.Logf("case %v: %+v", c.Inputs, c.Outputs)
		}
		t.Error("XOR truth table incorrect")
	}
	if d := tt.FanOutMatched(); d > 0.05 {
		t.Errorf("fan-out mismatch %g > 0.05", d)
	}
	for _, c := range tt.Cases {
		for _, o := range c.Outputs {
			if c.Inputs[0] == c.Inputs[1] && math.Abs(o.Normalized-1) > 0.1 {
				t.Errorf("equal case %v normalized %g, want ≈1", c.Inputs, o.Normalized)
			}
			if c.Inputs[0] != c.Inputs[1] && o.Normalized > 0.3 {
				t.Errorf("unequal case %v normalized %g, want ≈0", c.Inputs, o.Normalized)
			}
		}
	}
}

// TestMicromagneticMajorityTruthTable reproduces Table I on the reduced
// device after the I3 path calibration.
func TestMicromagneticMajorityTruthTable(t *testing.T) {
	if testing.Short() {
		t.Skip("micromagnetic integration test")
	}
	m := reducedMicromag(t, MAJ3)
	trim, err := m.CalibrateI3()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(trim) > math.Pi {
		t.Errorf("trim %g out of range", trim)
	}
	tt, err := MajorityTruthTable(m)
	if err != nil {
		t.Fatal(err)
	}
	if !tt.AllCorrect() {
		for _, c := range tt.Cases {
			t.Logf("case %v correct=%v: %+v", c.Inputs, c.Correct, c.Outputs)
		}
		t.Fatal("majority truth table incorrect")
	}
	// FO2 equivalence (paper Table I: O1 and O2 agree to ≤ 0.001; allow
	// a little more on the reduced device).
	if d := tt.FanOutMatched(); d > 0.02 {
		t.Errorf("fan-out mismatch %g > 0.02", d)
	}
	// Table I shape: unanimous ≈ 1, the I1=I2≠I3 rows well below 0.5.
	for _, c := range tt.Cases {
		unanimous := c.Inputs[0] == c.Inputs[1] && c.Inputs[1] == c.Inputs[2]
		twoOne := c.Inputs[0] == c.Inputs[1] && c.Inputs[2] != c.Inputs[0]
		for _, o := range c.Outputs {
			if unanimous && math.Abs(o.Normalized-1) > 0.1 {
				t.Errorf("unanimous %v normalized %g", c.Inputs, o.Normalized)
			}
			if twoOne && o.Normalized > 0.4 {
				t.Errorf("2-1 case %v normalized %g", c.Inputs, o.Normalized)
			}
		}
	}
}

func TestMicromagneticSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("micromagnetic integration test")
	}
	m := reducedMicromag(t, XOR)
	field, mesh, region, err := m.Snapshot([]bool{false, false})
	if err != nil {
		t.Fatal(err)
	}
	if len(field) != mesh.NCells() || len(region) != mesh.NCells() {
		t.Fatal("snapshot shapes wrong")
	}
	// The driven structure must show in-plane precession somewhere.
	maxInPlane := 0.0
	for i, on := range region {
		if on {
			a := math.Hypot(field[i].X, field[i].Y)
			if a > maxInPlane {
				maxInPlane = a
			}
		}
	}
	if maxInPlane < 1e-5 {
		t.Errorf("snapshot shows no wave: max in-plane %g", maxInPlane)
	}
}

func TestMicromagConfigDefaults(t *testing.T) {
	cfg := MicromagConfig{Spec: layout.ReducedSpec(), Mat: material.FeCoB()}.withDefaults()
	if cfg.CellSize != layout.ReducedSpec().Lambda/11 {
		t.Errorf("CellSize default = %g", cfg.CellSize)
	}
	if cfg.DriveField != 2e-3 || cfg.RampPeriods != 3 || cfg.MeasurePeriods != 4 {
		t.Errorf("drive defaults wrong: %+v", cfg)
	}
	if cfg.SettleFactor != 1.6 || cfg.SampleEvery != 4 || cfg.MaxAlpha != 0.5 {
		t.Errorf("timing defaults wrong: %+v", cfg)
	}
	// Explicit values survive.
	c2 := MicromagConfig{Spec: layout.ReducedSpec(), Mat: material.FeCoB(), DriveField: 7e-3}.withDefaults()
	if c2.DriveField != 7e-3 {
		t.Errorf("explicit drive overridden: %g", c2.DriveField)
	}
}

package measure

import (
	"math"
	"testing"

	"spinwave/internal/dispersion"
	"spinwave/internal/material"
	"spinwave/internal/units"
)

func TestDispersionValidation(t *testing.T) {
	cfg := StripConfig{Mat: material.FeCoB()}
	if _, err := Dispersion(cfg, nil); err == nil {
		t.Error("empty frequency list accepted")
	}
	if _, err := Dispersion(StripConfig{}, []float64{10e9}); err == nil {
		t.Error("zero material accepted")
	}
	// Below the band gap (~3.65 GHz) no propagating wave exists.
	if _, err := Dispersion(cfg, []float64{1e9}); err == nil {
		t.Error("sub-gap frequency accepted")
	}
}

func TestFitPhaseSlope(t *testing.T) {
	k := 1.1e8
	dx := 5e-9
	phases := make([]float64, 60)
	for i := range phases {
		raw := k * float64(i) * dx
		phases[i] = math.Atan2(math.Sin(raw), math.Cos(raw)) // wrapped
	}
	got := fitPhaseSlope(phases, dx)
	if math.Abs(got-k) > 1e-3*k {
		t.Errorf("slope = %g, want %g", got, k)
	}
}

func TestFitDecayLength(t *testing.T) {
	dx := 5e-9
	l := 800e-9
	amps := make([]float64, 80)
	for i := range amps {
		amps[i] = 0.01 * math.Exp(-float64(i)*dx/l)
	}
	got := fitDecayLength(amps, dx)
	if math.Abs(got-l) > 0.02*l {
		t.Errorf("decay length = %g, want %g", got, l)
	}
	// Flat profile: infinite decay length.
	flat := []float64{1, 1, 1, 1}
	if !math.IsInf(fitDecayLength(flat, dx), 1) {
		t.Error("flat profile not infinite")
	}
	// Too few valid points.
	if !math.IsInf(fitDecayLength([]float64{0, 0, 1}, dx), 1) {
		t.Error("insufficient points not infinite")
	}
}

// TestMeasuredDispersionMatchesAnalytic is the headline solver
// validation: the realized wave numbers across the band must match the
// LocalDemag dispersion branch within a few percent.
func TestMeasuredDispersionMatchesAnalytic(t *testing.T) {
	if testing.Short() {
		t.Skip("micromagnetic integration test")
	}
	cfg := StripConfig{Mat: material.FeCoB()}
	model, err := dispersion.New(material.FeCoB(), 1e-9, dispersion.LocalDemag)
	if err != nil {
		t.Fatal(err)
	}
	// Frequencies chosen to give λ between ~40 and ~90 nm.
	freqs := []float64{
		model.FrequencyForWavelength(units.NM(80)),
		model.FrequencyForWavelength(units.NM(55)),
		model.FrequencyForWavelength(units.NM(45)),
	}
	pts, err := Dispersion(cfg, freqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.RelError > 0.08 {
			t.Errorf("f=%.2f GHz: measured k=%.3g vs analytic %.3g (err %.1f%%)",
				units.ToGHz(p.Freq), p.K, p.AnalyticK, 100*p.RelError)
		}
		if p.AttnLength < units.NM(300) {
			t.Errorf("f=%.2f GHz: attenuation length %.3g m implausibly short",
				units.ToGHz(p.Freq), p.AttnLength)
		}
	}
}

// TestMeasuredGroupVelocity times the wave front between two probes and
// compares with the analytic group velocity.
func TestMeasuredGroupVelocity(t *testing.T) {
	if testing.Short() {
		t.Skip("micromagnetic integration test")
	}
	model, err := dispersion.New(material.FeCoB(), 1e-9, dispersion.LocalDemag)
	if err != nil {
		t.Fatal(err)
	}
	f := model.FrequencyForWavelength(units.NM(55))
	vg, err := GroupVelocity(StripConfig{Mat: material.FeCoB()}, f)
	if err != nil {
		t.Fatal(err)
	}
	want := model.GroupVelocity(units.WaveNumber(units.NM(55)))
	// Front-timing is a coarse estimator: accept ±35%.
	if math.Abs(vg-want) > 0.35*want {
		t.Errorf("vg = %.0f m/s, analytic %.0f", vg, want)
	}
}

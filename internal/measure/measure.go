// Package measure extracts physical quantities from micromagnetic
// simulations: the numerically realized dispersion relation f(k) of a
// driven waveguide, group velocity from wave-front arrival, and the
// attenuation length from the spatial amplitude envelope.
//
// These measurements validate the solver substrate against the analytic
// internal/dispersion model — the in-repo equivalent of the dispersion
// characterization every experimental spin-wave paper (including this
// one, §IV-A) performs before designing a gate.
package measure

import (
	"fmt"
	"math"

	"spinwave/internal/dispersion"
	"spinwave/internal/excite"
	"spinwave/internal/grid"
	"spinwave/internal/llg"
	"spinwave/internal/material"
	"spinwave/internal/units"
	"spinwave/internal/vec"
)

// StripConfig describes the waveguide strip used for measurements.
type StripConfig struct {
	Mat      material.Params
	CellSize float64 // m (default 5 nm)
	Length   float64 // m (default 1 µm)
	B0       float64 // drive amplitude, T (default 2 mT)
	// Absorber is the absorbing-end ramp length (default 120 nm).
	Absorber float64
}

func (c StripConfig) withDefaults() StripConfig {
	if c.CellSize == 0 {
		c.CellSize = 5e-9
	}
	if c.Length == 0 {
		c.Length = 1e-6
	}
	if c.B0 == 0 {
		c.B0 = 2e-3
	}
	if c.Absorber == 0 {
		c.Absorber = 120e-9
	}
	return c
}

// DispersionPoint is one measured (f, k) sample.
type DispersionPoint struct {
	Freq       float64 // drive frequency, Hz
	K          float64 // measured wave number, rad/m
	Lambda     float64 // measured wavelength, m
	AnalyticK  float64 // prediction of the LocalDemag branch
	RelError   float64 // |K − AnalyticK| / AnalyticK
	AttnLength float64 // measured 1/e amplitude decay length, m
}

// Dispersion drives a 1-D strip at each frequency and extracts the
// realized wave number from the spatial phase gradient and the
// attenuation length from the amplitude envelope.
func Dispersion(cfg StripConfig, freqs []float64) ([]DispersionPoint, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Mat.Validate(); err != nil {
		return nil, err
	}
	if len(freqs) == 0 {
		return nil, fmt.Errorf("measure: no frequencies")
	}
	model, err := dispersion.New(cfg.Mat, 1e-9, dispersion.LocalDemag)
	if err != nil {
		return nil, err
	}
	var out []DispersionPoint
	for _, f := range freqs {
		if f <= model.Frequency(0) {
			return nil, fmt.Errorf("measure: frequency %.3g GHz below the %.3g GHz band gap",
				units.ToGHz(f), units.ToGHz(model.Frequency(0)))
		}
		k, att, err := measureOne(cfg, f)
		if err != nil {
			return nil, fmt.Errorf("measure: f=%.3g GHz: %w", units.ToGHz(f), err)
		}
		ka, err := model.SolveK(f, units.WaveNumber(2*cfg.CellSize)/2)
		if err != nil {
			return nil, err
		}
		out = append(out, DispersionPoint{
			Freq:       f,
			K:          k,
			Lambda:     units.Wavelength(k),
			AnalyticK:  ka,
			RelError:   math.Abs(k-ka) / ka,
			AttnLength: att,
		})
	}
	return out, nil
}

// measureOne runs one strip simulation and extracts (k, attenuation).
func measureOne(cfg StripConfig, f float64) (k, attLen float64, err error) {
	nx := int(cfg.Length / cfg.CellSize)
	if nx < 60 {
		return 0, 0, fmt.Errorf("strip too short: %d cells", nx)
	}
	mesh, err := grid.NewMesh(nx, 1, cfg.CellSize, cfg.CellSize, 1e-9)
	if err != nil {
		return 0, 0, err
	}
	s, err := llg.New(mesh, grid.FullRegion(mesh), cfg.Mat, llg.StableDt(mesh, cfg.Mat))
	if err != nil {
		return 0, 0, err
	}
	s.AddAbsorberTowards(0, mesh.Dy/2, cfg.Absorber, 0.5)
	s.AddAbsorberTowards(mesh.SizeX(), mesh.Dy/2, cfg.Absorber, 0.5)

	srcCell := int(cfg.Absorber/cfg.CellSize) + 8
	ant, err := excite.NewAntenna("src", []int{mesh.Idx(srcCell, 0), mesh.Idx(srcCell+1, 0)},
		vec.UnitX, cfg.B0, f, 0)
	if err != nil {
		return 0, 0, err
	}
	ant.Env = excite.RampEnvelope(3 / f)
	s.Eval.Sources = append(s.Eval.Sources, ant)

	// Run long enough for the slowest plausible wave (vg ≥ ~200 m/s) to
	// cross the analysis window, plus ramp and settling.
	window0 := srcCell + 15
	window1 := nx - int(cfg.Absorber/cfg.CellSize) - 10
	travel := float64(window1-window0+20) * cfg.CellSize / 200.0
	s.Run(3/f+1.3*travel, nil)
	if err := s.CheckFinite(); err != nil {
		return 0, 0, err
	}

	if window1-window0 < 30 {
		return 0, 0, fmt.Errorf("analysis window too small")
	}
	phases := make([]float64, 0, window1-window0)
	amps := make([]float64, 0, window1-window0)
	for i := window0; i < window1; i++ {
		m := s.M[mesh.Idx(i, 0)]
		phases = append(phases, math.Atan2(m.Y, m.X))
		amps = append(amps, math.Hypot(m.X, m.Y))
	}
	maxAmp := 0.0
	for _, a := range amps {
		if a > maxAmp {
			maxAmp = a
		}
	}
	if maxAmp < 1e-5 {
		return 0, 0, fmt.Errorf("no wave detected (max amplitude %g)", maxAmp)
	}
	k = math.Abs(fitPhaseSlope(phases, cfg.CellSize))
	attLen = fitDecayLength(amps, cfg.CellSize)
	return k, attLen, nil
}

// fitPhaseSlope unwraps the phase profile and returns dφ/dx by least
// squares.
func fitPhaseSlope(phases []float64, dx float64) float64 {
	un := make([]float64, len(phases))
	un[0] = phases[0]
	for i := 1; i < len(phases); i++ {
		d := phases[i] - phases[i-1]
		for d > math.Pi {
			d -= 2 * math.Pi
		}
		for d < -math.Pi {
			d += 2 * math.Pi
		}
		un[i] = un[i-1] + d
	}
	n := float64(len(un))
	var sx, sy, sxx, sxy float64
	for i, p := range un {
		x := float64(i) * dx
		sx += x
		sy += p
		sxx += x * x
		sxy += x * p
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

// fitDecayLength fits ln(amplitude) against x and returns −1/slope; a
// non-decaying profile yields +Inf.
func fitDecayLength(amps []float64, dx float64) float64 {
	n := 0.0
	var sx, sy, sxx, sxy float64
	for i, a := range amps {
		if a <= 0 {
			continue
		}
		x := float64(i) * dx
		y := math.Log(a)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	if n < 3 {
		return math.Inf(1)
	}
	slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	if slope >= 0 {
		return math.Inf(1)
	}
	return -1 / slope
}

// GroupVelocity measures vg by timing the wave-front arrival between two
// probe positions on a strip driven with a ramped CW tone: the front is
// the first time the in-plane amplitude exceeds half its final value.
func GroupVelocity(cfg StripConfig, f float64) (float64, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Mat.Validate(); err != nil {
		return 0, err
	}
	nx := int(cfg.Length / cfg.CellSize)
	mesh, err := grid.NewMesh(nx, 1, cfg.CellSize, cfg.CellSize, 1e-9)
	if err != nil {
		return 0, err
	}
	s, err := llg.New(mesh, grid.FullRegion(mesh), cfg.Mat, llg.StableDt(mesh, cfg.Mat))
	if err != nil {
		return 0, err
	}
	s.AddAbsorberTowards(mesh.SizeX(), mesh.Dy/2, cfg.Absorber, 0.5)
	srcCell := 4
	ant, err := excite.NewAntenna("src", []int{mesh.Idx(srcCell, 0)}, vec.UnitX, cfg.B0, f, 0)
	if err != nil {
		return 0, err
	}
	ant.Env = excite.RampEnvelope(2 / f)
	s.Eval.Sources = append(s.Eval.Sources, ant)

	pA := nx / 3
	pB := 2 * nx / 3
	sep := float64(pB-pA) * cfg.CellSize
	var tA, tB float64
	threshold := 0.0
	// First pass: estimate the steady amplitude at pA with a fixed run.
	probeAmp := func(cell int) float64 {
		m := s.M[mesh.Idx(cell, 0)]
		return math.Hypot(m.X, m.Y)
	}
	duration := 2 * cfg.Length / 300.0 // generous for vg ≥ 300 m/s
	s.Run(duration, func(step int) bool {
		if threshold == 0 {
			// Bootstrap: after the wave clearly arrived at pA, set the
			// threshold to half the current amplitude.
			if probeAmp(pA) > 1e-4 && tA == 0 {
				threshold = probeAmp(pA) / 2
				tA = s.Time
			}
			return true
		}
		if tB == 0 && probeAmp(pB) > threshold {
			tB = s.Time
			return false
		}
		return true
	})
	if tA == 0 || tB == 0 || tB <= tA {
		return 0, fmt.Errorf("measure: wave front never reached the second probe")
	}
	return sep / (tB - tA), nil
}

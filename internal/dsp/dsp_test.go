package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestGoertzelPureTone(t *testing.T) {
	fs, f := 1000.0, 50.0
	n := 200 // 10 full periods
	for _, tc := range []struct{ amp, phi float64 }{
		{1, 0}, {0.5, math.Pi / 3}, {2, -math.Pi / 2}, {1, math.Pi},
	} {
		s := Sine(n, fs, f, tc.amp, tc.phi)
		amp, _, err := Goertzel(s, fs, f)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(amp-tc.amp) > 1e-9 {
			t.Errorf("amp(a=%g, φ=%g) = %g", tc.amp, tc.phi, amp)
		}
	}
}

func TestGoertzelPhaseDifference(t *testing.T) {
	// Two tones with a known phase offset must show that offset in the
	// detected phase difference — this is exactly the gate's phase
	// detection mechanism (0 vs π encodes logic 0 vs 1).
	fs, f := 1000.0, 50.0
	n := 400
	s0 := Sine(n, fs, f, 1, 0)
	s1 := Sine(n, fs, f, 1, math.Pi)
	_, p0, err := Goertzel(s0, fs, f)
	if err != nil {
		t.Fatal(err)
	}
	_, p1, err := Goertzel(s1, fs, f)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(PhaseDiff(p1, p0)); math.Abs(d-math.Pi) > 1e-9 {
		t.Errorf("phase difference = %g, want π", d)
	}
}

func TestGoertzelRejectsOtherFrequencies(t *testing.T) {
	fs := 1000.0
	s := Sine(1000, fs, 100, 1, 0.3)
	amp, _, err := Goertzel(s, fs, 50) // integer periods of both tones
	if err != nil {
		t.Fatal(err)
	}
	if amp > 1e-9 {
		t.Errorf("off-frequency leakage amp = %g", amp)
	}
}

func TestGoertzelErrors(t *testing.T) {
	if _, _, err := Goertzel(nil, 1000, 50); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := Goertzel([]float64{1}, 0, 50); err == nil {
		t.Error("zero sample rate accepted")
	}
	if _, _, err := Goertzel([]float64{1, 2}, 1000, 600); err == nil {
		t.Error("frequency above Nyquist accepted")
	}
	if _, _, err := Goertzel([]float64{1, 2}, 1000, -1); err == nil {
		t.Error("negative frequency accepted")
	}
}

// Property: Goertzel amplitude is linear in signal amplitude.
func TestGoertzelLinearity(t *testing.T) {
	fs, f := 1000.0, 50.0
	base := Sine(200, fs, f, 1, 0.7)
	f2 := func(scaleRaw float64) bool {
		scale := 0.1 + 10*frac(scaleRaw)
		s := make([]float64, len(base))
		for i := range s {
			s[i] = scale * base[i]
		}
		amp, _, err := Goertzel(s, fs, f)
		if err != nil {
			return false
		}
		return math.Abs(amp-scale) < 1e-6*scale
	}
	if err := quick.Check(f2, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func frac(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	return math.Abs(x - math.Trunc(x))
}

func TestPhaseDiffWrapping(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0},
		{math.Pi, 0, math.Pi},
		{-math.Pi + 0.1, math.Pi - 0.1, 0.2},
		{3 * math.Pi, 0, math.Pi},
		{0.1, -0.1, 0.2},
	}
	for _, c := range cases {
		if got := PhaseDiff(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("PhaseDiff(%g,%g) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestFFTKnownTransform(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTIFFTRoundTrip(t *testing.T) {
	x := make([]complex128, 64)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)*0.37), math.Cos(float64(i)*0.11))
	}
	orig := make([]complex128, len(x))
	copy(orig, x)
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	if err := IFFT(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-10 {
			t.Fatalf("round trip bin %d: %v != %v", i, x[i], orig[i])
		}
	}
}

func TestFFTErrors(t *testing.T) {
	if err := FFT(nil); err == nil {
		t.Error("empty FFT accepted")
	}
	if err := FFT(make([]complex128, 3)); err == nil {
		t.Error("non-power-of-two FFT accepted")
	}
	if err := IFFT(make([]complex128, 5)); err == nil {
		t.Error("non-power-of-two IFFT accepted")
	}
}

// Property: Parseval's theorem holds for the FFT.
func TestParseval(t *testing.T) {
	f := func(seed int64) bool {
		n := 32
		x := make([]complex128, n)
		v := seed
		for i := range x {
			v = v*6364136223846793005 + 1442695040888963407
			x[i] = complex(float64(v%1000)/1000, float64((v>>16)%1000)/1000)
		}
		var sumT float64
		for _, c := range x {
			sumT += real(c)*real(c) + imag(c)*imag(c)
		}
		if err := FFT(x); err != nil {
			return false
		}
		var sumF float64
		for _, c := range x {
			sumF += real(c)*real(c) + imag(c)*imag(c)
		}
		sumF /= float64(n)
		return math.Abs(sumT-sumF) < 1e-9*(1+sumT)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSpectrumFindsTone(t *testing.T) {
	fs := 1024.0
	s := Sine(512, fs, 64, 0.8, 0.2)
	amps, bin, err := Spectrum(s, fs)
	if err != nil {
		t.Fatal(err)
	}
	peak := PeakBin(amps)
	if got := float64(peak) * bin; math.Abs(got-64) > bin {
		t.Errorf("peak at %g Hz, want 64", got)
	}
	if math.Abs(amps[peak]-0.8) > 0.05 {
		t.Errorf("peak amplitude %g, want ≈0.8", amps[peak])
	}
}

func TestSpectrumErrorsAndPeakBinEdges(t *testing.T) {
	if _, _, err := Spectrum(nil, 1000); err == nil {
		t.Error("empty spectrum accepted")
	}
	if got := PeakBin(nil); got != -1 {
		t.Errorf("PeakBin(nil) = %d", got)
	}
	if got := PeakBin([]float64{5}); got != 0 {
		t.Errorf("PeakBin(single) = %d", got)
	}
}

func TestHannWindow(t *testing.T) {
	w := Hann(5)
	want := []float64{0, 0.5, 1, 0.5, 0}
	for i := range w {
		if math.Abs(w[i]-want[i]) > 1e-12 {
			t.Errorf("Hann[%d] = %g, want %g", i, w[i], want[i])
		}
	}
	if got := Hann(1); len(got) != 1 || got[0] != 1 {
		t.Errorf("Hann(1) = %v", got)
	}
}

func TestApplyWindow(t *testing.T) {
	out, err := ApplyWindow([]float64{1, 2, 3}, []float64{1, 0.5, 0})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 || out[1] != 1 || out[2] != 0 {
		t.Errorf("ApplyWindow = %v", out)
	}
	if _, err := ApplyWindow([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched window accepted")
	}
}

func TestStatsHelpers(t *testing.T) {
	if got := RMS([]float64{3, -3, 3, -3}); got != 3 {
		t.Errorf("RMS = %g", got)
	}
	if got := RMS(nil); got != 0 {
		t.Errorf("RMS(nil) = %g", got)
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g", got)
	}
	d := Detrend([]float64{1, 2, 3})
	if Mean(d) != 0 {
		t.Errorf("Detrend mean = %g", Mean(d))
	}
}

func BenchmarkGoertzel(b *testing.B) {
	s := Sine(2048, 1e12, 1e10, 1, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Goertzel(s, 1e12, 1e10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFT4096(b *testing.B) {
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)), 0)
	}
	buf := make([]complex128, len(x))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		if err := FFT(buf); err != nil {
			b.Fatal(err)
		}
	}
}

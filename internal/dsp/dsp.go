// Package dsp contains the signal-processing primitives used by the
// detection stage: single-bin Goertzel analysis (the lock-in detector for
// phase/amplitude readout at the drive frequency), a radix-2 FFT for
// spectrum inspection, window functions, and small statistics helpers.
package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Goertzel computes the complex amplitude of the frequency component f in
// samples acquired at rate fs. The returned amplitude is normalized so a
// pure tone a·sin(2πft+φ) yields amplitude ≈ a; the returned phase is the
// phase of the equivalent a·cos(2πft+φc) representation in radians in
// (−π, π].
//
// Unlike an FFT bin, f need not be an exact multiple of fs/len(samples);
// for best accuracy callers should still analyze an integer number of
// periods.
func Goertzel(samples []float64, fs, f float64) (amplitude, phase float64, err error) {
	if len(samples) == 0 {
		return 0, 0, fmt.Errorf("dsp: Goertzel on empty input")
	}
	if fs <= 0 {
		return 0, 0, fmt.Errorf("dsp: sample rate %g must be positive", fs)
	}
	if f < 0 || f > fs/2 {
		return 0, 0, fmt.Errorf("dsp: frequency %g outside [0, fs/2]", f)
	}
	// Direct correlation form: robust for non-integer bin frequencies.
	w := 2 * math.Pi * f / fs
	var re, im float64
	for n, s := range samples {
		c, sn := math.Cos(w*float64(n)), math.Sin(w*float64(n))
		re += s * c
		im -= s * sn
	}
	norm := 2 / float64(len(samples))
	z := complex(re*norm, im*norm)
	return cmplx.Abs(z), cmplx.Phase(z), nil
}

// PhaseDiff returns the wrapped difference a−b in (−π, π].
func PhaseDiff(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	if d <= -math.Pi {
		d += 2 * math.Pi
	}
	if d > math.Pi {
		d -= 2 * math.Pi
	}
	return d
}

// FFT computes the in-place radix-2 decimation-in-time FFT of x. The
// length of x must be a power of two.
func FFT(x []complex128) error {
	n := len(x)
	if n == 0 {
		return fmt.Errorf("dsp: FFT of empty input")
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := x[i+j]
				v := x[i+j+length/2] * w
				x[i+j] = u + v
				x[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
	return nil
}

// IFFT computes the inverse FFT of x in place (power-of-two length).
func IFFT(x []complex128) error {
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := FFT(x); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) / n
	}
	return nil
}

// Spectrum returns the single-sided amplitude spectrum of a real signal,
// zero-padding to the next power of two. The i-th bin corresponds to
// frequency i·fs/nfft. The DC bin is not doubled.
func Spectrum(samples []float64, fs float64) (amps []float64, binHz float64, err error) {
	if len(samples) == 0 {
		return nil, 0, fmt.Errorf("dsp: Spectrum of empty input")
	}
	nfft := 1
	for nfft < len(samples) {
		nfft <<= 1
	}
	buf := make([]complex128, nfft)
	for i, s := range samples {
		buf[i] = complex(s, 0)
	}
	if err := FFT(buf); err != nil {
		return nil, 0, err
	}
	half := nfft/2 + 1
	amps = make([]float64, half)
	for i := 0; i < half; i++ {
		a := cmplx.Abs(buf[i]) / float64(len(samples))
		if i != 0 && i != nfft/2 {
			a *= 2
		}
		amps[i] = a
	}
	return amps, fs / float64(nfft), nil
}

// PeakBin returns the index of the largest value in amps, ignoring the DC
// bin when the slice has more than one element.
func PeakBin(amps []float64) int {
	if len(amps) == 0 {
		return -1
	}
	start := 0
	if len(amps) > 1 {
		start = 1
	}
	best := start
	for i := start + 1; i < len(amps); i++ {
		if amps[i] > amps[best] {
			best = i
		}
	}
	return best
}

// Hann fills a window of length n with Hann coefficients.
func Hann(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}

// ApplyWindow multiplies samples by the window element-wise, returning a
// new slice. The lengths must match.
func ApplyWindow(samples, window []float64) ([]float64, error) {
	if len(samples) != len(window) {
		return nil, fmt.Errorf("dsp: window length %d != samples %d", len(window), len(samples))
	}
	out := make([]float64, len(samples))
	for i := range samples {
		out[i] = samples[i] * window[i]
	}
	return out, nil
}

// RMS returns the root-mean-square of samples (0 for empty input).
func RMS(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var s float64
	for _, v := range samples {
		s += v * v
	}
	return math.Sqrt(s / float64(len(samples)))
}

// Mean returns the arithmetic mean of samples (0 for empty input).
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var s float64
	for _, v := range samples {
		s += v
	}
	return s / float64(len(samples))
}

// Detrend subtracts the mean from samples, returning a new slice.
func Detrend(samples []float64) []float64 {
	m := Mean(samples)
	out := make([]float64, len(samples))
	for i, v := range samples {
		out[i] = v - m
	}
	return out
}

// Sine generates n samples of a·sin(2πft+φ) at sample rate fs. It is used
// by tests and by the Figure 1 wave-parameter harness.
func Sine(n int, fs, f, a, phi float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		t := float64(i) / fs
		out[i] = a * math.Sin(2*math.Pi*f*t+phi)
	}
	return out
}

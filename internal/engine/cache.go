package engine

import (
	"container/list"
	"sync"

	"spinwave/internal/detect"
)

// lruCache is a mutex-protected LRU of case readouts. Values are treated
// as immutable: Eval clones before handing them to callers.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *lruEntry
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val map[string]detect.Readout
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

func (c *lruCache) get(key string) (map[string]detect.Readout, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put stores val under key and returns how many entries were evicted to
// stay within capacity.
func (c *lruCache) put(key string, val map[string]detect.Readout) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return 0
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	var evicted int64
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*lruEntry).key)
		evicted++
	}
	return evicted
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

package engine

import (
	"context"
	"sync"

	"spinwave/internal/detect"
)

// group coalesces concurrent calls with the same key onto one execution
// — a minimal, context-aware singleflight (no external dependency).
type group struct {
	mu sync.Mutex
	m  map[string]*call
}

type call struct {
	done chan struct{}
	val  map[string]detect.Readout
	err  error
}

// do runs fn once per key among concurrent callers. Followers wait for
// the leader's result; a follower whose own context expires returns its
// ctx error immediately and leaves the leader running. The leader's
// context governs the evaluation itself, so a cancelled leader can
// propagate its cancellation error to followers — callers that need a
// fresh attempt simply call again (the key is cleared before done is
// signalled).
func (g *group) do(ctx context.Context, key string, fn func() (map[string]detect.Readout, error)) (val map[string]detect.Readout, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			return nil, ctx.Err(), true
		}
	}
	c := &call{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}

package engine

import (
	"context"
	"fmt"

	"spinwave/internal/core"
	"spinwave/internal/detect"
)

// evalCases fans the given input combinations out over the worker pool
// and returns the readouts in input order.
func (e *Engine) evalCases(ctx context.Context, b core.Backend, inputs [][]bool) ([]map[string]detect.Readout, error) {
	outs, _, err := e.evalCasesTiered(ctx, b, inputs, ModeDirect)
	return outs, err
}

// SourceMixed is the aggregate Source of a multi-case evaluation whose
// cases were answered by different tiers.
const SourceMixed Source = "mixed"

// evalCasesTiered fans the input combinations out through the tiered
// store and also reports the aggregate source: the single tier that
// answered every case, or SourceMixed.
func (e *Engine) evalCasesTiered(ctx context.Context, b core.Backend, inputs [][]bool, mode Mode) ([]map[string]detect.Readout, Source, error) {
	outs := make([]map[string]detect.Readout, len(inputs))
	sources := make([]Source, len(inputs))
	err := e.fanout(ctx, len(inputs), func(ctx context.Context, i int) error {
		res, err := e.EvalTiered(ctx, b, inputs[i], mode)
		if err != nil {
			return fmt.Errorf("case %v: %w", inputs[i], err)
		}
		outs[i] = res.Readouts
		sources[i] = res.Source
		return nil
	})
	if err != nil {
		return nil, "", fmt.Errorf("engine: %w", err)
	}
	agg := sources[0]
	for _, s := range sources[1:] {
		if s != agg {
			agg = SourceMixed
			break
		}
	}
	return outs, agg, nil
}

// MajorityTable reproduces the paper's Table I through the engine: all
// input cases of a MAJ3-family backend evaluated concurrently on the
// worker pool, then decoded exactly as core.MajorityTruthTable would.
func (e *Engine) MajorityTable(ctx context.Context, b core.Backend) (*core.TruthTable, error) {
	tt, _, err := e.MajorityTableTiered(ctx, b, ModeDirect)
	return tt, err
}

// MajorityTableTiered is MajorityTable through the tiered store: each
// case is answered by the cheapest tier the mode allows, and the
// aggregate source of the rows is reported alongside the table.
func (e *Engine) MajorityTableTiered(ctx context.Context, b core.Backend, mode Mode) (*core.TruthTable, Source, error) {
	if b.Kind() == core.XOR {
		return nil, "", fmt.Errorf("engine: majority truth table needs a MAJ3 backend, got %s", b.Kind())
	}
	outs, src, err := e.evalCasesTiered(ctx, b, core.EnumerateInputs(b.Kind().NumInputs()), mode)
	if err != nil {
		return nil, "", err
	}
	tt, err := core.AssembleMajorityTable(b.Kind(), b.Name(), outs[0], outs)
	return tt, src, err
}

// XORTable reproduces Table II through the engine; inverted decodes the
// XNOR gate.
func (e *Engine) XORTable(ctx context.Context, b core.Backend, inverted bool) (*core.TruthTable, error) {
	tt, _, err := e.XORTableTiered(ctx, b, inverted, ModeDirect)
	return tt, err
}

// XORTableTiered is XORTable through the tiered store, reporting the
// aggregate source of the rows alongside the table.
func (e *Engine) XORTableTiered(ctx context.Context, b core.Backend, inverted bool, mode Mode) (*core.TruthTable, Source, error) {
	if b.Kind() != core.XOR {
		return nil, "", fmt.Errorf("engine: XOR truth table needs an XOR backend, got %s", b.Kind())
	}
	outs, src, err := e.evalCasesTiered(ctx, b, core.EnumerateInputs(2), mode)
	if err != nil {
		return nil, "", err
	}
	tt, err := core.AssembleXORTable(b.Name(), inverted, outs[0], outs)
	return tt, src, err
}

// DerivedTable evaluates a §III-A derived (N)AND/(N)OR gate through the
// engine: the all-zeros reference and the four pinned-I3 cases run
// concurrently.
func (e *Engine) DerivedTable(ctx context.Context, b core.Backend, d core.DerivedGate) (*core.TruthTable, error) {
	tt, _, err := e.DerivedTableTiered(ctx, b, d, ModeDirect)
	return tt, err
}

// DerivedTableTiered is DerivedTable through the tiered store, reporting
// the aggregate source of the rows alongside the table.
func (e *Engine) DerivedTableTiered(ctx context.Context, b core.Backend, d core.DerivedGate, mode Mode) (*core.TruthTable, Source, error) {
	if b.Kind() == core.XOR {
		return nil, "", fmt.Errorf("engine: derived gates need a MAJ3 backend")
	}
	drives, err := d.DerivedCaseInputs()
	if err != nil {
		return nil, "", err
	}
	// The reference (all zeros of the full MAJ3 input space) rides along
	// as one more fanned-out case.
	all := make([][]bool, 0, len(drives)+1)
	all = append(all, make([]bool, b.Kind().NumInputs()))
	all = append(all, drives...)
	outs, src, err := e.evalCasesTiered(ctx, b, all, mode)
	if err != nil {
		return nil, "", err
	}
	tt, err := core.AssembleDerivedTable(b.Name(), d, outs[0], outs[1:])
	return tt, src, err
}

// Table evaluates the natural truth table of the backend's gate kind:
// Table II for XOR backends, Table I for the Majority family.
func (e *Engine) Table(ctx context.Context, b core.Backend) (*core.TruthTable, error) {
	if b.Kind() == core.XOR {
		return e.XORTable(ctx, b, false)
	}
	return e.MajorityTable(ctx, b)
}

package engine

import (
	"context"
	"fmt"

	"spinwave/internal/core"
	"spinwave/internal/detect"
)

// evalCases fans the given input combinations out over the worker pool
// and returns the readouts in input order.
func (e *Engine) evalCases(ctx context.Context, b core.Backend, inputs [][]bool) ([]map[string]detect.Readout, error) {
	outs := make([]map[string]detect.Readout, len(inputs))
	err := e.fanout(ctx, len(inputs), func(ctx context.Context, i int) error {
		out, err := e.Eval(ctx, b, inputs[i])
		if err != nil {
			return fmt.Errorf("case %v: %w", inputs[i], err)
		}
		outs[i] = out
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	return outs, nil
}

// MajorityTable reproduces the paper's Table I through the engine: all
// input cases of a MAJ3-family backend evaluated concurrently on the
// worker pool, then decoded exactly as core.MajorityTruthTable would.
func (e *Engine) MajorityTable(ctx context.Context, b core.Backend) (*core.TruthTable, error) {
	if b.Kind() == core.XOR {
		return nil, fmt.Errorf("engine: majority truth table needs a MAJ3 backend, got %s", b.Kind())
	}
	outs, err := e.evalCases(ctx, b, core.EnumerateInputs(b.Kind().NumInputs()))
	if err != nil {
		return nil, err
	}
	return core.AssembleMajorityTable(b.Kind(), b.Name(), outs[0], outs)
}

// XORTable reproduces Table II through the engine; inverted decodes the
// XNOR gate.
func (e *Engine) XORTable(ctx context.Context, b core.Backend, inverted bool) (*core.TruthTable, error) {
	if b.Kind() != core.XOR {
		return nil, fmt.Errorf("engine: XOR truth table needs an XOR backend, got %s", b.Kind())
	}
	outs, err := e.evalCases(ctx, b, core.EnumerateInputs(2))
	if err != nil {
		return nil, err
	}
	return core.AssembleXORTable(b.Name(), inverted, outs[0], outs)
}

// DerivedTable evaluates a §III-A derived (N)AND/(N)OR gate through the
// engine: the all-zeros reference and the four pinned-I3 cases run
// concurrently.
func (e *Engine) DerivedTable(ctx context.Context, b core.Backend, d core.DerivedGate) (*core.TruthTable, error) {
	if b.Kind() == core.XOR {
		return nil, fmt.Errorf("engine: derived gates need a MAJ3 backend")
	}
	drives, err := d.DerivedCaseInputs()
	if err != nil {
		return nil, err
	}
	// The reference (all zeros of the full MAJ3 input space) rides along
	// as one more fanned-out case.
	all := make([][]bool, 0, len(drives)+1)
	all = append(all, make([]bool, b.Kind().NumInputs()))
	all = append(all, drives...)
	outs, err := e.evalCases(ctx, b, all)
	if err != nil {
		return nil, err
	}
	return core.AssembleDerivedTable(b.Name(), d, outs[0], outs[1:])
}

// Table evaluates the natural truth table of the backend's gate kind:
// Table II for XOR backends, Table I for the Majority family.
func (e *Engine) Table(ctx context.Context, b core.Backend) (*core.TruthTable, error) {
	if b.Kind() == core.XOR {
		return e.XORTable(ctx, b, false)
	}
	return e.MajorityTable(ctx, b)
}

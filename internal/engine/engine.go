// Package engine is the concurrent evaluation engine: it fans
// truth-table cases, sweep points, and parallel-word channels out over a
// bounded worker pool, plumbs context cancellation through to the LLG
// step loop, memoizes readouts in an LRU cache keyed by a canonical
// backend fingerprint, and de-duplicates identical in-flight requests
// with singleflight.
//
// Two separate semaphores bound the work:
//
//   - eval slots gate individual case evaluations (Eval), the unit of
//     real compute;
//   - task slots gate coarse-grained jobs (Map — e.g. one sweep point
//     each), which may themselves submit Evals.
//
// Keeping the pools separate means a coarse task that fans out inner
// Evals can never deadlock waiting for a slot its own kind is holding,
// while each pool still bounds its level at the configured worker count.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"spinwave/internal/core"
	"spinwave/internal/detect"
	"spinwave/internal/journal"
)

// Options configures an Engine.
type Options struct {
	// Workers bounds the number of concurrently running evaluations
	// (default runtime.NumCPU()).
	Workers int
	// CacheSize is the maximum number of memoized case readouts
	// (default 4096; 0 disables the cache).
	CacheSize int
	// Disk is the persistent tier of the result store (nil disables it).
	Disk *DiskStore
	// PersistThreshold is the minimum evaluation cost before a result is
	// written to the disk tier (default 50ms): micromag transients always
	// persist, microsecond behavioral evals never pay the IO.
	PersistThreshold time.Duration
}

// Option mutates Options.
type Option func(*Options)

// WithWorkers sets the worker-pool size.
func WithWorkers(n int) Option { return func(o *Options) { o.Workers = n } }

// WithCacheSize sets the LRU capacity in entries; 0 disables caching.
func WithCacheSize(n int) Option { return func(o *Options) { o.CacheSize = n } }

// WithDiskStore attaches a persistent result store; entries found on
// disk warm the in-memory cache at construction.
func WithDiskStore(d *DiskStore) Option { return func(o *Options) { o.Disk = d } }

// WithPersistThreshold sets the minimum evaluation cost before a result
// is persisted to disk (0 persists everything).
func WithPersistThreshold(d time.Duration) Option {
	return func(o *Options) { o.PersistThreshold = d }
}

// Engine is a concurrent gate-evaluation engine. The zero value is not
// usable; construct with New. An Engine is safe for concurrent use.
type Engine struct {
	workers    int
	evalSlots  chan struct{}
	taskSlots  chan struct{}
	cache      *lruCache // nil when caching is disabled
	flight     group
	disk       *DiskStore // nil when the persistent tier is disabled
	persistMin time.Duration

	surrMu     sync.RWMutex
	surrogates map[string]Surrogate // admitted models by base fingerprint

	// Counters, exported via Stats for expvar publication.
	requests      atomic.Int64
	hits          atomic.Int64
	misses        atomic.Int64
	deduped       atomic.Int64
	evals         atomic.Int64
	evalErrs      atomic.Int64
	inFlight      atomic.Int64
	satWaits      atomic.Int64
	latNanos      atomic.Int64
	latCount      atomic.Int64
	cancelled     atomic.Int64
	evicted       atomic.Int64
	diskHits      atomic.Int64
	diskMisses    atomic.Int64
	diskWrites    atomic.Int64
	diskWriteErrs atomic.Int64
	warmed        atomic.Int64
	surrEvals     atomic.Int64
	surrAdmitted  atomic.Int64
	surrRejected  atomic.Int64
}

// New builds an engine with the given options.
func New(opts ...Option) *Engine {
	o := Options{Workers: runtime.NumCPU(), CacheSize: 4096, PersistThreshold: 50 * time.Millisecond}
	for _, f := range opts {
		f(&o)
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	initMetrics()
	e := &Engine{
		workers:    o.Workers,
		evalSlots:  make(chan struct{}, o.Workers),
		taskSlots:  make(chan struct{}, o.Workers),
		disk:       o.Disk,
		persistMin: o.PersistThreshold,
	}
	if o.CacheSize > 0 {
		e.cache = newLRUCache(o.CacheSize)
	}
	e.warmFromDisk()
	return e
}

// Workers returns the worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// Stats is a snapshot of the engine's counters.
type Stats struct {
	Workers         int   // configured pool size
	Requests        int64 // Eval calls
	CacheHits       int64
	CacheMisses     int64
	CacheEntries    int   // current number of cached readouts
	Deduped         int64 // requests coalesced onto an identical in-flight eval
	Evals           int64 // evaluations actually run to completion
	EvalErrors      int64 // evaluations that returned an error
	Cancelled       int64 // evaluations aborted by context
	InFlight        int64 // evaluations holding a worker slot right now
	SaturationWaits int64 // times a request had to queue for a free worker
	EvalNanos       int64 // cumulative wall-clock spent in evaluations
	EvalCount       int64 // evaluations timed (for mean latency)
	CacheEvictions  int64 // readouts evicted from the LRU at capacity

	DiskHits        int64 // evaluations served from the persistent disk tier
	DiskMisses      int64 // disk-tier lookups that fell through
	DiskEntries     int   // entries currently on disk (0 when the tier is off)
	DiskWrites      int64 // results persisted to disk
	DiskWriteErrors int64 // failed disk persists (served result unaffected)
	Warmed          int64 // disk entries loaded into the LRU at construction

	SurrogateEvals    int64 // evaluations answered by superposition
	SurrogateAdmitted int64 // surrogate models that passed the admission gate
	SurrogateRejected int64 // surrogate models rejected by the admission gate
	SurrogateModels   int   // admitted models currently registered
}

// MeanLatency returns the average evaluation wall-clock time.
func (s Stats) MeanLatency() time.Duration {
	if s.EvalCount == 0 {
		return 0
	}
	return time.Duration(s.EvalNanos / s.EvalCount)
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Workers:         e.workers,
		Requests:        e.requests.Load(),
		CacheHits:       e.hits.Load(),
		CacheMisses:     e.misses.Load(),
		Deduped:         e.deduped.Load(),
		Evals:           e.evals.Load(),
		EvalErrors:      e.evalErrs.Load(),
		Cancelled:       e.cancelled.Load(),
		InFlight:        e.inFlight.Load(),
		SaturationWaits: e.satWaits.Load(),
		EvalNanos:       e.latNanos.Load(),
		EvalCount:       e.latCount.Load(),
		CacheEvictions:  e.evicted.Load(),

		DiskHits:        e.diskHits.Load(),
		DiskMisses:      e.diskMisses.Load(),
		DiskWrites:      e.diskWrites.Load(),
		DiskWriteErrors: e.diskWriteErrs.Load(),
		Warmed:          e.warmed.Load(),

		SurrogateEvals:    e.surrEvals.Load(),
		SurrogateAdmitted: e.surrAdmitted.Load(),
		SurrogateRejected: e.surrRejected.Load(),
	}
	if e.cache != nil {
		s.CacheEntries = e.cache.len()
	}
	if e.disk != nil {
		s.DiskEntries = e.disk.Len()
	}
	e.surrMu.RLock()
	s.SurrogateModels = len(e.surrogates)
	e.surrMu.RUnlock()
	return s
}

// evalKey derives the cache/singleflight key for one case: the backend's
// canonical fingerprint plus the input bits. ok is false when the
// backend is not fingerprintable (results must not be cached or
// coalesced — two non-canonical backends could differ).
func evalKey(b core.Backend, inputs []bool) (string, bool) {
	fp, ok := b.(core.Fingerprinter)
	if !ok {
		return "", false
	}
	key, ok := fp.Fingerprint()
	if !ok {
		return "", false
	}
	return key + "/" + bitString(inputs), true
}

// bitString renders an input vector as the "10"-style case label used
// in cache keys and journal events.
func bitString(inputs []bool) string {
	bits := make([]byte, len(inputs))
	for i, v := range inputs {
		if v {
			bits[i] = '1'
		} else {
			bits[i] = '0'
		}
	}
	return string(bits)
}

// Eval evaluates one input case of the backend through the worker pool.
// Identical requests are served from the result store (in-memory LRU,
// then the disk tier when one is attached) when the backend is
// fingerprintable; identical in-flight requests are coalesced onto one
// evaluation. Eval is exact-only — the surrogate tier requires
// EvalTiered with ModeAuto. The returned map is the caller's to keep.
func (e *Engine) Eval(ctx context.Context, b core.Backend, inputs []bool) (map[string]detect.Readout, error) {
	res, err := e.EvalTiered(ctx, b, inputs, ModeDirect)
	if err != nil {
		return nil, err
	}
	return res.Readouts, nil
}

// runEval acquires an eval slot and runs the case with context support.
// Each evaluation is assigned a run ID, propagated down through the
// context so the backend journals and publishes probes under the same
// ID, and stamped as a pprof goroutine label so CPU profiles attribute
// solver time to individual evaluations.
func (e *Engine) runEval(ctx context.Context, b core.Backend, inputs []bool) (map[string]detect.Readout, error) {
	if err := e.acquire(ctx, e.evalSlots); err != nil {
		e.cancelled.Add(1)
		mEvalsCancelled.Inc()
		return nil, err
	}
	defer func() { <-e.evalSlots }()
	e.inFlight.Add(1)
	mInFlight.Add(1)
	defer func() {
		e.inFlight.Add(-1)
		mInFlight.Add(-1)
	}()
	evalID := journal.RunID(ctx)
	if evalID == "" {
		evalID = journal.NewRunID()
		ctx = journal.WithRunID(ctx, evalID)
	}
	j := journal.Default()
	if j.Enabled() {
		j.Emit(evalID, "engine.eval.start",
			journal.F("backend", b.Name()),
			journal.F("inputs", bitString(inputs)))
	}
	start := time.Now()
	var out map[string]detect.Readout
	var err error
	pprof.Do(ctx, pprof.Labels("engine", "eval", "run", evalID), func(ctx context.Context) {
		out, err = core.RunContext(ctx, b, inputs)
	})
	elapsed := time.Since(start)
	e.latNanos.Add(elapsed.Nanoseconds())
	e.latCount.Add(1)
	mEvalSeconds.Observe(elapsed.Seconds())
	status := "ok"
	switch {
	case err == nil:
		e.evals.Add(1)
		mEvalsOK.Inc()
	case ctx.Err() != nil:
		status = "cancelled"
		e.cancelled.Add(1)
		mEvalsCancelled.Inc()
	default:
		status = "error"
		e.evalErrs.Add(1)
		mEvalsErr.Inc()
	}
	if j.Enabled() {
		j.Emit(evalID, "engine.eval.done",
			journal.F("status", status),
			journal.F("elapsed_ms", elapsed.Seconds()*1e3))
	}
	return out, err
}

// Ping verifies the eval pool is serviceable: it acquires and
// immediately releases one eval slot, returning how long the
// acquisition waited. A saturated or wedged pool shows up as a long
// wait or a context error — the signal swserve's deep health check
// reports without running a real evaluation.
func (e *Engine) Ping(ctx context.Context) (wait time.Duration, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	if err := e.acquire(ctx, e.evalSlots); err != nil {
		return time.Since(start), err
	}
	<-e.evalSlots
	return time.Since(start), nil
}

// acquire takes a slot from the semaphore, counting a saturation wait
// when none is immediately free, and aborting on context cancellation.
func (e *Engine) acquire(ctx context.Context, slots chan struct{}) error {
	select {
	case slots <- struct{}{}:
		return nil
	default:
	}
	e.satWaits.Add(1)
	mQueueWaits.Inc()
	start := time.Now()
	defer func() { mQueueSeconds.Observe(time.Since(start).Seconds()) }()
	select {
	case slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Map runs f(ctx, i) for every i in [0, n) through the coarse task pool:
// at most Workers tasks run at once. The first error cancels the shared
// context of the remaining tasks and is returned after all started tasks
// finish. Use Map for jobs that are themselves units of work (sweep
// points, word channels); truth-table cases go through Eval.
func (e *Engine) Map(ctx context.Context, n int, f func(ctx context.Context, i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return ctx.Err()
	}
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	for i := 0; i < n; i++ {
		if err := e.acquire(ctx, e.taskSlots); err != nil {
			fail(err)
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-e.taskSlots }()
			if ctx.Err() != nil {
				return
			}
			mTasks.Inc()
			start := time.Now()
			var err error
			pprof.Do(ctx, pprof.Labels("engine", "task", "task", strconv.Itoa(i)), func(ctx context.Context) {
				err = f(ctx, i)
			})
			mTaskSeconds.Observe(time.Since(start).Seconds())
			if err != nil {
				fail(fmt.Errorf("engine: task %d: %w", i, err))
			}
		}(i)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	// Tasks skipped by an already-cancelled parent context never call
	// fail; surface that cancellation instead of silent empty results.
	return parent.Err()
}

// fanout runs f(ctx, i) for every i in [0, n) on its own goroutine —
// concurrency here is bounded by what f itself acquires (Eval slots),
// not by the task pool. The first error cancels the rest.
func (e *Engine) fanout(ctx context.Context, n int, f func(ctx context.Context, i int) error) error {
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			if err := f(ctx, i); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				cancel()
			}
		}(i)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	return parent.Err()
}

// cloneReadouts copies a readout map so cached values stay immutable.
func cloneReadouts(m map[string]detect.Readout) map[string]detect.Readout {
	out := make(map[string]detect.Readout, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

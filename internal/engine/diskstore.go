package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"spinwave/internal/detect"
)

// DiskStore is the persistent tier of the result store: one JSON file
// per cached case, named by the hash of the eval key (canonical backend
// fingerprint + input bits). It is corruption-tolerant by construction —
// a truncated, garbled or foreign file is a miss, never an error that
// takes the serving path down — and writes are atomic (temp file +
// rename), so a crash mid-write can never leave a half-entry that a
// later Get would trust.
//
// The store deliberately holds no in-memory state beyond its directory:
// the engine's LRU is the fast tier, the disk is the durable one, and
// startup warming (Engine.warmFromDisk) moves disk entries back into
// memory after a restart.
type DiskStore struct {
	dir string
}

// diskEntryVersion guards the on-disk schema; bump it when the entry
// layout changes and old files silently become misses.
const diskEntryVersion = 1

// diskEntry is the JSON document of one persisted case readout.
type diskEntry struct {
	Version     int                       `json:"version"`
	Key         string                    `json:"key"`
	SavedUnixNS int64                     `json:"saved_unix_ns"`
	Readouts    map[string]detect.Readout `json:"readouts"`
}

// OpenDiskStore opens (creating if needed) a disk-backed result store
// rooted at dir.
func OpenDiskStore(dir string) (*DiskStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("engine: disk store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: disk store: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (d *DiskStore) Dir() string { return d.dir }

// fileFor maps an eval key to its entry path. Keys are hashed so
// arbitrary fingerprint content can never escape the directory or
// exceed filename limits.
func (d *DiskStore) fileFor(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:16])+".json")
}

// Get loads the persisted readouts for key. Any defect — missing file,
// unreadable file, malformed JSON, version or key mismatch, empty
// payload — reports a miss (ok = false); corruption is contained here
// and the caller simply falls through to the next tier.
func (d *DiskStore) Get(key string) (map[string]detect.Readout, bool) {
	buf, err := os.ReadFile(d.fileFor(key))
	if err != nil {
		return nil, false
	}
	var e diskEntry
	if err := json.Unmarshal(buf, &e); err != nil {
		return nil, false
	}
	if e.Version != diskEntryVersion || e.Key != key || len(e.Readouts) == 0 {
		return nil, false
	}
	return e.Readouts, true
}

// Put persists the readouts for key atomically: the entry is written to
// a temp file in the same directory and renamed into place, so readers
// only ever observe complete entries.
func (d *DiskStore) Put(key string, out map[string]detect.Readout) error {
	e := diskEntry{
		Version:     diskEntryVersion,
		Key:         key,
		SavedUnixNS: time.Now().UnixNano(),
		Readouts:    out,
	}
	buf, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("engine: disk store marshal: %w", err)
	}
	tmp, err := os.CreateTemp(d.dir, ".put-*.tmp")
	if err != nil {
		return fmt.Errorf("engine: disk store: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: disk store write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: disk store close: %w", err)
	}
	if err := os.Rename(tmp.Name(), d.fileFor(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: disk store rename: %w", err)
	}
	return nil
}

// Len counts the valid-looking entries on disk (by filename; contents
// are only validated on Get).
func (d *DiskStore) Len() int {
	n := 0
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return 0
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n
}

// Each visits every readable, well-formed entry (corrupt files are
// skipped), stopping early when f returns false. Used for startup cache
// warming.
func (d *DiskStore) Each(f func(key string, out map[string]detect.Readout) bool) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	for _, de := range entries {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		buf, err := os.ReadFile(filepath.Join(d.dir, de.Name()))
		if err != nil {
			continue
		}
		var e diskEntry
		if err := json.Unmarshal(buf, &e); err != nil {
			continue
		}
		if e.Version != diskEntryVersion || e.Key == "" || len(e.Readouts) == 0 {
			continue
		}
		if !f(e.Key, e.Readouts) {
			return
		}
	}
}

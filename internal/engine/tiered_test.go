package engine

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"spinwave/internal/core"
	"spinwave/internal/detect"
)

func testReadouts() map[string]detect.Readout {
	return map[string]detect.Readout{
		"O1": {Probe: "O1", Amplitude: 0.5, Phase: 1.25},
		"O2": {Probe: "O2", Amplitude: 0.5, Phase: 1.25},
	}
}

func TestDiskStoreRoundTrip(t *testing.T) {
	ds, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "fake/rt/10"
	if _, ok := ds.Get(key); ok {
		t.Fatal("Get on empty store reported a hit")
	}
	want := testReadouts()
	if err := ds.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := ds.Get(key)
	if !ok {
		t.Fatal("Get after Put missed")
	}
	for name, w := range want {
		if got[name] != w {
			t.Fatalf("readout %s = %+v, want %+v", name, got[name], w)
		}
	}
	if n := ds.Len(); n != 1 {
		t.Fatalf("Len() = %d, want 1", n)
	}
}

// TestDiskStoreCorruptionTolerant: a truncated or garbage entry file
// must read as a miss (and be skipped by Each), never crash or surface
// bogus readouts — the store's contract with unclean shutdowns.
func TestDiskStoreCorruptionTolerant(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := "fake/corrupt/01"
	if err := ds.Put(key, testReadouts()); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("glob %v, err %v — want exactly one entry file", entries, err)
	}
	// Truncate mid-JSON, as a crash during a non-atomic write would.
	if err := os.WriteFile(entries[0], []byte(`{"version":1,"key":"fake/corrupt/01","readou`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := ds.Get(key); ok {
		t.Fatal("Get returned a hit from a truncated entry")
	}
	seen := 0
	ds.Each(func(string, map[string]detect.Readout) bool { seen++; return true })
	if seen != 0 {
		t.Fatalf("Each yielded %d corrupt entries, want 0", seen)
	}
	// A key whose stored payload was written under a different key (hash
	// collision or hand-copied file) must also miss.
	if err := ds.Put("fake/other/11", testReadouts()); err != nil {
		t.Fatal(err)
	}
	if _, ok := ds.Get("fake/other/11"); !ok {
		t.Fatal("intact entry must still hit after a corrupt sibling")
	}
}

// TestTieredDiskHitAndWarming: results persisted by one engine must be
// served by the next — from disk directly when the memory tier is off,
// and from the warmed LRU when it is on.
func TestTieredDiskHitAndWarming(t *testing.T) {
	ds, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	in := []bool{true, false}
	b := newFakeXOR("disk", 0)

	// PersistThreshold 0: even the instant fake evaluation persists.
	e1 := New(WithWorkers(2), WithDiskStore(ds), WithPersistThreshold(0))
	res, err := e1.EvalTiered(ctx, b, in, ModeDirect)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != Source("fake") {
		t.Fatalf("first eval source %q, want computed (fake)", res.Source)
	}
	if s := e1.Stats(); s.DiskWrites != 1 || s.DiskEntries != 1 {
		t.Fatalf("disk writes %d entries %d, want 1/1", s.DiskWrites, s.DiskEntries)
	}

	// No memory tier: the persistent tier must answer without recompute.
	e2 := New(WithWorkers(2), WithDiskStore(ds), WithCacheSize(0))
	res, err = e2.EvalTiered(ctx, b, in, ModeDirect)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceDisk {
		t.Fatalf("restart eval source %q, want %q", res.Source, SourceDisk)
	}
	if got := b.runs.Load(); got != 1 {
		t.Fatalf("backend ran %d times, want 1 (disk hit must not recompute)", got)
	}

	// Memory tier on: construction warms the LRU from disk, so the first
	// request is already a cache hit.
	e3 := New(WithWorkers(2), WithDiskStore(ds))
	if s := e3.Stats(); s.Warmed != 1 {
		t.Fatalf("warmed %d entries, want 1", s.Warmed)
	}
	res, err = e3.EvalTiered(ctx, b, in, ModeDirect)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceCache {
		t.Fatalf("warmed eval source %q, want %q", res.Source, SourceCache)
	}
}

// TestPersistThresholdSkipsCheapEvals: a microsecond evaluation under
// the default 50ms threshold must not touch the disk tier.
func TestPersistThresholdSkipsCheapEvals(t *testing.T) {
	ds, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := New(WithWorkers(2), WithDiskStore(ds))
	if _, err := e.EvalTiered(context.Background(), newFakeXOR("cheap", 0), []bool{false, true}, ModeDirect); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.DiskWrites != 0 || s.DiskEntries != 0 {
		t.Fatalf("cheap eval persisted (%d writes, %d entries), want none", s.DiskWrites, s.DiskEntries)
	}
}

// fakeSurrogate implements the engine's Surrogate interface with a
// controllable verdict and eval counter.
type fakeSurrogate struct {
	fp        string
	verifyErr error
	evals     int
}

func (f *fakeSurrogate) Kind() core.GateKind     { return core.XOR }
func (f *fakeSurrogate) BaseFingerprint() string { return f.fp }
func (f *fakeSurrogate) Verify() error           { return f.verifyErr }
func (f *fakeSurrogate) Eval([]bool) (map[string]detect.Readout, error) {
	f.evals++
	return map[string]detect.Readout{"O1": {Probe: "O1", Amplitude: 0.25}}, nil
}

// TestAdmissionGate: a model failing Verify must not be registered (and
// must not displace a previously admitted model), with both verdicts
// counted.
func TestAdmissionGate(t *testing.T) {
	e := New(WithWorkers(1))
	good := &fakeSurrogate{fp: "fake/adm"}
	if err := e.AdmitSurrogate(good); err != nil {
		t.Fatal(err)
	}
	bad := &fakeSurrogate{fp: "fake/adm", verifyErr: fmt.Errorf("band violation")}
	if err := e.AdmitSurrogate(bad); err == nil {
		t.Fatal("rejected model was admitted")
	}
	if s, ok := e.SurrogateFor("fake/adm"); !ok || s != Surrogate(good) {
		t.Fatal("rejected model displaced the previously admitted one")
	}
	st := e.Stats()
	if st.SurrogateAdmitted != 1 || st.SurrogateRejected != 1 || st.SurrogateModels != 1 {
		t.Fatalf("admission stats %+v, want 1 admitted / 1 rejected / 1 model", st)
	}
	e.DropSurrogate("fake/adm")
	if _, ok := e.SurrogateFor("fake/adm"); ok {
		t.Fatal("DropSurrogate left the model registered")
	}
}

// TestTieredSurrogateDispatch pins the tier semantics around the
// surrogate: auto mode serves superposition on a store miss, the
// surrogate answer is never memoized under the backend's key, exact
// results still outrank the surrogate, and surrogate-only mode fails
// with the sentinel when no model is admitted.
func TestTieredSurrogateDispatch(t *testing.T) {
	ctx := context.Background()
	in := []bool{true, true}
	b := newFakeXOR("sur", 0)
	e := New(WithWorkers(2))

	// No admitted model: surrogate-only fails with the sentinel; auto
	// falls through to exact compute.
	if _, err := e.EvalTiered(ctx, b, in, ModeSurrogateOnly); !errors.Is(err, ErrSurrogateUnavailable) {
		t.Fatalf("surrogate-only without a model: err = %v, want ErrSurrogateUnavailable", err)
	}
	res, err := e.EvalTiered(ctx, b, []bool{false, true}, ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != Source("fake") || b.runs.Load() != 1 {
		t.Fatalf("auto without a model: source %q after %d runs, want exact compute", res.Source, b.runs.Load())
	}

	sur := &fakeSurrogate{fp: "fake/sur"}
	if err := e.AdmitSurrogate(sur); err != nil {
		t.Fatal(err)
	}

	// Auto on a cold key: the surrogate answers, the backend does not run,
	// and nothing is cached under the backend's key.
	res, err = e.EvalTiered(ctx, b, in, ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceSurrogate || sur.evals != 1 || b.runs.Load() != 1 {
		t.Fatalf("auto with model: source %q, surrogate evals %d, backend runs %d", res.Source, sur.evals, b.runs.Load())
	}
	res, err = e.EvalTiered(ctx, b, in, ModeDirect)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source == SourceCache || b.runs.Load() != 2 {
		t.Fatalf("direct after surrogate answer: source %q, runs %d — superposed values leaked into the exact store",
			res.Source, b.runs.Load())
	}

	// The exact result is now cached, and cache beats surrogate in auto.
	res, err = e.EvalTiered(ctx, b, in, ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceCache || sur.evals != 1 {
		t.Fatalf("auto after exact compute: source %q (surrogate evals %d), want cache hit", res.Source, sur.evals)
	}

	// Surrogate-only always superposes, even with a cached exact result.
	res, err = e.EvalTiered(ctx, b, in, ModeSurrogateOnly)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceSurrogate || sur.evals != 2 {
		t.Fatalf("surrogate-only: source %q, surrogate evals %d", res.Source, sur.evals)
	}
	if res.Fingerprint != "fake/sur" {
		t.Fatalf("surrogate-only fingerprint %q, want the base fingerprint", res.Fingerprint)
	}

	if _, err := e.EvalTiered(ctx, b, in, Mode("warp")); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if s := e.Stats(); s.SurrogateEvals != 2 {
		t.Fatalf("SurrogateEvals = %d, want 2", s.SurrogateEvals)
	}
}

// TestEvalDelegatesToTiered: the classic Eval API must keep its exact
// cache semantics on top of the tiered path.
func TestEvalDelegatesToTiered(t *testing.T) {
	e := New(WithWorkers(2))
	b := newFakeXOR("delegate", 0)
	sur := &fakeSurrogate{fp: "fake/delegate"}
	if err := e.AdmitSurrogate(sur); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := e.Eval(context.Background(), b, []bool{true, false}); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.runs.Load(); got != 1 {
		t.Fatalf("backend ran %d times, want 1 (miss then cache hits)", got)
	}
	if sur.evals != 0 {
		t.Fatalf("Eval consulted the surrogate %d times; the direct path must not", sur.evals)
	}
}

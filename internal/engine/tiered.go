package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"spinwave/internal/core"
	"spinwave/internal/detect"
	"spinwave/internal/journal"
)

// ErrSurrogateUnavailable reports that a surrogate-mode evaluation found
// no admitted surrogate model for the requested backend fingerprint.
// Match with errors.Is.
var ErrSurrogateUnavailable = errors.New("engine: no admitted surrogate for backend")

// Mode selects which tiers of the result store an evaluation may be
// served from. See EvalTiered.
type Mode string

const (
	// ModeDirect serves from memory → disk → exact recompute on the
	// given backend; the surrogate tier is skipped. This is the engine's
	// classic (and Eval's) behavior plus the persistent tier.
	ModeDirect Mode = "direct"
	// ModeAuto serves from memory → disk → admitted surrogate → exact
	// recompute: the cheapest tier that can answer wins, and exact
	// results (memory/disk) still beat the approximate surrogate.
	ModeAuto Mode = "auto"
	// ModeSurrogateOnly serves exclusively from an admitted surrogate
	// model and fails with ErrSurrogateUnavailable when none matches —
	// no solver fallback, so latency is bounded by superposition alone.
	ModeSurrogateOnly Mode = "surrogate"
)

// Source identifies the tier that produced an evaluation result.
type Source string

const (
	// SourceCache is the in-memory LRU tier.
	SourceCache Source = "cache"
	// SourceDisk is the persistent disk-store tier.
	SourceDisk Source = "disk"
	// SourceSurrogate is the linear-superposition surrogate tier.
	SourceSurrogate Source = "surrogate"
	// SourceMicromag is a full micromagnetic recompute.
	SourceMicromag Source = "micromag"
	// SourceBehavioral is a behavioral (phasor-model) recompute.
	SourceBehavioral Source = "behavioral"
)

// computeSource maps a backend to the Source its direct evaluation
// reports.
func computeSource(b core.Backend) Source {
	switch b.Name() {
	case "micromagnetic":
		return SourceMicromag
	case "behavioral":
		return SourceBehavioral
	default:
		return Source(b.Name())
	}
}

// EvalResult is a tiered evaluation outcome: the readouts, the tier that
// produced them, and the canonical fingerprint they are keyed under
// (empty for unfingerprintable backends).
type EvalResult struct {
	Readouts    map[string]detect.Readout
	Source      Source
	Fingerprint string
}

// Surrogate is the engine's view of a superposition surrogate model
// (internal/surrogate.Model implements it; the interface keeps the
// engine free of a surrogate dependency). Verify is the admission gate;
// Eval answers one input case from stored phasors.
type Surrogate interface {
	// Kind returns the gate the model covers.
	Kind() core.GateKind
	// BaseFingerprint is the canonical fingerprint of the backend the
	// model was built from — the identity incoming requests match on.
	BaseFingerprint() string
	// Eval superposes the stored unit responses for one input case.
	Eval(inputs []bool) (map[string]detect.Readout, error)
	// Verify checks the model's full truth table against the golden
	// tolerance bands; non-nil means the model must not serve.
	Verify() error
}

// AdmitSurrogate runs the admission gate on s and, only if every truth
// table row sits inside the golden bands, registers it for serving under
// its base fingerprint. The verdict (either way) is counted, exported as
// a metric, and journaled as a surrogate.admission event. A rejected
// model leaves any previously admitted model for the same fingerprint
// in place.
func (e *Engine) AdmitSurrogate(s Surrogate) error {
	initMetrics()
	verr := s.Verify()
	j := journal.Default()
	if verr != nil {
		e.surrRejected.Add(1)
		mAdmissionsRejected.Inc()
		if j.Enabled() {
			j.Emit("", "surrogate.admission",
				journal.F("verdict", "rejected"),
				journal.F("gate", s.Kind().String()),
				journal.F("fingerprint", s.BaseFingerprint()),
				journal.F("error", verr.Error()))
		}
		return fmt.Errorf("engine: surrogate admission: %w", verr)
	}
	e.surrMu.Lock()
	if e.surrogates == nil {
		e.surrogates = make(map[string]Surrogate)
	}
	e.surrogates[s.BaseFingerprint()] = s
	e.surrMu.Unlock()
	e.surrAdmitted.Add(1)
	mAdmissionsOK.Inc()
	if j.Enabled() {
		j.Emit("", "surrogate.admission",
			journal.F("verdict", "admitted"),
			journal.F("gate", s.Kind().String()),
			journal.F("fingerprint", s.BaseFingerprint()))
	}
	return nil
}

// DropSurrogate removes the admitted model for the fingerprint, if any;
// subsequent surrogate-mode requests fail until a new model is admitted.
func (e *Engine) DropSurrogate(baseFingerprint string) {
	e.surrMu.Lock()
	delete(e.surrogates, baseFingerprint)
	e.surrMu.Unlock()
}

// SurrogateFor returns the admitted model for the fingerprint.
func (e *Engine) SurrogateFor(baseFingerprint string) (Surrogate, bool) {
	e.surrMu.RLock()
	s, ok := e.surrogates[baseFingerprint]
	e.surrMu.RUnlock()
	return s, ok
}

// Surrogates returns the base fingerprints with admitted models.
func (e *Engine) Surrogates() []string {
	e.surrMu.RLock()
	defer e.surrMu.RUnlock()
	out := make([]string, 0, len(e.surrogates))
	for fp := range e.surrogates {
		out = append(out, fp)
	}
	return out
}

// surrogateForBackend matches an admitted model to a backend by
// canonical fingerprint; nil when the backend is unfingerprintable or
// no model is admitted.
func (e *Engine) surrogateForBackend(b core.Backend) Surrogate {
	fper, ok := b.(core.Fingerprinter)
	if !ok {
		return nil
	}
	fp, ok := fper.Fingerprint()
	if !ok {
		return nil
	}
	s, _ := e.SurrogateFor(fp)
	return s
}

// EvalTiered evaluates one input case through the tiered result store:
// in-memory LRU, then the persistent disk store, then (ModeAuto) an
// admitted surrogate model, then exact recompute on the backend. The
// result reports which tier answered. ModeSurrogateOnly bypasses the
// store entirely and fails with ErrSurrogateUnavailable when no admitted
// model matches the backend's fingerprint.
//
// Only exact results enter the store: a surrogate answer is never cached
// under the backend's key, so a later ModeDirect request can never be
// served superposed values labeled as cache hits. Recompute results are
// persisted to disk only when the evaluation cost clears the persist
// threshold (microsecond behavioral evals stay IO-free).
func (e *Engine) EvalTiered(ctx context.Context, b core.Backend, inputs []bool, mode Mode) (EvalResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	switch mode {
	case ModeDirect, ModeAuto, ModeSurrogateOnly:
	case "":
		mode = ModeDirect
	default:
		return EvalResult{}, fmt.Errorf("engine: unknown eval mode %q", mode)
	}
	e.requests.Add(1)
	mRequests.Inc()
	key, cacheable := evalKey(b, inputs)
	baseFP := ""
	if cacheable {
		// evalKey is fingerprint + "/" + bits; recover the fingerprint for
		// the result without re-hashing.
		baseFP = key[:len(key)-len(inputs)-1]
	}

	if mode == ModeSurrogateOnly {
		sur := e.surrogateForBackend(b)
		if sur == nil {
			return EvalResult{}, fmt.Errorf("%w: %s (%s)", ErrSurrogateUnavailable, b.Kind(), b.Name())
		}
		out, err := e.evalSurrogate(ctx, sur, inputs)
		if err != nil {
			return EvalResult{}, err
		}
		return EvalResult{Readouts: out, Source: SourceSurrogate, Fingerprint: sur.BaseFingerprint()}, nil
	}

	if !cacheable {
		out, err := e.runEval(ctx, b, inputs)
		if err != nil {
			return EvalResult{}, err
		}
		return EvalResult{Readouts: out, Source: computeSource(b)}, nil
	}

	j := journal.Default()
	// Memory tier.
	if e.cache != nil {
		if v, ok := e.cache.get(key); ok {
			e.hits.Add(1)
			mCacheHits.Inc()
			if j.Enabled() {
				j.Emit(journal.RunID(ctx), "engine.cache",
					journal.F("result", "hit"), journal.F("key", key))
			}
			return EvalResult{Readouts: cloneReadouts(v), Source: SourceCache, Fingerprint: baseFP}, nil
		}
		e.misses.Add(1)
		mCacheMisses.Inc()
		if j.Enabled() {
			j.Emit(journal.RunID(ctx), "engine.cache",
				journal.F("result", "miss"), journal.F("key", key))
		}
	}
	// Disk tier.
	if e.disk != nil {
		start := time.Now()
		out, ok := e.disk.Get(key)
		mDiskSeconds.Observe(time.Since(start).Seconds())
		if ok {
			e.diskHits.Add(1)
			mDiskHits.Inc()
			if e.cache != nil {
				if n := e.cache.put(key, cloneReadouts(out)); n > 0 {
					e.evicted.Add(n)
					mCacheEvictions.Add(n)
				}
			}
			if j.Enabled() {
				j.Emit(journal.RunID(ctx), "engine.tier",
					journal.F("tier", "disk"), journal.F("result", "hit"), journal.F("key", key))
			}
			return EvalResult{Readouts: out, Source: SourceDisk, Fingerprint: baseFP}, nil
		}
		e.diskMisses.Add(1)
		mDiskMisses.Inc()
	}
	// Surrogate tier (auto mode only; exact tiers above already missed).
	if mode == ModeAuto {
		if sur := e.surrogateForBackend(b); sur != nil {
			out, err := e.evalSurrogate(ctx, sur, inputs)
			if err == nil {
				return EvalResult{Readouts: out, Source: SourceSurrogate, Fingerprint: baseFP}, nil
			}
			// A failing surrogate (bad input length surfaces earlier; this
			// is defensive) falls through to exact recompute.
		}
	}
	// Exact recompute through singleflight; only exact results are
	// memoized, so concurrent ModeDirect and ModeAuto misses may share
	// one evaluation safely.
	v, err, shared := e.flight.do(ctx, key, func() (map[string]detect.Readout, error) {
		start := time.Now()
		out, err := e.runEval(ctx, b, inputs)
		if err == nil {
			if e.cache != nil {
				if n := e.cache.put(key, out); n > 0 {
					e.evicted.Add(n)
					mCacheEvictions.Add(n)
				}
			}
			if e.disk != nil && time.Since(start) >= e.persistMin {
				wStart := time.Now()
				if perr := e.disk.Put(key, out); perr != nil {
					e.diskWriteErrs.Add(1)
					mDiskWriteErrs.Inc()
				} else {
					e.diskWrites.Add(1)
					mDiskWrites.Inc()
				}
				mDiskSeconds.Observe(time.Since(wStart).Seconds())
			}
		}
		return out, err
	})
	if shared {
		e.deduped.Add(1)
		mCoalesced.Inc()
		if j.Enabled() {
			j.Emit(journal.RunID(ctx), "engine.cache",
				journal.F("result", "coalesced"), journal.F("key", key))
		}
	}
	if err != nil {
		return EvalResult{}, err
	}
	return EvalResult{Readouts: cloneReadouts(v), Source: computeSource(b), Fingerprint: baseFP}, nil
}

// evalSurrogate answers one case from an admitted model, with tier
// accounting and the context checked up front (superposition is
// microseconds — not worth a worker slot).
func (e *Engine) evalSurrogate(ctx context.Context, s Surrogate, inputs []bool) (map[string]detect.Readout, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	out, err := s.Eval(inputs)
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	e.surrEvals.Add(1)
	mSurrogateEvals.Inc()
	mSurrogateSeconds.Observe(elapsed.Seconds())
	if j := journal.Default(); j.Enabled() {
		j.Emit(journal.RunID(ctx), "engine.tier",
			journal.F("tier", "surrogate"), journal.F("result", "hit"),
			journal.F("fingerprint", s.BaseFingerprint()))
	}
	return out, nil
}

// warmFromDisk loads persisted entries into the LRU at startup (up to
// the cache capacity), so a restarted process serves its hot set from
// memory without recompute. Returns the number of entries warmed.
func (e *Engine) warmFromDisk() int {
	if e.disk == nil || e.cache == nil {
		return 0
	}
	n := 0
	e.disk.Each(func(key string, out map[string]detect.Readout) bool {
		e.cache.put(key, out)
		n++
		return n < e.cache.cap
	})
	e.warmed.Add(int64(n))
	mWarmed.Add(int64(n))
	return n
}

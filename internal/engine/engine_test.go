package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spinwave/internal/core"
	"spinwave/internal/detect"
	"spinwave/internal/layout"
	"spinwave/internal/material"
)

// fakeBackend is a deterministic, fingerprintable XOR-shaped backend
// whose evaluation latency and run count are controllable — the unit
// under the cache/singleflight/pool tests.
type fakeBackend struct {
	id    string
	delay time.Duration
	runs  atomic.Int64
	gate  func(inputs []bool) (map[string]detect.Readout, error)
}

func newFakeXOR(id string, delay time.Duration) *fakeBackend {
	return &fakeBackend{id: id, delay: delay}
}

func (f *fakeBackend) Name() string        { return "fake" }
func (f *fakeBackend) Kind() core.GateKind { return core.XOR }

func (f *fakeBackend) Run(inputs []bool) (map[string]detect.Readout, error) {
	f.runs.Add(1)
	time.Sleep(f.delay)
	if f.gate != nil {
		return f.gate(inputs)
	}
	// Phase-encoded XOR: equal bits interfere constructively (logic 0
	// under phase detection), unequal destructively.
	amp, phase := 1.0, 0.0
	if inputs[0] != inputs[1] {
		phase = 3.14159
	}
	r := detect.Readout{Amplitude: amp, Phase: phase}
	return map[string]detect.Readout{"O1": r, "O2": r}, nil
}

func (f *fakeBackend) Fingerprint() (string, bool) { return "fake/" + f.id, true }

func TestEvalCachesByFingerprintAndInputs(t *testing.T) {
	e := New(WithWorkers(4))
	b := newFakeXOR("cache", 0)
	ctx := context.Background()
	in := []bool{true, false}
	first, err := e.Eval(ctx, b, in)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Eval(ctx, b, in)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.runs.Load(); got != 1 {
		t.Fatalf("backend ran %d times, want 1 (cache miss then hit)", got)
	}
	if first["O1"] != second["O1"] {
		t.Fatalf("cache returned different readout: %+v vs %+v", first["O1"], second["O1"])
	}
	// Different inputs are a different key.
	if _, err := e.Eval(ctx, b, []bool{false, false}); err != nil {
		t.Fatal(err)
	}
	if got := b.runs.Load(); got != 2 {
		t.Fatalf("backend ran %d times after new inputs, want 2", got)
	}
	s := e.Stats()
	if s.CacheHits != 1 || s.CacheMisses != 2 {
		t.Fatalf("stats hits=%d misses=%d, want 1/2", s.CacheHits, s.CacheMisses)
	}
	// A cached map is the caller's to mutate.
	first["O1"] = detect.Readout{}
	again, err := e.Eval(ctx, b, in)
	if err != nil {
		t.Fatal(err)
	}
	if again["O1"] == (detect.Readout{}) {
		t.Fatal("caller mutation leaked into the cache")
	}
}

func TestEvalCoalescesIdenticalInFlight(t *testing.T) {
	e := New(WithWorkers(8), WithCacheSize(0)) // no cache: only singleflight dedups
	b := newFakeXOR("flight", 50*time.Millisecond)
	ctx := context.Background()
	const callers = 8
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.Eval(ctx, b, []bool{true, true}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := b.runs.Load(); got >= callers {
		t.Fatalf("no coalescing: %d runs for %d identical concurrent calls", got, callers)
	}
	if e.Stats().Deduped == 0 {
		t.Fatal("deduped counter never incremented")
	}
}

func TestEvalUncacheableBackendAlwaysRuns(t *testing.T) {
	e := New(WithWorkers(2))
	b := newFakeXOR("raw", 0)
	// Behavioral backends built with a region mutator (or any backend
	// without Fingerprint) must bypass the cache; simulate by wrapping.
	raw := struct{ core.Backend }{b}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := e.Eval(ctx, raw, []bool{true, false}); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.runs.Load(); got != 3 {
		t.Fatalf("uncacheable backend ran %d times, want 3", got)
	}
}

func TestLRUEviction(t *testing.T) {
	e := New(WithWorkers(1), WithCacheSize(2))
	b := newFakeXOR("lru", 0)
	ctx := context.Background()
	cases := [][]bool{{false, false}, {false, true}, {true, false}}
	for _, in := range cases {
		if _, err := e.Eval(ctx, b, in); err != nil {
			t.Fatal(err)
		}
	}
	// {false,false} was evicted by the third insert; re-evaluating it
	// must miss and run the backend again.
	if _, err := e.Eval(ctx, b, cases[0]); err != nil {
		t.Fatal(err)
	}
	if got := b.runs.Load(); got != 4 {
		t.Fatalf("backend ran %d times, want 4 (third insert evicts first)", got)
	}
	if entries := e.Stats().CacheEntries; entries != 2 {
		t.Fatalf("cache holds %d entries, want capacity 2", entries)
	}
}

func TestEvalContextCancellation(t *testing.T) {
	e := New(WithWorkers(1))
	slow := newFakeXOR("slow", 200*time.Millisecond)
	ctx := context.Background()
	// Saturate the single worker slot.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		e.Eval(ctx, slow, []bool{false, false}) //nolint:errcheck
	}()
	time.Sleep(20 * time.Millisecond)
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	start := time.Now()
	_, err := e.Eval(cctx, newFakeXOR("waiting", 0), []bool{true, true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("queued eval under cancelled ctx returned %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("cancelled eval took %v to return", d)
	}
	wg.Wait()
	s := e.Stats()
	if s.Cancelled == 0 {
		t.Fatal("cancelled counter never incremented")
	}
	if s.SaturationWaits == 0 {
		t.Fatal("saturation-wait counter never incremented")
	}
}

func TestMapPropagatesFirstErrorAndCancels(t *testing.T) {
	e := New(WithWorkers(4))
	boom := errors.New("boom")
	var ran atomic.Int64
	err := e.Map(context.Background(), 16, func(ctx context.Context, i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Millisecond):
			return nil
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Map returned %v, want wrapped boom", err)
	}
	if ran.Load() == 16 {
		t.Fatal("error did not cancel remaining tasks (all 16 ran to completion)")
	}
}

func TestTablesMatchSerialCore(t *testing.T) {
	e := New(WithWorkers(8))
	ctx := context.Background()
	spec, mat := layout.PaperSpec(), material.FeCoB()
	for _, kind := range []core.GateKind{core.MAJ3, core.MAJ3Single, core.MAJ5} {
		b, err := core.NewBehavioral(kind, spec, mat)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.MajorityTruthTable(b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.MajorityTable(ctx, b)
		if err != nil {
			t.Fatal(err)
		}
		assertTablesEqual(t, fmt.Sprintf("majority %v", kind), got, want)
	}
	xb, err := core.NewBehavioral(core.XOR, spec, mat)
	if err != nil {
		t.Fatal(err)
	}
	for _, inverted := range []bool{false, true} {
		want, err := core.XORTruthTable(xb, inverted)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.XORTable(ctx, xb, inverted)
		if err != nil {
			t.Fatal(err)
		}
		assertTablesEqual(t, fmt.Sprintf("xor inverted=%v", inverted), got, want)
	}
	mb, err := core.NewBehavioral(core.MAJ3, spec, mat)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []core.DerivedGate{core.AND, core.OR, core.NAND, core.NOR} {
		want, err := core.DerivedTruthTable(mb, d)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.DerivedTable(ctx, mb, d)
		if err != nil {
			t.Fatal(err)
		}
		assertTablesEqual(t, d.String(), got, want)
	}
}

func assertTablesEqual(t *testing.T, name string, got, want *core.TruthTable) {
	t.Helper()
	if got.Gate != want.Gate || got.Detection != want.Detection || len(got.Cases) != len(want.Cases) {
		t.Fatalf("%s: table shape differs: got %s/%s/%d cases, want %s/%s/%d",
			name, got.Gate, got.Detection, len(got.Cases), want.Gate, want.Detection, len(want.Cases))
	}
	for i := range got.Cases {
		g, w := got.Cases[i], want.Cases[i]
		if g.Expected != w.Expected || g.Correct != w.Correct || len(g.Outputs) != len(w.Outputs) {
			t.Fatalf("%s case %d: got %+v, want %+v", name, i, g, w)
		}
		for j := range g.Outputs {
			if g.Outputs[j] != w.Outputs[j] {
				t.Fatalf("%s case %d output %d: got %+v, want %+v",
					name, i, j, g.Outputs[j], w.Outputs[j])
			}
		}
	}
}

func TestMicromagCancellationMidIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("micromagnetic run")
	}
	m, err := core.NewMicromagnetic(core.XOR)
	if err != nil {
		t.Fatal(err)
	}
	e := New(WithWorkers(1))
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = e.Eval(ctx, m, []bool{true, false})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-integration eval returned %v, want deadline exceeded", err)
	}
	// A full reduced-spec transient takes tens of seconds; the abort
	// must happen within one step-check of the deadline.
	if elapsed > 3*time.Second {
		t.Fatalf("micromagnetic eval took %v to honor a 300ms deadline", elapsed)
	}
	if e.Stats().Cancelled == 0 {
		t.Fatal("cancelled counter never incremented")
	}
}

package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"spinwave/internal/core"
	"spinwave/internal/layout"
	"spinwave/internal/material"
	"spinwave/internal/obs"
)

// TestConcurrentEvalCacheAndMetrics is the race-focused stress test for
// the observability layer: many goroutines evaluating through a tiny
// LRU (constant churn and eviction) while other goroutines continuously
// read the per-engine Stats and the shared obs registry — snapshots and
// Prometheus rendering included. Run under -race this exercises every
// counter write site against every read site; afterwards the counters
// must be monotone and mutually consistent.
func TestConcurrentEvalCacheAndMetrics(t *testing.T) {
	e := New(WithWorkers(8), WithCacheSize(4))

	const (
		evalWorkers = 16
		rounds      = 40
		backends    = 8 // distinct fingerprints force LRU churn at cap 4
	)

	before := obs.Default().Snapshot()

	var readers, writers sync.WaitGroup
	stop := make(chan struct{})
	// Metric readers: hammer Stats, Snapshot, and the text exposition
	// concurrently with the writers.
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var prev Stats
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := e.Stats()
				if s.Requests < prev.Requests || s.CacheHits < prev.CacheHits ||
					s.CacheMisses < prev.CacheMisses || s.Evals < prev.Evals ||
					s.CacheEvictions < prev.CacheEvictions {
					t.Errorf("counters went backwards: %+v -> %+v", prev, s)
					return
				}
				prev = s
				obs.Default().Snapshot()
				var sb stringsBuilder
				if err := obs.Default().WritePrometheus(&sb); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
			}
		}()
	}
	// Eval workers: every worker sweeps every backend and case, so the
	// same keys are requested concurrently (coalescing) and in sequence
	// (hits), while 8 fingerprints × 4 cases churn the 4-entry LRU.
	for w := 0; w < evalWorkers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for r := 0; r < rounds; r++ {
				b := newFakeXOR(fmt.Sprintf("stress-%d", (w+r)%backends), 0)
				in := []bool{r%2 == 0, (r/2)%2 == 0}
				if _, err := e.Eval(context.Background(), b, in); err != nil {
					t.Errorf("eval: %v", err)
					return
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	s := e.Stats()
	if got, want := s.Requests, int64(evalWorkers*rounds); got != want {
		t.Errorf("requests = %d, want %d", got, want)
	}
	// Every request either hit, missed, or was coalesced onto a miss.
	if s.CacheHits+s.CacheMisses != s.Requests {
		t.Errorf("hits %d + misses %d != requests %d", s.CacheHits, s.CacheMisses, s.Requests)
	}
	if s.CacheEvictions == 0 {
		t.Error("no evictions despite 32 keys through a 4-entry cache")
	}
	if s.CacheEntries > 4 {
		t.Errorf("cache holds %d entries, cap 4", s.CacheEntries)
	}
	if s.EvalErrors != 0 || s.Cancelled != 0 {
		t.Errorf("unexpected failures: %+v", s)
	}
	if s.InFlight != 0 {
		t.Errorf("in-flight %d after all work drained", s.InFlight)
	}

	// The shared registry must have advanced consistently with this
	// engine's own counters (other tests may add on top, never subtract).
	after := obs.Default().Snapshot()
	for _, c := range []struct {
		name string
		min  int64
	}{
		{"spinwave_engine_requests_total", s.Requests},
		{"spinwave_engine_cache_hits_total", s.CacheHits},
		{"spinwave_engine_cache_misses_total", s.CacheMisses},
		{"spinwave_engine_cache_evictions_total", s.CacheEvictions},
		{`spinwave_engine_evals_total{result="ok"}`, s.Evals},
	} {
		delta := after.Counters[c.name] - before.Counters[c.name]
		if delta < c.min {
			t.Errorf("%s advanced by %d, want >= %d", c.name, delta, c.min)
		}
	}
	if g := after.Gauges["spinwave_engine_in_flight"]; g < 0 {
		t.Errorf("in-flight gauge %g went negative", g)
	}
}

// TestConcurrentBandedSolversRace steps two real micromagnetic solvers
// concurrently from one engine, each with its own multi-worker stepping
// pool (ISSUE 3 satellite). Under -race this exercises the tiled LLG
// core end to end: two tile.Pools alive at once, banded field/torque
// kernels with halo reads, sparse antenna overlays and the shared obs
// registry — all from the engine's own task pool. The two cases use
// different inputs, so nothing coalesces and both really step.
func TestConcurrentBandedSolversRace(t *testing.T) {
	if testing.Short() {
		t.Skip("micromagnetic integration test")
	}
	e := New(WithWorkers(2), WithCacheSize(0))
	mk := func() core.Backend {
		t.Helper()
		m, err := core.NewMicromagnetic(core.XOR, core.MicromagConfig{
			Spec:    layout.ReducedSpec(),
			Mat:     material.FeCoB(),
			Workers: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	b1, b2 := mk(), mk()
	var wg sync.WaitGroup
	results := make([]map[string]float64, 2)
	for i, job := range []struct {
		b  core.Backend
		in []bool
	}{
		{b1, []bool{false, false}},
		{b2, []bool{true, false}},
	} {
		wg.Add(1)
		go func(slot int, b core.Backend, in []bool) {
			defer wg.Done()
			out, err := e.Eval(context.Background(), b, in)
			if err != nil {
				t.Errorf("eval: %v", err)
				return
			}
			amps := make(map[string]float64, len(out))
			for name, r := range out {
				amps[name] = r.Amplitude
			}
			results[slot] = amps
		}(i, job.b, job.in)
	}
	wg.Wait()
	for i, r := range results {
		if r == nil {
			continue // error already reported
		}
		if r["O1"] <= 0 || r["O2"] <= 0 {
			t.Errorf("case %d: non-positive output amplitudes: %v", i, r)
		}
	}
}

// stringsBuilder is a minimal io.Writer that discards its input — the
// stress test cares that rendering races cleanly, not about the text.
type stringsBuilder struct{}

func (stringsBuilder) Write(p []byte) (int, error) { return len(p), nil }

package engine

import (
	"sync"

	"spinwave/internal/obs"
)

// Process-wide engine metrics in the obs default registry. Every engine
// in the process shares these series (they are workload totals — the
// per-engine view stays available through Engine.Stats); they register
// lazily on the first New so an importing program that never builds an
// engine exports nothing.
var (
	metricsOnce sync.Once

	mRequests       *obs.Counter
	mCacheHits      *obs.Counter
	mCacheMisses    *obs.Counter
	mCacheEvictions *obs.Counter
	mCoalesced      *obs.Counter
	mEvalsOK        *obs.Counter
	mEvalsErr       *obs.Counter
	mEvalsCancelled *obs.Counter
	mQueueWaits     *obs.Counter
	mInFlight       *obs.Gauge
	mEvalSeconds    *obs.Histogram
	mQueueSeconds   *obs.Histogram
	mTasks          *obs.Counter
	mTaskSeconds    *obs.Histogram

	mDiskHits           *obs.Counter
	mDiskMisses         *obs.Counter
	mDiskWrites         *obs.Counter
	mDiskWriteErrs      *obs.Counter
	mDiskSeconds        *obs.Histogram
	mWarmed             *obs.Counter
	mSurrogateEvals     *obs.Counter
	mSurrogateSeconds   *obs.Histogram
	mAdmissionsOK       *obs.Counter
	mAdmissionsRejected *obs.Counter
)

func initMetrics() {
	metricsOnce.Do(func() {
		r := obs.Default()
		r.Describe("spinwave_engine_requests_total", "Eval calls across all engines")
		mRequests = r.Counter("spinwave_engine_requests_total")
		r.Describe("spinwave_engine_cache_hits_total", "evaluations served from the LRU result cache")
		mCacheHits = r.Counter("spinwave_engine_cache_hits_total")
		r.Describe("spinwave_engine_cache_misses_total", "cacheable evaluations not found in the LRU")
		mCacheMisses = r.Counter("spinwave_engine_cache_misses_total")
		r.Describe("spinwave_engine_cache_evictions_total", "readouts evicted from the LRU at capacity")
		mCacheEvictions = r.Counter("spinwave_engine_cache_evictions_total")
		r.Describe("spinwave_engine_coalesced_total", "requests coalesced onto an identical in-flight evaluation")
		mCoalesced = r.Counter("spinwave_engine_coalesced_total")
		r.Describe("spinwave_engine_evals_total", "evaluations by outcome")
		mEvalsOK = r.Counter("spinwave_engine_evals_total", obs.L("result", "ok"))
		mEvalsErr = r.Counter("spinwave_engine_evals_total", obs.L("result", "error"))
		mEvalsCancelled = r.Counter("spinwave_engine_evals_total", obs.L("result", "cancelled"))
		r.Describe("spinwave_engine_queue_waits_total", "times a request queued for a free worker slot")
		mQueueWaits = r.Counter("spinwave_engine_queue_waits_total")
		r.Describe("spinwave_engine_in_flight", "evaluations holding a worker slot right now")
		mInFlight = r.Gauge("spinwave_engine_in_flight")
		r.Describe("spinwave_engine_eval_seconds", "wall-clock latency of one case evaluation")
		mEvalSeconds = r.Histogram("spinwave_engine_eval_seconds", nil)
		r.Describe("spinwave_engine_queue_wait_seconds", "time spent waiting for a worker slot (saturated pool only)")
		mQueueSeconds = r.Histogram("spinwave_engine_queue_wait_seconds", nil)
		r.Describe("spinwave_engine_tasks_total", "coarse tasks (sweep points, word channels) run through Map")
		mTasks = r.Counter("spinwave_engine_tasks_total")
		r.Describe("spinwave_engine_task_seconds", "wall-clock latency of one coarse task")
		mTaskSeconds = r.Histogram("spinwave_engine_task_seconds", nil)
		r.Describe("spinwave_engine_disk_lookups_total", "persistent-tier lookups by result")
		mDiskHits = r.Counter("spinwave_engine_disk_lookups_total", obs.L("result", "hit"))
		mDiskMisses = r.Counter("spinwave_engine_disk_lookups_total", obs.L("result", "miss"))
		r.Describe("spinwave_engine_disk_writes_total", "results persisted to the disk tier by outcome")
		mDiskWrites = r.Counter("spinwave_engine_disk_writes_total", obs.L("result", "ok"))
		mDiskWriteErrs = r.Counter("spinwave_engine_disk_writes_total", obs.L("result", "error"))
		r.Describe("spinwave_engine_disk_seconds", "disk-tier IO latency (reads and writes)")
		mDiskSeconds = r.Histogram("spinwave_engine_disk_seconds", nil)
		r.Describe("spinwave_engine_warmed_total", "disk entries loaded into the LRU at engine construction")
		mWarmed = r.Counter("spinwave_engine_warmed_total")
		r.Describe("spinwave_engine_surrogate_evals_total", "evaluations answered by the superposition surrogate tier")
		mSurrogateEvals = r.Counter("spinwave_engine_surrogate_evals_total")
		r.Describe("spinwave_engine_surrogate_seconds", "wall-clock latency of one surrogate evaluation")
		mSurrogateSeconds = r.Histogram("spinwave_engine_surrogate_seconds", nil)
		r.Describe("spinwave_engine_surrogate_admissions_total", "surrogate admission-gate verdicts")
		mAdmissionsOK = r.Counter("spinwave_engine_surrogate_admissions_total", obs.L("verdict", "admitted"))
		mAdmissionsRejected = r.Counter("spinwave_engine_surrogate_admissions_total", obs.L("verdict", "rejected"))
	})
}

package fleet

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzJobFile drives the hand-writable job-file parser: any input must
// either be rejected or produce a normalized job that (a) satisfies its
// own invariants and (b) round-trips through marshal → reparse to an
// equivalent job. The parser guards the queue's scan path, where one
// poisoned file must never crash the coordinator.
func FuzzJobFile(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{"spec":{"gate":"xor"},"cases":[[true,false]]}`),
		[]byte(`{"id":"j1","request":"q1","spec":{"gate":"maj3","backend":"micromag","mode":"auto"},"cases":[[false,false,false],[true,true,true]],"status":"pending"}`),
		[]byte(`{"version":1,"id":"q1-000","spec":{"gate":"xor","table":true},"cases":[[false,false]],"status":"done","worker":"w1","attempts":1,"fingerprint":"fp","results":[{"inputs":[false,false],"outputs":{"O1":{"Probe":"O1","Amplitude":1,"Phase":0}},"source":"behavioral"}]}`),
		[]byte(`{"spec":{"gate":"maj5"},"cases":[[true,false,true,false,true]],"max_attempts":5,"lease_until_unix_ns":123,"submitted_unix_ns":456}`),
		[]byte(`{}`),
		[]byte(`{"spec":{"gate":"xor"},"cases":[]}`),
		[]byte(`{"spec":{"gate":"xor"},"cases":[[true],[true,false]]}`),
		[]byte(`{"version":99,"spec":{"gate":"xor"},"cases":[[true,false]]}`),
		[]byte(`{"id":"../evil","spec":{"gate":"xor"},"cases":[[true,false]]}`),
		[]byte(`{"spec":{"gate":"xor"},"cases":[[true,false]]}garbage`),
		[]byte(`not json at all`),
		[]byte(``),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		j, err := ParseJobFile(data)
		if err != nil {
			if j != nil {
				t.Fatal("error with non-nil job")
			}
			return
		}
		// Accepted jobs satisfy the normalized invariants.
		if j.Version != jobFileVersion {
			t.Fatalf("version %d not normalized", j.Version)
		}
		if j.ID != "" && !validID(j.ID) {
			t.Fatalf("invalid id %q accepted", j.ID)
		}
		if len(j.Cases) == 0 || len(j.Cases) > maxJobCases {
			t.Fatalf("case count %d out of bounds", len(j.Cases))
		}
		w := len(j.Cases[0])
		if w == 0 || w > maxJobInputs {
			t.Fatalf("case width %d out of bounds", w)
		}
		for _, c := range j.Cases {
			if len(c) != w {
				t.Fatal("ragged cases accepted")
			}
		}
		switch j.Status {
		case JobPending, JobClaimed, JobDone, JobFailed:
		default:
			t.Fatalf("status %q out of vocabulary", j.Status)
		}
		if j.MaxAttempts < 1 || j.Attempts < 0 {
			t.Fatalf("attempts %d/%d not normalized", j.Attempts, j.MaxAttempts)
		}

		// Round-trip: the queue persists jobs with json.Marshal and
		// trusts ParseJobFile on restart, so marshal → parse must accept
		// and preserve every normalized job.
		buf, err := json.Marshal(j)
		if err != nil {
			t.Fatalf("marshal of accepted job: %v", err)
		}
		j2, err := ParseJobFile(buf)
		if err != nil {
			t.Fatalf("reparse of marshaled job: %v (file %s)", err, buf)
		}
		buf2, err := json.Marshal(j2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, buf2) {
			t.Fatalf("round-trip not stable:\n %s\n %s", buf, buf2)
		}
	})
}

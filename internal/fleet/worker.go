package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"spinwave/internal/journal"
	"spinwave/internal/obsplane"
)

// Evaluator turns one job's cases into outcomes. cmd/swworker supplies
// one built on the spinwave facade and tiered engine; tests supply
// fakes. The fingerprint is the canonical backend fingerprint shared by
// every case of the job (empty when the backend has none).
type Evaluator interface {
	Evaluate(ctx context.Context, spec JobSpec, cases [][]bool) (fingerprint string, results []CaseOutcome, err error)
}

// EvaluatorFunc adapts a function to the Evaluator interface.
type EvaluatorFunc func(ctx context.Context, spec JobSpec, cases [][]bool) (string, []CaseOutcome, error)

// Evaluate implements Evaluator.
func (f EvaluatorFunc) Evaluate(ctx context.Context, spec JobSpec, cases [][]bool) (string, []CaseOutcome, error) {
	return f(ctx, spec, cases)
}

// Worker is the fleet client loop: register, poll for claims, evaluate
// under a heartbeat, post results. It is deliberately tolerant — any
// individual HTTP call may fail (or be dropped/delayed/duplicated by
// the faults harness) and the loop carries on; the queue's leases and
// idempotent ingestion make that safe.
type Worker struct {
	// BaseURL is the coordinator's base URL (e.g. http://127.0.0.1:8080).
	BaseURL string
	// Client is the HTTP client; nil means a default client. The faults
	// harness injects its Transport here.
	Client *http.Client
	// Eval evaluates claimed jobs. Required.
	Eval Evaluator
	// ID is the worker's preferred ID; empty asks the coordinator to
	// assign one. Updated to the assigned ID after registration.
	ID string
	// Poll is the idle re-poll interval (default 500ms).
	Poll time.Duration
	// CaseDelay stretches each case's evaluation, so tests and the smoke
	// harness can reliably kill a worker mid-job.
	CaseDelay time.Duration
	// Health reports the node's health snapshot attached to heartbeats
	// (engine stats, store tiers); nil omits it.
	Health func() map[string]any
	// OnClaim, when set, observes every claimed job before evaluation —
	// the failure-injection hook used to kill a worker mid-job.
	OnClaim func(*Job)

	heartbeat time.Duration
	jobs      int

	// traceMu guards trace, the claimed job's fleet trace ID: written by
	// serve at each claim, read by post on the main loop AND the
	// heartbeat goroutine (both stamp it as the X-Spinwave-Trace header).
	traceMu sync.Mutex
	trace   string
}

// setTrace records the trace stamped on subsequent HTTP calls.
func (w *Worker) setTrace(t string) {
	w.traceMu.Lock()
	w.trace = t
	w.traceMu.Unlock()
}

// Trace returns the trace of the job the worker currently serves ("" when
// idle) — cmd/swworker forwards it to the journal shipper.
func (w *Worker) Trace() string {
	w.traceMu.Lock()
	defer w.traceMu.Unlock()
	return w.trace
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

// post sends one JSON call and decodes the response body into out (when
// out is non-nil and the status is 200). A 204 returns (204, nil).
func (w *Worker) post(ctx context.Context, path string, in, out any) (int, error) {
	buf, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.BaseURL+path, bytes.NewReader(buf))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if t := w.Trace(); t != "" {
		req.Header.Set(obsplane.TraceHeader, t)
	}
	resp, err := w.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode == http.StatusNoContent {
		return resp.StatusCode, nil
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, fmt.Errorf("fleet: %s: %s: %s", path, resp.Status, truncate(body, 200))
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			return resp.StatusCode, fmt.Errorf("fleet: %s: decode: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(bytes.TrimSpace(b))
}

// register announces the worker, retrying until ctx ends.
func (w *Worker) register(ctx context.Context) error {
	host, _ := os.Hostname()
	for {
		var resp RegisterResponse
		_, err := w.post(ctx, "/v1/fleet/register", RegisterRequest{
			Worker: w.ID, Host: host, PID: os.Getpid(),
		}, &resp)
		if err == nil {
			w.ID = resp.Worker
			if resp.HeartbeatMS > 0 {
				w.heartbeat = time.Duration(resp.HeartbeatMS) * time.Millisecond
			}
			if w.Poll <= 0 && resp.PollMS > 0 {
				w.Poll = time.Duration(resp.PollMS) * time.Millisecond
			}
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(w.pollInterval()):
		}
	}
}

func (w *Worker) pollInterval() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 500 * time.Millisecond
}

func (w *Worker) heartbeatInterval() time.Duration {
	if w.heartbeat > 0 {
		return w.heartbeat
	}
	return DefaultLease / 3
}

// Run registers the worker and drains the queue until ctx is cancelled.
// It returns ctx.Err() on shutdown, or the registration error when the
// coordinator never became reachable.
func (w *Worker) Run(ctx context.Context) error {
	if w.Eval == nil {
		return fmt.Errorf("fleet: worker needs an Evaluator")
	}
	if err := w.register(ctx); err != nil {
		return err
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		job, ok := w.claim(ctx)
		if !ok {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(w.pollInterval()):
			}
			continue
		}
		w.serve(ctx, job)
	}
}

// claim asks for one job; false means idle (or a transient error, which
// the caller treats the same — wait and re-poll).
func (w *Worker) claim(ctx context.Context) (*Job, bool) {
	var job Job
	status, err := w.post(ctx, "/v1/fleet/claim", ClaimRequest{Worker: w.ID}, &job)
	if err != nil || status != http.StatusOK {
		return nil, false
	}
	return &job, true
}

// serve evaluates one claimed job under a heartbeat and posts its
// outcome. A stale-claim heartbeat response cancels the evaluation (the
// coordinator requeued the job — a peer owns it now); the result post
// retries a few times because losing a computed result is the one
// failure leases cannot repair.
func (w *Worker) serve(ctx context.Context, job *Job) {
	// The claim's trace becomes the worker's current trace before any
	// other call or hook runs: the heartbeat header, the journal shipper
	// (via OnClaim) and the checkpoint writer (via the context) all stamp
	// the same ID the coordinator minted.
	w.setTrace(job.Trace)
	defer w.setTrace("")
	if w.OnClaim != nil {
		w.OnClaim(job)
	}
	// Journal the claim from the worker's side too. The coordinator's
	// fleet.claim records that the lease was granted; this marker records
	// that the worker actually started serving it — and, shipped on the
	// next flush tick, it is the traced tail a post-mortem finds when the
	// worker is killed before its evaluation emits anything.
	if jd := journal.Default(); jd.Enabled() {
		jd.Emit("", "fleet.worker", corrFields([]journal.Field{
			journal.F("worker", w.ID),
			journal.F("job", job.ID),
			journal.F("status", "serving"),
		}, job.Request, job.Trace)...)
	}
	evalCtx, cancel := context.WithCancel(obsplane.WithTrace(ctx, job.Trace))
	defer cancel()
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(w.heartbeatInterval())
		defer t.Stop()
		for {
			select {
			case <-evalCtx.Done():
				return
			case <-t.C:
				var health map[string]any
				if w.Health != nil {
					health = w.Health()
				}
				// post reports an error for any non-200, so the conflict is
				// detected on the status code alone.
				status, _ := w.post(evalCtx, "/v1/fleet/heartbeat", HeartbeatRequest{
					Worker: w.ID, Job: job.ID, Health: health,
				}, nil)
				if status == http.StatusConflict {
					cancel() // stale claim: stop computing, a peer owns the job
					return
				}
			}
		}
	}()

	fingerprint, results, evalErr := w.evaluate(evalCtx, job)
	// Staleness must be read before the deferred-style cancel below —
	// cancelling makes evalCtx.Err() non-nil unconditionally.
	stale := evalCtx.Err() != nil && ctx.Err() == nil
	cancel()
	<-hbDone

	if evalErr != nil && stale {
		// The claim went stale mid-evaluation; nothing to report — the
		// job is already requeued and a peer will finish it.
		return
	}
	res := ResultRequest{Worker: w.ID, Job: job.ID, Fingerprint: fingerprint, Results: results}
	if evalErr != nil {
		res.Error = evalErr.Error()
		res.Fingerprint = ""
		res.Results = nil
	}
	for attempt := 0; attempt < 3; attempt++ {
		if _, err := w.post(ctx, "/v1/fleet/results", res, nil); err == nil {
			if evalErr == nil {
				w.jobs++
			}
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(w.pollInterval()):
		}
	}
	if jd := journal.Default(); jd.Enabled() {
		jd.Emit("", "fleet.worker", corrFields([]journal.Field{
			journal.F("worker", w.ID),
			journal.F("job", job.ID),
			journal.F("status", "result_post_failed"),
		}, job.Request, job.Trace)...)
	}
}

// evaluate runs the job's cases through the Evaluator, stretching each
// case by CaseDelay when configured.
func (w *Worker) evaluate(ctx context.Context, job *Job) (string, []CaseOutcome, error) {
	if w.CaseDelay <= 0 {
		return w.Eval.Evaluate(ctx, job.Spec, job.Cases)
	}
	var all []CaseOutcome
	var fp string
	for _, c := range job.Cases {
		select {
		case <-ctx.Done():
			return "", nil, ctx.Err()
		case <-time.After(w.CaseDelay):
		}
		f, out, err := w.Eval.Evaluate(ctx, job.Spec, [][]bool{c})
		if err != nil {
			return "", nil, err
		}
		fp = f
		all = append(all, out...)
	}
	return fp, all, nil
}

// JobsDone reports how many jobs this worker completed successfully
// (result post accepted). Test/diagnostic aid; not synchronized — read
// it only after Run returns.
func (w *Worker) JobsDone() int { return w.jobs }

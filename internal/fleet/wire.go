package fleet

// HTTP wire types of the fleet protocol, shared by swserve's handlers
// and the Worker client so the two sides cannot drift. Client-facing
// request/response shapes (job submission, request status, worker
// listing) live with the server; these are the worker-facing ones.

// RegisterRequest announces a worker to the coordinator. An empty
// Worker asks the coordinator to assign an ID.
type RegisterRequest struct {
	Worker string `json:"worker,omitempty"`
	Host   string `json:"host,omitempty"`
	PID    int    `json:"pid,omitempty"`
	// Engine describes the worker's evaluation setup (backend kinds,
	// store tiers) for the operator's benefit; informational only.
	Engine string `json:"engine,omitempty"`
}

// RegisterResponse confirms registration and hands the worker its
// operating intervals, all derived from the coordinator's lease.
type RegisterResponse struct {
	Worker      string `json:"worker"`
	LeaseMS     int64  `json:"lease_ms"`
	PollMS      int64  `json:"poll_ms"`
	HeartbeatMS int64  `json:"heartbeat_ms"`
}

// ClaimRequest asks for the next job. The response is a Job (HTTP 200)
// or no content (HTTP 204) when the queue is idle.
type ClaimRequest struct {
	Worker string `json:"worker"`
}

// HeartbeatRequest extends the worker's lease on a job and carries the
// worker's self-reported node health.
type HeartbeatRequest struct {
	Worker string         `json:"worker"`
	Job    string         `json:"job"`
	Health map[string]any `json:"health,omitempty"`
}

// ResultRequest posts a job's outcome: either Results (success, with
// the backend fingerprint) or Error (evaluation failure).
type ResultRequest struct {
	Worker      string        `json:"worker"`
	Job         string        `json:"job"`
	Fingerprint string        `json:"fingerprint,omitempty"`
	Results     []CaseOutcome `json:"results,omitempty"`
	Error       string        `json:"error,omitempty"`
}

// ResultResponse reports whether the post was applied (false means an
// idempotent duplicate) and the job's resulting status.
type ResultResponse struct {
	Applied bool      `json:"applied"`
	Status  JobStatus `json:"status"`
}

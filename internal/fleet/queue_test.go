package fleet

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"spinwave/internal/detect"
	"spinwave/internal/fleet/faults"
	"spinwave/internal/journal"
)

// testOutcomes fabricates one outcome per case with a distinctive
// amplitude, so tests can verify the right results landed.
func testOutcomes(cases [][]bool) []CaseOutcome {
	out := make([]CaseOutcome, len(cases))
	for i, c := range cases {
		out[i] = CaseOutcome{
			Inputs:  c,
			Outputs: map[string]detect.Readout{"O1": {Probe: "O1", Amplitude: float64(i + 1)}},
			Source:  "behavioral",
		}
	}
	return out
}

func openTestQueue(t *testing.T, opts ...QueueOption) *Queue {
	t.Helper()
	q, err := OpenQueue(t.TempDir(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestQueueLifecycle(t *testing.T) {
	q := openTestQueue(t)
	job := &Job{Spec: JobSpec{Gate: "xor"}, Cases: [][]bool{{false, false}, {true, false}}}
	if err := q.Submit(job); err != nil {
		t.Fatal(err)
	}
	if job.ID == "" {
		t.Fatal("Submit did not assign an ID")
	}

	claimed, err := q.Claim("w1")
	if err != nil {
		t.Fatal(err)
	}
	if claimed == nil || claimed.ID != job.ID {
		t.Fatalf("Claim = %+v, want job %s", claimed, job.ID)
	}
	if claimed.Status != JobClaimed || claimed.Worker != "w1" || claimed.Attempts != 1 {
		t.Fatalf("claimed job state = %s/%s/%d", claimed.Status, claimed.Worker, claimed.Attempts)
	}

	// Second claim finds nothing: the only job is leased.
	if again, err := q.Claim("w2"); err != nil || again != nil {
		t.Fatalf("second Claim = %v, %v; want nil, nil", again, err)
	}

	if err := q.Heartbeat(job.ID, "w1"); err != nil {
		t.Fatal(err)
	}
	if err := q.Heartbeat(job.ID, "w2"); !errors.Is(err, ErrStaleClaim) {
		t.Fatalf("foreign heartbeat err = %v, want ErrStaleClaim", err)
	}

	applied, err := q.Complete(job.ID, "w1", "fp1", testOutcomes(job.Cases))
	if err != nil || !applied {
		t.Fatalf("Complete = %v, %v; want true, nil", applied, err)
	}
	got, ok := q.Get(job.ID)
	if !ok || got.Status != JobDone || got.Fingerprint != "fp1" || len(got.Results) != 2 {
		t.Fatalf("done job = %+v", got)
	}

	st := q.Stats()
	if st.Done != 1 || st.Pending != 0 || st.Claimed != 0 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestQueueDuplicateCompleteIsDropped(t *testing.T) {
	q := openTestQueue(t)
	job := &Job{Spec: JobSpec{Gate: "xor"}, Cases: [][]bool{{true, true}}}
	if err := q.Submit(job); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Claim("w1"); err != nil {
		t.Fatal(err)
	}
	res := testOutcomes(job.Cases)
	if applied, err := q.Complete(job.ID, "w1", "fp", res); err != nil || !applied {
		t.Fatalf("first Complete = %v, %v", applied, err)
	}
	// The duplicate — a retried HTTP call or a requeue-race peer — is
	// counted, not double-applied, and not an error.
	dup := testOutcomes(job.Cases)
	dup[0].Outputs["O1"] = detect.Readout{Probe: "O1", Amplitude: 999}
	if applied, err := q.Complete(job.ID, "w2", "fp", dup); err != nil || applied {
		t.Fatalf("duplicate Complete = %v, %v; want false, nil", applied, err)
	}
	got, _ := q.Get(job.ID)
	if got.Results[0].Outputs["O1"].Amplitude == 999 {
		t.Fatal("duplicate result overwrote the stored one")
	}
}

func TestQueueLeaseExpiryRequeues(t *testing.T) {
	clock := faults.NewClock(time.Unix(1000, 0))
	q := openTestQueue(t, WithClock(clock), WithLease(10*time.Second))
	job := &Job{Spec: JobSpec{Gate: "maj3"}, Cases: [][]bool{{false, false, false}}}
	if err := q.Submit(job); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Claim("w1"); err != nil {
		t.Fatal(err)
	}
	// Freeze heartbeats (the clock only moves when advanced) and expire
	// the lease.
	if requeued := q.Sweep(); len(requeued) != 0 {
		t.Fatalf("premature sweep requeued %v", requeued)
	}
	clock.Advance(11 * time.Second)
	requeued := q.Sweep()
	if len(requeued) != 1 || requeued[0] != job.ID {
		t.Fatalf("Sweep = %v, want [%s]", requeued, job.ID)
	}
	got, _ := q.Get(job.ID)
	if got.Status != JobPending || got.Worker != "" {
		t.Fatalf("requeued job = %s/%q", got.Status, got.Worker)
	}

	// A peer claims it (attempt 2) and completes it.
	claimed, err := q.Claim("w2")
	if err != nil || claimed == nil {
		t.Fatalf("peer Claim = %v, %v", claimed, err)
	}
	if claimed.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", claimed.Attempts)
	}
	if applied, err := q.Complete(job.ID, "w2", "fp", testOutcomes(job.Cases)); err != nil || !applied {
		t.Fatalf("peer Complete = %v, %v", applied, err)
	}
	if q.Stats().Requeues != 1 {
		t.Fatalf("Requeues = %d, want 1", q.Stats().Requeues)
	}
}

func TestQueueExhaustedAttemptsFailTerminally(t *testing.T) {
	clock := faults.NewClock(time.Unix(1000, 0))
	q := openTestQueue(t, WithClock(clock), WithLease(time.Second), WithMaxAttempts(2))
	job := &Job{Spec: JobSpec{Gate: "xor"}, Cases: [][]bool{{false, true}}}
	if err := q.Submit(job); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if j, err := q.Claim("w1"); err != nil || j == nil {
			t.Fatalf("claim %d = %v, %v", i, j, err)
		}
		clock.Advance(2 * time.Second)
		q.Sweep()
	}
	got, _ := q.Get(job.ID)
	if got.Status != JobFailed || got.Error == "" {
		t.Fatalf("after exhausting attempts: %s (%q)", got.Status, got.Error)
	}
	// A terminal job refuses late results.
	if _, err := q.Complete(job.ID, "w1", "fp", testOutcomes(job.Cases)); err == nil {
		t.Fatal("Complete on a failed job succeeded")
	}
}

func TestQueueRestartRecovers(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenQueue(dir)
	if err != nil {
		t.Fatal(err)
	}
	j1 := &Job{Spec: JobSpec{Gate: "xor"}, Cases: [][]bool{{false, false}}}
	j2 := &Job{Spec: JobSpec{Gate: "xor"}, Cases: [][]bool{{true, true}}}
	if err := q.Submit(j1); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(j2); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Claim("w1"); err != nil {
		t.Fatal(err)
	}
	if applied, err := q.Complete(j1.ID, "w1", "fp", testOutcomes(j1.Cases)); err != nil || !applied {
		t.Fatalf("Complete = %v, %v", applied, err)
	}

	// A fresh queue over the same directory sees the same state,
	// including the completed job's results.
	q2, err := OpenQueue(dir)
	if err != nil {
		t.Fatal(err)
	}
	g1, ok := q2.Get(j1.ID)
	if !ok || g1.Status != JobDone || len(g1.Results) != 1 {
		t.Fatalf("recovered done job = %+v", g1)
	}
	g2, ok := q2.Get(j2.ID)
	if !ok || g2.Status != JobPending {
		t.Fatalf("recovered pending job = %+v", g2)
	}
}

func TestQueueLoadsHandWrittenFile(t *testing.T) {
	dir := t.TempDir()
	// The minimal hand-written job: no id (the file name is it), no
	// status, no version.
	raw := `{"spec":{"gate":"xor"},"cases":[[true,false],[false,true]]}`
	if err := os.WriteFile(filepath.Join(dir, "my-sweep.json"), []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	q, err := OpenQueue(dir)
	if err != nil {
		t.Fatal(err)
	}
	j, ok := q.Get("my-sweep")
	if !ok {
		t.Fatal("hand-written job not loaded")
	}
	if j.Status != JobPending || j.MaxAttempts != DefaultMaxAttempts || len(j.Cases) != 2 {
		t.Fatalf("hand-written job = %+v", j)
	}
}

func TestQueueQuarantinesCorruptFile(t *testing.T) {
	dir := t.TempDir()
	good := `{"spec":{"gate":"xor"},"cases":[[true,false]]}`
	if err := os.WriteFile(filepath.Join(dir, "good.json"), []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := faults.Corrupt(bad); err != nil {
		t.Fatal(err)
	}

	ring := journal.NewRingSink(16)
	detach := journal.Default().Attach(ring)
	defer detach()

	q, err := OpenQueue(dir)
	if err != nil {
		t.Fatalf("corrupt file crashed the open: %v", err)
	}
	if _, ok := q.Get("good"); !ok {
		t.Fatal("good job lost alongside the corrupt one")
	}
	if q.Stats().Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", q.Stats().Quarantined)
	}
	if _, err := os.Stat(bad + ".quarantined"); err != nil {
		t.Fatalf("corrupt file not renamed aside: %v", err)
	}
	// A rescan does not re-quarantine (the .quarantined suffix is
	// ignored) — no crash loop.
	q2, err := OpenQueue(dir)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Stats().Quarantined != 0 {
		t.Fatalf("rescan re-quarantined: %d", q2.Stats().Quarantined)
	}

	// The quarantine raised a journalcheck-valid alert.
	var found bool
	for _, e := range ring.Events() {
		if e.Name != "alert" {
			continue
		}
		if e.Fields["rule"] == "fleet.quarantine" && e.Fields["severity"] == "warn" {
			found = true
		}
	}
	if !found {
		t.Fatal("no fleet.quarantine alert in the journal")
	}
}

func TestQueueAtomicPersistence(t *testing.T) {
	q := openTestQueue(t)
	job := &Job{Spec: JobSpec{Gate: "xor"}, Cases: [][]bool{{false, false}}}
	if err := q.Submit(job); err != nil {
		t.Fatal(err)
	}
	// No temp files linger after a transition, and the job file is
	// complete valid JSON at rest.
	entries, err := os.ReadDir(q.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		if filepath.Ext(de.Name()) == ".tmp" {
			t.Fatalf("temp file left behind: %s", de.Name())
		}
	}
	buf, err := os.ReadFile(filepath.Join(q.Dir(), job.ID+".json"))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatalf("job file is not valid JSON: %v", err)
	}
	if _, err := ParseJobFile(buf); err != nil {
		t.Fatalf("persisted job file fails its own parser: %v", err)
	}
}

func TestQueueWritableProbe(t *testing.T) {
	q := openTestQueue(t)
	if err := q.WritableProbe(); err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(q.Dir(), 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(q.Dir(), 0o755)
	if os.Getuid() == 0 {
		t.Skip("running as root: chmod cannot make the dir unwritable")
	}
	if err := q.WritableProbe(); err == nil {
		t.Fatal("WritableProbe passed on a read-only dir")
	}
}

func TestQueueCompleteValidatesResults(t *testing.T) {
	q := openTestQueue(t)
	job := &Job{Spec: JobSpec{Gate: "xor"}, Cases: [][]bool{{false, false}, {true, true}}}
	if err := q.Submit(job); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Claim("w1"); err != nil {
		t.Fatal(err)
	}
	// Wrong count.
	if _, err := q.Complete(job.ID, "w1", "fp", testOutcomes(job.Cases[:1])); err == nil {
		t.Fatal("short result set accepted")
	}
	// Right count, wrong case.
	bad := testOutcomes([][]bool{{false, false}, {false, true}})
	if _, err := q.Complete(job.ID, "w1", "fp", bad); err == nil {
		t.Fatal("result for a foreign case accepted")
	}
	if _, err := q.Complete("nope", "w1", "fp", nil); !errors.Is(err, ErrNoSuchJob) {
		t.Fatalf("unknown job err = %v, want ErrNoSuchJob", err)
	}
}

package fleet

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"spinwave/internal/journal"
)

// Clock abstracts time for the queue and coordinator so the
// failure-injection harness (internal/fleet/faults) can freeze
// heartbeats and expire leases deterministically.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
}

// realClock is the production clock.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// Sentinel errors of the queue lifecycle. Match with errors.Is.
var (
	// ErrNoSuchJob reports an operation on a job ID the queue does not hold.
	ErrNoSuchJob = errors.New("fleet: no such job")
	// ErrStaleClaim reports a heartbeat for a job the worker no longer
	// holds (lease expired and the job was requeued or reclaimed). The
	// worker should stop evaluating; its eventual result post is still
	// accepted idempotently.
	ErrStaleClaim = errors.New("fleet: stale claim")
)

// DefaultLease is the claim lease granted to a worker per job; the
// worker heartbeats at a fraction of it.
const DefaultLease = 30 * time.Second

// QueueStats counts the queue's jobs by lifecycle state.
type QueueStats struct {
	Pending     int   `json:"pending"`
	Claimed     int   `json:"claimed"`
	Done        int   `json:"done"`
	Failed      int   `json:"failed"`
	Quarantined int   `json:"quarantined"`
	Requeues    int64 `json:"requeues"`
}

// Queue is the durable job queue: one JSON file per job in a directory,
// every state transition persisted by atomic rename (temp file + rename,
// the DiskStore idiom), so a crash at any point leaves either the old or
// the new state on disk — never a torn file a restart would trust.
// Corrupt or conflicting files found at Open are quarantined: renamed
// aside with a ".quarantined" suffix and reported with a journal alert,
// so one bad hand-written file can never crash-loop the coordinator.
// A Queue is safe for concurrent use.
type Queue struct {
	dir         string
	clock       Clock
	lease       time.Duration
	maxAttempts int

	mu          sync.Mutex
	jobs        map[string]*Job
	quarantined int
	requeues    int64
}

// QueueOption configures OpenQueue.
type QueueOption func(*Queue)

// WithClock injects the time source (default: the real clock).
func WithClock(c Clock) QueueOption { return func(q *Queue) { q.clock = c } }

// WithLease sets the claim lease duration (default DefaultLease).
func WithLease(d time.Duration) QueueOption { return func(q *Queue) { q.lease = d } }

// WithMaxAttempts sets the default attempt bound applied to submitted
// jobs that do not carry their own (default DefaultMaxAttempts).
func WithMaxAttempts(n int) QueueOption { return func(q *Queue) { q.maxAttempts = n } }

// OpenQueue opens (creating if needed) the queue directory and loads
// every job file in it. Files that fail to parse, collide on ID, or are
// not valid jobs are quarantined, counted, and alerted — never fatal.
func OpenQueue(dir string, opts ...QueueOption) (*Queue, error) {
	if dir == "" {
		return nil, fmt.Errorf("fleet: queue needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: queue: %w", err)
	}
	q := &Queue{
		dir:         dir,
		clock:       realClock{},
		lease:       DefaultLease,
		maxAttempts: DefaultMaxAttempts,
		jobs:        make(map[string]*Job),
	}
	for _, f := range opts {
		f(q)
	}
	if q.lease <= 0 {
		q.lease = DefaultLease
	}
	if q.maxAttempts < 1 {
		q.maxAttempts = DefaultMaxAttempts
	}
	initMetrics()
	if err := q.scan(); err != nil {
		return nil, err
	}
	return q, nil
}

// Dir returns the queue's root directory.
func (q *Queue) Dir() string { return q.dir }

// Lease returns the claim lease duration granted per job.
func (q *Queue) Lease() time.Duration { return q.lease }

// scan loads every *.json job file, quarantining defective ones.
func (q *Queue) scan() error {
	entries, err := os.ReadDir(q.dir)
	if err != nil {
		return fmt.Errorf("fleet: queue scan: %w", err)
	}
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || strings.HasPrefix(name, ".") || !strings.HasSuffix(name, ".json") {
			continue
		}
		path := filepath.Join(q.dir, name)
		buf, err := os.ReadFile(path)
		if err != nil {
			q.quarantine(path, nil, fmt.Errorf("unreadable: %w", err))
			continue
		}
		j, err := ParseJobFile(buf)
		if err != nil {
			q.quarantine(path, partialJob(buf), err)
			continue
		}
		// A hand-written file may omit the ID; the file-name stem is it.
		stem := strings.TrimSuffix(name, ".json")
		if j.ID == "" {
			if !validID(stem) {
				q.quarantine(path, j, fmt.Errorf("no id and file name %q is not a valid id", stem))
				continue
			}
			j.ID = stem
		}
		if _, exists := q.jobs[j.ID]; exists {
			q.quarantine(path, j, fmt.Errorf("duplicate job id %q", j.ID))
			continue
		}
		if j.SubmittedNS == 0 {
			j.SubmittedNS = q.clock.Now().UnixNano()
		}
		// Persist under the canonical name so later transitions rewrite
		// one well-known file (hand-written files may be named anything).
		if path != q.fileFor(j.ID) {
			if err := q.persist(j); err != nil {
				return err
			}
			os.Remove(path)
		}
		q.jobs[j.ID] = j
	}
	return nil
}

// corrFields appends the correlation keys every fleet journal event
// must carry when known: the parent request ID and the fleet trace ID
// (the post-mortem joins in OPERATIONS.md grep on both).
func corrFields(fields []journal.Field, request, trace string) []journal.Field {
	if request != "" {
		fields = append(fields, journal.F("request", request))
	}
	if trace != "" {
		fields = append(fields, journal.F("trace", trace))
	}
	return fields
}

// quarantine renames a defective queue file aside and raises a journal
// alert; the queue keeps serving. The renamed file keeps its content
// for post-mortems and is ignored by every future scan. When the file
// parsed far enough to name its job, j carries it so the alert stays
// joinable to the parent request and trace; nil when unparseable.
func (q *Queue) quarantine(path string, j *Job, cause error) {
	dst := path + ".quarantined"
	if err := os.Rename(path, dst); err != nil {
		// Renaming failed (e.g. read-only dir): leave the file, still alert.
		dst = path
	}
	q.quarantined++
	mQuarantined.Inc()
	if jd := journal.Default(); jd.Enabled() {
		fields := []journal.Field{
			journal.F("rule", "fleet.quarantine"),
			journal.F("severity", "warn"),
			journal.F("file", dst),
			journal.F("error", cause.Error()),
		}
		if j != nil {
			if j.ID != "" {
				fields = append(fields, journal.F("job", j.ID))
			}
			fields = corrFields(fields, j.Request, j.Trace)
		}
		jd.Emit("", "alert", fields...)
	}
}

// partialJob leniently recovers the correlation identity (id, request,
// trace) from a file the strict parser rejected, so the quarantine
// alert still names the request it orphaned. Nil when even that fails.
func partialJob(buf []byte) *Job {
	var p struct {
		ID      string `json:"id"`
		Request string `json:"request"`
		Trace   string `json:"trace"`
	}
	if json.Unmarshal(buf, &p) != nil {
		return nil
	}
	j := &Job{ID: p.ID, Request: p.Request, Trace: p.Trace}
	if !validID(j.ID) {
		j.ID = ""
	}
	if !validID(j.Request) {
		j.Request = ""
	}
	if !validID(j.Trace) {
		j.Trace = ""
	}
	return j
}

// fileFor maps a job ID to its canonical queue file path.
func (q *Queue) fileFor(id string) string {
	return filepath.Join(q.dir, id+".json")
}

// persist writes the job file atomically (temp + rename).
func (q *Queue) persist(j *Job) error {
	buf, err := json.Marshal(j)
	if err != nil {
		return fmt.Errorf("fleet: queue marshal %s: %w", j.ID, err)
	}
	tmp, err := os.CreateTemp(q.dir, ".job-*.tmp")
	if err != nil {
		return fmt.Errorf("fleet: queue: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("fleet: queue write %s: %w", j.ID, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fleet: queue close %s: %w", j.ID, err)
	}
	if err := os.Rename(tmp.Name(), q.fileFor(j.ID)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fleet: queue rename %s: %w", j.ID, err)
	}
	return nil
}

// Submit validates, persists, and indexes a new job. A missing ID is
// assigned; a missing submission time is stamped now.
func (q *Queue) Submit(j *Job) error {
	if err := j.normalize(); err != nil {
		return err
	}
	if j.ID == "" {
		j.ID = "j" + randomHex(8)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, exists := q.jobs[j.ID]; exists {
		return fmt.Errorf("fleet: job %s already queued", j.ID)
	}
	if j.SubmittedNS == 0 {
		j.SubmittedNS = q.clock.Now().UnixNano()
	}
	if j.MaxAttempts == DefaultMaxAttempts {
		j.MaxAttempts = q.maxAttempts
	}
	cp := j.clone()
	if err := q.persist(cp); err != nil {
		return err
	}
	q.jobs[cp.ID] = cp
	mJobsSubmitted.Inc()
	if jd := journal.Default(); jd.Enabled() {
		jd.Emit("", "fleet.job", corrFields([]journal.Field{
			journal.F("job", cp.ID),
			journal.F("status", "submitted"),
			journal.F("cases", len(cp.Cases)),
		}, cp.Request, cp.Trace)...)
	}
	return nil
}

// Claim hands the oldest pending job to the worker under a fresh lease,
// first requeueing any expired leases (so a single polling worker also
// drives recovery). Returns (nil, nil) when no work is available.
func (q *Queue) Claim(workerID string) (*Job, error) {
	now := q.clock.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	q.sweepLocked(now)
	var pick *Job
	for _, j := range q.jobs {
		if j.Status != JobPending {
			continue
		}
		if pick == nil || j.SubmittedNS < pick.SubmittedNS ||
			(j.SubmittedNS == pick.SubmittedNS && j.ID < pick.ID) {
			pick = j
		}
	}
	if pick == nil {
		return nil, nil
	}
	pick.Status = JobClaimed
	pick.Worker = workerID
	pick.Attempts++
	pick.LeaseUntilNS = now.Add(q.lease).UnixNano()
	if err := q.persist(pick); err != nil {
		// Roll the in-memory transition back: an unpersisted claim must
		// not outlive a crash-restart of the coordinator.
		pick.Status = JobPending
		pick.Worker = ""
		pick.Attempts--
		pick.LeaseUntilNS = 0
		return nil, err
	}
	mClaims.Inc()
	if jd := journal.Default(); jd.Enabled() {
		jd.Emit("", "fleet.claim", corrFields([]journal.Field{
			journal.F("job", pick.ID),
			journal.F("worker", workerID),
			journal.F("attempt", pick.Attempts),
		}, pick.Request, pick.Trace)...)
	}
	return pick.clone(), nil
}

// Heartbeat extends the lease of a job the worker holds. ErrStaleClaim
// tells the worker it lost the job (requeued or reclaimed) and should
// stop computing it.
func (q *Queue) Heartbeat(jobID, workerID string) error {
	now := q.clock.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[jobID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchJob, jobID)
	}
	if j.Status != JobClaimed || j.Worker != workerID {
		return fmt.Errorf("%w: job %s is %s (worker %q)", ErrStaleClaim, jobID, j.Status, j.Worker)
	}
	j.LeaseUntilNS = now.Add(q.lease).UnixNano()
	return q.persist(j)
}

// Complete ingests a job's results idempotently. The first post wins
// and transitions the job to done; every later post — a requeue-race
// peer, a retried HTTP call, a stale worker — reports applied=false
// without touching the stored results. Posts are accepted from any
// worker (a stale worker's compute is still correct compute); only a
// terminal failed job refuses them.
func (q *Queue) Complete(jobID, workerID, fingerprint string, results []CaseOutcome) (applied bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[jobID]
	if !ok {
		return false, fmt.Errorf("%w: %s", ErrNoSuchJob, jobID)
	}
	switch j.Status {
	case JobDone:
		mResultsDuplicate.Inc()
		return false, nil
	case JobFailed:
		return false, fmt.Errorf("fleet: job %s already failed: %s", jobID, j.Error)
	}
	if len(results) != len(j.Cases) {
		return false, fmt.Errorf("fleet: job %s: %d results for %d cases", jobID, len(results), len(j.Cases))
	}
	want := make(map[string]bool, len(j.Cases))
	for _, c := range j.Cases {
		want[bitString(c)] = true
	}
	for _, r := range results {
		if !want[bitString(r.Inputs)] {
			return false, fmt.Errorf("fleet: job %s: result for case %s not in the job", jobID, bitString(r.Inputs))
		}
	}
	prev := *j
	j.Status = JobDone
	j.Worker = workerID
	j.Fingerprint = fingerprint
	j.Results = results
	j.LeaseUntilNS = 0
	j.Error = ""
	if err := q.persist(j); err != nil {
		*j = prev
		return false, err
	}
	mJobsCompleted.Inc()
	if jd := journal.Default(); jd.Enabled() {
		jd.Emit("", "fleet.job", corrFields([]journal.Field{
			journal.F("job", j.ID),
			journal.F("status", "done"),
			journal.F("worker", workerID),
			journal.F("cases", len(j.Cases)),
		}, j.Request, j.Trace)...)
	}
	return true, nil
}

// Fail records a worker-reported evaluation failure: the job requeues
// until its attempts are exhausted, then turns terminally failed. Stale
// reports (job no longer claimed by this worker) are ignored.
func (q *Queue) Fail(jobID, workerID, reason string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[jobID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchJob, jobID)
	}
	if j.Status != JobClaimed || j.Worker != workerID {
		return nil
	}
	prev := *j
	j.Error = reason
	j.LeaseUntilNS = 0
	j.Worker = ""
	if j.Attempts >= j.MaxAttempts {
		j.Status = JobFailed
		mJobsFailed.Inc()
	} else {
		j.Status = JobPending
	}
	if err := q.persist(j); err != nil {
		*j = prev
		return err
	}
	if jd := journal.Default(); jd.Enabled() {
		jd.Emit("", "fleet.job", corrFields([]journal.Field{
			journal.F("job", j.ID),
			journal.F("status", string(j.Status)),
			journal.F("error", reason),
		}, j.Request, j.Trace)...)
	}
	return nil
}

// Sweep requeues every claimed job whose lease has expired (the worker
// died or froze) and returns the requeued IDs; jobs out of attempts
// turn terminally failed instead. Claim sweeps lazily; a coordinator
// should also Sweep periodically so recovery does not depend on demand.
func (q *Queue) Sweep() []string {
	now := q.clock.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sweepLocked(now)
}

func (q *Queue) sweepLocked(now time.Time) []string {
	var requeued []string
	for _, j := range q.jobs {
		if j.Status != JobClaimed || j.LeaseUntilNS > now.UnixNano() {
			continue
		}
		prev := *j
		lostWorker := j.Worker
		j.Worker = ""
		j.LeaseUntilNS = 0
		if j.Attempts >= j.MaxAttempts {
			j.Status = JobFailed
			j.Error = fmt.Sprintf("lease expired after %d attempts (last worker %s)", j.Attempts, lostWorker)
			mJobsFailed.Inc()
		} else {
			j.Status = JobPending
		}
		if err := q.persist(j); err != nil {
			*j = prev
			continue // retried on the next sweep
		}
		if j.Status == JobPending {
			requeued = append(requeued, j.ID)
			q.requeues++
			mRequeues.Inc()
		}
		if jd := journal.Default(); jd.Enabled() {
			jd.Emit("", "fleet.requeue", corrFields([]journal.Field{
				journal.F("job", j.ID),
				journal.F("worker", lostWorker),
				journal.F("attempt", j.Attempts),
				journal.F("status", string(j.Status)),
				journal.F("reason", "lease_expired"),
			}, j.Request, j.Trace)...)
		}
	}
	sort.Strings(requeued)
	return requeued
}

// Get returns a copy of the job.
func (q *Queue) Get(id string) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return nil, false
	}
	return j.clone(), true
}

// Jobs returns a copy of every job, ordered by submission time then ID.
func (q *Queue) Jobs() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]*Job, 0, len(q.jobs))
	for _, j := range q.jobs {
		out = append(out, j.clone())
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].SubmittedNS != out[b].SubmittedNS {
			return out[a].SubmittedNS < out[b].SubmittedNS
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// Stats counts the queue's jobs by state.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := QueueStats{Quarantined: q.quarantined, Requeues: q.requeues}
	for _, j := range q.jobs {
		switch j.Status {
		case JobPending:
			s.Pending++
		case JobClaimed:
			s.Claimed++
		case JobDone:
			s.Done++
		case JobFailed:
			s.Failed++
		}
	}
	return s
}

// WritableProbe verifies the queue directory still accepts atomic
// writes — the durability the whole fleet leans on. Surfaced by
// swserve's deep health check.
func (q *Queue) WritableProbe() error {
	tmp, err := os.CreateTemp(q.dir, ".probe-*.tmp")
	if err != nil {
		return fmt.Errorf("fleet: queue dir not writable: %w", err)
	}
	name := tmp.Name()
	tmp.Close()
	return os.Remove(name)
}

// randomHex returns n random bytes hex-encoded (crypto/rand backed,
// time-derived fallback).
func randomHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		return fmt.Sprintf("%0*x", n*2, time.Now().UnixNano())
	}
	return hex.EncodeToString(b)
}

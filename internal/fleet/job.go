// Package fleet is the distributed evaluation tier: a coordinator that
// shards truth-table cases and batch eval requests into jobs backed by
// a durable JSON job queue (one atomic-rename file per job, the same
// idiom as internal/engine.DiskStore and mumax3's job daemon), and a
// worker that registers over HTTP, claims jobs under a lease, evaluates
// them through the tiered engine, and reports results.
//
// Lifecycle of one job: submit → claim (lease granted, attempt counted)
// → heartbeat (lease extended) → result. A worker that dies mid-job
// simply stops heartbeating; when its lease expires the job is requeued
// and a peer completes it. Result ingestion is idempotent — results are
// keyed by (fingerprint, inputs), so the duplicate posts produced by
// requeue races, retried HTTP calls, or stale workers are counted and
// dropped, never double-applied. Job files are hand-writable: a minimal
// {"spec":{"gate":"xor"},"cases":[[true,false]]} dropped into the queue
// directory is a valid job; a corrupted file is quarantined (renamed
// aside with a journal alert), never crash-looped on.
//
// The package is deliberately free of the root spinwave package: the
// worker evaluates through an Evaluator interface, so cmd/swworker (and
// tests) decide which backends and engine tiers serve a job.
package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"

	"spinwave/internal/detect"
)

// jobFileVersion guards the on-disk job schema; bump it when the layout
// changes so old queue directories fail loudly instead of misparsing.
const jobFileVersion = 1

// DefaultMaxAttempts bounds how many times a job may be claimed before
// a lease expiry marks it failed instead of requeueing it again.
const DefaultMaxAttempts = 3

// maxJobCases bounds the cases one job file may carry; the coordinator
// shards larger requests into multiple jobs.
const maxJobCases = 1024

// maxJobInputs bounds the input-vector width of one case (the largest
// gate, MAJ5, has 5 data inputs; 8 leaves headroom for derived/cascade
// work without letting a hand-written file allocate unbounded rows).
const maxJobInputs = 8

// JobStatus is the lifecycle state of a queued job.
type JobStatus string

// Job lifecycle states, stored verbatim in the job file.
const (
	// JobPending means the job is waiting to be claimed.
	JobPending JobStatus = "pending"
	// JobClaimed means a worker holds the job under an active lease.
	JobClaimed JobStatus = "claimed"
	// JobDone means results were ingested; terminal.
	JobDone JobStatus = "done"
	// JobFailed means the job exhausted its attempts; terminal.
	JobFailed JobStatus = "failed"
)

// JobSpec names the backend configuration a job's cases are evaluated
// against. The strings use the same vocabulary as the swserve /v1 API
// (gate: xor/maj3/...; backend: behavioral/micromag; mode: the engine
// serving mode direct/auto/surrogate); validation happens where they
// are consumed — the coordinator checks the gate, the worker's backend
// builder checks the rest.
type JobSpec struct {
	// Gate is the gate kind the cases drive (xor, maj3, maj3single, maj5).
	Gate string `json:"gate"`
	// Backend picks the solver (behavioral or micromag; empty = behavioral).
	Backend string `json:"backend,omitempty"`
	// Spec picks the device geometry preset (paper, paper-micromag, reduced).
	Spec string `json:"spec,omitempty"`
	// Material picks the material preset (fecob, yig, permalloy).
	Material string `json:"material,omitempty"`
	// Mode is the engine serving mode (direct, auto, surrogate; empty =
	// direct) applied per worker node — each node's cache, disk store and
	// admitted surrogates answer before its solver does.
	Mode string `json:"mode,omitempty"`
	// Table marks the parent request as a full truth table, so the
	// coordinator can reassemble a decoded table from the merged results.
	Table bool `json:"table,omitempty"`
	// Inverted selects XNOR decoding for XOR table requests.
	Inverted bool `json:"inverted,omitempty"`
	// DtScale multiplies the micromagnetic stability time step (default
	// 1). It changes the trajectory (and the fingerprint); fleet smokes
	// use values < 1 to stretch a transient's wall-clock time.
	DtScale float64 `json:"dt_scale,omitempty"`
	// Transient marks the job as one resumable segment of a long
	// checkpointed transient (DESIGN.md §15). Segment jobs carry exactly
	// one case; intermediate segments stop at their step boundary, upload
	// a checkpoint to the run's artifact store, and report a partial
	// outcome (Source "checkpoint", no Outputs) that makes the
	// coordinator chain the next segment as a fresh job — so a SIGKILLed
	// worker's segment is resumed (not restarted) by any peer.
	Transient *TransientSpec `json:"transient,omitempty"`
}

// TransientSpec describes one segment of a checkpointed transient.
type TransientSpec struct {
	// Run is the durable run ID keying the transient's checkpoints in
	// the coordinator's artifact store.
	Run string `json:"run"`
	// Segment is this job's zero-based segment index.
	Segment int `json:"segment"`
	// Segments is the total segment count (≥ 1); the final segment
	// finishes the transient and reports the real readouts.
	Segments int `json:"segments"`
	// EverySteps is the checkpoint cadence in solver steps (0 = the
	// checkpoint package default).
	EverySteps int `json:"every_steps,omitempty"`
}

// SourceCheckpoint is the CaseOutcome.Source an intermediate transient
// segment reports: the case has no readouts yet, only a durable
// checkpoint the next segment resumes from.
const SourceCheckpoint = "checkpoint"

// CaseOutcome is one evaluated case inside a job result: the inputs it
// answers, the readouts, and the tier that produced them on the worker.
type CaseOutcome struct {
	// Inputs is the case's input vector.
	Inputs []bool `json:"inputs"`
	// Outputs is the readout at every output probe, keyed by name.
	Outputs map[string]detect.Readout `json:"outputs"`
	// Source is the worker-side result-store tier that answered
	// (cache, disk, surrogate, micromag, behavioral).
	Source string `json:"source,omitempty"`
}

// Job is one unit of fleet work: a shard of input cases for one backend
// configuration, persisted as a single JSON file in the queue directory.
// The file is the durable record — every state transition rewrites it
// atomically, so a coordinator restart recovers the full queue state
// (including results of completed jobs) by rescanning the directory.
type Job struct {
	// Version is the job-file schema version (jobFileVersion).
	Version int `json:"version"`
	// ID names the job; also the file name stem. Assigned from the file
	// name when a hand-written file omits it.
	ID string `json:"id,omitempty"`
	// Request groups the job with its sibling shards under the parent
	// request (empty for hand-submitted standalone jobs).
	Request string `json:"request,omitempty"`
	// Trace is the fleet trace ID the coordinator minted for the parent
	// request: the correlation key stamped on every journal event, HTTP
	// call, and checkpoint manifest this job touches, across every node
	// (DESIGN.md §16). Empty for hand-submitted jobs with no request.
	Trace string `json:"trace,omitempty"`
	// Spec is the backend configuration the cases run against.
	Spec JobSpec `json:"spec"`
	// Cases are the input vectors this shard evaluates.
	Cases [][]bool `json:"cases"`
	// Status is the lifecycle state (empty parses as pending).
	Status JobStatus `json:"status,omitempty"`
	// Worker is the ID of the worker holding (or last holding) the job.
	Worker string `json:"worker,omitempty"`
	// Attempts counts claims; MaxAttempts bounds them (0 parses as
	// DefaultMaxAttempts).
	Attempts    int `json:"attempts,omitempty"`
	MaxAttempts int `json:"max_attempts,omitempty"`
	// LeaseUntilNS is the claim lease expiry, Unix nanoseconds.
	LeaseUntilNS int64 `json:"lease_until_unix_ns,omitempty"`
	// SubmittedNS orders claims FIFO (Unix nanoseconds; stamped at
	// submission when absent).
	SubmittedNS int64 `json:"submitted_unix_ns,omitempty"`
	// Fingerprint is the canonical backend fingerprint reported with the
	// results (empty until done, or for unfingerprintable backends).
	Fingerprint string `json:"fingerprint,omitempty"`
	// Results holds the ingested case outcomes of a done job.
	Results []CaseOutcome `json:"results,omitempty"`
	// Error records why a failed job failed.
	Error string `json:"error,omitempty"`
}

// ParseJobFile decodes and validates one job file. It is strict — an
// unknown field, trailing garbage, an out-of-vocabulary status, a
// malformed ID or an inconsistent case list is an error, never a
// silently defaulted job — because queue files are hand-writable and a
// typo must surface at submission, not as a worker crash. Omitted
// optional fields take their defaults (version 1, status pending,
// DefaultMaxAttempts). This parser is the FuzzJobFile target.
func ParseJobFile(data []byte) (*Job, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var j Job
	if err := dec.Decode(&j); err != nil {
		return nil, fmt.Errorf("fleet: job file: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("fleet: job file: trailing data after the job object")
	}
	if err := j.normalize(); err != nil {
		return nil, err
	}
	return &j, nil
}

// normalize applies defaults and validates the job's invariants.
func (j *Job) normalize() error {
	switch j.Version {
	case 0:
		j.Version = jobFileVersion
	case jobFileVersion:
	default:
		return fmt.Errorf("fleet: job file version %d, want %d", j.Version, jobFileVersion)
	}
	if j.ID != "" && !validID(j.ID) {
		return fmt.Errorf("fleet: job id %q: want 1-64 chars of [a-zA-Z0-9._-], not starting with '.'", j.ID)
	}
	if j.Request != "" && !validID(j.Request) {
		return fmt.Errorf("fleet: request id %q: want 1-64 chars of [a-zA-Z0-9._-], not starting with '.'", j.Request)
	}
	if j.Trace != "" && !validID(j.Trace) {
		return fmt.Errorf("fleet: trace id %q: want 1-64 chars of [a-zA-Z0-9._-], not starting with '.'", j.Trace)
	}
	if j.Spec.Gate == "" {
		return fmt.Errorf("fleet: job needs spec.gate")
	}
	if len(j.Cases) == 0 {
		return fmt.Errorf("fleet: job needs at least one case")
	}
	if len(j.Cases) > maxJobCases {
		return fmt.Errorf("fleet: job carries %d cases, limit %d", len(j.Cases), maxJobCases)
	}
	width := len(j.Cases[0])
	if width == 0 || width > maxJobInputs {
		return fmt.Errorf("fleet: case width %d out of range [1, %d]", width, maxJobInputs)
	}
	for i, c := range j.Cases {
		if len(c) != width {
			return fmt.Errorf("fleet: case %d has %d inputs, case 0 has %d", i, len(c), width)
		}
	}
	if j.Spec.DtScale < 0 {
		return fmt.Errorf("fleet: negative dt_scale %g", j.Spec.DtScale)
	}
	if ts := j.Spec.Transient; ts != nil {
		if !validID(ts.Run) {
			return fmt.Errorf("fleet: transient run id %q: want 1-64 chars of [a-zA-Z0-9._-], not starting with '.'", ts.Run)
		}
		if ts.Segments < 1 {
			return fmt.Errorf("fleet: transient needs segments >= 1, got %d", ts.Segments)
		}
		if ts.Segment < 0 || ts.Segment >= ts.Segments {
			return fmt.Errorf("fleet: transient segment %d out of range [0, %d)", ts.Segment, ts.Segments)
		}
		if ts.EverySteps < 0 {
			return fmt.Errorf("fleet: negative transient every_steps %d", ts.EverySteps)
		}
		if len(j.Cases) != 1 {
			return fmt.Errorf("fleet: a transient segment carries exactly one case, got %d", len(j.Cases))
		}
	}
	switch j.Status {
	case "":
		j.Status = JobPending
	case JobPending, JobClaimed, JobDone, JobFailed:
	default:
		return fmt.Errorf("fleet: unknown job status %q", j.Status)
	}
	if j.Attempts < 0 {
		return fmt.Errorf("fleet: negative attempts %d", j.Attempts)
	}
	switch {
	case j.MaxAttempts == 0:
		j.MaxAttempts = DefaultMaxAttempts
	case j.MaxAttempts < 0:
		return fmt.Errorf("fleet: negative max_attempts %d", j.MaxAttempts)
	}
	for i, r := range j.Results {
		if len(r.Inputs) != width {
			return fmt.Errorf("fleet: result %d has %d inputs, cases have %d", i, len(r.Inputs), width)
		}
	}
	return nil
}

// clone returns an independent copy of the job. Cases, Results and
// their readout maps are treated as immutable once stored, so the
// copy shares them; the mutable scalar state is what callers must not
// observe mid-transition.
func (j *Job) clone() *Job {
	c := *j
	return &c
}

// validID reports whether s is safe as a job/request/worker identifier
// and as a file-name stem: 1-64 characters of [a-zA-Z0-9._-], not
// starting with a dot (dot-files are skipped by the queue scan).
func validID(s string) bool {
	if len(s) == 0 || len(s) > 64 || s[0] == '.' {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// bitString renders an input vector as the "10"-style label used in
// result keys and journal events (same convention as the engine).
func bitString(inputs []bool) string {
	bits := make([]byte, len(inputs))
	for i, v := range inputs {
		if v {
			bits[i] = '1'
		} else {
			bits[i] = '0'
		}
	}
	return string(bits)
}

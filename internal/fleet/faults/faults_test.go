package faults

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestClockAdvances(t *testing.T) {
	c := NewClock(time.Unix(100, 0))
	if got := c.Now(); !got.Equal(time.Unix(100, 0)) {
		t.Fatalf("Now = %v", got)
	}
	// Frozen: two reads without Advance are identical.
	if !c.Now().Equal(c.Now()) {
		t.Fatal("clock moved on its own")
	}
	c.Advance(5 * time.Second)
	if got := c.Now(); !got.Equal(time.Unix(105, 0)) {
		t.Fatalf("after Advance: %v", got)
	}
}

// newFaultServer counts requests per path and echoes "ok".
func newFaultServer(t *testing.T, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body) //nolint:errcheck
		io.WriteString(w, "ok")     //nolint:errcheck
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestTransportDrop(t *testing.T) {
	var hits atomic.Int64
	ts := newFaultServer(t, &hits)
	tr := &Transport{}
	tr.Add(&Rule{PathContains: "/results", Count: 1, Drop: true})
	client := &http.Client{Transport: tr}

	// First matching call: delivered to the server, response dropped.
	if _, err := client.Post(ts.URL+"/results", "", strings.NewReader("x")); err == nil {
		t.Fatal("dropped call returned no error")
	}
	if hits.Load() != 1 {
		t.Fatalf("server hits = %d, want 1 (Drop loses the response, not the request)", hits.Load())
	}
	// Count exhausted: the retry goes through.
	resp, err := client.Post(ts.URL+"/results", "", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hits.Load() != 2 {
		t.Fatalf("server hits = %d, want 2", hits.Load())
	}
}

func TestTransportDropBefore(t *testing.T) {
	var hits atomic.Int64
	ts := newFaultServer(t, &hits)
	tr := &Transport{}
	rule := tr.Add(&Rule{Count: 1, DropBefore: true})
	client := &http.Client{Transport: tr}
	if _, err := client.Get(ts.URL + "/claim"); err == nil {
		t.Fatal("drop-before call returned no error")
	}
	if hits.Load() != 0 {
		t.Fatalf("server hits = %d, want 0 (DropBefore never delivers)", hits.Load())
	}
	if rule.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", rule.Fired())
	}
}

func TestTransportDuplicate(t *testing.T) {
	var hits atomic.Int64
	ts := newFaultServer(t, &hits)
	tr := &Transport{}
	tr.Add(&Rule{PathContains: "/results", Count: 1, Duplicate: true})
	client := &http.Client{Transport: tr}
	resp, err := client.Post(ts.URL+"/results", "application/json", strings.NewReader(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("duplicate final response = %q", body)
	}
	if hits.Load() != 2 {
		t.Fatalf("server hits = %d, want 2 (request sent twice)", hits.Load())
	}
}

func TestTransportSkipAndMatchOrder(t *testing.T) {
	var hits atomic.Int64
	ts := newFaultServer(t, &hits)
	tr := &Transport{}
	rule := tr.Add(&Rule{Method: http.MethodPost, Skip: 2, Count: 1, DropBefore: true})
	client := &http.Client{Transport: tr}

	for i := 0; i < 2; i++ {
		resp, err := client.Post(ts.URL, "", strings.NewReader("x"))
		if err != nil {
			t.Fatalf("skipped call %d failed: %v", i, err)
		}
		resp.Body.Close()
	}
	if _, err := client.Post(ts.URL, "", strings.NewReader("x")); err == nil {
		t.Fatal("third call should have dropped")
	}
	// GETs never match the POST rule.
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rule.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", rule.Fired())
	}
}

func TestTransportDelay(t *testing.T) {
	var hits atomic.Int64
	ts := newFaultServer(t, &hits)
	tr := &Transport{}
	tr.Add(&Rule{Count: 1, Delay: 50 * time.Millisecond})
	client := &http.Client{Transport: tr}
	start := time.Now()
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("delayed call returned in %v", elapsed)
	}
}

func TestCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.json")
	if err := os.WriteFile(path, []byte(`{"spec":{"gate":"xor"},"cases":[[true,false]]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Corrupt(path); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), "garbage") {
		t.Fatalf("file not corrupted: %q", buf)
	}
}

// Package faults is the deterministic failure-injection harness for the
// fleet: a fake clock that freezes heartbeats and expires leases on
// demand, an http.RoundTripper that drops, delays, or duplicates calls
// by counted rules, and a file corruptor for queue-poisoning tests.
// Everything is deterministic — rules fire on exact match counts, the
// clock only moves when advanced — so the fault tests prove invariants
// ("no result lost, none double-applied") rather than race the wall
// clock.
package faults

import (
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"
)

// Clock is a manually advanced clock implementing fleet.Clock. The zero
// value is not ready; use NewClock.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// NewClock returns a clock frozen at start.
func NewClock(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now returns the frozen time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new time. This
// is how a test expires a lease: freeze the worker's heartbeats (the
// clock never moves on its own) and advance past the lease.
func (c *Clock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}

// Rule matches HTTP calls and injects one fault. A rule fires on calls
// whose method and path match; Skip calls pass through first, then
// Count calls take the fault (Count 0 means every matching call).
type Rule struct {
	// Method matches the request method exactly; empty matches all.
	Method string
	// PathContains matches requests whose URL path contains it; empty
	// matches all.
	PathContains string
	// Skip lets this many matching calls through before the fault fires.
	Skip int
	// Count bounds how many calls take the fault; 0 means unlimited.
	Count int

	// Drop fails the call with a transport error (the response never
	// reaches the client; the server side still ran if Before is false).
	Drop bool
	// DropBefore drops the call before it reaches the server — the
	// request is never delivered (models a connect failure rather than a
	// lost response).
	DropBefore bool
	// Delay stalls the call before delivery.
	Delay time.Duration
	// Duplicate sends the request twice, returning the second response —
	// the retry-storm fault that idempotent ingestion must absorb.
	Duplicate bool

	matched int // calls that matched (including skipped)
	fired   int // calls that took the fault
}

// droppedError is the transport error a Drop rule produces.
type droppedError struct{ path string }

func (e droppedError) Error() string { return "faults: dropped call to " + e.path }

// Transport is an http.RoundTripper that applies the first matching
// rule to each call, then forwards over the underlying transport. Safe
// for concurrent use.
type Transport struct {
	// Under is the real transport; nil means http.DefaultTransport.
	Under http.RoundTripper

	mu    sync.Mutex
	rules []*Rule
}

// Add installs a rule and returns it (the pointer is how tests read
// Fired afterwards).
func (t *Transport) Add(r *Rule) *Rule {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rules = append(t.rules, r)
	return r
}

// Fired reports how many calls took this rule's fault.
func (r *Rule) Fired() int { return r.fired }

// match reports whether the rule applies to this call and, if so,
// whether the fault fires (vs. the call passing through).
func (t *Transport) match(req *http.Request) *Rule {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range t.rules {
		if r.Method != "" && r.Method != req.Method {
			continue
		}
		if r.PathContains != "" && !strings.Contains(req.URL.Path, r.PathContains) {
			continue
		}
		r.matched++
		if r.matched <= r.Skip {
			return nil
		}
		if r.Count > 0 && r.fired >= r.Count {
			return nil
		}
		r.fired++
		return r
	}
	return nil
}

func (t *Transport) under() http.RoundTripper {
	if t.Under != nil {
		return t.Under
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	r := t.match(req)
	if r == nil {
		return t.under().RoundTrip(req)
	}
	if r.DropBefore {
		return nil, droppedError{req.URL.Path}
	}
	if r.Delay > 0 {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(r.Delay):
		}
	}
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
		req.Body = io.NopCloser(strings.NewReader(string(body)))
	}
	resp, err := t.under().RoundTrip(req)
	if r.Drop {
		// The server processed the call; the client never hears back.
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return nil, droppedError{req.URL.Path}
	}
	if err != nil || !r.Duplicate {
		return resp, err
	}
	// Duplicate: replay the same request and return the second response.
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	again := req.Clone(req.Context())
	if body != nil {
		again.Body = io.NopCloser(strings.NewReader(string(body)))
	}
	return t.under().RoundTrip(again)
}

// Corrupt overwrites the tail of a file with garbage, producing the
// torn/poisoned queue file the quarantine path must absorb. The file
// stays parseable as "something", just not as a valid job.
func Corrupt(path string) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	garbage := []byte("\x00{{garbage")
	off := info.Size() / 2
	if _, err := f.WriteAt(garbage, off); err != nil {
		return err
	}
	return f.Truncate(off + int64(len(garbage)))
}

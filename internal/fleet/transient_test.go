package fleet

import (
	"testing"

	"spinwave/internal/detect"
)

// partialOutcome is what an intermediate transient segment posts: the
// case with no readouts, only a durable checkpoint behind it.
func partialOutcome(inputs []bool) []CaseOutcome {
	return []CaseOutcome{{Inputs: inputs, Source: SourceCheckpoint}}
}

func finalOutcome(inputs []bool) []CaseOutcome {
	return []CaseOutcome{{
		Inputs:  inputs,
		Outputs: map[string]detect.Readout{"O1": {Probe: "O1", Amplitude: 0.5}},
		Source:  "micromag",
	}}
}

func TestTransientSegmentsChain(t *testing.T) {
	c := newTestCoordinator(t)
	inputs := []bool{true, false}
	st, err := c.SubmitTransient(JobSpec{Gate: "xor", Backend: "micromag", DtScale: 0.5}, inputs, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if st.Run == "" {
		t.Fatal("no run ID minted")
	}
	if st.CasesTotal != 1 || len(st.Jobs) != 1 {
		t.Fatalf("fresh transient = %+v", st)
	}

	// Segments 0 and 1 post checkpoint partials; each chains the next.
	for seg := 0; seg < 2; seg++ {
		j, err := c.Claim("w1")
		if err != nil || j == nil {
			t.Fatalf("claim segment %d: %v, %v", seg, j, err)
		}
		ts := j.Spec.Transient
		if ts == nil || ts.Segment != seg || ts.Segments != 3 || ts.Run != st.Run || ts.EverySteps != 100 {
			t.Fatalf("segment %d spec = %+v", seg, ts)
		}
		if j.Spec.DtScale != 0.5 {
			t.Fatalf("segment %d lost dt_scale: %+v", seg, j.Spec)
		}
		if _, err := c.IngestResult("w1", j.ID, "fp", partialOutcome(inputs), ""); err != nil {
			t.Fatal(err)
		}
		mid, _ := c.Status(st.ID)
		if mid.CasesDone != 0 {
			t.Fatalf("partial after segment %d counted as done: %+v", seg, mid)
		}
	}

	// The final segment carries the readouts and completes the request.
	j, err := c.Claim("w2")
	if err != nil || j == nil {
		t.Fatalf("claim final segment: %v, %v", j, err)
	}
	if ts := j.Spec.Transient; ts.Segment != 2 {
		t.Fatalf("final segment = %+v", ts)
	}
	if _, err := c.IngestResult("w2", j.ID, "fp", finalOutcome(inputs), ""); err != nil {
		t.Fatal(err)
	}
	got, _ := c.Status(st.ID)
	if got.State != RequestComplete || got.CasesDone != 1 || len(got.Results) != 1 {
		t.Fatalf("after final segment: %+v", got)
	}
	if got.Results[0].Outputs["O1"].Amplitude != 0.5 {
		t.Fatalf("merged result = %+v", got.Results[0])
	}
	if len(got.Jobs) != 3 {
		t.Fatalf("request tracked %d jobs, want 3", len(got.Jobs))
	}
	// No further job is chained past the final segment.
	if extra, _ := c.Claim("w2"); extra != nil {
		t.Fatalf("chained past the final segment: %+v", extra)
	}
}

func TestTransientDuplicateResultChainsOnce(t *testing.T) {
	c := newTestCoordinator(t)
	inputs := []bool{true, true}
	st, err := c.SubmitTransient(JobSpec{Gate: "xor"}, inputs, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	j, err := c.Claim("w1")
	if err != nil || j == nil {
		t.Fatal("no segment-0 claim")
	}
	if _, err := c.IngestResult("w1", j.ID, "fp", partialOutcome(inputs), ""); err != nil {
		t.Fatal(err)
	}
	// A retried post is idempotent: no second chain of segment 1.
	if applied, err := c.IngestResult("w1", j.ID, "fp", partialOutcome(inputs), ""); err != nil || applied {
		t.Fatalf("duplicate ingest = %v, %v", applied, err)
	}
	got, _ := c.Status(st.ID)
	if len(got.Jobs) != 2 {
		t.Fatalf("tracked %d jobs after duplicate ingest, want 2", len(got.Jobs))
	}
}

// TestTransientRebuildRechains pins crash recovery: a coordinator that
// dies between an intermediate segment's completion and the successor's
// submission must re-chain the missing segment at rebuild.
func TestTransientRebuildRechains(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenQueue(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(q)
	inputs := []bool{false, true}
	st, err := c.SubmitTransient(JobSpec{Gate: "xor"}, inputs, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	j, err := c.Claim("w1")
	if err != nil || j == nil {
		t.Fatal("no segment-0 claim")
	}
	// Complete segment 0 on the queue alone — simulating a crash before
	// the coordinator's chain step ran — then rebuild.
	if _, err := q.Complete(j.ID, "w1", "fp", partialOutcome(inputs)); err != nil {
		t.Fatal(err)
	}
	q2, err := OpenQueue(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewCoordinator(q2)
	got, err := c2.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.CasesTotal != 1 {
		t.Fatalf("rebuilt transient inflated cases: %+v", got)
	}
	if got.Run != st.Run {
		t.Fatalf("rebuilt run ID = %q, want %q", got.Run, st.Run)
	}
	next, err := c2.Claim("w2")
	if err != nil || next == nil {
		t.Fatalf("rebuild did not re-chain segment 1: %v, %v", next, err)
	}
	if ts := next.Spec.Transient; ts == nil || ts.Segment != 1 {
		t.Fatalf("re-chained job = %+v", next.Spec)
	}
	if _, err := c2.IngestResult("w2", next.ID, "fp", finalOutcome(inputs), ""); err != nil {
		t.Fatal(err)
	}
	got, _ = c2.Status(st.ID)
	if got.State != RequestComplete {
		t.Fatalf("after re-chained completion: %+v", got)
	}
}

func TestTransientJobValidation(t *testing.T) {
	bad := map[string]string{
		"missing run":    `{"spec":{"gate":"xor","transient":{"run":"","segment":0,"segments":2}},"cases":[[true,false]]}`,
		"segment range":  `{"spec":{"gate":"xor","transient":{"run":"r1","segment":2,"segments":2}},"cases":[[true,false]]}`,
		"zero segments":  `{"spec":{"gate":"xor","transient":{"run":"r1","segment":0,"segments":0}},"cases":[[true,false]]}`,
		"negative every": `{"spec":{"gate":"xor","transient":{"run":"r1","segment":0,"segments":2,"every_steps":-5}},"cases":[[true,false]]}`,
		"two cases":      `{"spec":{"gate":"xor","transient":{"run":"r1","segment":0,"segments":2}},"cases":[[true,false],[false,true]]}`,
		"bad dt_scale":   `{"spec":{"gate":"xor","dt_scale":-1},"cases":[[true,false]]}`,
	}
	for name, doc := range bad {
		if _, err := ParseJobFile([]byte(doc)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	good := `{"spec":{"gate":"xor","dt_scale":0.2,"transient":{"run":"r1","segment":1,"segments":3,"every_steps":100}},"cases":[[true,false]]}`
	j, err := ParseJobFile([]byte(good))
	if err != nil {
		t.Fatalf("valid transient job rejected: %v", err)
	}
	if j.Spec.Transient.Segments != 3 || j.Spec.DtScale != 0.2 {
		t.Fatalf("parsed = %+v", j.Spec)
	}
}

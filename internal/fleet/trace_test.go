package fleet

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spinwave/internal/fleet/faults"
	"spinwave/internal/journal"
	"spinwave/internal/obs"
)

// promDump renders the default registry's Prometheus exposition.
func promDump(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.Default().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

// collectEvents runs fn with a ring sink attached to the default
// journal and returns the events it emitted.
func collectEvents(t *testing.T, fn func()) []journal.Event {
	t.Helper()
	ring := journal.NewRingSink(64)
	detach := journal.Default().Attach(ring)
	defer detach()
	fn()
	return ring.Events()
}

// eventsNamed filters the captured events by name.
func eventsNamed(events []journal.Event, name string) []journal.Event {
	var out []journal.Event
	for _, e := range events {
		if e.Name == name {
			out = append(out, e)
		}
	}
	return out
}

// TestCoordinatorMintsTrace pins the correlation contract: every job of
// a request carries the request's trace, the trace survives a
// coordinator rebuild from the job files, and the status surfaces it.
func TestCoordinatorMintsTrace(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenQueue(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(q)
	st, err := c.Submit(JobSpec{Gate: "xor"}, [][]bool{{false, false}, {true, false}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Trace == "" {
		t.Fatal("Submit minted no trace")
	}
	for _, jb := range st.Jobs {
		j, ok := q.Get(jb.ID)
		if !ok || j.Trace != st.Trace {
			t.Fatalf("job %s trace = %q, want %q", jb.ID, j.Trace, st.Trace)
		}
	}

	// A rebuilt coordinator recovers the trace from the durable files.
	q2, err := OpenQueue(dir)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := NewCoordinator(q2).Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Trace != st.Trace {
		t.Fatalf("rebuilt trace = %q, want %q", st2.Trace, st.Trace)
	}
}

// TestChainedSegmentKeepsTrace: a transient's chained segment jobs stay
// on the trace minted at submission — the thread a post-mortem follows
// across a requeue and resume.
func TestChainedSegmentKeepsTrace(t *testing.T) {
	q, err := OpenQueue(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(q)
	st, err := c.SubmitTransient(JobSpec{Gate: "xor"}, []bool{true, false}, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	j, err := c.Claim("w1")
	if err != nil || j == nil {
		t.Fatalf("Claim = %v, %v", j, err)
	}
	if j.Trace != st.Trace {
		t.Fatalf("claimed segment trace = %q, want %q", j.Trace, st.Trace)
	}
	// Intermediate segment reports a checkpoint partial; the chained
	// successor must carry the same trace.
	partial := []CaseOutcome{{Inputs: j.Cases[0], Source: SourceCheckpoint}}
	if _, err := c.IngestResult("w1", j.ID, "fp", partial, ""); err != nil {
		t.Fatal(err)
	}
	next, err := c.Claim("w1")
	if err != nil || next == nil {
		t.Fatalf("chained Claim = %v, %v", next, err)
	}
	if next.Spec.Transient.Segment != 1 || next.Trace != st.Trace {
		t.Fatalf("chained segment = seg %d trace %q, want seg 1 trace %q",
			next.Spec.Transient.Segment, next.Trace, st.Trace)
	}
}

// TestFleetEventsCarryRequestAndTrace is the regression test for the
// observability fix: fleet.requeue (and the whole fleet event family)
// must name the parent request and trace, or the post-mortem grep that
// follows a job across nodes dead-ends exactly at the failure it is
// investigating.
func TestFleetEventsCarryRequestAndTrace(t *testing.T) {
	clock := faults.NewClock(time.Unix(1000, 0))
	q, err := OpenQueue(t.TempDir(), WithClock(clock), WithLease(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(q)

	var trace string
	events := collectEvents(t, func() {
		st, err := c.Submit(JobSpec{Gate: "xor"}, [][]bool{{true, false}}, 1)
		if err != nil {
			t.Fatal(err)
		}
		trace = st.Trace
		if _, err := c.Claim("w1"); err != nil {
			t.Fatal(err)
		}
		clock.Advance(6 * time.Second) // expire the lease → requeue
		q.Sweep()
		j, err := c.Claim("w2")
		if err != nil || j == nil {
			t.Fatalf("peer claim = %v, %v", j, err)
		}
		if _, err := c.IngestResult("w2", j.ID, "fp", testOutcomes(j.Cases), ""); err != nil {
			t.Fatal(err)
		}
	})

	for _, name := range []string{"fleet.job", "fleet.claim", "fleet.requeue", "fleet.request"} {
		matched := eventsNamed(events, name)
		if len(matched) == 0 {
			t.Fatalf("no %s events captured", name)
		}
		for _, e := range matched {
			if e.Fields["request"] == nil || e.Fields["request"] == "" {
				t.Errorf("%s event missing request: %v", name, e.Fields)
			}
			if e.Fields["trace"] != trace {
				t.Errorf("%s event trace = %v, want %q", name, e.Fields["trace"], trace)
			}
		}
	}
}

// TestQuarantineAlertNamesRequest: a quarantined file that parsed far
// enough to name its request keeps the alert joinable to it.
func TestQuarantineAlertNamesRequest(t *testing.T) {
	dir := t.TempDir()
	// Strictly invalid (unknown field) but with recoverable identity.
	bad := `{"id":"j1","request":"q123","trace":"t456","bogus":1,"spec":{"gate":"xor"},"cases":[[true]]}`
	if err := os.WriteFile(filepath.Join(dir, "j1.json"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	events := collectEvents(t, func() {
		if _, err := OpenQueue(dir); err != nil {
			t.Fatal(err)
		}
	})
	var found bool
	for _, e := range eventsNamed(events, "alert") {
		if e.Fields["rule"] != "fleet.quarantine" {
			continue
		}
		found = true
		if e.Fields["request"] != "q123" || e.Fields["trace"] != "t456" || e.Fields["job"] != "j1" {
			t.Fatalf("quarantine alert fields = %v", e.Fields)
		}
	}
	if !found {
		t.Fatal("no fleet.quarantine alert captured")
	}
}

// TestNodeHealthFederation: a heartbeat's engine stats surface as
// spinwave_fleet_node_engine gauges and in the snapshot's node list.
func TestNodeHealthFederation(t *testing.T) {
	q, err := OpenQueue(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(q)
	id, err := c.Register("w1", "host1", 42)
	if err != nil || id != "w1" {
		t.Fatalf("Register = %q, %v", id, err)
	}
	type engineStats struct {
		Evals  int64 `json:"evals"`
		Misses int64 `json:"misses"`
	}
	c.touch("w1", map[string]any{"engine": engineStats{Evals: 7, Misses: 2}})

	snap := c.Snapshot()
	if len(snap.Nodes) != 1 || snap.Nodes[0].ID != "w1" {
		t.Fatalf("snapshot nodes = %+v", snap.Nodes)
	}
	prom := promDump(t)
	for _, want := range []string{
		`spinwave_fleet_node_engine{node="w1",stat="evals"} 7`,
		`spinwave_fleet_node_engine{node="w1",stat="misses"} 2`,
	} {
		if !contains(prom, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

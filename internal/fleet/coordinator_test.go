package fleet

import (
	"strings"
	"testing"
	"time"

	"spinwave/internal/detect"
	"spinwave/internal/fleet/faults"
	"spinwave/internal/obs"
)

func newTestCoordinator(t *testing.T, opts ...QueueOption) *Coordinator {
	t.Helper()
	q, err := OpenQueue(t.TempDir(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return NewCoordinator(q)
}

func xorCases() [][]bool {
	return [][]bool{{false, false}, {true, false}, {false, true}, {true, true}}
}

func TestCoordinatorShardsSubmission(t *testing.T) {
	c := newTestCoordinator(t)
	st, err := c.Submit(JobSpec{Gate: "xor"}, xorCases(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Jobs) != 4 {
		t.Fatalf("shard=1 produced %d jobs, want 4", len(st.Jobs))
	}
	if st.State != RequestPending || st.CasesTotal != 4 || st.CasesDone != 0 {
		t.Fatalf("fresh request = %+v", st)
	}

	// Uneven shard: 4 cases at 3 per job → 2 jobs.
	st2, err := c.Submit(JobSpec{Gate: "xor"}, xorCases(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Jobs) != 2 || st2.Jobs[0].Cases != 3 || st2.Jobs[1].Cases != 1 {
		t.Fatalf("shard=3 jobs = %+v", st2.Jobs)
	}
}

// drain claims and completes every pending job as the given worker.
func drain(t *testing.T, c *Coordinator, workerID, fp string) {
	t.Helper()
	for {
		j, err := c.Claim(workerID)
		if err != nil {
			t.Fatal(err)
		}
		if j == nil {
			return
		}
		if _, err := c.IngestResult(workerID, j.ID, fp, testOutcomes(j.Cases), ""); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCoordinatorMergesShardedResults(t *testing.T) {
	c := newTestCoordinator(t)
	if _, err := c.Register("w1", "host", 1); err != nil {
		t.Fatal(err)
	}
	st, err := c.Submit(JobSpec{Gate: "xor"}, xorCases(), 1)
	if err != nil {
		t.Fatal(err)
	}
	drain(t, c, "w1", "fp")
	got, err := c.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != RequestComplete || got.CasesDone != 4 {
		t.Fatalf("after drain: %s, %d/4 done", got.State, got.CasesDone)
	}
	// Results come back in submission (enumeration) order regardless of
	// completion order.
	if len(got.Results) != 4 {
		t.Fatalf("Results = %d, want 4", len(got.Results))
	}
	for i, want := range xorCases() {
		if bitString(got.Results[i].Inputs) != bitString(want) {
			t.Fatalf("result %d is for %s, want %s", i, bitString(got.Results[i].Inputs), bitString(want))
		}
	}
	snap := c.Snapshot()
	if snap.RequestsComplete != 1 || snap.DuplicateResults != 0 {
		t.Fatalf("Snapshot = %+v", snap)
	}
}

func TestCoordinatorDuplicateIngestIsIdempotent(t *testing.T) {
	c := newTestCoordinator(t)
	st, err := c.Submit(JobSpec{Gate: "xor"}, xorCases(), 4)
	if err != nil {
		t.Fatal(err)
	}
	j, err := c.Claim("w1")
	if err != nil || j == nil {
		t.Fatalf("Claim = %v, %v", j, err)
	}
	res := testOutcomes(j.Cases)
	applied, err := c.IngestResult("w1", j.ID, "fp", res, "")
	if err != nil || !applied {
		t.Fatalf("first ingest = %v, %v", applied, err)
	}
	// The retried post is dropped, the request stays complete with
	// exactly one result per case.
	applied, err = c.IngestResult("w1", j.ID, "fp", res, "")
	if err != nil || applied {
		t.Fatalf("duplicate ingest = %v, %v; want false, nil", applied, err)
	}
	got, _ := c.Status(st.ID)
	if got.State != RequestComplete || len(got.Results) != 4 {
		t.Fatalf("after duplicate: %s, %d results", got.State, len(got.Results))
	}
	if c.Snapshot().DuplicateResults == 0 {
		t.Fatal("duplicate not counted")
	}
}

func TestCoordinatorRequeueOnLostWorker(t *testing.T) {
	clock := faults.NewClock(time.Unix(2000, 0))
	c := newTestCoordinator(t, WithClock(clock), WithLease(5*time.Second))
	st, err := c.Submit(JobSpec{Gate: "xor"}, xorCases(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register("w1", "", 0); err != nil {
		t.Fatal(err)
	}
	j, err := c.Claim("w1")
	if err != nil || j == nil {
		t.Fatalf("Claim = %v, %v", j, err)
	}
	// w1 dies: no heartbeats, lease expires.
	clock.Advance(6 * time.Second)
	c.Queue().Sweep()

	// w1 is reported lost once lastSeen exceeds 3x lease.
	clock.Advance(10 * time.Second)
	for _, w := range c.Workers() {
		if w.ID == "w1" && w.State != "lost" {
			t.Fatalf("w1 state = %s, want lost", w.State)
		}
	}

	// The peer picks the job up and the request completes normally.
	if _, err := c.Register("w2", "", 0); err != nil {
		t.Fatal(err)
	}
	j2, err := c.Claim("w2")
	if err != nil || j2 == nil || j2.ID != j.ID {
		t.Fatalf("peer Claim = %v, %v", j2, err)
	}
	if _, err := c.IngestResult("w2", j2.ID, "fp", testOutcomes(j2.Cases), ""); err != nil {
		t.Fatal(err)
	}
	got, _ := c.Status(st.ID)
	if got.State != RequestComplete {
		t.Fatalf("after peer completion: %s", got.State)
	}
	if c.Snapshot().WorkersLost != 1 {
		t.Fatalf("WorkersLost = %d, want 1", c.Snapshot().WorkersLost)
	}
}

func TestCoordinatorEvalErrorRequeuesThenFails(t *testing.T) {
	c := newTestCoordinator(t, WithMaxAttempts(2))
	st, err := c.Submit(JobSpec{Gate: "xor"}, xorCases(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		j, err := c.Claim("w1")
		if err != nil || j == nil {
			t.Fatalf("claim %d = %v, %v", i, j, err)
		}
		if _, err := c.IngestResult("w1", j.ID, "", nil, "solver exploded"); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := c.Status(st.ID)
	if got.State != RequestFailed {
		t.Fatalf("after exhausted attempts: %s", got.State)
	}
}

func TestCoordinatorRebuildsFromQueue(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenQueue(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(q)
	st, err := c.Submit(JobSpec{Gate: "xor", Table: true}, xorCases(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Complete one of the two shards, then "restart" the coordinator.
	j, err := c.Claim("w1")
	if err != nil || j == nil {
		t.Fatalf("Claim = %v, %v", j, err)
	}
	if _, err := c.IngestResult("w1", j.ID, "fp", testOutcomes(j.Cases), ""); err != nil {
		t.Fatal(err)
	}

	q2, err := OpenQueue(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewCoordinator(q2)
	got, err := c2.Status(st.ID)
	if err != nil {
		t.Fatalf("rebuilt coordinator lost the request: %v", err)
	}
	if got.State != RequestRunning || got.CasesDone != 2 || got.CasesTotal != 4 {
		t.Fatalf("rebuilt request = %s, %d/%d", got.State, got.CasesDone, got.CasesTotal)
	}
	// Finishing the second shard on the rebuilt coordinator completes
	// the request with all four results.
	drain(t, c2, "w2", "fp")
	got, _ = c2.Status(st.ID)
	if got.State != RequestComplete || len(got.Results) != 4 {
		t.Fatalf("rebuilt completion = %s, %d results", got.State, len(got.Results))
	}
}

func TestCoordinatorStatusUnknown(t *testing.T) {
	c := newTestCoordinator(t)
	if _, err := c.Status("nope"); err == nil {
		t.Fatal("Status of unknown request succeeded")
	}
}

func TestLostWorkerGaugesAgedOut(t *testing.T) {
	clock := faults.NewClock(time.Unix(3000, 0))
	c := newTestCoordinator(t, WithClock(clock), WithLease(5*time.Second))
	if _, err := c.Register("wfade", "", 0); err != nil {
		t.Fatal(err)
	}
	c.touch("wfade", map[string]any{"engine": map[string]any{"evals": 7.0}})

	expose := func() string {
		var b strings.Builder
		obs.Default().WritePrometheus(&b)
		return b.String()
	}
	series := `spinwave_fleet_node_engine{node="wfade",stat="evals"}`
	if !strings.Contains(expose(), series) {
		t.Fatal("heartbeat did not export the node gauge")
	}

	// Past the lost threshold, computing worker states ages the node's
	// gauges out of the exposition.
	clock.Advance(16 * time.Second)
	ws := c.Workers()
	if len(ws) != 1 || ws[0].State != "lost" {
		t.Fatalf("worker state = %+v, want lost", ws)
	}
	if strings.Contains(expose(), series) {
		t.Fatal("lost worker's gauge still exposed")
	}
	// Idempotent: a second pass has nothing left to drop.
	c.Workers()

	// The node comes back: a fresh health heartbeat re-exports.
	c.touch("wfade", map[string]any{"engine": map[string]any{"evals": 9.0}})
	if !strings.Contains(expose(), series+" 9") {
		t.Fatal("returning worker's gauge not re-exported")
	}
}

func TestCoordinatorOnCompleteHook(t *testing.T) {
	c := newTestCoordinator(t)
	var got []CompletedRequest
	c.OnComplete = func(cr CompletedRequest) { got = append(got, cr) }

	st, err := c.Submit(JobSpec{Gate: "xor", Backend: "behavioral"}, xorCases(), 4)
	if err != nil {
		t.Fatal(err)
	}
	c.Register("w1", "", 0)
	j, err := c.Claim("w1")
	if err != nil || j == nil {
		t.Fatalf("claim: %v", err)
	}
	results := make([]CaseOutcome, len(j.Cases))
	for i, in := range j.Cases {
		results[i] = CaseOutcome{Inputs: in, Source: "behavioral",
			Outputs: map[string]detect.Readout{"O": {}}}
	}
	if _, err := c.IngestResult("w1", j.ID, "fp1", results, ""); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("OnComplete fired %d times, want 1", len(got))
	}
	cr := got[0]
	if cr.ID != st.ID || cr.Trace != st.Trace || cr.Gate != "xor" ||
		cr.Fingerprint != "fp1" || cr.Cases != 4 || cr.Tier != "behavioral" {
		t.Fatalf("CompletedRequest = %+v", cr)
	}
	if cr.CompletedNS < cr.SubmittedNS {
		t.Fatalf("completion before submission: %+v", cr)
	}

	// Requests in flight are active; completed ones are not.
	if traces := c.ActiveTraces(); len(traces) != 0 {
		t.Fatalf("ActiveTraces after completion = %v", traces)
	}
	st2, _ := c.Submit(JobSpec{Gate: "maj3"}, xorCases(), 4)
	if traces := c.ActiveTraces(); !traces[st2.Trace] {
		t.Fatalf("in-flight trace missing from ActiveTraces: %v", traces)
	}
}

package fleet

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spinwave/internal/journal"
	"spinwave/internal/obsplane"
)

// Coordinator shards evaluation requests into queued jobs, tracks the
// worker pool, and merges ingested results back into per-request
// answers. It is a thin, restartable layer over the durable Queue: on
// construction it rebuilds every request (including merged results of
// already-done jobs) from the job files alone, so losing the coordinator
// process never loses fleet state. Safe for concurrent use.
type Coordinator struct {
	q     *Queue
	clock Clock

	// OnComplete, when set, is invoked (outside the coordinator's lock,
	// on the ingesting goroutine) each time a request completes — the
	// hook the run-history catalog indexes fleet requests through. Set
	// it before the coordinator serves traffic.
	OnComplete func(CompletedRequest)

	mu       sync.Mutex
	requests map[string]*request
	workers  map[string]*workerState

	dupResults atomic.Int64
}

// CompletedRequest summarizes one fleet request at the moment its last
// case result is ingested — the payload of the OnComplete hook.
type CompletedRequest struct {
	// ID is the request ID.
	ID string
	// Trace is the request's fleet trace ID.
	Trace string
	// Run is the transient run ID (empty for plain requests).
	Run string
	// Gate is the evaluated logic gate.
	Gate string
	// Backend is the solver the spec requested.
	Backend string
	// Fingerprint is the backend fingerprint results were keyed under.
	Fingerprint string
	// Cases is the number of merged case results.
	Cases int
	// SubmittedNS and CompletedNS bound the request's wall-clock life.
	SubmittedNS, CompletedNS int64
	// Tier is the result-store tier that answered every case, or
	// "mixed" when cases came from different tiers.
	Tier string
}

// request is the in-memory aggregation of one submitted request.
type request struct {
	id          string
	spec        JobSpec
	cases       [][]bool
	jobIDs      []string
	submittedNS int64
	// merged holds accepted case outcomes keyed by
	// fingerprint + "/" + bitString(inputs) — the idempotency key of
	// result ingestion. A batch repeating a case shares one slot, and
	// requeue-race duplicates land on an existing key and are dropped.
	merged      map[string]CaseOutcome
	fingerprint string
	completedAt int64 // Unix ns of the ingest that completed the request
	// run is the durable transient run ID (empty for plain requests):
	// the key under which the segments' checkpoints live in the
	// artifact store.
	run string
	// trace is the fleet trace ID minted at submission and stamped on
	// every job, journal event and checkpoint of this request.
	trace string
}

// workerState tracks one registered worker.
type workerState struct {
	id         string
	host       string
	pid        int
	registered time.Time
	lastSeen   time.Time
	done       int64
	failed     int64
	health     map[string]any
	// gaugesDropped marks that the node's federated engine gauges were
	// aged out of /metrics after the worker went lost; a fresh health
	// heartbeat clears it (and re-exports the gauges).
	gaugesDropped bool
}

// RequestState is the aggregate lifecycle state of a fleet request.
type RequestState string

// Request lifecycle states.
const (
	// RequestPending means no case has a result yet.
	RequestPending RequestState = "pending"
	// RequestRunning means some, not all, cases have results.
	RequestRunning RequestState = "running"
	// RequestComplete means every case has exactly one merged result.
	RequestComplete RequestState = "complete"
	// RequestFailed means a job exhausted its attempts; the request
	// cannot complete.
	RequestFailed RequestState = "failed"
)

// JobStatusBrief is one job's state inside a RequestStatus.
type JobStatusBrief struct {
	ID       string    `json:"id"`
	Status   JobStatus `json:"status"`
	Worker   string    `json:"worker,omitempty"`
	Attempts int       `json:"attempts"`
	Cases    int       `json:"cases"`
	Error    string    `json:"error,omitempty"`
}

// RequestStatus is the externally visible state of one request.
type RequestStatus struct {
	ID          string           `json:"request_id"`
	State       RequestState     `json:"state"`
	Spec        JobSpec          `json:"spec"`
	CasesTotal  int              `json:"cases_total"`
	CasesDone   int              `json:"cases_done"`
	Jobs        []JobStatusBrief `json:"jobs"`
	Fingerprint string           `json:"fingerprint,omitempty"`
	// Run is the transient run ID whose artifacts (checkpoints, probe
	// traces) live under /v1/runs/{id}/artifacts; empty for plain
	// requests.
	Run string `json:"run,omitempty"`
	// Trace is the fleet trace ID correlating this request's journal
	// events across nodes; key into /v1/fleet/jobs/{trace}/events.
	Trace string `json:"trace,omitempty"`
	// Results holds one outcome per submitted case, in submission order,
	// populated only when State is complete.
	Results []CaseOutcome `json:"results,omitempty"`
}

// WorkerStatus is the externally visible state of one worker.
type WorkerStatus struct {
	ID         string `json:"id"`
	Host       string `json:"host,omitempty"`
	PID        int    `json:"pid,omitempty"`
	State      string `json:"state"` // active, idle, lost
	LastSeenMS int64  `json:"last_seen_ms"`
	ActiveJobs int    `json:"active_jobs"`
	Done       int64  `json:"done"`
	Failed     int64  `json:"failed"`
	// Health is the worker's self-reported node health (engine stats,
	// store tiers), forwarded verbatim from its last heartbeat.
	Health map[string]any `json:"health,omitempty"`
}

// NodeStat is one node's line in the federated fleet snapshot: the
// per-node liveness and throughput counters surfaced by /v1/slo and
// deep healthz (the aggregate sibling of the spinwave_fleet_node_*
// Prometheus gauges).
type NodeStat struct {
	ID         string `json:"id"`
	State      string `json:"state"` // active, idle, lost
	LastSeenMS int64  `json:"last_seen_ms"`
	Done       int64  `json:"done"`
	Failed     int64  `json:"failed"`
}

// Snapshot is the fleet state surfaced to deep healthz and /v1/slo.
type Snapshot struct {
	Queue            QueueStats `json:"queue"`
	Workers          int        `json:"workers"`
	WorkersLost      int        `json:"workers_lost"`
	Requests         int        `json:"requests"`
	RequestsComplete int        `json:"requests_complete"`
	DuplicateResults int64      `json:"duplicate_results"`
	// Nodes lists every registered worker's liveness line, sorted by ID.
	Nodes []NodeStat `json:"nodes,omitempty"`
}

// NewCoordinator builds a coordinator over the queue, rebuilding request
// state from the queue's job files (grouped by their request field).
func NewCoordinator(q *Queue) *Coordinator {
	c := &Coordinator{
		q:        q,
		clock:    q.clock,
		requests: make(map[string]*request),
		workers:  make(map[string]*workerState),
	}
	for _, j := range q.Jobs() {
		if j.Request == "" {
			continue
		}
		r := c.requests[j.Request]
		if r == nil {
			r = &request{id: j.Request, spec: j.Spec, merged: make(map[string]CaseOutcome),
				submittedNS: j.SubmittedNS}
			c.requests[j.Request] = r
		}
		r.jobIDs = append(r.jobIDs, j.ID)
		if r.trace == "" && j.Trace != "" {
			r.trace = j.Trace // recovered from the durable job files
		}
		if ts := j.Spec.Transient; ts != nil {
			r.run = ts.Run
			// Every segment job repeats the transient's one case; count it
			// once, at segment 0, or CasesTotal would inflate per segment.
			if ts.Segment == 0 {
				r.cases = append(r.cases, j.Cases...)
			}
		} else {
			r.cases = append(r.cases, j.Cases...)
		}
		if j.Status == JobDone {
			r.fingerprint = j.Fingerprint
			for _, out := range j.Results {
				if len(out.Outputs) == 0 {
					continue // checkpoint partial: no readouts to merge
				}
				r.merged[resultKey(j.Fingerprint, out.Inputs)] = out
			}
		}
	}
	// A crash between an intermediate segment's completion and the next
	// segment's submission would otherwise strand the transient: re-chain
	// any done, non-final segment whose successor never made it to disk.
	c.rechainTransients()
	return c
}

// rechainTransients scans for transients whose newest segment job is
// done but not final and submits the missing successor. Called once at
// rebuild, before the coordinator serves traffic.
func (c *Coordinator) rechainTransients() {
	type tail struct {
		job     *Job
		present map[int]bool
	}
	tails := make(map[string]*tail)
	for _, j := range c.q.Jobs() {
		ts := j.Spec.Transient
		if ts == nil || j.Request == "" {
			continue
		}
		t := tails[j.Request]
		if t == nil {
			t = &tail{present: make(map[int]bool)}
			tails[j.Request] = t
		}
		t.present[ts.Segment] = true
		if t.job == nil || ts.Segment > t.job.Spec.Transient.Segment {
			t.job = j
		}
	}
	for _, t := range tails {
		ts := t.job.Spec.Transient
		if t.job.Status == JobDone && ts.Segment < ts.Segments-1 && !t.present[ts.Segment+1] {
			c.chainSegment(t.job)
		}
	}
}

// chainSegment submits the segment after done job j under the same
// request. Must be called without c.mu held (q.Submit takes q.mu; the
// lock order everywhere is c.mu outside q.mu, never nested).
func (c *Coordinator) chainSegment(j *Job) {
	ts := *j.Spec.Transient
	ts.Segment++
	spec := j.Spec
	spec.Transient = &ts
	next := &Job{
		ID:      fmt.Sprintf("%s-s%02d", j.Request, ts.Segment),
		Request: j.Request,
		Trace:   j.Trace, // the chained segment stays on the parent's trace
		Spec:    spec,
		Cases:   j.Cases,
	}
	if err := c.q.Submit(next); err != nil {
		if jd := journal.Default(); jd.Enabled() {
			jd.Emit("", "fleet.request", corrFields([]journal.Field{
				journal.F("status", "chain_failed"),
				journal.F("segment", ts.Segment),
				journal.F("error", err.Error()),
			}, j.Request, j.Trace)...)
		}
		return
	}
	c.mu.Lock()
	if r := c.requests[j.Request]; r != nil {
		r.jobIDs = append(r.jobIDs, next.ID)
	}
	c.mu.Unlock()
	if jd := journal.Default(); jd.Enabled() {
		jd.Emit("", "fleet.request", corrFields([]journal.Field{
			journal.F("status", "segment_chained"),
			journal.F("run", ts.Run),
			journal.F("job", next.ID),
			journal.F("segment", ts.Segment),
			journal.F("segments", ts.Segments),
		}, j.Request, j.Trace)...)
	}
}

// SubmitTransient queues a long checkpointed transient: one case split
// into segments chained jobs, each bounded by a checkpoint boundary.
// Only the first segment is queued here; each completed segment's
// ingest chains the next, and the final segment's readouts complete the
// request. The returned status carries the minted run ID under which
// workers publish checkpoints to the artifact store.
func (c *Coordinator) SubmitTransient(spec JobSpec, inputs []bool, segments, everySteps int) (*RequestStatus, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("fleet: transient needs an input case")
	}
	if segments < 1 {
		segments = 1
	}
	reqID := "q" + randomHex(8)
	runID := "r" + randomHex(8)
	trace := obsplane.NewTraceID()
	spec.Transient = &TransientSpec{Run: runID, Segment: 0, Segments: segments, EverySteps: everySteps}
	job := &Job{
		ID:      fmt.Sprintf("%s-s00", reqID),
		Request: reqID,
		Trace:   trace,
		Spec:    spec,
		Cases:   [][]bool{inputs},
	}
	if err := c.q.Submit(job); err != nil {
		return nil, err
	}
	r := &request{id: reqID, spec: spec, run: runID, trace: trace,
		cases: [][]bool{inputs},
		jobIDs: []string{job.ID}, merged: make(map[string]CaseOutcome),
		submittedNS: c.clock.Now().UnixNano()}
	c.mu.Lock()
	c.requests[reqID] = r
	c.mu.Unlock()
	mRequests.Inc()
	if jd := journal.Default(); jd.Enabled() {
		jd.Emit("", "fleet.request", corrFields([]journal.Field{
			journal.F("status", "submitted"),
			journal.F("gate", spec.Gate),
			journal.F("run", runID),
			journal.F("segments", segments),
		}, reqID, trace)...)
	}
	return c.Status(reqID)
}

// Queue returns the coordinator's underlying durable queue.
func (c *Coordinator) Queue() *Queue { return c.q }

// resultKey is the idempotency key of one case result.
func resultKey(fingerprint string, inputs []bool) string {
	return fingerprint + "/" + bitString(inputs)
}

// Submit shards the cases into jobs of at most shard cases each (shard
// < 1 selects one job per request) and queues them under a fresh
// request ID.
func (c *Coordinator) Submit(spec JobSpec, cases [][]bool, shard int) (*RequestStatus, error) {
	if len(cases) == 0 {
		return nil, fmt.Errorf("fleet: request needs at least one case")
	}
	if shard < 1 || shard > len(cases) {
		shard = len(cases)
	}
	reqID := "q" + randomHex(8)
	trace := obsplane.NewTraceID()
	r := &request{id: reqID, spec: spec, cases: cases, trace: trace,
		merged: make(map[string]CaseOutcome), submittedNS: c.clock.Now().UnixNano()}
	var jobs []*Job
	for i := 0; i < len(cases); i += shard {
		end := i + shard
		if end > len(cases) {
			end = len(cases)
		}
		jobs = append(jobs, &Job{
			ID:      fmt.Sprintf("%s-%03d", reqID, len(jobs)),
			Request: reqID,
			Trace:   trace,
			Spec:    spec,
			Cases:   cases[i:end],
		})
	}
	for _, j := range jobs {
		if err := c.q.Submit(j); err != nil {
			return nil, err
		}
		r.jobIDs = append(r.jobIDs, j.ID)
	}
	c.mu.Lock()
	c.requests[reqID] = r
	c.mu.Unlock()
	mRequests.Inc()
	if jd := journal.Default(); jd.Enabled() {
		jd.Emit("", "fleet.request", corrFields([]journal.Field{
			journal.F("status", "submitted"),
			journal.F("gate", spec.Gate),
			journal.F("cases", len(cases)),
			journal.F("jobs", len(jobs)),
		}, reqID, trace)...)
	}
	return c.Status(reqID)
}

// Status reports the aggregate state of a request. The error is
// ErrNoSuchJob-wrapped for unknown IDs.
func (c *Coordinator) Status(reqID string) (*RequestStatus, error) {
	c.mu.Lock()
	r, ok := c.requests[reqID]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: request %s", ErrNoSuchJob, reqID)
	}
	st := &RequestStatus{ID: r.id, Spec: r.spec, Trace: r.trace}
	anyFailed := false
	for _, jid := range r.jobIDs {
		j, ok := c.q.Get(jid)
		if !ok {
			continue
		}
		st.Jobs = append(st.Jobs, JobStatusBrief{ID: j.ID, Status: j.Status,
			Worker: j.Worker, Attempts: j.Attempts, Cases: len(j.Cases), Error: j.Error})
		if j.Status == JobFailed {
			anyFailed = true
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st.CasesTotal = len(r.cases)
	st.Fingerprint = r.fingerprint
	st.Run = r.run
	done := 0
	for _, in := range r.cases {
		if _, ok := r.merged[resultKey(r.fingerprint, in)]; ok {
			done++
		}
	}
	st.CasesDone = done
	switch {
	case anyFailed:
		st.State = RequestFailed
	case done == len(r.cases):
		st.State = RequestComplete
		st.Results = make([]CaseOutcome, len(r.cases))
		for i, in := range r.cases {
			st.Results[i] = r.merged[resultKey(r.fingerprint, in)]
		}
	case done == 0:
		st.State = RequestPending
	default:
		st.State = RequestRunning
	}
	return st, nil
}

// Requests lists every tracked request ID, newest first.
func (c *Coordinator) Requests() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, 0, len(c.requests))
	for id := range c.requests {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		return c.requests[ids[a]].submittedNS > c.requests[ids[b]].submittedNS
	})
	return ids
}

// Register adds (or refreshes) a worker, assigning an ID when the
// worker did not bring one.
func (c *Coordinator) Register(workerID, host string, pid int) (string, error) {
	if workerID == "" {
		workerID = "w" + randomHex(6)
	}
	if !validID(workerID) {
		return "", fmt.Errorf("fleet: worker id %q: want 1-64 chars of [a-zA-Z0-9._-]", workerID)
	}
	now := c.clock.Now()
	c.mu.Lock()
	w := c.workers[workerID]
	if w == nil {
		w = &workerState{id: workerID, registered: now}
		c.workers[workerID] = w
		mWorkersSeen.Inc()
	}
	w.host = host
	w.pid = pid
	w.lastSeen = now
	c.mu.Unlock()
	if jd := journal.Default(); jd.Enabled() {
		jd.Emit("", "fleet.worker",
			journal.F("worker", workerID),
			journal.F("status", "registered"),
			journal.F("host", host))
	}
	return workerID, nil
}

// Claim hands the next job to the worker (nil when the queue is idle)
// and refreshes the worker's liveness.
func (c *Coordinator) Claim(workerID string) (*Job, error) {
	c.touch(workerID, nil)
	return c.q.Claim(workerID)
}

// Heartbeat extends the worker's lease on a job and records the
// worker's self-reported health snapshot.
func (c *Coordinator) Heartbeat(workerID, jobID string, health map[string]any) error {
	c.touch(workerID, health)
	return c.q.Heartbeat(jobID, workerID)
}

// IngestResult applies one job's outcome. An evalErr fails the job
// (requeue or terminal); otherwise the results are completed on the
// queue and merged into the parent request under (fingerprint, inputs)
// keys. Duplicate posts report applied=false and are counted, never
// double-applied.
func (c *Coordinator) IngestResult(workerID, jobID, fingerprint string, results []CaseOutcome, evalErr string) (applied bool, err error) {
	c.touch(workerID, nil)
	if evalErr != "" {
		c.mu.Lock()
		if w := c.workers[workerID]; w != nil {
			w.failed++
		}
		c.mu.Unlock()
		return false, c.q.Fail(jobID, workerID, evalErr)
	}
	applied, err = c.q.Complete(jobID, workerID, fingerprint, results)
	if err != nil {
		return false, err
	}
	if !applied {
		c.dupResults.Add(1)
		return false, nil
	}
	c.mu.Lock()
	if w := c.workers[workerID]; w != nil {
		w.done++
	}
	j, _ := c.q.Get(jobID)
	var completedReq, completedTrace string
	var completedCases int
	var completed CompletedRequest
	if j != nil && j.Request != "" {
		if r := c.requests[j.Request]; r != nil {
			r.fingerprint = fingerprint
			for _, out := range results {
				if len(out.Outputs) == 0 {
					// Checkpoint partial from an intermediate transient
					// segment: there are no readouts yet, only a durable
					// snapshot the chained segment resumes from.
					continue
				}
				key := resultKey(fingerprint, out.Inputs)
				if _, dup := r.merged[key]; dup {
					c.dupResults.Add(1)
					mResultsDuplicate.Inc()
					continue
				}
				r.merged[key] = out
			}
			done := 0
			for _, in := range r.cases {
				if _, ok := r.merged[resultKey(r.fingerprint, in)]; ok {
					done++
				}
			}
			if done == len(r.cases) && r.completedAt == 0 {
				r.completedAt = c.clock.Now().UnixNano()
				completedReq = r.id
				completedCases = len(r.cases)
				completedTrace = r.trace
				completed = CompletedRequest{
					ID: r.id, Trace: r.trace, Run: r.run,
					Gate: r.spec.Gate, Backend: r.spec.Backend,
					Fingerprint: r.fingerprint,
					Cases:       len(r.cases),
					SubmittedNS: r.submittedNS, CompletedNS: r.completedAt,
					Tier: mergedTier(r.merged),
				}
			}
		}
	}
	c.mu.Unlock()
	// Chain the next transient segment after releasing c.mu — q.Submit
	// takes q.mu, and the lock order is never nested. The chain runs at
	// most once per segment: Complete is idempotent, so a duplicate post
	// reports applied=false and never reaches here.
	if j != nil && j.Spec.Transient != nil && j.Spec.Transient.Segment < j.Spec.Transient.Segments-1 {
		c.chainSegment(j)
	}
	if completedReq != "" {
		mRequestsComplete.Inc()
		if jd := journal.Default(); jd.Enabled() {
			jd.Emit("", "fleet.request", corrFields([]journal.Field{
				journal.F("status", "complete"),
				journal.F("cases", completedCases),
			}, completedReq, completedTrace)...)
		}
		if c.OnComplete != nil {
			c.OnComplete(completed)
		}
	}
	return true, nil
}

// mergedTier collapses per-case result tiers into one label: the shared
// tier when every case agrees, "mixed" otherwise.
func mergedTier(merged map[string]CaseOutcome) string {
	tier := ""
	for _, out := range merged {
		switch {
		case out.Source == "":
			continue
		case tier == "":
			tier = out.Source
		case tier != out.Source:
			return "mixed"
		}
	}
	return tier
}

// ActiveTraces returns the trace IDs of requests that have not yet
// completed. The retention sweeper treats them as protected: deleting
// an in-flight request's journal would sever its post-mortem before it
// even finished. (A failed request never completes and stays protected
// — its telemetry is exactly the post-mortem worth keeping — until the
// operator clears the queue.)
func (c *Coordinator) ActiveTraces() map[string]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]bool)
	for _, r := range c.requests {
		if r.completedAt == 0 && r.trace != "" {
			out[r.trace] = true
		}
	}
	return out
}

// ActiveRuns returns the transient run IDs of requests that have not
// yet completed — their checkpoints and artifacts are resume state, not
// garbage, and the retention sweeper must leave them alone.
func (c *Coordinator) ActiveRuns() map[string]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]bool)
	for _, r := range c.requests {
		if r.completedAt == 0 && r.run != "" {
			out[r.run] = true
		}
	}
	return out
}

// touch refreshes a worker's liveness (and health snapshot, when given).
// A health snapshot also feeds the federated spinwave_fleet_node_*
// gauges, so every worker heartbeat refreshes the coordinator's
// /metrics view of that node's engine.
func (c *Coordinator) touch(workerID string, health map[string]any) {
	now := c.clock.Now()
	c.mu.Lock()
	if w := c.workers[workerID]; w != nil {
		w.lastSeen = now
		if health != nil {
			w.health = health
			w.gaugesDropped = false // back from the dead: re-export below
		}
	}
	c.mu.Unlock()
	if health != nil {
		recordNodeHealth(workerID, health)
	}
}

// lostAfter is how stale a worker's lastSeen may be before it is
// reported lost: long enough to ride out one missed heartbeat, short
// enough that a SIGKILLed worker shows up quickly.
func (c *Coordinator) lostAfter() time.Duration { return 3 * c.q.Lease() }

// Workers reports every registered worker, sorted by ID.
func (c *Coordinator) Workers() []WorkerStatus {
	now := c.clock.Now()
	active := make(map[string]int)
	for _, j := range c.q.Jobs() {
		if j.Status == JobClaimed {
			active[j.Worker]++
		}
	}
	c.mu.Lock()
	out := make([]WorkerStatus, 0, len(c.workers))
	var aged []string
	for _, w := range c.workers {
		ws := WorkerStatus{
			ID: w.id, Host: w.host, PID: w.pid,
			LastSeenMS: now.Sub(w.lastSeen).Milliseconds(),
			ActiveJobs: active[w.id],
			Done:       w.done, Failed: w.failed,
			Health: w.health,
		}
		switch {
		case now.Sub(w.lastSeen) > c.lostAfter():
			ws.State = "lost"
			if !w.gaugesDropped {
				w.gaugesDropped = true
				aged = append(aged, w.id)
			}
		case ws.ActiveJobs > 0:
			ws.State = "active"
		default:
			ws.State = "idle"
		}
		out = append(out, ws)
	}
	c.mu.Unlock()
	// Age the lost nodes' federated gauges out of /metrics after the
	// lock is released (the registry and journal are never touched under
	// c.mu). A node that heartbeats again re-exports on touch.
	for _, id := range aged {
		n := dropNodeGauges(id)
		if jd := journal.Default(); jd.Enabled() {
			jd.Emit("", "fleet.worker",
				journal.F("worker", id),
				journal.F("status", "lost"),
				journal.F("gauges_dropped", n))
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Snapshot summarizes fleet state for deep healthz and /v1/slo.
func (c *Coordinator) Snapshot() Snapshot {
	s := Snapshot{Queue: c.q.Stats(), DuplicateResults: c.dupResults.Load()}
	for _, w := range c.Workers() {
		s.Workers++
		if w.State == "lost" {
			s.WorkersLost++
		}
		s.Nodes = append(s.Nodes, NodeStat{ID: w.ID, State: w.State,
			LastSeenMS: w.LastSeenMS, Done: w.Done, Failed: w.Failed})
	}
	c.mu.Lock()
	s.Requests = len(c.requests)
	for _, r := range c.requests {
		if r.completedAt != 0 {
			s.RequestsComplete++
		}
	}
	c.mu.Unlock()
	return s
}

// Run sweeps expired leases periodically until ctx is cancelled — the
// background recovery loop swserve starts alongside the HTTP surface.
// (Claims also sweep lazily, so tests driving a fake clock need no
// ticker.)
func (c *Coordinator) Run(ctx context.Context, every time.Duration) {
	if every <= 0 {
		every = c.q.Lease() / 4
	}
	if every <= 0 {
		every = time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.q.Sweep()
			// Recomputing worker states here ages lost nodes' federated
			// gauges out of /metrics even when no one is polling.
			c.Workers()
		}
	}
}

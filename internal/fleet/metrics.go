package fleet

import (
	"encoding/json"
	"sync"

	"spinwave/internal/obs"
)

// Process-wide fleet metrics in the obs default registry, registered
// lazily on the first queue/coordinator so an importing program that
// never runs a fleet exports nothing. They are workload totals shared by
// every queue in the process; the per-instance view stays available
// through Queue.Stats and Coordinator.Snapshot.
var (
	metricsOnce sync.Once

	mJobsSubmitted    *obs.Counter
	mJobsCompleted    *obs.Counter
	mJobsFailed       *obs.Counter
	mClaims           *obs.Counter
	mRequeues         *obs.Counter
	mResultsDuplicate *obs.Counter
	mQuarantined      *obs.Counter
	mRequests         *obs.Counter
	mRequestsComplete *obs.Counter
	mWorkersSeen      *obs.Counter
)

func initMetrics() {
	metricsOnce.Do(func() {
		r := obs.Default()
		r.Describe("spinwave_fleet_jobs_total", "fleet jobs by lifecycle outcome")
		mJobsSubmitted = r.Counter("spinwave_fleet_jobs_total", obs.L("status", "submitted"))
		mJobsCompleted = r.Counter("spinwave_fleet_jobs_total", obs.L("status", "done"))
		mJobsFailed = r.Counter("spinwave_fleet_jobs_total", obs.L("status", "failed"))
		r.Describe("spinwave_fleet_claims_total", "job claims handed to workers (attempts)")
		mClaims = r.Counter("spinwave_fleet_claims_total")
		r.Describe("spinwave_fleet_requeues_total", "jobs requeued after a lease expired (worker lost)")
		mRequeues = r.Counter("spinwave_fleet_requeues_total")
		r.Describe("spinwave_fleet_duplicate_results_total", "result posts dropped by idempotent ingestion (requeue races, retries, stale workers)")
		mResultsDuplicate = r.Counter("spinwave_fleet_duplicate_results_total")
		r.Describe("spinwave_fleet_quarantined_total", "defective queue files quarantined at scan")
		mQuarantined = r.Counter("spinwave_fleet_quarantined_total")
		r.Describe("spinwave_fleet_requests_total", "fleet requests by lifecycle outcome")
		mRequests = r.Counter("spinwave_fleet_requests_total", obs.L("status", "submitted"))
		mRequestsComplete = r.Counter("spinwave_fleet_requests_total", obs.L("status", "complete"))
		r.Describe("spinwave_fleet_workers_registered_total", "worker registrations accepted")
		mWorkersSeen = r.Counter("spinwave_fleet_workers_registered_total")
		r.Describe("spinwave_fleet_node_engine", "per-node engine stats federated from worker heartbeats")
	})
}

// nodeGaugeStats remembers which spinwave_fleet_node_engine{node,stat}
// series each node has exported, so dropNodeGauges can unregister
// exactly those when the node goes lost.
var (
	nodeGaugeMu    sync.Mutex
	nodeGaugeStats = make(map[string]map[string]bool)
)

// dropNodeGauges removes every federated engine gauge exported for the
// node from /metrics and forgets the node's series set. Returns how
// many series were dropped. A later heartbeat from the node re-exports
// fresh series through recordNodeHealth.
func dropNodeGauges(workerID string) int {
	nodeGaugeMu.Lock()
	stats := nodeGaugeStats[workerID]
	delete(nodeGaugeStats, workerID)
	nodeGaugeMu.Unlock()
	r := obs.Default()
	n := 0
	for stat := range stats {
		if r.Unregister("spinwave_fleet_node_engine",
			obs.L("node", workerID), obs.L("stat", stat)) {
			n++
		}
	}
	return n
}

// recordNodeHealth federates a worker's self-reported health snapshot
// into spinwave_fleet_node_engine{node,stat} gauges, so one coordinator
// /metrics scrape covers every node's engine counters without scraping
// the workers. Only numeric leaves of the "engine" section are
// exported; the full snapshot stays available via /v1/fleet/workers.
func recordNodeHealth(workerID string, health map[string]any) {
	initMetrics()
	eng, ok := health["engine"]
	if !ok || eng == nil {
		return
	}
	// The engine stats arrive as a JSON object over HTTP but as a typed
	// struct when coordinator and worker share a process (tests, smokes);
	// a JSON round-trip flattens both to the same map shape.
	stats, ok := eng.(map[string]any)
	if !ok {
		buf, err := json.Marshal(eng)
		if err != nil || json.Unmarshal(buf, &stats) != nil {
			return
		}
	}
	r := obs.Default()
	for stat, v := range stats {
		var val float64
		switch n := v.(type) {
		case float64:
			val = n
		case int:
			val = float64(n)
		case int64:
			val = float64(n)
		case json.Number:
			val, _ = n.Float64()
		default:
			continue // non-numeric leaf (nested map, string): skip
		}
		r.Gauge("spinwave_fleet_node_engine",
			obs.L("node", workerID), obs.L("stat", stat)).Set(val)
		nodeGaugeMu.Lock()
		set := nodeGaugeStats[workerID]
		if set == nil {
			set = make(map[string]bool)
			nodeGaugeStats[workerID] = set
		}
		set[stat] = true
		nodeGaugeMu.Unlock()
	}
}

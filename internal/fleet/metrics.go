package fleet

import (
	"sync"

	"spinwave/internal/obs"
)

// Process-wide fleet metrics in the obs default registry, registered
// lazily on the first queue/coordinator so an importing program that
// never runs a fleet exports nothing. They are workload totals shared by
// every queue in the process; the per-instance view stays available
// through Queue.Stats and Coordinator.Snapshot.
var (
	metricsOnce sync.Once

	mJobsSubmitted    *obs.Counter
	mJobsCompleted    *obs.Counter
	mJobsFailed       *obs.Counter
	mClaims           *obs.Counter
	mRequeues         *obs.Counter
	mResultsDuplicate *obs.Counter
	mQuarantined      *obs.Counter
	mRequests         *obs.Counter
	mRequestsComplete *obs.Counter
	mWorkersSeen      *obs.Counter
)

func initMetrics() {
	metricsOnce.Do(func() {
		r := obs.Default()
		r.Describe("spinwave_fleet_jobs_total", "fleet jobs by lifecycle outcome")
		mJobsSubmitted = r.Counter("spinwave_fleet_jobs_total", obs.L("status", "submitted"))
		mJobsCompleted = r.Counter("spinwave_fleet_jobs_total", obs.L("status", "done"))
		mJobsFailed = r.Counter("spinwave_fleet_jobs_total", obs.L("status", "failed"))
		r.Describe("spinwave_fleet_claims_total", "job claims handed to workers (attempts)")
		mClaims = r.Counter("spinwave_fleet_claims_total")
		r.Describe("spinwave_fleet_requeues_total", "jobs requeued after a lease expired (worker lost)")
		mRequeues = r.Counter("spinwave_fleet_requeues_total")
		r.Describe("spinwave_fleet_duplicate_results_total", "result posts dropped by idempotent ingestion (requeue races, retries, stale workers)")
		mResultsDuplicate = r.Counter("spinwave_fleet_duplicate_results_total")
		r.Describe("spinwave_fleet_quarantined_total", "defective queue files quarantined at scan")
		mQuarantined = r.Counter("spinwave_fleet_quarantined_total")
		r.Describe("spinwave_fleet_requests_total", "fleet requests by lifecycle outcome")
		mRequests = r.Counter("spinwave_fleet_requests_total", obs.L("status", "submitted"))
		mRequestsComplete = r.Counter("spinwave_fleet_requests_total", obs.L("status", "complete"))
		r.Describe("spinwave_fleet_workers_registered_total", "worker registrations accepted")
		mWorkersSeen = r.Counter("spinwave_fleet_workers_registered_total")
	})
}

package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"spinwave/internal/fleet/faults"
)

// coordMux mounts the fleet wire protocol over a Coordinator the way
// swserve does, minus the serving-layer middleware — enough for the
// Worker loop to run against in-package.
func coordMux(c *Coordinator) *http.ServeMux {
	decode := func(r *http.Request, into any) error {
		return json.NewDecoder(r.Body).Decode(into)
	}
	reply := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(v) //nolint:errcheck
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/fleet/register", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if err := decode(r, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		id, err := c.Register(req.Worker, req.Host, req.PID)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		lease := c.Queue().Lease()
		reply(w, RegisterResponse{
			Worker: id, LeaseMS: lease.Milliseconds(),
			PollMS: lease.Milliseconds() / 10, HeartbeatMS: lease.Milliseconds() / 3,
		})
	})
	mux.HandleFunc("POST /v1/fleet/claim", func(w http.ResponseWriter, r *http.Request) {
		var req ClaimRequest
		if err := decode(r, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		job, err := c.Claim(req.Worker)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if job == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		reply(w, job)
	})
	mux.HandleFunc("POST /v1/fleet/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if err := decode(r, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		switch err := c.Heartbeat(req.Worker, req.Job, req.Health); {
		case errors.Is(err, ErrStaleClaim):
			http.Error(w, err.Error(), http.StatusConflict)
		case err != nil:
			http.Error(w, err.Error(), http.StatusNotFound)
		default:
			reply(w, map[string]bool{"ok": true})
		}
	})
	mux.HandleFunc("POST /v1/fleet/results", func(w http.ResponseWriter, r *http.Request) {
		var req ResultRequest
		if err := decode(r, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		applied, err := c.IngestResult(req.Worker, req.Job, req.Fingerprint, req.Results, req.Error)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		status := JobStatus("")
		if j, ok := c.Queue().Get(req.Job); ok {
			status = j.Status
		}
		reply(w, ResultResponse{Applied: applied, Status: status})
	})
	return mux
}

// echoEvaluator fabricates per-case outcomes like a real backend would.
func echoEvaluator(fp string) Evaluator {
	return EvaluatorFunc(func(ctx context.Context, spec JobSpec, cases [][]bool) (string, []CaseOutcome, error) {
		if err := ctx.Err(); err != nil {
			return "", nil, err
		}
		return fp, testOutcomes(cases), nil
	})
}

// runWorker runs w until the returned stop is called (or the test
// ends); stop waits for Run to return, so fields like JobsDone are
// safe to read afterwards.
func runWorker(t *testing.T, w *Worker) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); w.Run(ctx) }() //nolint:errcheck
	stop = func() { cancel(); <-done }
	t.Cleanup(stop)
	return stop
}

func TestWorkerDrainsQueue(t *testing.T) {
	c := newTestCoordinator(t)
	ts := httptest.NewServer(coordMux(c))
	defer ts.Close()

	st, err := c.Submit(JobSpec{Gate: "xor", Table: true}, xorCases(), 2)
	if err != nil {
		t.Fatal(err)
	}
	w := &Worker{BaseURL: ts.URL, Eval: echoEvaluator("fp-a"), Poll: 2 * time.Millisecond}
	stop := runWorker(t, w)

	deadline := time.Now().Add(5 * time.Second)
	for {
		cur, err := c.Status(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == RequestComplete {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("request stuck in %s", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	// The coordinator assigned the worker an ID and the loop counted its
	// completed jobs.
	if w.ID == "" {
		t.Error("worker never adopted an assigned ID")
	}
	// Cancellation can race the final post's response delivery (the
	// server completed the request but the client never saw the 200), so
	// the counter is only guaranteed to reach 1 of the 2 jobs.
	if w.JobsDone() < 1 {
		t.Errorf("JobsDone = %d, want >= 1", w.JobsDone())
	}
}

func TestWorkerRegisterRetries(t *testing.T) {
	c := newTestCoordinator(t)
	mux := coordMux(c)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// First registration attempt fails; the worker must retry.
		if r.URL.Path == "/v1/fleet/register" && calls.Add(1) == 1 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		mux.ServeHTTP(w, r)
	}))
	defer ts.Close()

	st, err := c.Submit(JobSpec{Gate: "xor"}, xorCases(), 4)
	if err != nil {
		t.Fatal(err)
	}
	w := &Worker{BaseURL: ts.URL, Eval: echoEvaluator("fp-r"), Poll: 2 * time.Millisecond}
	runWorker(t, w)

	deadline := time.Now().Add(5 * time.Second)
	for {
		if cur, _ := c.Status(st.ID); cur != nil && cur.State == RequestComplete {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request never completed after a failed registration")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if calls.Load() < 2 {
		t.Fatalf("register called %d times, want a retry", calls.Load())
	}
}

func TestWorkerStaleHeartbeatCancelsEvaluation(t *testing.T) {
	clock := faults.NewClock(time.Now())
	c := newTestCoordinator(t, WithClock(clock), WithLease(10*time.Second))
	mux := coordMux(c)
	// Advertise a fast heartbeat so the 409 arrives promptly: rewrite the
	// register response instead of waiting the real lease/3.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/fleet/register" {
			var req RegisterRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			id, err := c.Register(req.Worker, req.Host, req.PID)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(RegisterResponse{ //nolint:errcheck
				Worker: id, LeaseMS: 10_000, PollMS: 2, HeartbeatMS: 20,
			})
			return
		}
		mux.ServeHTTP(w, r)
	}))
	defer ts.Close()

	if _, err := c.Submit(JobSpec{Gate: "xor"}, xorCases(), 4); err != nil {
		t.Fatal(err)
	}

	// The evaluator blocks until its context dies — the only way out is
	// the heartbeat loop noticing the stale claim.
	evalStarted := make(chan struct{})
	evalCancelled := make(chan struct{})
	w := &Worker{
		BaseURL: ts.URL, Poll: 2 * time.Millisecond,
		Eval: EvaluatorFunc(func(ctx context.Context, spec JobSpec, cases [][]bool) (string, []CaseOutcome, error) {
			close(evalStarted)
			<-ctx.Done()
			close(evalCancelled)
			return "", nil, ctx.Err()
		}),
	}
	runWorker(t, w)

	<-evalStarted
	// Expire the lease and hand the job to a peer: the worker's next
	// heartbeat answers 409 and must abort the evaluation.
	clock.Advance(11 * time.Second)
	if got := c.Queue().Sweep(); len(got) != 1 {
		t.Fatalf("Sweep = %v, want one requeued job", got)
	}
	if _, err := c.Register("peer", "", 0); err != nil {
		t.Fatal(err)
	}
	job, err := c.Claim("peer")
	if err != nil || job == nil {
		t.Fatalf("peer claim: %v, %v", job, err)
	}

	select {
	case <-evalCancelled:
	case <-time.After(10 * time.Second):
		t.Fatal("stale heartbeat never cancelled the evaluation")
	}
	// The stale worker reported nothing: the job still belongs to the peer.
	got, ok := c.Queue().Get(job.ID)
	if !ok {
		t.Fatalf("job %s vanished", job.ID)
	}
	if got.Worker != "peer" || got.Status != JobClaimed {
		t.Fatalf("job after stale cancel = %s/%s, want claimed/peer", got.Status, got.Worker)
	}
}

func TestWorkerRetriesDroppedResultPost(t *testing.T) {
	c := newTestCoordinator(t)
	ts := httptest.NewServer(coordMux(c))
	defer ts.Close()

	st, err := c.Submit(JobSpec{Gate: "xor"}, xorCases(), 4)
	if err != nil {
		t.Fatal(err)
	}
	tr := &faults.Transport{Under: http.DefaultTransport}
	rule := tr.Add(&faults.Rule{PathContains: "/v1/fleet/results", Count: 1, Drop: true})
	w := &Worker{
		BaseURL: ts.URL, Eval: echoEvaluator("fp-d"),
		Poll: 2 * time.Millisecond, Client: &http.Client{Transport: tr},
	}
	runWorker(t, w)

	deadline := time.Now().Add(5 * time.Second)
	for {
		if cur, _ := c.Status(st.ID); cur != nil && cur.State == RequestComplete {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request never completed despite result retries")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rule.Fired() != 1 {
		t.Fatalf("drop rule fired %d times, want 1", rule.Fired())
	}
	// The drop loses the response after the server applied the post, so
	// the retry is a duplicate the ingestion layer must absorb. The
	// retry happens a poll interval after completion — wait for it.
	for c.Snapshot().DuplicateResults == 0 {
		if time.Now().After(deadline) {
			t.Fatal("retried result post was not deduplicated")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestWorkerReportsEvalFailure(t *testing.T) {
	c := newTestCoordinator(t, WithMaxAttempts(1))
	ts := httptest.NewServer(coordMux(c))
	defer ts.Close()

	st, err := c.Submit(JobSpec{Gate: "xor"}, xorCases(), 4)
	if err != nil {
		t.Fatal(err)
	}
	w := &Worker{
		BaseURL: ts.URL, Poll: 2 * time.Millisecond,
		Eval: EvaluatorFunc(func(ctx context.Context, spec JobSpec, cases [][]bool) (string, []CaseOutcome, error) {
			return "", nil, errors.New("solver diverged")
		}),
	}
	stop := runWorker(t, w)

	deadline := time.Now().Add(5 * time.Second)
	for {
		cur, err := c.Status(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == RequestFailed {
			if cur.Jobs[0].Error == "" {
				t.Fatalf("failed job carries no error: %+v", cur.Jobs[0])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("request stuck in %s, want failed", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	if w.JobsDone() != 0 {
		t.Errorf("JobsDone = %d after an eval failure, want 0", w.JobsDone())
	}
}

func TestWorkerCaseDelayHonoursCancellation(t *testing.T) {
	w := &Worker{CaseDelay: time.Hour, Eval: echoEvaluator("fp")}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	job := &Job{Spec: JobSpec{Gate: "xor"}, Cases: xorCases()}
	if _, _, err := w.evaluate(ctx, job); !errors.Is(err, context.Canceled) {
		t.Fatalf("evaluate under a dead context = %v, want context.Canceled", err)
	}
}

func TestWorkerRunRequiresEvaluator(t *testing.T) {
	w := &Worker{BaseURL: "http://127.0.0.1:0"}
	if err := w.Run(context.Background()); err == nil {
		t.Fatal("Run without an Evaluator did not error")
	}
}

// Package render draws magnetization fields as images: the Figure 5
// panels of the paper are blue/red maps of the spin-wave pattern over the
// gate, with vacuum in white. A diverging blue–white–red colormap maps
// the selected magnetization component; an ASCII renderer provides
// terminal-friendly previews.
package render

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
	"strings"

	"spinwave/internal/grid"
	"spinwave/internal/vec"
)

// Component selects which field component to render.
type Component int

const (
	// MX renders the in-plane x component (the propagating-wave pattern).
	MX Component = iota
	// MY renders the in-plane y component.
	MY
	// MZ renders the out-of-plane component.
	MZ
	// InPlane renders sqrt(mx²+my²), the precession amplitude.
	InPlane
)

// String names the component.
func (c Component) String() string {
	switch c {
	case MX:
		return "mx"
	case MY:
		return "my"
	case MZ:
		return "mz"
	case InPlane:
		return "in-plane"
	default:
		return fmt.Sprintf("Component(%d)", int(c))
	}
}

// value extracts the component from a vector.
func (c Component) value(v vec.Vector) float64 {
	switch c {
	case MX:
		return v.X
	case MY:
		return v.Y
	case MZ:
		return v.Z
	default:
		return math.Hypot(v.X, v.Y)
	}
}

// Diverging maps t ∈ [−1, 1] to a blue–white–red color (blue negative,
// red positive), the convention of the paper's Figure 5.
func Diverging(t float64) color.RGBA {
	if math.IsNaN(t) {
		return color.RGBA{R: 0, G: 0, B: 0, A: 255}
	}
	t = math.Max(-1, math.Min(1, t))
	blend := func(a, b uint8, u float64) uint8 {
		return uint8(math.Round(float64(a) + (float64(b)-float64(a))*u))
	}
	white := color.RGBA{255, 255, 255, 255}
	if t < 0 {
		blue := color.RGBA{33, 60, 181, 255}
		u := -t
		return color.RGBA{
			R: blend(white.R, blue.R, u),
			G: blend(white.G, blue.G, u),
			B: blend(white.B, blue.B, u),
			A: 255,
		}
	}
	red := color.RGBA{196, 30, 30, 255}
	return color.RGBA{
		R: blend(white.R, red.R, t),
		G: blend(white.G, red.G, t),
		B: blend(white.B, red.B, t),
		A: 255,
	}
}

// Options tune the rendering.
type Options struct {
	// Scale normalizes the component values; 0 means auto (max |value|
	// over region cells).
	Scale float64
	// Vacuum is the color for cells outside the region.
	Vacuum color.RGBA
	// PixelSize scales each cell to an n×n pixel block (min 1).
	PixelSize int
}

// Field renders the selected component over the region as an image with
// y pointing up (row 0 of the image is the top of the mesh).
func Field(mesh grid.Mesh, region grid.Region, m vec.Field, comp Component, opt Options) (*image.RGBA, error) {
	if len(m) != mesh.NCells() || len(region) != mesh.NCells() {
		return nil, fmt.Errorf("render: field/region size mismatch with mesh")
	}
	if opt.PixelSize < 1 {
		opt.PixelSize = 1
	}
	if opt.Vacuum == (color.RGBA{}) {
		opt.Vacuum = color.RGBA{245, 245, 245, 255}
	}
	scale := opt.Scale
	if scale == 0 {
		for i, on := range region {
			if !on {
				continue
			}
			if a := math.Abs(comp.value(m[i])); a > scale {
				scale = a
			}
		}
		if scale == 0 {
			scale = 1
		}
	}
	px := opt.PixelSize
	img := image.NewRGBA(image.Rect(0, 0, mesh.Nx*px, mesh.Ny*px))
	for j := 0; j < mesh.Ny; j++ {
		for i := 0; i < mesh.Nx; i++ {
			idx := mesh.Idx(i, j)
			var c color.RGBA
			if region[idx] {
				c = Diverging(comp.value(m[idx]) / scale)
			} else {
				c = opt.Vacuum
			}
			y0 := (mesh.Ny - 1 - j) * px
			for dy := 0; dy < px; dy++ {
				for dx := 0; dx < px; dx++ {
					img.SetRGBA(i*px+dx, y0+dy, c)
				}
			}
		}
	}
	return img, nil
}

// WritePNG renders the field and encodes it as PNG.
func WritePNG(w io.Writer, mesh grid.Mesh, region grid.Region, m vec.Field, comp Component, opt Options) error {
	img, err := Field(mesh, region, m, comp, opt)
	if err != nil {
		return err
	}
	return png.Encode(w, img)
}

// ASCII renders a terminal preview: one character per cell column block,
// '-'/'=' shades for negative, '+'/'#' for positive, '.' near zero,
// space for vacuum. maxWidth limits the output width by subsampling.
func ASCII(mesh grid.Mesh, region grid.Region, m vec.Field, comp Component, maxWidth int) (string, error) {
	if len(m) != mesh.NCells() || len(region) != mesh.NCells() {
		return "", fmt.Errorf("render: field/region size mismatch with mesh")
	}
	if maxWidth < 8 {
		maxWidth = 8
	}
	step := 1
	for mesh.Nx/step > maxWidth {
		step++
	}
	var scale float64
	for i, on := range region {
		if on {
			if a := math.Abs(comp.value(m[i])); a > scale {
				scale = a
			}
		}
	}
	if scale == 0 {
		scale = 1
	}
	var b strings.Builder
	for j := mesh.Ny - step; j >= 0; j -= step {
		for i := 0; i+step <= mesh.Nx; i += step {
			idx := mesh.Idx(i, j)
			if !region[idx] {
				b.WriteByte(' ')
				continue
			}
			t := comp.value(m[idx]) / scale
			switch {
			case t < -0.5:
				b.WriteByte('=')
			case t < -0.1:
				b.WriteByte('-')
			case t <= 0.1:
				b.WriteByte('.')
			case t <= 0.5:
				b.WriteByte('+')
			default:
				b.WriteByte('#')
			}
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

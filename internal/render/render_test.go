package render

import (
	"bytes"
	"image/png"
	"strings"
	"testing"

	"spinwave/internal/grid"
	"spinwave/internal/vec"
)

func stripes(mesh grid.Mesh) vec.Field {
	m := vec.NewField(mesh.NCells())
	for j := 0; j < mesh.Ny; j++ {
		for i := 0; i < mesh.Nx; i++ {
			v := 1.0
			if i%2 == 0 {
				v = -1.0
			}
			m[mesh.Idx(i, j)] = vec.V(v, 0, 0.1)
		}
	}
	return m
}

func TestDivergingEndpoints(t *testing.T) {
	neg := Diverging(-1)
	pos := Diverging(1)
	mid := Diverging(0)
	if !(neg.B > neg.R) {
		t.Errorf("negative not blue: %+v", neg)
	}
	if !(pos.R > pos.B) {
		t.Errorf("positive not red: %+v", pos)
	}
	if mid.R != 255 || mid.G != 255 || mid.B != 255 {
		t.Errorf("zero not white: %+v", mid)
	}
	// Clamp out of range.
	if Diverging(-5) != Diverging(-1) || Diverging(7) != Diverging(1) {
		t.Error("no clamping")
	}
}

func TestFieldImage(t *testing.T) {
	mesh := grid.MustMesh(8, 4, 5e-9, 5e-9, 1e-9)
	region := grid.FullRegion(mesh)
	region[mesh.Idx(0, 0)] = false // vacuum corner
	m := stripes(mesh)
	img, err := Field(mesh, region, m, MX, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := img.Bounds()
	if b.Dx() != 8 || b.Dy() != 4 {
		t.Fatalf("image size %v", b)
	}
	// Vacuum corner: light gray default. Cell (0,0) is bottom-left of the
	// mesh, so image row Ny-1.
	c := img.RGBAAt(0, 3)
	if c.R != 245 {
		t.Errorf("vacuum pixel = %+v", c)
	}
	// Stripe colors: even i negative → blue-ish, odd positive → red-ish.
	even := img.RGBAAt(2, 0)
	odd := img.RGBAAt(3, 0)
	if !(even.B > even.R) || !(odd.R > odd.B) {
		t.Errorf("stripe colors wrong: %+v %+v", even, odd)
	}
}

func TestFieldPixelSizeAndScale(t *testing.T) {
	mesh := grid.MustMesh(2, 2, 1e-9, 1e-9, 1e-9)
	m := stripes(mesh)
	img, err := Field(mesh, grid.FullRegion(mesh), m, MX, Options{PixelSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 6 || img.Bounds().Dy() != 6 {
		t.Fatalf("pixel-scaled size %v", img.Bounds())
	}
	// Zero field with explicit scale doesn't divide by zero.
	zero := vec.NewField(mesh.NCells())
	if _, err := Field(mesh, grid.FullRegion(mesh), zero, MZ, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestFieldValidation(t *testing.T) {
	mesh := grid.MustMesh(2, 2, 1e-9, 1e-9, 1e-9)
	if _, err := Field(mesh, grid.FullRegion(mesh), vec.NewField(3), MX, Options{}); err == nil {
		t.Error("mismatched field accepted")
	}
	if _, err := ASCII(mesh, grid.FullRegion(mesh), vec.NewField(3), MX, 80); err == nil {
		t.Error("mismatched ASCII field accepted")
	}
}

func TestWritePNG(t *testing.T) {
	mesh := grid.MustMesh(4, 4, 1e-9, 1e-9, 1e-9)
	var buf bytes.Buffer
	if err := WritePNG(&buf, mesh, grid.FullRegion(mesh), stripes(mesh), MX, Options{}); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 4 {
		t.Errorf("decoded size %v", img.Bounds())
	}
}

func TestASCII(t *testing.T) {
	mesh := grid.MustMesh(10, 3, 1e-9, 1e-9, 1e-9)
	region := grid.FullRegion(mesh)
	region[mesh.Idx(0, 1)] = false
	out, err := ASCII(mesh, region, stripes(mesh), MX, 80)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "=") {
		t.Errorf("missing extreme shades:\n%s", out)
	}
	if !strings.Contains(out, " ") {
		t.Error("vacuum not blank")
	}
	// Subsampling respects maxWidth.
	wide, err := ASCII(grid.MustMesh(200, 3, 1e-9, 1e-9, 1e-9), grid.FullRegion(grid.MustMesh(200, 3, 1e-9, 1e-9, 1e-9)), stripes(grid.MustMesh(200, 3, 1e-9, 1e-9, 1e-9)), MX, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range strings.Split(strings.TrimRight(wide, "\n"), "\n") {
		if len(l) > 40 {
			t.Errorf("line longer than maxWidth: %d", len(l))
		}
	}
}

func TestComponentValueAndString(t *testing.T) {
	v := vec.V(3, 4, 5)
	if MX.value(v) != 3 || MY.value(v) != 4 || MZ.value(v) != 5 {
		t.Error("component values wrong")
	}
	if InPlane.value(v) != 5 { // hypot(3,4)
		t.Errorf("in-plane = %g", InPlane.value(v))
	}
	for c, name := range map[Component]string{MX: "mx", MY: "my", MZ: "mz", InPlane: "in-plane"} {
		if c.String() != name {
			t.Errorf("%d name = %s", c, c.String())
		}
	}
	if Component(9).String() == "" {
		t.Error("unknown component empty")
	}
}

package energy

import (
	"math"
	"testing"

	"spinwave/internal/units"
)

func TestMECellDefaults(t *testing.T) {
	me := DefaultMECell()
	if math.Abs(me.Power-34.4e-9) > 1e-18 {
		t.Errorf("power = %g, want 34.4 nW", me.Power)
	}
	if math.Abs(me.Delay-0.42e-9) > 1e-18 {
		t.Errorf("delay = %g, want 0.42 ns", me.Delay)
	}
	if DefaultPulse != 100e-12 {
		t.Errorf("pulse = %g, want 100 ps", DefaultPulse)
	}
}

// TestTableIIIEnergies verifies the headline Table III numbers.
func TestTableIIIEnergies(t *testing.T) {
	cases := []struct {
		gate     SWGate
		cells    int
		energyAJ float64
	}{
		{TriangleMAJ3(), 5, 10.3},
		{TriangleXOR(), 4, 6.9},
		// 4 · 3.44 aJ = 13.76 aJ; the paper prints 13.7 (truncated), we
		// round to 13.8.
		{LadderMAJ3(), 6, 13.8},
		{LadderXOR(), 6, 13.8},
	}
	for _, c := range cases {
		if err := c.gate.Validate(); err != nil {
			t.Fatalf("%s: %v", c.gate.Name, err)
		}
		if got := c.gate.Cells(); got != c.cells {
			t.Errorf("%s cells = %d, want %d", c.gate.Name, got, c.cells)
		}
		if got := math.Round(units.ToAJ(c.gate.Energy())*10) / 10; got != c.energyAJ {
			t.Errorf("%s energy = %g aJ, want %g", c.gate.Name, got, c.energyAJ)
		}
		if got := math.Round(units.ToNS(c.gate.Delay())*10) / 10; got != 0.4 {
			t.Errorf("%s delay = %g ns, want 0.4", c.gate.Name, got)
		}
	}
}

func TestTrianglePropertiesVsLadder(t *testing.T) {
	tri, lad := TriangleMAJ3(), LadderMAJ3()
	if !tri.EqualExcitation {
		t.Error("triangle should allow equal excitation levels")
	}
	if tri.ReplicatedInput {
		t.Error("triangle should not replicate inputs")
	}
	if !lad.ReplicatedInput {
		t.Error("ladder replicates an input")
	}
	if lad.ExcitationCells != tri.ExcitationCells+1 {
		t.Errorf("ladder should need exactly one extra exciting cell: %d vs %d",
			lad.ExcitationCells, tri.ExcitationCells)
	}
	if tri.Energy() >= lad.Energy() {
		t.Error("triangle must consume less energy than ladder")
	}
	if tri.Delay() != lad.Delay() {
		t.Error("paper: same delay as the state-of-the-art SW gates")
	}
}

func TestValidate(t *testing.T) {
	bad := []SWGate{
		{Name: "noExc", DetectionCells: 1, ME: DefaultMECell(), Pulse: DefaultPulse},
		{Name: "noDet", ExcitationCells: 1, ME: DefaultMECell(), Pulse: DefaultPulse},
		{Name: "noME", ExcitationCells: 1, DetectionCells: 1, Pulse: DefaultPulse},
		{Name: "noPulse", ExcitationCells: 1, DetectionCells: 1, ME: DefaultMECell()},
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("%s accepted", g.Name)
		}
	}
}

func TestCMOSReferences(t *testing.T) {
	refs := CMOSReferences()
	if len(refs) != 4 {
		t.Fatalf("refs = %d", len(refs))
	}
	// Table III: 16 devices for MAJ (4 NANDs), 8 for XOR.
	for _, g := range refs {
		want := 16
		if g.Function == "XOR" {
			want = 8
		}
		if g.Cells() != want {
			t.Errorf("%s devices = %d, want %d", g.Name, g.Cells(), want)
		}
	}
	if math.Abs(units.ToAJ(refs[0].Energy())-466) > 1e-9 {
		t.Errorf("16nm MAJ energy = %g", units.ToAJ(refs[0].Energy()))
	}
	if units.ToNS(refs[3].Delay()) != 0.01 {
		t.Errorf("7nm XOR delay = %g", units.ToNS(refs[3].Delay()))
	}
}

func TestComparisonTableShape(t *testing.T) {
	tab := ComparisonTable()
	if len(tab) != 8 {
		t.Fatalf("table rows = %d, want 8", len(tab))
	}
	// The last two rows are this work; they must have the lowest SW
	// energies.
	var thisWorkMAJ, thisWorkXOR, ladderMAJ, ladderXOR Entry
	for _, e := range tab {
		switch e.Design {
		case "triangle MAJ3 (this work)":
			thisWorkMAJ = e
		case "triangle XOR (this work)":
			thisWorkXOR = e
		case "ladder MAJ3 [22,23]":
			ladderMAJ = e
		case "ladder XOR [22,23]":
			ladderXOR = e
		}
	}
	if thisWorkMAJ.EnergyAJ != 10.3 || thisWorkXOR.EnergyAJ != 6.9 {
		t.Errorf("this work energies = %g, %g", thisWorkMAJ.EnergyAJ, thisWorkXOR.EnergyAJ)
	}
	if ladderMAJ.EnergyAJ != 13.8 || ladderXOR.EnergyAJ != 13.8 {
		t.Errorf("ladder energies = %g, %g (13.76 exact; paper prints 13.7)", ladderMAJ.EnergyAJ, ladderXOR.EnergyAJ)
	}
	if thisWorkMAJ.DelayNS != 0.4 || ladderMAJ.DelayNS != 0.4 {
		t.Errorf("SW delays = %g, %g, want 0.4", thisWorkMAJ.DelayNS, ladderMAJ.DelayNS)
	}
}

// TestDerivedRatiosMatchPaper checks every §IV-D claim against the
// derived value: the 25%/50% savings, 0.8x/1.6x/43x energy ratios and
// 13x/20x/40x delay overheads must match; the "45x vs 11x" MAJ/16nm
// discrepancy in the paper's §IV-D prose is recorded in EXPERIMENTS.md.
func TestDerivedRatiosMatchPaper(t *testing.T) {
	for _, r := range Ratios() {
		if r.PaperVal == 0 {
			continue
		}
		tol := 0.06 * r.PaperVal // 6% slack for the paper's rounding
		if math.Abs(r.Value-r.PaperVal) > tol {
			t.Errorf("%s = %.2f%s, paper says %g%s", r.Name, r.Value, r.Unit, r.PaperVal, r.Unit)
		}
	}
}

func TestRatioHighlights(t *testing.T) {
	byName := map[string]Ratio{}
	for _, r := range Ratios() {
		byName[r.Name] = r
	}
	if r := byName["MAJ energy saving vs ladder SW [22]"]; math.Abs(r.Value-24.8) > 1 {
		t.Errorf("MAJ saving = %.1f%%, want ≈25%%", r.Value)
	}
	if r := byName["XOR energy saving vs ladder SW [22,23]"]; math.Abs(r.Value-49.6) > 1 {
		t.Errorf("XOR saving = %.1f%%, want ≈50%%", r.Value)
	}
	if r := byName["XOR delay overhead vs 7nm CMOS"]; math.Abs(r.Value-40) > 1 {
		t.Errorf("XOR delay overhead = %.1fx, want 40x", r.Value)
	}
}

package energy

// Budget is a per-term breakdown of the micromagnetic energy (J) of one
// magnetization configuration — the payload of the flight recorder's
// energy probes (DESIGN.md §11). The terms mirror the effective-field
// composition in internal/mag: Heisenberg exchange A·|∇m|², uniaxial
// anisotropy Ku1·(1−(m·u)²), the thin-film demagnetization well
// ½µ0Ms²·mz², and the Zeeman coupling −Ms·m·B to the bias field.
//
// It lives in this package (the paper's §IV-D energy model) so both
// tiers of energy accounting — the aJ-scale transducer budget of
// Table III and the micromagnetic field energies sampled during a run —
// share one home; internal/mag fills a Budget via its EnergyBudget
// method without importing anything beyond this leaf package.
type Budget struct {
	Exchange   float64 `json:"exchange"`
	Anisotropy float64 `json:"anisotropy"`
	Demag      float64 `json:"demag"`
	Zeeman     float64 `json:"zeeman"`
}

// Total returns the summed energy of all terms (J).
func (b Budget) Total() float64 {
	return b.Exchange + b.Anisotropy + b.Demag + b.Zeeman
}

// Add accumulates o into b term by term and returns the sum.
func (b Budget) Add(o Budget) Budget {
	b.Exchange += o.Exchange
	b.Anisotropy += o.Anisotropy
	b.Demag += o.Demag
	b.Zeeman += o.Zeeman
	return b
}

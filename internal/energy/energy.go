// Package energy implements the paper's performance model (§IV-D):
// transducer-dominated energy and delay estimates for spin-wave gates
// under the paper's assumptions (i)–(vi), the published 16 nm / 7 nm CMOS
// reference numbers, and the generator for Table III including the
// derived comparison ratios quoted in the abstract and §IV-D.
//
// Model recap (paper assumptions):
//
//	(i)   ME cells excite and detect the spin waves.
//	(ii)  An ME cell consumes 34.4 nW for its 0.42 ns operation [42].
//	(iii) Waveguide propagation delay is neglected.
//	(iv)  Waveguide propagation loss is neglected vs. transducer loss.
//	(v)   Outputs feed the next gate directly (no extra readout cost).
//	(vi)  Excitation uses 100 ps pulses, so each *exciting* cell spends
//	      E = P·t_pulse = 34.4 nW · 100 ps = 3.44 aJ; detection cells are
//	      driven by the incoming wave and add no excitation energy.
//
// Under (vi) a gate's energy is N_excite · 3.44 aJ, which reproduces the
// paper's Table III exactly: MAJ (this work, 3 exciting cells) = 10.3 aJ,
// XOR (this work, 2) = 6.9 aJ, ladder-shape MAJ/XOR [22,23] (4) = 13.7 aJ.
package energy

import (
	"fmt"
	"math"

	"spinwave/internal/units"
)

// MECell is a magnetoelectric transducer operating point.
type MECell struct {
	Power float64 // W
	Delay float64 // s
}

// DefaultMECell returns the paper's ME cell numbers from ref [42]:
// 34.4 nW and 0.42 ns.
func DefaultMECell() MECell {
	return MECell{Power: units.NW(34.4), Delay: units.NS(0.42)}
}

// DefaultPulse is the paper's excitation pulse duration (assumption (vi)).
const DefaultPulse = 100e-12 // 100 ps

// SWGate is the transducer-level cost model of one spin-wave gate.
type SWGate struct {
	Name            string
	Function        string // "MAJ" or "XOR"
	ExcitationCells int    // transducers that actively excite spin waves
	DetectionCells  int    // passive output transducers
	ME              MECell
	Pulse           float64 // excitation pulse duration, s
	// ReplicatedInput marks designs that must replicate an input through
	// an extra transducer to achieve fan-out (the ladder shape [22,23]).
	ReplicatedInput bool
	// EqualExcitation is true when all inputs can be excited at the same
	// energy level (the triangle shape's advantage, §IV-D).
	EqualExcitation bool
}

// Validate checks the cost model.
func (g SWGate) Validate() error {
	if g.ExcitationCells < 1 {
		return fmt.Errorf("energy: gate %s needs at least one exciting cell", g.Name)
	}
	if g.DetectionCells < 1 {
		return fmt.Errorf("energy: gate %s needs at least one detection cell", g.Name)
	}
	if g.ME.Power <= 0 || g.ME.Delay <= 0 {
		return fmt.Errorf("energy: gate %s has invalid ME cell %+v", g.Name, g.ME)
	}
	if g.Pulse <= 0 {
		return fmt.Errorf("energy: gate %s has invalid pulse %g", g.Name, g.Pulse)
	}
	return nil
}

// Cells returns the total transducer count (Table III "Used cell No.").
func (g SWGate) Cells() int { return g.ExcitationCells + g.DetectionCells }

// Energy returns the per-operation energy in joules:
// N_excite · P_ME · t_pulse (assumption (vi)).
func (g SWGate) Energy() float64 {
	return float64(g.ExcitationCells) * g.ME.Power * g.Pulse
}

// Delay returns the gate delay in seconds. Under assumption (iii) the
// delay is the ME cell response time.
func (g SWGate) Delay() float64 { return g.ME.Delay }

// TriangleMAJ3 returns this work's fan-out-of-2 Majority gate cost:
// 3 exciting inputs + 2 detecting outputs = 5 cells.
func TriangleMAJ3() SWGate {
	return SWGate{
		Name:            "triangle MAJ3 (this work)",
		Function:        "MAJ",
		ExcitationCells: 3,
		DetectionCells:  2,
		ME:              DefaultMECell(),
		Pulse:           DefaultPulse,
		EqualExcitation: true,
	}
}

// TriangleXOR returns this work's fan-out-of-2 XOR gate cost:
// 2 exciting inputs + 2 detecting outputs = 4 cells.
func TriangleXOR() SWGate {
	return SWGate{
		Name:            "triangle XOR (this work)",
		Function:        "XOR",
		ExcitationCells: 2,
		DetectionCells:  2,
		ME:              DefaultMECell(),
		Pulse:           DefaultPulse,
		EqualExcitation: true,
	}
}

// TriangleMAJ3Single returns the simplified single-output Majority gate
// (§III-A: one side removed): 3 exciting inputs + 1 detecting output.
func TriangleMAJ3Single() SWGate {
	return SWGate{
		Name:            "triangle MAJ3 single-output",
		Function:        "MAJ",
		ExcitationCells: 3,
		DetectionCells:  1,
		ME:              DefaultMECell(),
		Pulse:           DefaultPulse,
		EqualExcitation: true,
	}
}

// TriangleXORSingle returns a single-output XOR gate variant used by the
// fan-out cost comparisons: 2 exciting inputs + 1 detecting output.
func TriangleXORSingle() SWGate {
	return SWGate{
		Name:            "triangle XOR single-output",
		Function:        "XOR",
		ExcitationCells: 2,
		DetectionCells:  1,
		ME:              DefaultMECell(),
		Pulse:           DefaultPulse,
		EqualExcitation: true,
	}
}

// LadderMAJ3 returns the ladder-shape FO2 Majority gate of refs [22,23]:
// 3 inputs + 1 replicated input transducer + 2 outputs = 6 cells, with
// input excitation levels that depend on the path (§IV-D).
func LadderMAJ3() SWGate {
	return SWGate{
		Name:            "ladder MAJ3 [22,23]",
		Function:        "MAJ",
		ExcitationCells: 4,
		DetectionCells:  2,
		ME:              DefaultMECell(),
		Pulse:           DefaultPulse,
		ReplicatedInput: true,
	}
}

// LadderXOR returns the ladder-shape FO2 XOR gate of refs [22,23]:
// 2 inputs + 2 replicated-input transducers + 2 outputs = 6 cells.
func LadderXOR() SWGate {
	return SWGate{
		Name:            "ladder XOR [22,23]",
		Function:        "XOR",
		ExcitationCells: 4,
		DetectionCells:  2,
		ME:              DefaultMECell(),
		Pulse:           DefaultPulse,
		ReplicatedInput: true,
	}
}

// CMOSGate is a published CMOS reference point ([40] for 16 nm graphene-
// comparable CMOS, [41] for 7 nm).
type CMOSGate struct {
	Name     string
	Tech     string // "16nm" or "7nm"
	Function string // "MAJ" or "XOR"
	Devices  int    // transistor count (Table III "Used cell No.")
	DelayS   float64
	EnergyJ  float64
}

// Delay returns the gate delay in seconds.
func (g CMOSGate) Delay() float64 { return g.DelayS }

// Energy returns the per-operation energy in joules.
func (g CMOSGate) Energy() float64 { return g.EnergyJ }

// Cells returns the device count.
func (g CMOSGate) Cells() int { return g.Devices }

// CMOSReferences returns the paper's Table III CMOS entries. A 3-input
// Majority is built from 4 NAND gates (16 devices); XOR uses 8 devices.
func CMOSReferences() []CMOSGate {
	return []CMOSGate{
		{Name: "16nm CMOS MAJ", Tech: "16nm", Function: "MAJ", Devices: 16, DelayS: units.NS(0.03), EnergyJ: units.AJ(466)},
		{Name: "16nm CMOS XOR", Tech: "16nm", Function: "XOR", Devices: 8, DelayS: units.NS(0.03), EnergyJ: units.AJ(303)},
		{Name: "7nm CMOS MAJ", Tech: "7nm", Function: "MAJ", Devices: 16, DelayS: units.NS(0.02), EnergyJ: units.AJ(16.4)},
		{Name: "7nm CMOS XOR", Tech: "7nm", Function: "XOR", Devices: 8, DelayS: units.NS(0.01), EnergyJ: units.AJ(5.4)},
	}
}

// Entry is one column of Table III.
type Entry struct {
	Design   string
	Tech     string
	Function string
	Cells    int
	DelayNS  float64 // displayed with the paper's 1-decimal rounding
	EnergyAJ float64
}

// ComparisonTable generates the paper's Table III. Delays are rounded to
// 0.1 ns and energies to 0.1 aJ exactly as the paper displays them; the
// derived ratios in Ratios() use these displayed values so they
// reproduce the quoted 25%/50%, 43x–0.8x and 13x–40x figures.
func ComparisonTable() []Entry {
	var out []Entry
	for _, g := range CMOSReferences() {
		out = append(out, Entry{
			Design:   g.Name,
			Tech:     g.Tech + " CMOS",
			Function: g.Function,
			Cells:    g.Devices,
			DelayNS:  round1(units.ToNS(g.Delay())*100) / 100, // keep 2 decimals for CMOS (0.03 etc.)
			EnergyAJ: round1(units.ToAJ(g.Energy())),
		})
	}
	for _, g := range []SWGate{LadderMAJ3(), LadderXOR(), TriangleMAJ3(), TriangleXOR()} {
		out = append(out, Entry{
			Design:   g.Name,
			Tech:     "SW",
			Function: g.Function,
			Cells:    g.Cells(),
			DelayNS:  round1(units.ToNS(g.Delay())),
			EnergyAJ: round1(units.ToAJ(g.Energy())),
		})
	}
	return out
}

func round1(v float64) float64 { return math.Round(v*10) / 10 }

// Ratio is one derived comparison claim.
type Ratio struct {
	Name     string
	Value    float64
	PaperVal float64 // the figure quoted in the paper (0 when not quoted)
	Unit     string  // "x" or "%"
}

// Ratios derives the §IV-D comparison figures from the Table III values.
func Ratios() []Ratio {
	triMAJ, triXOR := TriangleMAJ3(), TriangleXOR()
	ladMAJ, ladXOR := LadderMAJ3(), LadderXOR()
	refs := CMOSReferences()
	cm16MAJ, cm16XOR, cm7MAJ, cm7XOR := refs[0], refs[1], refs[2], refs[3]

	eTriMAJ := round1(units.ToAJ(triMAJ.Energy()))
	eTriXOR := round1(units.ToAJ(triXOR.Energy()))
	eLadMAJ := round1(units.ToAJ(ladMAJ.Energy()))
	eLadXOR := round1(units.ToAJ(ladXOR.Energy()))
	dSW := round1(units.ToNS(triMAJ.Delay())) // 0.4 ns as displayed

	return []Ratio{
		{Name: "MAJ energy saving vs ladder SW [22]", Value: 100 * (1 - eTriMAJ/eLadMAJ), PaperVal: 25, Unit: "%"},
		{Name: "XOR energy saving vs ladder SW [22,23]", Value: 100 * (1 - eTriXOR/eLadXOR), PaperVal: 50, Unit: "%"},
		{Name: "MAJ energy reduction vs 16nm CMOS", Value: units.ToAJ(cm16MAJ.Energy()) / eTriMAJ, PaperVal: 45, Unit: "x"},
		{Name: "MAJ energy reduction vs 7nm CMOS", Value: units.ToAJ(cm7MAJ.Energy()) / eTriMAJ, PaperVal: 1.6, Unit: "x"},
		{Name: "XOR energy reduction vs 16nm CMOS", Value: units.ToAJ(cm16XOR.Energy()) / eTriXOR, PaperVal: 43, Unit: "x"},
		{Name: "XOR energy reduction vs 7nm CMOS", Value: units.ToAJ(cm7XOR.Energy()) / eTriXOR, PaperVal: 0.8, Unit: "x"},
		{Name: "MAJ delay overhead vs 16nm CMOS", Value: dSW / units.ToNS(cm16MAJ.Delay()), PaperVal: 13, Unit: "x"},
		{Name: "MAJ delay overhead vs 7nm CMOS", Value: dSW / units.ToNS(cm7MAJ.Delay()), PaperVal: 20, Unit: "x"},
		{Name: "XOR delay overhead vs 16nm CMOS", Value: dSW / units.ToNS(cm16XOR.Delay()), PaperVal: 13, Unit: "x"},
		{Name: "XOR delay overhead vs 7nm CMOS", Value: dSW / units.ToNS(cm7XOR.Delay()), PaperVal: 40, Unit: "x"},
	}
}

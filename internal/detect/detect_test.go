package detect

import (
	"math"
	"testing"

	"spinwave/internal/vec"
)

func TestNewProbeValidation(t *testing.T) {
	if _, err := NewProbe("p", nil); err == nil {
		t.Error("empty probe accepted")
	}
}

// fillProbe records a synthetic oscillation a·sin(2πft+φ) on a 2-cell probe.
func fillProbe(t *testing.T, f, a, phi, fs float64, n int) *Probe {
	t.Helper()
	p, err := NewProbe("p", []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	m := vec.NewField(2)
	for i := 0; i < n; i++ {
		tt := float64(i) / fs
		v := a * math.Sin(2*math.Pi*f*tt+phi)
		m[0] = vec.V(v, 0, 1)
		m[1] = vec.V(v, 0, 1)
		p.Sample(tt, m)
	}
	return p
}

func TestLockInAmplitudePhase(t *testing.T) {
	f := 10e9
	fs := 40 * f
	p := fillProbe(t, f, 0.02, 0, fs, 800) // 20 periods
	r, err := p.LockIn(f, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Amplitude-0.02) > 1e-6 {
		t.Errorf("amplitude = %g, want 0.02", r.Amplitude)
	}
	// A π-shifted trace reads π away in phase.
	p2 := fillProbe(t, f, 0.02, math.Pi, fs, 800)
	r2, err := p2.LockIn(f, 5)
	if err != nil {
		t.Fatal(err)
	}
	d := math.Abs(math.Mod(math.Abs(r2.Phase-r.Phase), 2*math.Pi) - math.Pi)
	if d > 1e-6 {
		t.Errorf("phase difference deviates from π by %g", d)
	}
}

func TestLockInRemovesDCOffset(t *testing.T) {
	f := 10e9
	fs := 40 * f
	p, _ := NewProbe("p", []int{0})
	m := vec.NewField(1)
	for i := 0; i < 800; i++ {
		tt := float64(i) / fs
		m[0] = vec.V(0.5+0.01*math.Sin(2*math.Pi*f*tt), 0, 1)
		p.Sample(tt, m)
	}
	r, err := p.LockIn(f, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Amplitude-0.01) > 1e-6 {
		t.Errorf("amplitude with DC offset = %g, want 0.01", r.Amplitude)
	}
}

func TestLockInErrors(t *testing.T) {
	p, _ := NewProbe("p", []int{0})
	if _, err := p.LockIn(1e9, 1); err == nil {
		t.Error("lock-in with no samples accepted")
	}
	m := vec.NewField(1)
	for i := 0; i < 10; i++ {
		p.Sample(0, m) // all time stamps equal → dt = 0
	}
	if _, err := p.LockIn(1e9, 1); err == nil {
		t.Error("non-increasing time stamps accepted")
	}
	// Too coarse sampling: 2 samples per window impossible.
	q, _ := NewProbe("q", []int{0})
	for i := 0; i < 10; i++ {
		q.Sample(float64(i), m) // 1 s sampling, ask for 1 GHz
	}
	if _, err := q.LockIn(1e9, 1); err == nil {
		t.Error("coarse sampling accepted")
	}
}

func TestProbeResetAndAccessors(t *testing.T) {
	p := fillProbe(t, 1e9, 0.1, 0, 1e11, 50)
	if p.Len() != 50 {
		t.Errorf("Len = %d", p.Len())
	}
	if len(p.Times()) != 50 || len(p.MX()) != 50 || len(p.MY()) != 50 || len(p.MZ()) != 50 {
		t.Error("accessors length mismatch")
	}
	if p.MZ()[0] != 1 {
		t.Errorf("MZ[0] = %g", p.MZ()[0])
	}
	p.Reset()
	if p.Len() != 0 {
		t.Errorf("Len after Reset = %d", p.Len())
	}
}

func TestPhaseDetector(t *testing.T) {
	d := PhaseDetector{RefPhase: 0.3}
	if d.Detect(Readout{Phase: 0.3}) {
		t.Error("reference phase detected as logic 1")
	}
	if !d.Detect(Readout{Phase: 0.3 + math.Pi}) {
		t.Error("π-shifted phase detected as logic 0")
	}
	// Wrapping: phase −π relative to ref +π/2... boundary regions.
	if d.Detect(Readout{Phase: 0.3 + 1.0}) {
		t.Error("phase within π/2 of reference detected as logic 1")
	}
	if !d.Detect(Readout{Phase: 0.3 - 2.0}) {
		t.Error("phase beyond π/2 of reference detected as logic 0")
	}
}

func TestThresholdDetector(t *testing.T) {
	d := ThresholdDetector{Threshold: 0.5, RefAmp: 0.02}
	// Paper §III-B: above threshold ⇒ logic 0; below ⇒ logic 1.
	if d.Detect(Readout{Amplitude: 0.019}) { // normalized 0.95
		t.Error("strong output detected as logic 1")
	}
	if !d.Detect(Readout{Amplitude: 0.001}) { // normalized 0.05
		t.Error("weak output detected as logic 0")
	}
	if got := d.Normalized(Readout{Amplitude: 0.01}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Normalized = %g", got)
	}
	// XNOR: flipped condition.
	x := ThresholdDetector{Threshold: 0.5, RefAmp: 0.02, Inverted: true}
	if !x.Detect(Readout{Amplitude: 0.019}) {
		t.Error("XNOR strong output detected as logic 0")
	}
	if x.Detect(Readout{Amplitude: 0.001}) {
		t.Error("XNOR weak output detected as logic 1")
	}
	// Zero reference amplitude degrades safely.
	z := ThresholdDetector{Threshold: 0.5}
	if got := z.Normalized(Readout{Amplitude: 1}); got != 0 {
		t.Errorf("Normalized with zero ref = %g", got)
	}
}

// Package detect implements the output stage of a spin-wave device
// (paper §II-B stage 4): probes that record the average in-plane
// magnetization of a detection region over time, lock-in analysis of the
// recorded trace at the drive frequency, and the two readout schemes the
// paper uses — phase detection (Majority gate, §III-A) and threshold
// detection (XOR gate, §III-B).
package detect

import (
	"fmt"
	"math"

	"spinwave/internal/dsp"
	"spinwave/internal/vec"
)

// Probe records the spatially averaged magnetization of a cell set.
type Probe struct {
	Name  string
	Cells []int

	times []float64
	mx    []float64
	my    []float64
	mz    []float64
}

// NewProbe constructs a probe over the given flat cell indices.
func NewProbe(name string, cells []int) (*Probe, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("detect: probe %q covers no cells", name)
	}
	return &Probe{Name: name, Cells: cells}, nil
}

// Sample appends the current average magnetization over the probe cells.
func (p *Probe) Sample(t float64, m vec.Field) {
	avg := m.Average(p.Cells)
	p.times = append(p.times, t)
	p.mx = append(p.mx, avg.X)
	p.my = append(p.my, avg.Y)
	p.mz = append(p.mz, avg.Z)
}

// Len returns the number of recorded samples.
func (p *Probe) Len() int { return len(p.times) }

// Reset clears the recorded trace (keeps the cell set).
func (p *Probe) Reset() {
	p.times = p.times[:0]
	p.mx = p.mx[:0]
	p.my = p.my[:0]
	p.mz = p.mz[:0]
}

// Restore replaces the recorded trace with the given sample series —
// the checkpoint-resume path (DESIGN.md §15): a resumed run reloads the
// samples accumulated before the interruption so the final lock-in
// window sees exactly the trace an uninterrupted run would have. The
// four slices must have equal length; they are copied.
func (p *Probe) Restore(times, mx, my, mz []float64) error {
	n := len(times)
	if len(mx) != n || len(my) != n || len(mz) != n {
		return fmt.Errorf("detect: probe %q restore: mismatched sample lengths %d/%d/%d/%d",
			p.Name, n, len(mx), len(my), len(mz))
	}
	p.times = append(p.times[:0], times...)
	p.mx = append(p.mx[:0], mx...)
	p.my = append(p.my[:0], my...)
	p.mz = append(p.mz[:0], mz...)
	return nil
}

// Times returns the sample time stamps.
func (p *Probe) Times() []float64 { return p.times }

// MX returns the recorded average in-plane x component, the precession
// component analyzed by the lock-in.
func (p *Probe) MX() []float64 { return p.mx }

// MY returns the recorded average y component.
func (p *Probe) MY() []float64 { return p.my }

// MZ returns the recorded average z component.
func (p *Probe) MZ() []float64 { return p.mz }

// Readout is the lock-in result at one probe.
type Readout struct {
	Probe     string
	Amplitude float64 // precession amplitude of ⟨mx⟩ at the drive frequency
	Phase     float64 // phase in (−π, π]
}

// Phasor returns the readout as a complex amplitude A·e^(iφ) — the
// linear-superposition representation the surrogate model stores and
// sums (a lock-in measurement at fixed frequency is exactly one phasor).
func (r Readout) Phasor() complex128 {
	return complex(r.Amplitude*math.Cos(r.Phase), r.Amplitude*math.Sin(r.Phase))
}

// FromPhasor converts a complex amplitude back into a Readout for the
// named probe, the inverse of Phasor.
func FromPhasor(probe string, v complex128) Readout {
	return Readout{
		Probe:     probe,
		Amplitude: math.Hypot(real(v), imag(v)),
		Phase:     math.Atan2(imag(v), real(v)),
	}
}

// LockIn analyzes the final window of the probe's mx trace at frequency f.
// The window covers the last `periods` full drive periods (at least one
// sample). It returns an error when fewer samples than one period are
// available or the sampling is irregular enough to be meaningless.
func (p *Probe) LockIn(f float64, periods int) (Readout, error) {
	if len(p.times) < 4 {
		return Readout{}, fmt.Errorf("detect: probe %q has only %d samples", p.Name, len(p.times))
	}
	if periods < 1 {
		periods = 1
	}
	dt := (p.times[len(p.times)-1] - p.times[0]) / float64(len(p.times)-1)
	if dt <= 0 {
		return Readout{}, fmt.Errorf("detect: probe %q has non-increasing time stamps", p.Name)
	}
	fs := 1 / dt
	window := int(math.Round(float64(periods) / f / dt))
	if window < 2 {
		return Readout{}, fmt.Errorf("detect: probe %q sampled too coarsely for f=%g", p.Name, f)
	}
	if window > len(p.mx) {
		window = len(p.mx)
	}
	seg := dsp.Detrend(p.mx[len(p.mx)-window:])
	amp, phase, err := dsp.Goertzel(seg, fs, f)
	if err != nil {
		return Readout{}, fmt.Errorf("detect: probe %q: %w", p.Name, err)
	}
	// Anchor the phase to the global t = 0 drive clock rather than the
	// analysis-window start, so readouts from runs of different lengths
	// are directly comparable (a hardware lock-in references the drive
	// oscillator the same way).
	t0 := p.times[len(p.times)-window]
	phase = dsp.PhaseDiff(phase, 2*math.Pi*f*t0)
	return Readout{Probe: p.Name, Amplitude: amp, Phase: phase}, nil
}

// PhaseDetector implements the paper's phase readout: an output whose
// phase is within π/2 of the reference is logic 0, otherwise logic 1.
type PhaseDetector struct {
	RefPhase float64 // phase representing logic 0
}

// Detect returns the logic level for a readout phase.
func (d PhaseDetector) Detect(r Readout) bool {
	return math.Abs(dsp.PhaseDiff(r.Phase, d.RefPhase)) > math.Pi/2
}

// ThresholdDetector implements the paper's threshold readout for the
// X(N)OR gate: normalized magnetization above the threshold is logic 0
// and below is logic 1; Inverted flips the convention, yielding XNOR
// (§III-B).
type ThresholdDetector struct {
	Threshold float64 // compare against normalized amplitude, paper uses 0.5
	RefAmp    float64 // amplitude representing "1.0" (the {0,0} case)
	Inverted  bool
}

// Normalized returns the normalized amplitude r.Amplitude / RefAmp.
func (d ThresholdDetector) Normalized(r Readout) float64 {
	if d.RefAmp == 0 {
		return 0
	}
	return r.Amplitude / d.RefAmp
}

// Detect returns the logic level for a readout.
func (d ThresholdDetector) Detect(r Readout) bool {
	above := d.Normalized(r) > d.Threshold
	if d.Inverted {
		return above
	}
	return !above
}

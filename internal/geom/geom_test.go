package geom

import (
	"math"
	"testing"
	"testing/quick"

	"spinwave/internal/grid"
)

func TestPointOps(t *testing.T) {
	p, q := P(1, 2), P(3, -1)
	if got := p.Add(q); got != P(4, 1) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != P(-2, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != P(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := P(0, 0).Dist(P(3, 4)); got != 5 {
		t.Errorf("Dist = %v", got)
	}
	if got := P(3, 4).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
}

func TestCapsuleContains(t *testing.T) {
	c := Capsule{A: P(0, 0), B: P(10, 0), W: 2}
	cases := []struct {
		x, y float64
		in   bool
	}{
		{5, 0, true},
		{5, 0.99, true},
		{5, 1.01, false},
		{-0.5, 0, true},   // inside rounded cap
		{-1.01, 0, false}, // beyond cap
		{10.9, 0.2, true},
		{11.5, 0, false},
	}
	for _, tc := range cases {
		if got := c.Contains(tc.x, tc.y); got != tc.in {
			t.Errorf("Contains(%g,%g) = %v, want %v", tc.x, tc.y, got, tc.in)
		}
	}
	if got := c.Length(); got != 10 {
		t.Errorf("Length = %v", got)
	}
}

func TestCapsuleDegenerate(t *testing.T) {
	// Zero-length capsule degrades to a disk.
	c := Capsule{A: P(1, 1), B: P(1, 1), W: 4}
	if !c.Contains(1, 2.9) {
		t.Error("point inside degenerate capsule reported outside")
	}
	if c.Contains(1, 3.1) {
		t.Error("point outside degenerate capsule reported inside")
	}
}

func TestCapsuleBounds(t *testing.T) {
	c := Capsule{A: P(0, 0), B: P(10, 5), W: 2}
	b := c.Bounds()
	if b.Min != P(-1, -1) || b.Max != P(11, 6) {
		t.Errorf("Bounds = %+v", b)
	}
}

func TestRectCircle(t *testing.T) {
	r := Rect{Min: P(0, 0), Max: P(2, 1)}
	if !r.Contains(1, 0.5) || r.Contains(3, 0.5) || r.Contains(1, -0.1) {
		t.Error("Rect.Contains wrong")
	}
	c := Circle{C: P(0, 0), R: 1}
	if !c.Contains(0.7, 0.7) || c.Contains(0.8, 0.8) {
		t.Error("Circle.Contains wrong")
	}
	cb := c.Bounds()
	if cb.Min != P(-1, -1) || cb.Max != P(1, 1) {
		t.Errorf("Circle.Bounds = %+v", cb)
	}
}

func TestPolygonContains(t *testing.T) {
	tri := Triangle(P(0, 0), P(4, 0), P(0, 4))
	if !tri.Contains(1, 1) {
		t.Error("interior point reported outside triangle")
	}
	if tri.Contains(3, 3) {
		t.Error("exterior point reported inside triangle")
	}
	if (Polygon{V: []Point{P(0, 0), P(1, 1)}}).Contains(0.5, 0.5) {
		t.Error("degenerate 2-vertex polygon contains a point")
	}
	b := tri.Bounds()
	if b.Min != P(0, 0) || b.Max != P(4, 4) {
		t.Errorf("triangle bounds = %+v", b)
	}
	if got := (Polygon{}).Bounds(); got != (BBox{}) {
		t.Errorf("empty polygon bounds = %+v", got)
	}
}

// Property: points strictly inside the triangle by barycentric construction
// are reported inside.
func TestPolygonBarycentricProperty(t *testing.T) {
	tri := Triangle(P(0, 0), P(10, 0), P(2, 8))
	f := func(u, v float64) bool {
		// Map arbitrary floats into (0,1) weights bounded away from edges.
		a := 0.05 + 0.9*frac(u)
		b := 0.05 + 0.9*frac(v)
		if a+b >= 0.98 {
			return true
		}
		c := 1 - a - b
		x := a*0 + b*10 + c*2
		y := a*0 + b*0 + c*8
		return tri.Contains(x, y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func frac(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	f := math.Abs(x - math.Trunc(x))
	return f
}

func TestComposites(t *testing.T) {
	a := Rect{Min: P(0, 0), Max: P(2, 2)}
	b := Rect{Min: P(1, 1), Max: P(3, 3)}
	u := Union(a, b)
	if !u.Contains(0.5, 0.5) || !u.Contains(2.5, 2.5) || u.Contains(2.5, 0.5) {
		t.Error("Union membership wrong")
	}
	n := Intersect(a, b)
	if !n.Contains(1.5, 1.5) || n.Contains(0.5, 0.5) {
		t.Error("Intersect membership wrong")
	}
	d := Difference(a, b)
	if !d.Contains(0.5, 0.5) || d.Contains(1.5, 1.5) {
		t.Error("Difference membership wrong")
	}
	if Union().Contains(0, 0) {
		t.Error("empty union contains a point")
	}
	if Intersect().Contains(0, 0) {
		t.Error("empty intersection contains a point")
	}
	ub := u.Bounds()
	if ub.Min != P(0, 0) || ub.Max != P(3, 3) {
		t.Errorf("union bounds = %+v", ub)
	}
}

func TestTranslate(t *testing.T) {
	c := Circle{C: P(0, 0), R: 1}
	s := Translate(c, 5, 5)
	if !s.Contains(5.5, 5) || s.Contains(0, 0) {
		t.Error("Translate membership wrong")
	}
	b := s.Bounds()
	if b.Min != P(4, 4) || b.Max != P(6, 6) {
		t.Errorf("Translate bounds = %+v", b)
	}
}

func TestBBoxHelpers(t *testing.T) {
	b := BBox{Min: P(0, 0), Max: P(2, 1)}
	if b.Width() != 2 || b.Height() != 1 {
		t.Errorf("Width/Height = %v/%v", b.Width(), b.Height())
	}
	p := b.Pad(0.5)
	if p.Min != P(-0.5, -0.5) || p.Max != P(2.5, 1.5) {
		t.Errorf("Pad = %+v", p)
	}
}

func TestRasterizeRect(t *testing.T) {
	m := grid.MustMesh(10, 10, 1e-9, 1e-9, 1e-9)
	// Rect covering centers of cells i in [2,4], j in [1,2].
	r := Rasterize(m, Rect{Min: P(2e-9, 1e-9), Max: P(5e-9, 3e-9)})
	if got := r.Count(); got != 6 {
		t.Errorf("rasterized count = %d, want 6", got)
	}
}

func TestRasterizeCapsuleStrip(t *testing.T) {
	m := grid.MustMesh(40, 10, 1e-9, 1e-9, 1e-9)
	// Horizontal waveguide of width 4 nm along the mesh center.
	c := Capsule{A: P(0, 5e-9), B: P(40e-9, 5e-9), W: 4e-9}
	r := Rasterize(m, c)
	if r.Count() == 0 {
		t.Fatal("capsule rasterized to zero cells")
	}
	// Every set cell must be within W/2 of the centerline.
	for _, idx := range r.Indices() {
		i, j := m.Coord(idx)
		_, y := m.CellCenter(i, j)
		if math.Abs(y-5e-9) > 2e-9 {
			t.Errorf("cell (%d,%d) outside waveguide width", i, j)
		}
	}
}

func TestRasterizeOutOfMesh(t *testing.T) {
	m := grid.MustMesh(10, 10, 1e-9, 1e-9, 1e-9)
	// Shape entirely outside the mesh: nothing should be set, no panic.
	r := Rasterize(m, Circle{C: P(-50e-9, -50e-9), R: 1e-9})
	if got := r.Count(); got != 0 {
		t.Errorf("out-of-mesh rasterize count = %d", got)
	}
	// Shape larger than the mesh: clamp to mesh bounds.
	r = Rasterize(m, Rect{Min: P(-1, -1), Max: P(1, 1)})
	if got := r.Count(); got != 100 {
		t.Errorf("oversized rasterize count = %d, want 100", got)
	}
}

func TestMirrorY(t *testing.T) {
	if got := MirrorY(P(3, 1), 2); got != P(3, 3) {
		t.Errorf("MirrorY = %v", got)
	}
}

// Package geom provides the 2-D geometry kernel used to describe spin-wave
// gate layouts: points, segments, polygons, capsule-shaped waveguide arms,
// and rasterization of shape compositions onto a simulation mesh.
//
// Shapes are represented by the Shape interface (point containment plus a
// bounding box) so that layouts can be composed with Union/Intersect/
// Difference before being rasterized.
package geom

import (
	"fmt"
	"math"

	"spinwave/internal/grid"
)

// Point is a position in the film plane, in meters.
type Point struct {
	X, Y float64
}

// P is shorthand for constructing a Point.
func P(x, y float64) Point { return Point{x, y} }

// Add returns p + q (vector addition).
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns s·p.
func (p Point) Scale(s float64) Point { return Point{s * p.X, s * p.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Norm returns the distance of p from the origin.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dot returns the scalar product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// String formats the point in nanometers for readability.
func (p Point) String() string {
	return fmt.Sprintf("(%.1f, %.1f) nm", p.X*1e9, p.Y*1e9)
}

// BBox is an axis-aligned bounding box.
type BBox struct {
	Min, Max Point
}

// Union returns the smallest box containing both b and o.
func (b BBox) Union(o BBox) BBox {
	return BBox{
		Min: Point{math.Min(b.Min.X, o.Min.X), math.Min(b.Min.Y, o.Min.Y)},
		Max: Point{math.Max(b.Max.X, o.Max.X), math.Max(b.Max.Y, o.Max.Y)},
	}
}

// Pad returns the box grown by d on every side.
func (b BBox) Pad(d float64) BBox {
	return BBox{
		Min: Point{b.Min.X - d, b.Min.Y - d},
		Max: Point{b.Max.X + d, b.Max.Y + d},
	}
}

// Width and Height return the box extents.
func (b BBox) Width() float64 { return b.Max.X - b.Min.X }

// Height returns the vertical extent of the box.
func (b BBox) Height() float64 { return b.Max.Y - b.Min.Y }

// Shape is a region of the plane defined by point membership.
type Shape interface {
	// Contains reports whether point (x, y) lies inside the shape.
	Contains(x, y float64) bool
	// Bounds returns a bounding box of the shape.
	Bounds() BBox
}

// Capsule is a thick line segment: all points within W/2 of segment AB.
// It is the natural primitive for a waveguide arm of width W running from
// A to B, with rounded (naturally overlapping) junction ends.
type Capsule struct {
	A, B Point
	W    float64
}

// Contains implements Shape.
func (c Capsule) Contains(x, y float64) bool {
	return distToSegment(Point{x, y}, c.A, c.B) <= c.W/2
}

// Bounds implements Shape.
func (c Capsule) Bounds() BBox {
	r := c.W / 2
	return BBox{
		Min: Point{math.Min(c.A.X, c.B.X) - r, math.Min(c.A.Y, c.B.Y) - r},
		Max: Point{math.Max(c.A.X, c.B.X) + r, math.Max(c.A.Y, c.B.Y) + r},
	}
}

// Length returns the centerline length |AB|.
func (c Capsule) Length() float64 { return c.A.Dist(c.B) }

// distToSegment returns the distance from p to segment ab.
func distToSegment(p, a, b Point) float64 {
	ab := b.Sub(a)
	l2 := ab.Dot(ab)
	if l2 == 0 {
		return p.Dist(a)
	}
	t := p.Sub(a).Dot(ab) / l2
	t = math.Max(0, math.Min(1, t))
	proj := a.Add(ab.Scale(t))
	return p.Dist(proj)
}

// Rect is an axis-aligned rectangle shape.
type Rect struct {
	Min, Max Point
}

// Contains implements Shape.
func (r Rect) Contains(x, y float64) bool {
	return x >= r.Min.X && x <= r.Max.X && y >= r.Min.Y && y <= r.Max.Y
}

// Bounds implements Shape.
func (r Rect) Bounds() BBox { return BBox{Min: r.Min, Max: r.Max} }

// Circle is a disk of radius R centered at C.
type Circle struct {
	C Point
	R float64
}

// Contains implements Shape.
func (c Circle) Contains(x, y float64) bool {
	return c.C.Dist(Point{x, y}) <= c.R
}

// Bounds implements Shape.
func (c Circle) Bounds() BBox {
	return BBox{
		Min: Point{c.C.X - c.R, c.C.Y - c.R},
		Max: Point{c.C.X + c.R, c.C.Y + c.R},
	}
}

// Polygon is a simple polygon given by its vertices in order. Membership
// uses the even-odd rule; points exactly on an edge are treated as inside
// within floating-point tolerance of the crossing test.
type Polygon struct {
	V []Point
}

// Contains implements Shape using the even-odd ray crossing rule.
func (pg Polygon) Contains(x, y float64) bool {
	n := len(pg.V)
	if n < 3 {
		return false
	}
	inside := false
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		vi, vj := pg.V[i], pg.V[j]
		if (vi.Y > y) != (vj.Y > y) {
			xint := vj.X + (y-vj.Y)*(vi.X-vj.X)/(vi.Y-vj.Y)
			if x < xint {
				inside = !inside
			}
		}
	}
	return inside
}

// Bounds implements Shape.
func (pg Polygon) Bounds() BBox {
	if len(pg.V) == 0 {
		return BBox{}
	}
	b := BBox{Min: pg.V[0], Max: pg.V[0]}
	for _, v := range pg.V[1:] {
		b.Min.X = math.Min(b.Min.X, v.X)
		b.Min.Y = math.Min(b.Min.Y, v.Y)
		b.Max.X = math.Max(b.Max.X, v.X)
		b.Max.Y = math.Max(b.Max.Y, v.Y)
	}
	return b
}

// Triangle returns the polygon with vertices a, b, c.
func Triangle(a, b, c Point) Polygon { return Polygon{V: []Point{a, b, c}} }

// union is the set union of shapes.
type union struct{ shapes []Shape }

// Union composes shapes into their set union. Union of zero shapes is the
// empty shape.
func Union(shapes ...Shape) Shape { return union{shapes: shapes} }

func (u union) Contains(x, y float64) bool {
	for _, s := range u.shapes {
		if s.Contains(x, y) {
			return true
		}
	}
	return false
}

func (u union) Bounds() BBox {
	if len(u.shapes) == 0 {
		return BBox{}
	}
	b := u.shapes[0].Bounds()
	for _, s := range u.shapes[1:] {
		b = b.Union(s.Bounds())
	}
	return b
}

// intersection is the set intersection of shapes.
type intersection struct{ shapes []Shape }

// Intersect composes shapes into their set intersection.
func Intersect(shapes ...Shape) Shape { return intersection{shapes: shapes} }

func (n intersection) Contains(x, y float64) bool {
	if len(n.shapes) == 0 {
		return false
	}
	for _, s := range n.shapes {
		if !s.Contains(x, y) {
			return false
		}
	}
	return true
}

func (n intersection) Bounds() BBox {
	if len(n.shapes) == 0 {
		return BBox{}
	}
	return n.shapes[0].Bounds()
}

// difference is a \ b.
type difference struct{ a, b Shape }

// Difference returns the shape a with b removed.
func Difference(a, b Shape) Shape { return difference{a: a, b: b} }

func (d difference) Contains(x, y float64) bool {
	return d.a.Contains(x, y) && !d.b.Contains(x, y)
}

func (d difference) Bounds() BBox { return d.a.Bounds() }

// translate shifts a shape by (dx, dy).
type translate struct {
	s      Shape
	dx, dy float64
}

// Translate returns s shifted by (dx, dy).
func Translate(s Shape, dx, dy float64) Shape { return translate{s: s, dx: dx, dy: dy} }

func (t translate) Contains(x, y float64) bool { return t.s.Contains(x-t.dx, y-t.dy) }

func (t translate) Bounds() BBox {
	b := t.s.Bounds()
	return BBox{
		Min: Point{b.Min.X + t.dx, b.Min.Y + t.dy},
		Max: Point{b.Max.X + t.dx, b.Max.Y + t.dy},
	}
}

// Rasterize marks every mesh cell whose center lies inside the shape.
func Rasterize(m grid.Mesh, s Shape) grid.Region {
	r := grid.NewRegion(m)
	b := s.Bounds()
	i0, j0, ok0 := m.CellAt(math.Max(b.Min.X, 0), math.Max(b.Min.Y, 0))
	if !ok0 {
		i0, j0 = 0, 0
	}
	i1, j1, ok1 := m.CellAt(math.Min(b.Max.X, m.SizeX()-m.Dx/2), math.Min(b.Max.Y, m.SizeY()-m.Dy/2))
	if !ok1 {
		i1, j1 = m.Nx-1, m.Ny-1
	}
	for j := j0; j <= j1; j++ {
		for i := i0; i <= i1; i++ {
			x, y := m.CellCenter(i, j)
			if s.Contains(x, y) {
				r[m.Idx(i, j)] = true
			}
		}
	}
	return r
}

// MirrorY returns p reflected about the horizontal line y = axis.
func MirrorY(p Point, axis float64) Point { return Point{p.X, 2*axis - p.Y} }

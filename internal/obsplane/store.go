package obsplane

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"spinwave/internal/journal"
)

// Store is the coordinator-side durable fleet journal: one append-only
// JSONL file per trace holding every node's shipped events. Ingestion
// is idempotent per (node, seq) — a retried batch re-sending sequence
// numbers the store already holds is dropped, so the per-node sequence
// in a stored file is strictly increasing, which is the ordering
// invariant journalcheck -fleet validates and Events' merge leans on.
//
// Append never emits journal events itself: it is called from inside
// journal sink delivery (the coordinator mirrors its own trace-stamped
// events into the store), where an Emit would deadlock on the journal
// mutex. The HTTP handler that ingests worker batches emits the
// fleet.journal_shipped receipt after Append returns.
//
// A Store is safe for concurrent use; its mutex is a leaf — no journal
// or queue lock is ever taken under it.
type Store struct {
	dir string

	mu      sync.Mutex
	lastSeq map[string]map[string]uint64 // trace → node → highest stored seq
	loaded  map[string]bool              // trace files already scanned
	subs    map[int]*storeSub
	nextSub int
	shipped int64 // events accepted since open
}

// storeSub is one live tail subscription on a trace.
type storeSub struct {
	trace   string
	ch      chan ShippedEvent
	dropped int64
	closed  sync.Once
}

// shut closes the subscription channel exactly once — both the
// subscriber's own cancel and a retention Remove may race to end the
// tail, and close must win only once.
func (sub *storeSub) shut() {
	sub.closed.Do(func() { close(sub.ch) })
}

// OpenStore opens (creating if needed) the fleet journal directory.
// Existing trace files are not scanned eagerly — each trace's per-node
// sequence watermark is rebuilt lazily on its first Append after a
// restart, so a directory with thousands of finished traces costs
// nothing at boot.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("obsplane: store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obsplane: store: %w", err)
	}
	return &Store{
		dir:     dir,
		lastSeq: make(map[string]map[string]uint64),
		loaded:  make(map[string]bool),
		subs:    make(map[int]*storeSub),
	}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// fileFor maps a trace ID to its journal file path.
func (s *Store) fileFor(trace string) string {
	return filepath.Join(s.dir, trace+".jsonl")
}

// Append merges one node's events into the trace's journal file,
// dropping events whose sequence number is not beyond the node's stored
// watermark (idempotent re-ship) and fanning the accepted ones out to
// live subscribers. The write is a single buffered append, so a crash
// tears at most the final line — which Events tolerates on read.
func (s *Store) Append(trace, node string, events []journal.Event) (accepted int, err error) {
	if !ValidID(trace) {
		return 0, fmt.Errorf("obsplane: bad trace id %q", trace)
	}
	if !ValidID(node) {
		return 0, fmt.Errorf("obsplane: bad node id %q", node)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensureLoadedLocked(trace); err != nil {
		return 0, err
	}
	nodes := s.lastSeq[trace]
	if nodes == nil {
		nodes = make(map[string]uint64)
		s.lastSeq[trace] = nodes
	}
	var buf []byte
	var fresh []ShippedEvent
	last := nodes[node]
	for _, e := range events {
		if e.Seq <= last {
			continue // duplicate from a retried batch
		}
		last = e.Seq
		se := ShippedEvent{Node: node, Trace: trace, Event: e}
		buf = append(buf, se.MarshalJSONL()...)
		buf = append(buf, '\n')
		fresh = append(fresh, se)
	}
	if len(fresh) == 0 {
		return 0, nil
	}
	f, err := os.OpenFile(s.fileFor(trace), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, fmt.Errorf("obsplane: store append: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return 0, fmt.Errorf("obsplane: store write: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("obsplane: store close: %w", err)
	}
	nodes[node] = last
	s.shipped += int64(len(fresh))
	for _, sub := range s.subs {
		if sub.trace != trace {
			continue
		}
		for _, se := range fresh {
			select {
			case sub.ch <- se:
			default:
				sub.dropped++
			}
		}
	}
	return len(fresh), nil
}

// ensureLoadedLocked rebuilds a trace's per-node sequence watermarks
// from its file on the first touch after a restart.
func (s *Store) ensureLoadedLocked(trace string) error {
	if s.loaded[trace] {
		return nil
	}
	events, err := readTraceFile(s.fileFor(trace))
	if err != nil {
		return err
	}
	nodes := make(map[string]uint64)
	for _, e := range events {
		if e.Seq > nodes[e.Node] {
			nodes[e.Node] = e.Seq
		}
	}
	s.lastSeq[trace] = nodes
	s.loaded[trace] = true
	return nil
}

// Events returns the trace's merged multi-node journal in the
// deterministic fleet order: each node's events stay in their own
// emission (sequence) order, and the node streams are interleaved by a
// k-way merge on (time, node) — so two reads of the same file, or a
// read on a rebuilt coordinator, produce the identical timeline.
func (s *Store) Events(trace string) ([]ShippedEvent, error) {
	if !ValidID(trace) {
		return nil, fmt.Errorf("obsplane: bad trace id %q", trace)
	}
	raw, err := readTraceFile(s.fileFor(trace))
	if err != nil {
		return nil, err
	}
	return MergeEvents(raw), nil
}

// readTraceFile parses one trace journal file, tolerating a torn final
// line (a crash mid-append). A missing file is an empty trace.
func readTraceFile(path string) ([]ShippedEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("obsplane: store read: %w", err)
	}
	defer f.Close()
	var out []ShippedEvent
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var se ShippedEvent
		if err := json.Unmarshal(line, &se); err != nil {
			continue // torn tail or foreign line: skip, never fail the read
		}
		out = append(out, se)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obsplane: store scan: %w", err)
	}
	return out, nil
}

// MergeEvents orders a multi-node event set deterministically: per-node
// subsequences sorted by sequence number, interleaved by a k-way merge
// choosing the head with the earliest timestamp (ties broken by node
// name, then sequence). Sorting by time alone could reorder one node's
// events under a wall-clock step; this merge cannot — per-node sequence
// order is structural, not temporal.
func MergeEvents(events []ShippedEvent) []ShippedEvent {
	byNode := make(map[string][]ShippedEvent)
	var nodes []string
	for _, e := range events {
		if _, ok := byNode[e.Node]; !ok {
			nodes = append(nodes, e.Node)
		}
		byNode[e.Node] = append(byNode[e.Node], e)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		evs := byNode[n]
		sort.SliceStable(evs, func(a, b int) bool { return evs[a].Seq < evs[b].Seq })
	}
	heads := make(map[string]int, len(nodes))
	out := make([]ShippedEvent, 0, len(events))
	for len(out) < len(events) {
		best := ""
		for _, n := range nodes {
			if heads[n] >= len(byNode[n]) {
				continue
			}
			if best == "" {
				best = n
				continue
			}
			a, b := byNode[n][heads[n]], byNode[best][heads[best]]
			if a.TimeNS < b.TimeNS || (a.TimeNS == b.TimeNS && n < best) {
				best = n
			}
		}
		out = append(out, byNode[best][heads[best]])
		heads[best]++
	}
	return out
}

// Subscribe registers a live tail on one trace with the given channel
// buffer (clamped to ≥1): every event accepted by Append after this
// call is delivered, dropping (counted) on a full buffer — the same
// never-block contract as journal.Hub. Cancel is idempotent.
func (s *Store) Subscribe(trace string, buffer int) (events <-chan ShippedEvent, dropped func() int64, cancel func()) {
	if buffer < 1 {
		buffer = 1
	}
	sub := &storeSub{trace: trace, ch: make(chan ShippedEvent, buffer)}
	s.mu.Lock()
	id := s.nextSub
	s.nextSub++
	s.subs[id] = sub
	s.mu.Unlock()
	return sub.ch, func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return sub.dropped
		}, func() {
			s.mu.Lock()
			delete(s.subs, id)
			s.mu.Unlock()
			sub.shut()
		}
}

// RemovedEventName is the synthetic terminal event a live subscriber
// receives when the trace it is tailing is deleted by retention. It is
// never written to disk — it exists only on the wire, so a tail ends
// with an explicit "this journal is gone" marker instead of an error
// loop against a missing file.
const RemovedEventName = "retention.removed"

// Remove deletes one trace's journal file and ends its live tails
// cleanly: every subscriber on the trace receives a synthetic
// RemovedEventName event (sequenced past the trace's highest stored
// coordinator sequence so per-node dedup cannot drop it) and then its
// channel is closed. Returns the bytes freed. Removing an absent trace
// is a no-op. This is the retention engine's only path into the store —
// deleting the file behind the store's back would leave stale sequence
// watermarks and error-looping tails.
func (s *Store) Remove(trace string) (int64, error) {
	if !ValidID(trace) {
		return 0, fmt.Errorf("obsplane: bad trace id %q", trace)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Load the watermarks before deleting so the terminal event's
	// sequence number lands beyond everything a subscriber has seen.
	if err := s.ensureLoadedLocked(trace); err != nil {
		return 0, err
	}
	var maxSeq uint64
	for _, seq := range s.lastSeq[trace] {
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	path := s.fileFor(trace)
	var size int64
	if fi, err := os.Stat(path); err == nil {
		size = fi.Size()
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return 0, fmt.Errorf("obsplane: store remove: %w", err)
	}
	delete(s.lastSeq, trace)
	delete(s.loaded, trace)
	term := ShippedEvent{Node: CoordinatorNode, Trace: trace, Event: journal.Event{
		Seq:    maxSeq + 1,
		TimeNS: time.Now().UnixNano(),
		Name:   RemovedEventName,
	}}
	for id, sub := range s.subs {
		if sub.trace != trace {
			continue
		}
		select {
		case sub.ch <- term:
		default:
			sub.dropped++
		}
		delete(s.subs, id)
		sub.shut()
	}
	return size, nil
}

// Traces lists the trace IDs with stored journals, sorted.
func (s *Store) Traces() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("obsplane: store list: %w", err)
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".jsonl") || strings.HasPrefix(name, ".") {
			continue
		}
		out = append(out, strings.TrimSuffix(name, ".jsonl"))
	}
	sort.Strings(out)
	return out, nil
}

// Shipped returns how many events were accepted since the store opened.
func (s *Store) Shipped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shipped
}

// Subscribers returns the number of live tail subscriptions.
func (s *Store) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// WritableProbe verifies the journal directory still accepts writes —
// surfaced by swserve's deep health check beside the queue's probe.
func (s *Store) WritableProbe() error {
	tmp, err := os.CreateTemp(s.dir, ".probe-*.tmp")
	if err != nil {
		return fmt.Errorf("obsplane: journal dir not writable: %w", err)
	}
	name := tmp.Name()
	tmp.Close()
	return os.Remove(name)
}

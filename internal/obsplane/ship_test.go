package obsplane

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spinwave/internal/journal"
)

// shipServer is a minimal coordinator-side ingest endpoint backed by a
// real Store — the same shape cmd/swserve wires up.
func shipServer(t *testing.T, store *Store) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/fleet/journal", func(w http.ResponseWriter, r *http.Request) {
		var req ShipRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var resp ShipResponse
		byTrace := make(map[string][]journal.Event)
		for _, e := range req.Events {
			if e.Trace == "" {
				resp.Untraced++
				continue
			}
			byTrace[e.Trace] = append(byTrace[e.Trace], e.Event)
		}
		for trace, events := range byTrace {
			n, err := store.Append(trace, req.Node, events)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			resp.Accepted += n
			resp.Duplicates += len(events) - n
		}
		json.NewEncoder(w).Encode(resp)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestShipperBatchesToStore(t *testing.T) {
	store, _ := OpenStore(t.TempDir())
	srv := shipServer(t, store)
	sh := NewShipper(ShipperConfig{BaseURL: srv.URL, Node: "w1", MaxBatch: 3})
	sh.SetTrace("t1")
	for i := 1; i <= 10; i++ {
		sh.Emit(journal.Event{Seq: uint64(i), TimeNS: int64(i), Name: "step"})
	}
	if err := sh.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sh.Shipped() != 10 || sh.Pending() != 0 {
		t.Fatalf("shipped=%d pending=%d, want 10/0", sh.Shipped(), sh.Pending())
	}
	events, _ := store.Events("t1")
	if len(events) != 10 {
		t.Fatalf("store holds %d events, want 10", len(events))
	}
	for i, e := range events {
		if e.Node != "w1" || e.Trace != "t1" || e.Seq != uint64(i+1) {
			t.Fatalf("event %d = %+v", i, e)
		}
	}
	st := sh.Stats()
	if st["shipped"] != 10 || st["flush_failures"] != 0 || st["flush_attempts"] < 4 {
		t.Fatalf("stats = %v", st)
	}
}

func TestShipperOwnTraceFieldWins(t *testing.T) {
	sh := NewShipper(ShipperConfig{BaseURL: "http://unused", Node: "w1"})
	sh.SetTrace("tcurrent")
	sh.Emit(journal.Event{Seq: 1, Name: "fleet.requeue",
		Fields: map[string]any{"trace": "tother"}})
	sh.Emit(journal.Event{Seq: 2, Name: "step"})
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.buf[0].Trace != "tother" || sh.buf[1].Trace != "tcurrent" {
		t.Fatalf("traces = %q, %q", sh.buf[0].Trace, sh.buf[1].Trace)
	}
}

func TestShipperRetryAfterFailure(t *testing.T) {
	store, _ := OpenStore(t.TempDir())
	srv := shipServer(t, store)
	var down atomic.Bool
	down.Store(true)
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "unavailable", http.StatusServiceUnavailable)
			return
		}
		resp, err := http.Post(srv.URL+r.URL.Path, "application/json", r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	defer gate.Close()

	sh := NewShipper(ShipperConfig{BaseURL: gate.URL, Node: "w1"})
	sh.SetTrace("t1")
	sh.Emit(journal.Event{Seq: 1, TimeNS: 1, Name: "a"})
	if err := sh.Flush(context.Background()); err == nil {
		t.Fatal("flush succeeded while coordinator down")
	}
	if sh.Pending() != 1 {
		t.Fatalf("pending = %d after failed flush, want 1 (requeued)", sh.Pending())
	}
	down.Store(false)
	sh.Emit(journal.Event{Seq: 2, TimeNS: 2, Name: "b"})
	if err := sh.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	events, _ := store.Events("t1")
	if len(events) != 2 || events[0].Name != "a" || events[1].Name != "b" {
		t.Fatalf("events after recovery = %+v", events)
	}
}

func TestShipperDropsAtBufferLimit(t *testing.T) {
	sh := NewShipper(ShipperConfig{BaseURL: "http://unused", Node: "w1", MaxBuffer: 4})
	sh.SetTrace("t1")
	for i := 1; i <= 10; i++ {
		sh.Emit(journal.Event{Seq: uint64(i), Name: "x"})
	}
	if sh.Pending() != 4 || sh.Dropped() != 6 {
		t.Fatalf("pending=%d dropped=%d, want 4/6", sh.Pending(), sh.Dropped())
	}
}

// TestShipperConcurrentTail is the satellite race test: a worker
// batch-forwarding while a live NDJSON-tail subscriber replays from the
// store. Run under -race this pins that Emit (journal delivery), Flush
// (network goroutine), Store.Append (HTTP handler) and Subscribe fan-out
// share no unsynchronized state.
func TestShipperConcurrentTail(t *testing.T) {
	store, _ := OpenStore(t.TempDir())
	srv := shipServer(t, store)
	sh := NewShipper(ShipperConfig{BaseURL: srv.URL, Node: "w1",
		FlushEvery: time.Millisecond, MaxBatch: 16})
	sh.SetTrace("t1")

	ctx, cancel := context.WithCancel(context.Background())
	var wgRun, wgTail sync.WaitGroup
	wgRun.Add(1)
	go func() { defer wgRun.Done(); sh.Run(ctx) }()

	tail, dropped, unsub := store.Subscribe("t1", 1024)
	var tailed atomic.Int64
	wgTail.Add(1)
	go func() {
		defer wgTail.Done()
		for range tail {
			tailed.Add(1)
		}
	}()

	const total = 500
	for i := 1; i <= total; i++ {
		sh.Emit(journal.Event{Seq: uint64(i), TimeNS: int64(i), Name: "step",
			Fields: map[string]any{"i": i}})
		if i%100 == 0 {
			time.Sleep(time.Millisecond) // let flushes interleave
		}
	}
	// Cancel triggers the final best-effort flush; then drain the tail.
	cancel()
	wgRun.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for sh.Shipped() < total && time.Now().Before(deadline) {
		if err := sh.Flush(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	unsub()
	wgTail.Wait()
	if sh.Shipped() != total || sh.Dropped() != 0 {
		t.Fatalf("shipped=%d dropped=%d, want %d/0", sh.Shipped(), sh.Dropped(), total)
	}
	events, _ := store.Events("t1")
	if len(events) != total {
		t.Fatalf("store holds %d, want %d", len(events), total)
	}
	if got := tailed.Load() + dropped(); got != total {
		t.Fatalf("tail delivered+dropped = %d, want %d", got, total)
	}
}

// BenchmarkShipperEmit measures the per-event cost shipping adds on the
// journal delivery path — the E-OBS4 overhead number (EXPERIMENTS.md).
func BenchmarkShipperEmit(b *testing.B) {
	sh := NewShipper(ShipperConfig{BaseURL: "http://unused", Node: "w1",
		MaxBuffer: 1 << 30})
	sh.SetTrace("t1")
	e := journal.Event{Seq: 1, TimeNS: 1, Name: "solver.step",
		Fields: map[string]any{"step": 1000, "t_ns": 12345}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Seq = uint64(i + 1)
		sh.Emit(e)
	}
}

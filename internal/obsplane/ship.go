package obsplane

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"spinwave/internal/journal"
)

// Default shipping parameters. The cadence is deliberately sub-second:
// a SIGKILLed worker loses at most one flush interval of journal tail,
// which is the whole post-mortem story this plane exists for.
const (
	// DefaultFlushEvery is the background flush cadence.
	DefaultFlushEvery = 250 * time.Millisecond
	// DefaultMaxBatch bounds the events per POST /v1/fleet/journal call.
	DefaultMaxBatch = 256
	// DefaultMaxBuffer bounds the unshipped backlog; events beyond it are
	// dropped (counted) rather than growing without bound while the
	// coordinator is unreachable.
	DefaultMaxBuffer = 8192
)

// Shipper is a journal.Sink that batch-forwards events to the
// coordinator's fleet journal. Emit is called on the emitting goroutine
// under the journal's delivery mutex, so it only appends to a bounded
// in-memory buffer; all network I/O happens on the background loop
// started by Run. A full buffer or an unreachable coordinator drops
// events (counted by Dropped) — shipping must never block or fail the
// solver, the same contract as every other journal sink.
//
// The zero value is not usable; construct with NewShipper. SetNode and
// SetTrace may be called at any time (the worker learns its assigned ID
// at registration and its current trace at each claim); events are
// stamped with the values current at emission.
type Shipper struct {
	base  string
	hc    *http.Client
	every time.Duration
	batch int
	limit int

	mu      sync.Mutex
	node    string
	trace   string
	buf     []ShippedEvent
	dropped int64

	shipped  atomic.Int64 // events accepted by the coordinator
	attempts atomic.Int64 // flush POSTs attempted
	failures atomic.Int64 // flush POSTs failed (events requeued or dropped)
}

// ShipperConfig configures NewShipper; zero fields take the package
// defaults.
type ShipperConfig struct {
	// BaseURL is the coordinator's base URL (e.g. http://127.0.0.1:8080).
	BaseURL string
	// Node is the emitting node's name; usually updated later via SetNode
	// once the coordinator assigns the worker ID.
	Node string
	// Client is the HTTP client (nil = 10s-timeout default).
	Client *http.Client
	// FlushEvery, MaxBatch, MaxBuffer override the package defaults.
	FlushEvery time.Duration
	MaxBatch   int
	MaxBuffer  int
}

// NewShipper builds a shipper posting to base's /v1/fleet/journal.
func NewShipper(cfg ShipperConfig) *Shipper {
	s := &Shipper{
		base:  cfg.BaseURL,
		hc:    cfg.Client,
		every: cfg.FlushEvery,
		batch: cfg.MaxBatch,
		limit: cfg.MaxBuffer,
		node:  cfg.Node,
	}
	if s.hc == nil {
		s.hc = &http.Client{Timeout: 10 * time.Second}
	}
	if s.every <= 0 {
		s.every = DefaultFlushEvery
	}
	if s.batch <= 0 {
		s.batch = DefaultMaxBatch
	}
	if s.limit <= 0 {
		s.limit = DefaultMaxBuffer
	}
	return s
}

// SetNode updates the node name stamped on subsequently emitted events.
func (s *Shipper) SetNode(node string) {
	s.mu.Lock()
	s.node = node
	s.mu.Unlock()
}

// SetTrace updates the fleet trace stamped on subsequently emitted
// events — the worker calls it with each claimed job's trace. An empty
// trace marks events as untraceable; the coordinator files those only
// if they carry their own trace field.
func (s *Shipper) SetTrace(trace string) {
	s.mu.Lock()
	s.trace = trace
	s.mu.Unlock()
}

// Emit implements journal.Sink: stamp and buffer, never block.
func (s *Shipper) Emit(e journal.Event) {
	s.mu.Lock()
	if len(s.buf) >= s.limit {
		s.dropped++
		s.mu.Unlock()
		return
	}
	trace := s.trace
	// A fleet event that names its own trace (the coordinator stamps one
	// on every queue transition) wins over the shipper's current trace —
	// a worker-side sweep or stale event files under the job it is about.
	if t, ok := e.Fields["trace"].(string); ok && t != "" {
		trace = t
	}
	s.buf = append(s.buf, ShippedEvent{Node: s.node, Trace: trace, Event: e})
	s.mu.Unlock()
}

// Run flushes the buffer on a ticker until ctx is cancelled, then makes
// one final best-effort flush on a short fresh context so a SIGTERMed
// worker still lands its journal tail (a SIGKILLed one loses at most
// one flush interval).
func (s *Shipper) Run(ctx context.Context) {
	t := time.NewTicker(s.every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			final, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			s.Flush(final) //nolint:errcheck // best-effort tail delivery
			cancel()
			return
		case <-t.C:
			s.Flush(ctx) //nolint:errcheck // retried next tick; failures counted
		}
	}
}

// Flush posts every buffered event in MaxBatch-sized calls. On a failed
// post the batch is returned to the front of the buffer (dropping
// overflow) so the next tick retries it; the error of the first failed
// post is returned.
func (s *Shipper) Flush(ctx context.Context) error {
	for {
		s.mu.Lock()
		if len(s.buf) == 0 || s.node == "" {
			// No node name yet (registration pending): hold the buffer — a
			// batch without a valid node would only bounce off the
			// coordinator's ID check.
			s.mu.Unlock()
			return nil
		}
		n := len(s.buf)
		if n > s.batch {
			n = s.batch
		}
		events := make([]ShippedEvent, n)
		copy(events, s.buf)
		node := s.node
		s.buf = append(s.buf[:0], s.buf[n:]...)
		s.mu.Unlock()

		s.attempts.Add(1)
		ack, err := s.post(ctx, ShipRequest{Node: node, Events: events})
		if err != nil {
			s.failures.Add(1)
			s.requeue(events)
			return err
		}
		// Delivery is at-least-once: a batch whose ack was lost (the post
		// context cancelled after the coordinator stored it) is retried and
		// acknowledged as duplicates — those events ARE durable, so they
		// count as shipped. Untraced events were dropped permanently by the
		// coordinator; count them with the local drops.
		s.shipped.Add(int64(ack.Accepted + ack.Duplicates))
		if ack.Untraced > 0 {
			s.mu.Lock()
			s.dropped += int64(ack.Untraced)
			s.mu.Unlock()
		}
	}
}

// requeue puts a failed batch back at the front of the buffer, dropping
// from the tail if the backlog would exceed the limit.
func (s *Shipper) requeue(events []ShippedEvent) {
	s.mu.Lock()
	s.buf = append(events, s.buf...)
	if over := len(s.buf) - s.limit; over > 0 {
		s.dropped += int64(over)
		s.buf = s.buf[:s.limit]
	}
	s.mu.Unlock()
}

// post sends one batch and decodes the acknowledgement.
func (s *Shipper) post(ctx context.Context, req ShipRequest) (ack ShipResponse, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return ack, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		s.base+"/v1/fleet/journal", bytes.NewReader(body))
	if err != nil {
		return ack, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	s.mu.Lock()
	if s.trace != "" {
		hreq.Header.Set(TraceHeader, s.trace)
	}
	s.mu.Unlock()
	resp, err := s.hc.Do(hreq)
	if err != nil {
		return ack, err
	}
	defer resp.Body.Close()
	rb, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusOK {
		return ack, fmt.Errorf("obsplane: ship: %s: %s", resp.Status, bytes.TrimSpace(rb))
	}
	if err := json.Unmarshal(rb, &ack); err != nil {
		return ack, fmt.Errorf("obsplane: ship ack: %w", err)
	}
	return ack, nil
}

// Shipped returns how many events the coordinator confirms holding
// (accepted, or recognized as duplicates of an earlier delivery).
func (s *Shipper) Shipped() int64 { return s.shipped.Load() }

// Dropped returns how many events were lost to buffer overflow.
func (s *Shipper) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Pending returns the unshipped backlog size.
func (s *Shipper) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// Stats summarizes the shipper for the worker's /metrics surface.
func (s *Shipper) Stats() map[string]int64 {
	s.mu.Lock()
	pending, dropped := int64(len(s.buf)), s.dropped
	s.mu.Unlock()
	return map[string]int64{
		"shipped":        s.shipped.Load(),
		"pending":        pending,
		"dropped":        dropped,
		"flush_attempts": s.attempts.Load(),
		"flush_failures": s.failures.Load(),
	}
}

package obsplane

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"spinwave/internal/journal"
)

// ev builds a journal event with explicit seq/time for merge tests.
func ev(seq uint64, timeNS int64, name string) journal.Event {
	return journal.Event{Seq: seq, TimeNS: timeNS, Name: name,
		Fields: map[string]any{"n": int(seq)}}
}

func TestStoreAppendAndEvents(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if n, err := s.Append("t1", "w1", []journal.Event{ev(1, 10, "a"), ev(2, 20, "b")}); err != nil || n != 2 {
		t.Fatalf("Append = %d, %v; want 2, nil", n, err)
	}
	if n, err := s.Append("t1", "w2", []journal.Event{ev(1, 15, "c")}); err != nil || n != 1 {
		t.Fatalf("Append = %d, %v; want 1, nil", n, err)
	}
	events, err := s.Events("t1")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, e := range events {
		got = append(got, e.Node+"/"+e.Name)
	}
	want := []string{"w1/a", "w2/c", "w1/b"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged order = %v, want %v", got, want)
	}
	if s.Shipped() != 3 {
		t.Fatalf("Shipped = %d, want 3", s.Shipped())
	}
}

func TestStoreIdempotentReship(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	batch := []journal.Event{ev(1, 10, "a"), ev(2, 20, "b")}
	if n, _ := s.Append("t1", "w1", batch); n != 2 {
		t.Fatalf("first ship accepted %d, want 2", n)
	}
	// A retried batch (the worker never saw the ack) must be dropped.
	if n, _ := s.Append("t1", "w1", batch); n != 0 {
		t.Fatalf("re-ship accepted %d, want 0", n)
	}
	// A batch overlapping the watermark ships only the new tail.
	if n, _ := s.Append("t1", "w1", []journal.Event{ev(2, 20, "b"), ev(3, 30, "c")}); n != 1 {
		t.Fatalf("overlap ship accepted %d, want 1", n)
	}
	events, _ := s.Events("t1")
	if len(events) != 3 {
		t.Fatalf("stored %d events, want 3", len(events))
	}
}

// TestStoreReopenWatermarks pins the durability story: after a
// coordinator restart the per-node watermarks are rebuilt from the
// file, so a worker retrying its last batch still cannot duplicate.
func TestStoreReopenWatermarks(t *testing.T) {
	dir := t.TempDir()
	s1, _ := OpenStore(dir)
	if _, err := s1.Append("t1", "w1", []journal.Event{ev(1, 10, "a"), ev(2, 20, "b")}); err != nil {
		t.Fatal(err)
	}
	s2, _ := OpenStore(dir)
	if n, err := s2.Append("t1", "w1", []journal.Event{ev(2, 20, "b")}); err != nil || n != 0 {
		t.Fatalf("post-restart re-ship accepted %d, %v; want 0, nil", n, err)
	}
	if n, _ := s2.Append("t1", "w1", []journal.Event{ev(3, 30, "c")}); n != 1 {
		t.Fatal("post-restart fresh event refused")
	}
}

// TestStoreMergeAfterKill models the mid-segment SIGKILL: the dying
// worker's last shipped batch ends mid-job, the resuming peer's events
// interleave after it, and the merged order is deterministic — per-node
// sequences stay monotonic no matter how the batches arrived.
func TestStoreMergeAfterKill(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenStore(dir)
	// Victim ships two batches, then dies (its seqs 5.. are never sent).
	s.Append("t1", "victim", []journal.Event{ev(1, 100, "run.start"), ev(2, 200, "checkpoint.save")})
	s.Append("t1", "victim", []journal.Event{ev(3, 300, "checkpoint.save"), ev(4, 400, "step")})
	// Coordinator journals the requeue, then the peer resumes.
	s.Append("t1", CoordinatorNode, []journal.Event{ev(7, 500, "fleet.requeue")})
	s.Append("t1", "peer", []journal.Event{ev(1, 600, "checkpoint.resume"), ev(2, 700, "run.complete")})

	for _, reread := range []bool{false, true} {
		st := s
		if reread {
			st, _ = OpenStore(dir) // cold read after "restart"
		}
		events, err := st.Events("t1")
		if err != nil {
			t.Fatal(err)
		}
		var order []string
		last := map[string]uint64{}
		for _, e := range events {
			order = append(order, e.Node)
			if e.Seq <= last[e.Node] {
				t.Fatalf("node %s seq %d after %d (reread=%t)", e.Node, e.Seq, last[e.Node], reread)
			}
			last[e.Node] = e.Seq
		}
		want := []string{"victim", "victim", "victim", "victim", "coordinator", "peer", "peer"}
		if !reflect.DeepEqual(order, want) {
			t.Fatalf("merge order = %v, want %v (reread=%t)", order, want, reread)
		}
	}
	sum := Summarize(mustEvents(t, s, "t1"))
	if sum.Requeues != 1 || sum.Resumes != 1 || sum.SeqViolations != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if len(sum.Nodes) != 3 {
		t.Fatalf("summary nodes = %v, want 3 nodes", sum.Nodes)
	}
}

func mustEvents(t *testing.T, s *Store, trace string) []ShippedEvent {
	t.Helper()
	events, err := s.Events(trace)
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func TestStoreTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenStore(dir)
	s.Append("t1", "w1", []journal.Event{ev(1, 10, "a")})
	// Simulate a crash mid-append: a torn, non-JSON final line.
	f, err := os.OpenFile(filepath.Join(dir, "t1.jsonl"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"node":"w1","seq":2,"ti`)
	f.Close()
	s2, _ := OpenStore(dir)
	events, err := s2.Events("t1")
	if err != nil || len(events) != 1 {
		t.Fatalf("Events = %d, %v; want 1 event, nil", len(events), err)
	}
	// The torn seq 2 was never durable; the retried ship must land it.
	if n, _ := s2.Append("t1", "w1", []journal.Event{ev(2, 20, "b")}); n != 1 {
		t.Fatal("event after torn tail refused")
	}
}

func TestStoreRejectsBadIDs(t *testing.T) {
	s, _ := OpenStore(t.TempDir())
	if _, err := s.Append("../escape", "w1", []journal.Event{ev(1, 1, "a")}); err == nil {
		t.Fatal("path-traversal trace id accepted")
	}
	if _, err := s.Append("t1", "no/slashes", []journal.Event{ev(1, 1, "a")}); err == nil {
		t.Fatal("bad node id accepted")
	}
	if _, err := s.Events(".hidden"); err == nil {
		t.Fatal("dot trace id accepted on read")
	}
}

func TestStoreSubscribeLiveTail(t *testing.T) {
	s, _ := OpenStore(t.TempDir())
	events, dropped, cancel := s.Subscribe("t1", 8)
	defer cancel()
	s.Append("t1", "w1", []journal.Event{ev(1, 10, "a")})
	s.Append("t2", "w1", []journal.Event{ev(1, 10, "other-trace")})
	got := <-events
	if got.Name != "a" || got.Node != "w1" || got.Trace != "t1" {
		t.Fatalf("live event = %+v", got)
	}
	select {
	case e := <-events:
		t.Fatalf("event from foreign trace delivered: %+v", e)
	default:
	}
	if dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", dropped())
	}
	cancel()
	cancel() // idempotent
	if s.Subscribers() != 0 {
		t.Fatalf("Subscribers = %d after cancel", s.Subscribers())
	}
}

func TestTraceIDsAndContext(t *testing.T) {
	id := NewTraceID()
	if !ValidID(id) || id[0] != 't' {
		t.Fatalf("NewTraceID() = %q", id)
	}
	if NewTraceID() == id {
		t.Fatal("trace IDs collide")
	}
	if Trace(nil) != "" {
		t.Fatal("Trace(nil) non-empty")
	}
	if Trace(context.Background()) != "" {
		t.Fatal("Trace of bare context non-empty")
	}
	ctx := WithTrace(context.Background(), "t123")
	if Trace(ctx) != "t123" {
		t.Fatalf("Trace = %q", Trace(ctx))
	}
}

func TestValidID(t *testing.T) {
	for _, ok := range []string{"t1", "worker-3", "a.b_c", "q0af31bc2"} {
		if !ValidID(ok) {
			t.Errorf("ValidID(%q) = false", ok)
		}
	}
	long := strings.Repeat("x", 65)
	for _, bad := range []string{"", ".dot", "a/b", "a b", "a\x00b", long, "../x"} {
		if ValidID(bad) {
			t.Errorf("ValidID(%q) = true", bad)
		}
	}
}

func TestStoreRemoveMidTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Append("t1", "w1", []journal.Event{ev(1, 10, "a"), ev(2, 20, "b")})
	s.Append("t1", CoordinatorNode, []journal.Event{ev(5, 30, "fleet.claim")})

	// A live tail is mid-stream when retention removes the trace.
	events, _, cancel := s.Subscribe("t1", 8)
	defer cancel()
	s.Append("t1", "w1", []journal.Event{ev(3, 40, "c")})

	freed, err := s.Remove("t1")
	if err != nil {
		t.Fatal(err)
	}
	if freed <= 0 {
		t.Fatalf("Remove freed %d bytes, want > 0", freed)
	}
	if _, err := os.Stat(filepath.Join(dir, "t1.jsonl")); !os.IsNotExist(err) {
		t.Fatal("trace file still on disk after Remove")
	}

	// The subscriber drains its buffered event, then the terminal
	// marker, then a clean channel close — no error loop.
	var names []string
	for e := range events {
		names = append(names, e.Name)
	}
	if len(names) != 2 || names[0] != "c" || names[1] != RemovedEventName {
		t.Fatalf("tail saw %v, want [c %s]", names, RemovedEventName)
	}
	if s.Subscribers() != 0 {
		t.Fatalf("Subscribers = %d after Remove, want 0", s.Subscribers())
	}

	// The terminal event outsequences everything stored for the trace,
	// so a per-node dedup downstream cannot drop it.
	// (Highest stored seq was the coordinator's 5; terminal must be 6.)
	// Also: the subscriber's own deferred cancel after Remove's close
	// must be a no-op, not a double-close panic.
	cancel()

	// Removing an absent trace is a no-op.
	if freed, err := s.Remove("t1"); err != nil || freed != 0 {
		t.Fatalf("second Remove = %d, %v; want 0, nil", freed, err)
	}

	// The store accepts the trace again from scratch (fresh watermarks).
	if n, err := s.Append("t1", "w1", []journal.Event{ev(1, 50, "fresh")}); err != nil || n != 1 {
		t.Fatalf("Append after Remove = %d, %v; want 1, nil", n, err)
	}
}

func TestStoreRemoveTerminalSeq(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Append("t1", CoordinatorNode, []journal.Event{ev(9, 10, "fleet.claim")})
	events, _, cancel := s.Subscribe("t1", 4)
	defer cancel()
	if _, err := s.Remove("t1"); err != nil {
		t.Fatal(err)
	}
	term, open := <-events
	if !open {
		t.Fatal("channel closed before delivering the terminal event")
	}
	if term.Name != RemovedEventName || term.Node != CoordinatorNode || term.Seq != 10 {
		t.Fatalf("terminal = %s/%s seq %d, want %s/%s seq 10",
			term.Node, term.Name, term.Seq, CoordinatorNode, RemovedEventName)
	}
	if _, open := <-events; open {
		t.Fatal("channel not closed after terminal event")
	}
}

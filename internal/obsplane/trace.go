package obsplane

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"spinwave/internal/obs"
)

// Fleet trace assembly: the merged multi-node journal of one trace
// rendered as a Chrome trace-event JSON document (loadable in
// chrome://tracing / Perfetto, the same format obs.ChromeTraceSink
// writes for single-process runs). Each node gets its own thread row;
// every journal event becomes an instant marker on its node's row, and
// job ownership windows — claim to completion, failure or requeue —
// become duration spans on the claiming worker's row, so a SIGKILLed
// worker's truncated span and the peer's resume span sit side by side
// on one timeline.

// WriteChromeTrace renders the merged events (as returned by
// Store.Events — per-node sequence order is assumed) as a Chrome trace
// JSON document.
func WriteChromeTrace(w io.Writer, trace string, events []ShippedEvent) error {
	rows := make(map[string]int)
	var order []string
	row := func(node string) int {
		if id, ok := rows[node]; ok {
			return id
		}
		rows[node] = len(order) + 1
		order = append(order, node)
		return rows[node]
	}
	// Deterministic row order: nodes by first appearance in the merged
	// timeline, which is itself deterministic.
	for _, e := range events {
		row(e.Node)
	}

	var epoch int64
	for _, e := range events {
		if epoch == 0 || e.TimeNS < epoch {
			epoch = e.TimeNS
		}
	}
	ts := func(ns int64) float64 { return float64(ns-epoch) / 1e3 }

	out := make([]any, 0, len(events)+len(order))
	for _, node := range order {
		out = append(out, obs.NewThreadName(rows[node], node))
	}

	// Open job-ownership spans keyed by job ID: a fleet.claim opens one
	// on the claiming worker's row; the matching terminal event (done,
	// failed, or requeue after the lease expired) closes it.
	type openSpan struct {
		job     string
		worker  string
		startNS int64
		attempt string
	}
	open := make(map[string]*openSpan)
	closeSpan := func(sp *openSpan, endNS int64, status string) {
		dur := float64(endNS-sp.startNS) / 1e3
		if dur < 0 {
			dur = 0
		}
		out = append(out, obs.TraceEvent{
			Name: "job " + sp.job, Ph: "X",
			Ts: ts(sp.startNS), Dur: dur,
			Pid: 1, Tid: row(sp.worker),
			Args: map[string]string{
				"job": sp.job, "worker": sp.worker,
				"attempt": sp.attempt, "status": status, "trace": trace,
			},
		})
	}

	var lastNS int64
	for _, e := range events {
		if e.TimeNS > lastNS {
			lastNS = e.TimeNS
		}
		ev := obs.TraceEvent{
			Name: e.Name, Ph: "i", S: "t",
			Ts: ts(e.TimeNS), Pid: 1, Tid: rows[e.Node],
		}
		if len(e.Fields) > 0 || e.Run != "" {
			ev.Args = make(map[string]string, len(e.Fields)+1)
			for k, v := range e.Fields {
				ev.Args[k] = fmt.Sprint(v)
			}
			if e.Run != "" {
				ev.Args["run"] = e.Run
			}
		}
		out = append(out, ev)

		job, _ := e.Fields["job"].(string)
		switch e.Name {
		case "fleet.claim":
			worker, _ := e.Fields["worker"].(string)
			if job == "" || worker == "" {
				break
			}
			if sp := open[job]; sp != nil {
				// A re-claim without an observed terminal event (the lease
				// expired between shipped batches): close the stale span at
				// the re-claim instant.
				closeSpan(sp, e.TimeNS, "lost")
			}
			open[job] = &openSpan{job: job, worker: worker, startNS: e.TimeNS,
				attempt: fmt.Sprint(e.Fields["attempt"])}
		case "fleet.job":
			status, _ := e.Fields["status"].(string)
			if sp := open[job]; sp != nil && (status == "done" || status == "failed") {
				closeSpan(sp, e.TimeNS, status)
				delete(open, job)
			}
		case "fleet.requeue":
			if sp := open[job]; sp != nil {
				closeSpan(sp, e.TimeNS, "requeued")
				delete(open, job)
			}
		}
	}
	// A span still open at the end of the journal (a worker died and the
	// job never terminated) is closed at the last observed instant and
	// marked open — the truncation is the finding, not an error.
	var dangling []string
	for job := range open {
		dangling = append(dangling, job)
	}
	sort.Strings(dangling)
	for _, job := range dangling {
		closeSpan(open[job], lastNS, "open")
	}

	return json.NewEncoder(w).Encode(map[string]any{"traceEvents": out})
}

// TraceSummary is swdoctor -fleet's per-trace accounting of a merged
// multi-node journal.
type TraceSummary struct {
	// Trace is the trace ID the events carry (empty when none do).
	Trace string
	// Nodes maps each node to its event count.
	Nodes map[string]int
	// Claims, Requeues, Resumes and Requests count the fleet lifecycle
	// events observed across all nodes.
	Claims   int
	Requeues int
	Resumes  int
	Requests int
	// Complete reports whether a fleet.request completion was observed.
	Complete bool
	// SeqViolations counts per-node sequence regressions — zero for any
	// journal written by Store.Append.
	SeqViolations int
}

// Summarize scans a merged event set for the fleet lifecycle counters
// swdoctor -fleet scores.
func Summarize(events []ShippedEvent) TraceSummary {
	sum := TraceSummary{Nodes: make(map[string]int)}
	lastSeq := make(map[string]uint64)
	for _, e := range events {
		sum.Nodes[e.Node]++
		if e.Seq <= lastSeq[e.Node] {
			sum.SeqViolations++
		}
		lastSeq[e.Node] = e.Seq
		if sum.Trace == "" && e.Trace != "" {
			sum.Trace = e.Trace
		}
		switch e.Name {
		case "fleet.claim":
			sum.Claims++
		case "fleet.requeue":
			sum.Requeues++
		case "checkpoint.resume":
			sum.Resumes++
		case "fleet.request":
			sum.Requests++
			if st, _ := e.Fields["status"].(string); st == "complete" {
				sum.Complete = true
			}
		}
	}
	return sum
}

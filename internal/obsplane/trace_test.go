package obsplane

import (
	"bytes"
	"encoding/json"
	"testing"

	"spinwave/internal/journal"
)

// fleetEv builds a fleet lifecycle event with fields.
func fleetEv(seq uint64, timeNS int64, name string, fields map[string]any) journal.Event {
	return journal.Event{Seq: seq, TimeNS: timeNS, Name: name, Fields: fields}
}

func assembleTrace(t *testing.T, events []ShippedEvent) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, "t1", events); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	return doc
}

func traceEvents(t *testing.T, doc map[string]any) []map[string]any {
	t.Helper()
	raw, ok := doc["traceEvents"].([]any)
	if !ok {
		t.Fatalf("no traceEvents array in %v", doc)
	}
	out := make([]map[string]any, len(raw))
	for i, e := range raw {
		out[i] = e.(map[string]any)
	}
	return out
}

// TestWriteChromeTraceSpans pins the post-mortem shape: a claim on the
// victim opens a span, the requeue closes it as "requeued", the peer's
// claim opens a second span closed "done" — two rows, one timeline.
func TestWriteChromeTraceSpans(t *testing.T) {
	events := MergeEvents([]ShippedEvent{
		{Node: CoordinatorNode, Trace: "t1", Event: fleetEv(1, 100, "fleet.claim",
			map[string]any{"job": "j1", "worker": "victim", "attempt": 1})},
		{Node: "victim", Trace: "t1", Event: fleetEv(1, 200, "checkpoint.save", nil)},
		{Node: CoordinatorNode, Trace: "t1", Event: fleetEv(2, 300, "fleet.requeue",
			map[string]any{"job": "j1", "worker": "victim"})},
		{Node: CoordinatorNode, Trace: "t1", Event: fleetEv(3, 400, "fleet.claim",
			map[string]any{"job": "j1", "worker": "peer", "attempt": 2})},
		{Node: "peer", Trace: "t1", Event: fleetEv(1, 500, "checkpoint.resume", nil)},
		{Node: CoordinatorNode, Trace: "t1", Event: fleetEv(4, 600, "fleet.job",
			map[string]any{"job": "j1", "status": "done"})},
	})
	doc := assembleTrace(t, events)
	var spans []map[string]any
	rows := map[string]bool{}
	for _, e := range traceEvents(t, doc) {
		switch e["ph"] {
		case "X":
			spans = append(spans, e)
		case "M":
			args := e["args"].(map[string]any)
			rows[args["name"].(string)] = true
		}
	}
	for _, node := range []string{"coordinator", "victim", "peer"} {
		if !rows[node] {
			t.Errorf("missing thread row for %s (rows: %v)", node, rows)
		}
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2 (victim + peer ownership)", len(spans))
	}
	status := func(sp map[string]any) (worker, st string) {
		args := sp["args"].(map[string]any)
		return args["worker"].(string), args["status"].(string)
	}
	w0, s0 := status(spans[0])
	w1, s1 := status(spans[1])
	if w0 != "victim" || s0 != "requeued" {
		t.Errorf("span 0 = %s/%s, want victim/requeued", w0, s0)
	}
	if w1 != "peer" || s1 != "done" {
		t.Errorf("span 1 = %s/%s, want peer/done", w1, s1)
	}
}

// TestWriteChromeTraceDangling: a job claimed but never terminated (the
// journal simply ends) renders a span with status "open", and a
// re-claim with no observed terminal event closes the stale span "lost".
func TestWriteChromeTraceDangling(t *testing.T) {
	events := []ShippedEvent{
		{Node: CoordinatorNode, Event: fleetEv(1, 100, "fleet.claim",
			map[string]any{"job": "j1", "worker": "w1", "attempt": 1})},
		{Node: CoordinatorNode, Event: fleetEv(2, 200, "fleet.claim",
			map[string]any{"job": "j1", "worker": "w2", "attempt": 2})},
		{Node: CoordinatorNode, Event: fleetEv(3, 300, "fleet.claim",
			map[string]any{"job": "j2", "worker": "w1", "attempt": 1})},
	}
	doc := assembleTrace(t, events)
	statuses := map[string]int{}
	for _, e := range traceEvents(t, doc) {
		if e["ph"] != "X" {
			continue
		}
		args := e["args"].(map[string]any)
		statuses[args["status"].(string)]++
	}
	if statuses["lost"] != 1 || statuses["open"] != 2 {
		t.Fatalf("span statuses = %v, want 1 lost + 2 open", statuses)
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, "t1", nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("empty trace missing traceEvents key")
	}
}

func TestSummarize(t *testing.T) {
	sum := Summarize([]ShippedEvent{
		{Node: "c", Trace: "t9", Event: fleetEv(1, 1, "fleet.claim",
			map[string]any{"job": "j1", "worker": "w1"})},
		{Node: "w1", Trace: "t9", Event: fleetEv(1, 2, "step", nil)},
		{Node: "c", Trace: "t9", Event: fleetEv(2, 3, "fleet.request",
			map[string]any{"status": "complete"})},
	})
	if sum.Trace != "t9" || sum.Claims != 1 || sum.Requests != 1 || !sum.Complete {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Nodes["c"] != 2 || sum.Nodes["w1"] != 1 {
		t.Fatalf("node counts = %v", sum.Nodes)
	}
	// A seq regression (impossible from Store.Append) is counted.
	bad := Summarize([]ShippedEvent{
		{Node: "w1", Event: fleetEv(2, 1, "a", nil)},
		{Node: "w1", Event: fleetEv(1, 2, "b", nil)},
	})
	if bad.SeqViolations != 1 {
		t.Fatalf("SeqViolations = %d, want 1", bad.SeqViolations)
	}
}

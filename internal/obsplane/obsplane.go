// Package obsplane is the fleet-wide observability plane (DESIGN.md
// §16): the machinery that keeps a distributed run's flight-recorder
// history queryable after the worker that produced it is gone.
//
// Three pieces compose it:
//
//   - Correlation: the coordinator mints one trace ID per fleet request
//     (NewTraceID) and stamps it on every job. The ID travels as the
//     X-Spinwave-Trace HTTP header on fleet calls, as a "trace" field on
//     fleet journal events, through evaluation contexts (WithTrace /
//     Trace), and into checkpoint manifests — so one key threads a job
//     from submit through requeue to its resume on a peer node.
//
//   - Shipping: each worker attaches a Shipper (ship.go) to its process
//     journal. The shipper buffers events, stamps the node name and the
//     current trace, and batch-forwards them to the coordinator's
//     POST /v1/fleet/journal endpoint in the background — never blocking
//     the solver, never exerting backpressure on journal delivery.
//
//   - The durable fleet journal: the coordinator's Store (store.go)
//     merges shipped batches into one append-only JSONL file per trace
//     with deterministic per-node sequence ordering, serves live
//     subscriptions for the NDJSON tail, and renders the merged
//     multi-node timeline as a Chrome trace (trace.go).
//
// The package depends only on internal/journal, internal/obs and the
// standard library, so both sides of the fleet (and the tools) can
// import it without cycles.
package obsplane

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync/atomic"

	"spinwave/internal/journal"
)

// TraceHeader is the HTTP header carrying the fleet trace ID on every
// fleet call: workers send their current trace on claim/heartbeat/
// results posts, and the coordinator answers a claim with the claimed
// job's trace.
const TraceHeader = "X-Spinwave-Trace"

// CoordinatorNode is the node name the coordinator's own journal events
// are merged under in the fleet journal — claims, requeues and request
// lifecycle appear beside the workers' shipped events.
const CoordinatorNode = "coordinator"

// NewTraceID returns a fresh 16-hex-digit fleet trace identifier ("t"
// prefix), unique across processes (crypto/rand backed, counter
// fallback — the same scheme as journal.NewRunID).
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%016x", traceIDFallback.Add(1))
	}
	return "t" + hex.EncodeToString(b[:])
}

var traceIDFallback atomic.Uint64

// ValidID reports whether s is safe as a trace or node identifier and
// as a file-name stem: 1-64 characters of [a-zA-Z0-9._-], not starting
// with a dot (the same rule the fleet applies to job and worker IDs —
// trace IDs name journal files, so the check is a path-traversal guard,
// not a formality).
func ValidID(s string) bool {
	if len(s) == 0 || len(s) > 64 || s[0] == '.' {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// ctxKey is the private context key carrying the fleet trace ID.
type ctxKey struct{}

// WithTrace returns a context carrying the fleet trace ID, so layers
// below the fleet worker (the transient segment runner, the checkpoint
// writer) stamp the same ID the coordinator minted.
func WithTrace(ctx context.Context, trace string) context.Context {
	return context.WithValue(ctx, ctxKey{}, trace)
}

// Trace returns the fleet trace ID carried by ctx, or "".
func Trace(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	t, _ := ctx.Value(ctxKey{}).(string)
	return t
}

// ShippedEvent is one journal event annotated with its origin: the node
// that emitted it and the fleet trace it belongs to. The embedded event
// keeps its original sequence number, so ordering within one node is
// the node's own emission order — the invariant the merged journal (and
// journalcheck -fleet) pin per node rather than globally.
type ShippedEvent struct {
	// Node is the emitting node's name (the fleet worker ID, or
	// CoordinatorNode for the coordinator's own events).
	Node string `json:"node"`
	// Trace is the fleet trace ID the event belongs to.
	Trace string `json:"trace,omitempty"`
	journal.Event
}

// MarshalJSONL renders the shipped event as one JSON line (no trailing
// newline), shadowing the embedded event's marshaller so the node and
// trace annotations survive — the line format of the store's files and
// of the coordinator's NDJSON tail. An unencodable payload degrades to
// a describing line (the WriterSink contract): never a lost sequence
// number.
func (se ShippedEvent) MarshalJSONL() []byte {
	line, err := json.Marshal(se)
	if err != nil {
		se.Fields = map[string]any{"marshal_error": err.Error()}
		line, _ = json.Marshal(se)
	}
	return line
}

// ShipRequest is the wire body of POST /v1/fleet/journal: one batch of
// journal events forwarded by a worker. Events missing their own Node
// inherit the batch's.
type ShipRequest struct {
	Node   string         `json:"node"`
	Events []ShippedEvent `json:"events"`
}

// ShipResponse acknowledges a shipped batch: how many events were
// merged and how many were dropped as duplicates (a retried batch
// re-sending sequence numbers the store already holds) or as
// untraceable (no trace ID to file them under).
type ShipResponse struct {
	Accepted   int `json:"accepted"`
	Duplicates int `json:"duplicates,omitempty"`
	Untraced   int `json:"untraced,omitempty"`
}

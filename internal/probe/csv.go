package probe

import (
	"fmt"
	"io"
	"strconv"
)

// WriteCSV renders the snapshot's magnetization series as CSV: one row
// per sample time with columns t, then mx/my/mz per probe (headers
// "<name>.mx" etc.). Series are aligned by sample index; rows stop at
// the shortest series, which only differ transiently while a sample is
// in flight. This is the text/csv form of /v1/runs/{id}/probes.
func (s Snapshot) WriteCSV(w io.Writer) error {
	if len(s.Series) == 0 {
		_, err := io.WriteString(w, "t\n")
		return err
	}
	header := "t"
	rows := len(s.Series[0].Time)
	for _, se := range s.Series {
		header += fmt.Sprintf(",%s.mx,%s.my,%s.mz", se.Name, se.Name, se.Name)
		if len(se.Time) < rows {
			rows = len(se.Time)
		}
	}
	if _, err := io.WriteString(w, header+"\n"); err != nil {
		return err
	}
	buf := make([]byte, 0, 256)
	for i := 0; i < rows; i++ {
		buf = strconv.AppendFloat(buf[:0], s.Series[0].Time[i], 'g', -1, 64)
		for _, se := range s.Series {
			for _, col := range [3][]float64{se.MX, se.MY, se.MZ} {
				buf = append(buf, ',')
				buf = strconv.AppendFloat(buf, col[i], 'g', -1, 64)
			}
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

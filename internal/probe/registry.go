package probe

import (
	"sync"
)

// Registry maps run IDs to their recorders so serving layers can look
// up probe data after (or during) a run. It retains a bounded number of
// runs, evicting the oldest — swserve keeps the last few dozen runs
// inspectable without growing without bound.
type Registry struct {
	mu    sync.Mutex
	cap   int
	order []string // insertion order, oldest first
	recs  map[string]*Recorder
}

// NewRegistry builds a registry retaining at most capacity runs
// (capacity < 1 is clamped to 1).
func NewRegistry(capacity int) *Registry {
	if capacity < 1 {
		capacity = 1
	}
	return &Registry{cap: capacity, recs: make(map[string]*Recorder, capacity)}
}

var defaultRegistry = NewRegistry(32)

// Default returns the process-wide registry core backends publish into
// and swserve's /v1/runs/{id}/probes endpoint reads from.
func Default() *Registry { return defaultRegistry }

// Put registers the recorder under the run ID, evicting the oldest run
// if the registry is full. Re-putting an existing ID replaces its
// recorder without consuming capacity.
func (g *Registry) Put(run string, r *Recorder) {
	if run == "" || r == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, exists := g.recs[run]; !exists {
		if len(g.order) >= g.cap {
			oldest := g.order[0]
			g.order = g.order[1:]
			delete(g.recs, oldest)
		}
		g.order = append(g.order, run)
	}
	g.recs[run] = r
}

// Get returns the recorder registered under the run ID.
func (g *Registry) Get(run string) (*Recorder, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.recs[run]
	return r, ok
}

// Runs returns the retained run IDs, oldest first.
func (g *Registry) Runs() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, len(g.order))
	copy(out, g.order)
	return out
}

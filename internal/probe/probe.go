// Package probe is the in-situ measurement tier of the flight recorder
// (DESIGN.md §11): ring-buffered time-series probes attached to the LLG
// run loop that record what the magnetization *did* during a run, not
// just the final readout. Three probe families are supported, matching
// how the paper diagnoses its gates:
//
//   - point/region magnetization series — the spatially averaged m over
//     a cell set (a detector cell, an interference arm), decimated by a
//     configurable stride;
//   - per-term energy budgets — exchange/anisotropy/demag/Zeeman from
//     mag.Evaluator.EnergyBudget on a coarser cadence;
//   - rolling spectral estimates — amplitude/phase of ⟨mx⟩ at the drive
//     frequency via internal/dsp Goertzel over the retained window,
//     phase-anchored to the global drive clock like detect.LockIn.
//
// A Recorder samples into preallocated ring buffers under one mutex:
// ObserveStep performs no allocation, so attaching a recorder keeps the
// PR 3 zero-alloc stepping loop zero-alloc (pinned by an allocation
// test). Analysis (Series, Spectral, Snapshot) allocates only on query.
package probe

import (
	"fmt"
	"math"

	"sync"

	"spinwave/internal/dsp"
	"spinwave/internal/energy"
	"spinwave/internal/mag"
	"spinwave/internal/vec"
)

// Config selects what a Recorder samples and how often.
type Config struct {
	// Enabled switches probing on. The zero Config records nothing; core
	// backends skip building a Recorder entirely when Enabled is false.
	Enabled bool
	// Stride decimates the magnetization series: one sample every Stride
	// solver steps (default 4 — the cadence the PR 1 pipeline already
	// uses for its readout probes).
	Stride int
	// EnergyEvery sets the energy-budget cadence in solver steps
	// (default 512; < 0 disables energy probing). Energy sweeps are
	// allocation-free but touch every cell serially — roughly the cost
	// of one full parallel step per sweep at 8 workers — so the default
	// cadence keeps them under the E-OBS2 ≤3% overhead budget.
	EnergyEvery int
	// Capacity bounds each ring buffer (samples retained per series;
	// default 4096). Callers that know the run length size it so the
	// whole measurement window is retained.
	Capacity int
	// Freq, when > 0, is the drive frequency (Hz) used for the spectral
	// estimates included in Snapshot.
	Freq float64
}

// WithDefaults returns the config with unset cadences and capacities
// replaced by their defaults.
func (c Config) WithDefaults() Config {
	if c.Stride < 1 {
		c.Stride = 4
	}
	if c.EnergyEvery == 0 {
		c.EnergyEvery = 512
	}
	if c.Capacity < 1 {
		c.Capacity = 4096
	}
	return c
}

// Point names a cell set to probe — a single detector cell or a region.
type Point struct {
	Name  string
	Cells []int
}

// ring is a fixed-capacity float64 ring buffer (overwrite-oldest).
type ring struct {
	buf  []float64
	head int // next write position
	n    int // valid entries (≤ cap)
}

func newRing(capacity int) ring { return ring{buf: make([]float64, capacity)} }

func (r *ring) push(v float64) {
	r.buf[r.head] = v
	r.head = (r.head + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// slice returns the retained values oldest-first (allocates).
func (r *ring) slice() []float64 {
	out := make([]float64, r.n)
	start := r.head - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(start+i)%len(r.buf)]
	}
	return out
}

// series is one magnetization probe's ring storage.
type series struct {
	name       string
	cells      []int
	t, x, y, z ring
}

// Recorder samples probes from the solver loop. It implements the LLG
// solver's StepObserver interface; all methods are safe for concurrent
// use (sampling happens on the solver goroutine while HTTP handlers
// snapshot from others).
type Recorder struct {
	cfg    Config
	ev     *mag.Evaluator // nil → no energy probes
	series []*series
	index  map[string]int

	// mu guards the ring contents below and in series. sync.Mutex
	// Lock/Unlock never allocate, which ObserveStep relies on.
	mu      sync.Mutex
	et      ring
	eb      []energy.Budget
	ebHead  int
	ebCount int
	samples int64
}

// NewRecorder builds a recorder for the given probes. ev may be nil to
// disable energy probing regardless of cfg.EnergyEvery; when non-nil
// its geometry is prepared eagerly so the first energy sweep on the
// solver goroutine performs no allocation.
func NewRecorder(cfg Config, ev *mag.Evaluator, points []Point) (*Recorder, error) {
	cfg = cfg.WithDefaults()
	r := &Recorder{cfg: cfg, ev: ev, index: make(map[string]int, len(points))}
	for _, p := range points {
		if len(p.Cells) == 0 {
			return nil, fmt.Errorf("probe: point %q covers no cells", p.Name)
		}
		if _, dup := r.index[p.Name]; dup {
			return nil, fmt.Errorf("probe: duplicate point name %q", p.Name)
		}
		r.index[p.Name] = len(r.series)
		r.series = append(r.series, &series{
			name:  p.Name,
			cells: p.Cells,
			t:     newRing(cfg.Capacity),
			x:     newRing(cfg.Capacity),
			y:     newRing(cfg.Capacity),
			z:     newRing(cfg.Capacity),
		})
	}
	if ev != nil && cfg.EnergyEvery > 0 {
		ev.Prepare()
		ecap := cfg.Capacity/8 + 1
		r.et = newRing(ecap)
		r.eb = make([]energy.Budget, ecap)
	}
	return r, nil
}

// Config returns the recorder's effective (defaulted) configuration.
func (r *Recorder) Config() Config { return r.cfg }

// ObserveStep samples the probes for solver step `step` at simulation
// time t. It allocates nothing: ring writes, vec.Field.Average and
// mag.Evaluator.EnergyBudget are all allocation-free.
func (r *Recorder) ObserveStep(step int, t float64, m vec.Field) {
	onSeries := step%r.cfg.Stride == 0
	onEnergy := r.eb != nil && r.cfg.EnergyEvery > 0 && step%r.cfg.EnergyEvery == 0
	if !onSeries && !onEnergy {
		return
	}
	r.mu.Lock()
	if onSeries {
		for _, s := range r.series {
			avg := m.Average(s.cells)
			s.t.push(t)
			s.x.push(avg.X)
			s.y.push(avg.Y)
			s.z.push(avg.Z)
		}
		r.samples++
	}
	if onEnergy {
		r.et.push(t)
		r.eb[r.ebHead] = r.ev.EnergyBudget(m)
		r.ebHead = (r.ebHead + 1) % len(r.eb)
		if r.ebCount < len(r.eb) {
			r.ebCount++
		}
	}
	r.mu.Unlock()
}

// Samples returns the number of series sampling events recorded so far.
func (r *Recorder) Samples() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.samples
}

// Names returns the probe names in registration order.
func (r *Recorder) Names() []string {
	out := make([]string, len(r.series))
	for i, s := range r.series {
		out[i] = s.name
	}
	return out
}

// Series is the exported form of one probe's retained window.
type Series struct {
	Name  string    `json:"name"`
	Cells int       `json:"cells"`
	Time  []float64 `json:"t"`
	MX    []float64 `json:"mx"`
	MY    []float64 `json:"my"`
	MZ    []float64 `json:"mz"`
}

// Series returns the retained window of the named probe, oldest first.
func (r *Recorder) Series(name string) (Series, bool) {
	i, ok := r.index[name]
	if !ok {
		return Series{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.exportLocked(r.series[i]), true
}

func (r *Recorder) exportLocked(s *series) Series {
	return Series{
		Name:  s.name,
		Cells: len(s.cells),
		Time:  s.t.slice(),
		MX:    s.x.slice(),
		MY:    s.y.slice(),
		MZ:    s.z.slice(),
	}
}

// Estimate is a live lock-in reading derived from a probe's retained
// mx window.
type Estimate struct {
	Name      string  `json:"name"`
	Freq      float64 `json:"freq_hz"`
	Amplitude float64 `json:"amplitude"`
	Phase     float64 `json:"phase"`
}

// Spectral computes the amplitude and phase of the named probe's ⟨mx⟩
// at frequency f over the last `periods` drive periods of the retained
// window (clamped to the window), phase-anchored to the global t = 0
// drive clock exactly like detect.LockIn, so live estimates and final
// readouts are directly comparable.
func (r *Recorder) Spectral(name string, f float64, periods int) (Estimate, error) {
	i, ok := r.index[name]
	if !ok {
		return Estimate{}, fmt.Errorf("probe: unknown probe %q", name)
	}
	r.mu.Lock()
	times := r.series[i].t.slice()
	mx := r.series[i].x.slice()
	r.mu.Unlock()
	if len(times) < 4 {
		return Estimate{}, fmt.Errorf("probe: %q has only %d samples", name, len(times))
	}
	if periods < 1 {
		periods = 1
	}
	dt := (times[len(times)-1] - times[0]) / float64(len(times)-1)
	if dt <= 0 {
		return Estimate{}, fmt.Errorf("probe: %q has non-increasing time stamps", name)
	}
	window := int(math.Round(float64(periods) / f / dt))
	if window < 2 {
		return Estimate{}, fmt.Errorf("probe: %q sampled too coarsely for f=%g", name, f)
	}
	if window > len(mx) {
		window = len(mx)
	}
	seg := dsp.Detrend(mx[len(mx)-window:])
	amp, phase, err := dsp.Goertzel(seg, 1/dt, f)
	if err != nil {
		return Estimate{}, fmt.Errorf("probe: %q: %w", name, err)
	}
	t0 := times[len(times)-window]
	phase = dsp.PhaseDiff(phase, 2*math.Pi*f*t0)
	return Estimate{Name: name, Freq: f, Amplitude: amp, Phase: phase}, nil
}

// EnergySeries is the exported energy-budget trace.
type EnergySeries struct {
	Time       []float64 `json:"t"`
	Exchange   []float64 `json:"exchange"`
	Anisotropy []float64 `json:"anisotropy"`
	Demag      []float64 `json:"demag"`
	Zeeman     []float64 `json:"zeeman"`
	Total      []float64 `json:"total"`
}

// Energy returns the retained energy-budget window, oldest first, and
// whether energy probing is active.
func (r *Recorder) Energy() (EnergySeries, bool) {
	if r.eb == nil {
		return EnergySeries{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.ebCount
	es := EnergySeries{
		Time:       r.et.slice(),
		Exchange:   make([]float64, n),
		Anisotropy: make([]float64, n),
		Demag:      make([]float64, n),
		Zeeman:     make([]float64, n),
		Total:      make([]float64, n),
	}
	start := r.ebHead - n
	if start < 0 {
		start += len(r.eb)
	}
	for i := 0; i < n; i++ {
		b := r.eb[(start+i)%len(r.eb)]
		es.Exchange[i] = b.Exchange
		es.Anisotropy[i] = b.Anisotropy
		es.Demag[i] = b.Demag
		es.Zeeman[i] = b.Zeeman
		es.Total[i] = b.Total()
	}
	return es, true
}

// Snapshot is the JSON-ready export of a recorder's full state, served
// by swserve's /v1/runs/{id}/probes endpoint.
type Snapshot struct {
	Run      string        `json:"run,omitempty"`
	Stride   int           `json:"stride"`
	Series   []Series      `json:"series"`
	Energy   *EnergySeries `json:"energy,omitempty"`
	Spectral []Estimate    `json:"spectral,omitempty"`
}

// Snapshot exports every series, the energy trace, and — when the
// config carries a drive frequency — a spectral estimate per probe.
func (r *Recorder) Snapshot(run string) Snapshot {
	snap := Snapshot{Run: run, Stride: r.cfg.Stride}
	r.mu.Lock()
	for _, s := range r.series {
		snap.Series = append(snap.Series, r.exportLocked(s))
	}
	r.mu.Unlock()
	if es, ok := r.Energy(); ok && len(es.Time) > 0 {
		snap.Energy = &es
	}
	if r.cfg.Freq > 0 {
		for _, s := range r.series {
			if est, err := r.Spectral(s.name, r.cfg.Freq, 4); err == nil {
				snap.Spectral = append(snap.Spectral, est)
			}
		}
	}
	return snap
}

package probe

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"spinwave/internal/grid"
	"spinwave/internal/material"
	"spinwave/internal/vec"

	magpkg "spinwave/internal/mag"
)

func testEvaluator(t testing.TB, nx, ny int) *magpkg.Evaluator {
	t.Helper()
	mesh := grid.MustMesh(nx, ny, 2e-9, 2e-9, 1e-9)
	ev, err := magpkg.NewEvaluator(mesh, grid.FullRegion(mesh), material.FeCoB())
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestRecorderValidation(t *testing.T) {
	if _, err := NewRecorder(Config{}, nil, []Point{{Name: "p"}}); err == nil {
		t.Error("empty cell set accepted")
	}
	if _, err := NewRecorder(Config{}, nil, []Point{
		{Name: "p", Cells: []int{0}}, {Name: "p", Cells: []int{1}},
	}); err == nil {
		t.Error("duplicate probe name accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Stride != 4 || c.EnergyEvery != 512 || c.Capacity != 4096 {
		t.Errorf("defaults = %+v", c)
	}
	c = Config{Stride: 2, EnergyEvery: -1, Capacity: 8}.WithDefaults()
	if c.Stride != 2 || c.EnergyEvery != -1 || c.Capacity != 8 {
		t.Errorf("explicit values clobbered: %+v", c)
	}
}

// TestRecorderSeries drives ObserveStep directly and checks stride
// decimation, ring overwrite semantics, and the exported window.
func TestRecorderSeries(t *testing.T) {
	r, err := NewRecorder(Config{Stride: 2, EnergyEvery: -1, Capacity: 3}, nil,
		[]Point{{Name: "out", Cells: []int{0, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	m := vec.Field{vec.UnitX, vec.UnitX, vec.UnitZ}
	for step := 0; step < 10; step++ {
		m[0].X = float64(step)
		m[1].X = float64(step)
		r.ObserveStep(step, float64(step)*1e-12, m)
	}
	// Steps 0,2,4,6,8 sampled; capacity 3 retains steps 4,6,8.
	s, ok := r.Series("out")
	if !ok {
		t.Fatal("series not found")
	}
	if want := []float64{4, 6, 8}; len(s.MX) != 3 || s.MX[0] != want[0] || s.MX[2] != want[2] {
		t.Errorf("retained mx %v, want %v", s.MX, want)
	}
	if s.Time[0] != 4e-12 {
		t.Errorf("retained t0 = %g, want 4e-12", s.Time[0])
	}
	if s.Cells != 2 {
		t.Errorf("cells = %d, want 2", s.Cells)
	}
	if r.Samples() != 5 {
		t.Errorf("samples = %d, want 5", r.Samples())
	}
	if _, ok := r.Series("nope"); ok {
		t.Error("unknown series found")
	}
}

// TestRecorderEnergy checks the coarser energy cadence and the budget
// export path against the evaluator's total energy.
func TestRecorderEnergy(t *testing.T) {
	ev := testEvaluator(t, 4, 4)
	r, err := NewRecorder(Config{Stride: 1, EnergyEvery: 5, Capacity: 64}, ev,
		[]Point{{Name: "p", Cells: []int{0}}})
	if err != nil {
		t.Fatal(err)
	}
	m := vec.NewField(16)
	for i := range m {
		m[i] = vec.V(0.05*float64(i%4), 0, 1).Normalized()
	}
	for step := 0; step < 11; step++ {
		r.ObserveStep(step, float64(step), m)
	}
	es, ok := r.Energy()
	if !ok {
		t.Fatal("energy probing inactive")
	}
	if len(es.Time) != 3 { // steps 0, 5, 10
		t.Fatalf("energy samples %v, want 3", es.Time)
	}
	want := ev.Energy(m)
	if math.Abs(es.Total[0]-want) > 1e-12*math.Abs(want) {
		t.Errorf("energy total %g, want %g", es.Total[0], want)
	}
	if es.Exchange[0] <= 0 {
		t.Errorf("tilted state has no exchange energy: %g", es.Exchange[0])
	}
}

// TestRecorderSpectral feeds a synthetic sine through the probe and
// checks the live Goertzel estimate recovers amplitude and phase with
// the global-clock anchoring.
func TestRecorderSpectral(t *testing.T) {
	const (
		f     = 9e9
		dt    = 1e-12
		amp   = 0.05
		phase = 1.1
	)
	r, err := NewRecorder(Config{Stride: 1, EnergyEvery: -1, Capacity: 4096}, nil,
		[]Point{{Name: "det", Cells: []int{0}}})
	if err != nil {
		t.Fatal(err)
	}
	m := vec.Field{vec.UnitZ}
	for step := 0; step < 3000; step++ {
		tm := float64(step) * dt
		m[0].X = amp * math.Cos(2*math.Pi*f*tm+phase)
		r.ObserveStep(step, tm, m)
	}
	est, err := r.Spectral("det", f, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Amplitude-amp) > 0.02*amp {
		t.Errorf("amplitude %g, want %g", est.Amplitude, amp)
	}
	if d := math.Abs(est.Phase - phase); d > 0.05 {
		t.Errorf("phase %g, want %g (Δ=%g)", est.Phase, phase, d)
	}
	if _, err := r.Spectral("nope", f, 4); err == nil {
		t.Error("unknown probe estimated")
	}

	snap := r.Snapshot("r1")
	if snap.Run != "r1" || len(snap.Series) != 1 || snap.Energy != nil {
		t.Errorf("snapshot %+v", snap)
	}
}

func TestSnapshotSpectralAndCSV(t *testing.T) {
	r, err := NewRecorder(Config{Stride: 1, EnergyEvery: -1, Capacity: 512, Freq: 9e9}, nil,
		[]Point{{Name: "o1", Cells: []int{0}}, {Name: "o2", Cells: []int{1}}})
	if err != nil {
		t.Fatal(err)
	}
	m := vec.Field{vec.UnitZ, vec.UnitZ}
	for step := 0; step < 400; step++ {
		tm := float64(step) * 1e-12
		m[0].X = 0.1 * math.Cos(2*math.Pi*9e9*tm)
		m[1].X = 0.02 * math.Cos(2*math.Pi*9e9*tm)
		r.ObserveStep(step, tm, m)
	}
	snap := r.Snapshot("")
	if len(snap.Spectral) != 2 {
		t.Fatalf("spectral estimates %+v, want 2", snap.Spectral)
	}
	if snap.Spectral[0].Amplitude < snap.Spectral[1].Amplitude {
		t.Error("o1 should dominate o2")
	}

	var sb strings.Builder
	if err := snap.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "t,o1.mx,o1.my,o1.mz,o2.mx,o2.my,o2.mz" {
		t.Errorf("csv header %q", lines[0])
	}
	if len(lines) != 401 {
		t.Errorf("csv rows %d, want 401", len(lines))
	}

	var empty Snapshot
	sb.Reset()
	if err := empty.WriteCSV(&sb); err != nil || sb.String() != "t\n" {
		t.Errorf("empty csv %q, err %v", sb.String(), err)
	}
}

// TestWriteCSVEdgeCases pins the CSV export at the ring boundaries: a
// configured probe with no samples yet (header only), exactly one
// sample, and a ring that wrapped (rows limited to the retained window,
// times still ascending and aligned with the values).
func TestWriteCSVEdgeCases(t *testing.T) {
	mk := func(capacity int) *Recorder {
		r, err := NewRecorder(Config{Stride: 1, EnergyEvery: -1, Capacity: capacity}, nil,
			[]Point{{Name: "p", Cells: []int{0}}})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	csv := func(r *Recorder) []string {
		var sb strings.Builder
		if err := r.Snapshot("").WriteCSV(&sb); err != nil {
			t.Fatal(err)
		}
		return strings.Split(strings.TrimSpace(sb.String()), "\n")
	}

	// Empty ring: the probe exists, so its columns appear, but there are
	// no data rows yet.
	empty := mk(4)
	lines := csv(empty)
	if len(lines) != 1 || lines[0] != "t,p.mx,p.my,p.mz" {
		t.Errorf("empty-ring csv %q, want header only", lines)
	}

	// Single sample: exactly one data row carrying the sampled values.
	single := mk(4)
	single.ObserveStep(0, 2e-12, vec.Field{vec.V(0.25, -0.5, 1)})
	lines = csv(single)
	if len(lines) != 2 {
		t.Fatalf("single-sample csv %q, want header + 1 row", lines)
	}
	if lines[1] != "2e-12,0.25,-0.5,1" {
		t.Errorf("single-sample row %q", lines[1])
	}

	// Wrap-around: capacity 3, five samples → rows are the retained
	// window (steps 2,3,4) with ascending times matching the values.
	wrapped := mk(3)
	for step := 0; step < 5; step++ {
		wrapped.ObserveStep(step, float64(step)*1e-12, vec.Field{vec.V(float64(step), 0, 1)})
	}
	lines = csv(wrapped)
	if len(lines) != 4 {
		t.Fatalf("wrapped csv %q, want header + 3 rows", lines)
	}
	for i, want := range []string{"2e-12,2,0,1", "3e-12,3,0,1", "4e-12,4,0,1"} {
		if lines[i+1] != want {
			t.Errorf("wrapped row %d = %q, want %q", i, lines[i+1], want)
		}
	}
}

// TestObserveStepAllocates pins the flight-recorder contract: sampling
// magnetization series AND the energy budget must not allocate, so an
// attached recorder keeps the fused stepping loop at zero allocs.
func TestObserveStepAllocates(t *testing.T) {
	ev := testEvaluator(t, 8, 8)
	r, err := NewRecorder(Config{Stride: 1, EnergyEvery: 1, Capacity: 128}, ev,
		[]Point{{Name: "a", Cells: []int{0, 1, 2}}, {Name: "b", Cells: []int{9}}})
	if err != nil {
		t.Fatal(err)
	}
	m := vec.NewField(64)
	m.Fill(vec.V(0.1, 0.1, 1).Normalized())
	step := 0
	allocs := testing.AllocsPerRun(50, func() {
		r.ObserveStep(step, float64(step), m)
		step++
	})
	if allocs > 0 {
		t.Errorf("ObserveStep allocates %g per call, want 0", allocs)
	}
}

func TestRegistryEviction(t *testing.T) {
	g := NewRegistry(2)
	mk := func() *Recorder {
		r, _ := NewRecorder(Config{EnergyEvery: -1, Capacity: 2}, nil, []Point{{Name: "p", Cells: []int{0}}})
		return r
	}
	g.Put("r1", mk())
	g.Put("r2", mk())
	g.Put("r1", mk()) // replace, no eviction
	g.Put("r3", mk()) // evicts r1 (oldest)
	if _, ok := g.Get("r1"); ok {
		t.Error("r1 not evicted")
	}
	if _, ok := g.Get("r2"); !ok {
		t.Error("r2 evicted early")
	}
	if runs := g.Runs(); len(runs) != 2 || runs[0] != "r2" || runs[1] != "r3" {
		t.Errorf("runs %v", runs)
	}
	g.Put("", mk()) // no-op
	g.Put("r4", nil)
	if len(g.Runs()) != 2 {
		t.Error("empty/nil puts consumed capacity")
	}
}

func BenchmarkObserveStep(b *testing.B) {
	ev := testEvaluator(b, 30, 30)
	points := make([]Point, 3)
	for i := range points {
		points[i] = Point{Name: fmt.Sprintf("p%d", i), Cells: []int{i, i + 1}}
	}
	r, err := NewRecorder(Config{}.WithDefaults(), ev, points)
	if err != nil {
		b.Fatal(err)
	}
	m := vec.NewField(900)
	m.Fill(vec.UnitZ)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.ObserveStep(i, float64(i), m)
	}
}

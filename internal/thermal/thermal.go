// Package thermal implements the stochastic thermal field of finite-
// temperature micromagnetics (Brown 1963), in the form MuMax3 uses:
//
//	B_therm = η(step) · sqrt( 2·µ0·α·kB·T / (Bsat·γLL·V·Δt) )
//
// with η a unit-variance Gaussian random vector per cell, Bsat = µ0·Ms,
// V the cell volume and Δt the noise correlation time (one solver step).
//
// The noise is generated deterministically from (seed, cell, time bin) by
// counter-based hashing, so a simulation is exactly reproducible for a
// given seed regardless of evaluator call order — important because RK4
// evaluates the field several times per step.
//
// The paper defers thermal analysis to refs [36,43] and argues the gates
// keep functioning at finite temperature; the X-4 experiment in
// EXPERIMENTS.md uses this source to test that claim in-repo.
package thermal

import (
	"fmt"
	"math"

	"spinwave/internal/grid"
	"spinwave/internal/material"
	"spinwave/internal/units"
	"spinwave/internal/vec"
)

// Source is a mag.Source adding thermal fluctuation fields.
type Source struct {
	Region grid.Region
	Sigma  float64 // per-component standard deviation, T
	Dt     float64 // noise correlation time (solver step), s
	Seed   uint64
}

// New builds a thermal source for temperature T (kelvin) on the given
// mesh/region with solver step dt. A zero or negative temperature yields
// a no-op source with Sigma = 0.
func New(mesh grid.Mesh, region grid.Region, mat material.Params, temperature, dt float64, seed int64) (*Source, error) {
	if err := mat.Validate(); err != nil {
		return nil, err
	}
	if dt <= 0 {
		return nil, fmt.Errorf("thermal: dt %g must be positive", dt)
	}
	if len(region) != mesh.NCells() {
		return nil, fmt.Errorf("thermal: region size %d != mesh cells %d", len(region), mesh.NCells())
	}
	s := &Source{Region: region, Dt: dt, Seed: uint64(seed)}
	if temperature > 0 {
		bsat := units.Mu0 * mat.Ms
		v := mesh.CellVolume()
		s.Sigma = math.Sqrt(2 * units.Mu0 * mat.Alpha * units.KB * temperature /
			(bsat * mat.GammaOrDefault() * v * dt))
	}
	return s, nil
}

// AddTo implements mag.Source: it adds an independent Gaussian field to
// every region cell, resampled every Dt of simulation time.
func (s *Source) AddTo(t float64, B vec.Field) {
	if s.Sigma == 0 {
		return
	}
	for c := range B {
		if !s.Region[c] {
			continue
		}
		B[c] = B[c].Add(s.FieldAt(t, c))
	}
}

// FieldAt implements mag.CellSource: the thermal field of one cell is a
// pure function of (t, cell) thanks to counter-based hashing, so the
// banded stepper can sample it per cell inside the fused field pass with
// results bit-identical for any worker count.
func (s *Source) FieldAt(t float64, c int) vec.Vector {
	if s.Sigma == 0 {
		return vec.Zero
	}
	bin := uint64(t / s.Dt)
	g0, g1 := gaussPair(s.Seed, uint64(c), bin, 0)
	g2, _ := gaussPair(s.Seed, uint64(c), bin, 1)
	return vec.V(g0*s.Sigma, g1*s.Sigma, g2*s.Sigma)
}

// gaussPair returns two independent standard Gaussians derived from the
// counter tuple by splitmix64 hashing and the Box–Muller transform.
func gaussPair(seed, cell, bin, lane uint64) (float64, float64) {
	u1 := uniform(mix(seed ^ mix(cell) ^ mix(bin<<1) ^ mix(lane<<32|0xa5a5)))
	u2 := uniform(mix(seed ^ mix(cell+0x9e37) ^ mix(bin<<1|1) ^ mix(lane<<32|0x5a5a)))
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	r := math.Sqrt(-2 * math.Log(u1))
	return r * math.Cos(2*math.Pi*u2), r * math.Sin(2*math.Pi*u2)
}

// mix is the splitmix64 finalizer.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// uniform maps a 64-bit hash to (0, 1).
func uniform(x uint64) float64 {
	return (float64(x>>11) + 0.5) / float64(1<<53)
}

package thermal

import (
	"math"
	"testing"

	"spinwave/internal/grid"
	"spinwave/internal/material"
	"spinwave/internal/vec"
)

func testSource(t *testing.T, temp float64, seed int64) (*Source, grid.Mesh) {
	t.Helper()
	mesh := grid.MustMesh(16, 16, 5e-9, 5e-9, 1e-9)
	s, err := New(mesh, grid.FullRegion(mesh), material.FeCoB(), temp, 1e-13, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s, mesh
}

func TestValidation(t *testing.T) {
	mesh := grid.MustMesh(4, 4, 5e-9, 5e-9, 1e-9)
	if _, err := New(mesh, grid.FullRegion(mesh), material.Params{}, 300, 1e-13, 1); err == nil {
		t.Error("invalid material accepted")
	}
	if _, err := New(mesh, grid.FullRegion(mesh), material.FeCoB(), 300, 0, 1); err == nil {
		t.Error("zero dt accepted")
	}
	if _, err := New(mesh, make(grid.Region, 3), material.FeCoB(), 300, 1e-13, 1); err == nil {
		t.Error("bad region accepted")
	}
}

func TestZeroTemperatureIsNoOp(t *testing.T) {
	s, mesh := testSource(t, 0, 42)
	if s.Sigma != 0 {
		t.Errorf("Sigma = %g at T=0", s.Sigma)
	}
	B := vec.NewField(mesh.NCells())
	s.AddTo(1e-12, B)
	for i := range B {
		if B[i] != vec.Zero {
			t.Fatal("zero-temperature source added field")
		}
	}
}

func TestSigmaMagnitude(t *testing.T) {
	s, _ := testSource(t, 300, 42)
	// For FeCoB, 5 nm cells, 0.1 ps steps: σ should be in the mT range —
	// sanity window 0.1 mT .. 1 T.
	if s.Sigma < 1e-4 || s.Sigma > 1 {
		t.Errorf("σ = %g T, outside plausible window", s.Sigma)
	}
	// σ scales like sqrt(T).
	s2, _ := testSource(t, 1200, 42)
	if math.Abs(s2.Sigma/s.Sigma-2) > 1e-9 {
		t.Errorf("σ(4T)/σ(T) = %g, want 2", s2.Sigma/s.Sigma)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	s1, mesh := testSource(t, 300, 7)
	s2, _ := testSource(t, 300, 7)
	s3, _ := testSource(t, 300, 8)
	b1 := vec.NewField(mesh.NCells())
	b2 := vec.NewField(mesh.NCells())
	b3 := vec.NewField(mesh.NCells())
	s1.AddTo(5e-13, b1)
	s2.AddTo(5e-13, b2)
	s3.AddTo(5e-13, b3)
	same, diff := true, false
	for i := range b1 {
		if b1[i] != b2[i] {
			same = false
		}
		if b1[i] != b3[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different noise")
	}
	if !diff {
		t.Error("different seeds produced identical noise")
	}
}

func TestNoiseResamplesPerTimeBin(t *testing.T) {
	s, mesh := testSource(t, 300, 7)
	bA := vec.NewField(mesh.NCells())
	bA2 := vec.NewField(mesh.NCells())
	bB := vec.NewField(mesh.NCells())
	s.AddTo(0.2e-13, bA)  // bin 0
	s.AddTo(0.7e-13, bA2) // still bin 0
	s.AddTo(1.2e-13, bB)  // bin 1
	for i := range bA {
		if bA[i] != bA2[i] {
			t.Fatal("noise changed within one time bin")
		}
	}
	diff := false
	for i := range bA {
		if bA[i] != bB[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("noise did not resample across time bins")
	}
}

func TestNoiseStatistics(t *testing.T) {
	s, mesh := testSource(t, 300, 99)
	n := mesh.NCells()
	var sum, sum2 float64
	samples := 0
	B := vec.NewField(n)
	for bin := 0; bin < 40; bin++ {
		B.Zero()
		s.AddTo(float64(bin)*1e-13+0.5e-13, B)
		for i := 0; i < n; i++ {
			for _, v := range []float64{B[i].X, B[i].Y, B[i].Z} {
				sum += v
				sum2 += v * v
				samples++
			}
		}
	}
	mean := sum / float64(samples)
	std := math.Sqrt(sum2/float64(samples) - mean*mean)
	if math.Abs(mean) > 0.02*s.Sigma {
		t.Errorf("noise mean %g not ≈ 0 (σ=%g)", mean, s.Sigma)
	}
	if math.Abs(std-s.Sigma) > 0.03*s.Sigma {
		t.Errorf("noise std %g, want %g", std, s.Sigma)
	}
}

func TestRespectsRegion(t *testing.T) {
	mesh := grid.MustMesh(4, 1, 5e-9, 5e-9, 1e-9)
	reg := grid.Region{true, false, true, false}
	s, err := New(mesh, reg, material.FeCoB(), 300, 1e-13, 1)
	if err != nil {
		t.Fatal(err)
	}
	B := vec.NewField(4)
	s.AddTo(0, B)
	if B[1] != vec.Zero || B[3] != vec.Zero {
		t.Error("thermal field leaked outside region")
	}
	if B[0] == vec.Zero || B[2] == vec.Zero {
		t.Error("thermal field missing inside region")
	}
}

package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConversions(t *testing.T) {
	if got := NM(55); got != 55e-9 {
		t.Errorf("NM(55) = %g", got)
	}
	if got := GHz(10); got != 10e9 {
		t.Errorf("GHz(10) = %g", got)
	}
	if got := PS(100); got != 100e-12 {
		t.Errorf("PS(100) = %g", got)
	}
	if got := NS(0.42); math.Abs(got-0.42e-9) > 1e-24 {
		t.Errorf("NS(0.42) = %g", got)
	}
	if got := AJ(34.4); math.Abs(got-34.4e-18) > 1e-30 {
		t.Errorf("AJ(34.4) = %g", got)
	}
	if got := NW(34.4); math.Abs(got-34.4e-9) > 1e-21 {
		t.Errorf("NW(34.4) = %g", got)
	}
}

func TestRoundTrips(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
			return true
		}
		ok := func(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(b)) }
		return ok(ToNM(NM(v)), v) && ok(ToGHz(GHz(v)), v) && ok(ToNS(NS(v)), v) && ok(ToAJ(AJ(v)), v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWaveNumberWavelength(t *testing.T) {
	lambda := NM(55)
	k := WaveNumber(lambda)
	// Paper: k = 2π/λ ≈ 114 rad/µm for λ = 55 nm.
	if got := k * Micrometer; math.Abs(got-114.2) > 0.1 {
		t.Errorf("k = %g rad/µm, want ≈114.2", got)
	}
	if got := Wavelength(k); math.Abs(got-lambda) > 1e-18 {
		t.Errorf("Wavelength(WaveNumber(λ)) = %g", got)
	}
	// Paper uses k = 50 rad/µm in the dispersion discussion.
	if got := RadPerUM(50); got != 50e6 {
		t.Errorf("RadPerUM(50) = %g", got)
	}
}

func TestConstants(t *testing.T) {
	if math.Abs(Mu0-1.2566370614e-6) > 1e-15 {
		t.Errorf("Mu0 = %g", Mu0)
	}
	// γ/2π should be about 28 GHz/T.
	if got := GammaLL / (2 * math.Pi) / 1e9; math.Abs(got-28.0) > 0.1 {
		t.Errorf("γ/2π = %g GHz/T", got)
	}
}

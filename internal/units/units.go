// Package units provides physical constants and unit helpers used across
// the spin-wave simulator. All internal computation is in SI units; the
// helpers exist so that call sites can state values in the units the paper
// uses (nm, GHz, aJ, ...) without sprinkling conversion factors around.
package units

import "math"

// Physical constants (SI, CODATA-2018 where applicable).
const (
	// Mu0 is the vacuum permeability in T·m/A.
	Mu0 = 4 * math.Pi * 1e-7
	// KB is the Boltzmann constant in J/K.
	KB = 1.380649e-23
	// GammaLL is the Landau–Lifshitz gyromagnetic ratio |γ| in rad/(s·T)
	// for a g-factor of 2.002, as used by MuMax3.
	GammaLL = 1.7595e11
	// MuB is the Bohr magneton in J/T.
	MuB = 9.2740100783e-24
	// Hbar is the reduced Planck constant in J·s.
	Hbar = 1.054571817e-34
)

// Length units in meters.
const (
	Meter      = 1.0
	Millimeter = 1e-3
	Micrometer = 1e-6
	Nanometer  = 1e-9
	Picometer  = 1e-12
)

// Time units in seconds.
const (
	Second      = 1.0
	Millisecond = 1e-3
	Microsecond = 1e-6
	Nanosecond  = 1e-9
	Picosecond  = 1e-12
	Femtosecond = 1e-15
)

// Frequency units in Hz.
const (
	Hertz     = 1.0
	Kilohertz = 1e3
	Megahertz = 1e6
	Gigahertz = 1e9
	Terahertz = 1e12
)

// Energy units in joules.
const (
	Joule      = 1.0
	Femtojoule = 1e-15
	Attojoule  = 1e-18
	Zeptojoule = 1e-21
)

// Power units in watts.
const (
	Watt      = 1.0
	Milliwatt = 1e-3
	Microwatt = 1e-6
	Nanowatt  = 1e-9
	Picowatt  = 1e-12
)

// NM converts a value given in nanometers to meters.
func NM(v float64) float64 { return v * Nanometer }

// GHz converts a value given in gigahertz to hertz.
func GHz(v float64) float64 { return v * Gigahertz }

// PS converts a value given in picoseconds to seconds.
func PS(v float64) float64 { return v * Picosecond }

// NS converts a value given in nanoseconds to seconds.
func NS(v float64) float64 { return v * Nanosecond }

// AJ converts a value given in attojoules to joules.
func AJ(v float64) float64 { return v * Attojoule }

// NW converts a value given in nanowatts to watts.
func NW(v float64) float64 { return v * Nanowatt }

// ToNM converts meters to nanometers.
func ToNM(v float64) float64 { return v / Nanometer }

// ToGHz converts hertz to gigahertz.
func ToGHz(v float64) float64 { return v / Gigahertz }

// ToNS converts seconds to nanoseconds.
func ToNS(v float64) float64 { return v / Nanosecond }

// ToAJ converts joules to attojoules.
func ToAJ(v float64) float64 { return v / Attojoule }

// RadPerUM converts a wave number given in rad/µm to rad/m.
func RadPerUM(v float64) float64 { return v / Micrometer }

// WaveNumber returns k = 2π/λ for a wavelength in meters.
func WaveNumber(lambda float64) float64 { return 2 * math.Pi / lambda }

// Wavelength returns λ = 2π/k for a wave number in rad/m.
func Wavelength(k float64) float64 { return 2 * math.Pi / k }

package journal

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

// orderSink records the sequence numbers it observes, failing fast on
// any out-of-order or duplicated delivery.
type orderSink struct {
	mu   sync.Mutex
	seqs []uint64
}

func (s *orderSink) Emit(e Event) {
	s.mu.Lock()
	s.seqs = append(s.seqs, e.Seq)
	s.mu.Unlock()
}

// TestEmitOrdering pins the delivery contract: with many goroutines
// emitting concurrently, every sink observes strictly increasing,
// gap-free sequence numbers. Run under -race by `make test-race`.
func TestEmitOrdering(t *testing.T) {
	j := New()
	a, b := &orderSink{}, &orderSink{}
	defer j.Attach(a)()
	defer j.Attach(b)()

	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			run := fmt.Sprintf("r%d", w)
			for i := 0; i < per; i++ {
				j.Emit(run, "test.event", F("i", i))
			}
		}(w)
	}
	wg.Wait()

	for name, s := range map[string]*orderSink{"a": a, "b": b} {
		if len(s.seqs) != workers*per {
			t.Fatalf("sink %s saw %d events, want %d", name, len(s.seqs), workers*per)
		}
		for i, seq := range s.seqs {
			if want := uint64(i + 1); seq != want {
				t.Fatalf("sink %s position %d has seq %d, want %d", name, i, seq, want)
			}
		}
	}
}

// TestDisabledEmitAllocates pins the zero-cost-when-disabled contract:
// with no sink attached, Emit must not allocate.
func TestDisabledEmitAllocates(t *testing.T) {
	j := New()
	allocs := testing.AllocsPerRun(100, func() {
		j.Emit("r1", "test.event")
	})
	if allocs > 0 {
		t.Errorf("disabled Emit allocates %g per call, want 0", allocs)
	}
}

func TestAttachDetach(t *testing.T) {
	j := New()
	if j.Enabled() {
		t.Fatal("fresh journal reports enabled")
	}
	s := &orderSink{}
	detach := j.Attach(s)
	if !j.Enabled() {
		t.Fatal("journal with a sink reports disabled")
	}
	j.Emit("", "one")
	detach()
	if j.Enabled() {
		t.Fatal("journal still enabled after detach")
	}
	j.Emit("", "two")
	if len(s.seqs) != 1 {
		t.Fatalf("sink saw %d events, want 1 (post-detach emit leaked)", len(s.seqs))
	}
	detach() // idempotent
}

func TestWriterSinkJSONL(t *testing.T) {
	var buf bytes.Buffer
	j := New()
	defer j.Attach(NewWriterSink(&buf))()
	j.Emit("r42", "run.start", F("gate", "xor"), F("inputs", "10"))
	j.Emit("r42", "run.complete")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2: %q", len(lines), buf.String())
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("line 1 is not JSON: %v", err)
	}
	if e.Seq != 1 || e.Run != "r42" || e.Name != "run.start" || e.Fields["gate"] != "xor" {
		t.Errorf("decoded event %+v", e)
	}
	if e.TimeNS == 0 {
		t.Error("event missing timestamp")
	}
}

// failAfterWriter accepts n writes, then fails every one after.
type failAfterWriter struct {
	n      int
	writes int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.n {
		return 0, fmt.Errorf("disk full")
	}
	return len(p), nil
}

// TestWriterSinkDegradesOnError pins the file-sink failure contract:
// the first write error latches the sink into a degraded state — no
// panic, no error surfaced to the emitting run, and no further write
// attempts against the dead writer.
func TestWriterSinkDegradesOnError(t *testing.T) {
	w := &failAfterWriter{n: 1}
	j := New()
	s := NewWriterSink(w)
	defer j.Attach(s)()

	j.Emit("r1", "run.start") // succeeds
	if s.Err() != nil {
		t.Fatalf("healthy sink reports error: %v", s.Err())
	}
	j.Emit("r1", "run.complete") // fails, degrades the sink
	if s.Err() == nil {
		t.Fatal("failed write did not degrade the sink")
	}
	j.Emit("r1", "run.extra")
	j.Emit("r1", "run.more")
	if w.writes != 2 {
		t.Errorf("degraded sink attempted %d writes, want 2 (one success, one failure)", w.writes)
	}
	// The journal itself stays usable: other sinks still see events.
	o := &orderSink{}
	defer j.Attach(o)()
	j.Emit("r1", "after")
	if len(o.seqs) != 1 {
		t.Error("journal delivery broken after a sink degraded")
	}
}

func TestRingSink(t *testing.T) {
	r := NewRingSink(3)
	for i := 1; i <= 5; i++ {
		run := "a"
		if i%2 == 0 {
			run = "b"
		}
		r.Emit(Event{Seq: uint64(i), Run: run, Name: "e"})
	}
	got := r.Events()
	if len(got) != 3 || got[0].Seq != 3 || got[2].Seq != 5 {
		t.Fatalf("ring retained %+v, want seqs 3..5", got)
	}
	onlyB := r.EventsFor("b")
	if len(onlyB) != 1 || onlyB[0].Seq != 4 {
		t.Fatalf("EventsFor(b) = %+v, want seq 4", onlyB)
	}
}

// TestHubBackpressure verifies a slow subscriber drops instead of
// blocking the emitter, and that drops are counted.
func TestHubBackpressure(t *testing.T) {
	h := NewHub()
	ch, dropped, cancel := h.Subscribe("", 2)
	defer cancel()
	for i := 1; i <= 5; i++ {
		h.Emit(Event{Seq: uint64(i)}) // must never block
	}
	if d := dropped(); d != 3 {
		t.Errorf("dropped %d events, want 3", d)
	}
	if e := <-ch; e.Seq != 1 {
		t.Errorf("first delivered seq %d, want 1", e.Seq)
	}
}

// TestHubRunFilterAndCancel covers per-run filtering and concurrent
// emit/cancel under -race.
func TestHubRunFilterAndCancel(t *testing.T) {
	h := NewHub()
	ch, _, cancel := h.Subscribe("r1", 16)
	h.Emit(Event{Seq: 1, Run: "r1"})
	h.Emit(Event{Seq: 2, Run: "r2"})
	h.Emit(Event{Seq: 3, Run: "r1"})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			h.Emit(Event{Seq: uint64(10 + i), Run: "r1"})
		}
	}()
	cancel()
	cancel() // idempotent
	wg.Wait()

	var got []uint64
	for e := range ch {
		got = append(got, e.Seq)
	}
	if len(got) < 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("filtered delivery %v, want prefix [1 3]", got)
	}
	if h.Subscribers() != 0 {
		t.Errorf("%d subscribers after cancel, want 0", h.Subscribers())
	}
}

func TestRunIDContext(t *testing.T) {
	if RunID(context.Background()) != "" {
		t.Error("background context carries a run ID")
	}
	if RunID(nil) != "" { //nolint:staticcheck // deliberate nil-safety check
		t.Error("nil context carries a run ID")
	}
	ctx := WithRunID(context.Background(), "r77")
	if got := RunID(ctx); got != "r77" {
		t.Errorf("RunID = %q, want r77", got)
	}
	a, b := NewRunID(), NewRunID()
	if a == b || len(a) < 9 || a[0] != 'r' {
		t.Errorf("run IDs %q, %q not unique r-prefixed hex", a, b)
	}
}

func TestLoggerStampsRunID(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, slog.LevelInfo)
	ctx := WithRunID(context.Background(), "r99")
	lg.InfoContext(ctx, "transient settled", "steps", 123)
	lg.Log(context.Background(), slog.LevelDebug, "hidden")
	out := buf.String()
	if !strings.Contains(out, "run=r99") {
		t.Errorf("log line missing run ID: %q", out)
	}
	if strings.Contains(out, "hidden") {
		t.Errorf("debug line leaked at info level: %q", out)
	}
	// Derived handlers keep stamping.
	buf.Reset()
	lg.With("worker", 3).WithGroup("g").InfoContext(ctx, "msg")
	if !strings.Contains(buf.String(), "run=r99") {
		t.Errorf("derived logger lost run stamping: %q", buf.String())
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"WARN": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) did not fail")
	}
}

package journal

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// runIDHandler decorates a slog.Handler so every record emitted with a
// context carrying a run ID (WithRunID) gets a "run" attribute — the
// shared handler behind the CLIs' -log-level flags that keeps log
// lines, journal events and trace spans correlated by run ID.
type runIDHandler struct {
	slog.Handler
}

// Handle implements slog.Handler.
func (h runIDHandler) Handle(ctx context.Context, r slog.Record) error {
	if id := RunID(ctx); id != "" {
		r.AddAttrs(slog.String("run", id))
	}
	return h.Handler.Handle(ctx, r)
}

// WithAttrs implements slog.Handler, preserving the run-ID stamping on
// derived handlers.
func (h runIDHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return runIDHandler{Handler: h.Handler.WithAttrs(attrs)}
}

// WithGroup implements slog.Handler, preserving the run-ID stamping on
// derived handlers.
func (h runIDHandler) WithGroup(name string) slog.Handler {
	return runIDHandler{Handler: h.Handler.WithGroup(name)}
}

// NewLogger returns a text-format slog.Logger writing to w at the given
// level, with run IDs stamped from the context onto every record.
func NewLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	return slog.New(runIDHandler{Handler: slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})})
}

// ParseLevel maps the -log-level flag values (debug, info, warn, error)
// to slog levels, case-insensitively.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("journal: unknown log level %q (want debug, info, warn or error)", s)
	}
}

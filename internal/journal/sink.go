package journal

import (
	"io"
	"log/slog"
	"sync"
)

// WriterSink renders events as JSON Lines to an io.Writer — the file
// sink behind the -journal CLI flags. Writes are serialized by the
// journal's delivery mutex; the sink adds its own mutex so it is also
// safe when shared across journals.
//
// Journaling must never fail the run: on the first write error the sink
// degrades — it logs one warning, latches the error, and drops every
// subsequent event instead of hammering a dead writer once per solver
// event (a full disk would otherwise turn each journal emit into a
// failing syscall).
type WriterSink struct {
	mu  sync.Mutex
	w   io.Writer
	err error // first write error; non-nil → sink degraded
}

// NewWriterSink builds a JSONL sink over w.
func NewWriterSink(w io.Writer) *WriterSink { return &WriterSink{w: w} }

// Emit implements Sink.
func (s *WriterSink) Emit(e Event) {
	line := append(e.MarshalJSONL(), '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if _, err := s.w.Write(line); err != nil {
		s.err = err
		slog.Warn("journal writer sink degraded: dropping further events", "err", err)
	}
}

// Err returns the write error that degraded the sink, or nil while it
// is healthy.
func (s *WriterSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// RingSink retains the most recent events in a fixed-capacity ring —
// the in-memory sink used by tests and by swserve to replay the recent
// history of a run before switching a tail to live delivery.
type RingSink struct {
	mu    sync.Mutex
	buf   []Event
	head  int // next write position
	count int // number of valid entries (≤ cap)
}

// NewRingSink builds a ring retaining the last capacity events
// (capacity < 1 is clamped to 1).
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		capacity = 1
	}
	return &RingSink{buf: make([]Event, capacity)}
}

// Emit implements Sink.
func (s *RingSink) Emit(e Event) {
	s.mu.Lock()
	s.buf[s.head] = e
	s.head = (s.head + 1) % len(s.buf)
	if s.count < len(s.buf) {
		s.count++
	}
	s.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (s *RingSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, 0, s.count)
	start := s.head - s.count
	if start < 0 {
		start += len(s.buf)
	}
	for i := 0; i < s.count; i++ {
		out = append(out, s.buf[(start+i)%len(s.buf)])
	}
	return out
}

// EventsFor returns the retained events of one run, oldest first. An
// empty run ID matches every event.
func (s *RingSink) EventsFor(run string) []Event {
	all := s.Events()
	if run == "" {
		return all
	}
	out := all[:0]
	for _, e := range all {
		if e.Run == run {
			out = append(out, e)
		}
	}
	return out
}

// Hub fans events out to live subscribers over bounded buffered
// channels — the delivery mechanism behind swserve's NDJSON tail. A
// subscriber that cannot keep up has events dropped (counted per
// subscriber) rather than stalling the emitting solver: journal
// delivery must never exert backpressure on the physics loop.
type Hub struct {
	mu   sync.Mutex
	subs map[int]*subscriber
	next int
}

// subscriber is one live tail.
type subscriber struct {
	run     string // filter; "" matches all runs
	ch      chan Event
	dropped int64
}

// NewHub builds an empty hub.
func NewHub() *Hub { return &Hub{subs: make(map[int]*subscriber)} }

// Emit implements Sink: non-blocking delivery to every matching
// subscriber, dropping on a full buffer.
func (h *Hub) Emit(e Event) {
	h.mu.Lock()
	for _, sub := range h.subs {
		if sub.run != "" && sub.run != e.Run {
			continue
		}
		select {
		case sub.ch <- e:
		default:
			sub.dropped++
		}
	}
	h.mu.Unlock()
}

// Subscribe registers a live tail for one run ID ("" = all runs) with
// the given channel buffer (clamped to ≥1). It returns the delivery
// channel, a function reporting how many events were dropped on buffer
// overflow, and a cancel function that unregisters and closes the
// channel. Cancel is idempotent.
func (h *Hub) Subscribe(run string, buffer int) (events <-chan Event, dropped func() int64, cancel func()) {
	if buffer < 1 {
		buffer = 1
	}
	sub := &subscriber{run: run, ch: make(chan Event, buffer)}
	h.mu.Lock()
	id := h.next
	h.next++
	h.subs[id] = sub
	h.mu.Unlock()
	var once sync.Once
	return sub.ch, func() int64 {
			h.mu.Lock()
			defer h.mu.Unlock()
			return sub.dropped
		}, func() {
			once.Do(func() {
				h.mu.Lock()
				delete(h.subs, id)
				h.mu.Unlock()
				close(sub.ch)
			})
		}
}

// Subscribers returns the number of live subscriptions.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Package journal is the structured run journal of the flight-recorder
// tier (DESIGN.md §11): an append-only stream of lifecycle events —
// run start, transient settled, lock-in window, adaptive accept/reject
// stats, engine cache provenance, completion or error — emitted by the
// core backends and the evaluation engine, and delivered in order to
// pluggable sinks (JSONL writer, in-memory ring, live streaming hub).
//
// Every event carries a monotonic sequence number, a wall-clock
// timestamp, and the run ID of the evaluation that produced it. The
// same run ID is stamped onto trace spans as a span label (obs.L("run",
// id)) and onto slog records by the handler returned from NewLogger, so
// journal lines, span timelines and logs correlate by a single key.
//
// The journal is dependency-free (standard library only) and
// zero-cost while disabled: with no sink attached, Emit performs one
// atomic load and returns. With sinks attached, events are assigned
// sequence numbers and delivered under one mutex, so every sink
// observes the stream in strictly increasing sequence order — the
// property the ordering tests pin under -race.
package journal

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one journal record. The zero value is not meaningful; events
// are created by Journal.Emit.
type Event struct {
	// Seq is the monotonic sequence number, unique and strictly
	// increasing per Journal (starting at 1).
	Seq uint64 `json:"seq"`
	// TimeNS is the wall-clock emission time in Unix nanoseconds.
	TimeNS int64 `json:"time_ns"`
	// Run identifies the evaluation run the event belongs to; empty for
	// process-level events.
	Run string `json:"run,omitempty"`
	// Name is the event name, dot-namespaced by subsystem
	// ("run.start", "engine.cache", "adaptive.stats", ...).
	Name string `json:"event"`
	// Fields holds the event payload.
	Fields map[string]any `json:"fields,omitempty"`
}

// Field is one key/value payload entry passed to Emit.
type Field struct {
	Key   string
	Value any
}

// F is shorthand for constructing a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Sink receives journal events. Emit calls Sinks under the journal's
// delivery mutex, so implementations observe events in sequence order
// and need no ordering logic of their own; they should be cheap (record
// and return) because they run on the emitting goroutine.
type Sink interface {
	Emit(e Event)
}

// Journal assigns sequence numbers and fans events out to its sinks. A
// Journal is safe for concurrent use by any number of emitters.
type Journal struct {
	mu    sync.Mutex
	seq   uint64
	sinks []Sink
	n     atomic.Int32 // len(sinks), read lock-free by Enabled/Emit
}

// New builds an empty journal with no sinks attached.
func New() *Journal { return &Journal{} }

var defaultJournal = New()

// Default returns the process-wide journal the instrumented packages
// (core, engine, llg) emit into.
func Default() *Journal { return defaultJournal }

// Enabled reports whether at least one sink is attached. Instrumented
// code may use it to skip building expensive payloads.
func (j *Journal) Enabled() bool { return j.n.Load() > 0 }

// Sinks returns the number of attached sinks — surfaced by swserve's
// deep health check so a journal that silently lost its sinks (or never
// attached any) is visible from the outside.
func (j *Journal) Sinks() int { return int(j.n.Load()) }

// Seq returns the sequence number of the most recently emitted event
// (0 before the first). Checkpoint manifests record it so a resumed
// run's journal can be correlated with the interrupted run's tail.
func (j *Journal) Seq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Attach adds a sink and returns a detach function that removes exactly
// that sink again (for deferred cleanup in CLIs and tests).
func (j *Journal) Attach(s Sink) (detach func()) {
	j.mu.Lock()
	j.sinks = append(j.sinks, s)
	j.n.Store(int32(len(j.sinks)))
	j.mu.Unlock()
	return func() {
		j.mu.Lock()
		for i, have := range j.sinks {
			if have == s {
				j.sinks = append(j.sinks[:i:i], j.sinks[i+1:]...)
				break
			}
		}
		j.n.Store(int32(len(j.sinks)))
		j.mu.Unlock()
	}
}

// Emit delivers one event to every attached sink, assigning the next
// sequence number and the wall-clock timestamp. With no sink attached
// it returns immediately without allocating.
func (j *Journal) Emit(run, name string, fields ...Field) {
	if j.n.Load() == 0 {
		return
	}
	var fm map[string]any
	if len(fields) > 0 {
		fm = make(map[string]any, len(fields))
		for _, f := range fields {
			fm[f.Key] = f.Value
		}
	}
	now := time.Now().UnixNano()
	j.mu.Lock()
	j.seq++
	e := Event{Seq: j.seq, TimeNS: now, Run: run, Name: name, Fields: fm}
	for _, s := range j.sinks {
		s.Emit(e)
	}
	j.mu.Unlock()
}

// NewRunID returns a fresh 16-hex-digit run identifier ("r" prefix),
// unique across processes (crypto/rand backed, counter fallback).
func NewRunID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("r%016x", runIDFallback.Add(1))
	}
	return "r" + hex.EncodeToString(b[:])
}

var runIDFallback atomic.Uint64

// ctxKey is the private context key carrying the run ID.
type ctxKey struct{}

// WithRunID returns a context carrying the run ID, so layers below the
// engine (the micromagnetic backend) journal under the same ID the
// engine assigned.
func WithRunID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// RunID returns the run ID carried by ctx, or "".
func RunID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}

// MarshalJSONL renders the event as one JSON line (no trailing
// newline). Errors cannot occur for events built by Emit (all payload
// values are JSON-encodable by construction of the call sites); a
// non-encodable payload degrades to an error-describing line rather
// than a lost event.
func (e Event) MarshalJSONL() []byte {
	b, err := json.Marshal(e)
	if err != nil {
		b, _ = json.Marshal(Event{Seq: e.Seq, TimeNS: e.TimeNS, Run: e.Run, Name: e.Name,
			Fields: map[string]any{"marshal_error": err.Error()}})
	}
	return b
}

// Package mag computes the effective magnetic field (in Tesla) entering
// the Landau–Lifshitz–Gilbert equation for a 2-D thin-film mesh:
//
//	B_eff = B_exchange + B_anisotropy + B_demag + B_bias + Σ B_sources(t)
//
// Terms:
//   - Exchange: B_ex = (2·Aex/Ms)·∇²m with a 5-point Laplacian and free
//     (Neumann) boundary conditions at geometry edges — missing neighbors
//     simply do not contribute, the same convention MuMax3 uses.
//   - Uniaxial anisotropy: B_anis = (2·Ku1/Ms)·(m·u)·u.
//   - Demagnetization: the film is 1 nm thick, far thinner than any lateral
//     feature, so the demag tensor is ≈ diag(0, 0, 1) and the field reduces
//     to the local term B_demag = −µ0·Ms·mz·ẑ. This is the documented
//     substitution for MuMax3's FFT-based convolution (see DESIGN.md §2);
//     it preserves forward-volume spin-wave propagation, which is the only
//     physics the gates rely on.
//   - Bias: a uniform static field.
//   - Sources: time-dependent contributions (antennas, thermal field)
//     via the Source interface.
//
// Units are SI throughout (see internal/units): fields in Tesla, lengths
// in meters, energies in Joules.
//
// # Concurrency
//
// An Evaluator is driven by one goroutine at a time (the solver), but
// its banded entry points — FieldRows and the RowsSource calls — may run
// concurrently for disjoint row bands: each band writes only its own
// rows while the magnetization input is read-only, so the exchange
// stencil's one-row halo reads are safe without locks (DESIGN.md §10).
// All local terms are evaluated per cell with band-independent
// arithmetic, so results are bit-for-bit identical for any banding.
package mag

import (
	"fmt"
	"sync"

	"spinwave/internal/grid"
	"spinwave/internal/material"
	"spinwave/internal/tile"
	"spinwave/internal/units"
	"spinwave/internal/vec"
)

// Coeffs are the per-material field coefficients in Tesla-compatible form.
type Coeffs struct {
	ExFactor float64    // 2·Aex/Ms, T·m²
	BAnis    float64    // 2·Ku1/Ms, T
	AnisAxis vec.Vector // unit easy axis
	BDemag   float64    // µ0·Ms, T
	BBias    vec.Vector // uniform external field, T
	Ms       float64    // saturation magnetization, A/m (for energies)
}

// CoeffsFor derives the field coefficients from material parameters.
func CoeffsFor(mat material.Params) Coeffs {
	return Coeffs{
		ExFactor: 2 * mat.Aex / mat.Ms,
		BAnis:    2 * mat.Ku1 / mat.Ms,
		AnisAxis: mat.AnisU.Normalized(),
		BDemag:   units.Mu0 * mat.Ms,
		Ms:       mat.Ms,
	}
}

// Source is a time-dependent field contribution (antenna, thermal field).
type Source interface {
	// AddTo adds the source's field at time t (seconds) into B (Tesla).
	AddTo(t float64, B vec.Field)
}

// SparseSource is a Source confined to a small fixed set of cells (an
// antenna). The parallel stepper accumulates sparse sources into an
// overlay field once per stage instead of sweeping the full mesh.
type SparseSource interface {
	Source
	// SourceCells returns the flat indices the source writes; the set
	// must not change between calls.
	SourceCells() []int
}

// CellSource is a Source whose value at a cell is an independent pure
// function of (t, cell) — the counter-based thermal field. The fused
// stepper samples it per cell inside the stencil pass; because the value
// does not depend on evaluation order, banding leaves results
// bit-identical.
type CellSource interface {
	Source
	// FieldAt returns the source field at one cell.
	FieldAt(t float64, cell int) vec.Vector
}

// RowsSource is a Source that can restrict itself to a row range, so
// banded field passes can include it without a separate serial sweep.
type RowsSource interface {
	Source
	// AddToRows adds the source's field for rows [j0, j1) only.
	AddToRows(t float64, B vec.Field, j0, j1 int)
}

// DemagConvolver is the interface satisfied by demag.Kernel: an exact
// magnetostatic interaction evaluated from the current magnetization.
// When installed on an Evaluator it replaces the local thin-film term.
type DemagConvolver interface {
	AddInto(m, B vec.Field) error
}

// Evaluator assembles the effective field for a fixed mesh/geometry.
type Evaluator struct {
	Mesh    grid.Mesh
	Region  grid.Region
	Coeffs  Coeffs
	Sources []Source

	// Workers > 1 evaluates the local field terms of Field in parallel
	// over row bands using transient goroutines. The result is
	// bit-identical to the serial evaluation because cells are
	// partitioned disjointly and the exchange stencil only reads the
	// magnetization. The LLG solver does not use this path: it drives
	// FieldRows on its own persistent tile.Pool (see Solver.SetWorkers).
	Workers int

	// FullDemag, when non-nil, replaces the local thin-film demag term
	// with the exact Newell-tensor convolution (see internal/demag).
	FullDemag DemagConvolver

	// DisableExchange, DisableAnisotropy and DisableDemag switch off
	// individual terms; used by ablation benchmarks and tests.
	DisableExchange   bool
	DisableAnisotropy bool
	DisableDemag      bool

	// runs is the lazily built iteration geometry (active runs and
	// stencil neighbor masks). It caches the Region contents: call
	// Invalidate after mutating Region in place.
	runs     *grid.RunSet
	runsOnce sync.Once

	// pool, when set, parallelizes Energy row partials.
	pool *tile.Pool
}

// NewEvaluator constructs an evaluator after validating shapes.
func NewEvaluator(mesh grid.Mesh, region grid.Region, mat material.Params) (*Evaluator, error) {
	if len(region) != mesh.NCells() {
		return nil, fmt.Errorf("mag: region has %d cells, mesh has %d", len(region), mesh.NCells())
	}
	if err := mat.Validate(); err != nil {
		return nil, err
	}
	return &Evaluator{Mesh: mesh, Region: region, Coeffs: CoeffsFor(mat)}, nil
}

// Prepare builds the precomputed iteration geometry (active-cell runs
// and per-cell stencil neighbor masks) if it has not been built yet. It
// is called implicitly by Field/FieldRows; call it explicitly to move
// the one-time cost out of the first step. The geometry snapshots the
// Region contents — mutate the region only before Prepare, or call
// Invalidate afterwards.
func (e *Evaluator) Prepare() *grid.RunSet {
	e.runsOnce.Do(func() { e.runs = grid.NewRunSet(e.Mesh, e.Region) })
	return e.runs
}

// Invalidate discards the precomputed geometry so the next evaluation
// rebuilds it from the current Region contents.
func (e *Evaluator) Invalidate() {
	e.runs = nil
	e.runsOnce = sync.Once{}
}

// SetPool installs a persistent worker pool used to parallelize the
// Energy reduction. A nil pool restores serial evaluation. (Field-term
// banding is driven by the caller via FieldRows; it does not use this
// pool.)
func (e *Evaluator) SetPool(p *tile.Pool) { e.pool = p }

// Field evaluates B_eff at time t for magnetization m, writing into B.
// Cells outside the region are set to zero.
func (e *Evaluator) Field(t float64, m, B vec.Field) {
	if e.FullDemag != nil {
		e.fieldFullDemag(t, m, B)
		return
	}
	e.Prepare()
	B.Zero()
	if e.Workers > 1 && e.Mesh.Ny >= e.Workers {
		var wg sync.WaitGroup
		for _, b := range tile.Split(e.Mesh.Ny, e.Workers) {
			wg.Add(1)
			go func(j0, j1 int) {
				defer wg.Done()
				e.FieldRows(m, B, j0, j1)
			}(b.J0, b.J1)
		}
		wg.Wait()
	} else {
		e.FieldRows(m, B, 0, e.Mesh.Ny)
	}
	for _, s := range e.Sources {
		s.AddTo(t, B)
	}
}

// fieldFullDemag is the evaluation path with the exact Newell-tensor
// convolution installed: banded local terms, then the global
// convolution, then bias and sources — the pre-tiling term order.
func (e *Evaluator) fieldFullDemag(t float64, m, B vec.Field) {
	if e.Workers > 1 && e.Mesh.Ny >= e.Workers {
		var wg sync.WaitGroup
		for _, b := range tile.Split(e.Mesh.Ny, e.Workers) {
			wg.Add(1)
			go func(j0, j1 int) {
				defer wg.Done()
				lo, hi := j0*e.Mesh.Nx, j1*e.Mesh.Nx
				B[lo:hi].Zero()
				e.localTerms(m, B, j0, j1)
			}(b.J0, b.J1)
		}
		wg.Wait()
	} else {
		B.Zero()
		e.localTerms(m, B, 0, e.Mesh.Ny)
	}
	if !e.DisableDemag {
		// The exact convolution is global; it runs after the banded
		// local terms. Errors can only come from shape mismatches, which
		// the constructor rules out.
		if err := e.FullDemag.AddInto(m, B); err != nil {
			panic(err)
		}
	}
	if e.Coeffs.BBias != vec.Zero {
		AddUniform(e.Region, B, e.Coeffs.BBias)
	}
	for _, s := range e.Sources {
		s.AddTo(t, B)
	}
}

// FieldRows writes the fused local field — exchange, anisotropy,
// thin-film demag and bias — into B for every region cell of rows
// [j0, j1), overwriting previous contents of those cells. Cells outside
// the region are not touched. Disjoint row ranges may run concurrently;
// m must not be mutated while any FieldRows call is in flight.
//
// This is the hot kernel of the parallel stepper: one sweep over the
// precomputed active runs replaces the zero + exchange + anisotropy +
// demag + bias sweeps of the term-by-term path, with the per-cell
// arithmetic kept in the exact same order so results are bit-identical.
func (e *Evaluator) FieldRows(m, B vec.Field, j0, j1 int) {
	rs := e.Prepare()
	masks := rs.Masks()
	nx := e.Mesh.Nx
	wx := e.Coeffs.ExFactor / (e.Mesh.Dx * e.Mesh.Dx)
	wy := e.Coeffs.ExFactor / (e.Mesh.Dy * e.Mesh.Dy)
	doEx := !e.DisableExchange
	bAnis, axis := e.Coeffs.BAnis, e.Coeffs.AnisAxis
	doAnis := !e.DisableAnisotropy && bAnis != 0
	bDemag := e.Coeffs.BDemag
	doDemag := !e.DisableDemag
	bias := e.Coeffs.BBias
	doBias := bias != vec.Zero
	for _, run := range rs.RowRuns(j0, j1) {
		for c := int(run.Start); c < int(run.End); c++ {
			mc := m[c]
			var acc vec.Vector
			if doEx {
				mask := masks[c]
				if mask&grid.MaskLeft != 0 {
					acc = acc.MAdd(wx, m[c-1].Sub(mc))
				}
				if mask&grid.MaskRight != 0 {
					acc = acc.MAdd(wx, m[c+1].Sub(mc))
				}
				if mask&grid.MaskDown != 0 {
					acc = acc.MAdd(wy, m[c-nx].Sub(mc))
				}
				if mask&grid.MaskUp != 0 {
					acc = acc.MAdd(wy, m[c+nx].Sub(mc))
				}
			}
			if doAnis {
				acc = acc.MAdd(bAnis*mc.Dot(axis), axis)
			}
			if doDemag {
				acc.Z -= bDemag * mc.Z
			}
			if doBias {
				acc = acc.Add(bias)
			}
			B[c] = acc
		}
	}
}

// localTerms adds exchange, anisotropy and demag for rows [j0, j1).
func (e *Evaluator) localTerms(m, B vec.Field, j0, j1 int) {
	if !e.DisableExchange {
		addExchangeRows(e.Mesh, e.Region, m, B, e.Coeffs.ExFactor, j0, j1)
	}
	lo, hi := j0*e.Mesh.Nx, j1*e.Mesh.Nx
	if !e.DisableAnisotropy && e.Coeffs.BAnis != 0 {
		AddUniaxial(e.Region[lo:hi], m[lo:hi], B[lo:hi], e.Coeffs.BAnis, e.Coeffs.AnisAxis)
	}
	if !e.DisableDemag && e.FullDemag == nil {
		AddThinFilmDemag(e.Region[lo:hi], m[lo:hi], B[lo:hi], e.Coeffs.BDemag)
	}
}

// AddExchange adds the exchange field B_ex = factor·∇²m, with factor in
// T·m². Neighbors outside the region or the mesh contribute nothing
// (free boundary condition).
func AddExchange(mesh grid.Mesh, region grid.Region, m, B vec.Field, factor float64) {
	addExchangeRows(mesh, region, m, B, factor, 0, mesh.Ny)
}

// addExchangeRows adds the exchange field for rows [j0, j1). The stencil
// reads neighbor rows but writes only its own band, so disjoint bands
// can run concurrently.
func addExchangeRows(mesh grid.Mesh, region grid.Region, m, B vec.Field, factor float64, j0, j1 int) {
	nx, ny := mesh.Nx, mesh.Ny
	wx := factor / (mesh.Dx * mesh.Dx)
	wy := factor / (mesh.Dy * mesh.Dy)
	for j := j0; j < j1; j++ {
		row := j * nx
		for i := 0; i < nx; i++ {
			c := row + i
			if !region[c] {
				continue
			}
			mc := m[c]
			var acc vec.Vector
			if i > 0 && region[c-1] {
				acc = acc.MAdd(wx, m[c-1].Sub(mc))
			}
			if i < nx-1 && region[c+1] {
				acc = acc.MAdd(wx, m[c+1].Sub(mc))
			}
			if j > 0 && region[c-nx] {
				acc = acc.MAdd(wy, m[c-nx].Sub(mc))
			}
			if j < ny-1 && region[c+nx] {
				acc = acc.MAdd(wy, m[c+nx].Sub(mc))
			}
			B[c] = B[c].Add(acc)
		}
	}
}

// AddUniaxial adds the uniaxial anisotropy field bAnis·(m·u)·u.
func AddUniaxial(region grid.Region, m, B vec.Field, bAnis float64, axis vec.Vector) {
	for c := range m {
		if !region[c] {
			continue
		}
		proj := m[c].Dot(axis)
		B[c] = B[c].MAdd(bAnis*proj, axis)
	}
}

// AddThinFilmDemag adds the local thin-film demagnetization field
// −bDemag·mz·ẑ with bDemag = µ0·Ms.
func AddThinFilmDemag(region grid.Region, m, B vec.Field, bDemag float64) {
	for c := range m {
		if !region[c] {
			continue
		}
		B[c].Z -= bDemag * m[c].Z
	}
}

// AddUniform adds a spatially uniform field over the region.
func AddUniform(region grid.Region, B vec.Field, b vec.Vector) {
	for c := range B {
		if region[c] {
			B[c] = B[c].Add(b)
		}
	}
}

// Energy returns the total magnetic energy (J) of configuration m,
// composed of exchange, anisotropy, demag and Zeeman contributions. It
// is used for diagnostics and for the damping/energy-dissipation tests.
//
// The sum is assembled from per-row partials merged in row order — a
// fixed reduction order independent of the worker count — so the value
// is bit-identical whether it is computed serially or on the pool
// installed with SetPool.
func (e *Evaluator) Energy(m vec.Field) float64 {
	ny := e.Mesh.Ny
	rows := make([]float64, ny)
	if e.pool != nil && e.pool.Workers() > 1 {
		bands := tile.Split(ny, e.pool.Workers())
		e.pool.Run(len(bands), func(b int) {
			for j := bands[b].J0; j < bands[b].J1; j++ {
				rows[j] = e.rowEnergy(m, j)
			}
		})
	} else {
		for j := 0; j < ny; j++ {
			rows[j] = e.rowEnergy(m, j)
		}
	}
	return tile.SumFloat64s(rows)
}

// rowEnergy accumulates the energy contributions of row j in cell order.
func (e *Evaluator) rowEnergy(m vec.Field, j int) float64 {
	mesh, reg, c := e.Mesh, e.Region, e.Coeffs
	vol := mesh.CellVolume()
	nx := mesh.Nx
	row := j * nx
	var etot float64
	for i := 0; i < nx; i++ {
		idx := row + i
		if !reg[idx] {
			continue
		}
		mc := m[idx]
		// Exchange: A·|∇m|², one-sided differences counted once per bond.
		if !e.DisableExchange {
			aex := c.ExFactor * c.Ms / 2 // back to Aex
			if i < nx-1 && reg[idx+1] {
				d := m[idx+1].Sub(mc)
				etot += aex * d.Norm2() / (mesh.Dx * mesh.Dx) * vol
			}
			if j < mesh.Ny-1 && reg[idx+nx] {
				d := m[idx+nx].Sub(mc)
				etot += aex * d.Norm2() / (mesh.Dy * mesh.Dy) * vol
			}
		}
		// Anisotropy: Ku1·(1 − (m·u)²).
		if !e.DisableAnisotropy && c.BAnis != 0 {
			ku := c.BAnis * c.Ms / 2
			p := mc.Dot(c.AnisAxis)
			etot += ku * (1 - p*p) * vol
		}
		// Thin-film demag: ½·µ0·Ms²·mz².
		if !e.DisableDemag {
			etot += 0.5 * c.BDemag * c.Ms * mc.Z * mc.Z * vol
		}
		// Zeeman: −Ms·(m·B_bias).
		if c.BBias != vec.Zero {
			etot -= c.Ms * mc.Dot(c.BBias) * vol
		}
	}
	return etot
}

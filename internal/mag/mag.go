// Package mag computes the effective magnetic field (in Tesla) entering
// the Landau–Lifshitz–Gilbert equation for a 2-D thin-film mesh:
//
//	B_eff = B_exchange + B_anisotropy + B_demag + B_bias + Σ B_sources(t)
//
// Terms:
//   - Exchange: B_ex = (2·Aex/Ms)·∇²m with a 5-point Laplacian and free
//     (Neumann) boundary conditions at geometry edges — missing neighbors
//     simply do not contribute, the same convention MuMax3 uses.
//   - Uniaxial anisotropy: B_anis = (2·Ku1/Ms)·(m·u)·u.
//   - Demagnetization: the film is 1 nm thick, far thinner than any lateral
//     feature, so the demag tensor is ≈ diag(0, 0, 1) and the field reduces
//     to the local term B_demag = −µ0·Ms·mz·ẑ. This is the documented
//     substitution for MuMax3's FFT-based convolution (see DESIGN.md §2);
//     it preserves forward-volume spin-wave propagation, which is the only
//     physics the gates rely on.
//   - Bias: a uniform static field.
//   - Sources: time-dependent contributions (antennas, thermal field)
//     via the Source interface.
package mag

import (
	"fmt"
	"sync"

	"spinwave/internal/grid"
	"spinwave/internal/material"
	"spinwave/internal/units"
	"spinwave/internal/vec"
)

// Coeffs are the per-material field coefficients in Tesla-compatible form.
type Coeffs struct {
	ExFactor float64    // 2·Aex/Ms, T·m²
	BAnis    float64    // 2·Ku1/Ms, T
	AnisAxis vec.Vector // unit easy axis
	BDemag   float64    // µ0·Ms, T
	BBias    vec.Vector // uniform external field, T
	Ms       float64    // saturation magnetization, A/m (for energies)
}

// CoeffsFor derives the field coefficients from material parameters.
func CoeffsFor(mat material.Params) Coeffs {
	return Coeffs{
		ExFactor: 2 * mat.Aex / mat.Ms,
		BAnis:    2 * mat.Ku1 / mat.Ms,
		AnisAxis: mat.AnisU.Normalized(),
		BDemag:   units.Mu0 * mat.Ms,
		Ms:       mat.Ms,
	}
}

// Source is a time-dependent field contribution (antenna, thermal field).
type Source interface {
	// AddTo adds the source's field at time t (seconds) into B (Tesla).
	AddTo(t float64, B vec.Field)
}

// DemagConvolver is the interface satisfied by demag.Kernel: an exact
// magnetostatic interaction evaluated from the current magnetization.
// When installed on an Evaluator it replaces the local thin-film term.
type DemagConvolver interface {
	AddInto(m, B vec.Field) error
}

// Evaluator assembles the effective field for a fixed mesh/geometry.
type Evaluator struct {
	Mesh    grid.Mesh
	Region  grid.Region
	Coeffs  Coeffs
	Sources []Source

	// Workers > 1 evaluates the local field terms in parallel over row
	// bands. The result is bit-identical to the serial evaluation
	// because cells are partitioned disjointly and the exchange stencil
	// only reads the magnetization.
	Workers int

	// FullDemag, when non-nil, replaces the local thin-film demag term
	// with the exact Newell-tensor convolution (see internal/demag).
	FullDemag DemagConvolver

	// DisableExchange, DisableAnisotropy and DisableDemag switch off
	// individual terms; used by ablation benchmarks and tests.
	DisableExchange   bool
	DisableAnisotropy bool
	DisableDemag      bool
}

// NewEvaluator constructs an evaluator after validating shapes.
func NewEvaluator(mesh grid.Mesh, region grid.Region, mat material.Params) (*Evaluator, error) {
	if len(region) != mesh.NCells() {
		return nil, fmt.Errorf("mag: region has %d cells, mesh has %d", len(region), mesh.NCells())
	}
	if err := mat.Validate(); err != nil {
		return nil, err
	}
	return &Evaluator{Mesh: mesh, Region: region, Coeffs: CoeffsFor(mat)}, nil
}

// Field evaluates B_eff at time t for magnetization m, writing into B.
// Cells outside the region are left zero.
func (e *Evaluator) Field(t float64, m, B vec.Field) {
	if e.Workers > 1 && e.Mesh.Ny >= e.Workers {
		e.fieldParallel(m, B)
	} else {
		B.Zero()
		e.localTerms(m, B, 0, e.Mesh.Ny)
	}
	if !e.DisableDemag && e.FullDemag != nil {
		// The exact convolution is global; it runs after the banded
		// local terms. Errors can only come from shape mismatches, which
		// the constructor rules out.
		if err := e.FullDemag.AddInto(m, B); err != nil {
			panic(err)
		}
	}
	if e.Coeffs.BBias != vec.Zero {
		AddUniform(e.Region, B, e.Coeffs.BBias)
	}
	for _, s := range e.Sources {
		s.AddTo(t, B)
	}
}

// localTerms adds exchange, anisotropy and demag for rows [j0, j1).
func (e *Evaluator) localTerms(m, B vec.Field, j0, j1 int) {
	if !e.DisableExchange {
		addExchangeRows(e.Mesh, e.Region, m, B, e.Coeffs.ExFactor, j0, j1)
	}
	lo, hi := j0*e.Mesh.Nx, j1*e.Mesh.Nx
	if !e.DisableAnisotropy && e.Coeffs.BAnis != 0 {
		AddUniaxial(e.Region[lo:hi], m[lo:hi], B[lo:hi], e.Coeffs.BAnis, e.Coeffs.AnisAxis)
	}
	if !e.DisableDemag && e.FullDemag == nil {
		AddThinFilmDemag(e.Region[lo:hi], m[lo:hi], B[lo:hi], e.Coeffs.BDemag)
	}
}

// fieldParallel splits the local terms across row bands.
func (e *Evaluator) fieldParallel(m, B vec.Field) {
	ny := e.Mesh.Ny
	workers := e.Workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		j0 := ny * w / workers
		j1 := ny * (w + 1) / workers
		if j0 == j1 {
			continue
		}
		wg.Add(1)
		go func(j0, j1 int) {
			defer wg.Done()
			lo, hi := j0*e.Mesh.Nx, j1*e.Mesh.Nx
			B[lo:hi].Zero()
			e.localTerms(m, B, j0, j1)
		}(j0, j1)
	}
	wg.Wait()
}

// AddExchange adds the exchange field B_ex = factor·∇²m, with factor in
// T·m². Neighbors outside the region or the mesh contribute nothing
// (free boundary condition).
func AddExchange(mesh grid.Mesh, region grid.Region, m, B vec.Field, factor float64) {
	addExchangeRows(mesh, region, m, B, factor, 0, mesh.Ny)
}

// addExchangeRows adds the exchange field for rows [j0, j1). The stencil
// reads neighbor rows but writes only its own band, so disjoint bands
// can run concurrently.
func addExchangeRows(mesh grid.Mesh, region grid.Region, m, B vec.Field, factor float64, j0, j1 int) {
	nx, ny := mesh.Nx, mesh.Ny
	wx := factor / (mesh.Dx * mesh.Dx)
	wy := factor / (mesh.Dy * mesh.Dy)
	for j := j0; j < j1; j++ {
		row := j * nx
		for i := 0; i < nx; i++ {
			c := row + i
			if !region[c] {
				continue
			}
			mc := m[c]
			var acc vec.Vector
			if i > 0 && region[c-1] {
				acc = acc.MAdd(wx, m[c-1].Sub(mc))
			}
			if i < nx-1 && region[c+1] {
				acc = acc.MAdd(wx, m[c+1].Sub(mc))
			}
			if j > 0 && region[c-nx] {
				acc = acc.MAdd(wy, m[c-nx].Sub(mc))
			}
			if j < ny-1 && region[c+nx] {
				acc = acc.MAdd(wy, m[c+nx].Sub(mc))
			}
			B[c] = B[c].Add(acc)
		}
	}
}

// AddUniaxial adds the uniaxial anisotropy field bAnis·(m·u)·u.
func AddUniaxial(region grid.Region, m, B vec.Field, bAnis float64, axis vec.Vector) {
	for c := range m {
		if !region[c] {
			continue
		}
		proj := m[c].Dot(axis)
		B[c] = B[c].MAdd(bAnis*proj, axis)
	}
}

// AddThinFilmDemag adds the local thin-film demagnetization field
// −bDemag·mz·ẑ with bDemag = µ0·Ms.
func AddThinFilmDemag(region grid.Region, m, B vec.Field, bDemag float64) {
	for c := range m {
		if !region[c] {
			continue
		}
		B[c].Z -= bDemag * m[c].Z
	}
}

// AddUniform adds a spatially uniform field over the region.
func AddUniform(region grid.Region, B vec.Field, b vec.Vector) {
	for c := range B {
		if region[c] {
			B[c] = B[c].Add(b)
		}
	}
}

// Energy returns the total magnetic energy (J) of configuration m,
// composed of exchange, anisotropy, demag and Zeeman contributions. It is
// used for diagnostics and for the damping/energy-dissipation tests.
func (e *Evaluator) Energy(m vec.Field) float64 {
	mesh, reg, c := e.Mesh, e.Region, e.Coeffs
	vol := mesh.CellVolume()
	nx := mesh.Nx
	var etot float64
	for j := 0; j < mesh.Ny; j++ {
		row := j * nx
		for i := 0; i < nx; i++ {
			idx := row + i
			if !reg[idx] {
				continue
			}
			mc := m[idx]
			// Exchange: A·|∇m|², one-sided differences counted once per bond.
			if !e.DisableExchange {
				aex := c.ExFactor * c.Ms / 2 // back to Aex
				if i < nx-1 && reg[idx+1] {
					d := m[idx+1].Sub(mc)
					etot += aex * d.Norm2() / (mesh.Dx * mesh.Dx) * vol
				}
				if j < mesh.Ny-1 && reg[idx+nx] {
					d := m[idx+nx].Sub(mc)
					etot += aex * d.Norm2() / (mesh.Dy * mesh.Dy) * vol
				}
			}
			// Anisotropy: Ku1·(1 − (m·u)²).
			if !e.DisableAnisotropy && c.BAnis != 0 {
				ku := c.BAnis * c.Ms / 2
				p := mc.Dot(c.AnisAxis)
				etot += ku * (1 - p*p) * vol
			}
			// Thin-film demag: ½·µ0·Ms²·mz².
			if !e.DisableDemag {
				etot += 0.5 * c.BDemag * c.Ms * mc.Z * mc.Z * vol
			}
			// Zeeman: −Ms·(m·B_bias).
			if c.BBias != vec.Zero {
				etot -= c.Ms * mc.Dot(c.BBias) * vol
			}
		}
	}
	return etot
}

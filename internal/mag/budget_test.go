package mag

import (
	"math"
	"testing"

	"spinwave/internal/grid"
	"spinwave/internal/material"
	"spinwave/internal/vec"
)

// TestEnergyBudgetMatchesEnergy pins EnergyBudget against the existing
// total-energy reduction: the per-term breakdown must sum to Energy(m)
// for a non-trivial configuration, including a notch in the region.
func TestEnergyBudgetMatchesEnergy(t *testing.T) {
	mesh := grid.MustMesh(8, 6, 2e-9, 2e-9, 1e-9)
	reg := grid.FullRegion(mesh)
	reg[3] = false // irregular geometry exercises the bond guards
	ev, err := NewEvaluator(mesh, reg, material.FeCoB())
	if err != nil {
		t.Fatal(err)
	}
	ev.Coeffs.BBias = vec.V(0, 0, 0.05)

	m := vec.NewField(mesh.NCells())
	for i := range m {
		m[i] = vec.V(0.1*float64(i%5), 0.05*float64(i%3), 1).Normalized()
	}

	b := ev.EnergyBudget(m)
	total, want := b.Total(), ev.Energy(m)
	if math.Abs(total-want) > 1e-12*math.Max(1, math.Abs(want)) {
		t.Errorf("Budget.Total() = %g, Energy = %g", total, want)
	}
	if b.Exchange <= 0 || b.Anisotropy <= 0 || b.Demag < 0 {
		t.Errorf("implausible budget %+v", b)
	}
	if b.Zeeman >= 0 {
		t.Errorf("Zeeman energy %g not negative for m ∥ +z bias", b.Zeeman)
	}
}

// TestEnergyBudgetAblation checks the Disable* switches zero the
// matching term and only that term.
func TestEnergyBudgetAblation(t *testing.T) {
	mesh := grid.MustMesh(4, 2, 2e-9, 2e-9, 1e-9)
	reg := grid.FullRegion(mesh)
	ev, _ := NewEvaluator(mesh, reg, material.FeCoB())
	m := vec.NewField(mesh.NCells())
	for i := range m {
		m[i] = vec.V(0.2*float64(i), 0, 1).Normalized()
	}
	full := ev.EnergyBudget(m)
	ev.DisableExchange = true
	cut := ev.EnergyBudget(m)
	if cut.Exchange != 0 {
		t.Errorf("exchange not ablated: %g", cut.Exchange)
	}
	if cut.Anisotropy != full.Anisotropy || cut.Demag != full.Demag {
		t.Errorf("ablating exchange perturbed other terms: %+v vs %+v", cut, full)
	}
}

// TestEnergyBudgetAllocates pins the allocation-free contract the probe
// layer relies on: after Prepare, the sweep must not allocate.
func TestEnergyBudgetAllocates(t *testing.T) {
	mesh := grid.MustMesh(16, 16, 2e-9, 2e-9, 1e-9)
	reg := grid.FullRegion(mesh)
	ev, _ := NewEvaluator(mesh, reg, material.FeCoB())
	m := vec.NewField(mesh.NCells())
	m.Fill(vec.UnitZ)
	ev.Prepare()
	allocs := testing.AllocsPerRun(10, func() {
		_ = ev.EnergyBudget(m)
	})
	if allocs > 0 {
		t.Errorf("EnergyBudget allocates %g per call, want 0", allocs)
	}
}

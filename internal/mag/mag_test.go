package mag

import (
	"math"
	"testing"

	"spinwave/internal/grid"
	"spinwave/internal/material"
	"spinwave/internal/units"
	"spinwave/internal/vec"
)

func TestCoeffsFor(t *testing.T) {
	c := CoeffsFor(material.FeCoB())
	// 2·Aex/Ms = 2·18.5e-12/1.1e6 ≈ 3.36e-17 T·m².
	if math.Abs(c.ExFactor-3.3636e-17) > 1e-20 {
		t.Errorf("ExFactor = %g", c.ExFactor)
	}
	// 2·Ku/Ms = 2·0.832e6/1.1e6 ≈ 1.5127 T.
	if math.Abs(c.BAnis-1.51273) > 1e-4 {
		t.Errorf("BAnis = %g", c.BAnis)
	}
	// µ0·Ms ≈ 1.3823 T.
	if math.Abs(c.BDemag-1.38230) > 1e-4 {
		t.Errorf("BDemag = %g", c.BDemag)
	}
	if c.AnisAxis != vec.UnitZ {
		t.Errorf("AnisAxis = %v", c.AnisAxis)
	}
}

func TestNewEvaluatorValidation(t *testing.T) {
	mesh := grid.MustMesh(4, 4, 1e-9, 1e-9, 1e-9)
	if _, err := NewEvaluator(mesh, make(grid.Region, 3), material.FeCoB()); err == nil {
		t.Error("mismatched region accepted")
	}
	if _, err := NewEvaluator(mesh, grid.FullRegion(mesh), material.Params{}); err == nil {
		t.Error("invalid material accepted")
	}
}

func TestExchangeUniformIsZero(t *testing.T) {
	mesh := grid.MustMesh(8, 8, 2e-9, 2e-9, 1e-9)
	reg := grid.FullRegion(mesh)
	m := vec.NewField(mesh.NCells())
	m.Fill(vec.UnitZ)
	B := vec.NewField(mesh.NCells())
	AddExchange(mesh, reg, m, B, 3e-17)
	for i := range B {
		if B[i].Norm() > 1e-18 {
			t.Fatalf("uniform magnetization produced exchange field %v at %d", B[i], i)
		}
	}
}

func TestExchangePullsTowardNeighbors(t *testing.T) {
	mesh := grid.MustMesh(2, 1, 1e-9, 1e-9, 1e-9)
	reg := grid.FullRegion(mesh)
	m := vec.Field{vec.UnitZ, vec.UnitX}
	B := vec.NewField(2)
	AddExchange(mesh, reg, m, B, 1e-18)
	// Cell 0 (m=z) must feel a field with +x component (toward neighbor).
	if B[0].X <= 0 {
		t.Errorf("B[0] = %v, want +x pull", B[0])
	}
	if B[1].Z <= 0 {
		t.Errorf("B[1] = %v, want +z pull", B[1])
	}
	// Free boundary: field magnitudes for the two cells are symmetric.
	if math.Abs(B[0].X-B[1].Z) > 1e-24 {
		t.Errorf("asymmetric exchange: %v vs %v", B[0], B[1])
	}
}

func TestExchangeRespectsRegion(t *testing.T) {
	mesh := grid.MustMesh(3, 1, 1e-9, 1e-9, 1e-9)
	reg := grid.Region{true, false, true} // middle cell is vacuum
	m := vec.Field{vec.UnitZ, vec.UnitX, vec.UnitX}
	B := vec.NewField(3)
	AddExchange(mesh, reg, m, B, 1e-18)
	if B[0].Norm() != 0 {
		t.Errorf("cell 0 coupled across vacuum: %v", B[0])
	}
	if B[1].Norm() != 0 {
		t.Errorf("vacuum cell got a field: %v", B[1])
	}
}

func TestUniaxialField(t *testing.T) {
	reg := grid.Region{true}
	m := vec.Field{vec.V(0, 0.6, 0.8)}
	B := vec.NewField(1)
	AddUniaxial(reg, m, B, 2.0, vec.UnitZ)
	if math.Abs(B[0].Z-1.6) > 1e-12 || B[0].X != 0 || B[0].Y != 0 {
		t.Errorf("anisotropy field = %v, want (0,0,1.6)", B[0])
	}
}

func TestThinFilmDemag(t *testing.T) {
	reg := grid.Region{true, false}
	m := vec.Field{vec.V(0, 0, 0.5), vec.V(0, 0, 1)}
	B := vec.NewField(2)
	AddThinFilmDemag(reg, m, B, 1.4)
	if math.Abs(B[0].Z+0.7) > 1e-12 {
		t.Errorf("demag = %v, want -0.7 z", B[0])
	}
	if B[1] != vec.Zero {
		t.Errorf("vacuum cell got demag %v", B[1])
	}
}

func TestAddUniform(t *testing.T) {
	reg := grid.Region{true, false}
	B := vec.NewField(2)
	AddUniform(reg, B, vec.V(0, 0, 0.1))
	if B[0].Z != 0.1 || B[1] != vec.Zero {
		t.Errorf("AddUniform = %v, %v", B[0], B[1])
	}
}

type constSource struct{ b vec.Vector }

func (s constSource) AddTo(t float64, B vec.Field) {
	for i := range B {
		B[i] = B[i].Add(s.b)
	}
}

func TestEvaluatorComposesTerms(t *testing.T) {
	mesh := grid.MustMesh(4, 1, 2e-9, 2e-9, 1e-9)
	reg := grid.FullRegion(mesh)
	ev, err := NewEvaluator(mesh, reg, material.FeCoB())
	if err != nil {
		t.Fatal(err)
	}
	ev.Sources = append(ev.Sources, constSource{vec.V(1e-3, 0, 0)})
	m := vec.NewField(4)
	m.Fill(vec.UnitZ)
	B := vec.NewField(4)
	ev.Field(0, m, B)
	// Uniform m along z: no exchange; anisotropy − demag gives the small
	// net PMA field; plus the source's 1 mT along x.
	c := ev.Coeffs
	wantZ := c.BAnis - c.BDemag
	for i := range B {
		if math.Abs(B[i].Z-wantZ) > 1e-9 {
			t.Fatalf("B[%d].Z = %g, want %g", i, B[i].Z, wantZ)
		}
		if math.Abs(B[i].X-1e-3) > 1e-12 {
			t.Fatalf("B[%d].X = %g, want 1e-3", i, B[i].X)
		}
	}
	// The net PMA field must be positive and ≈ µ0·(Hk−Ms) ≈ 0.13 T for
	// the paper's FeCoB (out-of-plane stable state).
	if wantZ <= 0 || math.Abs(wantZ-units.Mu0*material.FeCoB().EffectivePMAField()) > 1e-9 {
		t.Errorf("net PMA field = %g T", wantZ)
	}
}

func TestEvaluatorDisableFlags(t *testing.T) {
	mesh := grid.MustMesh(2, 1, 2e-9, 2e-9, 1e-9)
	reg := grid.FullRegion(mesh)
	ev, _ := NewEvaluator(mesh, reg, material.FeCoB())
	ev.DisableExchange = true
	ev.DisableAnisotropy = true
	ev.DisableDemag = true
	m := vec.Field{vec.UnitZ, vec.UnitX}
	B := vec.NewField(2)
	ev.Field(0, m, B)
	for i := range B {
		if B[i] != vec.Zero {
			t.Fatalf("disabled evaluator produced field %v", B[i])
		}
	}
}

func TestEnergyGroundStateIsMinimum(t *testing.T) {
	mesh := grid.MustMesh(6, 2, 2e-9, 2e-9, 1e-9)
	reg := grid.FullRegion(mesh)
	ev, _ := NewEvaluator(mesh, reg, material.FeCoB())

	ground := vec.NewField(mesh.NCells())
	ground.Fill(vec.UnitZ)
	eGround := ev.Energy(ground)

	tilted := vec.NewField(mesh.NCells())
	tilted.Fill(vec.V(0.3, 0, 0.9539392014169456).Normalized())
	eTilted := ev.Energy(tilted)

	inplane := vec.NewField(mesh.NCells())
	inplane.Fill(vec.UnitX)
	eInplane := ev.Energy(inplane)

	if !(eGround < eTilted && eTilted < eInplane) {
		t.Errorf("energy ordering wrong: ground %g, tilted %g, in-plane %g", eGround, eTilted, eInplane)
	}
}

func TestEnergyExchangePenalty(t *testing.T) {
	mesh := grid.MustMesh(2, 1, 2e-9, 2e-9, 1e-9)
	reg := grid.FullRegion(mesh)
	ev, _ := NewEvaluator(mesh, reg, material.FeCoB())
	uniform := vec.Field{vec.UnitZ, vec.UnitZ}
	twisted := vec.Field{vec.UnitZ, vec.V(0.1, 0, 1).Normalized()}
	if ev.Energy(twisted) <= ev.Energy(uniform) {
		t.Error("twisted configuration not higher in energy")
	}
}

func BenchmarkFieldEvaluation(b *testing.B) {
	mesh := grid.MustMesh(64, 64, 5e-9, 5e-9, 1e-9)
	reg := grid.FullRegion(mesh)
	ev, err := NewEvaluator(mesh, reg, material.FeCoB())
	if err != nil {
		b.Fatal(err)
	}
	m := vec.NewField(mesh.NCells())
	m.Fill(vec.UnitZ)
	B := vec.NewField(mesh.NCells())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.Field(0, m, B)
	}
}

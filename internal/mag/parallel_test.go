package mag

import (
	"math"
	"testing"

	"spinwave/internal/grid"
	"spinwave/internal/material"
	"spinwave/internal/vec"
)

// randomish fills a field with a deterministic pseudo-random unit-vector
// pattern over region cells.
func randomish(region grid.Region) vec.Field {
	m := vec.NewField(len(region))
	x := uint64(12345)
	next := func() float64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return float64(x%2000)/1000 - 1
	}
	for i := range m {
		if region[i] {
			m[i] = vec.V(next(), next(), next()+1.5).Normalized()
		}
	}
	return m
}

func TestParallelFieldMatchesSerial(t *testing.T) {
	mesh := grid.MustMesh(32, 29, 5e-9, 5e-9, 1e-9) // odd ny: uneven bands
	region := grid.FullRegion(mesh)
	// Punch some vacuum holes so the boundary handling is exercised.
	for _, idx := range []int{17, 100, 333, 500, 640} {
		region[idx] = false
	}
	m := randomish(region)

	serial, err := NewEvaluator(mesh, region, material.FeCoB())
	if err != nil {
		t.Fatal(err)
	}
	bs := vec.NewField(mesh.NCells())
	serial.Field(0, m, bs)

	for _, workers := range []int{2, 3, 7} {
		par, err := NewEvaluator(mesh, region, material.FeCoB())
		if err != nil {
			t.Fatal(err)
		}
		par.Workers = workers
		bp := vec.NewField(mesh.NCells())
		// Pre-poison the parallel buffer to catch missed zeroing.
		bp.Fill(vec.V(9, 9, 9))
		par.Field(0, m, bp)
		for i := range bs {
			if bs[i].Sub(bp[i]).Norm() > 1e-15 {
				t.Fatalf("workers=%d: cell %d differs: %v vs %v", workers, i, bp[i], bs[i])
			}
		}
	}
}

func TestParallelFieldWithBiasAndSources(t *testing.T) {
	mesh := grid.MustMesh(16, 16, 5e-9, 5e-9, 1e-9)
	region := grid.FullRegion(mesh)
	m := randomish(region)
	build := func(workers int) vec.Field {
		ev, err := NewEvaluator(mesh, region, material.FeCoB())
		if err != nil {
			t.Fatal(err)
		}
		ev.Workers = workers
		ev.Coeffs.BBias = vec.V(0, 1e-3, 0)
		ev.Sources = append(ev.Sources, constSource{vec.V(2e-3, 0, 0)})
		b := vec.NewField(mesh.NCells())
		ev.Field(0, m, b)
		return b
	}
	a, b := build(1), build(4)
	for i := range a {
		if a[i].Sub(b[i]).Norm() > 1e-15 {
			t.Fatalf("cell %d differs with sources: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestParallelFallsBackOnTinyMeshes(t *testing.T) {
	mesh := grid.MustMesh(8, 2, 5e-9, 5e-9, 1e-9)
	region := grid.FullRegion(mesh)
	ev, err := NewEvaluator(mesh, region, material.FeCoB())
	if err != nil {
		t.Fatal(err)
	}
	ev.Workers = 16 // more workers than rows: serial fallback
	m := randomish(region)
	b := vec.NewField(mesh.NCells())
	ev.Field(0, m, b)
	for i, on := range region {
		if on && !b[i].IsFinite() {
			t.Fatalf("non-finite field at %d", i)
		}
	}
	if math.IsNaN(b[0].X) {
		t.Fatal("NaN field")
	}
}

func BenchmarkFieldParallel4_128x128(b *testing.B) {
	mesh := grid.MustMesh(128, 128, 5e-9, 5e-9, 1e-9)
	region := grid.FullRegion(mesh)
	ev, err := NewEvaluator(mesh, region, material.FeCoB())
	if err != nil {
		b.Fatal(err)
	}
	ev.Workers = 4
	m := randomish(region)
	buf := vec.NewField(mesh.NCells())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Field(0, m, buf)
	}
}

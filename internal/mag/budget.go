package mag

import (
	"spinwave/internal/energy"
	"spinwave/internal/vec"
)

// EnergyBudget returns the per-term magnetic energy breakdown (J) of
// configuration m — the same contributions Energy sums, kept separate
// per term for the flight recorder's energy probes (DESIGN.md §11).
//
// The sweep is serial and allocation-free: it is called from the probe
// layer on a cadence (every probe.Config.EnergyEvery steps), on the
// solver goroutine, where it must not disturb the zero-alloc hot loop.
// Terms honor the Disable* ablation switches exactly like Energy, so
// Budget.Total() equals Energy(m) up to summation order.
func (e *Evaluator) EnergyBudget(m vec.Field) energy.Budget {
	e.Prepare()
	mesh, reg, c := e.Mesh, e.Region, e.Coeffs
	vol := mesh.CellVolume()
	nx := mesh.Nx
	var b energy.Budget
	for j := 0; j < mesh.Ny; j++ {
		row := j * nx
		for i := 0; i < nx; i++ {
			idx := row + i
			if !reg[idx] {
				continue
			}
			mc := m[idx]
			// Exchange: A·|∇m|², one-sided differences counted once per bond.
			if !e.DisableExchange {
				aex := c.ExFactor * c.Ms / 2 // back to Aex
				if i < nx-1 && reg[idx+1] {
					d := m[idx+1].Sub(mc)
					b.Exchange += aex * d.Norm2() / (mesh.Dx * mesh.Dx) * vol
				}
				if j < mesh.Ny-1 && reg[idx+nx] {
					d := m[idx+nx].Sub(mc)
					b.Exchange += aex * d.Norm2() / (mesh.Dy * mesh.Dy) * vol
				}
			}
			// Anisotropy: Ku1·(1 − (m·u)²).
			if !e.DisableAnisotropy && c.BAnis != 0 {
				ku := c.BAnis * c.Ms / 2
				p := mc.Dot(c.AnisAxis)
				b.Anisotropy += ku * (1 - p*p) * vol
			}
			// Thin-film demag: ½·µ0·Ms²·mz².
			if !e.DisableDemag {
				b.Demag += 0.5 * c.BDemag * c.Ms * mc.Z * mc.Z * vol
			}
			// Zeeman: −Ms·(m·B_bias).
			if c.BBias != vec.Zero {
				b.Zeeman -= c.Ms * mc.Dot(c.BBias) * vol
			}
		}
	}
	return b
}

package phasor

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"spinwave/internal/layout"
	"spinwave/internal/units"
)

func majNet(t *testing.T) *Network {
	t.Helper()
	l, err := layout.BuildMAJ3(layout.PaperSpec(), false)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(l, units.WaveNumber(l.Lambda), 0)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func xorNet(t *testing.T) *Network {
	t.Helper()
	l, err := layout.BuildXOR(layout.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(l, units.WaveNumber(l.Lambda), 0)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewValidation(t *testing.T) {
	l, _ := layout.BuildXOR(layout.PaperSpec())
	if _, err := New(nil, 1, 0); err == nil {
		t.Error("nil layout accepted")
	}
	if _, err := New(l, 0, 0); err == nil {
		t.Error("zero wave number accepted")
	}
}

func TestEvaluateRejectsBadDrives(t *testing.T) {
	n := xorNet(t)
	if _, err := n.Evaluate(map[string]complex128{"I9": 1}); err == nil {
		t.Error("unknown input accepted")
	}
	if _, err := n.Evaluate(map[string]complex128{"O1": 1}); err == nil {
		t.Error("driving an output accepted")
	}
}

func TestFanOutEquality(t *testing.T) {
	// The core FO2 claim: O1 and O2 receive identical phasors for every
	// input combination, in both gates.
	for gate, n := range map[string]*Network{"maj": majNet(t), "xor": xorNet(t)} {
		inputs := [][]bool{{false, false, false}, {true, false, true}, {true, true, true}, {false, true, false}}
		for _, in := range inputs {
			d := map[string]complex128{"I1": Drive(in[0]), "I2": Drive(in[1])}
			if gate == "maj" {
				d["I3"] = Drive(in[2])
			}
			out, err := n.Evaluate(d)
			if err != nil {
				t.Fatal(err)
			}
			if cmplx.Abs(out["O1"]-out["O2"]) > 1e-12 {
				t.Errorf("%s %v: O1 = %v != O2 = %v", gate, in, out["O1"], out["O2"])
			}
		}
	}
}

func TestMajorityTruthTableByPhase(t *testing.T) {
	n := majNet(t)
	// Reference phasor: the all-zeros case.
	refOut, err := n.Evaluate(map[string]complex128{"I1": Drive(false), "I2": Drive(false), "I3": Drive(false)})
	if err != nil {
		t.Fatal(err)
	}
	ref := refOut["O1"]
	for c := 0; c < 8; c++ {
		i1, i2, i3 := c&1 != 0, c&2 != 0, c&4 != 0
		out, err := n.Evaluate(map[string]complex128{"I1": Drive(i1), "I2": Drive(i2), "I3": Drive(i3)})
		if err != nil {
			t.Fatal(err)
		}
		want := (btoi(i1) + btoi(i2) + btoi(i3)) >= 2
		for _, o := range []string{"O1", "O2"} {
			if got := LogicFromPhase(out[o], ref); got != want {
				t.Errorf("MAJ(%v,%v,%v) at %s = %v, want %v", i1, i2, i3, o, got, want)
			}
		}
	}
}

func TestMajorityAmplitudeShape(t *testing.T) {
	// Unanimous inputs give the strongest output; 2-1 splits are weaker
	// (paper Table I: 1.0 vs ≤ 0.17).
	n := majNet(t)
	amp := func(i1, i2, i3 bool) float64 {
		out, err := n.Evaluate(map[string]complex128{"I1": Drive(i1), "I2": Drive(i2), "I3": Drive(i3)})
		if err != nil {
			t.Fatal(err)
		}
		return cmplx.Abs(out["O1"])
	}
	full := amp(false, false, false)
	if a := amp(true, true, true); math.Abs(a-full) > 1e-12 {
		t.Errorf("111 amplitude %g != 000 amplitude %g", a, full)
	}
	for _, in := range [][3]bool{
		{true, false, false}, {false, true, false}, {false, false, true},
		{false, true, true}, {true, false, true}, {true, true, false},
	} {
		if a := amp(in[0], in[1], in[2]); a >= 0.5*full {
			t.Errorf("mixed case %v amplitude %g not below half of %g", in, a, full)
		}
	}
}

func TestXORTruthTableByThreshold(t *testing.T) {
	n := xorNet(t)
	refOut, err := n.Evaluate(map[string]complex128{"I1": Drive(false), "I2": Drive(false)})
	if err != nil {
		t.Fatal(err)
	}
	ref := refOut["O1"]
	for c := 0; c < 4; c++ {
		i1, i2 := c&1 != 0, c&2 != 0
		out, err := n.Evaluate(map[string]complex128{"I1": Drive(i1), "I2": Drive(i2)})
		if err != nil {
			t.Fatal(err)
		}
		want := i1 != i2
		for _, o := range []string{"O1", "O2"} {
			if got := LogicFromThreshold(out[o], ref, 0.5, false); got != want {
				t.Errorf("XOR(%v,%v) at %s = %v, want %v", i1, i2, o, got, want)
			}
			// XNOR by flipped condition (paper §III-B).
			if got := LogicFromThreshold(out[o], ref, 0.5, true); got != !want {
				t.Errorf("XNOR(%v,%v) at %s = %v, want %v", i1, i2, o, got, !want)
			}
		}
	}
}

// Property: the network is linear — scaling all drives scales all outputs.
func TestLinearity(t *testing.T) {
	n := majNet(t)
	f := func(scaleRaw float64) bool {
		scale := complex(0.1+2*frac(scaleRaw), 0.3)
		base := map[string]complex128{"I1": 1, "I2": -1, "I3": 1}
		scaled := map[string]complex128{}
		for k, v := range base {
			scaled[k] = v * scale
		}
		a, err := n.Evaluate(base)
		if err != nil {
			return false
		}
		b, err := n.Evaluate(scaled)
		if err != nil {
			return false
		}
		for k := range a {
			if cmplx.Abs(a[k]*scale-b[k]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAttenuationReducesAmplitude(t *testing.T) {
	l, _ := layout.BuildMAJ3(layout.PaperSpec(), false)
	k := units.WaveNumber(l.Lambda)
	lossless, _ := New(l, k, 0)
	lossy, _ := New(l, k, units.NM(2000))
	d := map[string]complex128{"I1": 1, "I2": 1, "I3": 1}
	a, _ := lossless.Evaluate(d)
	b, _ := lossy.Evaluate(d)
	if cmplx.Abs(b["O1"]) >= cmplx.Abs(a["O1"]) {
		t.Errorf("attenuation did not reduce amplitude: %g vs %g", cmplx.Abs(b["O1"]), cmplx.Abs(a["O1"]))
	}
	if cmplx.Abs(b["O1"]) == 0 {
		t.Error("attenuation killed the wave entirely")
	}
	// Attenuation must NOT change the detected logic (phases intact).
	if LogicFromPhase(b["O1"], a["O1"]) {
		t.Error("attenuation flipped the phase readout")
	}
}

func TestJunctionLoss(t *testing.T) {
	l, _ := layout.BuildXOR(layout.PaperSpec())
	k := units.WaveNumber(l.Lambda)
	n, _ := New(l, k, 0)
	d := map[string]complex128{"I1": 1, "I2": 1}
	before, _ := n.Evaluate(d)
	n.JunctionLoss = 0.8
	after, _ := n.Evaluate(d)
	// Waves pass X (junction) once before reaching O1: ratio 0.8 on top
	// of an input spread... exact factor depends on structure; just check
	// strict reduction and output equality.
	if cmplx.Abs(after["O1"]) >= cmplx.Abs(before["O1"]) {
		t.Error("junction loss did not reduce amplitude")
	}
	if cmplx.Abs(after["O1"]-after["O2"]) > 1e-12 {
		t.Error("junction loss broke FO2 symmetry")
	}
}

func TestRepeaterRegeneratesAmplitude(t *testing.T) {
	l, _ := layout.BuildMAJ3(layout.PaperSpec(), false)
	k := units.WaveNumber(l.Lambda)
	n, _ := New(l, k, units.NM(500)) // heavy attenuation
	n.Repeaters["O1"] = true
	out, err := n.Evaluate(map[string]complex128{"I1": 1, "I2": 1, "I3": 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cmplx.Abs(out["O1"])-1) > 1e-12 {
		t.Errorf("repeater output magnitude = %g, want 1", cmplx.Abs(out["O1"]))
	}
	if cmplx.Abs(out["O2"]) >= 1 {
		t.Errorf("non-repeater output magnitude = %g, want < 1", cmplx.Abs(out["O2"]))
	}
}

func TestDriveEncoding(t *testing.T) {
	if Drive(false) != 1 {
		t.Errorf("Drive(0) = %v", Drive(false))
	}
	if Drive(true) != -1 {
		t.Errorf("Drive(1) = %v", Drive(true))
	}
}

func TestLogicDecoderEdgeCases(t *testing.T) {
	if LogicFromPhase(0, 1) {
		t.Error("zero phasor decoded as logic 1")
	}
	if LogicFromPhase(1, 0) {
		t.Error("zero reference decoded as logic 1")
	}
	if LogicFromThreshold(1, 0, 0.5, false) != true {
		t.Error("zero reference should read as below threshold (logic 1)")
	}
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

func frac(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	return math.Abs(x - math.Trunc(x))
}

func BenchmarkEvaluateMAJ3(b *testing.B) {
	l, err := layout.BuildMAJ3(layout.PaperSpec(), false)
	if err != nil {
		b.Fatal(err)
	}
	n, err := New(l, units.WaveNumber(l.Lambda), units.NM(1690))
	if err != nil {
		b.Fatal(err)
	}
	d := map[string]complex128{"I1": 1, "I2": -1, "I3": 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := n.Evaluate(d); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMissingDrivesDefaultToOff(t *testing.T) {
	// An input with no drive entry behaves as a switched-off transducer:
	// driving only I1 of the XOR gives the same output as {I1: 1, I2: 0·}.
	n := xorNet(t)
	only, err := n.Evaluate(map[string]complex128{"I1": 1})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := n.Evaluate(map[string]complex128{"I1": 1, "I2": 0})
	if err != nil {
		t.Fatal(err)
	}
	for name := range only {
		if cmplx.Abs(only[name]-explicit[name]) > 1e-12 {
			t.Errorf("%s: %v != %v", name, only[name], explicit[name])
		}
	}
	// And it is genuinely half of the two-input constructive case.
	both, err := n.Evaluate(map[string]complex128{"I1": 1, "I2": 1})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(both["O1"])-2*cmplx.Abs(only["O1"]) > 1e-12 {
		t.Errorf("superposition broken: both %g vs single %g", cmplx.Abs(both["O1"]), cmplx.Abs(only["O1"]))
	}
}

func TestEvaluateIsPure(t *testing.T) {
	n := majNet(t)
	d := map[string]complex128{"I1": 1, "I2": -1, "I3": 1}
	a, err := n.Evaluate(d)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Evaluate(d)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a {
		if a[k] != b[k] {
			t.Errorf("repeat evaluation differs at %s", k)
		}
	}
}

// Package phasor implements the fast behavioral backend: spin waves are
// complex amplitudes (phasors) that propagate along the layout graph,
// accumulating phase k·L and exponential attenuation along each arm,
// summing coherently at junctions, and splitting with energy conservation
// into multiple outgoing arms.
//
// The model deliberately ignores reflections and junction near-field
// detail — those are the micromagnetic backend's job — but it reproduces
// the paper's logic behaviour exactly: with all interfering paths an
// integer number of wavelengths, phase-encoded inputs superpose as ideal
// phasors, giving majority voting by phase and XOR by amplitude.
//
// Repeater nodes (paper §III-A's fan-out extension via directional
// couplers [36] and repeaters [37]) regenerate the wave to unit amplitude
// while preserving phase.
package phasor

import (
	"fmt"
	"math"
	"math/cmplx"

	"spinwave/internal/layout"
)

// Network evaluates phasor propagation over one layout.
type Network struct {
	L *layout.Layout

	// K is the wave number 2π/λ in rad/m.
	K float64
	// AttLength is the 1/e amplitude attenuation length in meters.
	// Zero or +Inf disables attenuation.
	AttLength float64
	// JunctionLoss is the amplitude transmission factor applied when a
	// wave passes through a Junction node (scattering loss), in (0, 1].
	JunctionLoss float64
	// Repeaters lists node names that regenerate amplitude to 1
	// (phase preserved), modeling the repeater cells of ref [37].
	Repeaters map[string]bool

	outdeg   []int
	incoming [][]int // edge indices arriving at each node
}

// New builds a network for the layout with wave number k and attenuation
// length attLen (≤ 0 disables attenuation). Junction loss defaults to 1
// (lossless); set JunctionLoss afterwards to model scattering.
func New(l *layout.Layout, k, attLen float64) (*Network, error) {
	if l == nil {
		return nil, fmt.Errorf("phasor: nil layout")
	}
	if k <= 0 {
		return nil, fmt.Errorf("phasor: wave number %g must be positive", k)
	}
	n := &Network{
		L:            l,
		K:            k,
		AttLength:    attLen,
		JunctionLoss: 1,
		Repeaters:    map[string]bool{},
		outdeg:       make([]int, len(l.Nodes)),
		incoming:     make([][]int, len(l.Nodes)),
	}
	for ei, e := range l.Edges {
		if e.From < 0 || e.From >= len(l.Nodes) || e.To < 0 || e.To >= len(l.Nodes) {
			return nil, fmt.Errorf("phasor: edge %d references missing node", ei)
		}
		if e.Length < 0 {
			return nil, fmt.Errorf("phasor: edge %d has negative length", ei)
		}
		n.outdeg[e.From]++
		n.incoming[e.To] = append(n.incoming[e.To], ei)
	}
	return n, nil
}

// propagation factor along an edge of length L.
func (n *Network) edgeFactor(length float64) complex128 {
	att := 1.0
	if n.AttLength > 0 && !math.IsInf(n.AttLength, 1) {
		att = math.Exp(-length / n.AttLength)
	}
	return cmplx.Rect(att, n.K*length)
}

// emission factor applied when a wave leaves a node into one of its
// outgoing edges.
func (n *Network) spread(node int) complex128 {
	f := 1.0
	if n.outdeg[node] > 1 {
		f /= math.Sqrt(float64(n.outdeg[node]))
	}
	if n.L.Nodes[node].Kind == layout.Junction {
		f *= n.JunctionLoss
	}
	return complex(f, 0)
}

// Evaluate propagates the given input drives (keyed by input node name,
// e.g. "I1" → 1·e^(iπ)) through the network and returns the arriving
// phasor at every Output node, keyed by name. Missing inputs default to
// zero drive (switched-off transducer); unknown keys are an error.
func (n *Network) Evaluate(drives map[string]complex128) (map[string]complex128, error) {
	l := n.L
	for name := range drives {
		idx, err := l.NodeByName(name)
		if err != nil {
			return nil, err
		}
		if l.Nodes[idx].Kind != layout.Input {
			return nil, fmt.Errorf("phasor: node %q is not an input", name)
		}
	}

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make([]int, len(l.Nodes))
	emit := make([]complex128, len(l.Nodes))

	var eval func(node int) (complex128, error)
	eval = func(node int) (complex128, error) {
		switch state[node] {
		case done:
			return emit[node], nil
		case visiting:
			return 0, fmt.Errorf("phasor: cycle through node %q", l.Nodes[node].Name)
		}
		state[node] = visiting
		var sum complex128
		if l.Nodes[node].Kind == layout.Input {
			sum = drives[l.Nodes[node].Name]
		} else {
			for _, ei := range n.incoming[node] {
				e := l.Edges[ei]
				up, err := eval(e.From)
				if err != nil {
					return 0, err
				}
				sum += up * n.spread(e.From) * n.edgeFactor(e.Length)
			}
		}
		if n.Repeaters[l.Nodes[node].Name] && cmplx.Abs(sum) > 0 {
			sum /= complex(cmplx.Abs(sum), 0)
		}
		emit[node] = sum
		state[node] = done
		return sum, nil
	}

	out := make(map[string]complex128)
	for _, oi := range l.Outputs() {
		v, err := eval(oi)
		if err != nil {
			return nil, err
		}
		out[l.Nodes[oi].Name] = v
	}
	return out, nil
}

// Drive returns the unit phasor encoding a logic level: 1·e^(i0) for
// logic 0 and 1·e^(iπ) for logic 1 (paper §III-A step (i)).
func Drive(level bool) complex128 {
	if level {
		return complex(-1, 0)
	}
	return complex(1, 0)
}

// LogicFromPhase decodes a phasor by phase detection relative to a
// reference phasor (paper's Majority readout): within π/2 of the
// reference phase is logic 0.
func LogicFromPhase(v, ref complex128) bool {
	if cmplx.Abs(v) == 0 || cmplx.Abs(ref) == 0 {
		return false
	}
	d := cmplx.Phase(v) - cmplx.Phase(ref)
	for d > math.Pi {
		d -= 2 * math.Pi
	}
	for d < -math.Pi {
		d += 2 * math.Pi
	}
	return math.Abs(d) > math.Pi/2
}

// LogicFromThreshold decodes a phasor by threshold detection (paper's XOR
// readout): normalized magnitude above the threshold is logic 0, below is
// logic 1; inverted flips the convention (XNOR).
func LogicFromThreshold(v, ref complex128, threshold float64, inverted bool) bool {
	refAbs := cmplx.Abs(ref)
	norm := 0.0
	if refAbs > 0 {
		norm = cmplx.Abs(v) / refAbs
	}
	above := norm > threshold
	if inverted {
		return above
	}
	return !above
}
